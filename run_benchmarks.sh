#!/bin/sh
# Runs the full benchmark harness sequentially (single-core machine: do not
# run anything else concurrently or the timings are polluted).
#
# Each benchmark runs with profiling enabled and archives its hierarchical
# profiler report (timers / counters / vmpi traffic) as JSON into
# bench_results/PROFILE_<name>.json for cross-PR diffing. Note the
# measurement overhead is small but nonzero; for last-decimal kernel numbers
# rerun the binary of interest without DGFLOW_PROFILE=1.
set -e
cd "$(dirname "$0")"
mkdir -p bench_results

# Verify pass: before any timing is trusted, the rank-failure recovery tests
# (ctest label distributed_resilience: agreement protocol, fault injection,
# shard checkpoints, the end-to-end shrinking recovery) must pass under
# ThreadSanitizer — a hang or race here invalidates every distributed
# number below. Set DGFLOW_SKIP_VERIFY=1 to skip while iterating on a
# single benchmark.
if [ -z "$DGFLOW_SKIP_VERIFY" ]; then
  echo "verify pass: distributed_resilience under DGFLOW_SANITIZE=thread"
  cmake -B build-tsan -S . -DDGFLOW_SANITIZE=thread > /dev/null
  cmake --build build-tsan -j \
    --target test_distributed_resilience recovery_microbench > /dev/null
  (cd build-tsan && ctest -L distributed_resilience --output-on-failure)

  # Second verify pass: the fused-kernel equivalence and mixed-precision
  # tests under AddressSanitizer — the fused hooks write through raw
  # pointers into solver vectors mid-traversal and the single-precision
  # ghost wire packs/unpacks hand-rolled buffers; an out-of-range hook
  # range or wire offset must fail here, not corrupt a timing run below.
  echo "verify pass: mixed_precision under DGFLOW_SANITIZE=address"
  cmake -B build-asan -S . -DDGFLOW_SANITIZE=address > /dev/null
  cmake --build build-asan -j --target test_mixed_precision > /dev/null
  (cd build-asan && ctest -L mixed_precision --output-on-failure)
fi
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    name=$(basename "$b")
    # benchmarks that support it also archive machine-readable results
    # (kernels_microbench -> BENCH_kernels.json: the roofline fast-path
    # comparison the acceptance criteria read)
    bench_json="bench_results/BENCH_${name}.json"
    [ "$name" = kernels_microbench ] && bench_json="bench_results/BENCH_kernels.json"
    # distributed_microbench -> BENCH_distributed.json: the ghost-exchange
    # traffic validation on 1/2/4/8 logical ranks
    [ "$name" = distributed_microbench ] && bench_json="bench_results/BENCH_distributed.json"
    # recovery_microbench -> BENCH_recovery.json: agreement latency, shard
    # checkpoint throughput and the shrinking-recovery overhead
    [ "$name" = recovery_microbench ] && bench_json="bench_results/BENCH_recovery.json"
    # ablation_precision -> BENCH_precision.json: the mixed-precision
    # iteration-count matrix (dp / sp_levels / sp_levels_sp_amg / sp_ghost)
    [ "$name" = ablation_precision ] && bench_json="bench_results/BENCH_precision.json"
    DGFLOW_PROFILE=1 \
      DGFLOW_PROFILE_JSON="bench_results/PROFILE_${name}.json" \
      DGFLOW_BENCH_JSON="$bench_json" \
      "$b"
  fi
done
echo "profiler reports archived in bench_results/ (PROFILE_*.json, BENCH_*.json)"
