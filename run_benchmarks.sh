#!/bin/sh
# Runs the full benchmark harness sequentially (single-core machine: do not
# run anything else concurrently or the timings are polluted).
set -e
cd "$(dirname "$0")"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done
