#!/bin/sh
# Runs the full benchmark harness sequentially (single-core machine: do not
# run anything else concurrently or the timings are polluted).
#
# Each benchmark runs with profiling enabled and archives its hierarchical
# profiler report (timers / counters / vmpi traffic) as JSON into
# bench_results/PROFILE_<name>.json for cross-PR diffing. Note the
# measurement overhead is small but nonzero; for last-decimal kernel numbers
# rerun the binary of interest without DGFLOW_PROFILE=1.
set -e
cd "$(dirname "$0")"
mkdir -p bench_results

# Verify pass: before any timing is trusted, the rank-failure recovery tests
# (ctest label distributed_resilience: agreement protocol, fault injection,
# shard checkpoints, the end-to-end shrinking recovery) must pass under
# ThreadSanitizer — a hang or race here invalidates every distributed
# number below. Set DGFLOW_SKIP_VERIFY=1 to skip while iterating on a
# single benchmark.
if [ -z "$DGFLOW_SKIP_VERIFY" ]; then
  # The same pass covers the shared-memory worker pool (ctest label
  # threading): the thread-parallel cell loops, the fused per-thread hooks
  # and the chunked reductions must be race-free before any threaded
  # speedup below is trusted.
  # The io_resilience label rides in the same pass: the asynchronous
  # checkpoint writer hands encoded images to a background service thread
  # while the solver keeps mutating its state, and the back-pressure /
  # drain handshake is exactly the kind of protocol TSan breaks open.
  echo "verify pass: distributed_resilience|io_resilience|threading under DGFLOW_SANITIZE=thread"
  cmake -B build-tsan -S . -DDGFLOW_SANITIZE=thread > /dev/null
  cmake --build build-tsan -j \
    --target test_distributed_resilience test_ckpt_io test_threading \
    recovery_microbench threads_microbench > /dev/null
  (cd build-tsan && ctest -L "distributed_resilience|io_resilience|threading" --output-on-failure)

  # Second verify pass: the fused-kernel equivalence, mixed-precision and
  # ABFT tests under AddressSanitizer — the fused hooks write through raw
  # pointers into solver vectors mid-traversal, the single-precision ghost
  # wire packs/unpacks hand-rolled buffers, and the ABFT guard flips bits in
  # live payloads and checksums raw memory regions; an out-of-range hook
  # range, wire offset or stale artifact region must fail here, not corrupt
  # a timing run below. The perf smoke label rides along: it drives every
  # kernel backend (batch AoSoA tables, SoA lane-major staging, generic)
  # through a full vmult harness, so a staging-buffer overrun in a backend
  # fails here first.
  echo "verify pass: mixed_precision|abft|perf under DGFLOW_SANITIZE=address"
  cmake -B build-asan -S . -DDGFLOW_SANITIZE=address > /dev/null
  cmake --build build-asan -j \
    --target test_mixed_precision test_abft abft_microbench \
    kernels_microbench ablation_precision threads_microbench > /dev/null
  (cd build-asan && ctest -L "mixed_precision|abft|perf" --output-on-failure)

  # Third verify pass: the resilience and ABFT suites under UBSan — the
  # bit-flip injection and checksum paths reinterpret raw bytes and shift
  # 64-bit masks, and the recovery ladder rethrows through several catch
  # layers; any misaligned access, bad shift or invalid enum must surface
  # here with -fno-sanitize-recover rather than silently skew a repair.
  echo "verify pass: resilience|abft under DGFLOW_SANITIZE=undefined"
  cmake -B build-ubsan -S . -DDGFLOW_SANITIZE=undefined > /dev/null
  cmake --build build-ubsan -j \
    --target test_resilience_vmpi test_resilience_solver test_checkpoint \
    test_abft abft_microbench > /dev/null
  (cd build-ubsan && ctest -L "resilience|abft" --output-on-failure)
fi
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    name=$(basename "$b")
    # benchmarks that support it also archive machine-readable results;
    # one mapping from binary name to archive name:
    #   kernels     - roofline fast-path comparison (acceptance criteria)
    #                 + kernel-backend section (backend_soa_vs_batch_speedup*)
    #   distributed - ghost-exchange traffic validation on 1/2/4/8 ranks
    #   recovery    - agreement latency, shard checkpoints, shrink recovery
    #   abft        - SDC-guard overhead (< 3%) and the flip-repair check
    #   precision   - mixed-precision iteration-count matrix
    #   threads     - 1/2/4-thread scaling + the bitwise determinism gate
    case "$name" in
      kernels_microbench)     bench_json="bench_results/BENCH_kernels.json" ;;
      distributed_microbench) bench_json="bench_results/BENCH_distributed.json" ;;
      recovery_microbench)    bench_json="bench_results/BENCH_recovery.json" ;;
      abft_microbench)        bench_json="bench_results/BENCH_abft.json" ;;
      ablation_precision)     bench_json="bench_results/BENCH_precision.json" ;;
      threads_microbench)     bench_json="bench_results/BENCH_threads.json" ;;
      *)                      bench_json="bench_results/BENCH_${name}.json" ;;
    esac
    DGFLOW_PROFILE=1 \
      DGFLOW_PROFILE_JSON="bench_results/PROFILE_${name}.json" \
      DGFLOW_BENCH_JSON="$bench_json" \
      "$b"
  fi
done
echo "profiler reports archived in bench_results/ (PROFILE_*.json, BENCH_*.json)"
