// Figure 8: strong scaling of the matrix-free DG Laplacian mat-vec (k=3) on
// the lung geometry (adaptive, hanging nodes) and the generic bifurcation
// (uniformly refined). The local machine has one core, so the scaling curves
// are produced by the calibrated distributed performance model (see
// DESIGN.md): the saturated and cache-regime rates come from measurements on
// this machine projected to one SuperMUC-NG node, the lung's SIMD-lane fill
// fraction is measured from the real meshes, and the network terms use the
// published machine constants. The left panel prints run time vs work per
// rank, the right panel throughput vs run time (the "double bump").

#include "bench/bench_common.h"
#include "operators/laplace_operator.h"
#include "perfmodel/scaling_model.h"

using namespace dgflow;
using namespace dgflow::bench;

namespace
{
/// Measured per-core saturated DP mat-vec rate at degree 3 on @p lung_mesh.
double measure_rate(const CoarseMesh &coarse, const BoundaryMap &bc,
                    double *fill_fraction)
{
  Mesh mesh(coarse);
  while (mesh.n_active_cells() * 64 < 6e5)
    mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {3};
  data.n_q_points_1d = {4};
  data.geometry_degree = 1;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, bc);
  Vector<double> src(laplace.n_dofs()), dst(laplace.n_dofs());
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = 1e-4 * (i % 331);
  const double t = best_of(5, [&]() {
                     for (int i = 0; i < 10; ++i)
                       laplace.vmult(dst, src);
                   }) /
                   10.;
  if (fill_fraction != nullptr)
    *fill_fraction = mf.face_lane_fill_fraction();
  return laplace.n_dofs() / t;
}
} // namespace

int main()
{
  dgflow::prof::EnvSession profile_session;
  print_header("Fig. 8: strong scaling of the k=3 mat-vec (lung vs "
               "bifurcation), model-projected",
               "paper Fig. 8: saturation below 1e-4 s; cache-regime bump; "
               "lung throughput close to the bifurcation away from the "
               "scaling limit");

  // calibrate the model from local measurements
  BoundaryMap bc_dirichlet;
  for (unsigned int id = 0; id < 300; ++id)
    bc_dirichlet.set(id, BoundaryType::dirichlet);

  double lung_fill = 1., bif_fill = 1.;
  const LungMesh lung = lung_mesh_for_generations(4);
  const LungMesh bif = bifurcation_mesh();
  const double rate_lung = measure_rate(lung.coarse, bc_dirichlet, &lung_fill);
  const double rate_bif = measure_rate(bif.coarse, bc_dirichlet, &bif_fill);
  std::printf("measured per-core saturated rates (k=3, DP): bifurcation "
              "%.3g DoF/s, lung %.3g DoF/s (face-lane fill %.2f vs %.2f)\n",
              rate_bif, rate_lung, bif_fill, lung_fill);

  ScalingModel model;
  model.machine = MachineModel::supermuc_ng();
  // mesh efficiency: ratio of the measured unstructured-mesh rate to the
  // bifurcation rate (partially filled lanes, many face orientations)
  const double lung_efficiency = rate_lung / rate_bif;

  struct Case
  {
    const char *name;
    double n_dofs;
    double efficiency;
  };
  const Case cases[] = {{"bifurcation  26 MDoF", 2.6e7, 1.0},
                        {"bifurcation 210 MDoF", 2.1e8, 1.0},
                        {"lung  22 MDoF", 2.2e7, lung_efficiency},
                        {"lung 179 MDoF", 1.79e8, lung_efficiency}};

  for (const auto &c : cases)
  {
    std::printf("\n%s (model, SuperMUC-NG):\n", c.name);
    Table table({"nodes", "DoF/rank", "time/mat-vec [s]",
                 "throughput [DoF/s]"});
    model.mesh_efficiency = c.efficiency;
    const double max_nodes = c.n_dofs > 1e8 ? 2048 : 512;
    for (double nodes = 1; nodes <= max_nodes; nodes *= 2)
    {
      const double t = model.matvec_time(c.n_dofs, 3, nodes);
      table.add_row(int(nodes),
                    Table::sci(c.n_dofs / (nodes * 48), 2),
                    Table::sci(t, 3), Table::sci(c.n_dofs / t, 3));
    }
    table.print();
  }

  std::printf("\nexpected shape (paper): run times fall to slightly below "
              "1e-4 s; the throughput-vs-time curve shows the cache bump "
              "below 1e-3 s and the latency collapse near 1e-4 s; the lung "
              "tracks the bifurcation except near the scaling limit.\n");
  return 0;
}
