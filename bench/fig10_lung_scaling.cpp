// Figure 10: pressure Poisson solves on the lung geometry (adaptively
// refined upper airways, hanging nodes), k=3, tolerance 1e-10. The real
// solves verify the elevated iteration count relative to the clean
// bifurcation (paper: 21-22 vs 9 - smoother effectivity drops on the
// strongly deformed junction cells) and produce the V-cycle latency
// breakdown across levels; the scaling curves for the paper's 22M-11.5B DoF
// series come from the calibrated model with the lung efficiency factor.

#include <string>

#include "bench/bench_common.h"
#include "multigrid/hybrid_multigrid.h"
#include "perfmodel/scaling_model.h"
#include "solvers/cg.h"

using namespace dgflow;
using namespace dgflow::bench;

int main()
{
  dgflow::prof::EnvSession profile_session;
  print_header("Fig. 10: Poisson solver scaling, lung geometry",
               "paper Fig. 10: 21-22 CG iterations; scaling saturates near "
               "0.1-0.15 s; V-cycle time 18/13/26/45% across fine/second/"
               "intermediate/AMG levels");

  Table table({"g", "refined", "cells", "MDoF", "CG its @1e-4",
               "CG its @1e-10", "solve [s]"});
  unsigned int lung_iterations = 21;
  std::vector<double> breakdown;
  double breakdown_amg = 0;

  for (const unsigned int g : {3u, 4u, 5u})
  {
    const LungMesh lung = lung_mesh_for_generations(g);
    BoundaryMap bc;
    bc.set(LungMesh::wall_id, BoundaryType::neumann);
    bc.set(LungMesh::inlet_id, BoundaryType::dirichlet);
    for (const auto id : lung.outlet_ids)
      bc.set(id, BoundaryType::dirichlet);

    Mesh mesh(lung.coarse);
    // refine the upper airways once: adaptive mesh with hanging nodes
    mesh.refine(lung.refine_flags_upto_generation(g >= 4 ? 1 : 0));
    TrilinearGeometry geom(mesh.coarse());

    MatrixFree<double> mf;
    MatrixFree<double>::AdditionalData data;
    data.degrees = {3};
    data.n_q_points_1d = {4};
    data.geometry_degree = 1;
    data.penalty_safety = 4.; // coercivity on the sheared junction cells
    mf.reinit(mesh, geom, data);
    LaplaceOperator<double> laplace;
    laplace.reinit(mf, 0, 0, bc);

    HybridMultigrid<float> mg;
    HybridMultigrid<float>::Options opts;
    opts.geometry_degree = 1;
    opts.penalty_safety = 4.;
    mg.setup(mesh, geom, 3, bc, opts);
    mg.reset_level_timers();

    Vector<double> rhs, x(laplace.n_dofs());
    laplace.assemble_rhs(rhs, [](const Point &) { return 1.; },
                         [](const Point &) { return 0.; });

    SolverControl control;
    control.rel_tol = 1e-4;
    control.max_iterations = 4000;
    std::string its4 = "div.", its10 = "div.";
    double t_solve = 0;
    try
    {
      const auto result4 = solve_cg(laplace, x, rhs, mg, control);
      its4 = std::to_string(result4.iterations);
      lung_iterations = result4.iterations;
      x = 0.;
      control.rel_tol = 1e-10;
      Timer t;
      const auto result = solve_cg(laplace, x, rhs, mg, control);
      t_solve = t.seconds();
      its10 = std::to_string(result.iterations);
    }
    catch (const std::exception &)
    {
      // the float V-cycle diverges on the worst junction cells of the
      // deeper trees - recorded as such (cf. DESIGN.md)
    }
    breakdown = mg.level_seconds();
    breakdown_amg = mg.amg_seconds();

    table.add_row(g, "gens<=1", mesh.n_active_cells(),
                  Table::format(laplace.n_dofs() / 1e6, 3), its4, its10,
                  Table::format(t_solve, 3));
  }
  table.print();

  std::printf("\nmeasured lung iteration counts exceed the bifurcation "
              "baseline (fig09), reproducing the paper's qualitative "
              "contrast (21-22 vs 9 there); the absolute counts are higher "
              "because the point-Jacobi Chebyshev smoother of this "
              "implementation converges slowly on the sheared side-branch "
              "junction cells (last measured: %u at 1e-4).\n",
              lung_iterations);

  // V-cycle latency breakdown (finest case measured above)
  double total = breakdown_amg;
  for (const double s : breakdown)
    total += s;
  std::printf("\nV-cycle time breakdown (largest measured case; paper "
              "values for 180 MDoF on 1024 nodes in brackets):\n");
  if (!breakdown.empty())
  {
    std::printf("  finest level        %5.1f %%  [18 %%]\n",
                100. * breakdown.back() / total);
    if (breakdown.size() >= 2)
      std::printf("  second finest       %5.1f %%  [13 %%]\n",
                  100. * breakdown[breakdown.size() - 2] / total);
    double mid = 0;
    for (std::size_t l = 0; l + 2 < breakdown.size(); ++l)
      mid += breakdown[l];
    std::printf("  intermediate levels %5.1f %%  [26 %%]\n", 100. * mid / total);
    std::printf("  AMG coarse solve    %5.1f %%  [45 %%]\n",
                100. * breakdown_amg / total);
  }
  std::printf("(on one core the AMG share is compute, not latency; the "
              "model below adds the network-latency weighting)\n");

  // model projection
  ScalingModel model;
  model.mesh_efficiency = 0.8; // measured lung fill factor (see fig08)
  ScalingModel::MultigridConfig config;
  config.cg_iterations = lung_iterations;
  config.n_h_levels = 5;
  std::printf("\nmodel-projected lung solve times on SuperMUC-NG:\n");
  Table proj({"MDoF", "nodes", "solve [s]"});
  for (const double n_dofs : {2.2e7, 1.79e8, 1.43e9})
    for (double nodes = std::max(1., n_dofs / 4e8); nodes <= 4096.;
         nodes *= 4)
      proj.add_row(Table::sci(n_dofs / 1e6, 2), int(nodes),
                   Table::format(
                     model.poisson_solve_time(n_dofs, nodes, config), 3));
  proj.print();
  std::printf("\nexpected shape: saturation near 0.1-0.15 s per solve - "
              "higher than the bifurcation's floor because of the doubled "
              "iteration count and the AMG latency (21-22 calls per "
              "solve).\n");
  return 0;
}
