// Figure 9: pressure Poisson solves on the generic bifurcation, k=3,
// relative tolerance 1e-10, hybrid-multigrid-preconditioned CG. The real
// solves run at the refinement levels that fit one core and verify the
// level-independent iteration count (the paper's 9 iterations); the
// strong/weak-scaling curves for the paper's problem sizes (15 MDoF to
// 7.9 BDoF on up to 6400 nodes) come from the calibrated scaling model.

#include "bench/bench_common.h"
#include "multigrid/hybrid_multigrid.h"
#include "perfmodel/scaling_model.h"
#include "solvers/cg.h"

using namespace dgflow;
using namespace dgflow::bench;

int main()
{
  dgflow::prof::EnvSession profile_session;
  print_header("Fig. 9: Poisson solver scaling, generic bifurcation, k=3",
               "paper Fig. 9: 9 CG iterations at all sizes; near-ideal "
               "strong scaling down to ~0.1 s");

  const LungMesh bif = bifurcation_mesh();
  BoundaryMap bc;
  bc.set(LungMesh::wall_id, BoundaryType::neumann);
  bc.set(LungMesh::inlet_id, BoundaryType::dirichlet);
  for (const auto id : bif.outlet_ids)
    bc.set(id, BoundaryType::dirichlet);

  Table table({"l", "cells", "MDoF", "CG its @1e-4", "CG its @1e-10",
               "solve @1e-10 [s]"});
  unsigned int measured_iterations = 9;
  for (unsigned int level = 0; level <= 2; ++level)
  {
    Mesh mesh(bif.coarse);
    mesh.refine_uniform(level);
    TrilinearGeometry geom(mesh.coarse());

    MatrixFree<double> mf;
    MatrixFree<double>::AdditionalData data;
    data.degrees = {3};
    data.n_q_points_1d = {4};
    data.geometry_degree = 1;
    data.penalty_safety = 4.; // sheared junction cells
    mf.reinit(mesh, geom, data);
    LaplaceOperator<double> laplace;
    laplace.reinit(mf, 0, 0, bc);

    HybridMultigrid<float> mg;
    HybridMultigrid<float>::Options opts;
    opts.geometry_degree = 1;
    opts.penalty_safety = 4.;
    mg.setup(mesh, geom, 3, bc, opts);

    Vector<double> rhs, x(laplace.n_dofs());
    laplace.assemble_rhs(rhs, [](const Point &) { return 1.; },
                         [](const Point &) { return 0.; });

    SolverControl control;
    control.rel_tol = 1e-4;
    control.max_iterations = 2000;
    const auto result4 = solve_cg(laplace, x, rhs, mg, control);

    x = 0.;
    control.rel_tol = 1e-10;
    Timer t;
    const auto result = solve_cg(laplace, x, rhs, mg, control);
    const double t_solve = t.seconds();
    measured_iterations = result.iterations;

    table.add_row(level, mesh.n_active_cells(),
                  Table::format(laplace.n_dofs() / 1e6, 3),
                  result4.iterations, result.iterations,
                  Table::format(t_solve, 3));
  }
  table.print();
  std::printf("\nmeasured iteration count at 1e-10 on the finest level: %u "
              "(paper: 9, level-independent). The elevated and "
              "refinement-dependent counts of this implementation are "
              "caused by the ~20 strongly sheared side-branch junction "
              "cells of our meshing template, where the point-Jacobi "
              "Chebyshev smoother is ineffective and the coarse spaces do "
              "not represent the localized modes (residual localization "
              "verified; see DESIGN.md). The paper's merged-cylinder meshes "
              "avoid these cells; a cell-block smoother is the standard "
              "remedy.\n",
              measured_iterations);

  // model projection of the paper's combined strong/weak scaling study
  ScalingModel model;
  ScalingModel::MultigridConfig config;
  config.cg_iterations = measured_iterations;
  std::printf("\nmodel-projected solve times on SuperMUC-NG (paper sizes, "
              "l=3..6):\n");
  Table proj({"MDoF", "nodes", "solve [s]"});
  const double sizes[] = {1.5e7, 1.2e8, 9.9e8, 7.9e9};
  for (const double n_dofs : sizes)
    for (double nodes = std::max(1., n_dofs / 4e8); nodes <= 6400.;
         nodes *= 4)
    {
      config.n_h_levels = 3 + int(std::log2(n_dofs / 1.5e7) / 3);
      proj.add_row(Table::sci(n_dofs / 1e6, 2), int(nodes),
                   Table::format(model.poisson_solve_time(n_dofs, nodes,
                                                          config),
                                 3));
    }
  proj.print();
  std::printf("\nexpected shape: strong scaling near-ideal to ~0.1 s per "
              "solve; weak scaling flat (iteration count constant).\n");
  return 0;
}
