// Ablation study of the hybrid multigrid design choices (paper Section 3.4):
// with/without the geometric (h) coarsening below the continuous Q1 space,
// Chebyshev smoother degree, SIP penalty safety factor, and the effect of
// the mesh (cube vs bifurcation vs lung) on the iteration count.

#include "bench/bench_common.h"
#include "multigrid/hybrid_multigrid.h"
#include "solvers/cg.h"

using namespace dgflow;
using namespace dgflow::bench;

namespace
{
struct Result
{
  unsigned int iterations;
  double seconds;
  unsigned int levels;
};

Result run(const CoarseMesh &coarse, const BoundaryMap &bc,
           const unsigned int refine, const unsigned int degree,
           const HybridMultigrid<float>::Options &opts)
{
  Mesh mesh(coarse);
  mesh.refine_uniform(refine);
  TrilinearGeometry geom(mesh.coarse());

  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.geometry_degree = 1;
  data.penalty_safety = opts.penalty_safety;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, bc);

  HybridMultigrid<float> mg;
  auto o = opts;
  o.geometry_degree = 1;
  mg.setup(mesh, geom, degree, bc, o);

  Vector<double> rhs, x(laplace.n_dofs());
  laplace.assemble_rhs(rhs, [](const Point &) { return 1.; },
                       [](const Point &) { return 0.; });
  SolverControl control;
  control.rel_tol = 1e-10;
  control.max_iterations = 400;
  Timer t;
  const auto result = solve_cg(laplace, x, rhs, mg, control);
  return {result.iterations, t.seconds(), mg.n_levels()};
}

BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 300; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}
} // namespace

int main()
{
  dgflow::prof::EnvSession profile_session;
  print_header("Ablation: hybrid multigrid design choices",
               "paper Sections 3.4 / 5.2 (design discussion)");

  const BoundaryMap bc = all_dirichlet();
  const CoarseMesh cube = subdivided_box(Point(0, 0, 0), Point(1, 1, 1),
                                         {{2, 2, 2}});
  const LungMesh bif = bifurcation_mesh();

  // 1. h-coarsening on/off
  {
    Table t({"variant", "levels", "CG its", "solve [s]"});
    for (const bool h : {true, false})
    {
      HybridMultigrid<float>::Options opts;
      opts.h_coarsening = h;
      const Result r = run(cube, bc, 3, 3, opts);
      t.add_row(h ? "full hybrid (p+c+h+AMG)" : "no h-levels (p+c+AMG)",
                r.levels, r.iterations, Table::format(r.seconds, 3));
    }
    std::printf("\n[1] geometric coarsening below the Q1 space (cube, k=3, "
                "16^3 cells):\n");
    t.print();
  }

  // 2. Chebyshev smoother degree
  {
    Table t({"smoother degree", "CG its", "solve [s]"});
    for (const unsigned int deg : {2u, 3u, 5u})
    {
      HybridMultigrid<float>::Options opts;
      opts.smoother.degree = deg;
      const Result r = run(cube, bc, 3, 3, opts);
      t.add_row(deg, r.iterations, Table::format(r.seconds, 3));
    }
    std::printf("\n[2] Chebyshev smoother degree (paper: 3):\n");
    t.print();
  }

  // 3. SIP penalty safety factor (iteration cost of the robustified
  // operator needed by the sheared lung junction cells)
  {
    Table t({"penalty safety", "CG its", "solve [s]"});
    for (const double safety : {1., 2., 4.})
    {
      HybridMultigrid<float>::Options opts;
      opts.penalty_safety = safety;
      const Result r = run(cube, bc, 3, 3, opts);
      t.add_row(Table::format(safety, 2), r.iterations,
                Table::format(r.seconds, 3));
    }
    std::printf("\n[3] SIP penalty safety factor (cube, k=3):\n");
    t.print();
  }

  // 4. mesh complexity: cube vs bifurcation (the paper's 9 vs 21 contrast
  // is reproduced in fig09/fig10; here the same tolerance on both)
  {
    Table t({"mesh", "CG its", "solve [s]"});
    {
      HybridMultigrid<float>::Options opts;
      const Result r = run(cube, bc, 3, 3, opts);
      t.add_row("cube 16^3", r.iterations, Table::format(r.seconds, 3));
    }
    {
      HybridMultigrid<float>::Options opts;
      opts.penalty_safety = 4.;
      const Result r = run(bif.coarse, bc, 1, 3, opts);
      t.add_row("bifurcation", r.iterations, Table::format(r.seconds, 3));
    }
    std::printf("\n[4] mesh complexity at tol 1e-10:\n");
    t.print();
  }
  return 0;
}
