// Ablation of the even-odd decomposition (paper Section 3.1: flop-reduced
// sum-factorization kernels, cited with 1.5-2x speedup over generic
// kernels at the node level in cache-resident settings): cache-resident
// kernel timings and the effect on the full (memory-bound) operator.

#include "bench/bench_common.h"
#include "matrixfree/fe_evaluation.h"
#include "operators/laplace_operator.h"

using namespace dgflow;
using namespace dgflow::bench;

int main()
{
  dgflow::prof::EnvSession profile_session;
  print_header("Ablation: even-odd decomposition of the 1D kernels",
               "paper Sec. 3.1 (flop-minimizing optimizations)");

  // [1] cache-resident kernel: derivative sweeps on one SIMD batch
  {
    Table t({"n=nq", "generic [ns/call]", "even-odd [ns/call]", "speedup"});
    using VA = VectorizedArray<double>;
    for (const unsigned int n : {4u, 6u, 8u})
    {
      ShapeInfo<double> shape(n - 1, n);
      AlignedVector<VA> in(n * n * n), out(n * n * n);
      for (unsigned int i = 0; i < in.size(); ++i)
        in[i] = VA(0.01 * i);
      const unsigned int reps = 200000;
      const double t_gen = best_of(5, [&]() {
                             for (unsigned int r = 0; r < reps; ++r)
                               for (unsigned int d = 0; d < 3; ++d)
                                 apply_matrix_1d<false, false>(
                                   shape.grad_colloc.data(), n, n, in.data(),
                                   out.data(), d, {{n, n, n}});
                           }) /
                           reps;
      const double t_eo = best_of(5, [&]() {
                            for (unsigned int r = 0; r < reps; ++r)
                              for (unsigned int d = 0; d < 3; ++d)
                                apply_matrix_1d_evenodd<false, false>(
                                  shape.grad_colloc_eo_e.data(),
                                  shape.grad_colloc_eo_o.data(), n, n, -1,
                                  in.data(), out.data(), d, {{n, n, n}});
                          }) /
                          reps;
      t.add_row(n, Table::format(t_gen * 1e9, 4), Table::format(t_eo * 1e9, 4),
                Table::format(t_gen / t_eo, 3));
    }
    std::printf("\n[1] three derivative sweeps over one SIMD cell batch "
                "(cache resident):\n");
    t.print();
  }

  // [2] full operator (memory-bound regime): the kernel speedup is hidden
  // behind the memory transfer, as the roofline analysis predicts
  {
    Table t({"k", "MDoF", "generic [DoF/s]", "even-odd [DoF/s]", "speedup"});
    BoundaryMap bc;
    for (unsigned int id = 0; id < 6; ++id)
      bc.set(id, BoundaryType::dirichlet);
    for (const unsigned int degree : {3u, 5u})
    {
      Mesh mesh(unit_cube());
      while (mesh.n_active_cells() * pow_int(degree + 1, 3) < 2e6)
        mesh.refine_uniform(1);
      TrilinearGeometry geom(mesh.coarse());
      MatrixFree<double> mf;
      MatrixFree<double>::AdditionalData data;
      data.degrees = {degree};
      data.n_q_points_1d = {degree + 1};
      mf.reinit(mesh, geom, data);

      Vector<double> src(mf.n_dofs(0, 1)), dst(src.size());
      for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = 1e-4 * (i % 811);

      double rates[2];
      for (const bool eo : {false, true})
      {
        FEEvaluation<double, 1> phi(mf, 0, 0, eo);
        auto cell_laplace = [&]() {
          for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
          {
            phi.reinit(b);
            phi.read_dof_values(src);
            phi.evaluate(false, true);
            for (unsigned int q = 0; q < phi.n_q_points; ++q)
              phi.submit_gradient(phi.get_gradient(q), q);
            phi.integrate(false, true);
            phi.distribute_local_to_global(dst);
          }
        };
        const double t = best_of(5, [&]() {
                           for (int i = 0; i < 5; ++i)
                             cell_laplace();
                         }) /
                         5.;
        rates[eo ? 1 : 0] = src.size() / t;
      }
      t.add_row(degree, Table::format(src.size() / 1e6, 3),
                Table::sci(rates[0], 3), Table::sci(rates[1], 3),
                Table::format(rates[1] / rates[0], 3));
    }
    std::printf("\n[2] cell-Laplacian operator sweep (streamed from "
                "memory):\n");
    t.print();
  }

  std::printf("\nexpected: clear kernel-level speedup growing with n; the "
              "operator-level gain is smaller because the evaluation is "
              "memory-bound (paper Fig. 7).\n");
  return 0;
}
