// Figure 6 (left): throughput of the matrix-free DG Laplacian mat-vec in
// double precision for degrees k = 1..6 on the lung geometry, and of one
// Chebyshev smoother iteration in single precision on the finest (DG) and
// second-finest (continuous Q1) multigrid levels.
//
// The paper measures per SuperMUC-NG node (48 Skylake cores); this harness
// measures per core of the local machine and reports both the raw per-core
// numbers and the projection to one paper node (x cores x parallel
// efficiency), with the paper's values for comparison. Problem sizes are
// scaled to the single-core memory (1-6 MDoF instead of 10-100 MDoF/node).

#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "operators/cfe_laplace_operator.h"
#include "operators/laplace_operator.h"
#include "solvers/chebyshev.h"

using namespace dgflow;
using namespace dgflow::bench;

namespace
{
BoundaryMap lung_bc(const LungMesh &lung)
{
  BoundaryMap bc;
  bc.set(LungMesh::wall_id, BoundaryType::neumann);
  bc.set(LungMesh::inlet_id, BoundaryType::dirichlet);
  for (const auto id : lung.outlet_ids)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}
} // namespace

int main()
{
  dgflow::prof::EnvSession profile_session;
  print_header("Fig. 6 (left): mat-vec and smoother throughput, lung geometry",
               "paper Fig. 6 left (k=3 DP mat-vec: 1.4e9 DoF/s per node; SP "
               "smoother ~30% above the DP mat-vec)");

  const LungMesh lung = lung_mesh_for_generations(3);

  Table table({"k", "cells", "MDoF", "matvec DP [DoF/s]",
               "smoother SP DG [DoF/s]", "smoother SP Q1 [DoF/s]",
               "SP/DP ratio"});

  struct Row
  {
    unsigned int degree;
    std::size_t cells, dofs;
    double rate_dp, rate_sp, rate_c, compression;
  };
  std::vector<Row> rows;
  double throughput_k3 = 0;
  for (unsigned int degree = 1; degree <= 6; ++degree)
  {
    // refine towards a 1-6 MDoF working set
    Mesh mesh(lung.coarse);
    const double target_dofs = 1.0e6;
    while (mesh.n_active_cells() * pow_int(degree + 1, 3) < target_dofs / 4)
      mesh.refine_uniform(1);
    TrilinearGeometry geom(mesh.coarse());

    // double-precision operator
    MatrixFree<double> mf;
    MatrixFree<double>::AdditionalData data;
    data.degrees = {degree};
    data.n_q_points_1d = {degree + 1};
    data.geometry_degree = 1;
    mf.reinit(mesh, geom, data);
    LaplaceOperator<double> laplace;
    laplace.reinit(mf, 0, 0, lung_bc(lung));

    Vector<double> src(laplace.n_dofs()), dst(laplace.n_dofs());
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = 0.3 + 1e-6 * (i % 1001);
    const unsigned int n_mv = std::max<std::size_t>(3, 1e7 / laplace.n_dofs());
    const double t_dp =
      best_of(5, [&]() {
        for (unsigned int i = 0; i < n_mv; ++i)
          laplace.vmult(dst, src);
      }) /
      n_mv;
    const double rate_dp = laplace.n_dofs() / t_dp;
    if (degree == 3)
      throughput_k3 = rate_dp;

    // single-precision smoother on the DG level
    MatrixFree<float> mff;
    MatrixFree<float>::AdditionalData dataf;
    dataf.degrees = {degree, 1};
    dataf.basis_types = {BasisType::lagrange_gauss,
                         BasisType::lagrange_gauss_lobatto};
    dataf.n_q_points_1d = {degree + 1, 2};
    dataf.geometry_degree = 1;
    mff.reinit(mesh, geom, dataf);
    LaplaceOperator<float> laplace_f;
    laplace_f.reinit(mff, 0, 0, lung_bc(lung));
    Vector<float> diag_f;
    laplace_f.compute_diagonal(diag_f);
    ChebyshevSmoother<LaplaceOperator<float>, Vector<float>> smoother;
    ChebyshevData sm_data;
    sm_data.degree = 1; // one mat-vec + vector updates = one iteration
    smoother.reinit(laplace_f, diag_f, sm_data);

    Vector<float> srcf, dstf(laplace_f.n_dofs());
    srcf.copy_and_convert(src);
    dstf = 0.f;
    const double t_sp = best_of(5, [&]() {
                          for (unsigned int i = 0; i < n_mv; ++i)
                            smoother.smooth(dstf, srcf, false);
                        }) /
                        n_mv;
    const double rate_sp = laplace_f.n_dofs() / t_sp;

    // continuous Q1 level (the second-finest level of the hybrid hierarchy)
    CFEDofHandler cfe_dofs;
    cfe_dofs.reinit(mesh);
    const CFESpace cfe =
      make_q1_space(cfe_dofs, [](unsigned int id) { return id >= 1; });
    CFELaplaceOperator<float> cfe_op;
    cfe_op.reinit(mff, 1, 1, cfe);
    Vector<float> diag_c;
    cfe_op.compute_diagonal(diag_c);
    ChebyshevSmoother<CFELaplaceOperator<float>, Vector<float>> smoother_c;
    smoother_c.reinit(cfe_op, diag_c, sm_data);
    Vector<float> src_c(cfe_op.n_dofs()), dst_c(cfe_op.n_dofs());
    for (std::size_t i = 0; i < src_c.size(); ++i)
      src_c[i] = 0.4f + 1e-5f * (i % 97);
    const unsigned int n_mv_c = n_mv * 4;
    dst_c = 0.f;
    const double t_c = best_of(5, [&]() {
                         for (unsigned int i = 0; i < n_mv_c; ++i)
                           smoother_c.smooth(dst_c, src_c, false);
                       }) /
                       n_mv_c;
    const double rate_c = cfe_op.n_dofs() / t_c;

    table.add_row(degree, mesh.n_active_cells(),
                  Table::format(laplace.n_dofs() / 1e6, 3),
                  Table::sci(rate_dp, 3), Table::sci(rate_sp, 3),
                  Table::sci(rate_c, 3), Table::format(rate_sp / rate_dp, 3));
    rows.push_back({degree, mesh.n_active_cells(), laplace.n_dofs(), rate_dp,
                    rate_sp, rate_c, mf.metric_compression_ratio()});
  }
  table.print();

  std::printf("\nlocal machine: 1 core; paper: 48-core Skylake node.\n");
  std::printf("projected node throughput at k=3 (x48 cores, 80%% parallel "
              "efficiency): %.3g DoF/s (paper: 1.4e9 DoF/s)\n",
              throughput_k3 * 48 * 0.8);
  std::printf("expected shape: throughput roughly flat in k with a maximum "
              "near k=3-4; SP smoother ~1.3x the DP mat-vec rate.\n");

  if (const char *path = std::getenv("DGFLOW_BENCH_JSON"))
  {
    std::FILE *f = std::fopen(path, "w");
    if (f)
    {
      std::fprintf(f, "{\n  \"schema\": \"dgflow-bench-fig06-v1\",\n");
      std::fprintf(f, "  \"projected_node_dofs_per_s_k3\": %.6e,\n",
                   throughput_k3 * 48 * 0.8);
      std::fprintf(f, "  \"benchmarks\": [\n");
      for (std::size_t i = 0; i < rows.size(); ++i)
        std::fprintf(f,
                     "    {\"degree\": %u, \"cells\": %zu, \"n_dofs\": %zu, "
                     "\"matvec_dp_dofs_per_s\": %.6e, "
                     "\"smoother_sp_dofs_per_s\": %.6e, "
                     "\"smoother_q1_dofs_per_s\": %.6e, "
                     "\"metric_compression\": %.6g}%s\n",
                     rows[i].degree, rows[i].cells, rows[i].dofs,
                     rows[i].rate_dp, rows[i].rate_sp, rows[i].rate_c,
                     rows[i].compression, i + 1 < rows.size() ? "," : "");
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("benchmark JSON archived to %s\n", path);
    }
  }
  return 0;
}
