#pragma once

// Shared helpers of the benchmark harness: the geometries the paper's
// evaluation uses (generic bifurcation, lung airway trees), timing
// protocol (best sample of repeated runs, Section 4), and a stream-triad
// measurement to place the local machine's memory-bandwidth roofline.

#include <cstdio>

#include "common/table.h"
#include "common/vector.h"
#include "common/timer.h"
#include "instrumentation/profiler.h"
#include "lung/lung_mesh.h"
#include "mesh/generators.h"

namespace dgflow::bench
{
/// The "generic bifurcation" of the paper (Figs. 8-9): one cylinder
/// splitting into two outlets with a 60-degree opening angle.
inline LungMesh bifurcation_mesh()
{
  AirwayTreeParameters prm;
  prm.n_generations = 1;
  prm.branch_angle_major = 30. * M_PI / 180.;
  prm.branch_angle_minor = 30. * M_PI / 180.;
  prm.jitter = 0.;
  // similar element counts as the paper's 468-cell bifurcation
  return build_lung_mesh(AirwayTree::generate(prm));
}

inline LungMesh lung_mesh_for_generations(const unsigned int g)
{
  AirwayTreeParameters prm;
  prm.n_generations = g;
  return build_lung_mesh(AirwayTree::generate(prm));
}

/// Best-of-N timing of a kernel, following the paper's protocol.
template <typename F>
double best_of(const unsigned int repetitions, const F &f)
{
  double best = 1e300;
  for (unsigned int r = 0; r < repetitions; ++r)
  {
    Timer t;
    f();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Measured stream-triad bandwidth [B/s] of this machine with @p n_threads
/// streaming concurrently (sets the memory roofline for Fig. 7 and
/// calibrates the scaling model). The sweep is cut into fixed contiguous
/// per-thread ranges — the same disjoint-write discipline the solver's
/// parallel loops use — so the measured rate is what those loops can reach.
inline double measure_stream_bandwidth(const unsigned int n_threads = 1)
{
  const std::size_t n = 32 * 1024 * 1024; // 3 x 256 MB traffic
  Vector<double> a(n), b(n), c(n);
  for (std::size_t i = 0; i < n; ++i)
  {
    b[i] = 1.0 + double(i % 17);
    c[i] = 0.5 * double(i % 11);
  }
  auto &pool = concurrency::ThreadPool::instance();
  const unsigned int saved = pool.n_threads();
  if (n_threads > 1)
    pool.set_n_threads(n_threads);
  const unsigned int n_chunks = std::max(1u, n_threads);
  const double t = best_of(5, [&]() {
    double *DGFLOW_RESTRICT ad = a.data();
    const double *DGFLOW_RESTRICT bd = b.data();
    const double *DGFLOW_RESTRICT cd = c.data();
    pool.run_chunks(n_chunks, [&](const unsigned int ch) {
      const std::size_t begin = n * ch / n_chunks;
      const std::size_t end = n * (ch + 1) / n_chunks;
      for (std::size_t i = begin; i < end; ++i)
        ad[i] = bd[i] + 1.7 * cd[i];
    });
  });
  if (n_threads > 1)
    pool.set_n_threads(saved);
  return 3. * n * sizeof(double) / t;
}

inline void print_header(const char *title, const char *paper_ref)
{
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

} // namespace dgflow::bench
