// Table 3: minimum wall time per time step of state-of-the-art high-order
// incompressible flow solvers in the strong-scaling limit. The literature
// rows are the paper's; our row combines the measured per-step cost of the
// lung application on this machine with the calibrated scaling model at the
// paper's node counts.

#include "bench/bench_common.h"
#include "lung/lung_application.h"
#include "perfmodel/scaling_model.h"

using namespace dgflow;
using namespace dgflow::bench;

int main()
{
  dgflow::prof::EnvSession profile_session;
  print_header("Table 3: state-of-the-art comparison, min wall time per step",
               "paper Table 3");

  // measure the per-step wall time of the g=3 application on this machine
  LungApplicationParameters prm;
  prm.generations = 3;
  LungApplication app(prm);
  double wall = 0;
  unsigned int measured = 0;
  for (unsigned int s = 0; s < 120; ++s)
  {
    const auto info = app.advance();
    if (s >= 30)
    {
      wall += info.wall_time;
      ++measured;
    }
  }
  const double t_step_local = wall / measured;

  // model projection to the paper's strong-scaling limit (g=3 on 2 nodes)
  ScalingModel model;
  model.mesh_efficiency = 0.8;
  ScalingModel::MultigridConfig config;
  config.cg_iterations = 7;
  config.n_h_levels = 2;
  const double n_cells = app.mesh().n_active_cells();
  const double t_step_model =
    model.poisson_solve_time(n_cells * 27, 2, config) +
    6. * model.matvec_time(n_cells * 192, 3, 2);

  Table table({"publication", "supercomputer", "min t_wall/N_dt [s]"});
  table.add_row("Offermans et al. [51]", "Mira (Power BQC)", "0.1");
  table.add_row("CEED-MS35 [39]", "Summit (Nvidia V100)", "0.066 - 0.1");
  table.add_row("CEED-MS36 [40]", "Fugaku (Fujitsu A64FX)", "0.1 - 0.2");
  table.add_row("Krank et al. [41]", "SuperMUC (Intel SB)", "0.05");
  table.add_row("Arndt et al. [6]", "SuperMUC-NG (Intel Sky)",
                "0.015 - 0.03");
  table.add_row("paper (Kronbichler et al.)", "SuperMUC-NG (Intel Sky)",
                "0.017 - 0.045");
  table.add_row("this reproduction (measured)", "1 core, this machine",
                Table::format(t_step_local, 3));
  table.add_row("this reproduction (model)", "SuperMUC-NG, 2 nodes",
                Table::format(t_step_model, 3));
  table.print();

  std::printf("\nexpected shape: the dual-splitting DG solver with hybrid "
              "multigrid operates in the few-hundredths-of-a-second per "
              "step regime in the strong-scaling limit, ahead of the "
              "published spectral-element numbers.\n");
  return 0;
}
