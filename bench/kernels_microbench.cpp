// Micro-kernel and fast-path benchmark behind the roofline analysis
// (Figs. 6-7): times the SIP Laplace vmult per polynomial degree on a
// structured Cartesian mesh in three configurations -
//   generic:    runtime-extent kernels, full per-q metric
//   specialized: compile-time kernel dispatch, full per-q metric
//   spec+compr: compile-time kernels + per-batch compressed metric
// and reports DoF/s, bytes/DoF, and the speedup over the generic path.
//
// A backend section times the same vmult across the kernel backends of
// fem/kernel_backend.h (batch / soa / generic, selected per MatrixFree via
// AdditionalData::backend) and reports the soa-vs-batch ratio - the price of
// the lane-major staging on the host - plus the projected throughput of the
// SoA layout on an HBM-class APU (perfmodel DeviceModel).
//
// A second section times a full Chebyshev smoothing sweep with the solver's
// BLAS-1 updates fused into the operator's hooked cell loop (contract v2)
// against the classic separate sweeps: the fused path eliminates the
// standalone vector passes, which shows up as lower bytes/DoF and higher
// DoF/s at moderate degrees where the mat-vec does not fully dominate.
//
// Machine-readable output: when DGFLOW_BENCH_JSON is set, the results are
// archived as JSON (schema dgflow-bench-kernels-v1) for cross-PR diffing;
// run_benchmarks.sh stores it as bench_results/BENCH_kernels.json.
// A fast smoke variant (--smoke, also run under `ctest -L perf`) shrinks
// meshes and repetitions to verify the harness end to end.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "fem/kernel_backend.h"
#include "fem/kernel_dispatch.h"
#include "operators/laplace_operator.h"
#include "perfmodel/device_model.h"
#include "perfmodel/kernel_model.h"
#include "solvers/chebyshev.h"

using namespace dgflow;
using namespace dgflow::bench;

namespace
{
struct Result
{
  std::string name = "laplace_vmult";
  unsigned int degree, n_q_1d;
  std::string config;
  std::size_t n_dofs;
  double seconds;      ///< best time of one vmult (or one smoothing sweep)
  double dofs_per_s;
  double bytes_per_dof; ///< model estimate from the stored metric
};

BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}

/// Times the three configurations for one degree with the rounds
/// interleaved (generic / specialized / spec+compr, generic / ... ) and the
/// per-config minimum taken across rounds: on a shared machine the load
/// drifts over seconds, so timing each config en bloc would compare
/// different machine states and make the speedup ratio unstable.
std::vector<Result> time_laplace_configs(const Mesh &mesh,
                                         const unsigned int degree,
                                         const unsigned int rounds)
{
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.geometry_degree = 1;

  data.compress_geometry = false;
  MatrixFree<double> mf_full;
  mf_full.reinit(mesh, geom, data);
  data.compress_geometry = true;
  MatrixFree<double> mf_compr;
  mf_compr.reinit(mesh, geom, data);

  LaplaceOperator<double> laplace_full, laplace_compr;
  laplace_full.reinit(mf_full, 0, 0, all_dirichlet());
  laplace_compr.reinit(mf_compr, 0, 0, all_dirichlet());
  Vector<double> src(laplace_full.n_dofs()), dst(laplace_full.n_dofs());
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = 0.3 + 1e-6 * (i % 1001);

  struct Config
  {
    const char *name;
    LaplaceOperator<double> *op;
    MatrixFree<double> *mf;
    bool specialized;
  };
  const Config configs[3] = {
    {"generic", &laplace_full, &mf_full, false},
    {"specialized", &laplace_full, &mf_full, true},
    {"specialized_compressed", &laplace_compr, &mf_compr, true},
  };

  const std::size_t n_dofs = laplace_full.n_dofs();
  const unsigned int n_mv = std::max<std::size_t>(2, 4e6 / n_dofs);
  double best[3] = {1e300, 1e300, 1e300};
  for (unsigned int round = 0; round < rounds; ++round)
    for (unsigned int c = 0; c < 3; ++c)
    {
      set_specialized_kernels_enabled(configs[c].specialized);
      const double t = best_of(1, [&]() {
                         for (unsigned int i = 0; i < n_mv; ++i)
                           configs[c].op->vmult(dst, src);
                       }) /
                       n_mv;
      if (t < best[c])
        best[c] = t;
    }
  set_specialized_kernels_enabled(true);

  std::vector<Result> results;
  for (unsigned int c = 0; c < 3; ++c)
  {
    Result r;
    r.degree = degree;
    r.n_q_1d = degree + 1;
    r.config = configs[c].name;
    r.n_dofs = n_dofs;
    r.seconds = best[c];
    r.dofs_per_s = double(n_dofs) / best[c];
    r.bytes_per_dof = configs[c].mf->estimated_vmult_bytes_per_dof(0, 0);
    results.push_back(r);
  }
  return results;
}

/// Times one full Chebyshev smoothing sweep (production degree 3,
/// point-Jacobi) fused vs unfused, rounds interleaved like the vmult
/// configurations above. The bytes/DoF model adds the smoother's per-step
/// vector traffic on top of the operator's estimate: the classic path makes
/// four separate BLAS-1 passes per step (r.sadd, r.scale, d.sadd, x.add -
/// 12 scalar accesses per DoF), while the fused post hook only adds the b
/// and inverse-diagonal reads, the d read-modify-write and the x write
/// (5 accesses) because r and the x read are the vmult's own dst/src.
std::vector<Result> time_smoother_configs(const Mesh &mesh,
                                          const unsigned int degree,
                                          const unsigned int rounds)
{
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.geometry_degree = 1;
  MatrixFree<double> mf;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  Vector<double> diag;
  laplace.compute_diagonal(diag);

  Vector<double> x(laplace.n_dofs()), b(laplace.n_dofs());
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = 0.7 + 1e-6 * (i % 997);

  using Smoother = ChebyshevSmoother<LaplaceOperator<double>, Vector<double>>;
  ChebyshevData cheb;
  cheb.fuse_loops = false;
  Smoother unfused;
  unfused.reinit(laplace, diag, cheb);
  cheb.fuse_loops = true;
  Smoother fused;
  fused.reinit(laplace, diag, cheb);
  const Smoother *smoothers[2] = {&unfused, &fused};

  const std::size_t n_dofs = laplace.n_dofs();
  const unsigned int n_sweeps = std::max<std::size_t>(2, 2e6 / n_dofs);
  double best[2] = {1e300, 1e300};
  for (unsigned int round = 0; round < rounds; ++round)
    for (unsigned int c = 0; c < 2; ++c)
    {
      const double t = best_of(1, [&]() {
                         for (unsigned int i = 0; i < n_sweeps; ++i)
                           smoothers[c]->smooth(x, b, false);
                       }) /
                       n_sweeps;
      if (t < best[c])
        best[c] = t;
    }

  const double vmult_bpd = mf.estimated_vmult_bytes_per_dof(0, 0);
  std::vector<Result> results;
  for (unsigned int c = 0; c < 2; ++c)
  {
    Result r;
    r.name = "cheby_smooth";
    r.degree = degree;
    r.n_q_1d = degree + 1;
    r.config = c == 0 ? "unfused" : "fused";
    r.n_dofs = n_dofs;
    r.seconds = best[c];
    r.dofs_per_s = double(n_dofs) / best[c];
    r.bytes_per_dof =
      vmult_bpd + (c == 0 ? 12. : 5.) * sizeof(double);
    results.push_back(r);
  }
  return results;
}

/// Times the three kernel backends for one degree, rounds interleaved like
/// time_laplace_configs. Each backend gets its own MatrixFree (the backend
/// resolves at reinit through AdditionalData::backend) over the same mesh.
std::vector<Result> time_backend_configs(const Mesh &mesh,
                                         const unsigned int degree,
                                         const unsigned int rounds)
{
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.geometry_degree = 1;

  const KernelBackendType backends[3] = {KernelBackendType::batch,
                                         KernelBackendType::soa,
                                         KernelBackendType::generic};
  MatrixFree<double> mf[3];
  LaplaceOperator<double> ops[3];
  for (unsigned int c = 0; c < 3; ++c)
  {
    data.backend = backends[c];
    mf[c].reinit(mesh, geom, data);
    ops[c].reinit(mf[c], 0, 0, all_dirichlet());
  }

  Vector<double> src(ops[0].n_dofs()), dst(ops[0].n_dofs());
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = 0.3 + 1e-6 * (i % 1001);

  const std::size_t n_dofs = ops[0].n_dofs();
  const unsigned int n_mv = std::max<std::size_t>(2, 4e6 / n_dofs);
  double best[3] = {1e300, 1e300, 1e300};
  for (unsigned int round = 0; round < rounds; ++round)
    for (unsigned int c = 0; c < 3; ++c)
    {
      const double t = best_of(1, [&]() {
                         for (unsigned int i = 0; i < n_mv; ++i)
                           ops[c].vmult(dst, src);
                       }) /
                       n_mv;
      if (t < best[c])
        best[c] = t;
    }

  std::vector<Result> results;
  for (unsigned int c = 0; c < 3; ++c)
  {
    Result r;
    r.name = "laplace_vmult_backend";
    r.degree = degree;
    r.n_q_1d = degree + 1;
    r.config = std::string("backend_") + kernel_backend_name(backends[c]);
    r.n_dofs = n_dofs;
    r.seconds = best[c];
    r.dofs_per_s = double(n_dofs) / best[c];
    r.bytes_per_dof = mf[c].estimated_vmult_bytes_per_dof(0, 0);
    results.push_back(r);
  }
  return results;
}

void write_json(const char *path, const std::vector<Result> &results,
                const double speedup_k5, const double fused_speedup,
                const double fused_traffic_ratio,
                const std::vector<std::pair<unsigned int, double>>
                  &backend_speedups,
                const bool smoke)
{
  std::FILE *f = std::fopen(path, "w");
  if (!f)
  {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"dgflow-bench-kernels-v1\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"speedup_degree5_specialized_compressed_vs_generic\": "
                  "%.6g,\n",
               speedup_k5);
  std::fprintf(f, "  \"cheby_fused_vs_unfused_speedup\": %.6g,\n",
               fused_speedup);
  std::fprintf(f, "  \"cheby_fused_vs_unfused_bytes_per_dof_ratio\": %.6g,\n",
               fused_traffic_ratio);
  double best_backend_speedup = 0;
  for (const auto &[deg, s] : backend_speedups)
  {
    std::fprintf(f, "  \"backend_soa_vs_batch_speedup_k%u\": %.6g,\n", deg, s);
    best_backend_speedup = std::max(best_backend_speedup, s);
  }
  std::fprintf(f, "  \"backend_soa_vs_batch_speedup\": %.6g,\n",
               best_backend_speedup);
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i)
  {
    const Result &r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"degree\": %u, "
                 "\"n_q_1d\": %u, \"config\": \"%s\", \"n_dofs\": %zu, "
                 "\"seconds\": %.6e, \"dofs_per_s\": %.6e, "
                 "\"bytes_per_dof\": %.6g}%s\n",
                 r.name.c_str(), r.degree, r.n_q_1d, r.config.c_str(),
                 r.n_dofs, r.seconds, r.dofs_per_s, r.bytes_per_dof,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("benchmark JSON archived to %s\n", path);
}
} // namespace

int main(int argc, char **argv)
{
  dgflow::prof::EnvSession profile_session;
  const bool smoke = (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
                     std::getenv("DGFLOW_BENCH_SMOKE") != nullptr;

  print_header(
    "Kernel fast paths: SIP Laplace vmult, Cartesian mesh, per degree",
    "paper Sec. 3.1/3.2: fixed-size kernels + compressed metric keep the "
    "mat-vec near the memory roofline; expect the largest gain at high k");

  const std::vector<unsigned int> degrees =
    smoke ? std::vector<unsigned int>{2, 5}
          : std::vector<unsigned int>{2, 3, 4, 5};
  const unsigned int rounds = smoke ? 2 : 7;

  Table table({"k", "MDoF", "generic [DoF/s]", "specialized [DoF/s]",
               "spec+compr [DoF/s]", "speedup", "B/DoF full", "B/DoF compr"});

  std::vector<Result> results;
  double speedup_k5 = 0;
  for (const unsigned int degree : degrees)
  {
    // size the mesh so the full per-q metric exceeds the last-level cache:
    // the compressed metric stays resident while the generic path streams,
    // which is the regime the roofline analysis (Fig. 7) argues about
    Mesh mesh(unit_cube());
    const unsigned int refines = smoke ? 2u : (degree <= 3 ? 5u : 4u);
    mesh.refine_uniform(refines);

    const auto degree_results = time_laplace_configs(mesh, degree, rounds);
    const Result &generic = degree_results[0];
    const Result &spec = degree_results[1];
    const Result &spec_compr = degree_results[2];
    results.insert(results.end(), degree_results.begin(),
                   degree_results.end());

    const double speedup = spec_compr.dofs_per_s / generic.dofs_per_s;
    if (degree == 5)
      speedup_k5 = speedup;
    table.add_row(degree, Table::format(generic.n_dofs / 1e6, 3),
                  Table::sci(generic.dofs_per_s, 3),
                  Table::sci(spec.dofs_per_s, 3),
                  Table::sci(spec_compr.dofs_per_s, 3),
                  Table::format(speedup, 2),
                  Table::format(generic.bytes_per_dof, 1),
                  Table::format(spec_compr.bytes_per_dof, 1));
  }
  table.print();

  std::printf("\nacceptance target: k=5 specialized+compressed >= 1.5x "
              "generic (measured: %.2fx)\n",
              speedup_k5);

  // kernel backends: AoSoA batch vs lane-major SoA vs the generic fallback,
  // each selected per MatrixFree through AdditionalData::backend, with the
  // projected SoA throughput on an HBM-class APU next to the host numbers
  const DeviceModel apu = DeviceModel::mi300a();
  const std::vector<unsigned int> backend_degrees =
    smoke ? std::vector<unsigned int>{3} : std::vector<unsigned int>{2, 3, 5};
  Table backend_table({"k", "MDoF", "batch [DoF/s]", "soa [DoF/s]",
                       "generic [DoF/s]", "soa/batch", "APU proj [DoF/s]"});
  std::vector<std::pair<unsigned int, double>> backend_speedups;
  for (const unsigned int degree : backend_degrees)
  {
    Mesh mesh(unit_cube());
    mesh.refine_uniform(smoke ? 2u : (degree <= 3 ? 5u : 4u));
    const auto bres = time_backend_configs(mesh, degree, rounds);
    const Result &batch = bres[0];
    const Result &soa = bres[1];
    const Result &generic = bres[2];
    results.insert(results.end(), bres.begin(), bres.end());
    const double ratio = soa.dofs_per_s / batch.dofs_per_s;
    backend_speedups.emplace_back(degree, ratio);
    KernelModel kernel{degree, 8};
    const double apu_dofs = apu.projected_dofs_per_s(
      kernel.measured_bytes_per_dof(), kernel.flops_per_dof());
    backend_table.add_row(degree, Table::format(batch.n_dofs / 1e6, 3),
                          Table::sci(batch.dofs_per_s, 3),
                          Table::sci(soa.dofs_per_s, 3),
                          Table::sci(generic.dofs_per_s, 3),
                          Table::format(ratio, 2),
                          Table::sci(apu_dofs, 3));
  }
  std::printf("\nkernel backends (AdditionalData::backend), same mesh and "
              "operator per degree:\n");
  backend_table.print();
  std::printf("\nthe SoA column pays the lane-major staging on the host; the "
              "APU column projects the layout against the %s HBM roof "
              "(%.0fx the SuperMUC-NG node stream bandwidth)\n",
              apu.name.c_str(), apu.projected_speedup_vs_host(2.05e11));

  // fused solver loops: Chebyshev sweep with the BLAS-1 updates riding the
  // hooked cell loop vs the classic separate passes
  const std::vector<unsigned int> fused_degrees =
    smoke ? std::vector<unsigned int>{2} : std::vector<unsigned int>{2, 3};
  Table fused_table({"k", "MDoF", "unfused [DoF/s]", "fused [DoF/s]",
                     "speedup", "B/DoF unfused", "B/DoF fused"});
  double fused_speedup = 0, fused_traffic_ratio = 1.;
  for (const unsigned int degree : fused_degrees)
  {
    Mesh mesh(unit_cube());
    mesh.refine_uniform(smoke ? 2u : 5u);
    const auto sres = time_smoother_configs(mesh, degree, rounds);
    const Result &unfused = sres[0];
    const Result &fused = sres[1];
    results.insert(results.end(), sres.begin(), sres.end());
    const double speedup = fused.dofs_per_s / unfused.dofs_per_s;
    // best measured speedup across degrees; at small k the sweep is
    // dominated by the matvec itself and the BLAS-1 saving is noise-level
    fused_speedup = std::max(fused_speedup, speedup);
    fused_traffic_ratio = std::min(
      fused_traffic_ratio, fused.bytes_per_dof / unfused.bytes_per_dof);
    fused_table.add_row(degree, Table::format(unfused.n_dofs / 1e6, 3),
                        Table::sci(unfused.dofs_per_s, 3),
                        Table::sci(fused.dofs_per_s, 3),
                        Table::format(speedup, 2),
                        Table::format(unfused.bytes_per_dof, 1),
                        Table::format(fused.bytes_per_dof, 1));
  }
  std::printf("\nChebyshev smoothing sweep, fused vs unfused solver "
              "loops:\n");
  fused_table.print();
  std::printf("\nthe fused path drops 7 of the 12 per-step BLAS-1 scalar "
              "accesses per DoF (solver-update bytes/DoF ratio %.2f, best "
              "measured speedup %.2fx)\n",
              fused_traffic_ratio, fused_speedup);

  if (const char *path = std::getenv("DGFLOW_BENCH_JSON"))
    write_json(path, results, speedup_k5, fused_speedup, fused_traffic_ratio,
               backend_speedups, smoke);

  // the smoke run is a harness check, not a performance gate
  if (smoke)
    return 0;
  return 0;
}
