// Micro-kernel and fast-path benchmark behind the roofline analysis
// (Figs. 6-7): times the SIP Laplace vmult per polynomial degree on a
// structured Cartesian mesh in three configurations -
//   generic:    runtime-extent kernels, full per-q metric
//   specialized: compile-time kernel dispatch, full per-q metric
//   spec+compr: compile-time kernels + per-batch compressed metric
// and reports DoF/s, bytes/DoF, and the speedup over the generic path.
//
// Machine-readable output: when DGFLOW_BENCH_JSON is set, the results are
// archived as JSON (schema dgflow-bench-kernels-v1) for cross-PR diffing;
// run_benchmarks.sh stores it as bench_results/BENCH_kernels.json.
// A fast smoke variant (--smoke, also run under `ctest -L perf`) shrinks
// meshes and repetitions to verify the harness end to end.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "fem/kernel_dispatch.h"
#include "operators/laplace_operator.h"

using namespace dgflow;
using namespace dgflow::bench;

namespace
{
struct Result
{
  unsigned int degree, n_q_1d;
  std::string config;
  std::size_t n_dofs;
  double seconds;      ///< best time of one vmult
  double dofs_per_s;
  double bytes_per_dof; ///< model estimate from the stored metric
};

BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}

/// Times the three configurations for one degree with the rounds
/// interleaved (generic / specialized / spec+compr, generic / ... ) and the
/// per-config minimum taken across rounds: on a shared machine the load
/// drifts over seconds, so timing each config en bloc would compare
/// different machine states and make the speedup ratio unstable.
std::vector<Result> time_laplace_configs(const Mesh &mesh,
                                         const unsigned int degree,
                                         const unsigned int rounds)
{
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.geometry_degree = 1;

  data.compress_geometry = false;
  MatrixFree<double> mf_full;
  mf_full.reinit(mesh, geom, data);
  data.compress_geometry = true;
  MatrixFree<double> mf_compr;
  mf_compr.reinit(mesh, geom, data);

  LaplaceOperator<double> laplace_full, laplace_compr;
  laplace_full.reinit(mf_full, 0, 0, all_dirichlet());
  laplace_compr.reinit(mf_compr, 0, 0, all_dirichlet());
  Vector<double> src(laplace_full.n_dofs()), dst(laplace_full.n_dofs());
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = 0.3 + 1e-6 * (i % 1001);

  struct Config
  {
    const char *name;
    LaplaceOperator<double> *op;
    MatrixFree<double> *mf;
    bool specialized;
  };
  const Config configs[3] = {
    {"generic", &laplace_full, &mf_full, false},
    {"specialized", &laplace_full, &mf_full, true},
    {"specialized_compressed", &laplace_compr, &mf_compr, true},
  };

  const std::size_t n_dofs = laplace_full.n_dofs();
  const unsigned int n_mv = std::max<std::size_t>(2, 4e6 / n_dofs);
  double best[3] = {1e300, 1e300, 1e300};
  for (unsigned int round = 0; round < rounds; ++round)
    for (unsigned int c = 0; c < 3; ++c)
    {
      set_specialized_kernels_enabled(configs[c].specialized);
      const double t = best_of(1, [&]() {
                         for (unsigned int i = 0; i < n_mv; ++i)
                           configs[c].op->vmult(dst, src);
                       }) /
                       n_mv;
      if (t < best[c])
        best[c] = t;
    }
  set_specialized_kernels_enabled(true);

  std::vector<Result> results;
  for (unsigned int c = 0; c < 3; ++c)
  {
    Result r;
    r.degree = degree;
    r.n_q_1d = degree + 1;
    r.config = configs[c].name;
    r.n_dofs = n_dofs;
    r.seconds = best[c];
    r.dofs_per_s = double(n_dofs) / best[c];
    r.bytes_per_dof = configs[c].mf->estimated_vmult_bytes_per_dof(0, 0);
    results.push_back(r);
  }
  return results;
}

void write_json(const char *path, const std::vector<Result> &results,
                const double speedup_k5, const bool smoke)
{
  std::FILE *f = std::fopen(path, "w");
  if (!f)
  {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"dgflow-bench-kernels-v1\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"speedup_degree5_specialized_compressed_vs_generic\": "
                  "%.6g,\n",
               speedup_k5);
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i)
  {
    const Result &r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"laplace_vmult\", \"degree\": %u, "
                 "\"n_q_1d\": %u, \"config\": \"%s\", \"n_dofs\": %zu, "
                 "\"seconds\": %.6e, \"dofs_per_s\": %.6e, "
                 "\"bytes_per_dof\": %.6g}%s\n",
                 r.degree, r.n_q_1d, r.config.c_str(), r.n_dofs, r.seconds,
                 r.dofs_per_s, r.bytes_per_dof,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("benchmark JSON archived to %s\n", path);
}
} // namespace

int main(int argc, char **argv)
{
  dgflow::prof::EnvSession profile_session;
  const bool smoke = (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
                     std::getenv("DGFLOW_BENCH_SMOKE") != nullptr;

  print_header(
    "Kernel fast paths: SIP Laplace vmult, Cartesian mesh, per degree",
    "paper Sec. 3.1/3.2: fixed-size kernels + compressed metric keep the "
    "mat-vec near the memory roofline; expect the largest gain at high k");

  const std::vector<unsigned int> degrees =
    smoke ? std::vector<unsigned int>{2, 5}
          : std::vector<unsigned int>{2, 3, 4, 5};
  const unsigned int rounds = smoke ? 2 : 7;

  Table table({"k", "MDoF", "generic [DoF/s]", "specialized [DoF/s]",
               "spec+compr [DoF/s]", "speedup", "B/DoF full", "B/DoF compr"});

  std::vector<Result> results;
  double speedup_k5 = 0;
  for (const unsigned int degree : degrees)
  {
    // size the mesh so the full per-q metric exceeds the last-level cache:
    // the compressed metric stays resident while the generic path streams,
    // which is the regime the roofline analysis (Fig. 7) argues about
    Mesh mesh(unit_cube());
    const unsigned int refines = smoke ? 2u : (degree <= 3 ? 5u : 4u);
    mesh.refine_uniform(refines);

    const auto degree_results = time_laplace_configs(mesh, degree, rounds);
    const Result &generic = degree_results[0];
    const Result &spec = degree_results[1];
    const Result &spec_compr = degree_results[2];
    results.insert(results.end(), degree_results.begin(),
                   degree_results.end());

    const double speedup = spec_compr.dofs_per_s / generic.dofs_per_s;
    if (degree == 5)
      speedup_k5 = speedup;
    table.add_row(degree, Table::format(generic.n_dofs / 1e6, 3),
                  Table::sci(generic.dofs_per_s, 3),
                  Table::sci(spec.dofs_per_s, 3),
                  Table::sci(spec_compr.dofs_per_s, 3),
                  Table::format(speedup, 2),
                  Table::format(generic.bytes_per_dof, 1),
                  Table::format(spec_compr.bytes_per_dof, 1));
  }
  table.print();

  std::printf("\nacceptance target: k=5 specialized+compressed >= 1.5x "
              "generic (measured: %.2fx)\n",
              speedup_k5);

  if (const char *path = std::getenv("DGFLOW_BENCH_JSON"))
    write_json(path, results, speedup_k5, smoke);

  // the smoke run is a harness check, not a performance gate
  if (smoke)
    return 0;
  return 0;
}
