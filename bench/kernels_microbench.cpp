// Google-benchmark micro-kernels: the sum-factorization building blocks
// (1D tensor contractions, face interpolation), the cell evaluator, and the
// full operator mat-vecs - the node-level quantities behind Figs. 6 and 7.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "matrixfree/fe_evaluation.h"
#include "operators/laplace_operator.h"

using namespace dgflow;

namespace
{
template <int degree>
void bm_apply_matrix_1d(benchmark::State &state)
{
  constexpr unsigned int n = degree + 1;
  using VA = VectorizedArray<double>;
  AlignedVector<double> matrix(n * n);
  for (unsigned int i = 0; i < n * n; ++i)
    matrix[i] = 0.1 * (i % 7) - 0.3;
  AlignedVector<VA> in(n * n * n), out(n * n * n);
  for (unsigned int i = 0; i < in.size(); ++i)
    in[i] = VA(0.01 * i);

  for (auto _ : state)
    for (unsigned int d = 0; d < 3; ++d)
    {
      apply_matrix_1d<false, false>(matrix.data(), n, n, in.data(),
                                    out.data(), d, {{n, n, n}});
      benchmark::DoNotOptimize(out.data());
    }
  // 3 sweeps of n^3 points x 2n flops, per SIMD lane
  state.SetItemsProcessed(state.iterations() * 3 * n * n * n * VA::width);
}

template <int degree>
void bm_cell_evaluate_gradients(benchmark::State &state)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(2);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  mf.reinit(mesh, geom, data);
  FEEvaluation<double, 1> phi(mf, 0, 0);
  Vector<double> src(mf.n_dofs(0, 1));
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = 1e-3 * (i % 41);

  for (auto _ : state)
    for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
    {
      phi.reinit(b);
      phi.read_dof_values(src);
      phi.evaluate(false, true);
      benchmark::DoNotOptimize(phi.begin_dof_values());
    }
  state.SetItemsProcessed(state.iterations() * src.size());
}

template <int degree>
void bm_laplace_vmult(benchmark::State &state)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(degree <= 3 ? 4 : 3);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  mf.reinit(mesh, geom, data);
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, bc);
  Vector<double> src(laplace.n_dofs()), dst(laplace.n_dofs());
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = 1e-3 * (i % 101);

  for (auto _ : state)
  {
    laplace.vmult(dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * src.size());
}
} // namespace

BENCHMARK(bm_apply_matrix_1d<1>);
BENCHMARK(bm_apply_matrix_1d<3>);
BENCHMARK(bm_apply_matrix_1d<5>);
BENCHMARK(bm_cell_evaluate_gradients<2>);
BENCHMARK(bm_cell_evaluate_gradients<3>);
BENCHMARK(bm_laplace_vmult<2>);
BENCHMARK(bm_laplace_vmult<3>);
BENCHMARK(bm_laplace_vmult<4>);

BENCHMARK_MAIN();
