// ABFT microbenchmark: the cost of the silent-data-corruption guard on the
// paper's lung case (generation-3 airway tree, degree 3, the fig10/table2
// configuration). Three measurements:
//
//  * detection overhead — wall time of the guarded MG-CG pressure Poisson
//    solve (residual replay every m iterations + artifact scrub of the
//    geometry batches, kernel dispatch tables and AMG level matrices +
//    V-cycle guard) against the unguarded solve, for two replay intervals.
//    The acceptance bar is < 3% at the default interval;
//  * scrub throughput — one verification pass over all protected artifacts
//    (the checksum work a replay boundary pays), with the protected bytes;
//  * repair demonstration — the guarded solve with a deterministic
//    exponent-bit flip injected into the residual vector mid-solve must
//    detect it, roll back, and converge to the bit-identical fault-free
//    solution.
//
// Machine-readable output: when DGFLOW_BENCH_JSON is set, the results are
// archived as JSON (schema dgflow-bench-abft-v1); run_benchmarks.sh stores
// it as bench_results/BENCH_abft.json. A fast smoke variant (--smoke, also
// run under `ctest -L abft`) shrinks the case to verify the harness.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "multigrid/hybrid_multigrid.h"
#include "resilience/abft.h"
#include "resilience/fault_injection.h"
#include "solvers/cg.h"

using namespace dgflow;
using namespace dgflow::bench;

namespace
{
struct GuardedRow
{
  unsigned int replay_interval;
  double baseline_seconds;
  double guarded_seconds;
  double overhead_fraction;
  unsigned int iterations;
  unsigned int residual_replays;
};

struct ScrubRow
{
  unsigned int n_artifacts;
  std::size_t protected_bytes;
  double seconds_per_scrub;
};

struct RepairRow
{
  unsigned int sdc_detected;
  unsigned int sdc_rollbacks;
  bool converged;
  bool bitwise_match;
};

/// The lung pressure-Poisson stack (operator, multigrid, rhs) shared by all
/// measurements.
struct LungSolve
{
  Mesh mesh;
  TrilinearGeometry geom;
  BoundaryMap bc;
  unsigned int degree;
  MatrixFree<double> mf;
  LaplaceOperator<double> laplace;
  HybridMultigrid<float> mg;
  Vector<double> rhs;

  LungSolve(const LungMesh &lung, const unsigned int degree_)
    : mesh(lung.coarse), geom(mesh.coarse()), degree(degree_)
  {
    bc.set(LungMesh::wall_id, BoundaryType::neumann);
    bc.set(LungMesh::inlet_id, BoundaryType::dirichlet);
    for (const auto id : lung.outlet_ids)
      bc.set(id, BoundaryType::dirichlet);

    MatrixFree<double>::AdditionalData data;
    data.degrees = {degree};
    data.n_q_points_1d = {degree + 1};
    data.geometry_degree = 1;
    data.penalty_safety = 4.;
    mf.reinit(mesh, geom, data);
    laplace.reinit(mf, 0, 0, bc);

    HybridMultigrid<float>::Options opts;
    opts.geometry_degree = 1;
    opts.penalty_safety = 4.;
    mg.setup(mesh, geom, degree, bc, opts);

    laplace.assemble_rhs(rhs, [](const Point &) { return 1.; },
                         [](const Point &) { return 0.; });
  }

  SolveStats solve(Vector<double> &x, SolverControl control) const
  {
    control.rel_tol = 1e-10;
    control.max_iterations = 400;
    x.reinit(laplace.n_dofs());
    return solve_cg(laplace, x, rhs, mg, control);
  }
};

/// Registers the full artifact set a production solve protects.
void protect_all(resilience::ArtifactGuard &guard, LungSolve &s)
{
  resilience::protect_matrix_free(guard, s.mf);
  resilience::protect_amg(guard, s.mg);
  resilience::protect_kernel_tables(guard);
}

GuardedRow time_guarded_solve(LungSolve &s, const unsigned int interval,
                              const unsigned int repetitions)
{
  GuardedRow row{};
  row.replay_interval = interval;

  Vector<double> x;
  row.baseline_seconds = best_of(repetitions, [&]() {
    const SolveStats stats = s.solve(x, SolverControl());
    row.iterations = stats.iterations;
  });

  resilience::ArtifactGuard guard;
  protect_all(guard, s);
  SolverControl control;
  control.abft_replay_interval = interval;
  control.abft_scrub = &guard;
  row.guarded_seconds = best_of(repetitions, [&]() {
    const SolveStats stats = s.solve(x, control);
    row.residual_replays = stats.residual_replays;
    if (stats.iterations != row.iterations)
      std::fprintf(stderr,
                   "WARNING: guarded solve took %u iterations, baseline %u\n",
                   stats.iterations, row.iterations);
  });
  row.overhead_fraction = row.guarded_seconds / row.baseline_seconds - 1.;
  return row;
}

ScrubRow time_scrub(LungSolve &s, const unsigned int repetitions)
{
  resilience::ArtifactGuard guard;
  protect_all(guard, s);
  ScrubRow row{};
  row.n_artifacts = guard.n_artifacts();
  // the dominant bytes a scrub hashes: per-quadrature geometry metrics plus
  // the AMG level matrices (kernel tables are a few KB)
  std::size_t bytes = 0;
  for (unsigned int q = 0; q < s.mf.n_quads(); ++q)
  {
    const auto &cm = s.mf.cell_metric(q);
    const auto &fm = s.mf.face_metric(q);
    bytes += cm.inv_jac_t.size() * sizeof(cm.inv_jac_t[0]) +
             cm.JxW.size() * sizeof(cm.JxW[0]) +
             cm.batch_inv_jac_t.size() * sizeof(cm.batch_inv_jac_t[0]) +
             cm.batch_det.size() * sizeof(cm.batch_det[0]);
    bytes += fm.normal.size() * sizeof(fm.normal[0]) +
             fm.JxW.size() * sizeof(fm.JxW[0]) +
             fm.inv_jac_t_m.size() * sizeof(fm.inv_jac_t_m[0]) +
             fm.inv_jac_t_p.size() * sizeof(fm.inv_jac_t_p[0]);
  }
  for (unsigned int l = 0; l < s.mg.amg().n_levels(); ++l)
    bytes += s.mg.amg().level_nnz(l) * sizeof(double);
  row.protected_bytes = bytes;
  row.seconds_per_scrub = best_of(repetitions, [&]() {
    if (guard.scrub() != 0)
      std::abort(); // a healthy scrub must not rebuild anything
  });
  return row;
}

RepairRow demonstrate_repair(LungSolve &s, const unsigned int interval)
{
  Vector<double> x_clean;
  SolverControl clean_control;
  clean_control.abft_replay_interval = interval;
  s.solve(x_clean, clean_control);

  resilience::FaultPlan::Config cfg;
  cfg.seed = 17;
  cfg.bitflip_target = "krylov_r";
  cfg.bitflip_step = 12;
  cfg.bitflip_bit = 64 * 100 + 62; // element 100, exponent high bit
  resilience::FaultPlan plan(cfg);
  resilience::ArtifactGuard guard;
  protect_all(guard, s);

  SolverControl control;
  control.abft_replay_interval = interval;
  control.abft_scrub = &guard;
  control.abft_inject = &plan;
  Vector<double> x;
  const SolveStats stats = s.solve(x, control);

  RepairRow row{};
  row.sdc_detected = stats.sdc_detected;
  row.sdc_rollbacks = stats.sdc_rollbacks;
  row.converged = stats.converged;
  row.bitwise_match =
    x.size() == x_clean.size() &&
    std::memcmp(x.data(), x_clean.data(), x.size() * sizeof(double)) == 0;
  return row;
}

void write_json(const char *path, const std::string &case_name,
                const std::size_t n_dofs, const std::vector<GuardedRow> &rows,
                const ScrubRow &scrub, const RepairRow &repair,
                const bool smoke)
{
  std::FILE *f = std::fopen(path, "w");
  if (!f)
  {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"dgflow-bench-abft-v1\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"case\": \"%s\",\n", case_name.c_str());
  std::fprintf(f, "  \"n_dofs\": %zu,\n", n_dofs);
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (const auto &r : rows)
    std::fprintf(f,
                 "    {\"name\": \"guarded_solve\", \"replay_interval\": %u, "
                 "\"baseline_seconds\": %.6e, \"guarded_seconds\": %.6e, "
                 "\"overhead_fraction\": %.6e, \"iterations\": %u, "
                 "\"residual_replays\": %u},\n",
                 r.replay_interval, r.baseline_seconds, r.guarded_seconds,
                 r.overhead_fraction, r.iterations, r.residual_replays);
  std::fprintf(f,
               "    {\"name\": \"artifact_scrub\", \"n_artifacts\": %u, "
               "\"protected_bytes\": %zu, \"seconds_per_scrub\": %.6e},\n",
               scrub.n_artifacts, scrub.protected_bytes,
               scrub.seconds_per_scrub);
  std::fprintf(f,
               "    {\"name\": \"flip_repair\", \"sdc_detected\": %u, "
               "\"sdc_rollbacks\": %u, \"converged\": %s, "
               "\"bitwise_match\": %s}\n",
               repair.sdc_detected, repair.sdc_rollbacks,
               repair.converged ? "true" : "false",
               repair.bitwise_match ? "true" : "false");
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("benchmark JSON archived to %s\n", path);
}
} // namespace

int main(int argc, char **argv)
{
  dgflow::prof::EnvSession profile_session;
  const bool smoke = (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
                     std::getenv("DGFLOW_BENCH_SMOKE") != nullptr;

  print_header(
    "ABFT guard: detection overhead, scrub throughput, flip repair",
    "silent-data-corruption detection for the lung pressure Poisson solve; "
    "residual replay + checksummed setup artifacts, < 3% overhead target");

  const LungMesh lung = lung_mesh_for_generations(smoke ? 2 : 3);
  const unsigned int degree = smoke ? 2 : 3;
  const std::string case_name = smoke ? "lung_g2_k2" : "lung_g3_k3";
  LungSolve solve(lung, degree);
  const unsigned int repetitions = smoke ? 1 : 3;
  std::printf("\ncase %s: %zu DoF\n", case_name.c_str(),
              solve.laplace.n_dofs());

  std::vector<GuardedRow> rows;
  Table solve_table({"replay m", "baseline [s]", "guarded [s]", "overhead",
                     "replays"});
  for (const unsigned int interval : {10u, 20u})
  {
    rows.push_back(time_guarded_solve(solve, interval, repetitions));
    const GuardedRow &r = rows.back();
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.2f%%", 100. * r.overhead_fraction);
    solve_table.add_row(r.replay_interval, Table::format(r.baseline_seconds, 3),
                        Table::format(r.guarded_seconds, 3), pct,
                        r.residual_replays);
  }
  solve_table.print();

  const ScrubRow scrub = time_scrub(solve, smoke ? 2 : 5);
  std::printf("\nartifact scrub: %u artifacts, %.1f MB protected, "
              "%.3f ms per verification pass\n",
              scrub.n_artifacts, double(scrub.protected_bytes) / 1e6,
              1e3 * scrub.seconds_per_scrub);

  const RepairRow repair = demonstrate_repair(solve, 10);
  std::printf("\nflip repair: detected %u, rollbacks %u, converged %s, "
              "solution %s the fault-free run\n",
              repair.sdc_detected, repair.sdc_rollbacks,
              repair.converged ? "yes" : "NO",
              repair.bitwise_match ? "bitwise matches" : "DIFFERS from");

  if (const char *path = std::getenv("DGFLOW_BENCH_JSON"))
    write_json(path, case_name, solve.laplace.n_dofs(), rows, scrub, repair,
               smoke);

  const double best_overhead =
    std::min(rows[0].overhead_fraction, rows[1].overhead_fraction);
  std::printf("\ndetection overhead at the better interval: %.2f%% "
              "(target < 3%%)\n",
              100. * best_overhead);

  const bool ok = repair.converged && repair.bitwise_match &&
                  repair.sdc_detected >= 1 && repair.sdc_rollbacks >= 1;
  std::printf("\nabft check: %s\n",
              ok ? "flip detected, rolled back and repaired bitwise"
                 : "MISSING the expected detection/repair");
  return ok ? 0 : 1;
}
