// Shared-memory thread scaling of the matrix-free solver stack on the lung
// geometry: times the SIP Laplace vmult and a fused Jacobi-CG solve
// (degree 3, the paper's production configuration) at 1/2/4 pool threads
// and cross-checks that every threaded result is BITWISE identical to the
// single-threaded sweep — the determinism contract of the thread-parallel
// cell loops (docs/DEVELOPING.md, "Shared-memory parallel loops").
//
// The speedup columns report honest wall-clock measurements of THIS
// machine; on a single-core container the threaded sweeps time-slice one
// core and the speedup saturates at ~1x — the bitwise check is the
// correctness gate, the scaling numbers document the hardware.
//
// Machine-readable output: when DGFLOW_BENCH_JSON is set, the results are
// archived as JSON (schema dgflow-bench-threads-v1); run_benchmarks.sh
// stores it as bench_results/BENCH_threads.json. The fast --smoke variant
// (also run under `ctest -L perf`) shrinks the mesh and repetitions to
// verify harness and bitwise gate end to end.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "concurrency/thread_pool.h"
#include "operators/laplace_operator.h"
#include "solvers/cg.h"

using namespace dgflow;
using namespace dgflow::bench;

namespace
{
struct Result
{
  std::string name;
  unsigned int n_threads;
  std::size_t n_dofs;
  double seconds;
  double dofs_per_s;
  double speedup; ///< vs the 1-thread row of the same kernel
  bool bitwise;   ///< memcmp-equal to the 1-thread result
};

bool bitwise_equal(const Vector<double> &a, const Vector<double> &b)
{
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

void write_json(const char *path, const std::vector<Result> &results,
                const double vmult_speedup4, const double cg_speedup4,
                const bool all_bitwise, const bool smoke)
{
  std::FILE *f = std::fopen(path, "w");
  if (!f)
  {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"dgflow-bench-threads-v1\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"vmult_speedup_4_threads\": %.6g,\n", vmult_speedup4);
  std::fprintf(f, "  \"cg_speedup_4_threads\": %.6g,\n", cg_speedup4);
  std::fprintf(f, "  \"bitwise_identical\": %s,\n",
               all_bitwise ? "true" : "false");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i)
  {
    const Result &r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"n_threads\": %u, "
                 "\"n_dofs\": %zu, \"seconds\": %.6e, "
                 "\"dofs_per_s\": %.6e, \"speedup\": %.6g, "
                 "\"bitwise\": %s}%s\n",
                 r.name.c_str(), r.n_threads, r.n_dofs, r.seconds,
                 r.dofs_per_s, r.speedup, r.bitwise ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("benchmark JSON archived to %s\n", path);
}
} // namespace

int main(int argc, char **argv)
{
  dgflow::prof::EnvSession profile_session;
  const bool smoke = (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
                     std::getenv("DGFLOW_BENCH_SMOKE") != nullptr;

  print_header(
    "Thread scaling: SIP Laplace vmult + fused Jacobi-CG, lung g=3, k=3",
    "shared-memory parallel cell loops: bitwise-deterministic speedup "
    "at 1/2/4 threads");
  std::printf("hardware concurrency: %u\n",
              std::thread::hardware_concurrency());

  const unsigned int degree = 3;
  const LungMesh lung = lung_mesh_for_generations(smoke ? 1 : 3);
  Mesh mesh(lung.coarse);
  if (!smoke)
    while (mesh.n_active_cells() * pow_int(degree + 1, 3) < 2e5)
      mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());

  BoundaryMap bc;
  bc.set(LungMesh::wall_id, BoundaryType::neumann);
  bc.set(LungMesh::inlet_id, BoundaryType::dirichlet);
  for (const auto id : lung.outlet_ids)
    bc.set(id, BoundaryType::dirichlet);

  const unsigned int rounds = smoke ? 2 : 5;
  const std::vector<unsigned int> thread_counts = {1, 2, 4};
  auto &pool = concurrency::ThreadPool::instance();
  const unsigned int pool_width0 = pool.n_threads();

  std::vector<Result> results;
  Table table({"threads", "MDoF", "vmult [DoF/s]", "vmult speedup",
               "CG [it/s]", "CG speedup", "bitwise"});

  Vector<double> dst_ref, x_ref;
  double vmult_t1 = 0., cg_t1 = 0.;
  double vmult_speedup4 = 0., cg_speedup4 = 0.;
  bool all_bitwise = true;

  for (const unsigned int nt : thread_counts)
  {
    pool.set_n_threads(nt);
    MatrixFree<double> mf;
    MatrixFree<double>::AdditionalData data;
    data.degrees = {degree};
    data.n_q_points_1d = {degree + 1};
    data.geometry_degree = 1;
    data.n_threads = nt;
    mf.reinit(mesh, geom, data);
    LaplaceOperator<double> laplace;
    laplace.reinit(mf, 0, 0, bc);

    Vector<double> src(laplace.n_dofs()), dst(laplace.n_dofs());
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = std::sin(0.37 * double(i)) + 0.1;
    const std::size_t n_dofs = laplace.n_dofs();

    const unsigned int n_mv =
      std::max<std::size_t>(smoke ? 1 : 3, 4e6 / n_dofs);
    const double t_vmult = best_of(rounds, [&]() {
                             for (unsigned int i = 0; i < n_mv; ++i)
                               laplace.vmult(dst, src);
                           }) /
                           n_mv;

    // fused CG: Jacobi-preconditioned, hooks folded into the cell loop
    Vector<double> diag;
    laplace.compute_diagonal(diag);
    PreconditionJacobi<double> jacobi;
    jacobi.reinit(diag);
    SolverControl control;
    control.max_iterations = smoke ? 5 : 25;
    control.rel_tol = 1e-12;
    control.fuse_loops = true;
    Vector<double> x(n_dofs);
    SolveStats stats;
    const double t_cg = best_of(rounds, [&]() {
      x = 0.;
      stats = solve_cg(laplace, x, src, jacobi, control);
    });
    const double it_per_s = double(std::max(1u, stats.iterations)) / t_cg;

    Result rv{"laplace_vmult", nt, n_dofs, t_vmult, double(n_dofs) / t_vmult,
              1., true};
    Result rc{"fused_cg", nt, n_dofs, t_cg, it_per_s, 1., true};
    if (nt == 1)
    {
      dst_ref.reinit(n_dofs, true);
      dst_ref.equ(1., dst);
      x_ref.reinit(n_dofs, true);
      x_ref.equ(1., x);
      vmult_t1 = t_vmult;
      cg_t1 = t_cg;
    }
    else
    {
      rv.bitwise = bitwise_equal(dst, dst_ref);
      rc.bitwise = bitwise_equal(x, x_ref);
      rv.speedup = vmult_t1 / t_vmult;
      rc.speedup = cg_t1 / t_cg;
      all_bitwise = all_bitwise && rv.bitwise && rc.bitwise;
      if (nt == 4)
      {
        vmult_speedup4 = rv.speedup;
        cg_speedup4 = rc.speedup;
      }
    }
    results.push_back(rv);
    results.push_back(rc);

    table.add_row(nt, Table::format(n_dofs / 1e6, 3),
                  Table::sci(rv.dofs_per_s, 3), Table::format(rv.speedup, 2),
                  Table::format(it_per_s, 2), Table::format(rc.speedup, 2),
                  rv.bitwise && rc.bitwise ? "yes" : "NO");
  }
  pool.set_n_threads(pool_width0);
  table.print();

  std::printf("\nbitwise determinism gate: %s\n",
              all_bitwise ? "PASS (all threaded results memcmp-equal to "
                            "1 thread)"
                          : "FAIL");
  std::printf("4-thread speedup (this machine, %u hardware threads): "
              "vmult %.2fx, fused CG %.2fx\n",
              std::thread::hardware_concurrency(), vmult_speedup4,
              cg_speedup4);

  if (const char *path = std::getenv("DGFLOW_BENCH_JSON"))
    write_json(path, results, vmult_speedup4, cg_speedup4, all_bitwise,
               smoke);

  return all_bitwise ? 0 : 1;
}
