// Recovery-path microbenchmark: the cost of the rank-failure tolerance
// machinery added for distributed solves. Three measurements:
//
//  * agree-round latency on 2/4/8 logical ranks — one
//    Communicator::agree() is the unit cost a solver pays at every probed
//    iteration boundary (SolverControl::recovery with the default stride),
//    so this latency bounds the steady-state overhead of failure detection;
//  * shard-checkpoint write and read throughput — rankN.ckpt shards plus
//    manifest for a distributed field, the state a shrinking recovery
//    restores from;
//  * end-to-end recovery overhead — wall time of a 4-rank Jacobi-CG Poisson
//    solve that loses a rank mid-solve and completes by shrinking to 3,
//    against the fault-free 4-rank solve;
//  * sync-vs-async checkpoint stall — the solver-visible cost of one
//    checkpoint through the AsyncCheckpointer in synchronous (write on the
//    calling thread) vs asynchronous (background service thread) mode, both
//    bare and under an injected 5 ms slow-disk stall (tmpfs makes fsync
//    nearly free, so the injected row is the one that represents a real
//    disk and the one the exit code gates on: async must cut the stall by
//    at least 5x);
//  * restore latency by fall-back depth — newest_valid_generation() scan
//    plus state read when the top d generations of the ring are corrupted
//    and recovery falls back d steps.
//
// Machine-readable output: when DGFLOW_BENCH_JSON is set, the results are
// archived as JSON (schema dgflow-bench-recovery-v1); run_benchmarks.sh
// stores it as bench_results/BENCH_recovery.json. A fast smoke variant
// (--smoke, also run under `ctest -L distributed_resilience`) shrinks the
// problem and repetitions to verify the harness end to end.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "mesh/generators.h"
#include "mesh/partition.h"
#include "operators/laplace_operator.h"
#include "resilience/checkpoint.h"
#include "resilience/ckpt_io.h"
#include "resilience/ckpt_store.h"
#include "resilience/distributed_recovery.h"
#include "resilience/fault_injection.h"
#include "resilience/shard_checkpoint.h"
#include "solvers/cg.h"
#include "vmpi/distributed_vector.h"
#include "vmpi/partitioner.h"

using namespace dgflow;
using namespace dgflow::bench;

namespace
{
struct AgreeResultRow
{
  int n_ranks;
  unsigned int rounds;
  double seconds_per_round;
};

struct CheckpointRow
{
  std::size_t n_dofs;
  int n_shards;
  double write_bytes_per_s;
  double read_bytes_per_s;
};

struct RecoveryRow
{
  double faultfree_seconds;
  double recovered_seconds;
  int attempts;
  int shrinks;
};

struct StallRow
{
  const char *mode;        ///< "sync" or "async"
  double injected_stall_ms; ///< 0: bare local disk
  unsigned int n_ckpts;
  double stall_per_ckpt; ///< solver-visible seconds per submit()
};

struct RestoreRow
{
  int fallback_depth; ///< corrupted newest generations skipped by the scan
  double seconds;     ///< newest_valid_generation() + state read
};

/// Solver-visible checkpoint stall: mean time one submit() blocks the
/// calling thread, publishing @p n_ckpts generations of @p n_doubles
/// payload. @p stall_ms > 0 injects a per-write slow-disk latency through
/// the CkptIo shim (tmpfs fsyncs are nearly free, so the bare numbers
/// flatter sync mode; the injected row models a real disk).
StallRow time_ckpt_stall(const std::string &root, const std::size_t n_doubles,
                         const unsigned int n_ckpts, const bool async,
                         const double stall_ms)
{
  std::filesystem::remove_all(root);
  resilience::FaultPlan::Config cfg;
  cfg.io_stall_rate = stall_ms > 0. ? 1. : 0.;
  cfg.io_stall_seconds = stall_ms * 1e-3;
  resilience::FaultPlan plan(cfg);
  if (stall_ms > 0.)
    resilience::CkptIo::instance().install_fault_handler(&plan);

  Vector<double> payload(n_doubles);
  for (std::size_t i = 0; i < n_doubles; ++i)
    payload[i] = std::sin(0.37 * double(i));

  double stall_seconds = 0.;
  {
    resilience::AsyncCheckpointer::Options opts;
    opts.async = async;
    // a window as deep as the run never back-pressures: the measured async
    // stall is pure submit() cost, which is what the solver thread sees when
    // checkpoint cadence exceeds the disk's write latency
    opts.max_in_flight = n_ckpts;
    resilience::AsyncCheckpointer ckpt(root, opts);
    for (unsigned int c = 0; c < n_ckpts; ++c)
    {
      // encode on the "solver" thread (both modes pay it identically);
      // timed is only what submit() costs the caller
      resilience::CheckpointWriter writer("state.ckpt");
      writer.write_u64(c);
      writer.write_vector(payload);
      std::vector<resilience::AsyncCheckpointer::NamedImage> images;
      images.push_back({"state.ckpt", writer.encode()});
      Timer t;
      ckpt.submit(std::move(images));
      stall_seconds += t.seconds();
    }
    ckpt.drain();
    if (ckpt.status().published != n_ckpts)
      std::abort();
  }
  if (stall_ms > 0.)
    resilience::CkptIo::instance().install_fault_handler(nullptr);
  std::filesystem::remove_all(root);
  return {async ? "async" : "sync", stall_ms, n_ckpts,
          stall_seconds / n_ckpts};
}

/// Restore latency when recovery must fall back @p depth generations: the
/// top @p depth members of the ring are corrupted in place (one flipped
/// byte — the lying-disk aftermath) and the scan walks past them.
std::vector<RestoreRow> time_restore_by_generation(const std::string &root,
                                                   const std::size_t n_doubles,
                                                   const int n_generations)
{
  std::filesystem::remove_all(root);
  resilience::GenerationStore::Options opts;
  opts.keep_generations = std::uint64_t(n_generations);
  resilience::GenerationStore store(root, opts);
  Vector<double> payload(n_doubles);
  for (std::size_t i = 0; i < n_doubles; ++i)
    payload[i] = std::sin(0.37 * double(i));
  for (int g = 0; g < n_generations; ++g)
  {
    const std::uint64_t id = store.allocate_generation();
    const std::string staging = store.create_staging(id);
    resilience::CheckpointWriter writer("state.ckpt");
    writer.write_u64(std::uint64_t(g));
    writer.write_vector(payload);
    const std::vector<char> image = writer.encode();
    resilience::CkptIo::instance().write_file_atomic(
      staging + "/state.ckpt", image.data(), image.size());
    store.commit_generation(id);
  }

  std::vector<RestoreRow> rows;
  for (int depth = 0; depth < n_generations; ++depth)
  {
    if (depth > 0)
    {
      // corrupt the currently-newest valid generation: one more fall-back
      const std::string path =
        store.generation_directory(std::uint64_t(n_generations - depth)) +
        "/state.ckpt";
      std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
      f.seekg(-1, std::ios::end);
      char x;
      f.read(&x, 1);
      x = char(x ^ 0x55);
      f.seekp(-1, std::ios::end);
      f.write(&x, 1);
    }
    Timer t;
    const auto newest = store.newest_valid_generation();
    if (!newest || *newest != std::uint64_t(n_generations - 1 - depth))
      std::abort();
    resilience::CheckpointReader reader(store.generation_directory(*newest) +
                                        "/state.ckpt");
    reader.read_u64();
    Vector<double> restored;
    reader.read_vector(restored);
    rows.push_back({depth, t.seconds()});
  }
  std::filesystem::remove_all(root);
  return rows;
}

BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}

double forcing(const Point &p)
{
  return 3 * M_PI * M_PI * std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]) *
         std::sin(M_PI * p[2]);
}

double zero(const Point &) { return 0.; }

AgreeResultRow time_agree_rounds(const int n_ranks, const unsigned int rounds)
{
  double seconds = 0;
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    comm.agree(true); // warm-up
    comm.barrier();
    Timer t;
    for (unsigned int i = 0; i < rounds; ++i)
      comm.agree(true);
    if (comm.rank() == 0)
      seconds = t.seconds();
  });
  return {n_ranks, rounds, seconds / rounds};
}

CheckpointRow time_shard_checkpoint(const std::string &dir,
                                    const std::size_t n_dofs,
                                    const int n_shards,
                                    const unsigned int repetitions)
{
  Vector<double> global(n_dofs);
  for (std::size_t i = 0; i < n_dofs; ++i)
    global[i] = std::sin(0.37 * double(i));
  const double payload_bytes = double(n_dofs) * sizeof(double);

  const double write_seconds = best_of(repetitions, [&]() {
    std::vector<std::uint64_t> checksums(n_shards);
    for (int r = 0; r < n_shards; ++r)
    {
      const std::size_t begin = (n_dofs * r) / n_shards;
      const std::size_t end = (n_dofs * (r + 1)) / n_shards;
      Vector<double> owned(end - begin);
      for (std::size_t i = begin; i < end; ++i)
        owned[i - begin] = global[i];
      resilience::ShardCheckpointWriter writer(dir, r, n_shards);
      writer.write_owned_slice(n_dofs, begin, owned);
      checksums[r] = writer.close().checksum;
    }
    resilience::write_shard_manifest(dir, checksums);
  });

  const double read_seconds = best_of(repetitions, [&]() {
    resilience::ShardCheckpointReader reader(dir);
    Vector<double> restored;
    reader.read_global(restored);
    if (restored.size() != n_dofs)
      std::abort();
  });

  return {n_dofs, n_shards, payload_bytes / write_seconds,
          payload_bytes / read_seconds};
}

RecoveryRow time_recovered_solve(const Mesh &mesh, const unsigned int degree,
                                 const std::string &dir)
{
  TrilinearGeometry geom(mesh.coarse());
  const BoundaryMap bc = all_dirichlet();
  const int n_ranks = 4;

  // serial assembly shared by all attempts (rhs + reference diag)
  MatrixFree<double>::AdditionalData ref_data;
  ref_data.degrees = {degree};
  ref_data.n_q_points_1d = {degree + 1};
  MatrixFree<double> ref_mf;
  ref_mf.reinit(mesh, geom, ref_data);
  LaplaceOperator<double> ref_laplace;
  ref_laplace.reinit(ref_mf, 0, 0, bc);
  Vector<double> rhs;
  ref_laplace.assemble_rhs(rhs, forcing, zero);
  const std::size_t n_dofs = ref_laplace.n_dofs();

  const auto solve_on = [&](vmpi::Communicator &comm,
                            resilience::RecoveryContext *ctx,
                            const bool restore) {
    const int width = comm.size();
    const std::vector<int> rank_of_cell = partition_cells(mesh, width);
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), width);

    MatrixFree<double>::AdditionalData data;
    data.degrees = {degree};
    data.n_q_points_1d = {degree + 1};
    data.rank_of_cell = rank_of_cell;
    data.n_ranks = width;
    MatrixFree<double> mf;
    mf.reinit(mesh, geom, data);
    LaplaceOperator<double> laplace;
    laplace.reinit(mf, 0, 0, bc);
    const unsigned int dofs_per_cell = mf.dofs_per_cell(0);

    Vector<double> diag;
    laplace.compute_diagonal(diag);

    vmpi::DistributedVector<double> xd(part, comm, dofs_per_cell), bd, dd;
    bd.reinit(part, comm, dofs_per_cell);
    bd.copy_owned_from(rhs);
    dd.reinit(part, comm, dofs_per_cell);
    dd.copy_owned_from(diag);
    PreconditionJacobi<double> jacobi;
    jacobi.reinit(dd);

    if (restore)
    {
      resilience::ShardCheckpointReader reader(dir);
      Vector<double> xg;
      reader.read_global(xg);
      xd.copy_owned_from(xg);
    }
    else
    {
      resilience::ShardCheckpointWriter writer(dir, comm.rank(), width);
      Vector<double> owned(xd.size());
      for (std::size_t i = 0; i < xd.size(); ++i)
        owned[i] = xd.data()[i];
      writer.write_owned_slice(n_dofs, xd.first_local_index(), owned);
      const auto shard = writer.close();
      constexpr int tag_checksum = 941;
      if (comm.rank() == 0)
      {
        std::vector<std::uint64_t> checksums(width);
        checksums[0] = shard.checksum;
        for (int r = 1; r < width; ++r)
          checksums[r] = comm.recv_vector<std::uint64_t>(r, tag_checksum, 1)
                           .at(0);
        resilience::write_shard_manifest(dir, checksums);
      }
      else
        comm.send_vector(0, tag_checksum,
                         std::vector<std::uint64_t>{shard.checksum});
      comm.barrier();
    }

    SolverControl control;
    control.rel_tol = 1e-8;
    control.max_iterations = 2000;
    control.recovery = ctx;
    try
    {
      solve_cg(laplace, xd, bd, jacobi, control);
    }
    catch (const vmpi::TimeoutError &)
    {
      if (ctx)
        ctx->resolve_failure();
      throw;
    }
  };

  RecoveryRow row{};

  { // fault-free 4-rank baseline
    Timer t;
    vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
      solve_on(comm, nullptr, false);
    });
    row.faultfree_seconds = t.seconds();
  }

  { // kill rank 2 mid-solve; recover by shrinking to 3 ranks
    resilience::FaultPlan::Config cfg;
    cfg.kill_rank = 2;
    cfg.kill_step = 12;
    resilience::FaultPlan plan(cfg);
    resilience::DistributedRecoveryOptions opts;
    Timer t;
    const auto report = resilience::run_resilient(
      n_ranks, opts,
      [&](vmpi::Communicator &comm, resilience::RecoveryContext &ctx,
          const resilience::RecoveryAttempt &attempt) {
        if (attempt.attempt == 0)
          comm.install_fault_handler(&plan);
        comm.set_timeout(1.0);
        solve_on(comm, &ctx, attempt.restore);
      });
    row.recovered_seconds = t.seconds();
    row.attempts = report.attempts;
    row.shrinks = report.shrinks;
  }
  return row;
}

void write_json(const char *path, const std::vector<AgreeResultRow> &agree,
                const std::vector<CheckpointRow> &ckpt,
                const std::vector<StallRow> &stalls,
                const std::vector<RestoreRow> &restores,
                const RecoveryRow &rec, const bool smoke)
{
  std::FILE *f = std::fopen(path, "w");
  if (!f)
  {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"dgflow-bench-recovery-v1\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (const auto &r : agree)
    std::fprintf(f,
                 "    {\"name\": \"agree_round\", \"n_ranks\": %d, "
                 "\"seconds\": %.6e},\n",
                 r.n_ranks, r.seconds_per_round);
  for (const auto &r : ckpt)
    std::fprintf(f,
                 "    {\"name\": \"shard_checkpoint\", \"n_dofs\": %zu, "
                 "\"n_shards\": %d, \"write_bytes_per_s\": %.6e, "
                 "\"read_bytes_per_s\": %.6e},\n",
                 r.n_dofs, r.n_shards, r.write_bytes_per_s,
                 r.read_bytes_per_s);
  for (const auto &r : stalls)
    std::fprintf(f,
                 "    {\"name\": \"ckpt_stall\", \"mode\": \"%s\", "
                 "\"injected_stall_ms\": %.3f, \"n_ckpts\": %u, "
                 "\"stall_seconds_per_ckpt\": %.6e},\n",
                 r.mode, r.injected_stall_ms, r.n_ckpts, r.stall_per_ckpt);
  for (const auto &r : restores)
    std::fprintf(f,
                 "    {\"name\": \"restore_by_generation\", "
                 "\"fallback_depth\": %d, \"seconds\": %.6e},\n",
                 r.fallback_depth, r.seconds);
  std::fprintf(f,
               "    {\"name\": \"shrinking_recovery\", "
               "\"faultfree_seconds\": %.6e, \"recovered_seconds\": %.6e, "
               "\"attempts\": %d, \"shrinks\": %d}\n",
               rec.faultfree_seconds, rec.recovered_seconds, rec.attempts,
               rec.shrinks);
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("benchmark JSON archived to %s\n", path);
}
} // namespace

int main(int argc, char **argv)
{
  dgflow::prof::EnvSession profile_session;
  const bool smoke = (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
                     std::getenv("DGFLOW_BENCH_SMOKE") != nullptr;

  print_header(
    "Recovery path: agreement latency, shard checkpoints, shrinking restart",
    "failure detection and N->M restart for the distributed pressure "
    "Poisson solve; agreement latency bounds the per-iteration overhead");

  const std::string dir =
    (std::filesystem::temp_directory_path() / "dgflow_recovery_bench")
      .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const unsigned int rounds = smoke ? 20 : 500;
  std::vector<AgreeResultRow> agree;
  Table agree_table({"ranks", "rounds", "t/agree [s]"});
  for (const int n_ranks : {2, 4, 8})
  {
    agree.push_back(time_agree_rounds(n_ranks, rounds));
    agree_table.add_row(agree.back().n_ranks, agree.back().rounds,
                        Table::sci(agree.back().seconds_per_round, 3));
  }
  agree_table.print();

  const std::size_t n_dofs = smoke ? (std::size_t)1 << 16
                                   : (std::size_t)1 << 22;
  const unsigned int repetitions = smoke ? 2 : 5;
  std::vector<CheckpointRow> ckpt;
  Table ckpt_table({"MDoF", "shards", "write GB/s", "read GB/s"});
  for (const int n_shards : {4, 8})
  {
    ckpt.push_back(
      time_shard_checkpoint(dir + "/ckpt", n_dofs, n_shards, repetitions));
    ckpt_table.add_row(Table::format(double(n_dofs) / 1e6, 3), n_shards,
                       Table::format(ckpt.back().write_bytes_per_s / 1e9, 3),
                       Table::format(ckpt.back().read_bytes_per_s / 1e9, 3));
  }
  ckpt_table.print();

  // checkpoint stall: under the current working directory, not the system
  // temp dir — /tmp is usually tmpfs, where fsync costs nothing and the
  // sync-vs-async comparison would be meaningless
  const std::string stall_dir = "dgflow_ckpt_stall_bench";
  const std::size_t stall_doubles = smoke ? (std::size_t)1 << 14
                                          : (std::size_t)1 << 19;
  const unsigned int n_ckpts = smoke ? 3 : 8;
  const double injected_ms = 5.;
  std::vector<StallRow> stalls;
  Table stall_table({"mode", "disk", "ckpts", "stall/ckpt [s]"});
  for (const double stall_ms : {0., injected_ms})
    for (const bool async : {false, true})
    {
      stalls.push_back(time_ckpt_stall(stall_dir, stall_doubles, n_ckpts,
                                       async, stall_ms));
      stall_table.add_row(stalls.back().mode,
                          stall_ms > 0. ? "slow (+5 ms/op)" : "bare",
                          stalls.back().n_ckpts,
                          Table::sci(stalls.back().stall_per_ckpt, 3));
    }
  stall_table.print();
  const double sync_stall = stalls[2].stall_per_ckpt;  // injected, sync
  const double async_stall = stalls[3].stall_per_ckpt; // injected, async
  const bool stall_ok = async_stall * 5. <= sync_stall;
  std::printf("async stall reduction on the slow disk: %.1fx %s\n",
              sync_stall / async_stall,
              stall_ok ? "(>= 5x, ok)" : "(< 5x: REGRESSION)");

  const std::vector<RestoreRow> restores = time_restore_by_generation(
    dir + "/restore", stall_doubles, smoke ? 3 : 4);
  Table restore_table({"fallback depth", "restore [s]"});
  for (const auto &r : restores)
    restore_table.add_row(r.fallback_depth, Table::sci(r.seconds, 3));
  restore_table.print();

  Mesh mesh(unit_cube());
  mesh.refine_uniform(smoke ? 1 : 2);
  const unsigned int degree = smoke ? 1 : 2;
  const RecoveryRow rec = time_recovered_solve(mesh, degree, dir + "/solve");
  std::printf("\nshrinking recovery: fault-free %.3fs, recovered %.3fs "
              "(%d attempts, %d shrink)\n",
              rec.faultfree_seconds, rec.recovered_seconds, rec.attempts,
              rec.shrinks);

  if (const char *path = std::getenv("DGFLOW_BENCH_JSON"))
    write_json(path, agree, ckpt, stalls, restores, rec, smoke);

  const bool ok = rec.shrinks == 1 && stall_ok;
  std::printf("\nrecovery check: %s\n",
              ok ? "solve completed after one shrink; async stall ok"
                 : "FAILED (missing shrink rung or async stall regression)");
  return ok ? 0 : 1;
}
