// Recovery-path microbenchmark: the cost of the rank-failure tolerance
// machinery added for distributed solves. Three measurements:
//
//  * agree-round latency on 2/4/8 logical ranks — one
//    Communicator::agree() is the unit cost a solver pays at every probed
//    iteration boundary (SolverControl::recovery with the default stride),
//    so this latency bounds the steady-state overhead of failure detection;
//  * shard-checkpoint write and read throughput — rankN.ckpt shards plus
//    manifest for a distributed field, the state a shrinking recovery
//    restores from;
//  * end-to-end recovery overhead — wall time of a 4-rank Jacobi-CG Poisson
//    solve that loses a rank mid-solve and completes by shrinking to 3,
//    against the fault-free 4-rank solve.
//
// Machine-readable output: when DGFLOW_BENCH_JSON is set, the results are
// archived as JSON (schema dgflow-bench-recovery-v1); run_benchmarks.sh
// stores it as bench_results/BENCH_recovery.json. A fast smoke variant
// (--smoke, also run under `ctest -L distributed_resilience`) shrinks the
// problem and repetitions to verify the harness end to end.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "mesh/generators.h"
#include "mesh/partition.h"
#include "operators/laplace_operator.h"
#include "resilience/distributed_recovery.h"
#include "resilience/fault_injection.h"
#include "resilience/shard_checkpoint.h"
#include "solvers/cg.h"
#include "vmpi/distributed_vector.h"
#include "vmpi/partitioner.h"

using namespace dgflow;
using namespace dgflow::bench;

namespace
{
struct AgreeResultRow
{
  int n_ranks;
  unsigned int rounds;
  double seconds_per_round;
};

struct CheckpointRow
{
  std::size_t n_dofs;
  int n_shards;
  double write_bytes_per_s;
  double read_bytes_per_s;
};

struct RecoveryRow
{
  double faultfree_seconds;
  double recovered_seconds;
  int attempts;
  int shrinks;
};

BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}

double forcing(const Point &p)
{
  return 3 * M_PI * M_PI * std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]) *
         std::sin(M_PI * p[2]);
}

double zero(const Point &) { return 0.; }

AgreeResultRow time_agree_rounds(const int n_ranks, const unsigned int rounds)
{
  double seconds = 0;
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    comm.agree(true); // warm-up
    comm.barrier();
    Timer t;
    for (unsigned int i = 0; i < rounds; ++i)
      comm.agree(true);
    if (comm.rank() == 0)
      seconds = t.seconds();
  });
  return {n_ranks, rounds, seconds / rounds};
}

CheckpointRow time_shard_checkpoint(const std::string &dir,
                                    const std::size_t n_dofs,
                                    const int n_shards,
                                    const unsigned int repetitions)
{
  Vector<double> global(n_dofs);
  for (std::size_t i = 0; i < n_dofs; ++i)
    global[i] = std::sin(0.37 * double(i));
  const double payload_bytes = double(n_dofs) * sizeof(double);

  const double write_seconds = best_of(repetitions, [&]() {
    std::vector<std::uint64_t> checksums(n_shards);
    for (int r = 0; r < n_shards; ++r)
    {
      const std::size_t begin = (n_dofs * r) / n_shards;
      const std::size_t end = (n_dofs * (r + 1)) / n_shards;
      Vector<double> owned(end - begin);
      for (std::size_t i = begin; i < end; ++i)
        owned[i - begin] = global[i];
      resilience::ShardCheckpointWriter writer(dir, r, n_shards);
      writer.write_owned_slice(n_dofs, begin, owned);
      checksums[r] = writer.close().checksum;
    }
    resilience::write_shard_manifest(dir, checksums);
  });

  const double read_seconds = best_of(repetitions, [&]() {
    resilience::ShardCheckpointReader reader(dir);
    Vector<double> restored;
    reader.read_global(restored);
    if (restored.size() != n_dofs)
      std::abort();
  });

  return {n_dofs, n_shards, payload_bytes / write_seconds,
          payload_bytes / read_seconds};
}

RecoveryRow time_recovered_solve(const Mesh &mesh, const unsigned int degree,
                                 const std::string &dir)
{
  TrilinearGeometry geom(mesh.coarse());
  const BoundaryMap bc = all_dirichlet();
  const int n_ranks = 4;

  // serial assembly shared by all attempts (rhs + reference diag)
  MatrixFree<double>::AdditionalData ref_data;
  ref_data.degrees = {degree};
  ref_data.n_q_points_1d = {degree + 1};
  MatrixFree<double> ref_mf;
  ref_mf.reinit(mesh, geom, ref_data);
  LaplaceOperator<double> ref_laplace;
  ref_laplace.reinit(ref_mf, 0, 0, bc);
  Vector<double> rhs;
  ref_laplace.assemble_rhs(rhs, forcing, zero);
  const std::size_t n_dofs = ref_laplace.n_dofs();

  const auto solve_on = [&](vmpi::Communicator &comm,
                            resilience::RecoveryContext *ctx,
                            const bool restore) {
    const int width = comm.size();
    const std::vector<int> rank_of_cell = partition_cells(mesh, width);
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), width);

    MatrixFree<double>::AdditionalData data;
    data.degrees = {degree};
    data.n_q_points_1d = {degree + 1};
    data.rank_of_cell = rank_of_cell;
    data.n_ranks = width;
    MatrixFree<double> mf;
    mf.reinit(mesh, geom, data);
    LaplaceOperator<double> laplace;
    laplace.reinit(mf, 0, 0, bc);
    const unsigned int dofs_per_cell = mf.dofs_per_cell(0);

    Vector<double> diag;
    laplace.compute_diagonal(diag);

    vmpi::DistributedVector<double> xd(part, comm, dofs_per_cell), bd, dd;
    bd.reinit(part, comm, dofs_per_cell);
    bd.copy_owned_from(rhs);
    dd.reinit(part, comm, dofs_per_cell);
    dd.copy_owned_from(diag);
    PreconditionJacobi<double> jacobi;
    jacobi.reinit(dd);

    if (restore)
    {
      resilience::ShardCheckpointReader reader(dir);
      Vector<double> xg;
      reader.read_global(xg);
      xd.copy_owned_from(xg);
    }
    else
    {
      resilience::ShardCheckpointWriter writer(dir, comm.rank(), width);
      Vector<double> owned(xd.size());
      for (std::size_t i = 0; i < xd.size(); ++i)
        owned[i] = xd.data()[i];
      writer.write_owned_slice(n_dofs, xd.first_local_index(), owned);
      const auto shard = writer.close();
      constexpr int tag_checksum = 941;
      if (comm.rank() == 0)
      {
        std::vector<std::uint64_t> checksums(width);
        checksums[0] = shard.checksum;
        for (int r = 1; r < width; ++r)
          checksums[r] = comm.recv_vector<std::uint64_t>(r, tag_checksum, 1)
                           .at(0);
        resilience::write_shard_manifest(dir, checksums);
      }
      else
        comm.send_vector(0, tag_checksum,
                         std::vector<std::uint64_t>{shard.checksum});
      comm.barrier();
    }

    SolverControl control;
    control.rel_tol = 1e-8;
    control.max_iterations = 2000;
    control.recovery = ctx;
    try
    {
      solve_cg(laplace, xd, bd, jacobi, control);
    }
    catch (const vmpi::TimeoutError &)
    {
      if (ctx)
        ctx->resolve_failure();
      throw;
    }
  };

  RecoveryRow row{};

  { // fault-free 4-rank baseline
    Timer t;
    vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
      solve_on(comm, nullptr, false);
    });
    row.faultfree_seconds = t.seconds();
  }

  { // kill rank 2 mid-solve; recover by shrinking to 3 ranks
    resilience::FaultPlan::Config cfg;
    cfg.kill_rank = 2;
    cfg.kill_step = 12;
    resilience::FaultPlan plan(cfg);
    resilience::DistributedRecoveryOptions opts;
    Timer t;
    const auto report = resilience::run_resilient(
      n_ranks, opts,
      [&](vmpi::Communicator &comm, resilience::RecoveryContext &ctx,
          const resilience::RecoveryAttempt &attempt) {
        if (attempt.attempt == 0)
          comm.install_fault_handler(&plan);
        comm.set_timeout(1.0);
        solve_on(comm, &ctx, attempt.restore);
      });
    row.recovered_seconds = t.seconds();
    row.attempts = report.attempts;
    row.shrinks = report.shrinks;
  }
  return row;
}

void write_json(const char *path, const std::vector<AgreeResultRow> &agree,
                const std::vector<CheckpointRow> &ckpt,
                const RecoveryRow &rec, const bool smoke)
{
  std::FILE *f = std::fopen(path, "w");
  if (!f)
  {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"dgflow-bench-recovery-v1\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (const auto &r : agree)
    std::fprintf(f,
                 "    {\"name\": \"agree_round\", \"n_ranks\": %d, "
                 "\"seconds\": %.6e},\n",
                 r.n_ranks, r.seconds_per_round);
  for (const auto &r : ckpt)
    std::fprintf(f,
                 "    {\"name\": \"shard_checkpoint\", \"n_dofs\": %zu, "
                 "\"n_shards\": %d, \"write_bytes_per_s\": %.6e, "
                 "\"read_bytes_per_s\": %.6e},\n",
                 r.n_dofs, r.n_shards, r.write_bytes_per_s,
                 r.read_bytes_per_s);
  std::fprintf(f,
               "    {\"name\": \"shrinking_recovery\", "
               "\"faultfree_seconds\": %.6e, \"recovered_seconds\": %.6e, "
               "\"attempts\": %d, \"shrinks\": %d}\n",
               rec.faultfree_seconds, rec.recovered_seconds, rec.attempts,
               rec.shrinks);
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("benchmark JSON archived to %s\n", path);
}
} // namespace

int main(int argc, char **argv)
{
  dgflow::prof::EnvSession profile_session;
  const bool smoke = (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
                     std::getenv("DGFLOW_BENCH_SMOKE") != nullptr;

  print_header(
    "Recovery path: agreement latency, shard checkpoints, shrinking restart",
    "failure detection and N->M restart for the distributed pressure "
    "Poisson solve; agreement latency bounds the per-iteration overhead");

  const std::string dir =
    (std::filesystem::temp_directory_path() / "dgflow_recovery_bench")
      .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const unsigned int rounds = smoke ? 20 : 500;
  std::vector<AgreeResultRow> agree;
  Table agree_table({"ranks", "rounds", "t/agree [s]"});
  for (const int n_ranks : {2, 4, 8})
  {
    agree.push_back(time_agree_rounds(n_ranks, rounds));
    agree_table.add_row(agree.back().n_ranks, agree.back().rounds,
                        Table::sci(agree.back().seconds_per_round, 3));
  }
  agree_table.print();

  const std::size_t n_dofs = smoke ? (std::size_t)1 << 16
                                   : (std::size_t)1 << 22;
  const unsigned int repetitions = smoke ? 2 : 5;
  std::vector<CheckpointRow> ckpt;
  Table ckpt_table({"MDoF", "shards", "write GB/s", "read GB/s"});
  for (const int n_shards : {4, 8})
  {
    ckpt.push_back(
      time_shard_checkpoint(dir + "/ckpt", n_dofs, n_shards, repetitions));
    ckpt_table.add_row(Table::format(double(n_dofs) / 1e6, 3), n_shards,
                       Table::format(ckpt.back().write_bytes_per_s / 1e9, 3),
                       Table::format(ckpt.back().read_bytes_per_s / 1e9, 3));
  }
  ckpt_table.print();

  Mesh mesh(unit_cube());
  mesh.refine_uniform(smoke ? 1 : 2);
  const unsigned int degree = smoke ? 1 : 2;
  const RecoveryRow rec = time_recovered_solve(mesh, degree, dir + "/solve");
  std::printf("\nshrinking recovery: fault-free %.3fs, recovered %.3fs "
              "(%d attempts, %d shrink)\n",
              rec.faultfree_seconds, rec.recovered_seconds, rec.attempts,
              rec.shrinks);

  if (const char *path = std::getenv("DGFLOW_BENCH_JSON"))
    write_json(path, agree, ckpt, rec, smoke);

  const bool ok = rec.shrinks == 1;
  std::printf("\nrecovery check: %s\n",
              ok ? "solve completed after one shrink"
                 : "MISSING the expected shrink rung");
  return ok ? 0 : 1;
}
