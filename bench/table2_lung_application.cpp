// Table 2: performance of lung application runs - wall time per time step,
// hours per breathing cycle, hours per liter of tidal volume, versus the
// number of resolved generations g. Small-g cases run the real coupled
// solver on this machine (measured per-step times after the startup
// transient, with the CFL step determining the steps per cycle); larger g
// report the mesh statistics from the real generator plus model-projected
// step times for the paper's node counts. The paper's rows are printed for
// comparison.
//
// Environment: TABLE2_MAX_G (default 3; set 5 for a longer live run)
// bounds the generations run live;
// TABLE2_STEPS (default 200) sets the measured steps per case.

#include <cstdlib>

#include "bench/bench_common.h"
#include "lung/lung_application.h"
#include "perfmodel/scaling_model.h"

using namespace dgflow;
using namespace dgflow::bench;

int main()
{
  dgflow::prof::EnvSession profile_session;
  print_header("Table 2: lung application runs",
               "paper Table 2: g=3..11, 0.017-0.045 s/step on 2-128 nodes, "
               "0.9-25 h/cycle, 1.9-57 h/l");

  const unsigned int max_live_g =
    std::getenv("TABLE2_MAX_G") ? std::atoi(std::getenv("TABLE2_MAX_G")) : 3;
  const unsigned int n_steps =
    std::getenv("TABLE2_STEPS") ? std::atoi(std::getenv("TABLE2_STEPS")) : 120;

  struct PaperRow
  {
    unsigned int g, nodes;
    double cells, dofs, n_dt, t_step, h_cycle, h_l;
  };
  const PaperRow paper[] = {{3, 2, 2.0e3, 4.4e5, 1.8e5, 0.0174, 0.9, 1.9},
                            {5, 16, 1.8e4, 3.6e6, 5.2e5, 0.0232, 3.4, 7.3},
                            {7, 32, 4.2e4, 9.2e6, 1.0e6, 0.0229, 6.4, 14},
                            {9, 128, 2.1e5, 4.5e7, 1.6e6, 0.0419, 19, 43},
                            {11, 128, 3.5e5, 7.7e7, 2.0e6, 0.0451, 25, 57}};

  Table table({"g", "#cell", "#DoF", "N_dt", "t_wall/N_dt [s]", "h/cycle",
               "h/l", "source"});

  const double period = VentilatorSettings().period;
  const double vt_l = VentilatorSettings().target_tidal_volume / liter;
  ScalingModel model;
  model.mesh_efficiency = 0.8;

  for (const auto &row : paper)
  {
    if (row.g <= max_live_g)
    {
      // live coupled run on this machine
      LungApplicationParameters prm;
      prm.generations = row.g;
      LungApplication app(prm);

      double wall = 0, dt_sum = 0;
      unsigned int measured = 0;
      for (unsigned int s = 0; s < n_steps; ++s)
      {
        const auto info = app.advance();
        if (s >= n_steps / 4) // skip the startup transient
        {
          wall += info.wall_time;
          dt_sum += info.dt;
          ++measured;
        }
      }
      const double t_step = wall / measured;
      const double dt_avg = dt_sum / measured;
      const double n_dt = period / dt_avg;
      const double h_cycle = n_dt * t_step / 3600.;
      table.add_row(row.g, app.mesh().n_active_cells(),
                    Table::sci(double(app.solver().matrix_free().n_dofs(0, 3) +
                                      app.solver().matrix_free().n_dofs(1, 1)),
                               2),
                    Table::sci(n_dt, 2), Table::format(t_step, 3),
                    Table::format(h_cycle, 3),
                    Table::format(h_cycle / vt_l, 3), "measured (1 core)");
    }
    else
    {
      // mesh statistics from the real generator; step time from the model
      // at the paper's node count (one pressure solve at tol 1e-3 ~ 1/3 of
      // the 1e-10 iteration count, plus explicit sub-steps ~ 6 mat-vecs)
      const LungMesh lung = lung_mesh_for_generations(row.g);
      const double n_cells = lung.coarse.cells.size();
      const double n_dofs = n_cells * (3 * 64 + 27);
      ScalingModel::MultigridConfig config;
      config.cg_iterations = 7; // tol 1e-3 with extrapolated initial guess
      config.n_h_levels = 3;
      const double t_press =
        model.poisson_solve_time(n_cells * 27, row.nodes, config);
      const double t_expl =
        6. * model.matvec_time(n_cells * 192, 3, row.nodes);
      const double t_step = t_press + t_expl;
      const double h_cycle = row.n_dt * t_step / 3600.;
      table.add_row(row.g, int(n_cells), Table::sci(n_dofs, 2),
                    Table::sci(row.n_dt, 2), Table::format(t_step, 3),
                    Table::format(h_cycle, 3),
                    Table::format(h_cycle / vt_l, 3),
                    "generated mesh + model");
    }
  }
  table.print();

  std::printf("\npaper's Table 2 (SuperMUC-NG, strong-scaling limit):\n");
  Table ptab({"g", "#node", "#cell", "#DoF", "N_dt", "t_wall/N_dt", "h/cycle",
              "h/l"});
  for (const auto &row : paper)
    ptab.add_row(row.g, row.nodes, Table::sci(row.cells, 2),
                 Table::sci(row.dofs, 2), Table::sci(row.n_dt, 2),
                 Table::format(row.t_step, 3), Table::format(row.h_cycle, 2),
                 Table::format(row.h_l, 2));
  ptab.print();

  std::printf("\nexpected shape: cell/DoF counts of the generated meshes "
              "track the paper's within ~2x; N_dt grows with g (CFL in the "
              "refined upper airways); h/cycle and h/l grow superlinearly "
              "with g.\n");
  return 0;
}
