// Figure 6 (right): CEED benchmark problem BP3 - throughput per CG
// iteration of a continuous finite element Laplacian (degrees 3 and 6,
// over-integration omitted as in the paper's deal.II configuration) as a
// function of problem size, compared against the published per-node values
// for one SuperMUC-NG Skylake node, one Nvidia V100 of Summit (CEED-MS35)
// and one Fujitsu A64FX node.

#include "bench/bench_common.h"
#include "operators/cfe_laplace_operator.h"
#include "solvers/cg.h"

using namespace dgflow;
using namespace dgflow::bench;

int main()
{
  dgflow::prof::EnvSession profile_session;
  print_header(
    "Fig. 6 (right): CEED BP3 throughput per CG iteration vs problem size",
    "paper Fig. 6 right: Skylake node competitive with V100/A64FX despite "
    "4x lower bandwidth; strong advantage at 1e4-1e6 DoF");

  Table table({"k", "refine", "n_dofs", "CG its", "DoF/s per CG it (1 core)",
               "proj. node (x48 x0.8)"});

  for (const unsigned int degree : {3u, 6u})
    for (unsigned int refine = 1; refine <= 5; ++refine)
    {
      Mesh mesh(unit_cube());
      mesh.refine_uniform(refine);
      const std::size_t est_dofs =
        pow_int((1u << refine) * degree + 1, 3);
      if (est_dofs > 2.5e6)
        break;
      TrilinearGeometry geom(mesh.coarse());

      MatrixFree<double> mf;
      MatrixFree<double>::AdditionalData data;
      data.degrees = {degree};
      data.basis_types = {BasisType::lagrange_gauss_lobatto};
      data.n_q_points_1d = {degree + 1};
      mf.reinit(mesh, geom, data);

      const CFESpace space = make_lattice_space(
        mesh, degree, {{1, 1, 1}}, [](unsigned int) { return true; });
      CFELaplaceOperator<double> laplace;
      laplace.reinit(mf, 0, 0, space);

      Vector<double> b(laplace.n_dofs()), x(laplace.n_dofs());
      for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = space.dirichlet[i] ? 0. : 1. + 1e-3 * (i % 37);

      PreconditionIdentity precond; // BP3 measures the raw CG iteration
      SolverControl control;
      control.max_iterations = 20; // fixed iteration count, timing only
      control.rel_tol = 0.;
      control.abs_tol = 0.;
      const double t = best_of(2, [&]() {
        x = 0.;
        solve_cg(laplace, x, b, precond, control);
      });
      const double rate = 20. * laplace.n_dofs() / t;

      table.add_row(degree, refine, laplace.n_dofs(), 20,
                    Table::sci(rate, 3), Table::sci(rate * 48 * 0.8, 3));
    }
  table.print();

  std::printf("\npublished saturated BP3 rates per device (paper Fig. 6 "
              "right, CEED-MS35/36):\n");
  std::printf("  SuperMUC-NG Skylake node (2x24 cores): ~2.5e9 DoF/s\n");
  std::printf("  Nvidia V100 (Summit):                  ~3e9 DoF/s at >1e7 "
              "DoF, <1e9 below 1e6 DoF\n");
  std::printf("  Fujitsu A64FX node:                    ~2e9 DoF/s\n");
  std::printf("expected shape: CPU throughput saturates at much smaller "
              "problem sizes than the GPU (cache effects), which is the "
              "strong-scaling advantage the paper builds on.\n");
  return 0;
}
