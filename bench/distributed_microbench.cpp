// Distributed matrix-free benchmark: times the SIP Laplace vmult and a
// Jacobi-CG solve on 1/2/4/8 logical vmpi ranks (threads in one process,
// see DESIGN.md substitution table) and validates the measured ghost-
// exchange traffic against the partition model predictions
// (predict_exchange_traffic). Logical ranks share one socket, so the point
// is not parallel speedup but the communication structure: messages and
// bytes per vmult must match the model exactly, and the per-rank work
// shrinks with the owned cell range.
//
// Machine-readable output: when DGFLOW_BENCH_JSON is set, the results are
// archived as JSON (schema dgflow-bench-distributed-v1);
// run_benchmarks.sh stores it as bench_results/BENCH_distributed.json.
// A fast smoke variant (--smoke, also run under `ctest -L distributed`)
// shrinks the mesh and repetitions to verify the harness end to end.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "mesh/generators.h"
#include "mesh/partition.h"
#include "operators/laplace_operator.h"
#include "solvers/cg.h"
#include "vmpi/distributed_vector.h"
#include "vmpi/partitioner.h"

using namespace dgflow;
using namespace dgflow::bench;

namespace
{
struct Result
{
  int n_ranks;
  std::size_t n_dofs;
  double seconds_per_vmult;
  double dofs_per_s;
  unsigned long long messages_per_vmult, predicted_messages;
  unsigned long long bytes_per_vmult, predicted_bytes;
  unsigned int cg_iterations;
};

BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}

Result run_ranks(const Mesh &mesh, const unsigned int degree,
                 const int n_ranks, const unsigned int n_mv)
{
  TrilinearGeometry geom(mesh.coarse());
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);
  const auto stats = compute_partition_stats(mesh, rank_of_cell, n_ranks);

  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.rank_of_cell = rank_of_cell;
  data.n_ranks = n_ranks;
  MatrixFree<double> mf;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  const unsigned int dofs_per_cell = mf.dofs_per_cell(0);

  const auto predicted =
    predict_exchange_traffic(stats, dofs_per_cell, sizeof(double));

  Vector<double> diag;
  laplace.compute_diagonal(diag);

  Result r{};
  r.n_ranks = n_ranks;
  r.n_dofs = laplace.n_dofs();
  r.predicted_messages = predicted.total_messages;
  r.predicted_bytes = predicted.total_bytes;

  double seconds = 0;
  unsigned long long messages = 0, bytes = 0;
  unsigned int iterations = 0;
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> src(part, comm, dofs_per_cell), dst;
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = 0.3 + 1e-6 * double((src.first_local_index() + i) % 1001);
    laplace.vmult(dst, src); // warm-up

    const auto before = comm.traffic();
    comm.barrier();
    Timer t;
    for (unsigned int i = 0; i < n_mv; ++i)
      laplace.vmult(dst, src);
    comm.barrier();
    const double local_seconds = t.seconds();
    const auto after = comm.traffic();

    // a short Jacobi-CG exercises the allreduce path on top of the exchange
    vmpi::DistributedVector<double> x(part, comm, dofs_per_cell), b, ddiag;
    b.reinit(part, comm, dofs_per_cell);
    b = 1.;
    ddiag.reinit(part, comm, dofs_per_cell);
    ddiag.copy_owned_from(diag);
    PreconditionJacobi<double> jacobi;
    jacobi.reinit(ddiag);
    SolverControl control;
    control.rel_tol = 1e-6;
    control.max_iterations = 200;
    const auto solve = solve_cg(laplace, x, b, jacobi, control);

    if (comm.rank() == 0)
    {
      seconds = local_seconds / n_mv;
      iterations = solve.iterations;
    }
    // traffic counters are per rank; sum them (serialized by the barrier
    // above plus vmpi::run's join, so plain accumulation would race — use
    // the rank-0 aggregate after an allreduce instead)
    std::vector<double> counts = {double(after.messages - before.messages),
                                  double(after.bytes - before.bytes)};
    comm.allreduce(counts, vmpi::Communicator::Op::sum);
    if (comm.rank() == 0)
    {
      messages =
        (unsigned long long)(counts[0] / n_mv + 0.5); // per-vmult average
      bytes = (unsigned long long)(counts[1] / n_mv + 0.5);
    }
  });

  r.seconds_per_vmult = seconds;
  r.dofs_per_s = double(r.n_dofs) / seconds;
  r.messages_per_vmult = messages;
  r.bytes_per_vmult = bytes;
  r.cg_iterations = iterations;
  return r;
}

void write_json(const char *path, const std::vector<Result> &results,
                const bool smoke)
{
  std::FILE *f = std::fopen(path, "w");
  if (!f)
  {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"dgflow-bench-distributed-v1\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i)
  {
    const Result &r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"distributed_laplace_vmult\", "
                 "\"n_ranks\": %d, \"n_dofs\": %zu, \"seconds\": %.6e, "
                 "\"dofs_per_s\": %.6e, \"messages_per_vmult\": %llu, "
                 "\"predicted_messages\": %llu, \"bytes_per_vmult\": %llu, "
                 "\"predicted_bytes\": %llu, \"cg_iterations\": %u}%s\n",
                 r.n_ranks, r.n_dofs, r.seconds_per_vmult, r.dofs_per_s,
                 r.messages_per_vmult, r.predicted_messages,
                 r.bytes_per_vmult, r.predicted_bytes, r.cg_iterations,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("benchmark JSON archived to %s\n", path);
}
} // namespace

int main(int argc, char **argv)
{
  dgflow::prof::EnvSession profile_session;
  const bool smoke = (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
                     std::getenv("DGFLOW_BENCH_SMOKE") != nullptr;

  print_header(
    "Distributed matrix-free: SIP Laplace vmult on 1/2/4/8 logical ranks",
    "paper Sec. 3.3: SFC partition + nearest-neighbor ghost exchange; the "
    "measured message counts/bytes must equal the partition model");

  Mesh mesh(unit_cube());
  mesh.refine_uniform(smoke ? 2 : 3);
  const unsigned int degree = smoke ? 2 : 3;
  const unsigned int n_mv = smoke ? 3 : 20;

  Table table({"ranks", "MDoF", "t/vmult [s]", "DoF/s", "msgs", "msgs pred",
               "bytes", "bytes pred", "CG its"});

  std::vector<Result> results;
  bool traffic_ok = true;
  for (const int n_ranks : {1, 2, 4, 8})
  {
    const Result r = run_ranks(mesh, degree, n_ranks, n_mv);
    results.push_back(r);
    traffic_ok = traffic_ok && r.messages_per_vmult == r.predicted_messages &&
                 r.bytes_per_vmult == r.predicted_bytes;
    table.add_row(r.n_ranks, Table::format(double(r.n_dofs) / 1e6, 3),
                  Table::sci(r.seconds_per_vmult, 3),
                  Table::sci(r.dofs_per_s, 3), r.messages_per_vmult,
                  r.predicted_messages, r.bytes_per_vmult, r.predicted_bytes,
                  r.cg_iterations);
  }
  table.print();

  std::printf("\ntraffic model check: %s\n",
              traffic_ok ? "measured == predicted"
                         : "MISMATCH between measured and predicted traffic");

  if (const char *path = std::getenv("DGFLOW_BENCH_JSON"))
    write_json(path, results, smoke);

  return traffic_ok ? 0 : 1;
}
