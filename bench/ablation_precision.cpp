// Ablation of the mixed-precision multigrid (paper Section 3.4): the
// V-cycle in single vs double precision - iteration counts must not degrade
// (the paper cites [44]) while the single-precision cycle is substantially
// faster (half the memory traffic, twice the SIMD lanes).

#include "bench/bench_common.h"
#include "multigrid/hybrid_multigrid.h"
#include "solvers/cg.h"

using namespace dgflow;
using namespace dgflow::bench;

namespace
{
template <typename LevelNumber>
void run_case(const Mesh &mesh, const Geometry &geom, const BoundaryMap &bc,
              const unsigned int degree, Table &table, const char *label)
{
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, bc);

  HybridMultigrid<LevelNumber> mg;
  mg.setup(mesh, geom, degree, bc);

  Vector<double> rhs, x(laplace.n_dofs());
  laplace.assemble_rhs(rhs, [](const Point &) { return 1.; },
                       [](const Point &) { return 0.; });
  SolverControl control;
  control.rel_tol = 1e-10;
  control.max_iterations = 200;

  // warm-up + best-of timing of the full solve
  solve_cg(laplace, x, rhs, mg, control);
  unsigned int iterations = 0;
  const double t = best_of(3, [&]() {
    x = 0.;
    iterations = solve_cg(laplace, x, rhs, mg, control).iterations;
  });
  table.add_row(label, iterations, Table::format(t, 3),
                Table::sci(laplace.n_dofs() * iterations / t, 3));
}
} // namespace

int main()
{
  dgflow::prof::EnvSession profile_session;
  print_header("Ablation: single vs double precision multigrid V-cycle",
               "paper Section 3.4: SP V-cycle does not affect convergence "
               "and improves throughput");

  Mesh mesh(unit_cube());
  mesh.refine_uniform(3);
  TrilinearGeometry geom(mesh.coarse());
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);

  for (const unsigned int degree : {2u, 3u})
  {
    Table table({"V-cycle precision", "CG its", "solve [s]",
                 "DoF/s per iteration"});
    run_case<float>(mesh, geom, bc, degree, table, "single (paper)");
    run_case<double>(mesh, geom, bc, degree, table, "double");
    std::printf("\nk = %u, 16^3 cells:\n", degree);
    table.print();
  }
  std::printf("\nexpected: identical iteration counts; the SP cycle "
              "noticeably faster (the gap is below the ideal 2x because of "
              "the double-precision outer CG, cf. the paper's 30%% "
              "smoother speedup).\n");
  return 0;
}
