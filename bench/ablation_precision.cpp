// Ablation of the end-to-end mixed-precision solver stack (paper Section
// 3.4): the outer CG stays double while the preconditioner drops precision
// in stages -
//   dp:               double V-cycle, double AMG coarse solve
//   sp_levels:        float V-cycle, double AMG (the paper's configuration)
//   sp_levels_sp_amg: float V-cycle AND float AMG coarse solve (the dense
//                     coarsest LU stays double)
// and, on the distributed cube case,
//   sp_ghost:         double storage with single-precision ghost-exchange
//                     payloads (checksummed float wire format)
// Iteration counts must not degrade (the paper cites [44]) while each stage
// removes memory traffic. Run on the unit cube and on the lung geometry
// (the acceptance case: SP-preconditioned DP CG within +-1 iteration of
// full DP).
//
// Machine-readable output: when DGFLOW_BENCH_JSON is set, the results are
// archived as JSON (schema dgflow-bench-precision-v1); run_benchmarks.sh
// stores it as bench_results/BENCH_precision.json. A fast smoke variant
// (--smoke, also run under `ctest -L perf`) shrinks the cases to verify the
// harness end to end.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "mesh/partition.h"
#include "multigrid/hybrid_multigrid.h"
#include "solvers/cg.h"
#include "vmpi/partitioner.h"

using namespace dgflow;
using namespace dgflow::bench;

namespace
{
struct Result
{
  std::string case_name;
  std::string config;
  std::size_t n_dofs;
  unsigned int iterations;
  double seconds;
  double ghost_bytes_per_vmult = 0; ///< distributed configs only
};

struct Case
{
  std::string name;
  const Mesh *mesh;
  const Geometry *geom;
  const BoundaryMap *bc;
  unsigned int degree;
  double penalty_safety;
  unsigned int repetitions;
};

template <typename LevelNumber>
Result run_mg_config(const Case &c, const char *config, const bool sp_amg)
{
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {c.degree};
  data.n_q_points_1d = {c.degree + 1};
  data.geometry_degree = 1;
  data.penalty_safety = c.penalty_safety;
  mf.reinit(*c.mesh, *c.geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, *c.bc);

  HybridMultigrid<LevelNumber> mg;
  typename HybridMultigrid<LevelNumber>::Options opts;
  opts.geometry_degree = 1;
  opts.penalty_safety = c.penalty_safety;
  opts.sp_amg = sp_amg;
  mg.setup(*c.mesh, *c.geom, c.degree, *c.bc, opts);

  Vector<double> rhs, x(laplace.n_dofs());
  laplace.assemble_rhs(rhs, [](const Point &) { return 1.; },
                       [](const Point &) { return 0.; });
  SolverControl control;
  control.rel_tol = 1e-10;
  control.max_iterations = 4000;

  Result r;
  r.case_name = c.name;
  r.config = config;
  r.n_dofs = laplace.n_dofs();

  solve_cg(laplace, x, rhs, mg, control); // warm-up
  r.seconds = best_of(c.repetitions, [&]() {
    x = 0.;
    r.iterations = solve_cg(laplace, x, rhs, mg, control).iterations;
  });
  return r;
}

/// Distributed Jacobi-CG on 4 logical ranks with the requested ghost-wire
/// precision: validates the iteration count and measures the exchange bytes
/// per vmult (the single wire roughly halves them; the +8-byte checksum
/// trailer per message is included).
Result run_ghost_config(const Case &c, const char *config,
                        const vmpi::WirePrecision wire)
{
  const int n_ranks = 4;
  const std::vector<int> rank_of_cell = partition_cells(*c.mesh, n_ranks);

  MatrixFree<double>::AdditionalData data;
  data.degrees = {c.degree};
  data.n_q_points_1d = {c.degree + 1};
  data.geometry_degree = 1;
  data.penalty_safety = c.penalty_safety;
  data.rank_of_cell = rank_of_cell;
  data.n_ranks = n_ranks;
  MatrixFree<double> mf;
  mf.reinit(*c.mesh, *c.geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, *c.bc);
  const unsigned int dofs_per_cell = mf.dofs_per_cell(0);

  Vector<double> diag;
  laplace.compute_diagonal(diag);

  Result r;
  r.case_name = c.name;
  r.config = config;
  r.n_dofs = laplace.n_dofs();

  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      *c.mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> x(part, comm, dofs_per_cell), b, ddiag,
      dst;
    b.reinit(part, comm, dofs_per_cell);
    b = 1.;
    ddiag.reinit(part, comm, dofs_per_cell);
    ddiag.copy_owned_from(diag);
    x.set_wire_precision(wire);
    b.set_wire_precision(wire);
    PreconditionJacobi<double> jacobi;
    jacobi.reinit(ddiag);

    // measured exchange traffic of repeated vmults
    const unsigned int n_mv = 10;
    laplace.vmult(dst, x); // warm-up (x carries the wire setting)
    const auto before = comm.traffic();
    Timer t;
    for (unsigned int i = 0; i < n_mv; ++i)
      laplace.vmult(dst, x);
    const double seconds = t.seconds() / n_mv;
    const auto after = comm.traffic();

    SolverControl control;
    control.rel_tol = 1e-8;
    control.max_iterations = 2000;
    const auto solve = solve_cg(laplace, x, b, jacobi, control);
    if (comm.rank() == 0)
    {
      r.iterations = solve.iterations;
      r.seconds = seconds;
      r.ghost_bytes_per_vmult = double(after.bytes - before.bytes) / n_mv;
    }
  });
  return r;
}

void write_json(const char *path, const std::vector<Result> &results,
                const bool smoke)
{
  std::FILE *f = std::fopen(path, "w");
  if (!f)
  {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  int lung_dp = -1, lung_sp = -1;
  for (const Result &r : results)
  {
    if (r.case_name == "lung_g3_k3" && r.config == "dp")
      lung_dp = int(r.iterations);
    if (r.case_name == "lung_g3_k3" && r.config == "sp_levels")
      lung_sp = int(r.iterations);
  }
  std::fprintf(f, "{\n  \"schema\": \"dgflow-bench-precision-v1\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"lung_cg_iterations_dp\": %d,\n", lung_dp);
  std::fprintf(f, "  \"lung_cg_iterations_sp_levels\": %d,\n", lung_sp);
  std::fprintf(f, "  \"lung_iteration_delta_sp_vs_dp\": %d,\n",
               (lung_dp >= 0 && lung_sp >= 0) ? lung_sp - lung_dp : 9999);
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i)
  {
    const Result &r = results[i];
    std::fprintf(f,
                 "    {\"case\": \"%s\", \"config\": \"%s\", \"n_dofs\": "
                 "%zu, \"iterations\": %u, \"seconds\": %.6e, "
                 "\"ghost_bytes_per_vmult\": %.6g}%s\n",
                 r.case_name.c_str(), r.config.c_str(), r.n_dofs,
                 r.iterations, r.seconds, r.ghost_bytes_per_vmult,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("benchmark JSON archived to %s\n", path);
}
} // namespace

int main(int argc, char **argv)
{
  dgflow::prof::EnvSession profile_session;
  const bool smoke = (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
                     std::getenv("DGFLOW_BENCH_SMOKE") != nullptr;

  print_header("Ablation: mixed-precision multigrid, AMG and ghost wire",
               "paper Section 3.4: dropping the V-cycle (and here also the "
               "AMG coarse solve and the ghost payloads) to single "
               "precision must not affect CG convergence");

  std::vector<Result> results;

  // case 1: unit cube, all-Dirichlet
  Mesh cube_mesh(unit_cube());
  cube_mesh.refine_uniform(smoke ? 2 : 3);
  TrilinearGeometry cube_geom(cube_mesh.coarse());
  BoundaryMap cube_bc;
  for (unsigned int id = 0; id < 6; ++id)
    cube_bc.set(id, BoundaryType::dirichlet);
  Case cube{"cube_k2", &cube_mesh, &cube_geom, &cube_bc, 2, 2.,
            smoke ? 1u : 3u};

  // case 2: lung airway tree (fig10's g=3 configuration), the acceptance
  // case for the +-1-iteration criterion
  const LungMesh lung = lung_mesh_for_generations(smoke ? 2 : 3);
  BoundaryMap lung_bc;
  lung_bc.set(LungMesh::wall_id, BoundaryType::neumann);
  lung_bc.set(LungMesh::inlet_id, BoundaryType::dirichlet);
  for (const auto id : lung.outlet_ids)
    lung_bc.set(id, BoundaryType::dirichlet);
  Mesh lung_mesh(lung.coarse);
  TrilinearGeometry lung_geom(lung_mesh.coarse());
  Case lung_case{"lung_g3_k3", &lung_mesh,          &lung_geom, &lung_bc, 3,
                 4.,           smoke ? 1u : 2u};

  for (const Case &c : {cube, lung_case})
  {
    Table table({"preconditioner precision", "CG its", "solve [s]",
                 "DoF/s per iteration"});
    results.push_back(run_mg_config<double>(c, "dp", false));
    results.push_back(run_mg_config<float>(c, "sp_levels", false));
    results.push_back(run_mg_config<float>(c, "sp_levels_sp_amg", true));
    for (std::size_t i = results.size() - 3; i < results.size(); ++i)
    {
      const Result &r = results[i];
      table.add_row(r.config.c_str(), r.iterations,
                    Table::format(r.seconds, 3),
                    Table::sci(double(r.n_dofs) * r.iterations / r.seconds,
                               3));
    }
    std::printf("\ncase %s (%zu DoF):\n", c.name.c_str(),
                results.back().n_dofs);
    table.print();
  }

  // distributed ghost-wire ablation on the cube (4 logical ranks)
  {
    Table table(
      {"ghost wire", "CG its", "vmult [s]", "exchange bytes/vmult"});
    results.push_back(
      run_ghost_config(cube, "dp_ghost", vmpi::WirePrecision::storage));
    results.push_back(
      run_ghost_config(cube, "sp_ghost", vmpi::WirePrecision::single));
    for (std::size_t i = results.size() - 2; i < results.size(); ++i)
    {
      const Result &r = results[i];
      table.add_row(r.config.c_str(), r.iterations,
                    Table::format(r.seconds, 4),
                    Table::sci(r.ghost_bytes_per_vmult, 4));
    }
    std::printf("\ndistributed cube, 4 logical ranks:\n");
    table.print();
  }

  std::printf("\nexpected: iteration counts within +-1 across all "
              "configurations; sp_levels_sp_amg removes the double "
              "round-trip at the AMG boundary; the single ghost wire "
              "roughly halves the exchange bytes (plus an 8-byte checksum "
              "trailer per message).\n");

  if (const char *path = std::getenv("DGFLOW_BENCH_JSON"))
    write_json(path, results, smoke);
  return 0;
}
