// Figure 7: roofline of the matrix-free DG Laplacian on the deformed lung
// geometry, degrees k = 1..6. Arithmetic intensities come from the kernel
// flop/byte model (ideal single-pass transfer, and the measured-overhead
// variant); the achieved GFlop/s combine the modeled flops with measured
// kernel run times. The machine roofline uses the measured stream-triad
// bandwidth and the AVX-512 FMA peak of the local core.

#include <thread>

#include "bench/bench_common.h"
#include "operators/laplace_operator.h"
#include "perfmodel/device_model.h"
#include "perfmodel/kernel_model.h"

using namespace dgflow;
using namespace dgflow::bench;

int main()
{
  dgflow::prof::EnvSession profile_session;
  print_header("Fig. 7: roofline of the DG Laplacian on the lung geometry",
               "paper Fig. 7: all degrees bandwidth-limited; measured "
               "transfer 20-30% above the ideal model");

  // bandwidth roof twice: one streaming core, and the full node (all
  // hardware threads streaming through the shared memory controllers). The
  // single-threaded roof bounds the serial kernels below; the node roof is
  // what the thread-parallel loops can saturate.
  const unsigned int node_threads =
    std::max(1u, std::thread::hardware_concurrency());
  const double bw = measure_stream_bandwidth();
  const double bw_node =
    node_threads > 1 ? measure_stream_bandwidth(node_threads) : bw;
  const double peak =
    32. * 2.7e9; // AVX-512: 2 FMA units x 8 lanes x 2 flops, 2.7 GHz
  std::printf("machine roofline: stream bandwidth %.1f GB/s (1 thread), "
              "%.1f GB/s (%u threads), DP peak %.1f "
              "GFlop/s (1-thread ridge at %.2f flop/byte)\n",
              bw / 1e9, bw_node / 1e9, node_threads, peak / 1e9, peak / bw);

  // device roof next to the host roofs: what the SoA-backend kernels project
  // to on an HBM-class APU (same bandwidth-bound regime, higher roof)
  const DeviceModel apu = DeviceModel::mi300a();
  std::printf("device roofline: %s - HBM %.1f GB/s, FP64 peak %.1f GFlop/s "
              "(ridge at %.2f flop/byte, %.0fx node stream bandwidth)\n\n",
              apu.name.c_str(), apu.hbm_bandwidth / 1e9,
              apu.dp_peak_flops / 1e9, apu.dp_peak_flops / apu.hbm_bandwidth,
              apu.projected_speedup_vs_host(bw_node));

  const LungMesh lung = lung_mesh_for_generations(3);

  BoundaryMap bc;
  bc.set(LungMesh::wall_id, BoundaryType::neumann);
  bc.set(LungMesh::inlet_id, BoundaryType::dirichlet);
  for (const auto id : lung.outlet_ids)
    bc.set(id, BoundaryType::dirichlet);

  Table table({"k", "MDoF", "AI ideal", "AI measured", "GFlop/s",
               "% of BW roof(ideal)", "BW-limited?", "APU GDoF/s",
               "APU GFlop/s"});

  for (unsigned int degree = 1; degree <= 6; ++degree)
  {
    Mesh mesh(lung.coarse);
    while (mesh.n_active_cells() * pow_int(degree + 1, 3) < 6e5)
      mesh.refine_uniform(1);
    TrilinearGeometry geom(mesh.coarse());

    MatrixFree<double> mf;
    MatrixFree<double>::AdditionalData data;
    data.degrees = {degree};
    data.n_q_points_1d = {degree + 1};
    data.geometry_degree = 1;
    mf.reinit(mesh, geom, data);
    LaplaceOperator<double> laplace;
    laplace.reinit(mf, 0, 0, bc);

    Vector<double> src(laplace.n_dofs()), dst(laplace.n_dofs());
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = 1e-3 * (i % 613);
    const unsigned int n_mv = std::max<std::size_t>(3, 8e6 / laplace.n_dofs());
    const double t = best_of(5, [&]() {
                       for (unsigned int i = 0; i < n_mv; ++i)
                         laplace.vmult(dst, src);
                     }) /
                     n_mv;

    KernelModel kernel{degree, 8};
    const double gflops = kernel.flops_per_dof() * laplace.n_dofs() / t / 1e9;
    // bandwidth-roof at the kernel's ideal arithmetic intensity
    const double roof = bw / 1e9 * kernel.arithmetic_intensity_ideal();
    const double apu_dofs = apu.projected_dofs_per_s(
      kernel.measured_bytes_per_dof(), kernel.flops_per_dof());
    table.add_row(degree, Table::format(laplace.n_dofs() / 1e6, 3),
                  Table::format(kernel.arithmetic_intensity_ideal(), 3),
                  Table::format(kernel.arithmetic_intensity_measured(), 3),
                  Table::format(gflops, 4),
                  Table::format(100. * gflops / roof, 3),
                  gflops < 0.5 * peak / 1e9 ? "yes" : "no",
                  Table::format(apu_dofs / 1e9, 3),
                  Table::format(apu_dofs * kernel.flops_per_dof() / 1e9, 4));
  }
  table.print();

  std::printf("\nexpected shape (paper): arithmetic intensity grows with k "
              "but all relevant degrees stay left of the ridge "
              "(bandwidth-limited); the achieved GFlop/s track the "
              "bandwidth roof within the measured-transfer overhead. The APU "
              "columns project the same measured-transfer model against the "
              "device HBM roof (every degree stays bandwidth-limited there "
              "as well).\n");
  return 0;
}
