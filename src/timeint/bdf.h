#pragma once

// Variable-step BDF time integration coefficients (order J <= 2) and the
// matching explicit extrapolation coefficients used by the dual splitting
// scheme (Eqs. 1-5): the time step adapts each step to the CFL condition
// (Eq. 6), so the coefficients depend on the ratio of consecutive steps.

#include <array>
#include <cmath>

#include "common/exceptions.h"

namespace dgflow
{
struct BDFCoefficients
{
  double gamma0 = 1.;
  std::array<double, 2> alpha{{1., 0.}}; ///< weights of u^n, u^{n-1}
  std::array<double, 2> beta{{1., 0.}};  ///< extrapolation weights

  /// Order-1 (startup) coefficients.
  static BDFCoefficients bdf1()
  {
    return BDFCoefficients{};
  }

  /// Order-2 coefficients for step ratio r = dt_n / dt_{n-1}.
  static BDFCoefficients bdf2(const double r)
  {
    DGFLOW_ASSERT(r > 0, "invalid step ratio");
    BDFCoefficients c;
    c.gamma0 = (1. + 2. * r) / (1. + r);
    c.alpha = {{1. + r, -r * r / (1. + r)}};
    c.beta = {{1. + r, -r}};
    return c;
  }
};

/// Adaptive CFL-based time step controller (Eq. 6): dt = CFL/k^1.5 * min_e
/// h_e/||u||_e, limited in growth to keep the BDF2 coefficients stable.
class TimeStepControl
{
public:
  TimeStepControl(const double cfl, const unsigned int degree,
                  const double max_growth = 1.2)
    : cfl_(cfl), degree_(degree), max_growth_(max_growth)
  {}

  /// Computes the next step from the global min of h/||u|| and the previous
  /// step size (0 on the first call).
  double next(const double min_h_over_u, const double previous) const
  {
    DGFLOW_ASSERT(std::isfinite(min_h_over_u) && min_h_over_u > 0,
                  "CFL controller received min h/||u|| = "
                    << min_h_over_u
                    << " (previous dt = " << previous
                    << "): the velocity field contains NaN/Inf or the mesh "
                       "metric is degenerate; refusing to propagate a "
                       "non-finite time step into the BDF coefficients");
    DGFLOW_ASSERT(std::isfinite(previous) && previous >= 0,
                  "CFL controller received non-finite previous dt = "
                    << previous);
    double dt = cfl_ / std::pow(double(degree_), 1.5) * min_h_over_u;
    if (previous > 0)
      dt = std::min(dt, max_growth_ * previous);
    return dt;
  }

private:
  double cfl_;
  unsigned int degree_;
  double max_growth_;
};

} // namespace dgflow
