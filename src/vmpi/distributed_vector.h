#pragma once

// Distributed solution vector over a vmpi Partitioner: owned elements first
// (one contiguous block of block_size scalars per element, matching the
// cell-local DG DoF layout), ghost elements appended in ascending global
// order. Implements the same vector-space concept as the serial Vector
// (add/sadd/equ/scale, allreduce-backed dot and norms) plus the ghost
// machinery the distributed operator evaluation needs: a split non-blocking
// update_ghost_values_start()/finish() pair — post the sends, evaluate owned
// cells, wait, evaluate cut faces — and compress_add() for the reverse
// ghost-to-owner accumulation.
//
// Ghost-state contract (operators/README.md "Ghost state"): the vector
// tracks whether its ghost section is up to date. Reading ghost elements
// (FEEvaluation::read_dof_values through local_dof_offset) debug-asserts
// the ghosted state; every mutating BLAS-1 operation invalidates it;
// compress_add() requires it and returns the vector owned-only with a
// zeroed ghost section.
//
// Wire precision: independent of the storage precision Number, the ghost
// and compress exchanges can run a single-precision wire format
// (set_wire_precision). The float payload halves the neighbor traffic of a
// double vector; because the narrowing conversion would otherwise mask the
// bit-flip faults the resilience layer injects, every single-precision
// message carries a trailing FNV-1a checksum over the payload bytes,
// verified on receive (GhostCorruptionError). The storage-precision wire
// stays byte-identical to the pre-knob format (no checksum) so traffic
// accounting and the epoch/timeout protocol are unchanged.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/aligned_vector.h"
#include "common/exceptions.h"
#include "common/vector.h"
#include "vmpi/partitioner.h"

namespace dgflow
{
namespace vmpi
{
/// A single-precision ghost/compress payload failed its checksum: the
/// message was corrupted in flight (or deliberately, by fault injection).
class GhostCorruptionError : public std::runtime_error
{
public:
  explicit GhostCorruptionError(const std::string &what)
    : std::runtime_error(what)
  {
  }
};

/// Scalar format of the ghost-exchange payload (storage precision stays
/// whatever Number is; this only affects the bytes on the wire).
enum class WirePrecision : unsigned char
{
  storage, ///< payload in Number (byte-identical to the legacy format)
  single   ///< float payload + trailing FNV-1a checksum
};

template <typename Number>
class DistributedVector
{
public:
  using value_type = Number;

  enum class GhostState : unsigned char
  {
    owned_only, ///< ghost section stale; reads of ghosts are a bug
    ghosted     ///< ghost section mirrors the owners' current values
  };

  DistributedVector() = default;

  DistributedVector(const Partitioner &part, Communicator &comm,
                    const unsigned int block_size = 1)
  {
    reinit(part, comm, block_size);
  }

  /// Attaches the vector to a partition: block_size scalars per element,
  /// owned elements first, ghosts appended. Zero-initialized.
  void reinit(const Partitioner &part, Communicator &comm,
              const unsigned int block_size = 1, const bool fast = false)
  {
    part_ = &part;
    comm_ = &comm;
    block_ = block_size;
    data_.resize_without_init(part.n_local() * block_);
    if (!fast)
      data_.fill(Number(0));
    state_ = GhostState::owned_only;
  }

  /// Mirror another vector's layout (vector-space concept): same
  /// partitioner, communicator and block size.
  void reinit_like(const DistributedVector &other, const bool fast = false)
  {
    DGFLOW_ASSERT(other.part_ != nullptr, "cannot mirror an empty vector");
    reinit(*other.part_, *other.comm_, other.block_, fast);
  }

  /// Number of locally owned scalars — the range all BLAS-1 operations and
  /// reductions act on. Ghost storage is excluded on purpose so that
  /// size-based loops never touch stale ghost data.
  std::size_t size() const { return part_ ? part_->n_owned() * block_ : 0; }

  std::size_t ghost_size() const
  {
    return part_ ? part_->n_ghosts() * block_ : 0;
  }

  std::size_t global_size() const
  {
    return part_ ? part_->n_global() * block_ : 0;
  }

  /// Global index of owned scalar 0.
  std::size_t first_local_index() const
  {
    return part_ ? part_->owned_begin() * block_ : 0;
  }

  unsigned int block_size() const { return block_; }
  const Partitioner &partitioner() const { return *part_; }
  Communicator &communicator() const { return *comm_; }
  int rank() const { return part_ ? part_->rank() : 0; }

  GhostState ghost_state() const { return state_; }

  /// Marks the ghost section stale without touching any data. Solver hooks
  /// that mutate owned entries through raw indexing (the fused cell-loop
  /// post hooks) call this so the ghost-state guard keeps catching stale
  /// reads; the next vmult re-exchanges regardless.
  void invalidate_ghosts() const { state_ = GhostState::owned_only; }

  /// Selects the scalar format of the ghost/compress wire payload. Takes
  /// effect at the next exchange; no data conversion happens here.
  void set_wire_precision(const WirePrecision wp) { wire_ = wp; }
  WirePrecision wire_precision() const { return wire_; }

  /// Bytes per exchanged scalar on the wire (including the amortized
  /// checksum trailer for the single-precision format rounds to the scalar
  /// size; the trailer is 8 bytes per message).
  std::size_t wire_scalar_size() const
  {
    return wire_ == WirePrecision::single ? sizeof(float) : sizeof(Number);
  }

  /// Local storage: [0, size()) owned scalars, then ghost scalars.
  Number &operator()(const std::size_t i) { return data_[i]; }
  Number operator()(const std::size_t i) const { return data_[i]; }
  Number &operator[](const std::size_t i) { return data_[i]; }
  Number operator[](const std::size_t i) const { return data_[i]; }
  Number *data() { return data_.data(); }
  const Number *data() const { return data_.data(); }

  /// Offset into data() of the block of the given global element (owned or
  /// ghost). Reading a ghost block requires an up-to-date ghost section —
  /// asserted in debug builds (the operator contract's ghost-state check).
  std::size_t local_dof_offset(const std::size_t element,
                               const unsigned int n_dofs) const
  {
    DGFLOW_DEBUG_ASSERT(n_dofs == block_, "element block size mismatch");
    (void)n_dofs;
    const std::size_t l = part_->local_index(element);
    DGFLOW_DEBUG_ASSERT(l != Partitioner::invalid_local,
                        "element is neither owned nor ghost on this rank");
    DGFLOW_DEBUG_ASSERT(l < part_->n_owned() ||
                          state_ == GhostState::ghosted,
                        "reading ghost values without update_ghost_values()");
    return l * block_;
  }

  bool is_owned_element(const std::size_t element) const
  {
    return part_->is_owned(element);
  }

  void operator=(const Number s)
  {
    data_.fill(s);
    state_ = GhostState::owned_only;
  }

  /// this += a * x
  void add(const Number a, const DistributedVector &x)
  {
    DGFLOW_DEBUG_ASSERT(x.size() == size(), "size mismatch");
    Number *DGFLOW_RESTRICT d = data_.data();
    const Number *DGFLOW_RESTRICT xd = x.data_.data();
    concurrency::ThreadPool::instance().parallel_for(
      size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] += a * xd[i];
      });
    state_ = GhostState::owned_only;
  }

  /// this = s * this + a * x
  void sadd(const Number s, const Number a, const DistributedVector &x)
  {
    DGFLOW_DEBUG_ASSERT(x.size() == size(), "size mismatch");
    Number *DGFLOW_RESTRICT d = data_.data();
    const Number *DGFLOW_RESTRICT xd = x.data_.data();
    concurrency::ThreadPool::instance().parallel_for(
      size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] = s * d[i] + a * xd[i];
      });
    state_ = GhostState::owned_only;
  }

  /// this = a * x
  void equ(const Number a, const DistributedVector &x)
  {
    DGFLOW_DEBUG_ASSERT(x.size() == size(), "size mismatch");
    Number *DGFLOW_RESTRICT d = data_.data();
    const Number *DGFLOW_RESTRICT xd = x.data_.data();
    concurrency::ThreadPool::instance().parallel_for(
      size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] = a * xd[i];
      });
    state_ = GhostState::owned_only;
  }

  /// this = a * x + b * y
  void equ(const Number a, const DistributedVector &x, const Number b,
           const DistributedVector &y)
  {
    DGFLOW_DEBUG_ASSERT(x.size() == size() && y.size() == size(),
                        "size mismatch");
    Number *DGFLOW_RESTRICT d = data_.data();
    const Number *DGFLOW_RESTRICT xd = x.data_.data();
    const Number *DGFLOW_RESTRICT yd = y.data_.data();
    concurrency::ThreadPool::instance().parallel_for(
      size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] = a * xd[i] + b * yd[i];
      });
    state_ = GhostState::owned_only;
  }

  void scale(const Number a)
  {
    Number *DGFLOW_RESTRICT d = data_.data();
    concurrency::ThreadPool::instance().parallel_for(
      size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] *= a;
      });
    state_ = GhostState::owned_only;
  }

  /// Pointwise multiply: this[i] *= x[i] (Jacobi preconditioning).
  void scale_pointwise(const DistributedVector &x)
  {
    DGFLOW_DEBUG_ASSERT(x.size() == size(), "size mismatch");
    Number *DGFLOW_RESTRICT d = data_.data();
    const Number *DGFLOW_RESTRICT xd = x.data_.data();
    concurrency::ThreadPool::instance().parallel_for(
      size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] *= xd[i];
      });
    state_ = GhostState::owned_only;
  }

  /// Global dot product: rank-local partial sums (the deterministically
  /// blocked double accumulation of the serial Vector — bitwise identical at
  /// any thread count) combined with one allreduce. The allreduce folds
  /// contributions in rank order, so the result is deterministic.
  Number dot(const DistributedVector &x) const
  {
    DGFLOW_DEBUG_ASSERT(x.size() == size(), "size mismatch");
    const double s =
      dgflow::internal::chunked_dot(data_.data(), x.data_.data(), size());
    return Number(comm_->allreduce(s, Communicator::Op::sum));
  }

  Number norm_sqr() const { return dot(*this); }

  Number l2_norm() const { return std::sqrt(dot(*this)); }

  Number linfty_norm() const
  {
    double m = 0;
    for (std::size_t i = 0; i < size(); ++i)
      m = std::max(m, double(std::abs(data_[i])));
    return Number(comm_->allreduce(m, Communicator::Op::max));
  }

  /// Convert-copy from a vector of another precision on the same partition
  /// (owned range only; the ghost section is left stale).
  template <typename Number2>
  void copy_and_convert(const DistributedVector<Number2> &x)
  {
    if (part_ == nullptr || !(*part_ == x.partitioner()) ||
        block_ != x.block_size())
      reinit(x.partitioner(), x.communicator(), x.block_size(), true);
    for (std::size_t i = 0; i < x.size(); ++i)
      data_[i] = Number(x[i]);
    state_ = GhostState::owned_only;
  }

  /// Copies this rank's owned slice out of a replicated global vector.
  void copy_owned_from(const Vector<Number> &global)
  {
    DGFLOW_ASSERT(global.size() == global_size(), "global size mismatch");
    const Number *src = global.data() + first_local_index();
    for (std::size_t i = 0; i < size(); ++i)
      data_[i] = src[i];
    state_ = GhostState::owned_only;
  }

  void swap(DistributedVector &other)
  {
    std::swap(part_, other.part_);
    std::swap(comm_, other.comm_);
    std::swap(block_, other.block_);
    std::swap(state_, other.state_);
    std::swap(exchange_in_flight_, other.exchange_in_flight_);
    data_.swap(other.data_);
  }

  // --- ghost exchange -----------------------------------------------------

  /// Posts the owned->ghost exchange: one buffered non-blocking message per
  /// neighbor, packing that neighbor's send list. Owned values may not be
  /// modified until update_ghost_values_finish().
  void update_ghost_values_start() const
  {
    DGFLOW_DEBUG_ASSERT(!exchange_in_flight_, "exchange already in flight");
    for (const auto &[neighbor, list] : part_->send_lists())
    {
      if (wire_ == WirePrecision::single)
      {
        send_single(neighbor, tag_ghost, list,
                    [this](const std::size_t g) {
                      return (g - part_->owned_begin()) * block_;
                    });
        continue;
      }
      pack_buffer_.resize(list.size() * block_);
      Number *buf = pack_buffer_.data();
      for (const std::size_t g : list)
      {
        const Number *src = data_.data() + (g - part_->owned_begin()) * block_;
        for (unsigned int k = 0; k < block_; ++k)
          *buf++ = src[k];
      }
      comm_->send(neighbor, tag_ghost, pack_buffer_.data(),
                  pack_buffer_.size() * sizeof(Number));
    }
    exchange_in_flight_ = true;
  }

  /// Receives and unpacks the ghost section; afterwards the vector is in
  /// the ghosted state.
  void update_ghost_values_finish() const
  {
    DGFLOW_DEBUG_ASSERT(exchange_in_flight_,
                        "update_ghost_values_finish without start");
    for (const auto &[neighbor, list] : part_->recv_lists())
    {
      if (wire_ == WirePrecision::single)
      {
        recv_single(neighbor, tag_ghost, list,
                    [this](const std::size_t g) {
                      return part_->local_index(g) * block_;
                    },
                    /*accumulate=*/false);
        continue;
      }
      pack_buffer_.resize(list.size() * block_);
      comm_->recv(neighbor, tag_ghost, pack_buffer_.data(),
                  pack_buffer_.size() * sizeof(Number));
      const Number *buf = pack_buffer_.data();
      for (const std::size_t g : list)
      {
        Number *dst = data_.data() + part_->local_index(g) * block_;
        for (unsigned int k = 0; k < block_; ++k)
          dst[k] = *buf++;
      }
    }
    exchange_in_flight_ = false;
    state_ = GhostState::ghosted;
  }

  void update_ghost_values() const
  {
    update_ghost_values_start();
    update_ghost_values_finish();
  }

  /// Recovery: abandons an exchange that will never complete (a peer died
  /// between our start and its send). Clears the in-flight flag and zeroes
  /// the ghost section back to the owned-only state; the messages already
  /// queued to or from the dead epoch are drained by
  /// Communicator::cancel_pending()/advance_epoch().
  void abandon_exchange()
  {
    exchange_in_flight_ = false;
    zero_ghosts();
  }

  /// Reverse exchange: adds each ghost value into its owner's element and
  /// zeroes the ghost section. Requires an initialized ghost section
  /// (ghosted state, asserted in debug builds); leaves the vector
  /// owned-only.
  void compress_add()
  {
    DGFLOW_DEBUG_ASSERT(state_ == GhostState::ghosted,
                        "compress_add on a vector without ghost values");
    for (const auto &[neighbor, list] : part_->recv_lists())
    {
      if (wire_ == WirePrecision::single)
      {
        send_single(neighbor, tag_compress, list,
                    [this](const std::size_t g) {
                      return part_->local_index(g) * block_;
                    });
        continue;
      }
      pack_buffer_.resize(list.size() * block_);
      Number *buf = pack_buffer_.data();
      for (const std::size_t g : list)
      {
        const Number *src = data_.data() + part_->local_index(g) * block_;
        for (unsigned int k = 0; k < block_; ++k)
          *buf++ = src[k];
      }
      comm_->send(neighbor, tag_compress, pack_buffer_.data(),
                  pack_buffer_.size() * sizeof(Number));
    }
    for (const auto &[neighbor, list] : part_->send_lists())
    {
      if (wire_ == WirePrecision::single)
      {
        recv_single(neighbor, tag_compress, list,
                    [this](const std::size_t g) {
                      return (g - part_->owned_begin()) * block_;
                    },
                    /*accumulate=*/true);
        continue;
      }
      pack_buffer_.resize(list.size() * block_);
      comm_->recv(neighbor, tag_compress, pack_buffer_.data(),
                  pack_buffer_.size() * sizeof(Number));
      const Number *buf = pack_buffer_.data();
      for (const std::size_t g : list)
      {
        Number *dst = data_.data() + (g - part_->owned_begin()) * block_;
        for (unsigned int k = 0; k < block_; ++k)
          dst[k] += *buf++;
      }
    }
    zero_ghosts();
  }

  void zero_ghosts()
  {
    Number *g = data_.data() + size();
    const std::size_t n = ghost_size();
    for (std::size_t i = 0; i < n; ++i)
      g[i] = Number(0);
    state_ = GhostState::owned_only;
  }

  std::size_t memory_consumption() const
  {
    return data_.memory_consumption() +
           pack_buffer_.capacity() * sizeof(Number);
  }

private:
  static constexpr int tag_ghost = 930;
  static constexpr int tag_compress = 931;

  /// FNV-1a over the payload bytes — the same checksum the Communicator
  /// uses to guard allreduce contributions, applied here per message.
  static std::uint64_t payload_checksum(const float *payload,
                                        const std::size_t n_scalars)
  {
    const unsigned char *bytes =
      reinterpret_cast<const unsigned char *>(payload);
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = 0; i < n_scalars * sizeof(float); ++i)
    {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
    return h;
  }

  /// The single-precision wire message: n float scalars followed by an
  /// 8-byte checksum (two float slots of the same buffer).
  template <typename OffsetFn>
  void send_single(const int neighbor, const int tag,
                   const std::vector<std::size_t> &list,
                   OffsetFn &&offset_of) const
  {
    const std::size_t n = list.size() * block_;
    wire_buffer_.resize(n + 2);
    float *buf = wire_buffer_.data();
    for (const std::size_t g : list)
    {
      const Number *src = data_.data() + offset_of(g);
      for (unsigned int k = 0; k < block_; ++k)
        *buf++ = float(src[k]);
    }
    const std::uint64_t h = payload_checksum(wire_buffer_.data(), n);
    std::memcpy(wire_buffer_.data() + n, &h, sizeof(h));
    comm_->send(neighbor, tag, wire_buffer_.data(),
                n * sizeof(float) + sizeof(h));
  }

  template <typename OffsetFn>
  void recv_single(const int neighbor, const int tag,
                   const std::vector<std::size_t> &list,
                   OffsetFn &&offset_of, const bool accumulate) const
  {
    const std::size_t n = list.size() * block_;
    wire_buffer_.resize(n + 2);
    comm_->recv(neighbor, tag, wire_buffer_.data(),
                n * sizeof(float) + sizeof(std::uint64_t));
    std::uint64_t expected;
    std::memcpy(&expected, wire_buffer_.data() + n, sizeof(expected));
    const std::uint64_t actual = payload_checksum(wire_buffer_.data(), n);
    if (actual != expected)
      throw GhostCorruptionError(
        "single-precision ghost payload from rank " +
        std::to_string(neighbor) + " (tag " + std::to_string(tag) +
        ") failed its checksum: the message was corrupted in flight");
    const float *buf = wire_buffer_.data();
    for (const std::size_t g : list)
    {
      Number *dst = data_.data() + offset_of(g);
      for (unsigned int k = 0; k < block_; ++k)
      {
        if (accumulate)
          dst[k] += Number(*buf++);
        else
          dst[k] = Number(*buf++);
      }
    }
  }

  const Partitioner *part_ = nullptr;
  Communicator *comm_ = nullptr;
  unsigned int block_ = 1;
  WirePrecision wire_ = WirePrecision::storage;
  /// mutable: the const ghost exchange writes the ghost section in place
  mutable AlignedVector<Number> data_;
  mutable std::vector<Number> pack_buffer_;
  mutable std::vector<float> wire_buffer_;
  /// Ghost exchange touches no owned data, so start/finish are const (the
  /// operator vmult refreshes src ghosts); the ghost section and the state
  /// flag are mutable bookkeeping.
  mutable GhostState state_ = GhostState::owned_only;
  mutable bool exchange_in_flight_ = false;
};

} // namespace vmpi
} // namespace dgflow
