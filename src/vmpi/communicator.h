#pragma once

// In-process message-passing layer ("virtual MPI"): logical ranks run as
// threads and communicate through mailboxes with MPI-like semantics
// (buffered non-blocking sends, blocking tagged receives, barrier,
// allreduce, broadcast). This substitutes the paper's MPI substrate on the
// single-node reproduction environment: the distributed algorithms
// (partitioned vectors, ghost exchange, reductions) execute the same logic
// they would across real ranks, and the message counts feed the scaling
// performance model. See DESIGN.md.
//
// Resilience: every blocking wait (recv, barrier, allreduce) carries a
// deadline, so a lost or stalled message surfaces as a structured
// TimeoutError naming the rank, expected source/tag and elapsed time
// instead of hanging the process. A FaultHandler can be installed on a
// Communicator to inject per-message faults (drop, delay, reorder, payload
// corruption) and per-collective rank stalls; the deterministic seeded
// implementation lives in resilience/fault_injection.h.

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/exceptions.h"

namespace dgflow::vmpi
{
class Communicator;

/// Runs @p f concurrently on @p n_ranks logical ranks and joins them.
/// Exceptions thrown by any rank are rethrown on the caller.
void run(const int n_ranks, const std::function<void(Communicator &)> &f);

/// A blocking vmpi operation exceeded its deadline. Carries the structured
/// context needed to diagnose the lost message: the waiting rank, the
/// expected source and tag (-1 for collectives), and the elapsed wait.
class TimeoutError : public std::runtime_error
{
public:
  TimeoutError(const std::string &what, const int rank_, const int source_,
               const int tag_, const double elapsed_seconds_)
    : std::runtime_error(what), rank(rank_), source(source_), tag(tag_),
      elapsed_seconds(elapsed_seconds_)
  {}

  int rank;               ///< the rank whose wait timed out
  int source;             ///< expected source rank (-1 for collectives)
  int tag;                ///< expected tag (-1 for collectives)
  double elapsed_seconds; ///< how long the rank waited
};

/// Fault decided for one message (all default to "deliver normally").
struct FaultAction
{
  bool drop = false;          ///< message is never delivered
  bool reorder = false;       ///< jump ahead of other (source,tag) streams
  double delay_seconds = 0.;  ///< in-flight latency before matchable
  std::size_t corrupt_bytes = 0; ///< bit-flip this many leading payload bytes
};

/// Fault-injection hook installed on a Communicator. Decisions must be
/// functions of the passed identifiers only (not of wall time or thread
/// interleaving) to keep injected runs reproducible; @p seq is the
/// per-(source,dest,tag) message sequence number, which is deterministic
/// because each Communicator is driven by a single thread.
class FaultHandler
{
public:
  virtual ~FaultHandler() = default;

  virtual FaultAction on_message(int source, int dest, int tag,
                                 unsigned long long seq,
                                 std::size_t bytes) = 0;

  /// Seconds to stall @p rank before it enters its @p seq -th collective.
  virtual double stall_before_collective(int /*rank*/,
                                         unsigned long long /*seq*/)
  {
    return 0.;
  }
};

namespace internal
{
struct Message
{
  int source;
  int tag;
  std::vector<char> data;
  /// earliest time the message may be matched by a recv (fault injection)
  std::chrono::steady_clock::time_point available_at;
};

struct Mailbox
{
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> messages;
};

struct SharedState
{
  explicit SharedState(const int n)
    : mailboxes(n), n_ranks(n), coll_contributions(n)
  {}
  std::vector<Mailbox> mailboxes;
  int n_ranks;
  /// default wait deadline for all ranks (seconds; <= 0 waits forever)
  double default_timeout = 120.;

  // barrier / collective state (two-phase: ranks may not enter the next
  // collective before everyone has left the previous one)
  std::mutex coll_mutex;
  std::condition_variable coll_cv;
  int coll_count = 0;
  int coll_exiting = 0;
  long coll_generation = 0;
  /// per-rank contributions; the last arriving rank reduces them in rank
  /// order so the floating-point result is independent of thread timing
  std::vector<std::vector<double>> coll_contributions;
  std::vector<double> reduce_slot;
};
} // namespace internal

class Communicator
{
public:
  /// Per-rank communication volume. Each Communicator is used by exactly one
  /// thread, so plain counters suffice; vmpi::run sums them over ranks at
  /// join and feeds the profiler's vmpi metrics.
  struct Traffic
  {
    unsigned long long messages = 0;
    unsigned long long bytes = 0; ///< payload bytes sent
    unsigned long long barriers = 0;
    unsigned long long allreduces = 0;
  };

  Communicator(internal::SharedState &state, const int rank)
    : state_(state), rank_(rank), timeout_seconds_(state.default_timeout)
  {}

  int rank() const { return rank_; }
  int size() const { return state_.n_ranks; }

  const Traffic &traffic() const { return traffic_; }

  /// Deadline for this rank's blocking waits (seconds; <= 0 waits forever).
  /// The process-wide default comes from DGFLOW_VMPI_TIMEOUT (see vmpi::run).
  void set_timeout(const double seconds) { timeout_seconds_ = seconds; }
  double timeout() const { return timeout_seconds_; }

  /// Installs @p handler on this rank (nullptr uninstalls). The handler
  /// filters messages this rank *sends* and stalls this rank's collectives;
  /// it is typically shared by all ranks of a run and must be thread-safe.
  void install_fault_handler(FaultHandler *handler) { faults_ = handler; }

  /// Buffered non-blocking send (returns immediately).
  void send(const int dest, const int tag, const void *data,
            const std::size_t bytes);

  /// Blocking receive matching (source, tag); returns the payload size.
  /// Throws TimeoutError when no matching message arrives in time.
  std::size_t recv(const int source, const int tag, void *data,
                   const std::size_t max_bytes);

  template <typename T>
  void send_vector(const int dest, const int tag, const std::vector<T> &v)
  {
    send(dest, tag, v.data(), v.size() * sizeof(T));
  }

  template <typename T>
  std::vector<T> recv_vector(const int source, const int tag,
                             const std::size_t max_elements)
  {
    std::vector<T> v(max_elements);
    const std::size_t bytes =
      recv(source, tag, v.data(), max_elements * sizeof(T));
    DGFLOW_ASSERT(bytes % sizeof(T) == 0,
                  "recv_vector payload of " << bytes
                    << " bytes is not a multiple of the element size "
                    << sizeof(T) << " (source " << source << ", tag " << tag
                    << "): refusing to truncate");
    v.resize(bytes / sizeof(T));
    return v;
  }

  void barrier();

  enum class Op
  {
    sum,
    max,
    min
  };

  /// Allreduce of a double vector (in place).
  void allreduce(std::vector<double> &values, const Op op);

  double allreduce(const double value, const Op op)
  {
    std::vector<double> v{value};
    allreduce(v, op);
    return v[0];
  }

private:
  /// Collective rendezvous shared by barrier (empty vector) and allreduce,
  /// so barriers are not double-counted as allreduces.
  void allreduce_impl(std::vector<double> &values, const Op op,
                      const char *op_name);

  internal::SharedState &state_;
  int rank_;
  Traffic traffic_;
  double timeout_seconds_;
  FaultHandler *faults_ = nullptr;
  /// deterministic per-(dest,tag) send sequence numbers for fault decisions
  std::map<std::pair<int, int>, unsigned long long> send_seq_;
  unsigned long long collective_seq_ = 0;
};

} // namespace dgflow::vmpi
