#pragma once

// In-process message-passing layer ("virtual MPI"): logical ranks run as
// threads and communicate through mailboxes with MPI-like semantics
// (buffered non-blocking sends, blocking tagged receives, barrier,
// allreduce, broadcast). This substitutes the paper's MPI substrate on the
// single-node reproduction environment: the distributed algorithms
// (partitioned vectors, ghost exchange, reductions) execute the same logic
// they would across real ranks, and the message counts feed the scaling
// performance model. See DESIGN.md.

#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace dgflow::vmpi
{
class Communicator;

/// Runs @p f concurrently on @p n_ranks logical ranks and joins them.
/// Exceptions thrown by any rank are rethrown on the caller.
void run(const int n_ranks, const std::function<void(Communicator &)> &f);

namespace internal
{
struct Message
{
  int source;
  int tag;
  std::vector<char> data;
};

struct Mailbox
{
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> messages;
};

struct SharedState
{
  explicit SharedState(const int n) : mailboxes(n), n_ranks(n) {}
  std::vector<Mailbox> mailboxes;
  int n_ranks;

  // barrier / collective state (two-phase: ranks may not enter the next
  // collective before everyone has left the previous one)
  std::mutex coll_mutex;
  std::condition_variable coll_cv;
  int coll_count = 0;
  int coll_exiting = 0;
  long coll_generation = 0;
  std::vector<double> reduce_slot;
};
} // namespace internal

class Communicator
{
public:
  /// Per-rank communication volume. Each Communicator is used by exactly one
  /// thread, so plain counters suffice; vmpi::run sums them over ranks at
  /// join and feeds the profiler's vmpi metrics.
  struct Traffic
  {
    unsigned long long messages = 0;
    unsigned long long bytes = 0; ///< payload bytes sent
    unsigned long long barriers = 0;
    unsigned long long allreduces = 0;
  };

  Communicator(internal::SharedState &state, const int rank)
    : state_(state), rank_(rank)
  {}

  int rank() const { return rank_; }
  int size() const { return state_.n_ranks; }

  const Traffic &traffic() const { return traffic_; }

  /// Buffered non-blocking send (returns immediately).
  void send(const int dest, const int tag, const void *data,
            const std::size_t bytes);

  /// Blocking receive matching (source, tag); returns the payload size.
  std::size_t recv(const int source, const int tag, void *data,
                   const std::size_t max_bytes);

  template <typename T>
  void send_vector(const int dest, const int tag, const std::vector<T> &v)
  {
    send(dest, tag, v.data(), v.size() * sizeof(T));
  }

  template <typename T>
  std::vector<T> recv_vector(const int source, const int tag,
                             const std::size_t max_elements)
  {
    std::vector<T> v(max_elements);
    const std::size_t bytes =
      recv(source, tag, v.data(), max_elements * sizeof(T));
    v.resize(bytes / sizeof(T));
    return v;
  }

  void barrier();

  enum class Op
  {
    sum,
    max,
    min
  };

  /// Allreduce of a double vector (in place).
  void allreduce(std::vector<double> &values, const Op op);

  double allreduce(const double value, const Op op)
  {
    std::vector<double> v{value};
    allreduce(v, op);
    return v[0];
  }

private:
  /// Collective rendezvous shared by barrier (empty vector) and allreduce,
  /// so barriers are not double-counted as allreduces.
  void allreduce_impl(std::vector<double> &values, const Op op);

  internal::SharedState &state_;
  int rank_;
  Traffic traffic_;
};

} // namespace dgflow::vmpi
