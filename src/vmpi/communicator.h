#pragma once

// In-process message-passing layer ("virtual MPI"): logical ranks run as
// threads and communicate through mailboxes with MPI-like semantics
// (buffered non-blocking sends, blocking tagged receives, barrier,
// allreduce, broadcast). This substitutes the paper's MPI substrate on the
// single-node reproduction environment: the distributed algorithms
// (partitioned vectors, ghost exchange, reductions) execute the same logic
// they would across real ranks, and the message counts feed the scaling
// performance model. See DESIGN.md.
//
// Resilience: every blocking wait (recv, barrier, allreduce, agree) carries
// a deadline, so a lost or stalled message surfaces as a structured
// TimeoutError naming the rank, expected source/tag and elapsed time
// instead of hanging the process. A FaultHandler can be installed on a
// Communicator to inject per-message faults (drop, delay, reorder, payload
// corruption), per-collective rank stalls and rank death; the deterministic
// seeded implementation lives in resilience/fault_injection.h.
//
// Rank-failure tolerance (resilience/distributed_recovery.h builds on this):
//  * agree(local_ok) is a fault-tolerant agreement collective: a rank that
//    does not arrive before the deadline is declared failed in the round's
//    verdict, and every rank that reads the round — including stragglers
//    arriving after closure — reads the *same* closed verdict, so survivors
//    deterministically agree on the failed set instead of deadlocking.
//  * Messages carry the sender's epoch; recv only matches the current
//    epoch, and advance_epoch()/cancel_pending() drain stale traffic so
//    abandoned in-flight exchanges cannot corrupt the retry of a solve.
//  * Per-rank heartbeat counters are piggybacked on every send/recv/
//    collective; vmpi::HealthMonitor turns them into straggler suspicion.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/exceptions.h"

namespace dgflow::vmpi
{
class Communicator;

/// Runs @p f concurrently on @p n_ranks logical ranks and joins them.
/// Exceptions thrown by any rank are rethrown on the caller.
void run(const int n_ranks, const std::function<void(Communicator &)> &f);

/// A blocking vmpi operation exceeded its deadline. Carries the structured
/// context needed to diagnose the lost message: the waiting rank, the
/// expected source and tag (-1 for collectives), and the elapsed wait.
class TimeoutError : public std::runtime_error
{
public:
  TimeoutError(const std::string &what, const int rank_, const int source_,
               const int tag_, const double elapsed_seconds_)
    : std::runtime_error(what), rank(rank_), source(source_), tag(tag_),
      elapsed_seconds(elapsed_seconds_)
  {}

  int rank;               ///< the rank whose wait timed out
  int source;             ///< expected source rank (-1 for collectives)
  int tag;                ///< expected tag (-1 for collectives)
  double elapsed_seconds; ///< how long the rank waited
};

/// One or more ranks have been declared dead — either by fault injection on
/// the victim itself, or by an agree() verdict on the survivors. The failed
/// set and the epoch in which the failure was agreed let the recovery
/// driver (resilience/distributed_recovery.h) pick the right rung.
class RankFailure : public std::runtime_error
{
public:
  RankFailure(const std::string &what, const int rank_,
              std::vector<int> failed_ranks_, const long epoch_)
    : std::runtime_error(what), rank(rank_),
      failed_ranks(std::move(failed_ranks_)), epoch(epoch_)
  {}

  int rank;                      ///< the rank reporting the failure
  std::vector<int> failed_ranks; ///< agreed-dead ranks (may include rank)
  long epoch;                    ///< communication epoch of the verdict
};

/// An allreduce contribution failed its integrity checksum: the payload was
/// corrupted between the contributing rank and the reduction. Surfacing
/// this as a structured error (instead of silently folding garbage into the
/// sum) is what keeps a bit-flipped dot product from steering CG to a
/// plausible-looking wrong answer.
class CollectiveCorruptionError : public std::runtime_error
{
public:
  CollectiveCorruptionError(const std::string &what, const int rank_,
                            const int corrupt_source_)
    : std::runtime_error(what), rank(rank_), corrupt_source(corrupt_source_)
  {}

  int rank;           ///< the rank observing the mismatch
  int corrupt_source; ///< the rank whose contribution failed the checksum
};

/// Outcome of one agree() round: per-rank verdict plus summary flags. The
/// verdict byte of rank q is 1 iff q arrived before the round closed AND
/// voted ok. Every participant of the round reads the same verdict.
struct AgreeResult
{
  std::vector<char> ok;      ///< per-rank verdict (arrived in time, voted ok)
  std::vector<char> arrived; ///< per-rank arrival before the round closed
  bool all_ok = false;       ///< every rank arrived and voted ok
  bool self_ok = true;       ///< this rank's own verdict entry

  /// Ranks voted down (absent or not-ok), ascending.
  std::vector<int> failed() const
  {
    std::vector<int> f;
    for (std::size_t r = 0; r < ok.size(); ++r)
      if (!ok[r])
        f.push_back(static_cast<int>(r));
    return f;
  }

  /// Ranks that never arrived (presumed dead), ascending — distinct from
  /// ranks that arrived but voted not-ok (alive with unsound local state).
  std::vector<int> absent() const
  {
    std::vector<int> a;
    for (std::size_t r = 0; r < arrived.size(); ++r)
      if (!arrived[r])
        a.push_back(static_cast<int>(r));
    return a;
  }
};

/// Fault decided for one message (all default to "deliver normally").
struct FaultAction
{
  bool drop = false;          ///< message is never delivered
  bool reorder = false;       ///< jump ahead of other (source,tag) streams
  double delay_seconds = 0.;  ///< in-flight latency before matchable
  std::size_t corrupt_bytes = 0; ///< bit-flip this many leading payload bytes
};

/// Fault-injection hook installed on a Communicator. Decisions must be
/// functions of the passed identifiers only (not of wall time or thread
/// interleaving) to keep injected runs reproducible; @p seq is the
/// per-(source,dest,tag) message sequence number, which is deterministic
/// because each Communicator is driven by a single thread.
class FaultHandler
{
public:
  virtual ~FaultHandler() = default;

  virtual FaultAction on_message(int source, int dest, int tag,
                                 unsigned long long seq,
                                 std::size_t bytes) = 0;

  /// Seconds to stall @p rank before it enters its @p seq -th collective.
  virtual double stall_before_collective(int /*rank*/,
                                         unsigned long long /*seq*/)
  {
    return 0.;
  }

  /// Rank death: return true to kill @p rank before its @p seq -th
  /// collective. The victim throws RankFailure and stops servicing its
  /// mailbox; peers observe its absence through timeouts and agree().
  virtual bool kill_before_collective(int /*rank*/,
                                      unsigned long long /*seq*/)
  {
    return false;
  }

  /// Collective-payload corruption: number of leading bytes to bit-flip in
  /// @p rank 's contribution to its @p seq -th collective (0 = none). The
  /// flip happens after the contribution is checksummed, modeling
  /// corruption in flight; the reducing rank detects the mismatch.
  virtual std::size_t corrupt_collective(int /*rank*/,
                                         unsigned long long /*seq*/)
  {
    return 0;
  }
};

namespace internal
{
struct Message
{
  int source;
  int tag;
  long epoch; ///< sender's epoch; recv only matches its current epoch
  std::vector<char> data;
  /// earliest time the message may be matched by a recv (fault injection)
  std::chrono::steady_clock::time_point available_at;
};

struct Mailbox
{
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> messages;
};

/// One agree() round. Closed exactly once — either by the last arriving
/// rank or by the first rank whose deadline expires — and immutable
/// afterwards, so every reader adopts the identical verdict.
struct AgreeRound
{
  int arrived_count = 0;
  bool closed = false;
  std::vector<char> arrived; ///< per-rank arrival flags
  std::vector<char> ok;      ///< per-rank votes
  std::vector<char> verdict; ///< valid once closed: arrived && ok
};

struct SharedState
{
  explicit SharedState(const int n)
    : mailboxes(n), n_ranks(n), coll_contributions(n), coll_checksums(n, 0),
      heartbeats(new std::atomic<unsigned long long>[n])
  {
    for (int r = 0; r < n; ++r)
      heartbeats[r].store(0, std::memory_order_relaxed);
  }
  std::vector<Mailbox> mailboxes;
  int n_ranks;
  /// default wait deadline for all ranks (seconds; <= 0 waits forever)
  double default_timeout = 120.;

  // barrier / collective state (two-phase: ranks may not enter the next
  // collective before everyone has left the previous one)
  std::mutex coll_mutex;
  std::condition_variable coll_cv;
  int coll_count = 0;
  int coll_exiting = 0;
  long coll_generation = 0;
  /// per-rank contributions; the last arriving rank reduces them in rank
  /// order so the floating-point result is independent of thread timing
  std::vector<std::vector<double>> coll_contributions;
  /// FNV-1a checksum of each honest contribution, verified at reduce time
  std::vector<std::uint64_t> coll_checksums;
  /// first rank whose contribution failed its checksum this round (-1: none)
  int coll_corrupt_rank = -1;
  std::vector<double> reduce_slot;

  // agreement state: rounds keyed by per-rank round sequence number
  std::mutex agree_mutex;
  std::condition_variable agree_cv;
  std::map<long, AgreeRound> agree_rounds;

  /// per-rank progress counters bumped on every send/recv/collective —
  /// the heartbeat HealthMonitor reads (piggybacked on existing traffic,
  /// no extra messages)
  std::unique_ptr<std::atomic<unsigned long long>[]> heartbeats;
};
} // namespace internal

class Communicator
{
public:
  /// Per-rank communication volume. Each Communicator is used by exactly one
  /// thread, so plain counters suffice; vmpi::run sums them over ranks at
  /// join and feeds the profiler's vmpi metrics.
  struct Traffic
  {
    unsigned long long messages = 0;
    unsigned long long bytes = 0; ///< payload bytes sent
    unsigned long long barriers = 0;
    unsigned long long allreduces = 0;
    unsigned long long agreements = 0; ///< agree() rounds entered
    unsigned long long drained = 0;    ///< stale messages purged (epochs)
  };

  Communicator(internal::SharedState &state, const int rank)
    : state_(state), rank_(rank), timeout_seconds_(state.default_timeout)
  {}

  int rank() const { return rank_; }
  int size() const { return state_.n_ranks; }

  const Traffic &traffic() const { return traffic_; }

  /// Deadline for this rank's blocking waits (seconds; <= 0 waits forever).
  /// The process-wide default comes from DGFLOW_VMPI_TIMEOUT (see vmpi::run).
  void set_timeout(const double seconds) { timeout_seconds_ = seconds; }
  double timeout() const { return timeout_seconds_; }

  /// Installs @p handler on this rank (nullptr uninstalls). The handler
  /// filters messages this rank *sends* and stalls this rank's collectives;
  /// it is typically shared by all ranks of a run and must be thread-safe.
  void install_fault_handler(FaultHandler *handler) { faults_ = handler; }
  FaultHandler *fault_handler() const { return faults_; }

  /// Buffered non-blocking send (returns immediately).
  void send(const int dest, const int tag, const void *data,
            const std::size_t bytes);

  /// Blocking receive matching (source, tag) in the current epoch; returns
  /// the payload size. Stale-epoch messages encountered while scanning are
  /// drained (counted in traffic().drained). Throws TimeoutError when no
  /// matching message arrives in time.
  std::size_t recv(const int source, const int tag, void *data,
                   const std::size_t max_bytes);

  template <typename T>
  void send_vector(const int dest, const int tag, const std::vector<T> &v)
  {
    send(dest, tag, v.data(), v.size() * sizeof(T));
  }

  template <typename T>
  std::vector<T> recv_vector(const int source, const int tag,
                             const std::size_t max_elements)
  {
    std::vector<T> v(max_elements);
    const std::size_t bytes =
      recv(source, tag, v.data(), max_elements * sizeof(T));
    DGFLOW_ASSERT(bytes % sizeof(T) == 0,
                  "recv_vector payload of " << bytes
                    << " bytes is not a multiple of the element size "
                    << sizeof(T) << " (source " << source << ", tag " << tag
                    << "): refusing to truncate");
    v.resize(bytes / sizeof(T));
    return v;
  }

  void barrier();

  enum class Op
  {
    sum,
    max,
    min
  };

  /// Allreduce of a double vector (in place).
  void allreduce(std::vector<double> &values, const Op op);

  double allreduce(const double value, const Op op)
  {
    std::vector<double> v{value};
    allreduce(v, op);
    return v[0];
  }

  // --- failure detection & recovery ---------------------------------------

  /// Fault-tolerant agreement collective. Every healthy rank calls
  /// agree(local_ok) at the same logical point; the round closes when all
  /// ranks arrive or when the first deadline expires, whichever is earlier,
  /// and its verdict — per rank: arrived before closure AND voted ok — is
  /// immutable afterwards, so every rank (including a straggler arriving
  /// after closure, which finds itself voted dead) adopts the identical
  /// failed set within one bounded exchange. Never throws on peer failure;
  /// the caller inspects the result. @p timeout_seconds <= 0 uses this
  /// rank's default timeout.
  AgreeResult agree(const bool local_ok, const double timeout_seconds = 0.);

  /// Current communication epoch. Messages are matched within one epoch
  /// only; recovery advances the epoch so retries cannot consume stale
  /// traffic from an abandoned exchange.
  long epoch() const { return epoch_; }

  /// Enters @p new_epoch (must be >= the current epoch and agreed across
  /// ranks — the recovery attempt number) and drains now-stale messages
  /// from this rank's mailbox. Returns the number of messages drained.
  std::size_t advance_epoch(const long new_epoch);

  /// Drains every message currently queued in this rank's mailbox,
  /// abandoning all in-flight exchanges addressed to it. Returns the
  /// number of messages drained (also counted in traffic().drained).
  std::size_t cancel_pending();

  /// This rank's progress heartbeat: bumped on every send, delivered recv
  /// and collective. Piggybacked on existing traffic — reading a peer's
  /// counter costs no message (vmpi::HealthMonitor builds on this).
  unsigned long long heartbeat(const int rank) const
  {
    return state_.heartbeats[rank].load(std::memory_order_relaxed);
  }

private:
  /// Collective rendezvous shared by barrier (empty vector) and allreduce,
  /// so barriers are not double-counted as allreduces.
  void allreduce_impl(std::vector<double> &values, const Op op,
                      const char *op_name);

  /// Removes messages with an epoch older than the current one from the
  /// locked mailbox deque (caller holds the mailbox mutex).
  std::size_t drain_stale_locked(std::deque<internal::Message> &messages);

  void beat()
  {
    state_.heartbeats[rank_].fetch_add(1, std::memory_order_relaxed);
  }

  internal::SharedState &state_;
  int rank_;
  Traffic traffic_;
  double timeout_seconds_;
  long epoch_ = 0;
  FaultHandler *faults_ = nullptr;
  /// deterministic per-(dest,tag) send sequence numbers for fault decisions
  std::map<std::pair<int, int>, unsigned long long> send_seq_;
  unsigned long long collective_seq_ = 0;
  long agree_seq_ = 0;
};

} // namespace dgflow::vmpi
