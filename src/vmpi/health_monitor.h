#pragma once

// Heartbeat-based straggler detection for vmpi ranks. Every Communicator
// bumps its per-rank progress counter on each send, delivered recv and
// collective (Communicator::heartbeat) — piggybacked on existing traffic,
// so monitoring a peer costs no extra messages. HealthMonitor samples those
// counters and turns "rank q's counter has not advanced for longer than the
// suspicion window" into a local suspicion list.
//
// Suspicion is deliberately only a *hint*: heartbeats race with real
// progress, so two ranks may observe different suspect sets at the same
// wall-clock instant. The authoritative failure verdict always comes from
// Communicator::agree(), whose closed rounds are read identically by every
// rank; a typical caller feeds `monitor.all_healthy()` (or a solver-level
// health predicate) into agree(local_ok) at an iteration boundary. See
// resilience/distributed_recovery.h.

#include <chrono>
#include <vector>

#include "vmpi/communicator.h"

namespace dgflow::vmpi
{
class HealthMonitor
{
public:
  /// Monitors the peers of @p comm. A rank is suspected once its heartbeat
  /// counter has not advanced for @p suspicion_seconds of wall time
  /// (<= 0 uses the communicator's own wait deadline, the natural scale on
  /// which a silent peer becomes indistinguishable from a dead one).
  explicit HealthMonitor(const Communicator &comm,
                         const double suspicion_seconds = 0.)
    : comm_(comm),
      suspicion_seconds_(suspicion_seconds > 0. ? suspicion_seconds
                                                : comm.timeout()),
      last_count_(comm.size(), 0),
      last_progress_(comm.size(), clock::now())
  {
    for (int r = 0; r < comm_.size(); ++r)
      last_count_[r] = comm_.heartbeat(r);
  }

  /// Re-samples all heartbeat counters, updating per-rank progress stamps.
  void observe()
  {
    const auto now = clock::now();
    for (int r = 0; r < comm_.size(); ++r)
    {
      const unsigned long long count = comm_.heartbeat(r);
      if (count != last_count_[r])
      {
        last_count_[r] = count;
        last_progress_[r] = now;
      }
    }
  }

  /// True when @p rank 's counter advanced within the suspicion window
  /// (observe() first for a fresh sample). This rank is always healthy to
  /// itself — it is, after all, running this code.
  bool healthy(const int rank) const
  {
    if (rank == comm_.rank() || suspicion_seconds_ <= 0.)
      return true;
    return std::chrono::duration<double>(clock::now() - last_progress_[rank])
             .count() < suspicion_seconds_;
  }

  /// Samples the counters and returns the suspected ranks, ascending.
  std::vector<int> suspects()
  {
    observe();
    std::vector<int> s;
    for (int r = 0; r < comm_.size(); ++r)
      if (!healthy(r))
        s.push_back(r);
    return s;
  }

  /// Samples the counters and reports whether every peer made progress
  /// within the suspicion window — the natural local_ok input to agree().
  bool all_healthy()
  {
    return suspects().empty();
  }

private:
  using clock = std::chrono::steady_clock;

  const Communicator &comm_;
  double suspicion_seconds_;
  std::vector<unsigned long long> last_count_;
  std::vector<clock::time_point> last_progress_;
};

} // namespace dgflow::vmpi
