#pragma once

// Distributed sparse linear algebra over the virtual-MPI layer: a
// row-partitioned CSR matrix with precomputed ghost-exchange lists and a
// distributed conjugate gradient solver (dot products via allreduce). This
// exercises the same partition / nearest-neighbor-exchange / global-
// reduction pattern the paper's MPI solver uses, with logical ranks in one
// process (see DESIGN.md substitution table).

#include <map>

#include "amg/sparse_matrix.h"
#include "vmpi/communicator.h"

namespace dgflow::vmpi
{
/// One rank's share of a row-partitioned CSR matrix. Constructed from the
/// replicated global matrix (setup convenience; the *solve* communicates
/// only boundary data).
class DistributedCSR
{
public:
  DistributedCSR(Communicator &comm, const SparseMatrix &global)
    : comm_(comm)
  {
    const std::size_t n = global.n_rows();
    const int size = comm.size(), rank = comm.rank();
    row_begin_ = n * rank / size;
    row_end_ = n * (rank + 1) / size;
    n_global_ = n;

    auto owner = [&](const std::size_t row) {
      // inverse of the contiguous partition above
      int r = static_cast<int>(row * size / n);
      while (n * r / size > row)
        --r;
      while (n * (r + 1) / size <= row)
        ++r;
      return r;
    };

    // local rows, with columns remapped: owned columns -> [0, n_local),
    // off-rank columns -> ghost slots appended after the owned range
    std::map<std::size_t, std::size_t> ghost_slot;
    row_ptr_.push_back(0);
    for (std::size_t r = row_begin_; r < row_end_; ++r)
    {
      for (std::size_t k = global.row_ptr()[r]; k < global.row_ptr()[r + 1];
           ++k)
      {
        const std::size_t c = global.col_idx()[k];
        std::size_t local_c;
        if (c >= row_begin_ && c < row_end_)
          local_c = c - row_begin_;
        else
        {
          const auto [it, inserted] =
            ghost_slot.emplace(c, n_local() + ghost_slot.size());
          local_c = it->second;
        }
        col_idx_.push_back(local_c);
        values_.push_back(global.values()[k]);
      }
      row_ptr_.push_back(col_idx_.size());
    }

    // group the needed ghosts by owner
    for (const auto &[global_col, slot] : ghost_slot)
      recv_lists_[owner(global_col)].push_back(global_col);

    // tell every rank which of its entries we need (empty request = none)
    for (int other = 0; other < size; ++other)
    {
      if (other == rank)
        continue;
      const auto it = recv_lists_.find(other);
      static const std::vector<std::size_t> empty;
      comm.send_vector(other, tag_request,
                       it == recv_lists_.end() ? empty : it->second);
    }
    for (int other = 0; other < size; ++other)
    {
      if (other == rank)
        continue;
      auto wanted = comm.recv_vector<std::size_t>(other, tag_request, n);
      if (!wanted.empty())
        send_lists_[other] = std::move(wanted);
    }

    // ghost slots in deterministic order for unpacking
    ghost_order_.resize(ghost_slot.size());
    for (const auto &[global_col, slot] : ghost_slot)
      ghost_order_[slot - n_local()] = global_col;
  }

  std::size_t n_local() const { return row_end_ - row_begin_; }
  std::size_t row_begin() const { return row_begin_; }

  /// Distributed mat-vec on owned vectors: exchanges ghost values, then
  /// applies the local rows.
  void vmult(Vector<double> &dst, const Vector<double> &src) const
  {
    // post boundary data to every neighbor that asked for it
    for (const auto &[other, wanted] : send_lists_)
    {
      std::vector<double> payload(wanted.size());
      for (std::size_t i = 0; i < wanted.size(); ++i)
        payload[i] = src[wanted[i] - row_begin_];
      comm_.send_vector(other, tag_data, payload);
    }
    // receive ghosts
    std::vector<double> ghosts(ghost_order_.size());
    {
      std::map<std::size_t, double> by_global;
      for (const auto &[other, cols] : recv_lists_)
      {
        const auto payload =
          comm_.recv_vector<double>(other, tag_data, cols.size());
        for (std::size_t i = 0; i < cols.size(); ++i)
          by_global[cols[i]] = payload[i];
      }
      for (std::size_t g = 0; g < ghost_order_.size(); ++g)
        ghosts[g] = by_global.at(ghost_order_[g]);
    }

    dst.reinit(n_local(), true);
    const std::size_t nl = n_local();
    for (std::size_t r = 0; r < nl; ++r)
    {
      double sum = 0;
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      {
        const std::size_t c = col_idx_[k];
        sum += values_[k] * (c < nl ? src[c] : ghosts[c - nl]);
      }
      dst[r] = sum;
    }
  }

  double dot(const Vector<double> &a, const Vector<double> &b) const
  {
    double local = 0;
    for (std::size_t i = 0; i < n_local(); ++i)
      local += a[i] * b[i];
    return comm_.allreduce(local, Communicator::Op::sum);
  }

private:
  static constexpr int tag_request = 900;
  static constexpr int tag_data = 901;

  Communicator &comm_;
  std::size_t row_begin_ = 0, row_end_ = 0, n_global_ = 0;
  std::vector<std::size_t> row_ptr_, col_idx_;
  std::vector<double> values_;
  std::map<int, std::vector<std::size_t>> send_lists_, recv_lists_;
  std::vector<std::size_t> ghost_order_;
};

/// Distributed unpreconditioned CG on the owned rows; returns iterations.
inline unsigned int distributed_cg(const DistributedCSR &A, Vector<double> &x,
                                   const Vector<double> &b,
                                   const double rel_tol,
                                   const unsigned int max_iterations)
{
  const std::size_t n = A.n_local();
  Vector<double> r(n), p(n), Ap(n);
  A.vmult(Ap, x);
  for (std::size_t i = 0; i < n; ++i)
    r[i] = b[i] - Ap[i];
  p = r;
  double rr = A.dot(r, r);
  const double b_norm = std::sqrt(A.dot(b, b));
  const double tol = rel_tol * (b_norm > 0 ? b_norm : 1.);

  for (unsigned int it = 1; it <= max_iterations; ++it)
  {
    A.vmult(Ap, p);
    const double alpha = rr / A.dot(p, Ap);
    for (std::size_t i = 0; i < n; ++i)
    {
      x[i] += alpha * p[i];
      r[i] -= alpha * Ap[i];
    }
    const double rr_new = A.dot(r, r);
    if (std::sqrt(rr_new) <= tol)
      return it;
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < n; ++i)
      p[i] = r[i] + beta * p[i];
  }
  return max_iterations;
}

} // namespace dgflow::vmpi
