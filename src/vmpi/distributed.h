#pragma once

// Distributed sparse linear algebra over the virtual-MPI layer: a
// row-partitioned CSR matrix whose ghost bookkeeping lives in the shared
// Partitioner / DistributedVector machinery (vmpi/partitioner.h). The
// matrix only applies its owned rows; ghost columns resolve through the
// vector's ghost section, and solves use the generic solve_cg on
// DistributedVector (dot products via allreduce). This exercises the same
// partition / nearest-neighbor-exchange / global-reduction pattern the
// paper's MPI solver uses, with logical ranks in one process (see DESIGN.md
// substitution table).

#include <vector>

#include "amg/sparse_matrix.h"
#include "vmpi/distributed_vector.h"
#include "vmpi/partitioner.h"

namespace dgflow::vmpi
{
/// One rank's share of a row-partitioned CSR matrix. Constructed from the
/// replicated global matrix (setup convenience; the *solve* communicates
/// only boundary data through DistributedVector ghost exchange).
class DistributedCSR
{
public:
  DistributedCSR(Communicator &comm, const SparseMatrix &global)
    : comm_(comm)
  {
    const std::size_t n = global.n_rows();
    const int size = comm.size(), rank = comm.rank();
    const std::size_t row_begin = n * rank / size;
    const std::size_t row_end = n * std::size_t(rank + 1) / size;

    // the off-rank columns of the owned rows are exactly the ghosts
    std::vector<std::size_t> ghosts;
    for (std::size_t r = row_begin; r < row_end; ++r)
      for (std::size_t k = global.row_ptr()[r]; k < global.row_ptr()[r + 1];
           ++k)
      {
        const std::size_t c = global.col_idx()[k];
        if (c < row_begin || c >= row_end)
          ghosts.push_back(c);
      }
    part_ =
      Partitioner::from_ghost_indices(comm, n, row_begin, row_end, ghosts);

    // local rows with columns remapped to the partitioner's local indexing:
    // owned columns -> [0, n_owned), ghosts -> n_owned + sorted position
    row_ptr_.push_back(0);
    for (std::size_t r = row_begin; r < row_end; ++r)
    {
      for (std::size_t k = global.row_ptr()[r]; k < global.row_ptr()[r + 1];
           ++k)
      {
        const std::size_t local_c =
          part_.local_index(global.col_idx()[k]);
        DGFLOW_ASSERT(local_c != Partitioner::invalid_local,
                      "column neither owned nor ghosted");
        col_idx_.push_back(local_c);
        values_.push_back(global.values()[k]);
      }
      row_ptr_.push_back(col_idx_.size());
    }
  }

  const Partitioner &partitioner() const { return part_; }
  std::size_t n_local() const { return part_.n_owned(); }
  std::size_t row_begin() const { return part_.owned_begin(); }

  /// Sizes @p v for this matrix's row partition (block size 1).
  void initialize_vector(DistributedVector<double> &v) const
  {
    v.reinit(part_, comm_, 1);
  }

  /// Distributed mat-vec: refreshes the ghost section of @p src, then
  /// applies the owned rows. @p dst is owned-only on return.
  void vmult(DistributedVector<double> &dst,
             const DistributedVector<double> &src) const
  {
    src.update_ghost_values_start();
    src.update_ghost_values_finish();
    dst.reinit_like(src, true);
    const double *in = src.data();
    double *out = dst.data();
    const std::size_t nl = n_local();
    for (std::size_t r = 0; r < nl; ++r)
    {
      double sum = 0;
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
        sum += values_[k] * in[col_idx_[k]];
      out[r] = sum;
    }
  }

private:
  Communicator &comm_;
  Partitioner part_;
  std::vector<std::size_t> row_ptr_, col_idx_;
  std::vector<double> values_;
};

} // namespace dgflow::vmpi
