#pragma once

// Element partition description for distributed vectors (paper Section 3.3:
// SFC-partitioned cells with nearest-neighbor ghost exchange). A Partitioner
// describes, for one rank, which contiguous global range of elements it owns,
// which off-rank elements it needs as ghosts, and the precomputed
// per-neighbor exchange lists a DistributedVector uses for
// update_ghost_values()/compress(). "Element" is deliberately abstract: for
// the matrix-free solver stack an element is an active cell (each cell owns
// one contiguous block of DoFs), for DistributedCSR it is a matrix row.
//
// Two factories:
//  * cell_partitioner() builds the exchange lists symmetrically from the
//    face list, with no communication (every rank sees the replicated mesh
//    and the same rank_of_cell vector, so the lists agree by construction).
//  * from_ghost_indices() performs a request handshake over the Communicator
//    for the generic case where only the local ghost set is known.

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/exceptions.h"
#include "mesh/mesh.h"
#include "vmpi/communicator.h"

namespace dgflow
{
namespace vmpi
{
class Partitioner
{
public:
  /// One neighbor's exchange list: global element indices, sorted.
  using ExchangeLists = std::map<int, std::vector<std::size_t>>;

  static constexpr std::size_t invalid_local = ~std::size_t(0);

  Partitioner() = default;

  /// Builds the partition of the mesh's active cells for rank my_rank out of
  /// rank_of_cell (as produced by partition_cells(): ownership must be
  /// contiguous along the SFC cell order). Ghosts are the off-rank cells
  /// sharing a face with an owned cell; the send list towards a neighbor
  /// mirrors that neighbor's ghost list. No communication.
  static Partitioner cell_partitioner(const Mesh &mesh,
                                      const std::vector<int> &rank_of_cell,
                                      const int my_rank, const int n_ranks)
  {
    const std::size_t n = mesh.n_active_cells();
    DGFLOW_ASSERT(rank_of_cell.size() == n, "rank_of_cell size mismatch");

    Partitioner p;
    p.rank_ = my_rank;
    p.n_ranks_ = n_ranks;
    p.n_global_ = n;
    p.owned_begin_ = n;
    p.owned_end_ = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (rank_of_cell[i] == my_rank)
      {
        p.owned_begin_ = std::min(p.owned_begin_, i);
        p.owned_end_ = std::max(p.owned_end_, i + 1);
      }
    if (p.owned_begin_ >= p.owned_end_)
      p.owned_begin_ = p.owned_end_ = 0; // empty rank
    for (std::size_t i = p.owned_begin_; i < p.owned_end_; ++i)
      DGFLOW_ASSERT(rank_of_cell[i] == my_rank,
                    "cell ownership must be contiguous in SFC order");

    // Ghosts and exchange lists from the face list. Each cut face
    // contributes the off-rank cell to the ghost (recv) side and the owned
    // cell to the send side of the same neighbor.
    std::map<int, std::set<std::size_t>> send_sets, recv_sets;
    for (const Mesh::Face &f : mesh.build_face_list())
    {
      if (f.is_boundary())
        continue;
      const int rm = rank_of_cell[f.cell_m], rp = rank_of_cell[f.cell_p];
      if (rm == rp)
        continue;
      if (rm == my_rank)
      {
        send_sets[rp].insert(f.cell_m);
        recv_sets[rp].insert(f.cell_p);
      }
      else if (rp == my_rank)
      {
        send_sets[rm].insert(f.cell_p);
        recv_sets[rm].insert(f.cell_m);
      }
    }
    for (const auto &[neighbor, cells] : send_sets)
      p.send_lists_[neighbor].assign(cells.begin(), cells.end());
    for (const auto &[neighbor, cells] : recv_sets)
    {
      p.recv_lists_[neighbor].assign(cells.begin(), cells.end());
      p.ghost_indices_.insert(p.ghost_indices_.end(), cells.begin(),
                              cells.end());
    }
    std::sort(p.ghost_indices_.begin(), p.ghost_indices_.end());
    p.finalize();
    return p;
  }

  /// Builds a partition from the locally known pieces: the global size, this
  /// rank's owned range and the set of off-rank elements it needs as ghosts.
  /// A request handshake over comm tells every owner which of its elements
  /// the others want (the send lists); every rank must call this
  /// collectively.
  static Partitioner from_ghost_indices(Communicator &comm,
                                        const std::size_t n_global,
                                        const std::size_t owned_begin,
                                        const std::size_t owned_end,
                                        std::vector<std::size_t> ghost_indices)
  {
    Partitioner p;
    p.rank_ = comm.rank();
    p.n_ranks_ = comm.size();
    p.n_global_ = n_global;
    p.owned_begin_ = owned_begin;
    p.owned_end_ = owned_end;
    std::sort(ghost_indices.begin(), ghost_indices.end());
    ghost_indices.erase(
      std::unique(ghost_indices.begin(), ghost_indices.end()),
      ghost_indices.end());
    p.ghost_indices_ = std::move(ghost_indices);

    // 1) every rank publishes its owned range so ghost owners can be found
    std::vector<std::size_t> ranges(2 * p.n_ranks_, 0);
    for (int r = 0; r < p.n_ranks_; ++r)
      if (r != p.rank_)
        comm.send_vector(r, tag_range,
                         std::vector<std::size_t>{owned_begin, owned_end});
    ranges[2 * p.rank_] = owned_begin;
    ranges[2 * p.rank_ + 1] = owned_end;
    for (int r = 0; r < p.n_ranks_; ++r)
      if (r != p.rank_)
      {
        const auto range = comm.recv_vector<std::size_t>(r, tag_range, 2);
        DGFLOW_ASSERT(range.size() == 2, "malformed range message");
        ranges[2 * r] = range[0];
        ranges[2 * r + 1] = range[1];
      }
    const auto owner_of = [&](const std::size_t g) {
      for (int r = 0; r < p.n_ranks_; ++r)
        if (g >= ranges[2 * r] && g < ranges[2 * r + 1])
          return r;
      DGFLOW_ASSERT(false, "ghost index owned by no rank");
      return -1;
    };

    // 2) request handshake: tell each owner which elements we want; what the
    //    others request from us becomes our send lists
    for (const std::size_t g : p.ghost_indices_)
      p.recv_lists_[owner_of(g)].push_back(g);
    for (int r = 0; r < p.n_ranks_; ++r)
    {
      if (r == p.rank_)
        continue;
      auto it = p.recv_lists_.find(r);
      comm.send_vector(r, tag_request,
                       it == p.recv_lists_.end()
                         ? std::vector<std::size_t>{}
                         : it->second);
    }
    for (int r = 0; r < p.n_ranks_; ++r)
    {
      if (r == p.rank_)
        continue;
      auto wanted = comm.recv_vector<std::size_t>(r, tag_request, n_global);
      if (!wanted.empty())
        p.send_lists_[r] = std::move(wanted);
    }
    // recv_lists_ may hold empty entries for neighbors we sent nothing to
    for (auto it = p.recv_lists_.begin(); it != p.recv_lists_.end();)
      it = it->second.empty() ? p.recv_lists_.erase(it) : std::next(it);
    p.finalize();
    return p;
  }

  int rank() const { return rank_; }
  int n_ranks() const { return n_ranks_; }
  std::size_t n_global() const { return n_global_; }
  std::size_t owned_begin() const { return owned_begin_; }
  std::size_t owned_end() const { return owned_end_; }
  std::size_t n_owned() const { return owned_end_ - owned_begin_; }
  std::size_t n_ghosts() const { return ghost_indices_.size(); }
  std::size_t n_local() const { return n_owned() + n_ghosts(); }

  bool is_owned(const std::size_t global) const
  {
    return global >= owned_begin_ && global < owned_end_;
  }

  /// Local index of a global element: owned elements map to
  /// [0, n_owned()), ghosts to [n_owned(), n_local()) in ascending global
  /// order. Returns invalid_local for elements this rank does not know.
  std::size_t local_index(const std::size_t global) const
  {
    if (is_owned(global))
      return global - owned_begin_;
    const auto it =
      std::lower_bound(ghost_indices_.begin(), ghost_indices_.end(), global);
    if (it == ghost_indices_.end() || *it != global)
      return invalid_local;
    return n_owned() + std::size_t(it - ghost_indices_.begin());
  }

  /// Sorted global indices of the ghost elements.
  const std::vector<std::size_t> &ghost_indices() const
  {
    return ghost_indices_;
  }

  /// Owned elements to pack for each neighbor rank (sorted global indices).
  const ExchangeLists &send_lists() const { return send_lists_; }

  /// Ghost elements received from each neighbor rank (sorted global
  /// indices); the union over neighbors is ghost_indices().
  const ExchangeLists &recv_lists() const { return recv_lists_; }

  /// Number of neighbor ranks this rank exchanges with (symmetric for the
  /// face-based cell partitioner).
  std::size_t n_neighbors() const
  {
    std::set<int> neighbors;
    for (const auto &[r, list] : send_lists_)
      neighbors.insert(r);
    for (const auto &[r, list] : recv_lists_)
      neighbors.insert(r);
    return neighbors.size();
  }

  /// Total number of owned elements sent per exchange (an element sent to
  /// two neighbors counts twice — it travels in two messages).
  std::size_t n_send_elements() const
  {
    std::size_t n = 0;
    for (const auto &[r, list] : send_lists_)
      n += list.size();
    return n;
  }

  bool operator==(const Partitioner &other) const
  {
    return rank_ == other.rank_ && n_ranks_ == other.n_ranks_ &&
           n_global_ == other.n_global_ &&
           owned_begin_ == other.owned_begin_ &&
           owned_end_ == other.owned_end_ &&
           ghost_indices_ == other.ghost_indices_;
  }

private:
  static constexpr int tag_range = 920;
  static constexpr int tag_request = 921;

  void finalize()
  {
    for (auto &[r, list] : send_lists_)
    {
      std::sort(list.begin(), list.end());
      for (const std::size_t g : list)
        DGFLOW_ASSERT(is_owned(g), "send list entry not owned");
    }
    for (auto &[r, list] : recv_lists_)
      std::sort(list.begin(), list.end());
  }

  int rank_ = 0;
  int n_ranks_ = 1;
  std::size_t n_global_ = 0;
  std::size_t owned_begin_ = 0;
  std::size_t owned_end_ = 0;
  std::vector<std::size_t> ghost_indices_;
  ExchangeLists send_lists_, recv_lists_;
};

} // namespace vmpi
} // namespace dgflow
