#include "vmpi/communicator.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "common/exceptions.h"
#include "instrumentation/profiler.h"

namespace dgflow::vmpi
{
void run(const int n_ranks, const std::function<void(Communicator &)> &f)
{
  DGFLOW_ASSERT(n_ranks >= 1, "need at least one rank");
  internal::SharedState state(n_ranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(n_ranks);

  // communicators live past the join so the per-rank traffic can be summed
  std::vector<Communicator> comms;
  comms.reserve(n_ranks);
  for (int r = 0; r < n_ranks; ++r)
    comms.emplace_back(state, r);

  for (int r = 0; r < n_ranks; ++r)
    threads.emplace_back([&, r]() {
      try
      {
        f(comms[r]);
      }
      catch (...)
      {
        errors[r] = std::current_exception();
      }
    });
  for (auto &t : threads)
    t.join();

  if (prof::Profiler::instance().enabled())
  {
    Communicator::Traffic total;
    for (const Communicator &c : comms)
    {
      total.messages += c.traffic().messages;
      total.bytes += c.traffic().bytes;
      total.barriers += c.traffic().barriers;
      total.allreduces += c.traffic().allreduces;
    }
    prof::Profiler::instance().add_vmpi_run(n_ranks, total.messages,
                                            total.bytes, total.barriers,
                                            total.allreduces);
  }

  for (const auto &e : errors)
    if (e)
      std::rethrow_exception(e);
}

void Communicator::send(const int dest, const int tag, const void *data,
                        const std::size_t bytes)
{
  DGFLOW_ASSERT(dest >= 0 && dest < size(), "invalid destination rank");
  traffic_.messages += 1;
  traffic_.bytes += bytes;
  internal::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.data.resize(bytes);
  std::memcpy(msg.data.data(), data, bytes);
  auto &box = state_.mailboxes[dest];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

std::size_t Communicator::recv(const int source, const int tag, void *data,
                               const std::size_t max_bytes)
{
  auto &box = state_.mailboxes[rank_];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;)
  {
    const auto it = std::find_if(
      box.messages.begin(), box.messages.end(),
      [&](const internal::Message &m) {
        return m.source == source && m.tag == tag;
      });
    if (it != box.messages.end())
    {
      DGFLOW_ASSERT(it->data.size() <= max_bytes,
                    "receive buffer too small: " << it->data.size() << " > "
                                                 << max_bytes);
      std::memcpy(data, it->data.data(), it->data.size());
      const std::size_t bytes = it->data.size();
      box.messages.erase(it);
      return bytes;
    }
    box.cv.wait(lock);
  }
}

void Communicator::barrier()
{
  traffic_.barriers += 1;
  std::vector<double> dummy;
  allreduce_impl(dummy, Op::sum);
}

void Communicator::allreduce(std::vector<double> &values, const Op op)
{
  traffic_.allreduces += 1;
  allreduce_impl(values, op);
}

void Communicator::allreduce_impl(std::vector<double> &values, const Op op)
{
  std::unique_lock<std::mutex> lock(state_.coll_mutex);
  // entry gate: the previous collective must be fully drained
  state_.coll_cv.wait(lock, [&]() { return state_.coll_exiting == 0; });

  const long generation = state_.coll_generation;
  if (state_.coll_count == 0)
    state_.reduce_slot = values;
  else
    for (std::size_t i = 0; i < values.size(); ++i)
      switch (op)
      {
        case Op::sum:
          state_.reduce_slot[i] += values[i];
          break;
        case Op::max:
          state_.reduce_slot[i] = std::max(state_.reduce_slot[i], values[i]);
          break;
        case Op::min:
          state_.reduce_slot[i] = std::min(state_.reduce_slot[i], values[i]);
          break;
      }

  if (++state_.coll_count == state_.n_ranks)
  {
    state_.coll_count = 0;
    state_.coll_exiting = state_.n_ranks;
    ++state_.coll_generation;
    state_.coll_cv.notify_all();
  }
  else
    state_.coll_cv.wait(lock, [&]() {
      return state_.coll_generation != generation;
    });

  values = state_.reduce_slot;
  if (--state_.coll_exiting == 0)
    state_.coll_cv.notify_all();
}

} // namespace dgflow::vmpi
