#include "vmpi/communicator.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/exceptions.h"
#include "instrumentation/profiler.h"

namespace dgflow::vmpi
{
namespace
{
using clock = std::chrono::steady_clock;

/// Deadline for a wait starting now with the given timeout (<= 0: forever).
clock::time_point deadline_from(const clock::time_point start,
                                const double timeout_seconds)
{
  if (timeout_seconds <= 0.)
    return clock::time_point::max();
  return start + std::chrono::duration_cast<clock::duration>(
                   std::chrono::duration<double>(timeout_seconds));
}

double seconds_since(const clock::time_point start)
{
  return std::chrono::duration<double>(clock::now() - start).count();
}
} // namespace

void run(const int n_ranks, const std::function<void(Communicator &)> &f)
{
  DGFLOW_ASSERT(n_ranks >= 1, "need at least one rank");
  internal::SharedState state(n_ranks);
  if (const char *v = std::getenv("DGFLOW_VMPI_TIMEOUT"))
    state.default_timeout = std::atof(v);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(n_ranks);

  // communicators live past the join so the per-rank traffic can be summed
  std::vector<Communicator> comms;
  comms.reserve(n_ranks);
  for (int r = 0; r < n_ranks; ++r)
    comms.emplace_back(state, r);

  for (int r = 0; r < n_ranks; ++r)
    threads.emplace_back([&, r]() {
      try
      {
        f(comms[r]);
      }
      catch (...)
      {
        errors[r] = std::current_exception();
      }
    });
  for (auto &t : threads)
    t.join();

  if (prof::Profiler::instance().enabled())
  {
    Communicator::Traffic total;
    for (const Communicator &c : comms)
    {
      total.messages += c.traffic().messages;
      total.bytes += c.traffic().bytes;
      total.barriers += c.traffic().barriers;
      total.allreduces += c.traffic().allreduces;
    }
    prof::Profiler::instance().add_vmpi_run(n_ranks, total.messages,
                                            total.bytes, total.barriers,
                                            total.allreduces);
  }

  for (const auto &e : errors)
    if (e)
      std::rethrow_exception(e);
}

void Communicator::send(const int dest, const int tag, const void *data,
                        const std::size_t bytes)
{
  DGFLOW_ASSERT(dest >= 0 && dest < size(), "invalid destination rank");
  traffic_.messages += 1;
  traffic_.bytes += bytes;

  FaultAction action;
  if (faults_)
  {
    const unsigned long long seq = send_seq_[{dest, tag}]++;
    action = faults_->on_message(rank_, dest, tag, seq, bytes);
  }
  if (action.drop)
    return;

  internal::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.data.resize(bytes);
  std::memcpy(msg.data.data(), data, bytes);
  if (action.corrupt_bytes > 0)
    for (std::size_t i = 0; i < std::min(action.corrupt_bytes, bytes); ++i)
      msg.data[i] = static_cast<char>(msg.data[i] ^ 0x5A);
  msg.available_at = action.delay_seconds > 0.
                       ? deadline_from(clock::now(), action.delay_seconds)
                       : clock::time_point::min();

  auto &box = state_.mailboxes[dest];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    if (action.reorder)
    {
      // jump ahead of messages from other (source,tag) streams, but keep
      // the per-(source,tag) FIFO (the MPI non-overtaking guarantee the
      // matching logic relies on)
      auto pos = box.messages.begin();
      for (auto it = box.messages.rbegin(); it != box.messages.rend(); ++it)
        if (it->source == msg.source && it->tag == msg.tag)
        {
          pos = it.base();
          break;
        }
      box.messages.insert(pos, std::move(msg));
    }
    else
      box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

std::size_t Communicator::recv(const int source, const int tag, void *data,
                               const std::size_t max_bytes)
{
  auto &box = state_.mailboxes[rank_];
  const auto start = clock::now();
  const auto deadline = deadline_from(start, timeout_seconds_);
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;)
  {
    // first positional match preserves the per-(source,tag) FIFO even when
    // fault injection holds a matched message back via available_at
    const auto it = std::find_if(
      box.messages.begin(), box.messages.end(),
      [&](const internal::Message &m) {
        return m.source == source && m.tag == tag;
      });
    const auto now = clock::now();
    if (it != box.messages.end() && it->available_at <= now)
    {
      DGFLOW_ASSERT(it->data.size() <= max_bytes,
                    "receive buffer too small: " << it->data.size() << " > "
                                                 << max_bytes);
      std::memcpy(data, it->data.data(), it->data.size());
      const std::size_t bytes = it->data.size();
      box.messages.erase(it);
      return bytes;
    }

    auto wake_at = deadline;
    if (it != box.messages.end() && it->available_at < wake_at)
      wake_at = it->available_at;
    if (now >= deadline)
    {
      std::ostringstream ss;
      ss << "vmpi timeout: rank " << rank_ << " waited "
         << seconds_since(start) << " s for a message from rank " << source
         << " with tag " << tag << " (mailbox holds " << box.messages.size()
         << " unmatched message(s)";
      for (const auto &m : box.messages)
        ss << " [source " << m.source << ", tag " << m.tag << "]";
      ss << ")";
      throw TimeoutError(ss.str(), rank_, source, tag, seconds_since(start));
    }
    if (wake_at == clock::time_point::max())
      box.cv.wait(lock);
    else
      box.cv.wait_until(lock, wake_at);
  }
}

void Communicator::barrier()
{
  traffic_.barriers += 1;
  std::vector<double> dummy;
  allreduce_impl(dummy, Op::sum, "barrier");
}

void Communicator::allreduce(std::vector<double> &values, const Op op)
{
  traffic_.allreduces += 1;
  allreduce_impl(values, op, "allreduce");
}

void Communicator::allreduce_impl(std::vector<double> &values, const Op op,
                                  const char *op_name)
{
  if (faults_)
  {
    const double stall =
      faults_->stall_before_collective(rank_, collective_seq_++);
    if (stall > 0.)
      std::this_thread::sleep_for(std::chrono::duration<double>(stall));
  }

  const auto start = clock::now();
  const auto deadline = deadline_from(start, timeout_seconds_);
  const auto timed_wait = [&](std::unique_lock<std::mutex> &lock,
                              const auto &predicate, const char *phase) {
    if (deadline == clock::time_point::max())
    {
      state_.coll_cv.wait(lock, predicate);
      return;
    }
    if (!state_.coll_cv.wait_until(lock, deadline, predicate))
      throw TimeoutError("vmpi timeout: rank " + std::to_string(rank_) +
                           " waited " + std::to_string(seconds_since(start)) +
                           " s in " + op_name + " (" + phase + ", " +
                           std::to_string(state_.coll_count) + "/" +
                           std::to_string(state_.n_ranks) +
                           " ranks arrived)",
                         rank_, -1, -1, seconds_since(start));
  };

  std::unique_lock<std::mutex> lock(state_.coll_mutex);
  // entry gate: the previous collective must be fully drained
  timed_wait(lock, [&]() { return state_.coll_exiting == 0; }, "entry gate");

  const long generation = state_.coll_generation;
  state_.coll_contributions[rank_] = values;

  if (++state_.coll_count == state_.n_ranks)
  {
    // reduce in fixed rank order: the floating-point result must not depend
    // on which rank happened to arrive last (injected delays change thread
    // timing; bitwise reproducibility requires a deterministic order)
    state_.reduce_slot = state_.coll_contributions[0];
    for (int r = 1; r < state_.n_ranks; ++r)
    {
      const std::vector<double> &contrib = state_.coll_contributions[r];
      for (std::size_t i = 0; i < state_.reduce_slot.size(); ++i)
        switch (op)
        {
          case Op::sum:
            state_.reduce_slot[i] += contrib[i];
            break;
          case Op::max:
            state_.reduce_slot[i] = std::max(state_.reduce_slot[i], contrib[i]);
            break;
          case Op::min:
            state_.reduce_slot[i] = std::min(state_.reduce_slot[i], contrib[i]);
            break;
        }
    }
    state_.coll_count = 0;
    state_.coll_exiting = state_.n_ranks;
    ++state_.coll_generation;
    state_.coll_cv.notify_all();
  }
  else
  {
    try
    {
      timed_wait(lock,
                 [&]() { return state_.coll_generation != generation; },
                 "rendezvous");
    }
    catch (...)
    {
      // withdraw from the rendezvous so a later collective (or another
      // rank's timeout accounting) does not count this rank as arrived
      --state_.coll_count;
      throw;
    }
  }

  values = state_.reduce_slot;
  if (--state_.coll_exiting == 0)
    state_.coll_cv.notify_all();
}

} // namespace dgflow::vmpi
