#include "vmpi/communicator.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/env.h"
#include "common/exceptions.h"
#include "concurrency/thread_pool.h"
#include "instrumentation/profiler.h"

namespace dgflow::vmpi
{
namespace
{
using clock = std::chrono::steady_clock;

/// Deadline for a wait starting now with the given timeout (<= 0: forever).
clock::time_point deadline_from(const clock::time_point start,
                                const double timeout_seconds)
{
  if (timeout_seconds <= 0.)
    return clock::time_point::max();
  return start + std::chrono::duration_cast<clock::duration>(
                   std::chrono::duration<double>(timeout_seconds));
}

double seconds_since(const clock::time_point start)
{
  return std::chrono::duration<double>(clock::now() - start).count();
}

std::uint64_t fnv1a64(const void *data, const std::size_t n)
{
  const unsigned char *c = static_cast<const unsigned char *>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i)
  {
    h ^= c[i];
    h *= 0x100000001b3ull;
  }
  return h;
}
} // namespace

void run(const int n_ranks, const std::function<void(Communicator &)> &f)
{
  DGFLOW_ASSERT(n_ranks >= 1, "need at least one rank");
  internal::SharedState state(n_ranks);
  // strict parse: a typo'd timeout silently becoming 0 (atof) would mean
  // "wait forever" and turn every hang-detection test into a real hang
  state.default_timeout =
    env_real("DGFLOW_VMPI_TIMEOUT", state.default_timeout, 0., 1e6);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(n_ranks);

  // communicators live past the join so the per-rank traffic can be summed
  std::vector<Communicator> comms;
  comms.reserve(n_ranks);
  for (int r = 0; r < n_ranks; ++r)
    comms.emplace_back(state, r);

  // rank threads count against the worker pool's concurrency budget: with
  // n_ranks rank threads computing, at most n_threads - n_ranks pool workers
  // may join a parallel region (concurrency/thread_pool.h)
  concurrency::ThreadPool::instance().set_external_concurrency(
    static_cast<unsigned int>(n_ranks));
  for (int r = 0; r < n_ranks; ++r)
    threads.emplace_back([&, r]() {
      try
      {
        f(comms[r]);
      }
      catch (...)
      {
        errors[r] = std::current_exception();
      }
    });
  for (auto &t : threads)
    t.join();
  concurrency::ThreadPool::instance().set_external_concurrency(1);

  if (prof::Profiler::instance().enabled())
  {
    Communicator::Traffic total;
    for (const Communicator &c : comms)
    {
      total.messages += c.traffic().messages;
      total.bytes += c.traffic().bytes;
      total.barriers += c.traffic().barriers;
      total.allreduces += c.traffic().allreduces;
      total.agreements += c.traffic().agreements;
      total.drained += c.traffic().drained;
    }
    prof::Profiler::instance().add_vmpi_run(n_ranks, total.messages,
                                            total.bytes, total.barriers,
                                            total.allreduces);
    if (total.agreements > 0)
      DGFLOW_PROF_COUNT("recovery_agreements", total.agreements);
    if (total.drained > 0)
      DGFLOW_PROF_COUNT("vmpi_drained_messages", total.drained);
  }

  for (const auto &e : errors)
    if (e)
      std::rethrow_exception(e);
}

void Communicator::send(const int dest, const int tag, const void *data,
                        const std::size_t bytes)
{
  DGFLOW_ASSERT(dest >= 0 && dest < size(), "invalid destination rank");
  traffic_.messages += 1;
  traffic_.bytes += bytes;
  beat();

  FaultAction action;
  if (faults_)
  {
    const unsigned long long seq = send_seq_[{dest, tag}]++;
    action = faults_->on_message(rank_, dest, tag, seq, bytes);
  }
  if (action.drop)
    return;

  internal::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.epoch = epoch_;
  msg.data.resize(bytes);
  std::memcpy(msg.data.data(), data, bytes);
  if (action.corrupt_bytes > 0)
    for (std::size_t i = 0; i < std::min(action.corrupt_bytes, bytes); ++i)
      msg.data[i] = static_cast<char>(msg.data[i] ^ 0x5A);
  msg.available_at = action.delay_seconds > 0.
                       ? deadline_from(clock::now(), action.delay_seconds)
                       : clock::time_point::min();

  auto &box = state_.mailboxes[dest];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    if (action.reorder)
    {
      // jump ahead of messages from other (source,tag) streams, but keep
      // the per-(source,tag) FIFO (the MPI non-overtaking guarantee the
      // matching logic relies on)
      auto pos = box.messages.begin();
      for (auto it = box.messages.rbegin(); it != box.messages.rend(); ++it)
        if (it->source == msg.source && it->tag == msg.tag)
        {
          pos = it.base();
          break;
        }
      box.messages.insert(pos, std::move(msg));
    }
    else
      box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

std::size_t
Communicator::drain_stale_locked(std::deque<internal::Message> &messages)
{
  std::size_t drained = 0;
  for (auto it = messages.begin(); it != messages.end();)
    if (it->epoch < epoch_)
    {
      it = messages.erase(it);
      ++drained;
    }
    else
      ++it;
  traffic_.drained += drained;
  return drained;
}

std::size_t Communicator::recv(const int source, const int tag, void *data,
                               const std::size_t max_bytes)
{
  auto &box = state_.mailboxes[rank_];
  const auto start = clock::now();
  const auto deadline = deadline_from(start, timeout_seconds_);
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;)
  {
    // purge traffic from abandoned epochs so it can neither match nor
    // accumulate, then take the first positional match — which preserves
    // the per-(source,tag) FIFO even when fault injection holds a matched
    // message back via available_at
    drain_stale_locked(box.messages);
    const auto it = std::find_if(
      box.messages.begin(), box.messages.end(),
      [&](const internal::Message &m) {
        return m.source == source && m.tag == tag && m.epoch == epoch_;
      });
    const auto now = clock::now();
    if (it != box.messages.end() && it->available_at <= now)
    {
      DGFLOW_ASSERT(it->data.size() <= max_bytes,
                    "receive buffer too small: " << it->data.size() << " > "
                                                 << max_bytes);
      std::memcpy(data, it->data.data(), it->data.size());
      const std::size_t bytes = it->data.size();
      box.messages.erase(it);
      beat();
      return bytes;
    }

    auto wake_at = deadline;
    if (it != box.messages.end() && it->available_at < wake_at)
      wake_at = it->available_at;
    if (now >= deadline)
    {
      std::ostringstream ss;
      ss << "vmpi timeout: rank " << rank_ << " waited "
         << seconds_since(start) << " s for a message from rank " << source
         << " with tag " << tag << " in epoch " << epoch_
         << " (mailbox holds " << box.messages.size()
         << " unmatched message(s)";
      for (const auto &m : box.messages)
        ss << " [source " << m.source << ", tag " << m.tag << ", epoch "
           << m.epoch << "]";
      ss << ")";
      throw TimeoutError(ss.str(), rank_, source, tag, seconds_since(start));
    }
    if (wake_at == clock::time_point::max())
      box.cv.wait(lock);
    else
      box.cv.wait_until(lock, wake_at);
  }
}

std::size_t Communicator::advance_epoch(const long new_epoch)
{
  DGFLOW_ASSERT(new_epoch >= epoch_,
                "epoch must not go backwards (" << new_epoch << " < "
                                                << epoch_ << ")");
  epoch_ = new_epoch;
  auto &box = state_.mailboxes[rank_];
  std::lock_guard<std::mutex> lock(box.mutex);
  return drain_stale_locked(box.messages);
}

std::size_t Communicator::cancel_pending()
{
  auto &box = state_.mailboxes[rank_];
  std::lock_guard<std::mutex> lock(box.mutex);
  const std::size_t drained = box.messages.size();
  box.messages.clear();
  traffic_.drained += drained;
  return drained;
}

void Communicator::barrier()
{
  traffic_.barriers += 1;
  std::vector<double> dummy;
  allreduce_impl(dummy, Op::sum, "barrier");
}

void Communicator::allreduce(std::vector<double> &values, const Op op)
{
  traffic_.allreduces += 1;
  allreduce_impl(values, op, "allreduce");
}

void Communicator::allreduce_impl(std::vector<double> &values, const Op op,
                                  const char *op_name)
{
  const auto start = clock::now();
  const auto deadline = deadline_from(start, timeout_seconds_);
  std::size_t corrupt_bytes = 0;
  if (faults_)
  {
    const unsigned long long seq = collective_seq_++;
    if (faults_->kill_before_collective(rank_, seq))
      throw RankFailure("vmpi rank death: rank " + std::to_string(rank_) +
                          " killed by fault injection before " + op_name +
                          " #" + std::to_string(seq),
                        rank_, {rank_}, epoch_);
    corrupt_bytes = faults_->corrupt_collective(rank_, seq);
    const double stall = faults_->stall_before_collective(rank_, seq);
    if (stall > 0.)
    {
      // the stall itself is a bounded wait: a straggler held past its own
      // deadline self-reports as timed out instead of blocking the run's
      // join for the full (possibly unbounded) stall duration
      const bool capped =
        timeout_seconds_ > 0. && stall > timeout_seconds_;
      std::this_thread::sleep_for(std::chrono::duration<double>(
        capped ? timeout_seconds_ : stall));
      if (capped)
        throw TimeoutError(
          "vmpi timeout: rank " + std::to_string(rank_) + " stalled " +
            std::to_string(stall) + " s before " + op_name +
            ", past its deadline of " + std::to_string(timeout_seconds_) +
            " s",
          rank_, -1, -1, seconds_since(start));
    }
  }
  beat();

  const auto timed_wait = [&](std::unique_lock<std::mutex> &lock,
                              const auto &predicate, const char *phase) {
    if (deadline == clock::time_point::max())
    {
      state_.coll_cv.wait(lock, predicate);
      return;
    }
    if (!state_.coll_cv.wait_until(lock, deadline, predicate))
      throw TimeoutError("vmpi timeout: rank " + std::to_string(rank_) +
                           " waited " + std::to_string(seconds_since(start)) +
                           " s in " + op_name + " (" + phase + ", " +
                           std::to_string(state_.coll_count) + "/" +
                           std::to_string(state_.n_ranks) +
                           " ranks arrived)",
                         rank_, -1, -1, seconds_since(start));
  };

  std::unique_lock<std::mutex> lock(state_.coll_mutex);
  // entry gate: the previous collective must be fully drained
  timed_wait(lock, [&]() { return state_.coll_exiting == 0; }, "entry gate");

  const long generation = state_.coll_generation;
  state_.coll_contributions[rank_] = values;
  // checksum the honest contribution, then apply any injected in-flight
  // corruption; the reducing rank recomputes and compares
  state_.coll_checksums[rank_] =
    fnv1a64(state_.coll_contributions[rank_].data(),
            state_.coll_contributions[rank_].size() * sizeof(double));
  if (corrupt_bytes > 0 && !state_.coll_contributions[rank_].empty())
  {
    char *c =
      reinterpret_cast<char *>(state_.coll_contributions[rank_].data());
    const std::size_t n = std::min(
      corrupt_bytes, state_.coll_contributions[rank_].size() * sizeof(double));
    for (std::size_t i = 0; i < n; ++i)
      c[i] = static_cast<char>(c[i] ^ 0x5A);
  }

  if (++state_.coll_count == state_.n_ranks)
  {
    // reduce in fixed rank order: the floating-point result must not depend
    // on which rank happened to arrive last (injected delays change thread
    // timing; bitwise reproducibility requires a deterministic order)
    state_.coll_corrupt_rank = -1;
    for (int r = 0; r < state_.n_ranks; ++r)
      if (fnv1a64(state_.coll_contributions[r].data(),
                  state_.coll_contributions[r].size() * sizeof(double)) !=
            state_.coll_checksums[r] &&
          state_.coll_corrupt_rank < 0)
        state_.coll_corrupt_rank = r;
    state_.reduce_slot = state_.coll_contributions[0];
    for (int r = 1; r < state_.n_ranks; ++r)
    {
      const std::vector<double> &contrib = state_.coll_contributions[r];
      for (std::size_t i = 0; i < state_.reduce_slot.size(); ++i)
        switch (op)
        {
          case Op::sum:
            state_.reduce_slot[i] += contrib[i];
            break;
          case Op::max:
            state_.reduce_slot[i] = std::max(state_.reduce_slot[i], contrib[i]);
            break;
          case Op::min:
            state_.reduce_slot[i] = std::min(state_.reduce_slot[i], contrib[i]);
            break;
        }
    }
    state_.coll_count = 0;
    state_.coll_exiting = state_.n_ranks;
    ++state_.coll_generation;
    state_.coll_cv.notify_all();
  }
  else
  {
    try
    {
      timed_wait(lock,
                 [&]() { return state_.coll_generation != generation; },
                 "rendezvous");
    }
    catch (...)
    {
      // withdraw from the rendezvous so a later collective (or another
      // rank's timeout accounting) does not count this rank as arrived
      --state_.coll_count;
      throw;
    }
  }

  values = state_.reduce_slot;
  const int corrupt_rank = state_.coll_corrupt_rank;
  if (--state_.coll_exiting == 0)
    state_.coll_cv.notify_all();
  if (corrupt_rank >= 0)
    throw CollectiveCorruptionError(
      "vmpi " + std::string(op_name) + " payload corruption: rank " +
        std::to_string(corrupt_rank) +
        "'s contribution failed its integrity checksum (observed on rank " +
        std::to_string(rank_) + "); refusing to fold corrupted data into " +
        "the reduction",
      rank_, corrupt_rank);
}

AgreeResult Communicator::agree(const bool local_ok,
                                const double timeout_seconds)
{
  traffic_.agreements += 1;
  beat();
  const auto start = clock::now();
  const double budget =
    timeout_seconds > 0. ? timeout_seconds : timeout_seconds_;
  const auto deadline = deadline_from(start, budget);

  const long round_id = agree_seq_++;
  std::unique_lock<std::mutex> lock(state_.agree_mutex);
  internal::AgreeRound &round = state_.agree_rounds[round_id];
  if (round.arrived.empty())
  {
    round.arrived.assign(state_.n_ranks, 0);
    round.ok.assign(state_.n_ranks, 0);
  }

  const auto close_round = [&]() {
    round.verdict.assign(state_.n_ranks, 0);
    for (int r = 0; r < state_.n_ranks; ++r)
      round.verdict[r] = round.arrived[r] && round.ok[r];
    round.closed = true;
    state_.agree_cv.notify_all();
  };

  if (!round.closed)
  {
    round.arrived[rank_] = 1;
    round.ok[rank_] = local_ok ? 1 : 0;
    if (++round.arrived_count == state_.n_ranks)
      close_round();
    else if (deadline == clock::time_point::max())
      state_.agree_cv.wait(lock, [&]() { return round.closed; });
    else if (!state_.agree_cv.wait_until(lock, deadline,
                                         [&]() { return round.closed; }))
      close_round(); // deadline expired: absent ranks are voted dead
  }
  // a straggler arriving after closure adopts the verdict that was reached
  // without it — in which it is recorded as failed

  AgreeResult result;
  result.ok.assign(round.verdict.begin(), round.verdict.end());
  result.arrived.assign(round.arrived.begin(), round.arrived.end());
  result.all_ok = true;
  for (const char v : round.verdict)
    if (!v)
      result.all_ok = false;
  result.self_ok = round.verdict[rank_] != 0;

  // prune ancient rounds (any rank this far behind has long been voted
  // dead); keeps the shared map bounded over long runs
  state_.agree_rounds.erase(state_.agree_rounds.begin(),
                            state_.agree_rounds.lower_bound(round_id - 64));
  return result;
}

} // namespace dgflow::vmpi
