#pragma once

// Process-wide worker pool for the shared-memory parallel cell loops and
// BLAS-1 sweeps. One pool serves the whole process; parallel regions are
// handed out cooperatively:
//
//  * run_chunks(n, fn) executes fn(0..n-1) on the caller plus up to
//    n_threads()-1 workers. Chunks are grabbed from a shared atomic counter,
//    so the assignment of chunks to threads is nondeterministic — every
//    caller must make the RESULT independent of that assignment (disjoint
//    write ranges, fixed reduction order). All users in this codebase are
//    bitwise deterministic under this contract (see docs/DEVELOPING.md,
//    "Shared-memory parallel loops").
//  * Only one parallel region runs at a time. A caller that finds the pool
//    busy — another thread's region, or a nested call from inside a chunk —
//    simply runs its chunks inline on its own thread. Because of the
//    determinism contract this fallback is bitwise identical, so vmpi
//    ranks-as-threads can race for the pool without affecting results.
//  * async(task) enqueues fire-and-forget work on a dedicated FIFO service
//    thread (the asynchronous checkpoint writer's disk lane) — strictly
//    ordered, drained on destruction, separate from the fork-join workers.
//  * set_external_concurrency(n_ranks) caps worker participation while
//    vmpi::run has n_ranks rank threads alive, so ranks x threads never
//    oversubscribes beyond max(n_threads, n_ranks) runnable threads.
//
// The pool width comes from DGFLOW_THREADS (strict common/env.h parsing,
// default 1 = serial; a malformed value throws instead of silently running
// serial) or programmatically via set_n_threads(). Workers are spawned
// lazily on first use and joined in the destructor.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/exceptions.h"

namespace dgflow::concurrency
{
/// Pool width requested via the environment: DGFLOW_THREADS in [1, 1024],
/// unset means 1 (serial). Parsing is strict: "0", "banana" or "4x" throw
/// EnvVarError naming the variable rather than degrading to serial.
inline unsigned int configured_threads_from_env()
{
  return static_cast<unsigned int>(env_integer("DGFLOW_THREADS", 1, 1, 1024));
}

class ThreadPool
{
public:
  /// The process-wide pool, sized from DGFLOW_THREADS on first use.
  static ThreadPool &instance()
  {
    static ThreadPool pool(configured_threads_from_env());
    return pool;
  }

  explicit ThreadPool(const unsigned int n_threads) : n_threads_(1)
  {
    set_n_threads(n_threads);
  }

  ~ThreadPool()
  {
    join_service_thread();
    join_workers();
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned int n_threads() const { return n_threads_; }

  /// Resizes the pool (joins existing workers; new ones spawn lazily).
  /// Blocks until any running parallel region has finished.
  void set_n_threads(const unsigned int n)
  {
    std::lock_guard<std::mutex> region(region_mutex_);
    join_workers();
    n_threads_ = std::max(1u, n);
  }

  /// Declares @p n_ranks external compute threads (vmpi ranks) alive; while
  /// more than one is registered, at most n_threads() - n_ranks workers join
  /// a region so the process never runs more than max(n_threads, n_ranks)
  /// compute threads. Pass 1 to lift the cap.
  void set_external_concurrency(const unsigned int n_ranks)
  {
    external_.store(std::max(1u, n_ranks), std::memory_order_relaxed);
  }

  /// Executes fn(c) for every c in [0, n_chunks), returning when all chunks
  /// are done. The caller participates; if the pool is busy or capped the
  /// caller runs every chunk inline in ascending order. The first exception
  /// thrown by any chunk is rethrown on the caller after the region drains.
  void run_chunks(const unsigned int n_chunks,
                  const std::function<void(unsigned int)> &fn)
  {
    if (n_chunks == 0)
      return;
    const unsigned int ext = external_.load(std::memory_order_relaxed);
    const unsigned int workers_allowed =
      ext <= 1 ? n_threads_ - 1
               : (n_threads_ > ext ? n_threads_ - ext : 0u);
    if (n_chunks == 1 || workers_allowed == 0 || in_parallel_region() ||
        !region_mutex_.try_lock())
    {
      for (unsigned int c = 0; c < n_chunks; ++c)
        fn(c);
      return;
    }
    // region_mutex_ held from here on
    ensure_workers();
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n_chunks;
    job->workers_allowed = workers_allowed;
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      job_ = job;
      job_cv_.notify_all();
    }
    in_parallel_region() = true;
    execute(*job);
    in_parallel_region() = false;
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(job->mutex);
      job->done_cv.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) == job->n;
      });
      error = job->error;
    }
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      job_.reset();
    }
    region_mutex_.unlock();
    if (error)
      std::rethrow_exception(error);
  }

  /// Enqueues @p task on the pool's background service thread — the fire-
  /// and-forget counterpart to the fork-join regions above, used by the
  /// asynchronous checkpoint writer to take disk I/O off the solver thread.
  /// Tasks run strictly FIFO on ONE dedicated thread (spawned lazily, and
  /// separate from the fork-join workers so a long disk write never steals
  /// a compute lane), so two async submissions never race each other: the
  /// ordering guarantee the multi-generation checkpoint ring's monotonic
  /// HEAD depends on. The destructor drains the queue before joining — an
  /// enqueued task always runs. A task must not throw; escaped exceptions
  /// are swallowed after a stderr note (there is no caller left to rethrow
  /// to).
  void async(std::function<void()> task)
  {
    std::lock_guard<std::mutex> lock(async_mutex_);
    async_queue_.push_back(std::move(task));
    if (!service_thread_.joinable())
      service_thread_ = std::thread([this] { service_loop(); });
    async_cv_.notify_one();
  }

  /// Elementwise parallel sweep: f(begin, end) over a contiguous split of
  /// [0, n) into at most n_threads() chunks. Small sweeps (and a serial
  /// pool) run inline as a single f(0, n). Only safe for operations whose
  /// result does not depend on the split (disjoint elementwise updates).
  template <typename F>
  void parallel_for(const std::size_t n, F &&f)
  {
    constexpr std::size_t grain = 1 << 16;
    if (n < 2 * grain || n_threads_ <= 1)
    {
      f(std::size_t(0), n);
      return;
    }
    const unsigned int n_chunks = static_cast<unsigned int>(
      std::min<std::size_t>(n_threads_, n / grain));
    const std::size_t q = n / n_chunks, r = n % n_chunks;
    run_chunks(n_chunks, [&](const unsigned int c) {
      const std::size_t begin = std::size_t(c) * q + std::min<std::size_t>(c, r);
      f(begin, begin + q + (c < r ? 1 : 0));
    });
  }

private:
  struct Job
  {
    const std::function<void(unsigned int)> *fn = nullptr;
    unsigned int n = 0;
    unsigned int workers_allowed = 0;
    std::atomic<unsigned int> next{0};
    std::atomic<unsigned int> done{0};
    std::atomic<unsigned int> participants{0};
    std::mutex mutex;               // guards error, pairs with done_cv
    std::condition_variable done_cv;
    std::exception_ptr error;
  };

  /// True while this thread executes chunks of some region — a nested
  /// run_chunks must run inline (region_mutex_ is not recursive).
  static bool &in_parallel_region()
  {
    thread_local bool flag = false;
    return flag;
  }

  /// Grabs and runs chunks until the job's counter is exhausted. The job's
  /// fn stays alive while done < n: the dispatching caller only returns from
  /// run_chunks once every chunk has reported completion.
  static void execute(Job &job)
  {
    while (true)
    {
      const unsigned int c = job.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.n)
        return;
      try
      {
        (*job.fn)(c);
      }
      catch (...)
      {
        std::lock_guard<std::mutex> lock(job.mutex);
        if (!job.error)
          job.error = std::current_exception();
      }
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n)
      {
        std::lock_guard<std::mutex> lock(job.mutex);
        job.done_cv.notify_all();
      }
    }
  }

  void service_loop()
  {
    while (true)
    {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(async_mutex_);
        async_cv_.wait(lock,
                       [&] { return async_stop_ || !async_queue_.empty(); });
        if (async_queue_.empty())
          return; // stop requested and the queue is drained
        task = std::move(async_queue_.front());
        async_queue_.pop_front();
      }
      try
      {
        task();
      }
      catch (const std::exception &e)
      {
        std::fprintf(stderr, "ThreadPool::async task threw: %s\n", e.what());
      }
      catch (...)
      {
        std::fprintf(stderr, "ThreadPool::async task threw\n");
      }
    }
  }

  void join_service_thread()
  {
    {
      std::lock_guard<std::mutex> lock(async_mutex_);
      async_stop_ = true;
      async_cv_.notify_all();
    }
    if (service_thread_.joinable())
      service_thread_.join();
    async_stop_ = false;
  }

  void worker_loop()
  {
    std::shared_ptr<Job> last;
    while (true)
    {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(job_mutex_);
        job_cv_.wait(lock, [&] { return stop_ || (job_ && job_ != last); });
        if (stop_)
          return;
        job = job_;
      }
      last = job;
      if (job->participants.fetch_add(1, std::memory_order_relaxed) >=
          job->workers_allowed)
        continue; // concurrency cap: sit this region out
      in_parallel_region() = true;
      execute(*job);
      in_parallel_region() = false;
    }
  }

  // callers: run_chunks (region_mutex_ held) and set_n_threads/destructor
  void ensure_workers()
  {
    if (!workers_.empty() || n_threads_ <= 1)
      return;
    workers_.reserve(n_threads_ - 1);
    for (unsigned int t = 0; t + 1 < n_threads_; ++t)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void join_workers()
  {
    if (workers_.empty())
      return;
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      stop_ = true;
      job_cv_.notify_all();
    }
    for (auto &w : workers_)
      w.join();
    workers_.clear();
    stop_ = false;
  }

  unsigned int n_threads_ = 1;
  std::atomic<unsigned int> external_{1};
  std::mutex region_mutex_; ///< serializes parallel regions
  std::mutex job_mutex_;    ///< guards job_ / stop_ for the wait loop
  std::condition_variable job_cv_;
  std::shared_ptr<Job> job_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  // background service thread (async()): FIFO queue, drained before join
  std::mutex async_mutex_;
  std::condition_variable async_cv_;
  std::deque<std::function<void()>> async_queue_;
  std::thread service_thread_;
  bool async_stop_ = false;
};

} // namespace dgflow::concurrency
