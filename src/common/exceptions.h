#pragma once

// Assertion macros. DGFLOW_ASSERT is active in all build types: the solver
// stack contains enough setup-time invariants that the cost is negligible
// compared to silent corruption. Hot inner loops use DGFLOW_DEBUG_ASSERT.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dgflow
{
[[noreturn]] inline void assertion_failure(const char *cond, const char *file,
                                           const int line,
                                           const std::string &msg)
{
  std::ostringstream ss;
  ss << "dgflow assertion failed: " << cond << "\n  at " << file << ":" << line
     << "\n  " << msg;
  throw std::runtime_error(ss.str());
}
} // namespace dgflow

#define DGFLOW_ASSERT(cond, msg)                                             \
  do                                                                          \
  {                                                                           \
    if (!(cond))                                                              \
    {                                                                         \
      std::ostringstream dgflow_msg_;                                         \
      dgflow_msg_ << msg;                                                     \
      ::dgflow::assertion_failure(#cond, __FILE__, __LINE__,                  \
                                  dgflow_msg_.str());                         \
    }                                                                         \
  } while (false)

#ifdef NDEBUG
#define DGFLOW_DEBUG_ASSERT(cond, msg)                                        \
  do                                                                          \
  {                                                                           \
  } while (false)
#else
#define DGFLOW_DEBUG_ASSERT(cond, msg) DGFLOW_ASSERT(cond, msg)
#endif
