#pragma once

// Fundamental index and size types used throughout dgflow.

#include <cstddef>
#include <cstdint>
#include <limits>

#ifndef DGFLOW_RESTRICT
#define DGFLOW_RESTRICT __restrict__
#endif

// Forced inlining for the thin fixed-extent kernel wrappers: the whole point
// of passing extents as template arguments is constant propagation into the
// runtime kernel bodies, which requires the wrapper to actually inline.
#ifndef DGFLOW_ALWAYS_INLINE
#if defined(__GNUC__) || defined(__clang__)
#define DGFLOW_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define DGFLOW_ALWAYS_INLINE inline
#endif
#endif

namespace dgflow
{
/// Spatial dimension. The solver is specialized to 3D, matching the paper.
constexpr unsigned int dim = 3;

/// Index of a cell, face, or vertex within the local mesh.
using index_t = std::uint32_t;

/// Global degree-of-freedom index.
using gdof_t = std::uint64_t;

/// Marker for "no entity".
constexpr index_t invalid_index = std::numeric_limits<index_t>::max();
constexpr gdof_t invalid_gdof = std::numeric_limits<gdof_t>::max();

/// Returns v^e for small non-negative integer exponents (constexpr-friendly).
constexpr std::size_t pow_int(const std::size_t v, const unsigned int e)
{
  std::size_t r = 1;
  for (unsigned int i = 0; i < e; ++i)
    r *= v;
  return r;
}

} // namespace dgflow
