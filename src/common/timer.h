#pragma once

// Wall-clock timing utilities. Benchmarks follow the paper's protocol of
// taking the best sample over a series of repetitions (Section 4).

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <map>
#include <string>

namespace dgflow
{
class Timer
{
public:
  Timer() { restart(); }

  void restart() { start_ = clock::now(); }

  /// Seconds since construction or last restart().
  double seconds() const
  {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs @p f @p n_repetitions times and returns the best wall time of a
/// single repetition in seconds.
inline double best_wall_time(const std::function<void()> &f,
                             const unsigned int n_repetitions = 5)
{
  double best = std::numeric_limits<double>::max();
  for (unsigned int r = 0; r < n_repetitions; ++r)
  {
    Timer t;
    f();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Accumulates named timing sections (used by the splitting solver to report
/// the per-substep cost breakdown).
class TimerTree
{
public:
  void add(const std::string &name, const double seconds)
  {
    auto &e = entries_[name];
    e.seconds += seconds;
    ++e.count;
  }

  struct Entry
  {
    double seconds = 0;
    unsigned long count = 0;
  };

  const std::map<std::string, Entry> &entries() const { return entries_; }

  double total() const
  {
    double t = 0;
    for (const auto &[name, e] : entries_)
      t += e.seconds;
    return t;
  }

  void clear() { entries_.clear(); }

private:
  std::map<std::string, Entry> entries_;
};

/// RAII section timer feeding a TimerTree.
class ScopedTimer
{
public:
  ScopedTimer(TimerTree &tree, std::string name)
    : tree_(tree), name_(std::move(name))
  {}

  ~ScopedTimer() { tree_.add(name_, timer_.seconds()); }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  TimerTree &tree_;
  std::string name_;
  Timer timer_;
};

} // namespace dgflow
