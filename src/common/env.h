#pragma once

// Strict environment-variable parsing. The fault-injection and vmpi timeout
// knobs steer failure-recovery behavior; a typo'd value silently parsed to 0
// (the atof/atoi behavior) turns "inject faults" into "inject nothing" and a
// test that asserts the recovery path fired into a vacuous pass. These
// helpers therefore fail fast: a set-but-malformed or out-of-range value
// throws EnvVarError with a message naming the variable, the offending value
// and the accepted range. Unset variables return the fallback as before.

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dgflow
{
/// A set environment variable failed to parse or lies outside its accepted
/// range; the message names the variable.
class EnvVarError : public std::runtime_error
{
public:
  using std::runtime_error::runtime_error;
};

namespace internal
{
[[noreturn]] inline void env_var_failure(const char *name, const char *value,
                                         const char *expected)
{
  std::ostringstream ss;
  ss << "invalid value '" << value << "' for environment variable " << name
     << ": expected " << expected;
  throw EnvVarError(ss.str());
}
} // namespace internal

/// Parses @p name as a real number in [lo, hi]; unset returns @p fallback,
/// malformed/out-of-range throws EnvVarError naming the variable.
inline double env_real(const char *name, const double fallback,
                       const double lo, const double hi)
{
  const char *v = std::getenv(name);
  if (!v)
    return fallback;
  errno = 0;
  char *end = nullptr;
  const double parsed = std::strtod(v, &end);
  std::ostringstream expected;
  expected << "a real number in [" << lo << ", " << hi << "]";
  if (end == v || *end != '\0' || errno == ERANGE || !std::isfinite(parsed) ||
      parsed < lo || parsed > hi)
    internal::env_var_failure(name, v, expected.str().c_str());
  return parsed;
}

/// Parses @p name as an integer in [lo, hi]; unset returns @p fallback,
/// malformed/out-of-range throws EnvVarError naming the variable.
inline long long env_integer(const char *name, const long long fallback,
                             const long long lo, const long long hi)
{
  const char *v = std::getenv(name);
  if (!v)
    return fallback;
  errno = 0;
  char *end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  std::ostringstream expected;
  expected << "an integer in [" << lo << ", " << hi << "]";
  if (end == v || *end != '\0' || errno == ERANGE || parsed < lo ||
      parsed > hi)
    internal::env_var_failure(name, v, expected.str().c_str());
  return parsed;
}

/// Parses @p name as one of @p n_choices named values (exact, case-sensitive
/// match) and returns the matched index; unset returns @p fallback. Any
/// other value throws EnvVarError naming the variable and listing the
/// accepted names - a typo'd backend or mode name must fail fast instead of
/// silently running the default configuration.
inline unsigned int env_choice(const char *name, const unsigned int fallback,
                               const char *const *choices,
                               const unsigned int n_choices)
{
  const char *v = std::getenv(name);
  if (!v)
    return fallback;
  for (unsigned int i = 0; i < n_choices; ++i)
    if (std::string(choices[i]) == v)
      return i;
  std::ostringstream expected;
  expected << "one of";
  for (unsigned int i = 0; i < n_choices; ++i)
    expected << (i == 0 ? " '" : ", '") << choices[i] << "'";
  internal::env_var_failure(name, v, expected.str().c_str());
}

/// Parses @p name as an unsigned 64-bit integer (hash seeds); unset returns
/// @p fallback, malformed throws EnvVarError naming the variable.
inline std::uint64_t env_uint64(const char *name, const std::uint64_t fallback)
{
  const char *v = std::getenv(name);
  if (!v)
    return fallback;
  errno = 0;
  char *end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || v[0] == '-')
    internal::env_var_failure(name, v, "an unsigned 64-bit integer");
  return parsed;
}

} // namespace dgflow
