#pragma once

// Low-level recovery hook interface. Iterative solvers (solvers/cg.h,
// solvers/chebyshev.h, multigrid/hybrid_multigrid.h) call the hook at
// iteration boundaries when one is attached; the distributed implementation
// (resilience/distributed_recovery.h: RecoveryContext) runs a fault-tolerant
// agreement collective there, so every rank of a distributed solve reaches
// the same live-or-dead verdict at the same logical point instead of
// deadlocking when a peer dies mid-iteration.
//
// The interface lives at the common layer so header-only solver code can
// carry a RecoveryHooks* without depending on the resilience or vmpi
// subsystems; serial solves simply leave it unset (the default) and pay
// nothing.

namespace dgflow
{
class RecoveryHooks
{
public:
  virtual ~RecoveryHooks() = default;

  /// Called at an iteration boundary (CG iteration, Chebyshev sweep batch,
  /// multigrid V-cycle) with this rank's local health: true when the local
  /// state is sound (finite residual, no timeout observed). Implementations
  /// agree across ranks and return normally when all ranks are healthy;
  /// when any rank is agreed dead or unsound they throw (vmpi::RankFailure)
  /// so the solve unwinds to the recovery driver on every survivor at the
  /// same iteration.
  virtual void at_iteration_boundary(bool local_ok) = 0;

  /// How often (in iterations) the solver should invoke
  /// at_iteration_boundary; agreement is a collective, so probing every
  /// iteration of a cheap smoother would dominate its cost. Solvers call
  /// the hook when `iteration % stride() == 0` (and always on the first
  /// iteration).
  virtual int stride() const { return 1; }
};

} // namespace dgflow
