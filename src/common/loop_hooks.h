#pragma once

// DoF-range hooks of the operator contract v2 (operators/README.md): a
// hooked operator application vmult(dst, src, pre, post) calls
//   pre(begin, end)   immediately before the loop first reads src[begin,end)
//   post(begin, end)  once the loop will neither read src[begin,end) nor
//                     write dst[begin,end) again
// over half-open local index ranges that tile the vector exactly once, so a
// solver can fold its BLAS-1 updates into the operator's cell loop while the
// range is still in cache (the merged solver kernels of Muething et al.).
// Hooks must only touch their own range; a hook that mutates src must leave
// values every later range consumer (including the ghost wire) should see.
//
// NoRangeHook marks the unhooked call: operators detect it at compile time
// and skip the scheduling work entirely, keeping plain vmult(dst, src)
// bit-identical to the pre-hook-era loops.

#include <cstddef>
#include <type_traits>

namespace dgflow
{
/// No-op hook; the default for both hook slots of a v2 operator vmult.
struct NoRangeHook
{
  void operator()(std::size_t, std::size_t) const {}
};

namespace internal
{
template <typename Hook>
inline constexpr bool is_no_hook_v =
  std::is_same_v<std::remove_cv_t<std::remove_reference_t<Hook>>,
                 NoRangeHook>;
} // namespace internal

} // namespace dgflow
