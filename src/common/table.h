#pragma once

// Minimal fixed-width table printer used by the benchmark harnesses to emit
// the rows/series of the paper's tables and figures.

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace dgflow
{
class Table
{
public:
  explicit Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
  {}

  template <typename... Args>
  void add_row(Args &&...args)
  {
    std::vector<std::string> row;
    (row.push_back(to_string(std::forward<Args>(args))), ...);
    rows_.push_back(std::move(row));
  }

  void print(std::ostream &out = std::cout) const
  {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto &row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());

    print_row(out, headers_, widths);
    std::size_t total = 1;
    for (const auto w : widths)
      total += w + 3;
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
      print_row(out, row, widths);
  }

  static std::string format(const double v, const int precision = 4)
  {
    std::ostringstream ss;
    ss << std::setprecision(precision) << v;
    return ss.str();
  }

  /// Scientific notation like the paper's tables (e.g. "3.5e5").
  static std::string sci(const double v, const int precision = 2)
  {
    std::ostringstream ss;
    ss << std::scientific << std::setprecision(precision - 1) << v;
    std::string s = ss.str();
    // compress exponent: 3.50e+05 -> 3.5e5
    const auto e = s.find('e');
    if (e != std::string::npos)
    {
      std::string mant = s.substr(0, e);
      int expo = std::stoi(s.substr(e + 1));
      s = mant + "e" + std::to_string(expo);
    }
    return s;
  }

private:
  template <typename T>
  static std::string to_string(T &&v)
  {
    if constexpr (std::is_convertible_v<T, std::string>)
      return std::string(std::forward<T>(v));
    else if constexpr (std::is_floating_point_v<std::decay_t<T>>)
      return format(v);
    else
      return std::to_string(v);
  }

  static void print_row(std::ostream &out, const std::vector<std::string> &row,
                        const std::vector<std::size_t> &widths)
  {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << ' ' << std::setw(static_cast<int>(widths[c])) << row[c] << "  ";
    out << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace dgflow
