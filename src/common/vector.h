#pragma once

// Solution vector with the BLAS-1 style operations needed by the Krylov and
// multigrid solvers. Templated on the scalar type: the outer conjugate
// gradient runs in double while the multigrid V-cycle runs in float
// (mixed-precision, paper Section 3.4); copy_and_convert() moves data across
// precisions.

#include <cmath>
#include <type_traits>
#include <utility>

#include "common/aligned_vector.h"
#include "common/exceptions.h"
#include "concurrency/thread_pool.h"

#ifndef DGFLOW_RESTRICT
#define DGFLOW_RESTRICT __restrict__
#endif

namespace dgflow
{
namespace internal
{
/// Deterministically blocked dot product: the vector is cut into at most 64
/// contiguous chunks of whole 4096-scalar blocks, each chunk accumulates
/// sequentially in double, and the partials are summed in ascending chunk
/// order. The blocking depends only on n — never on the thread count — so
/// the result is bitwise identical whether the chunks run serially or on the
/// pool. For n <= 4096 there is a single chunk and the result coincides with
/// the plain sequential sweep this replaces.
template <typename Number>
inline double chunked_dot(const Number *DGFLOW_RESTRICT a,
                          const Number *DGFLOW_RESTRICT b, const std::size_t n)
{
  constexpr std::size_t block = 4096;
  const std::size_t n_blocks = (n + block - 1) / block;
  if (n_blocks <= 1)
  {
    double s = 0;
    for (std::size_t i = 0; i < n; ++i)
      s += double(a[i]) * double(b[i]);
    return s;
  }
  const std::size_t n_chunks = std::min<std::size_t>(64, n_blocks);
  double partials[64];
  concurrency::ThreadPool::instance().run_chunks(
    static_cast<unsigned int>(n_chunks), [&](const unsigned int c) {
      const std::size_t begin = (n_blocks * c) / n_chunks * block;
      const std::size_t end =
        std::min(n, (n_blocks * (c + 1)) / n_chunks * block);
      double s = 0;
      for (std::size_t i = begin; i < end; ++i)
        s += double(a[i]) * double(b[i]);
      partials[c] = s;
    });
  double s = 0;
  for (std::size_t c = 0; c < n_chunks; ++c)
    s += partials[c];
  return s;
}
} // namespace internal

template <typename Number>
class Vector
{
public:
  using value_type = Number;

  Vector() = default;
  explicit Vector(const std::size_t n) { reinit(n); }

  void reinit(const std::size_t n, const bool fast = false)
  {
    data_.resize_without_init(n);
    if (!fast)
      data_.fill(Number(0));
  }

  /// Mirror another vector's layout (part of the vector-space concept the
  /// solvers are templated on: the distributed counterpart copies partition
  /// and ghost layout, a serial vector just the size).
  void reinit_like(const Vector &other, const bool fast = false)
  {
    reinit(other.size(), fast);
  }

  std::size_t size() const { return data_.size(); }

  /// Global index of local element 0 — always 0 for a serial vector; the
  /// distributed counterpart returns its owned-range offset. Lets code that
  /// needs globally reproducible index-dependent data (the Chebyshev
  /// eigenvalue seed) behave identically on both vector types.
  std::size_t first_local_index() const { return 0; }

  Number &operator()(const std::size_t i) { return data_[i]; }
  Number operator()(const std::size_t i) const { return data_[i]; }
  Number &operator[](const std::size_t i) { return data_[i]; }
  Number operator[](const std::size_t i) const { return data_[i]; }

  Number *data() { return data_.data(); }
  const Number *data() const { return data_.data(); }

  void operator=(const Number s) { data_.fill(s); }

  /// this += a * x
  void add(const Number a, const Vector &x)
  {
    DGFLOW_DEBUG_ASSERT(x.size() == size(), "size mismatch");
    Number *DGFLOW_RESTRICT d = data_.data();
    const Number *DGFLOW_RESTRICT xd = x.data_.data();
    concurrency::ThreadPool::instance().parallel_for(
      size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] += a * xd[i];
      });
  }

  /// this = s * this + a * x
  void sadd(const Number s, const Number a, const Vector &x)
  {
    DGFLOW_DEBUG_ASSERT(x.size() == size(), "size mismatch");
    Number *DGFLOW_RESTRICT d = data_.data();
    const Number *DGFLOW_RESTRICT xd = x.data_.data();
    concurrency::ThreadPool::instance().parallel_for(
      size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] = s * d[i] + a * xd[i];
      });
  }

  /// this = a * x
  void equ(const Number a, const Vector &x)
  {
    DGFLOW_DEBUG_ASSERT(x.size() == size(), "size mismatch");
    Number *DGFLOW_RESTRICT d = data_.data();
    const Number *DGFLOW_RESTRICT xd = x.data_.data();
    concurrency::ThreadPool::instance().parallel_for(
      size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] = a * xd[i];
      });
  }

  /// this = a * x + b * y
  void equ(const Number a, const Vector &x, const Number b, const Vector &y)
  {
    DGFLOW_DEBUG_ASSERT(x.size() == size() && y.size() == size(),
                        "size mismatch");
    Number *DGFLOW_RESTRICT d = data_.data();
    const Number *DGFLOW_RESTRICT xd = x.data_.data();
    const Number *DGFLOW_RESTRICT yd = y.data_.data();
    concurrency::ThreadPool::instance().parallel_for(
      size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] = a * xd[i] + b * yd[i];
      });
  }

  void scale(const Number a)
  {
    Number *DGFLOW_RESTRICT d = data_.data();
    concurrency::ThreadPool::instance().parallel_for(
      size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] *= a;
      });
  }

  /// Pointwise multiply: this[i] *= x[i] (Jacobi preconditioning).
  void scale_pointwise(const Vector &x)
  {
    DGFLOW_DEBUG_ASSERT(x.size() == size(), "size mismatch");
    Number *DGFLOW_RESTRICT d = data_.data();
    const Number *DGFLOW_RESTRICT xd = x.data_.data();
    concurrency::ThreadPool::instance().parallel_for(
      size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] *= xd[i];
      });
  }

  Number dot(const Vector &x) const
  {
    DGFLOW_DEBUG_ASSERT(x.size() == size(), "size mismatch");
    // Accumulate in double regardless of storage precision (keeps the CG
    // orthogonality usable when Number = float) with the deterministically
    // blocked reduction: bitwise identical at any thread count.
    return Number(internal::chunked_dot(data_.data(), x.data_.data(), size()));
  }

  Number norm_sqr() const { return dot(*this); }

  Number l2_norm() const { return std::sqrt(dot(*this)); }

  Number linfty_norm() const
  {
    Number m = 0;
    for (std::size_t i = 0; i < size(); ++i)
      m = std::max(m, std::abs(data_[i]));
    return m;
  }

  /// Convert-copy from a vector of another precision.
  template <typename Number2>
  void copy_and_convert(const Vector<Number2> &x)
  {
    data_.resize_without_init(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
      data_[i] = Number(x[i]);
  }

  void swap(Vector &other) { std::swap(data_, other.data_); }

  std::size_t memory_consumption() const
  {
    return data_.memory_consumption();
  }

private:
  AlignedVector<Number> data_;
};

/// Detects vectors with distributed-memory ghost machinery (the vmpi
/// DistributedVector) without this header knowing the type: any vector
/// exposing update_ghost_values_start() qualifies. Solvers and operators
/// branch on it with if constexpr, which keeps vmpi out of the serial
/// build's dependencies.
template <typename VectorType, typename = void>
struct is_distributed_vector : std::false_type
{
};

template <typename VectorType>
struct is_distributed_vector<
  VectorType,
  std::void_t<decltype(std::declval<VectorType &>().update_ghost_values_start())>>
  : std::true_type
{
};

template <typename VectorType>
inline constexpr bool is_distributed_vector_v =
  is_distributed_vector<VectorType>::value;

} // namespace dgflow
