#pragma once

// Small fixed-size tensors over an arbitrary scalar type (double, float, or
// VectorizedArray) used at quadrature points: 3-vectors and 3x3 matrices.

#include <array>
#include <cmath>

#include "common/types.h"

namespace dgflow
{
template <typename T>
struct Tensor1
{
  T v[dim];

  Tensor1() : v{T(0), T(0), T(0)} {}
  Tensor1(const T &x, const T &y, const T &z) : v{x, y, z} {}

  T &operator[](const unsigned int i) { return v[i]; }
  const T &operator[](const unsigned int i) const { return v[i]; }

  Tensor1 &operator+=(const Tensor1 &o)
  {
    for (unsigned int i = 0; i < dim; ++i)
      v[i] += o.v[i];
    return *this;
  }
  Tensor1 &operator-=(const Tensor1 &o)
  {
    for (unsigned int i = 0; i < dim; ++i)
      v[i] -= o.v[i];
    return *this;
  }
  Tensor1 &operator*=(const T &s)
  {
    for (unsigned int i = 0; i < dim; ++i)
      v[i] *= s;
    return *this;
  }
};

template <typename T>
inline Tensor1<T> operator+(Tensor1<T> a, const Tensor1<T> &b)
{
  return a += b;
}
template <typename T>
inline Tensor1<T> operator-(Tensor1<T> a, const Tensor1<T> &b)
{
  return a -= b;
}
template <typename T, typename S>
inline Tensor1<T> operator*(const S &s, Tensor1<T> a)
{
  for (unsigned int i = 0; i < dim; ++i)
    a[i] = T(s) * a[i];
  return a;
}
template <typename T, typename S>
inline Tensor1<T> operator*(Tensor1<T> a, const S &s)
{
  return T(s) * a;
}
template <typename T>
inline Tensor1<T> operator-(const Tensor1<T> &a)
{
  return Tensor1<T>(-a[0], -a[1], -a[2]);
}

template <typename T>
inline T dot(const Tensor1<T> &a, const Tensor1<T> &b)
{
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

template <typename T>
inline Tensor1<T> cross(const Tensor1<T> &a, const Tensor1<T> &b)
{
  return Tensor1<T>(a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
                    a[0] * b[1] - a[1] * b[0]);
}

/// 3x3 second-order tensor, row-major: v[i][j] = dA_i/dx_j convention.
template <typename T>
struct Tensor2
{
  T v[dim][dim];

  Tensor2()
  {
    for (unsigned int i = 0; i < dim; ++i)
      for (unsigned int j = 0; j < dim; ++j)
        v[i][j] = T(0);
  }

  T *operator[](const unsigned int i) { return v[i]; }
  const T *operator[](const unsigned int i) const { return v[i]; }

  Tensor2 &operator+=(const Tensor2 &o)
  {
    for (unsigned int i = 0; i < dim; ++i)
      for (unsigned int j = 0; j < dim; ++j)
        v[i][j] += o.v[i][j];
    return *this;
  }
};

/// Matrix-vector product A x.
template <typename T>
inline Tensor1<T> apply(const Tensor2<T> &A, const Tensor1<T> &x)
{
  Tensor1<T> y;
  for (unsigned int i = 0; i < dim; ++i)
    y[i] = A[i][0] * x[0] + A[i][1] * x[1] + A[i][2] * x[2];
  return y;
}

/// Transposed matrix-vector product A^T x.
template <typename T>
inline Tensor1<T> apply_transpose(const Tensor2<T> &A, const Tensor1<T> &x)
{
  Tensor1<T> y;
  for (unsigned int i = 0; i < dim; ++i)
    y[i] = A[0][i] * x[0] + A[1][i] * x[1] + A[2][i] * x[2];
  return y;
}

template <typename T>
inline T determinant(const Tensor2<T> &A)
{
  return A[0][0] * (A[1][1] * A[2][2] - A[1][2] * A[2][1]) -
         A[0][1] * (A[1][0] * A[2][2] - A[1][2] * A[2][0]) +
         A[0][2] * (A[1][0] * A[2][1] - A[1][1] * A[2][0]);
}

template <typename T>
inline Tensor2<T> invert(const Tensor2<T> &A)
{
  const T det = determinant(A);
  const T inv_det = T(1.) / det;
  Tensor2<T> B;
  B[0][0] = (A[1][1] * A[2][2] - A[1][2] * A[2][1]) * inv_det;
  B[0][1] = (A[0][2] * A[2][1] - A[0][1] * A[2][2]) * inv_det;
  B[0][2] = (A[0][1] * A[1][2] - A[0][2] * A[1][1]) * inv_det;
  B[1][0] = (A[1][2] * A[2][0] - A[1][0] * A[2][2]) * inv_det;
  B[1][1] = (A[0][0] * A[2][2] - A[0][2] * A[2][0]) * inv_det;
  B[1][2] = (A[0][2] * A[1][0] - A[0][0] * A[1][2]) * inv_det;
  B[2][0] = (A[1][0] * A[2][1] - A[1][1] * A[2][0]) * inv_det;
  B[2][1] = (A[0][1] * A[2][0] - A[0][0] * A[2][1]) * inv_det;
  B[2][2] = (A[0][0] * A[1][1] - A[0][1] * A[1][0]) * inv_det;
  return B;
}

template <typename T>
inline Tensor2<T> transpose(const Tensor2<T> &A)
{
  Tensor2<T> B;
  for (unsigned int i = 0; i < dim; ++i)
    for (unsigned int j = 0; j < dim; ++j)
      B[i][j] = A[j][i];
  return B;
}

/// Simple double-precision point type for mesh geometry.
using Point = Tensor1<double>;

inline double norm(const Point &p) { return std::sqrt(dot(p, p)); }

inline Point normalize(const Point &p)
{
  const double n = norm(p);
  return Point(p[0] / n, p[1] / n, p[2] / n);
}

} // namespace dgflow
