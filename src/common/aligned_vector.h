#pragma once

// A std::vector-like container with 64-byte aligned storage, suitable for
// SIMD loads/stores of VectorizedArray elements. Unlike std::vector it does
// not value-initialize on resize of trivially-constructible types, which
// matters for large solution vectors (first-touch cost).

#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dgflow
{
template <typename T>
class AlignedVector
{
  static_assert(std::is_trivially_copyable_v<T> ||
                  std::is_nothrow_move_constructible_v<T>,
                "AlignedVector requires trivially copyable or nothrow "
                "movable types");

public:
  static constexpr std::size_t alignment = 64;

  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  AlignedVector() = default;

  explicit AlignedVector(const std::size_t n) { resize(n); }

  AlignedVector(const std::size_t n, const T &init) { resize(n, init); }

  AlignedVector(const AlignedVector &other) { *this = other; }

  AlignedVector(AlignedVector &&other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      capacity_(std::exchange(other.capacity_, 0))
  {}

  AlignedVector &operator=(const AlignedVector &other)
  {
    if (this == &other)
      return *this;
    resize_without_init(other.size_);
    if constexpr (std::is_trivially_copyable_v<T>)
      std::memcpy(static_cast<void *>(data_), other.data_, size_ * sizeof(T));
    else
      for (std::size_t i = 0; i < size_; ++i)
        data_[i] = other.data_[i];
    return *this;
  }

  AlignedVector &operator=(AlignedVector &&other) noexcept
  {
    if (this == &other)
      return *this;
    destroy();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    capacity_ = std::exchange(other.capacity_, 0);
    return *this;
  }

  ~AlignedVector() { destroy(); }

  void clear()
  {
    destroy();
    data_ = nullptr;
    size_ = capacity_ = 0;
  }

  /// Resize; new elements of non-trivial types are default-constructed, and
  /// of trivial types left uninitialized.
  void resize_without_init(const std::size_t n)
  {
    if (n > capacity_)
      reallocate(n);
    if constexpr (!std::is_trivially_default_constructible_v<T>)
      for (std::size_t i = size_; i < n; ++i)
        new (data_ + i) T();
    if constexpr (!std::is_trivially_destructible_v<T>)
      for (std::size_t i = n; i < size_; ++i)
        data_[i].~T();
    size_ = n;
  }

  void resize(const std::size_t n) { resize(n, T()); }

  void resize(const std::size_t n, const T &init)
  {
    const std::size_t old_size = size_;
    resize_without_init(n);
    if constexpr (std::is_trivially_default_constructible_v<T>)
      for (std::size_t i = old_size; i < n; ++i)
        data_[i] = init;
    else if (!(init == T()))
      for (std::size_t i = old_size; i < n; ++i)
        data_[i] = init;
  }

  /// Resize to @p n elements and set every element (old and new) to
  /// @p value. Unlike resize(n, value), which only initializes elements
  /// beyond the old size, this guarantees no stale state survives a
  /// same-size or shrinking resize.
  void assign(const std::size_t n, const T &value)
  {
    resize_without_init(n);
    fill(value);
  }

  void reserve(const std::size_t n)
  {
    if (n > capacity_)
      reallocate(n);
  }

  void push_back(const T &v)
  {
    if (size_ == capacity_)
      reallocate(capacity_ == 0 ? 16 : 2 * capacity_);
    new (data_ + size_) T(v);
    ++size_;
  }

  void fill(const T &v)
  {
    for (std::size_t i = 0; i < size_; ++i)
      data_[i] = v;
  }

  T &operator[](const std::size_t i) { return data_[i]; }
  const T &operator[](const std::size_t i) const { return data_[i]; }

  T *data() { return data_; }
  const T *data() const { return data_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  std::size_t memory_consumption() const { return capacity_ * sizeof(T); }

private:
  void reallocate(const std::size_t new_capacity)
  {
    T *new_data = static_cast<T *>(
      ::operator new(new_capacity * sizeof(T), std::align_val_t(alignment)));
    if constexpr (std::is_trivially_copyable_v<T>)
    {
      if (size_ > 0)
        std::memcpy(static_cast<void *>(new_data), data_, size_ * sizeof(T));
    }
    else
      for (std::size_t i = 0; i < size_; ++i)
      {
        new (new_data + i) T(std::move(data_[i]));
        data_[i].~T();
      }
    if (data_ != nullptr)
      ::operator delete(data_, std::align_val_t(alignment));
    data_ = new_data;
    capacity_ = new_capacity;
  }

  void destroy()
  {
    if constexpr (!std::is_trivially_destructible_v<T>)
      for (std::size_t i = 0; i < size_; ++i)
        data_[i].~T();
    if (data_ != nullptr)
      ::operator delete(data_, std::align_val_t(alignment));
  }

  T *data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

} // namespace dgflow
