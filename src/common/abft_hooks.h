#pragma once

// Low-level ABFT (algorithm-based fault tolerance) hook interfaces, the SDC
// analogue of common/recovery_hooks.h: header-only solver code carries these
// pointers without depending on the resilience subsystem.
//
//  * AbftInjector — deterministic compute-side fault injection. Solvers call
//    inject() at iteration boundaries with raw views of their Krylov state;
//    the resilience-layer implementation (resilience::FaultPlan) flips a
//    seeded bit when the (artifact, step, rank) triple matches its plan, so
//    every SDC detector is testable from the environment. The default of
//    nullptr costs nothing.
//
//  * AbftScrubber — sidecar-checksum verification. Solvers call scrub() at
//    the same boundaries; the implementation (resilience::ArtifactGuard)
//    re-checksums its protected setup artifacts (geometry batches, AMG
//    levels, ...) and rebuilds any that were corrupted, returning how many
//    it repaired so the solver can roll back to its last validated snapshot.

#include <cstddef>

namespace dgflow
{
class AbftInjector
{
public:
  virtual ~AbftInjector() = default;

  /// May corrupt @p bytes bytes at @p data (e.g. flip one seeded bit).
  /// @p artifact names the payload class ("krylov_x", "krylov_r",
  /// "krylov_p", "vector", ...), @p step the caller's iteration/step counter
  /// and @p rank the owning logical rank (0 for serial payloads); together
  /// they make the injection point deterministic regardless of thread
  /// interleaving.
  virtual void inject(const char *artifact, unsigned long long step, int rank,
                      void *data, std::size_t bytes) = 0;
};

class AbftScrubber
{
public:
  virtual ~AbftScrubber() = default;

  /// Verifies every protected artifact and rebuilds the corrupt ones;
  /// returns the number of artifacts rebuilt (0 = all checksums matched).
  virtual unsigned int scrub() = 0;
};

} // namespace dgflow
