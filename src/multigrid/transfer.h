#pragma once

// Level-transfer operators of the hybrid multigrid hierarchy (paper Fig. 5):
//  - polynomial coarsening between DG spaces on the same mesh (matrix-free,
//    tensorized 1D nodal interpolation, restriction = transpose),
//  - DG(1) <-> continuous Q1 on the same mesh ("c-transfer"),
//  - continuous Q1 between globally coarsened meshes ("h-transfer").
// The latter two are precomputed sparse operators including hanging-node
// constraint expansion; Dirichlet rows/columns are zeroed so level
// corrections never touch constrained boundary values.

#include "amg/sparse_matrix.h"
#include "fem/polynomial.h"
#include "matrixfree/matrix_free.h"
#include "operators/cfe_space.h"

namespace dgflow
{
/// Abstract transfer between two consecutive levels.
template <typename Number>
class TransferBase
{
public:
  virtual ~TransferBase() = default;
  /// coarse -> fine (overwrite)
  virtual void prolongate(Vector<Number> &fine,
                          const Vector<Number> &coarse) const = 0;
  /// fine -> coarse (overwrite), transpose of prolongate
  virtual void restrict_down(Vector<Number> &coarse,
                             const Vector<Number> &fine) const = 0;
};

/// Matrix-free polynomial transfer between two DG spaces on one mesh.
template <typename Number>
class DGPTransfer : public TransferBase<Number>
{
public:
  DGPTransfer(const MatrixFree<Number> &mf, const unsigned int space_fine,
              const unsigned int space_coarse)
    : mf_(mf), nf_(mf.degree(space_fine) + 1),
      nc_(mf.degree(space_coarse) + 1), space_f_(space_fine),
      space_c_(space_coarse)
  {
    // 1D nodal interpolation: coarse basis evaluated at fine nodes
    const std::vector<double> nodes_f = gauss_quadrature(nf_).points;
    const LagrangeBasis basis_c(gauss_quadrature(nc_).points);
    P1d_.resize(nf_ * nc_);
    for (unsigned int i = 0; i < nf_; ++i)
      for (unsigned int j = 0; j < nc_; ++j)
        P1d_[i * nc_ + j] = Number(basis_c.value(j, nodes_f[i]));
  }

  void prolongate(Vector<Number> &fine,
                  const Vector<Number> &coarse) const override
  {
    fine.reinit(mf_.n_dofs(space_f_, 1), true);
    prolongate_cells(fine.data(), coarse.data(), mf_.n_cells());
  }

  void restrict_down(Vector<Number> &coarse,
                     const Vector<Number> &fine) const override
  {
    coarse.reinit(mf_.n_dofs(space_c_, 1), true);
    restrict_cells(coarse.data(), fine.data(), mf_.n_cells());
  }

  /// Cell-range variant for distributed levels: fine/coarse point at dense
  /// per-cell dof blocks of n_cells consecutive cells (the owned range of a
  /// DistributedVector). The transfer is cell-local — no communication.
  void prolongate_cells(Number *fine, const Number *coarse,
                        const index_t n_cells) const
  {
    const std::size_t npc_f = nf_ * nf_ * nf_, npc_c = nc_ * nc_ * nc_;
    const unsigned int mx = std::max(nf_, nc_);
    std::vector<Number> t1(mx * mx * mx), t2(mx * mx * mx);
    for (index_t c = 0; c < n_cells; ++c)
    {
      const Number *src = coarse + c * npc_c;
      Number *dst = fine + c * npc_f;
      apply_matrix_1d<false, false>(P1d_.data(), nf_, nc_, src, t1.data(), 0,
                                    {{nc_, nc_, nc_}});
      apply_matrix_1d<false, false>(P1d_.data(), nf_, nc_, t1.data(),
                                    t2.data(), 1, {{nf_, nc_, nc_}});
      apply_matrix_1d<false, false>(P1d_.data(), nf_, nc_, t2.data(), dst, 2,
                                    {{nf_, nf_, nc_}});
    }
  }

  void restrict_cells(Number *coarse, const Number *fine,
                      const index_t n_cells) const
  {
    const std::size_t npc_f = nf_ * nf_ * nf_, npc_c = nc_ * nc_ * nc_;
    const unsigned int mx = std::max(nf_, nc_);
    std::vector<Number> t1(mx * mx * mx), t2(mx * mx * mx);
    for (index_t c = 0; c < n_cells; ++c)
    {
      const Number *src = fine + c * npc_f;
      Number *dst = coarse + c * npc_c;
      apply_matrix_1d<true, false>(P1d_.data(), nf_, nc_, src, t1.data(), 2,
                                   {{nf_, nf_, nf_}});
      apply_matrix_1d<true, false>(P1d_.data(), nf_, nc_, t1.data(), t2.data(),
                                   1, {{nf_, nf_, nc_}});
      apply_matrix_1d<true, false>(P1d_.data(), nf_, nc_, t2.data(), dst, 0,
                                   {{nf_, nc_, nc_}});
    }
  }

private:
  const MatrixFree<Number> &mf_;
  unsigned int nf_, nc_;
  unsigned int space_f_, space_c_;
  std::vector<Number> P1d_;
};

/// Sparse transfer in the level precision, built from a double CSR matrix.
template <typename Number>
class SparseTransfer : public TransferBase<Number>
{
public:
  explicit SparseTransfer(const SparseMatrix &P)
  {
    const std::size_t nr = P.n_rows();
    n_rows_ = nr;
    n_cols_ = P.n_cols();
    row_ptr_.assign(P.row_ptr(), P.row_ptr() + nr + 1);
    col_idx_.assign(P.col_idx(), P.col_idx() + P.n_nonzeros());
    values_.resize(P.n_nonzeros());
    for (std::size_t i = 0; i < values_.size(); ++i)
      values_[i] = Number(P.values()[i]);
  }

  void prolongate(Vector<Number> &fine,
                  const Vector<Number> &coarse) const override
  {
    fine.reinit(n_rows_, true);
    for (std::size_t r = 0; r < n_rows_; ++r)
    {
      Number sum = 0;
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
        sum += values_[k] * coarse[col_idx_[k]];
      fine[r] = sum;
    }
  }

  void restrict_down(Vector<Number> &coarse,
                     const Vector<Number> &fine) const override
  {
    coarse.reinit(n_cols_, true);
    coarse = Number(0);
    for (std::size_t r = 0; r < n_rows_; ++r)
    {
      const Number v = fine[r];
      if (v == Number(0))
        continue;
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
        coarse[col_idx_[k]] += values_[k] * v;
    }
  }

  std::size_t n_rows() const { return n_rows_; }
  std::size_t n_cols() const { return n_cols_; }

  /// Row-range variants for distributed levels where the fine side is
  /// row-partitioned (the DG side of the c-transfer: rows are cell-local
  /// DoFs, so a rank's owned cells are the contiguous row range
  /// [row_begin, row_end)) and the coarse side is a replicated full vector.
  /// fine_rows points at local row row_begin.
  void prolongate_rows(Number *fine_rows, const Vector<Number> &coarse,
                       const std::size_t row_begin,
                       const std::size_t row_end) const
  {
    for (std::size_t r = row_begin; r < row_end; ++r)
    {
      Number sum = 0;
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
        sum += values_[k] * coarse[col_idx_[k]];
      fine_rows[r - row_begin] = sum;
    }
  }

  /// Accumulates the owned rows' contributions into the (caller-zeroed)
  /// replicated coarse vector; the caller allreduce-sums across ranks.
  void restrict_down_rows(Vector<Number> &coarse, const Number *fine_rows,
                          const std::size_t row_begin,
                          const std::size_t row_end) const
  {
    for (std::size_t r = row_begin; r < row_end; ++r)
    {
      const Number v = fine_rows[r - row_begin];
      if (v == Number(0))
        continue;
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
        coarse[col_idx_[k]] += values_[k] * v;
    }
  }

private:
  std::size_t n_rows_ = 0, n_cols_ = 0;
  std::vector<std::size_t> row_ptr_, col_idx_;
  std::vector<Number> values_;
};

/// Builds the c-transfer: prolongation from the continuous Q1 space to the
/// DG(1) space on the same mesh (rows = DG dofs, 8 per cell at Gauss nodes).
inline SparseMatrix build_c_transfer(const Mesh &mesh, const CFESpace &cfe)
{
  DGFLOW_ASSERT(cfe.degree == 1, "c-transfer targets the Q1 space");
  // Q1 basis {1-x, x} evaluated at the two Gauss nodes of the DG(1) space
  const double g0 = gauss_quadrature(2).points[0];
  const double node_x[2] = {g0, 1. - g0};
  std::vector<SparseMatrix::Triplet> t;
  const index_t n_cells = mesh.n_active_cells();
  for (index_t c = 0; c < n_cells; ++c)
    for (unsigned int node = 0; node < 8; ++node)
    {
      const std::size_t row = 8 * std::size_t(c) + node;
      const double x = node_x[node & 1], y = node_x[(node >> 1) & 1],
                   z = node_x[(node >> 2) & 1];
      for (unsigned int corner = 0; corner < 8; ++corner)
      {
        const double wx = (corner & 1) ? x : 1. - x;
        const double wy = ((corner >> 1) & 1) ? y : 1. - y;
        const double wz = ((corner >> 2) & 1) ? z : 1. - z;
        const double w = wx * wy * wz;
        if (w == 0)
          continue;
        const std::uint32_t e =
          cfe.cell_entries[8 * std::size_t(c) + corner];
        if (CFESpace::is_constrained(e))
        {
          for (const auto &ce : cfe.constraints[e & ~CFESpace::constraint_bit])
            if (!cfe.dirichlet[ce.dof])
              t.push_back({row, ce.dof, w * ce.weight});
        }
        else if (!cfe.dirichlet[e])
          t.push_back({row, e, w});
      }
    }
  return SparseMatrix::from_triplets(8 * std::size_t(n_cells), cfe.n_dofs,
                                     std::move(t));
}

/// Builds the h-transfer: prolongation from the Q1 space on the coarsened
/// mesh to the Q1 space on the fine mesh (global coarsening, one level).
inline SparseMatrix build_h_transfer(const Mesh &fine_mesh,
                                     const CFESpace &fine,
                                     const Mesh &coarse_mesh,
                                     const CFESpace &coarse)
{
  std::vector<SparseMatrix::Triplet> t;
  std::vector<char> row_done(fine.n_dofs, 0);

  auto add_coarse_entry = [&](const std::size_t row, const std::uint32_t e,
                              const double w) {
    if (w == 0.)
      return;
    if (CFESpace::is_constrained(e))
    {
      for (const auto &ce : coarse.constraints[e & ~CFESpace::constraint_bit])
        if (!coarse.dirichlet[ce.dof])
          t.push_back({row, ce.dof, w * ce.weight});
    }
    else if (!coarse.dirichlet[e])
      t.push_back({row, e, w});
  };

  for (index_t c = 0; c < fine_mesh.n_active_cells(); ++c)
  {
    const TreeCoord &tc = fine_mesh.cell(c);
    // the coarse mesh contains either the same cell or the parent
    index_t coarse_cell =
      coarse_mesh.find_cell(tc.tree, tc.level, {{tc.x, tc.y, tc.z}});
    bool is_parent = false;
    if (coarse_cell == invalid_index && tc.level > 0)
    {
      coarse_cell = coarse_mesh.find_cell(
        tc.tree, tc.level - 1, {{tc.x >> 1, tc.y >> 1, tc.z >> 1}});
      is_parent = true;
    }
    DGFLOW_ASSERT(coarse_cell != invalid_index,
                  "no coarse cell found for fine cell " << c);

    for (unsigned int v = 0; v < 8; ++v)
    {
      const std::uint32_t fe = fine.cell_entries[8 * std::size_t(c) + v];
      if (CFESpace::is_constrained(fe))
        continue; // constrained fine vertices are interpolated on the fly
      const std::size_t row = fe;
      if (row_done[row] || fine.dirichlet[row])
      {
        row_done[row] = 1;
        continue;
      }
      row_done[row] = 1;

      if (!is_parent)
      {
        add_coarse_entry(row, coarse.cell_entries[8 * std::size_t(coarse_cell) + v],
                         1.);
        continue;
      }
      // position of the fine vertex within the parent cell, in halves
      const unsigned int px = (tc.x & 1) + (v & 1);
      const unsigned int py = (tc.y & 1) + ((v >> 1) & 1);
      const unsigned int pz = (tc.z & 1) + ((v >> 2) & 1);
      for (unsigned int corner = 0; corner < 8; ++corner)
      {
        const double wx = (corner & 1) ? px / 2. : 1. - px / 2.;
        const double wy = ((corner >> 1) & 1) ? py / 2. : 1. - py / 2.;
        const double wz = ((corner >> 2) & 1) ? pz / 2. : 1. - pz / 2.;
        add_coarse_entry(
          row, coarse.cell_entries[8 * std::size_t(coarse_cell) + corner],
          wx * wy * wz);
      }
    }
  }
  return SparseMatrix::from_triplets(fine.n_dofs, coarse.n_dofs, std::move(t));
}

} // namespace dgflow
