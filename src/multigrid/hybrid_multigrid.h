#pragma once

// Hybrid geometric-polynomial-algebraic multigrid preconditioner for the DG
// Laplacian (paper Section 3.4, Algorithm 1, Figure 5):
//
//   DG(k) -p-> DG(k/2) -p-> ... -p-> DG(1) -c-> CFE Q1 -h-> Q1 on coarsened
//   meshes (global coarsening) ... -> smoothed-aggregation AMG coarse solve
//
// All level smoothing (Chebyshev degree 3 with point-Jacobi) and transfers
// run in single precision ("the V-cycle is run in single precision to
// improve the throughput of multigrid preconditioning"); the algebraic
// coarse solve runs in double, matching the paper's BoomerAMG setup with two
// V-cycles of one symmetric Gauss-Seidel sweep each.

#include <memory>

#include "common/timer.h"
#include "instrumentation/profiler.h"

#include "amg/amg.h"
#include "multigrid/transfer.h"
#include "operators/cfe_laplace_operator.h"
#include "operators/laplace_operator.h"
#include "solvers/chebyshev.h"
#include "vmpi/distributed_vector.h"

namespace dgflow
{
template <typename LevelNumber = float>
class HybridMultigrid
{
public:
  using LVec = Vector<LevelNumber>;
  using DVec = vmpi::DistributedVector<LevelNumber>;

  /// Range-hook signature of the type-erased hooked application.
  using RangeFn = std::function<void(std::size_t, std::size_t)>;

  /// Type-erased level operator handed to the Chebyshev smoother. When the
  /// underlying operator supports the contract-v2 hooked cell loop,
  /// apply_hooked forwards the solver hooks into it (the DG levels); when
  /// empty, the hooked vmult degrades to a whole-range pre before / post
  /// after the plain application, which keeps the fused smoother correct
  /// (merely unfused) on CFE/AMG-backed levels.
  struct AnyOperator
  {
    std::function<void(LVec &, const LVec &)> apply;
    std::function<void(LVec &, const LVec &, const RangeFn &, const RangeFn &)>
      apply_hooked;

    void vmult(LVec &dst, const LVec &src) const { apply(dst, src); }

    template <typename PreFn, typename PostFn>
    void vmult(LVec &dst, const LVec &src, PreFn &&pre, PostFn &&post) const
    {
      if (apply_hooked)
      {
        apply_hooked(dst, src, RangeFn(std::forward<PreFn>(pre)),
                     RangeFn(std::forward<PostFn>(post)));
        return;
      }
      if constexpr (!internal::is_no_hook_v<PreFn>)
        pre(0, src.size());
      apply(dst, src);
      if constexpr (!internal::is_no_hook_v<PostFn>)
        post(0, dst.size());
    }
  };

  /// Distributed counterpart for the DG levels of a distributed V-cycle.
  struct AnyDistOperator
  {
    std::function<void(DVec &, const DVec &)> apply;
    std::function<void(DVec &, const DVec &, const RangeFn &, const RangeFn &)>
      apply_hooked;

    void vmult(DVec &dst, const DVec &src) const { apply(dst, src); }

    template <typename PreFn, typename PostFn>
    void vmult(DVec &dst, const DVec &src, PreFn &&pre, PostFn &&post) const
    {
      if (apply_hooked)
      {
        apply_hooked(dst, src, RangeFn(std::forward<PreFn>(pre)),
                     RangeFn(std::forward<PostFn>(post)));
        return;
      }
      if constexpr (!internal::is_no_hook_v<PreFn>)
        pre(0, src.size());
      apply(dst, src);
      if constexpr (!internal::is_no_hook_v<PostFn>)
        post(0, dst.size());
    }
  };

  struct Options
  {
    bool h_coarsening = true; ///< build globally coarsened Q1 levels
    unsigned int amg_cycles = 2;
    /// run the AMG coarse solve in single precision (float value mirrors of
    /// every AMG level, coarsest dense LU still double): with float level
    /// vectors this removes the double round-trip at the AMG boundary. Off
    /// by default — the paper's configuration keeps the coarse solve double.
    bool sp_amg = false;
    ChebyshevData smoother;
    AMG::Options amg;
    unsigned int geometry_degree = 2;
    double penalty_safety = 2.;
    /// coarser DG levels inherit the finest degree's penalty scale
    /// (k_top+1)^2 instead of their own (k+1)^2: the level operators then
    /// match the Galerkin-restricted fine operator on jump modes
    bool inherit_fine_penalty = true;
    /// cell partition for distributed solves (forwarded to the fine
    /// MatrixFree so batches split at rank boundaries); empty = serial.
    /// Pass the same values to every rank's instance — the hierarchy is
    /// replicated, only the V-cycle work is partitioned.
    std::vector<int> rank_of_cell;
    int n_ranks = 1;
    /// thread-chunk count forwarded to every level's MatrixFree
    /// (AdditionalData::n_threads): 0 adopts the process pool width
    /// (DGFLOW_THREADS), 1 forces serial loops on all levels
    unsigned int n_threads = 0;
    /// ABFT V-cycle guard: turn on the Chebyshev sweep guard on every level
    /// smoother and scan each V-cycle's result for non-finite entries; a
    /// corrupt serial cycle is re-run once (deterministic, so a transient
    /// flip in cycle scratch heals exactly), a still-corrupt result falls
    /// back to the identity step so the outer CG's replay guard decides.
    /// Off by default: the guarded fault-free V-cycle is bitwise identical.
    bool abft_guard = false;
  };

  /// Sets up the full hierarchy for the DG(degree) Laplacian on @p mesh.
  void setup(const Mesh &mesh, const Geometry &geometry,
             const unsigned int degree, const BoundaryMap &bc,
             const Options &options = Options())
  {
    DGFLOW_PROF_SCOPE("mg_setup");
    options_ = options;
    if (options_.abft_guard)
      options_.smoother.abft_check = true;
    bc_ = bc;

    // polynomial chain k, k/2, ..., 1 (bisection)
    dg_degrees_ = {degree};
    while (dg_degrees_.back() > 1)
      dg_degrees_.push_back(std::max(1u, dg_degrees_.back() / 2));

    // one MatrixFree on the finest mesh carrying all DG spaces + Q1(GL)
    typename MatrixFree<LevelNumber>::AdditionalData mf_data;
    std::vector<unsigned int> quads;
    std::vector<unsigned int> quad_of_space;
    for (const unsigned int k : dg_degrees_)
    {
      mf_data.degrees.push_back(k);
      mf_data.basis_types.push_back(BasisType::lagrange_gauss);
      unsigned int qi = 0;
      for (; qi < quads.size(); ++qi)
        if (quads[qi] == k + 1)
          break;
      if (qi == quads.size())
        quads.push_back(k + 1);
      quad_of_space.push_back(qi);
    }
    // the Q1 auxiliary space
    mf_data.degrees.push_back(1);
    mf_data.basis_types.push_back(BasisType::lagrange_gauss_lobatto);
    {
      unsigned int qi = 0;
      for (; qi < quads.size(); ++qi)
        if (quads[qi] == 2)
          break;
      if (qi == quads.size())
        quads.push_back(2);
      quad_of_space.push_back(qi);
    }
    mf_data.n_q_points_1d = quads;
    mf_data.geometry_degree = options.geometry_degree;
    mf_data.penalty_safety = options.penalty_safety;
    mf_data.rank_of_cell = options.rank_of_cell;
    mf_data.n_ranks = options.n_ranks;
    mf_data.n_threads = options.n_threads;
    if (options.inherit_fine_penalty)
    {
      const double top = double(dg_degrees_.front() + 1);
      for (const unsigned int k : dg_degrees_)
        mf_data.penalty_scaling.push_back((top * top) /
                                          double((k + 1) * (k + 1)));
      mf_data.penalty_scaling.push_back(1.); // Q1 space (no face terms)
    }
    mf_fine_.reinit(mesh, geometry, mf_data);

    const auto is_dirichlet = [this](const unsigned int id) {
      return bc_.type_of(id) == BoundaryType::dirichlet;
    };

    // DG level operators
    dg_ops_.clear();
    dg_ops_.resize(dg_degrees_.size());
    for (unsigned int s = 0; s < dg_degrees_.size(); ++s)
      dg_ops_[s].reinit(mf_fine_, s, quad_of_space[s], bc_);

    // Q1 space on the finest mesh
    cfe_dofs_fine_.reinit(mesh);
    cfe_fine_ = make_q1_space(cfe_dofs_fine_, is_dirichlet);
    cfe_op_fine_.reinit(mf_fine_, dg_degrees_.size(),
                        quad_of_space[dg_degrees_.size()], cfe_fine_);

    // globally coarsened Q1 levels
    coarse_meshes_.clear();
    coarse_mfs_.clear();
    coarse_dofs_.clear();
    coarse_spaces_.clear();
    coarse_ops_.clear();
    if (options.h_coarsening)
    {
      const Mesh *current = &mesh;
      while (true)
      {
        Mesh c = current->coarsened();
        if (c.n_active_cells() == current->n_active_cells())
          break;
        coarse_meshes_.push_back(std::move(c));
        current = &coarse_meshes_.back();
      }
      typename MatrixFree<LevelNumber>::AdditionalData cdata;
      cdata.degrees = {1};
      cdata.basis_types = {BasisType::lagrange_gauss_lobatto};
      cdata.n_q_points_1d = {2};
      cdata.geometry_degree = options.geometry_degree;
      cdata.penalty_safety = options.penalty_safety;
      cdata.n_threads = options.n_threads;
      coarse_mfs_.resize(coarse_meshes_.size());
      coarse_dofs_.resize(coarse_meshes_.size());
      coarse_spaces_.resize(coarse_meshes_.size());
      coarse_ops_.resize(coarse_meshes_.size());
      for (std::size_t i = 0; i < coarse_meshes_.size(); ++i)
      {
        coarse_mfs_[i].reinit(coarse_meshes_[i], geometry, cdata);
        coarse_dofs_[i].reinit(coarse_meshes_[i]);
        coarse_spaces_[i] = make_q1_space(coarse_dofs_[i], is_dirichlet);
        coarse_ops_[i].reinit(coarse_mfs_[i], 0, 0, coarse_spaces_[i]);
      }
    }

    build_levels();
  }

  unsigned int n_levels() const { return levels_.size(); }

  std::size_t level_dofs(const unsigned int l) const
  {
    return levels_[l].n_dofs;
  }

  /// Preconditioner interface for the double-precision outer CG: one
  /// V-cycle in the level precision.
  void vmult(Vector<double> &dst, const Vector<double> &src) const
  {
    DGFLOW_PROF_SCOPE("mg_vcycle");
    DGFLOW_PROF_COUNT("mg_vcycles", 1);
    src_f_.copy_and_convert(src);
    Level &top = levels_.back();
    top.x.reinit(src.size(), true);
    vcycle(levels_.size() - 1, top.x, src_f_);
    if (options_.abft_guard && !abft_result_ok(top.x))
    {
      ++abft_vcycle_repairs_;
      DGFLOW_PROF_COUNT("abft_sdc_detected", 1);
      DGFLOW_PROF_COUNT("abft_vcycle_repairs", 1);
      // the cycle is deterministic: one re-run heals a transient flip in
      // cycle scratch; a persistent corruption falls back to the identity
      // step (still SPD for the outer CG, whose replay guard takes over)
      top.x.reinit(src.size(), true);
      vcycle(levels_.size() - 1, top.x, src_f_);
      if (!abft_result_ok(top.x))
        top.x.equ(LevelNumber(1), src_f_);
    }
    dst.copy_and_convert(top.x);
  }

  /// Runs one V-cycle in the level precision (for nesting / diagnostics).
  void vcycle_level_precision(LVec &x, const LVec &b) const
  {
    DGFLOW_PROF_SCOPE("mg_vcycle");
    DGFLOW_PROF_COUNT("mg_vcycles", 1);
    vcycle(levels_.size() - 1, x, b);
  }

  /// Builds the distributed DG-level scratch, operators and smoothers on top
  /// of an existing setup() that was given Options::rank_of_cell/n_ranks.
  /// Every rank constructs the same (replicated) hierarchy; the Chebyshev
  /// bounds are adopted from the serial smoothers so serial and distributed
  /// V-cycles apply the identical polynomial on every level.
  /// Distributed failure detection: the hook is consulted at every
  /// distributed V-cycle boundary and handed down to the distributed level
  /// smoothers. Call before setup_distributed() (the smoothers copy their
  /// configuration at reinit); nullptr detaches.
  void set_recovery(RecoveryHooks *recovery) { recovery_ = recovery; }

  void setup_distributed(vmpi::Communicator &comm,
                         const vmpi::Partitioner &part)
  {
    DGFLOW_PROF_SCOPE("mg_setup_distributed");
    DGFLOW_ASSERT(part.n_global() == mf_fine_.mesh().n_active_cells(),
                  "partitioner must index the fine-mesh cells");
    DGFLOW_ASSERT(part.n_ranks() == mf_fine_.n_ranks(),
                  "partitioner/matrix-free rank count mismatch");
    comm_ = &comm;
    part_ = &part;
    q1_level_ = static_cast<unsigned int>(coarse_ops_.size());
    std::vector<DistLevel> fresh(levels_.size());
    dist_levels_.swap(fresh);
    ChebyshevData dist_smoother = options_.smoother;
    dist_smoother.recovery = recovery_;
    for (unsigned int lev = q1_level_ + 1; lev < levels_.size(); ++lev)
    {
      const unsigned int s = static_cast<unsigned int>(
        dg_degrees_.size() - 1 - (lev - q1_level_ - 1));
      const LaplaceOperator<LevelNumber> *op = &dg_ops_[s];
      DistLevel &dl = dist_levels_[lev];
      dl.op.apply = [op](DVec &d, const DVec &v) { op->vmult(d, v); };
      dl.op.apply_hooked = [op](DVec &d, const DVec &v, const RangeFn &pre,
                                const RangeFn &post) {
        op->vmult(d, v, pre, post);
      };
      const unsigned int block = mf_fine_.dofs_per_cell(s);
      dl.x.reinit(part, comm, block);
      dl.b.reinit(part, comm, block);
      dl.r.reinit(part, comm, block);
      DVec ddiag;
      ddiag.reinit(part, comm, block);
      ddiag.copy_owned_from(compute_level_diagonal(lev));
      dl.smoother.reinit_with_bounds(dl.op, ddiag,
                                     levels_[lev].smoother.max_eigenvalue(),
                                     dist_smoother);
    }
  }

  /// Distributed preconditioner interface: one V-cycle where the DG levels
  /// traverse only this rank's cells (with overlapped ghost exchange inside
  /// the operators) and the Q1/AMG sub-hierarchy is solved replicated on
  /// every rank after a sum-allreduce of the restricted residual. Requires
  /// setup_distributed().
  void vmult(vmpi::DistributedVector<double> &dst,
             const vmpi::DistributedVector<double> &src) const
  {
    DGFLOW_PROF_SCOPE("mg_vcycle");
    DGFLOW_PROF_COUNT("mg_vcycles", 1);
    DGFLOW_ASSERT(part_ != nullptr, "setup_distributed() has not run");
    // V-cycle boundary: agree on liveness before the cycle's first ghost
    // exchange so a dead peer unwinds every rank here, not via timeout
    if (recovery_)
      recovery_->at_iteration_boundary(true);
    dist_src_f_.copy_and_convert(src);
    DistLevel &top = dist_levels_.back();
    top.x.reinit_like(dist_src_f_, true);
    vcycle_dist(static_cast<unsigned int>(levels_.size() - 1), top.x,
                dist_src_f_);
    if (options_.abft_guard && !abft_result_ok(top.x))
    {
      ++abft_vcycle_repairs_;
      DGFLOW_PROF_COUNT("abft_sdc_detected", 1);
      DGFLOW_PROF_COUNT("abft_vcycle_repairs", 1);
      // local-only repair: re-running the distributed cycle would issue
      // collectives the healthy ranks are not expecting, so this rank falls
      // back to the identity step on its owned range; the outer CG replay
      // detects the cross-rank inconsistency collectively and rolls back
      top.x.equ(LevelNumber(1), dist_src_f_);
      top.x.invalidate_ghosts();
    }
    dst.copy_and_convert(top.x);
  }

  const MatrixFree<LevelNumber> &fine_matrix_free() const { return mf_fine_; }

  /// Accumulated smoothing/transfer seconds per level and in the AMG coarse
  /// solve since the last reset (for the paper's Fig. 10 latency breakdown).
  const std::vector<double> &level_seconds() const { return level_seconds_; }
  double amg_seconds() const { return amg_seconds_; }
  void reset_level_timers() const
  {
    level_seconds_.assign(levels_.size(), 0.);
    amg_seconds_ = 0.;
  }

  /// The smoothed-aggregation coarse solver (ABFT checksum registration and
  /// fault injection reach its level matrices through this).
  AMG &amg() { return amg_; }
  const AMG &amg() const { return amg_; }

  /// Rebuilds the AMG hierarchy from the coarse host operator: the ABFT
  /// scrub path for a corrupted AMG level matrix. The setup is
  /// deterministic, so the rebuilt values are bit-identical to the
  /// originals and the sidecar checksums match again.
  void rebuild_amg()
  {
    const CFELaplaceOperator<LevelNumber> &amg_host =
      coarse_ops_.empty() ? cfe_op_fine_ : coarse_ops_.back();
    amg_.setup(amg_host.assemble_matrix(), options_.amg);
    if (options_.sp_amg)
      amg_.enable_single_precision();
  }

  /// V-cycle results discarded/re-run by the ABFT guard (abft_guard on).
  unsigned long long abft_vcycle_repairs() const
  {
    return abft_vcycle_repairs_;
  }

private:
  /// Local non-finite scan of a V-cycle result (no collectives).
  template <typename V>
  static bool abft_result_ok(const V &x)
  {
    const auto *xd = x.data();
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i)
      if (!std::isfinite(double(xd[i])))
        return false;
    return true;
  }

  struct Level
  {
    AnyOperator op;
    ChebyshevSmoother<AnyOperator, LVec> smoother;
    std::unique_ptr<TransferBase<LevelNumber>> to_coarser; ///< null at l=0
    std::size_t n_dofs = 0;
    bool is_amg = false;
    mutable LVec x, b, r;
  };

  /// Distributed shadow of a DG Level (the Q1/AMG levels stay serial).
  struct DistLevel
  {
    AnyDistOperator op;
    ChebyshevSmoother<AnyDistOperator, DVec> smoother;
    mutable DVec x, b, r;
  };

  void build_levels()
  {
    levels_.clear();
    level_names_.clear();

    // bottom-up: AMG coarse level lives inside the coarsest Q1 level
    const bool have_h = !coarse_ops_.empty();
    const CFELaplaceOperator<LevelNumber> &amg_host =
      have_h ? coarse_ops_.back() : cfe_op_fine_;
    amg_.setup(amg_host.assemble_matrix(), options_.amg);
    if (options_.sp_amg)
      amg_.enable_single_precision();

    // levels from coarsest to finest: coarse Q1 meshes (reverse order)
    if (have_h)
      for (std::size_t i = coarse_ops_.size(); i-- > 0;)
      {
        Level level;
        const auto *op = &coarse_ops_[i];
        level.op.apply = [op](LVec &d, const LVec &s) { op->vmult(d, s); };
        level.n_dofs = op->n_dofs();
        level.is_amg = (i == coarse_ops_.size() - 1);
        levels_.push_back(std::move(level));
        // transfer from this level to the previous (coarser) one
      }

    // fine-mesh Q1 level
    {
      Level level;
      const auto *op = &cfe_op_fine_;
      level.op.apply = [op](LVec &d, const LVec &s) { op->vmult(d, s); };
      level.n_dofs = op->n_dofs();
      level.is_amg = !have_h;
      levels_.push_back(std::move(level));
    }

    // DG levels from low to high degree; these operators implement the
    // contract-v2 hooked cell loop, so the fused Chebyshev smoother's
    // per-batch updates ride the matrix-free traversal
    for (std::size_t s = dg_degrees_.size(); s-- > 0;)
    {
      Level level;
      const auto *op = &dg_ops_[s];
      level.op.apply = [op](LVec &d, const LVec &s2) { op->vmult(d, s2); };
      level.op.apply_hooked = [op](LVec &d, const LVec &s2,
                                   const RangeFn &pre, const RangeFn &post) {
        op->vmult(d, s2, pre, post);
      };
      level.n_dofs = op->n_dofs();
      levels_.push_back(std::move(level));
    }

    // transfers: levels_[l].to_coarser maps between levels_[l] and
    // levels_[l-1]
    unsigned int l = 1;
    if (have_h)
      for (std::size_t i = coarse_ops_.size() - 1; i-- > 0; ++l)
      {
        // fine = coarse_meshes_[i], coarse = coarse_meshes_[i+1]
        levels_[l].to_coarser = std::make_unique<SparseTransfer<LevelNumber>>(
          build_h_transfer(coarse_meshes_[i], coarse_spaces_[i],
                           coarse_meshes_[i + 1], coarse_spaces_[i + 1]));
      }
    if (have_h)
    {
      // fine-mesh Q1 -> first coarse mesh
      levels_[l].to_coarser = std::make_unique<SparseTransfer<LevelNumber>>(
        build_h_transfer(mf_fine_.mesh(), cfe_fine_, coarse_meshes_[0],
                         coarse_spaces_[0]));
      ++l;
    }
    // DG(1) -> Q1
    levels_[l].to_coarser = std::make_unique<SparseTransfer<LevelNumber>>(
      build_c_transfer(mf_fine_.mesh(), cfe_fine_));
    ++l;
    // p-transfers DG(next) -> DG(previous degree)
    for (std::size_t s = dg_degrees_.size() - 1; s-- > 0; ++l)
      levels_[l].to_coarser = std::make_unique<DGPTransfer<LevelNumber>>(
        mf_fine_, static_cast<unsigned int>(s),
        static_cast<unsigned int>(s + 1));
    DGFLOW_ASSERT(l == levels_.size(), "level/transfer bookkeeping mismatch");

    for (std::size_t lev = 0; lev < levels_.size(); ++lev)
      level_names_.push_back("level" + std::to_string(lev));

    // smoothers (skip the AMG-solved coarsest level)
    for (unsigned int lev = 0; lev < levels_.size(); ++lev)
    {
      Level &level = levels_[lev];
      level.x.reinit(level.n_dofs);
      level.b.reinit(level.n_dofs);
      level.r.reinit(level.n_dofs);
      if (lev == 0 && level.is_amg)
        continue;
      LVec diag = compute_level_diagonal(lev);
      level.smoother.reinit(level.op, diag, options_.smoother);
    }
  }

  LVec compute_level_diagonal(const unsigned int lev) const
  {
    // reverse the level layout bookkeeping
    const unsigned int n_coarse = coarse_ops_.size();
    LVec diag;
    if (lev < n_coarse)
      coarse_ops_[n_coarse - 1 - lev].compute_diagonal(diag);
    else if (lev == n_coarse)
      cfe_op_fine_.compute_diagonal(diag);
    else
      dg_ops_[dg_degrees_.size() - 1 - (lev - n_coarse - 1)].compute_diagonal(
        diag);
    return diag;
  }

  void vcycle(const unsigned int l, LVec &x, const LVec &b) const
  {
    if (level_seconds_.size() != levels_.size())
      level_seconds_.assign(levels_.size(), 0.);
    // scope per level: the recursion nests level l-1 under level l, so the
    // profile shows the full grid traversal as one branch of the tree
    DGFLOW_PROF_SCOPE(level_names_[l]);
    const Level &level = levels_[l];
    if (l == 0)
    {
      Timer t;
      if (level.is_amg)
      {
        DGFLOW_PROF_SCOPE("amg_coarse");
        if (options_.sp_amg)
        {
          // float coarse solve: with LevelNumber = float the conversions
          // below are plain copies (no precision round-trip)
          amg_bf_.copy_and_convert(b);
          amg_xf_.reinit(amg_bf_.size());
          for (unsigned int c = 0; c < options_.amg_cycles; ++c)
            amg_.vcycle(amg_xf_, amg_bf_);
          x.copy_and_convert(amg_xf_);
        }
        else
        {
          amg_b_.copy_and_convert(b);
          amg_x_.reinit(amg_b_.size());
          for (unsigned int c = 0; c < options_.amg_cycles; ++c)
            amg_.vcycle(amg_x_, amg_b_);
          x.copy_and_convert(amg_x_);
        }
        amg_seconds_ += t.seconds();
      }
      else
      {
        DGFLOW_PROF_SCOPE("smoother");
        level.smoother.smooth(x, b, true);
        level_seconds_[l] += t.seconds();
      }
      return;
    }

    Timer t1;
    {
      DGFLOW_PROF_SCOPE("smoother");
      level.smoother.smooth(x, b, true);
    }
    level.op.vmult(level.r, x);
    level.r.sadd(LevelNumber(-1), LevelNumber(1), b);
    const Level &coarse = levels_[l - 1];
    {
      DGFLOW_PROF_SCOPE("transfer");
      level.to_coarser->restrict_down(coarse.b, level.r);
    }
    coarse.x.reinit(coarse.b.size(), true);
    level_seconds_[l] += t1.seconds();

    vcycle(l - 1, coarse.x, coarse.b);

    Timer t2;
    {
      DGFLOW_PROF_SCOPE("transfer");
      level.to_coarser->prolongate(level.r, coarse.x);
    }
    x.add(LevelNumber(1), level.r);
    {
      DGFLOW_PROF_SCOPE("smoother");
      level.smoother.smooth(x, b, false);
    }
    level_seconds_[l] += t2.seconds();
  }

  /// Distributed V-cycle over the DG levels. Pre/post-smoothing and the
  /// residual use only this rank's owned cell blocks (p-transfers are
  /// cell-local); at the DG(1) level the residual is restricted onto the
  /// replicated Q1 space through this rank's contiguous row range followed
  /// by a sum-allreduce, after which the serial vcycle() handles the whole
  /// Q1/AMG sub-hierarchy identically on every rank.
  void vcycle_dist(const unsigned int l, DVec &x, const DVec &b) const
  {
    if (level_seconds_.size() != levels_.size())
      level_seconds_.assign(levels_.size(), 0.);
    DGFLOW_PROF_SCOPE(level_names_[l]);
    const DistLevel &level = dist_levels_[l];

    Timer t1;
    {
      DGFLOW_PROF_SCOPE("smoother");
      level.smoother.smooth(x, b, true);
    }
    level.op.vmult(level.r, x);
    level.r.sadd(LevelNumber(-1), LevelNumber(1), b);
    level_seconds_[l] += t1.seconds();

    if (l == q1_level_ + 1)
    {
      const auto *c = static_cast<const SparseTransfer<LevelNumber> *>(
        levels_[l].to_coarser.get());
      const std::size_t row_begin = level.r.first_local_index();
      const std::size_t row_end = row_begin + level.r.size();
      const Level &coarse = levels_[l - 1];
      Timer t2;
      {
        DGFLOW_PROF_SCOPE("transfer");
        coarse.b = LevelNumber(0);
        c->restrict_down_rows(coarse.b, level.r.data(), row_begin, row_end);
        c_allreduce_buf_.resize(coarse.b.size());
        for (std::size_t i = 0; i < coarse.b.size(); ++i)
          c_allreduce_buf_[i] = double(coarse.b.data()[i]);
        comm_->allreduce(c_allreduce_buf_,
                         vmpi::Communicator::Op::sum);
        for (std::size_t i = 0; i < coarse.b.size(); ++i)
          coarse.b.data()[i] = LevelNumber(c_allreduce_buf_[i]);
      }
      coarse.x.reinit(coarse.b.size(), true);
      level_seconds_[l] += t2.seconds();

      vcycle(l - 1, coarse.x, coarse.b);

      Timer t3;
      {
        DGFLOW_PROF_SCOPE("transfer");
        c->prolongate_rows(level.r.data(), coarse.x, row_begin, row_end);
      }
      level_seconds_[l] += t3.seconds();
    }
    else
    {
      const auto *p = static_cast<const DGPTransfer<LevelNumber> *>(
        levels_[l].to_coarser.get());
      const DistLevel &coarse = dist_levels_[l - 1];
      const index_t n_owned_cells = static_cast<index_t>(part_->n_owned());
      Timer t2;
      {
        DGFLOW_PROF_SCOPE("transfer");
        p->restrict_cells(coarse.b.data(), level.r.data(), n_owned_cells);
      }
      coarse.x.reinit_like(coarse.b, true);
      level_seconds_[l] += t2.seconds();

      vcycle_dist(l - 1, coarse.x, coarse.b);

      Timer t3;
      {
        DGFLOW_PROF_SCOPE("transfer");
        p->prolongate_cells(level.r.data(), coarse.x.data(), n_owned_cells);
      }
      level_seconds_[l] += t3.seconds();
    }

    Timer t4;
    x.add(LevelNumber(1), level.r);
    {
      DGFLOW_PROF_SCOPE("smoother");
      level.smoother.smooth(x, b, false);
    }
    level_seconds_[l] += t4.seconds();
  }

  Options options_;
  BoundaryMap bc_;

  std::vector<unsigned int> dg_degrees_;
  MatrixFree<LevelNumber> mf_fine_;
  std::vector<LaplaceOperator<LevelNumber>> dg_ops_;

  CFEDofHandler cfe_dofs_fine_;
  CFESpace cfe_fine_;
  CFELaplaceOperator<LevelNumber> cfe_op_fine_;

  std::vector<Mesh> coarse_meshes_;
  std::vector<MatrixFree<LevelNumber>> coarse_mfs_;
  std::vector<CFEDofHandler> coarse_dofs_;
  std::vector<CFESpace> coarse_spaces_;
  std::vector<CFELaplaceOperator<LevelNumber>> coarse_ops_;

  AMG amg_;
  mutable unsigned long long abft_vcycle_repairs_ = 0;

  mutable std::vector<Level> levels_;
  std::vector<std::string> level_names_;
  mutable LVec src_f_;
  mutable Vector<double> amg_x_, amg_b_;
  mutable Vector<float> amg_xf_, amg_bf_;
  mutable std::vector<double> level_seconds_;
  mutable double amg_seconds_ = 0.;

  // distributed mode (setup_distributed)
  vmpi::Communicator *comm_ = nullptr;
  const vmpi::Partitioner *part_ = nullptr;
  RecoveryHooks *recovery_ = nullptr;
  unsigned int q1_level_ = 0;
  mutable std::vector<DistLevel> dist_levels_;
  mutable DVec dist_src_f_;
  mutable std::vector<double> c_allreduce_buf_;
};

} // namespace dgflow
