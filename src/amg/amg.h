#pragma once

// Smoothed-aggregation algebraic multigrid: the coarse-level solver below
// the geometric/polynomial hierarchy of the hybrid multigrid scheme (the
// role BoomerAMG plays in the paper, Section 3.4). One V-cycle with a single
// symmetric Gauss-Seidel sweep per level, run in double precision, matching
// the paper's configuration of the coarse solve.

#include <utility>
#include <vector>

#include "amg/sparse_matrix.h"

namespace dgflow
{
class AMG
{
public:
  struct Options
  {
    double strength_threshold = 0.02; ///< relative strength-of-connection
    std::size_t max_coarse_size = 200;
    unsigned int max_levels = 20;
    double prolongator_omega_factor = 4. / 3.; ///< omega = factor / lambda_max
  };

  void setup(SparseMatrix A, const Options &options);
  void setup(SparseMatrix A) { setup(std::move(A), Options()); }

  /// Builds single-precision value mirrors of every level (A, P, R share
  /// the double CSR sparsity; only the values are duplicated as float) plus
  /// float work vectors, enabling the float vcycle/vmult overloads. The
  /// coarsest-level dense LU stays double — the solve converts at that
  /// boundary. Call after setup(); the double path is unaffected.
  void enable_single_precision();
  bool single_precision() const { return !sp_levels_.empty(); }

  /// Applies one V-cycle (single symmetric Gauss-Seidel sweep per level)
  /// with zero initial guess: the preconditioner interface.
  void vmult(Vector<double> &dst, const Vector<double> &src) const;

  /// One V-cycle improving the passed iterate.
  void vcycle(Vector<double> &x, const Vector<double> &b) const;

  /// Single-precision overloads; require enable_single_precision().
  void vmult(Vector<float> &dst, const Vector<float> &src) const;
  void vcycle(Vector<float> &x, const Vector<float> &b) const;

  /// Stationary solve by repeated V-cycles (coarse problems only).
  unsigned int solve(Vector<double> &x, const Vector<double> &b,
                     const double rel_tol, const unsigned int max_cycles) const;

  unsigned int n_levels() const { return levels_.size(); }
  std::size_t level_size(const unsigned int l) const
  {
    return levels_[l].A.n_rows();
  }

  /// ABFT support: appends {pointer, bytes} pairs covering every setup-time
  /// value array of the hierarchy — the A/P/R values of each double level,
  /// the float mirrors when single precision is enabled, and the coarse
  /// dense LU factors — so the resilience layer can checksum and scrub
  /// them. The work vectors (x, b, r) are transient and excluded.
  void collect_value_regions(
      std::vector<std::pair<const void *, std::size_t>> &regions) const
  {
    for (const Level &level : levels_)
    {
      regions.emplace_back(level.A.values(),
                           level.A.n_nonzeros() * sizeof(double));
      regions.emplace_back(level.P.values(),
                           level.P.n_nonzeros() * sizeof(double));
      regions.emplace_back(level.R.values(),
                           level.R.n_nonzeros() * sizeof(double));
    }
    for (const LevelSP &level : sp_levels_)
    {
      regions.emplace_back(level.A_vals.data(),
                           level.A_vals.size() * sizeof(float));
      regions.emplace_back(level.P_vals.data(),
                           level.P_vals.size() * sizeof(float));
      regions.emplace_back(level.R_vals.data(),
                           level.R_vals.size() * sizeof(float));
    }
    regions.emplace_back(lu_.data(), lu_.size() * sizeof(double));
  }

  /// Mutable access to level l's system-matrix values: ABFT fault-injection
  /// tests flip a bit here to emulate corruption of a setup artifact.
  double *level_values(const unsigned int l) { return levels_[l].A.values(); }
  std::size_t level_nnz(const unsigned int l) const
  {
    return levels_[l].A.n_nonzeros();
  }

private:
  struct Level
  {
    SparseMatrix A;
    SparseMatrix P; ///< prolongation from the next coarser level
    SparseMatrix R; ///< restriction (P^T)
    mutable Vector<double> x, b, r;
  };

  /// Single-precision value mirror of a Level (same CSR sparsity).
  struct LevelSP
  {
    std::vector<float> A_vals, P_vals, R_vals;
    mutable Vector<float> x, b, r;
  };

  void vcycle_level(const unsigned int l, Vector<double> &x,
                    const Vector<double> &b) const;
  void vcycle_level_sp(const unsigned int l, Vector<float> &x,
                       const Vector<float> &b) const;

  /// Greedy aggregation on the strength graph; returns the aggregate id of
  /// each node and the number of aggregates.
  static std::size_t aggregate(const SparseMatrix &A, const double theta,
                               std::vector<std::size_t> &agg_of_node);

  std::vector<Level> levels_;
  std::vector<LevelSP> sp_levels_;

  // dense LU factorization of the coarsest matrix (with partial pivoting)
  std::vector<double> lu_;
  std::vector<std::size_t> lu_perm_;
  std::size_t lu_n_ = 0;
  void factorize_coarsest(const SparseMatrix &A);
  void solve_coarsest(Vector<double> &x, const Vector<double> &b) const;

  Options options_;
};

} // namespace dgflow
