#pragma once

// Compressed-sparse-row matrix with the operations the algebraic multigrid
// coarse solver needs: SpMV, transpose, sparse matrix-matrix products, and
// Gauss-Seidel sweeps. Also used to store the multigrid transfer operators
// between the continuous coarse spaces.

#include <cstddef>
#include <vector>

#include "common/vector.h"

namespace dgflow
{
class SparseMatrix
{
public:
  struct Triplet
  {
    std::size_t row, col;
    double value;
  };

  SparseMatrix() = default;

  /// Builds from (row, col, value) triplets; duplicate entries are summed.
  static SparseMatrix from_triplets(const std::size_t n_rows,
                                    const std::size_t n_cols,
                                    std::vector<Triplet> triplets);

  std::size_t n_rows() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  std::size_t n_cols() const { return n_cols_; }
  std::size_t n_nonzeros() const { return values_.size(); }

  void vmult(Vector<double> &dst, const Vector<double> &src) const;
  void vmult_add(Vector<double> &dst, const Vector<double> &src) const;

  SparseMatrix transpose() const;

  static SparseMatrix multiply(const SparseMatrix &A, const SparseMatrix &B);

  Vector<double> diagonal() const;

  /// One forward Gauss-Seidel sweep on A x = b.
  void gauss_seidel_forward(Vector<double> &x, const Vector<double> &b) const;
  /// One backward sweep.
  void gauss_seidel_backward(Vector<double> &x, const Vector<double> &b) const;

  // The *_with kernels run over this matrix's sparsity pattern with an
  // externally supplied value array of the same layout — the
  // single-precision value mirrors of the AMG levels reuse the double CSR
  // structure without duplicating row_ptr/col_idx.

  /// SpMV dst = A(vals) * src.
  template <typename Number>
  void vmult_with(const Number *vals, Vector<Number> &dst,
                  const Vector<Number> &src) const
  {
    const std::size_t nr = n_rows();
    dst.reinit(nr, true);
    for (std::size_t r = 0; r < nr; ++r)
    {
      Number sum = Number(0);
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
        sum += vals[k] * src[col_idx_[k]];
      dst[r] = sum;
    }
  }

  /// One forward Gauss-Seidel sweep on A(vals) x = b.
  template <typename Number>
  void gauss_seidel_forward_with(const Number *vals, Vector<Number> &x,
                                 const Vector<Number> &b) const
  {
    for (std::size_t r = 0; r < n_rows(); ++r)
    {
      Number sum = b[r], diag = Number(1);
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      {
        const std::size_t c = col_idx_[k];
        if (c == r)
          diag = vals[k];
        else
          sum -= vals[k] * x[c];
      }
      x[r] = sum / diag;
    }
  }

  /// One backward sweep on A(vals) x = b.
  template <typename Number>
  void gauss_seidel_backward_with(const Number *vals, Vector<Number> &x,
                                  const Vector<Number> &b) const
  {
    for (std::size_t rr = n_rows(); rr > 0; --rr)
    {
      const std::size_t r = rr - 1;
      Number sum = b[r], diag = Number(1);
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      {
        const std::size_t c = col_idx_[k];
        if (c == r)
          diag = vals[k];
        else
          sum -= vals[k] * x[c];
      }
      x[r] = sum / diag;
    }
  }

  /// Row access for setup algorithms.
  const std::size_t *row_ptr() const { return row_ptr_.data(); }
  const std::size_t *col_idx() const { return col_idx_.data(); }
  const double *values() const { return values_.data(); }
  double *values() { return values_.data(); }

  std::size_t memory_consumption() const
  {
    return values_.size() * (sizeof(double) + sizeof(std::size_t)) +
           row_ptr_.size() * sizeof(std::size_t);
  }

private:
  std::size_t n_cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

} // namespace dgflow
