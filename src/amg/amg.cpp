#include "amg/amg.h"

#include <cmath>
#include <random>

#include "common/exceptions.h"

namespace dgflow
{
std::size_t AMG::aggregate(const SparseMatrix &A, const double theta,
                           std::vector<std::size_t> &agg_of_node)
{
  const std::size_t n = A.n_rows();
  const Vector<double> diag = A.diagonal();
  constexpr std::size_t unassigned = static_cast<std::size_t>(-1);
  agg_of_node.assign(n, unassigned);

  auto strong_neighbors = [&](const std::size_t i, auto &&callback) {
    for (std::size_t k = A.row_ptr()[i]; k < A.row_ptr()[i + 1]; ++k)
    {
      const std::size_t j = A.col_idx()[k];
      if (j == i)
        continue;
      const double aij = A.values()[k];
      if (std::abs(aij) >= theta * std::sqrt(std::abs(diag[i] * diag[j])))
        callback(j);
    }
  };

  std::size_t n_aggregates = 0;

  // pass 1: seed aggregates from nodes whose strong neighborhood is free
  for (std::size_t i = 0; i < n; ++i)
  {
    if (agg_of_node[i] != unassigned)
      continue;
    bool free = true;
    strong_neighbors(i, [&](const std::size_t j) {
      if (agg_of_node[j] != unassigned)
        free = false;
    });
    if (!free)
      continue;
    const std::size_t a = n_aggregates++;
    agg_of_node[i] = a;
    strong_neighbors(i, [&](const std::size_t j) { agg_of_node[j] = a; });
  }

  // pass 2: attach remaining nodes to a neighboring aggregate
  for (std::size_t i = 0; i < n; ++i)
  {
    if (agg_of_node[i] != unassigned)
      continue;
    std::size_t target = unassigned;
    strong_neighbors(i, [&](const std::size_t j) {
      if (target == unassigned && agg_of_node[j] != unassigned)
        target = agg_of_node[j];
    });
    if (target != unassigned)
      agg_of_node[i] = target;
  }

  // pass 3: leftovers become singletons
  for (std::size_t i = 0; i < n; ++i)
    if (agg_of_node[i] == unassigned)
      agg_of_node[i] = n_aggregates++;

  return n_aggregates;
}

void AMG::setup(SparseMatrix A, const Options &options)
{
  options_ = options;
  levels_.clear();
  sp_levels_.clear();

  levels_.push_back(Level{std::move(A), {}, {}, {}, {}, {}});

  while (levels_.back().A.n_rows() > options.max_coarse_size &&
         levels_.size() < options.max_levels)
  {
    const SparseMatrix &Af = levels_.back().A;

    std::vector<std::size_t> agg;
    const std::size_t n_agg =
      aggregate(Af, options.strength_threshold, agg);
    if (n_agg >= Af.n_rows())
      break; // no coarsening progress possible

    // tentative piecewise-constant prolongator
    std::vector<SparseMatrix::Triplet> t;
    t.reserve(Af.n_rows());
    for (std::size_t i = 0; i < Af.n_rows(); ++i)
      t.push_back({i, agg[i], 1.});
    const SparseMatrix T =
      SparseMatrix::from_triplets(Af.n_rows(), n_agg, std::move(t));

    // prolongator smoothing: P = (I - omega D^{-1} A) T
    const Vector<double> diag = Af.diagonal();
    double lambda = 1.;
    {
      // power iteration on D^{-1} A
      const std::size_t n = Af.n_rows();
      Vector<double> v(n), w(n);
      std::mt19937 rng(7);
      std::uniform_real_distribution<double> dist(-1., 1.);
      for (std::size_t i = 0; i < n; ++i)
        v[i] = dist(rng);
      v.scale(1. / double(v.l2_norm()));
      for (unsigned int it = 0; it < 15; ++it)
      {
        Af.vmult(w, v);
        for (std::size_t i = 0; i < n; ++i)
          w[i] /= diag[i];
        lambda = double(w.l2_norm());
        w.scale(1. / lambda);
        v.swap(w);
      }
    }
    const double omega = options.prolongator_omega_factor / lambda;

    // DinvA_T = D^{-1} A T, then P = T - omega * DinvA_T
    SparseMatrix AT = SparseMatrix::multiply(Af, T);
    {
      // scale rows by omega / diag and subtract from T via triplets
      std::vector<SparseMatrix::Triplet> pt;
      pt.reserve(AT.n_nonzeros() + Af.n_rows());
      for (std::size_t r = 0; r < AT.n_rows(); ++r)
        for (std::size_t k = AT.row_ptr()[r]; k < AT.row_ptr()[r + 1]; ++k)
          pt.push_back(
            {r, AT.col_idx()[k], -omega / diag[r] * AT.values()[k]});
      for (std::size_t i = 0; i < Af.n_rows(); ++i)
        pt.push_back({i, agg[i], 1.});
      Level next;
      next.P = SparseMatrix::from_triplets(Af.n_rows(), n_agg, std::move(pt));
      next.R = next.P.transpose();
      next.A = SparseMatrix::multiply(next.R,
                                      SparseMatrix::multiply(Af, next.P));
      levels_.push_back(std::move(next));
    }
  }

  factorize_coarsest(levels_.back().A);

  // work vectors
  for (auto &level : levels_)
  {
    level.x.reinit(level.A.n_rows());
    level.b.reinit(level.A.n_rows());
    level.r.reinit(level.A.n_rows());
  }
}

void AMG::factorize_coarsest(const SparseMatrix &A)
{
  const std::size_t n = A.n_rows();
  lu_n_ = n;
  lu_.assign(n * n, 0.);
  lu_perm_.resize(n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = A.row_ptr()[r]; k < A.row_ptr()[r + 1]; ++k)
      lu_[r * n + A.col_idx()[k]] = A.values()[k];

  for (std::size_t i = 0; i < n; ++i)
    lu_perm_[i] = i;
  for (std::size_t c = 0; c < n; ++c)
  {
    // partial pivoting
    std::size_t pivot = c;
    for (std::size_t r = c + 1; r < n; ++r)
      if (std::abs(lu_[r * n + c]) > std::abs(lu_[pivot * n + c]))
        pivot = r;
    if (pivot != c)
    {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu_[c * n + j], lu_[pivot * n + j]);
      std::swap(lu_perm_[c], lu_perm_[pivot]);
    }
    const double d = lu_[c * n + c];
    DGFLOW_ASSERT(std::abs(d) > 1e-300, "singular coarse matrix");
    for (std::size_t r = c + 1; r < n; ++r)
    {
      const double f = lu_[r * n + c] / d;
      lu_[r * n + c] = f;
      for (std::size_t j = c + 1; j < n; ++j)
        lu_[r * n + j] -= f * lu_[c * n + j];
    }
  }
}

void AMG::solve_coarsest(Vector<double> &x, const Vector<double> &b) const
{
  const std::size_t n = lu_n_;
  // forward substitution with permutation
  for (std::size_t r = 0; r < n; ++r)
  {
    double sum = b[lu_perm_[r]];
    for (std::size_t c = 0; c < r; ++c)
      sum -= lu_[r * n + c] * x[c];
    x[r] = sum;
  }
  // backward substitution
  for (std::size_t rr = n; rr > 0; --rr)
  {
    const std::size_t r = rr - 1;
    double sum = x[r];
    for (std::size_t c = r + 1; c < n; ++c)
      sum -= lu_[r * n + c] * x[c];
    x[r] = sum / lu_[r * n + r];
  }
}

void AMG::vcycle_level(const unsigned int l, Vector<double> &x,
                       const Vector<double> &b) const
{
  const Level &level = levels_[l];
  if (l == levels_.size() - 1)
  {
    solve_coarsest(x, b);
    return;
  }

  // pre-smooth: one symmetric Gauss-Seidel sweep
  level.A.gauss_seidel_forward(x, b);

  // residual and restriction
  level.A.vmult(level.r, x);
  level.r.sadd(-1., 1., b);
  const Level &coarse = levels_[l + 1];
  coarse.R.vmult(coarse.b, level.r);
  coarse.x = 0.;
  vcycle_level(l + 1, coarse.x, coarse.b);
  // prolongate and correct
  coarse.P.vmult(level.r, coarse.x);
  x.add(1., level.r);

  // post-smooth
  level.A.gauss_seidel_backward(x, b);
}

void AMG::vcycle(Vector<double> &x, const Vector<double> &b) const
{
  vcycle_level(0, x, b);
}

void AMG::enable_single_precision()
{
  DGFLOW_ASSERT(!levels_.empty(), "setup() has not run");
  const auto convert = [](const SparseMatrix &m) {
    std::vector<float> v(m.n_nonzeros());
    for (std::size_t k = 0; k < v.size(); ++k)
      v[k] = float(m.values()[k]);
    return v;
  };
  sp_levels_.clear();
  sp_levels_.resize(levels_.size());
  for (std::size_t l = 0; l < levels_.size(); ++l)
  {
    const Level &level = levels_[l];
    LevelSP &sp = sp_levels_[l];
    sp.A_vals = convert(level.A);
    sp.P_vals = convert(level.P);
    sp.R_vals = convert(level.R);
    sp.x.reinit(level.A.n_rows());
    sp.b.reinit(level.A.n_rows());
    sp.r.reinit(level.A.n_rows());
  }
}

void AMG::vcycle_level_sp(const unsigned int l, Vector<float> &x,
                          const Vector<float> &b) const
{
  const Level &level = levels_[l];
  const LevelSP &sp = sp_levels_[l];
  if (l == levels_.size() - 1)
  {
    // the dense LU factorization stays double: convert at its boundary
    level.b.reinit(b.size(), true);
    level.x.reinit(b.size(), true);
    for (std::size_t i = 0; i < b.size(); ++i)
      level.b[i] = double(b[i]);
    solve_coarsest(level.x, level.b);
    for (std::size_t i = 0; i < b.size(); ++i)
      x[i] = float(level.x[i]);
    return;
  }

  level.A.gauss_seidel_forward_with(sp.A_vals.data(), x, b);

  level.A.vmult_with(sp.A_vals.data(), sp.r, x);
  sp.r.sadd(-1.f, 1.f, b);
  const Level &coarse = levels_[l + 1];
  const LevelSP &csp = sp_levels_[l + 1];
  coarse.R.vmult_with(csp.R_vals.data(), csp.b, sp.r);
  csp.x = 0.f;
  vcycle_level_sp(l + 1, csp.x, csp.b);
  coarse.P.vmult_with(csp.P_vals.data(), sp.r, csp.x);
  x.add(1.f, sp.r);

  level.A.gauss_seidel_backward_with(sp.A_vals.data(), x, b);
}

void AMG::vcycle(Vector<float> &x, const Vector<float> &b) const
{
  DGFLOW_ASSERT(single_precision(), "enable_single_precision() has not run");
  vcycle_level_sp(0, x, b);
}

void AMG::vmult(Vector<float> &dst, const Vector<float> &src) const
{
  DGFLOW_ASSERT(single_precision(), "enable_single_precision() has not run");
  dst.reinit(src.size(), true);
  dst = 0.f;
  vcycle_level_sp(0, dst, src);
}

void AMG::vmult(Vector<double> &dst, const Vector<double> &src) const
{
  dst.reinit(src.size(), true);
  dst = 0.;
  vcycle_level(0, dst, src);
}

unsigned int AMG::solve(Vector<double> &x, const Vector<double> &b,
                        const double rel_tol,
                        const unsigned int max_cycles) const
{
  const Level &fine = levels_[0];
  const double b_norm = double(b.l2_norm());
  for (unsigned int cycle = 1; cycle <= max_cycles; ++cycle)
  {
    vcycle(x, b);
    fine.A.vmult(fine.r, x);
    fine.r.sadd(-1., 1., b);
    if (double(fine.r.l2_norm()) <= rel_tol * b_norm)
      return cycle;
  }
  return max_cycles;
}

} // namespace dgflow
