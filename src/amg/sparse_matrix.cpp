#include "amg/sparse_matrix.h"

#include <algorithm>

#include "common/exceptions.h"

namespace dgflow
{
SparseMatrix SparseMatrix::from_triplets(const std::size_t n_rows,
                                         const std::size_t n_cols,
                                         std::vector<Triplet> triplets)
{
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet &a, const Triplet &b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.n_cols_ = n_cols;
  m.row_ptr_.assign(n_rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  for (std::size_t i = 0; i < triplets.size();)
  {
    const std::size_t r = triplets[i].row, c = triplets[i].col;
    DGFLOW_ASSERT(r < n_rows && c < n_cols, "triplet out of range");
    double v = 0;
    while (i < triplets.size() && triplets[i].row == r && triplets[i].col == c)
      v += triplets[i++].value;
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    m.row_ptr_[r + 1] = m.col_idx_.size();
  }
  // rows without entries: propagate prefix
  for (std::size_t r = 1; r <= n_rows; ++r)
    m.row_ptr_[r] = std::max(m.row_ptr_[r], m.row_ptr_[r - 1]);
  return m;
}

void SparseMatrix::vmult(Vector<double> &dst, const Vector<double> &src) const
{
  dst.reinit(n_rows(), true);
  dst = 0.;
  vmult_add(dst, src);
}

void SparseMatrix::vmult_add(Vector<double> &dst,
                             const Vector<double> &src) const
{
  const std::size_t nr = n_rows();
  for (std::size_t r = 0; r < nr; ++r)
  {
    double sum = 0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      sum += values_[k] * src[col_idx_[k]];
    dst[r] += sum;
  }
}

SparseMatrix SparseMatrix::transpose() const
{
  std::vector<Triplet> t;
  t.reserve(n_nonzeros());
  for (std::size_t r = 0; r < n_rows(); ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      t.push_back({col_idx_[k], r, values_[k]});
  return from_triplets(n_cols_, n_rows(), std::move(t));
}

SparseMatrix SparseMatrix::multiply(const SparseMatrix &A,
                                    const SparseMatrix &B)
{
  DGFLOW_ASSERT(A.n_cols() == B.n_rows(), "dimension mismatch");
  std::vector<Triplet> t;
  std::vector<double> accum(B.n_cols(), 0.);
  std::vector<std::size_t> touched;
  for (std::size_t r = 0; r < A.n_rows(); ++r)
  {
    touched.clear();
    for (std::size_t ka = A.row_ptr_[r]; ka < A.row_ptr_[r + 1]; ++ka)
    {
      const std::size_t j = A.col_idx_[ka];
      const double av = A.values_[ka];
      for (std::size_t kb = B.row_ptr_[j]; kb < B.row_ptr_[j + 1]; ++kb)
      {
        const std::size_t c = B.col_idx_[kb];
        if (accum[c] == 0.)
          touched.push_back(c);
        accum[c] += av * B.values_[kb];
      }
    }
    for (const std::size_t c : touched)
    {
      if (accum[c] != 0.)
        t.push_back({r, c, accum[c]});
      accum[c] = 0.;
    }
  }
  return from_triplets(A.n_rows(), B.n_cols(), std::move(t));
}

Vector<double> SparseMatrix::diagonal() const
{
  Vector<double> d(n_rows());
  for (std::size_t r = 0; r < n_rows(); ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      if (col_idx_[k] == r)
        d[r] = values_[k];
  return d;
}

void SparseMatrix::gauss_seidel_forward(Vector<double> &x,
                                        const Vector<double> &b) const
{
  for (std::size_t r = 0; r < n_rows(); ++r)
  {
    double sum = b[r], diag = 1.;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
    {
      const std::size_t c = col_idx_[k];
      if (c == r)
        diag = values_[k];
      else
        sum -= values_[k] * x[c];
    }
    x[r] = sum / diag;
  }
}

void SparseMatrix::gauss_seidel_backward(Vector<double> &x,
                                         const Vector<double> &b) const
{
  for (std::size_t rr = n_rows(); rr > 0; --rr)
  {
    const std::size_t r = rr - 1;
    double sum = b[r], diag = 1.;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
    {
      const std::size_t c = col_idx_[k];
      if (c == r)
        diag = values_[k];
      else
        sum -= values_[k] * x[c];
    }
    x[r] = sum / diag;
  }
}

} // namespace dgflow
