#pragma once

// Generic description of a continuous finite element space over the active
// mesh: per-cell dof tables (lexicographic over the (k+1)^3 Gauss-Lobatto
// lattice), hanging-node constraints, and Dirichlet flags. Two builders:
// from the general Q1 CFEDofHandler (any forest, hanging nodes), and from a
// global lattice for arbitrary degree on uniformly refined boxes (used by
// the CEED BP3 benchmark and the CFE(k) auxiliary multigrid level).

#include <functional>
#include <vector>

#include "dof/dof_handler.h"

namespace dgflow
{
struct CFESpace
{
  static constexpr std::uint32_t constraint_bit = 0x80000000u;

  std::size_t n_dofs = 0;
  unsigned int degree = 1;
  /// n_cells * (degree+1)^3 entries, lexicographic within the cell
  std::vector<std::uint32_t> cell_entries;
  std::vector<std::vector<CFEDofHandler::ConstraintEntry>> constraints;
  /// per-dof Dirichlet flag (those dofs are fixed to zero in level solves)
  std::vector<char> dirichlet;

  static bool is_constrained(const std::uint32_t e)
  {
    return (e & constraint_bit) != 0;
  }
};

/// Builds the Q1 space from the general dof handler, marking as Dirichlet
/// all dofs on boundaries for which @p is_dirichlet returns true.
inline CFESpace
make_q1_space(const CFEDofHandler &dofs,
              const std::function<bool(unsigned int)> &is_dirichlet)
{
  CFESpace space;
  space.n_dofs = dofs.n_dofs();
  space.degree = 1;
  const index_t n_cells = dofs.mesh().n_active_cells();
  space.cell_entries.resize(8 * std::size_t(n_cells));
  for (index_t c = 0; c < n_cells; ++c)
    for (unsigned int v = 0; v < 8; ++v)
      space.cell_entries[8 * std::size_t(c) + v] = dofs.cell_entry(c, v);
  space.constraints.resize(dofs.n_constraints());
  for (std::uint32_t i = 0; i < dofs.n_constraints(); ++i)
    space.constraints[i] = dofs.constraint(i | CFEDofHandler::constraint_bit);
  const auto flags = dofs.boundary_dof_flags(is_dirichlet);
  space.dirichlet.assign(flags.begin(), flags.end());
  return space;
}

/// Builds a degree-k continuous space on a uniformly refined subdivided box
/// (no hanging nodes): dofs indexed on the global Gauss-Lobatto lattice.
/// @p subdivisions are the coarse box subdivisions used by subdivided_box().
inline CFESpace make_lattice_space(
  const Mesh &mesh, const unsigned int degree,
  const std::array<unsigned int, 3> &subdivisions,
  const std::function<bool(unsigned int)> &is_dirichlet)
{
  CFESpace space;
  space.degree = degree;
  const unsigned int n1 = degree + 1;

  // all active cells must share one level
  const unsigned int level = mesh.cell(0).level;
  for (index_t c = 0; c < mesh.n_active_cells(); ++c)
    DGFLOW_ASSERT(mesh.cell(c).level == level,
                  "lattice space requires uniform refinement");
  const unsigned int m = 1u << level; // cells per tree per direction

  // global lattice size
  std::array<std::size_t, 3> N;
  for (unsigned int d = 0; d < dim; ++d)
    N[d] = std::size_t(subdivisions[d]) * m * degree + 1;
  space.n_dofs = N[0] * N[1] * N[2];
  space.dirichlet.assign(space.n_dofs, 0);

  const index_t n_cells = mesh.n_active_cells();
  space.cell_entries.resize(std::size_t(n_cells) * n1 * n1 * n1);
  for (index_t c = 0; c < n_cells; ++c)
  {
    const TreeCoord &tc = mesh.cell(c);
    // tree index -> box coordinates (generators order trees x-fastest)
    const unsigned int bt = tc.tree;
    const unsigned int bx = bt % subdivisions[0];
    const unsigned int by = (bt / subdivisions[0]) % subdivisions[1];
    const unsigned int bz = bt / (subdivisions[0] * subdivisions[1]);
    const std::size_t cx = std::size_t(bx) * m + tc.x;
    const std::size_t cy = std::size_t(by) * m + tc.y;
    const std::size_t cz = std::size_t(bz) * m + tc.z;
    for (unsigned int k = 0; k < n1; ++k)
      for (unsigned int j = 0; j < n1; ++j)
        for (unsigned int i = 0; i < n1; ++i)
        {
          const std::size_t gx = cx * degree + i;
          const std::size_t gy = cy * degree + j;
          const std::size_t gz = cz * degree + k;
          const std::size_t dof = (gz * N[1] + gy) * N[0] + gx;
          space.cell_entries[(std::size_t(c) * n1 * n1 + k * n1 + j) * n1 +
                             i] = static_cast<std::uint32_t>(dof);
          // boundary ids follow the colorized convention of subdivided_box
          const bool on_b[6] = {gx == 0,        gx == N[0] - 1, gy == 0,
                                gy == N[1] - 1, gz == 0,        gz == N[2] - 1};
          for (unsigned int f = 0; f < 6; ++f)
            if (on_b[f] && is_dirichlet(f))
              space.dirichlet[dof] = 1;
        }
  }
  return space;
}

} // namespace dgflow
