#pragma once

// The mixed-space coupling operators of the splitting scheme: velocity
// divergence D(U) tested with pressure functions and pressure gradient G(P)
// tested with velocity functions, both with central fluxes (paper Section
// 2.3). With homogeneous boundary data the two are negative adjoints of
// each other, which the test suite verifies.
//
// Both operators follow the unified evaluation interface documented in
// operators/README.md (contract v2): hooked vmult(dst, src, pre, post) for
// the homogeneous action, apply for the time-dependent action with
// inhomogeneous boundary data. The spaces differ between src and dst, so
// the pre hooks tile the src space's cell blocks and the post hooks the
// dst space's.

#include "instrumentation/profiler.h"
#include "matrixfree/cell_loop.h"
#include "matrixfree/fe_evaluation.h"
#include "matrixfree/fe_face_evaluation.h"
#include "operators/convective_operator.h"

namespace dgflow
{
template <typename Number>
class DivergenceOperator
{
public:
  using VA = VectorizedArray<Number>;
  using VectorType = Vector<Number>;

  void reinit(const MatrixFree<Number> &mf, const unsigned int u_space,
              const unsigned int p_space, const unsigned int quad,
              const FlowBoundaryMap &bc)
  {
    mf_ = &mf;
    u_space_ = u_space;
    p_space_ = p_space;
    quad_ = quad;
    bc_ = &bc;
  }

  /// dst (pressure space) = weak divergence of src (velocity space) with
  /// inhomogeneous velocity boundary data g_u evaluated at time @p t.
  void apply(VectorType &dst, const VectorType &src, const double t) const
  {
    dst.reinit(mf_->n_dofs(p_space_, 1), true);
    dst = Number(0);
    apply_add(dst, src, t, true, NoRangeHook(), NoRangeHook());
  }

  /// Homogeneous action (boundary data zeroed).
  template <typename PreFn = NoRangeHook, typename PostFn = NoRangeHook>
  void vmult(VectorType &dst, const VectorType &src, PreFn &&pre = PreFn(),
             PostFn &&post = PostFn()) const
  {
    dst.reinit(mf_->n_dofs(p_space_, 1), true);
    dst = Number(0);
    apply_add(dst, src, 0., false, std::forward<PreFn>(pre),
              std::forward<PostFn>(post));
  }

private:
  template <typename PreFn, typename PostFn>
  void apply_add(VectorType &dst, const VectorType &src, const double t,
                 const bool use_boundary_values, PreFn &&pre,
                 PostFn &&post) const
  {
    DGFLOW_PROF_SCOPE("divergence");
    DGFLOW_PROF_COUNT("mf_dofs", src.size() + dst.size());
    DGFLOW_PROF_THROUGHPUT("divergence", src.size());

    const auto make_kernels = [&, this](auto &dst_v) {
      auto u = std::make_shared<FEEvaluation<Number, 3>>(*mf_, u_space_, quad_);
      auto q_test =
        std::make_shared<FEEvaluation<Number, 1>>(*mf_, p_space_, quad_);
      auto u_m = std::make_shared<FEFaceEvaluation<Number, 3>>(
        *mf_, u_space_, quad_, true);
      auto u_p = std::make_shared<FEFaceEvaluation<Number, 3>>(
        *mf_, u_space_, quad_, false);
      auto q_m = std::make_shared<FEFaceEvaluation<Number, 1>>(
        *mf_, p_space_, quad_, true);
      auto q_p = std::make_shared<FEFaceEvaluation<Number, 1>>(
        *mf_, p_space_, quad_, false);

      const auto cell = [u, q_test, &dst_v, &src](const unsigned int b) {
        u->reinit(b);
        q_test->reinit(b);
        u->read_dof_values(src);
        u->evaluate(true, false);
        for (unsigned int q = 0; q < u->n_q_points; ++q)
          q_test->submit_gradient(-u->get_value(q), q);
        q_test->integrate(false, true);
        q_test->distribute_local_to_global(dst_v);
      };

      const auto inner = [u_m, u_p, q_m, q_p, &dst_v,
                          &src](const unsigned int b) {
        u_m->reinit(b);
        u_p->reinit(b);
        q_m->reinit(b);
        q_p->reinit(b);
        u_m->read_dof_values(src);
        u_p->read_dof_values(src);
        u_m->evaluate(true, false);
        u_p->evaluate(true, false);
        for (unsigned int q = 0; q < u_m->n_q_points; ++q)
        {
          const Tensor1<VA> n = u_m->get_normal_vector(q);
          const VA flux =
            Number(0.5) * dot(u_m->get_value(q) + u_p->get_value(q), n);
          q_m->submit_value(flux, q);
          q_p->submit_value(-flux, q);
        }
        q_m->integrate(true, false);
        q_p->integrate(true, false);
        q_m->distribute_local_to_global(dst_v);
        q_p->distribute_local_to_global(dst_v);
      };

      const auto boundary = [u_m, q_m, &dst_v, &src, t, use_boundary_values,
                             this](const unsigned int b) {
        u_m->reinit(b);
        q_m->reinit(b);
        const FlowBoundary &bdata = bc_->at(u_m->boundary_id());
        u_m->read_dof_values(src);
        u_m->evaluate(true, false);
        for (unsigned int q = 0; q < u_m->n_q_points; ++q)
        {
          const Tensor1<VA> n = u_m->get_normal_vector(q);
          Tensor1<VA> uhat = u_m->get_value(q);
          if (bdata.kind == FlowBoundary::Kind::velocity_dirichlet)
          {
            // ghost mirroring u+ = 2g - u- gives the central flux {u} = g
            if (use_boundary_values)
              uhat = ConvectiveOperator<Number>::evaluate_vector(
                bdata.velocity, *u_m, q, t);
            else
              uhat = Tensor1<VA>();
          }
          q_m->submit_value(dot(uhat, n), q);
        }
        q_m->integrate(true, false);
        q_m->distribute_local_to_global(dst_v);
      };

      return LoopKernels{cell, inner, boundary};
    };

    cell_face_loop(*mf_, dst, src, mf_->dofs_per_cell(p_space_),
                   3 * mf_->dofs_per_cell(u_space_), make_kernels,
                   std::forward<PreFn>(pre), std::forward<PostFn>(post));
  }

  const MatrixFree<Number> *mf_ = nullptr;
  unsigned int u_space_ = 0, p_space_ = 0, quad_ = 0;
  const FlowBoundaryMap *bc_ = nullptr;
};

template <typename Number>
class GradientOperator
{
public:
  using VA = VectorizedArray<Number>;
  using VectorType = Vector<Number>;

  void reinit(const MatrixFree<Number> &mf, const unsigned int u_space,
              const unsigned int p_space, const unsigned int quad,
              const FlowBoundaryMap &bc)
  {
    mf_ = &mf;
    u_space_ = u_space;
    p_space_ = p_space;
    quad_ = quad;
    bc_ = &bc;
  }

  /// dst (velocity space) = weak pressure gradient of src (pressure space)
  /// with inhomogeneous pressure boundary data g_p evaluated at time @p t.
  void apply(VectorType &dst, const VectorType &src, const double t) const
  {
    dst.reinit(mf_->n_dofs(u_space_, 3), true);
    dst = Number(0);
    apply_add(dst, src, t, true, NoRangeHook(), NoRangeHook());
  }

  /// Homogeneous action (boundary data zeroed).
  template <typename PreFn = NoRangeHook, typename PostFn = NoRangeHook>
  void vmult(VectorType &dst, const VectorType &src, PreFn &&pre = PreFn(),
             PostFn &&post = PostFn()) const
  {
    dst.reinit(mf_->n_dofs(u_space_, 3), true);
    dst = Number(0);
    apply_add(dst, src, 0., false, std::forward<PreFn>(pre),
              std::forward<PostFn>(post));
  }

private:
  template <typename PreFn, typename PostFn>
  void apply_add(VectorType &dst, const VectorType &src, const double t,
                 const bool use_boundary_values, PreFn &&pre,
                 PostFn &&post) const
  {
    DGFLOW_PROF_SCOPE("gradient");
    DGFLOW_PROF_COUNT("mf_dofs", src.size() + dst.size());
    DGFLOW_PROF_THROUGHPUT("gradient", src.size());

    const auto make_kernels = [&, this](auto &dst_v) {
      auto p = std::make_shared<FEEvaluation<Number, 1>>(*mf_, p_space_, quad_);
      auto v_test =
        std::make_shared<FEEvaluation<Number, 3>>(*mf_, u_space_, quad_);
      auto p_m = std::make_shared<FEFaceEvaluation<Number, 1>>(
        *mf_, p_space_, quad_, true);
      auto p_p = std::make_shared<FEFaceEvaluation<Number, 1>>(
        *mf_, p_space_, quad_, false);
      auto v_m = std::make_shared<FEFaceEvaluation<Number, 3>>(
        *mf_, u_space_, quad_, true);
      auto v_p = std::make_shared<FEFaceEvaluation<Number, 3>>(
        *mf_, u_space_, quad_, false);

      const auto cell = [p, v_test, &dst_v, &src](const unsigned int b) {
        p->reinit(b);
        v_test->reinit(b);
        p->read_dof_values(src);
        p->evaluate(true, false);
        for (unsigned int q = 0; q < p->n_q_points; ++q)
          v_test->submit_divergence(-p->get_value(q), q);
        v_test->integrate(false, true);
        v_test->distribute_local_to_global(dst_v);
      };

      const auto inner = [p_m, p_p, v_m, v_p, &dst_v,
                          &src](const unsigned int b) {
        p_m->reinit(b);
        p_p->reinit(b);
        v_m->reinit(b);
        v_p->reinit(b);
        p_m->read_dof_values(src);
        p_p->read_dof_values(src);
        p_m->evaluate(true, false);
        p_p->evaluate(true, false);
        for (unsigned int q = 0; q < p_m->n_q_points; ++q)
        {
          const VA phat =
            Number(0.5) * (p_m->get_value(q) + p_p->get_value(q));
          // {p} [v].n: each side tests with its own outward normal
          v_m->submit_value(phat * v_m->get_normal_vector(q), q);
          v_p->submit_value(phat * v_p->get_normal_vector(q), q);
        }
        v_m->integrate(true, false);
        v_p->integrate(true, false);
        v_m->distribute_local_to_global(dst_v);
        v_p->distribute_local_to_global(dst_v);
      };

      const auto boundary = [p_m, v_m, &dst_v, &src, t, use_boundary_values,
                             this](const unsigned int b) {
        p_m->reinit(b);
        v_m->reinit(b);
        const FlowBoundary &bdata = bc_->at(p_m->boundary_id());
        p_m->read_dof_values(src);
        p_m->evaluate(true, false);
        for (unsigned int q = 0; q < p_m->n_q_points; ++q)
        {
          VA phat = p_m->get_value(q);
          if (bdata.kind == FlowBoundary::Kind::pressure)
          {
            // ghost mirroring p+ = 2g - p- gives the central flux {p} = g
            if (use_boundary_values)
            {
              const auto xq = p_m->quadrature_point(q);
              VA g;
              for (unsigned int l = 0; l < VA::width; ++l)
                g[l] = Number(
                  bdata.pressure(Point(xq[0][l], xq[1][l], xq[2][l]), t));
              phat = g;
            }
            else
              phat = VA(Number(0));
          }
          v_m->submit_value(phat * v_m->get_normal_vector(q), q);
        }
        v_m->integrate(true, false);
        v_m->distribute_local_to_global(dst_v);
      };

      return LoopKernels{cell, inner, boundary};
    };

    cell_face_loop(*mf_, dst, src, 3 * mf_->dofs_per_cell(u_space_),
                   mf_->dofs_per_cell(p_space_), make_kernels,
                   std::forward<PreFn>(pre), std::forward<PostFn>(post));
  }

  const MatrixFree<Number> *mf_ = nullptr;
  unsigned int u_space_ = 0, p_space_ = 0, quad_ = 0;
  const FlowBoundaryMap *bc_ = nullptr;
};

} // namespace dgflow
