#pragma once

// Boundary-condition descriptors shared by the operators. Each boundary id
// of the mesh is mapped to a condition type; the incompressible solver uses
// complementary types for velocity and pressure (paper Section 2.4: velocity
// Dirichlet walls get pressure Neumann, pressure Dirichlet in/outflows get
// velocity Neumann).

#include <map>

#include "common/exceptions.h"

namespace dgflow
{
enum class BoundaryType
{
  dirichlet,
  neumann
};

class BoundaryMap
{
public:
  BoundaryMap() = default;

  explicit BoundaryMap(std::map<unsigned int, BoundaryType> types)
    : types_(std::move(types))
  {}

  void set(const unsigned int id, const BoundaryType type)
  {
    types_[id] = type;
  }

  BoundaryType type_of(const unsigned int id) const
  {
    const auto it = types_.find(id);
    DGFLOW_ASSERT(it != types_.end(),
                  "no boundary condition registered for boundary id " << id);
    return it->second;
  }

  bool empty() const { return types_.empty(); }

private:
  std::map<unsigned int, BoundaryType> types_;
};

} // namespace dgflow
