#pragma once

// Mass operator and its exact inverse. With the nodal basis collocated at
// the Gauss quadrature points, the DG mass matrix is diagonal with entries
// JxW even on deformed cells - the property the dual splitting scheme
// exploits for the cheap M^{-1} applications in Eqs. (1) and (3) and as the
// preconditioner of the projection/penalty solves (paper Section 5.3).
//
// Evaluation interface per operators/README.md (contract v2): hooked
// vmult(dst, src, pre, post) driven by cell_only_loop (the operator is
// cell-local and time-independent); apply_inverse is the extra
// exact-inverse entry point the splitting scheme relies on.

#include "instrumentation/profiler.h"
#include "matrixfree/cell_loop.h"
#include "matrixfree/fe_evaluation.h"

namespace dgflow
{
template <typename Number, int n_components = 1>
class MassOperator
{
public:
  using VA = VectorizedArray<Number>;
  using VectorType = Vector<Number>;

  void reinit(const MatrixFree<Number> &mf, const unsigned int space,
              const unsigned int quad)
  {
    mf_ = &mf;
    space_ = space;
    quad_ = quad;
    DGFLOW_ASSERT(mf.shape_info(space, quad).collocation,
                  "MassOperator requires the collocated quadrature");
  }

  std::size_t n_dofs() const { return mf_->n_dofs(space_, n_components); }

  template <typename PreFn = NoRangeHook, typename PostFn = NoRangeHook>
  void vmult(VectorType &dst, const VectorType &src, PreFn &&pre = PreFn(),
             PostFn &&post = PostFn()) const
  {
    dst.reinit(n_dofs(), true);
    apply_scaled<false>(dst, src, std::forward<PreFn>(pre),
                        std::forward<PostFn>(post));
  }

  /// dst = M^{-1} src (exact, diagonal in the collocated basis).
  template <typename PreFn = NoRangeHook, typename PostFn = NoRangeHook>
  void apply_inverse(VectorType &dst, const VectorType &src,
                     PreFn &&pre = PreFn(), PostFn &&post = PostFn()) const
  {
    dst.reinit(n_dofs(), true);
    apply_scaled<true>(dst, src, std::forward<PreFn>(pre),
                       std::forward<PostFn>(post));
  }

private:
  template <bool inverse, typename PreFn, typename PostFn>
  void apply_scaled(VectorType &dst, const VectorType &src, PreFn &&pre,
                    PostFn &&post) const
  {
    DGFLOW_PROF_SCOPE(inverse ? "mass_inverse" : "mass");
    DGFLOW_PROF_COUNT("mf_dofs", src.size() + dst.size());
    DGFLOW_PROF_THROUGHPUT(inverse ? "mass_inverse" : "mass",
                           src.size());
    const auto &metric = mf_->cell_metric(quad_);
    const unsigned int nq = metric.n_q;
    const auto make_cell = [&metric, nq, &src, this](auto &dst_v) {
      return [&metric, nq, &dst_v, &src, this](const unsigned int b) {
        const auto &batch = mf_->cell_batch(b);
        for (unsigned int l = 0; l < batch.n_filled; ++l)
        {
          const std::size_t base =
            std::size_t(batch.cells[l]) * nq * n_components;
          for (int c = 0; c < n_components; ++c)
            for (unsigned int q = 0; q < nq; ++q)
            {
              const Number jxw = metric.jxw(b, q)[l];
              const std::size_t idx = base + c * nq + q;
              dst_v[idx] = inverse ? src[idx] / jxw : src[idx] * jxw;
            }
        }
      };
    };
    const unsigned int block = nq * n_components;
    cell_only_loop(*mf_, dst, src, block, block, make_cell,
                   std::forward<PreFn>(pre), std::forward<PostFn>(post));
  }

  const MatrixFree<Number> *mf_ = nullptr;
  unsigned int space_ = 0, quad_ = 0;
};

} // namespace dgflow
