#pragma once

// Matrix-free Laplacian on continuous finite element spaces (the auxiliary
// levels of the hybrid multigrid hierarchy, paper Section 3.4). Continuity
// removes all face terms; the cell kernel is identical to the DG one, while
// gather/scatter resolve shared dofs, hanging-node constraints and Dirichlet
// conditions on the fly. Also provides the assembled CSR matrix for the
// algebraic coarse solver.
//
// Evaluation interface per operators/README.md (contract v2): hooked
// vmult(dst, src, pre, post) for the homogeneous action (the level
// operators of the V-cycle act on residuals, so no inhomogeneous apply is
// needed). Vertex dofs are shared between cells, so per-batch hook ranges
// would overlap: the contract degrades to a single whole-range pre before
// the loop and a single whole-range post after the Dirichlet rows.

#include "amg/sparse_matrix.h"
#include "common/loop_hooks.h"
#include "instrumentation/profiler.h"
#include "matrixfree/fe_evaluation.h"
#include "operators/cfe_space.h"

namespace dgflow
{
template <typename Number>
class CFELaplaceOperator
{
public:
  using VA = VectorizedArray<Number>;
  using VectorType = Vector<Number>;
  static constexpr unsigned int n_lanes = VA::width;

  void reinit(const MatrixFree<Number> &mf, const unsigned int space,
              const unsigned int quad, const CFESpace &cfe)
  {
    mf_ = &mf;
    space_ = space;
    quad_ = quad;
    cfe_ = &cfe;
    DGFLOW_ASSERT(mf.degree(space) == cfe.degree, "degree mismatch");
  }

  std::size_t n_dofs() const { return cfe_->n_dofs; }
  const CFESpace &space() const { return *cfe_; }

  void initialize_vector(VectorType &v) const { v.reinit(n_dofs()); }

  template <typename PreFn = NoRangeHook, typename PostFn = NoRangeHook>
  void vmult(VectorType &dst, const VectorType &src, PreFn &&pre = PreFn(),
             PostFn &&post = PostFn()) const
  {
    dst.reinit(n_dofs(), true);
    dst = Number(0);
    DGFLOW_PROF_SCOPE("cfe_laplace");
    DGFLOW_PROF_COUNT("mf_cell_batches", mf_->n_cell_batches());
    DGFLOW_PROF_COUNT("mf_dofs", src.size() + dst.size());
    DGFLOW_PROF_THROUGHPUT("cfe_laplace", src.size());

    // shared vertex dofs: whole-range hook degradation (see header comment)
    if constexpr (!internal::is_no_hook_v<PreFn>)
      pre(0, src.size());

    FEEvaluation<Number, 1> phi(*mf_, space_, quad_);
    const unsigned int npc = phi.dofs_per_component;
    for (unsigned int b = 0; b < mf_->n_cell_batches(); ++b)
    {
      phi.reinit(b);
      gather(b, src, phi.begin_dof_values(), npc);
      phi.evaluate(false, true);
      for (unsigned int q = 0; q < phi.n_q_points; ++q)
        phi.submit_gradient(phi.get_gradient(q), q);
      phi.integrate(false, true);
      scatter_add(b, phi.begin_dof_values(), dst, npc);
    }

    // identity rows on Dirichlet dofs keep the operator SPD
    for (std::size_t i = 0; i < n_dofs(); ++i)
      if (cfe_->dirichlet[i])
        dst[i] += src[i];

    if constexpr (!internal::is_no_hook_v<PostFn>)
      post(0, dst.size());
  }

  void compute_diagonal(VectorType &diag) const
  {
    diag.reinit(n_dofs());
    FEEvaluation<Number, 1> phi(*mf_, space_, quad_);
    const unsigned int npc = phi.dofs_per_component;
    AlignedVector<VA> column(npc), diag_local(npc);
    for (unsigned int b = 0; b < mf_->n_cell_batches(); ++b)
    {
      phi.reinit(b);
      for (unsigned int i = 0; i < npc; ++i)
      {
        for (unsigned int j = 0; j < npc; ++j)
          phi.begin_dof_values()[j] = VA(Number(i == j ? 1 : 0));
        phi.evaluate(false, true);
        for (unsigned int q = 0; q < phi.n_q_points; ++q)
          phi.submit_gradient(phi.get_gradient(q), q);
        phi.integrate(false, true);
        diag_local[i] = phi.begin_dof_values()[i];
      }
      // scatter the diagonal: constrained entries distribute w^2 onto the
      // master diagonal (the Galerkin diagonal of C^T A C)
      const auto &batch = mf_->cell_batch(b);
      for (unsigned int l = 0; l < batch.n_filled; ++l)
      {
        const std::uint32_t *entries =
          cfe_->cell_entries.data() + std::size_t(batch.cells[l]) * npc;
        for (unsigned int i = 0; i < npc; ++i)
        {
          const std::uint32_t e = entries[i];
          if (CFESpace::is_constrained(e))
          {
            for (const auto &ce :
                 cfe_->constraints[e & ~CFESpace::constraint_bit])
              if (!cfe_->dirichlet[ce.dof])
                diag[ce.dof] +=
                  Number(ce.weight * ce.weight) * diag_local[i][l];
          }
          else if (!cfe_->dirichlet[e])
            diag[e] += diag_local[i][l];
        }
      }
    }
    for (std::size_t i = 0; i < n_dofs(); ++i)
      if (cfe_->dirichlet[i])
        diag[i] = Number(1);
  }

  /// Assembles the full CSR matrix (double precision) for the AMG coarse
  /// solver, with constraints condensed and Dirichlet identity rows.
  SparseMatrix assemble_matrix() const
  {
    FEEvaluation<Number, 1> phi(*mf_, space_, quad_);
    const unsigned int npc = phi.dofs_per_component;
    std::vector<SparseMatrix::Triplet> triplets;
    col_buffer_.resize(std::size_t(npc) * npc);

    for (unsigned int b = 0; b < mf_->n_cell_batches(); ++b)
    {
      phi.reinit(b);
      for (unsigned int i = 0; i < npc; ++i)
      {
        for (unsigned int j = 0; j < npc; ++j)
          phi.begin_dof_values()[j] = VA(Number(i == j ? 1 : 0));
        phi.evaluate(false, true);
        for (unsigned int q = 0; q < phi.n_q_points; ++q)
          phi.submit_gradient(phi.get_gradient(q), q);
        phi.integrate(false, true);
        // copy column i out; the evaluator buffer is reused per column
        for (unsigned int j = 0; j < npc; ++j)
          col_buffer_[std::size_t(i) * npc + j] = phi.begin_dof_values()[j];
      }

      const auto &batch = mf_->cell_batch(b);
      for (unsigned int l = 0; l < batch.n_filled; ++l)
      {
        const std::uint32_t *entries =
          cfe_->cell_entries.data() + std::size_t(batch.cells[l]) * npc;
        // expand (row j, col i) with constraints
        for (unsigned int i = 0; i < npc; ++i)
          for (unsigned int j = 0; j < npc; ++j)
          {
            const double v = double(col_buffer_[std::size_t(i) * npc + j][l]);
            if (v == 0.)
              continue;
            add_expanded(triplets, entries[j], entries[i], v);
          }
      }
    }

    for (std::size_t i = 0; i < n_dofs(); ++i)
      if (cfe_->dirichlet[i])
        triplets.push_back({i, i, 1.});
    return SparseMatrix::from_triplets(n_dofs(), n_dofs(), std::move(triplets));
  }

private:
  void add_expanded(std::vector<SparseMatrix::Triplet> &triplets,
                    const std::uint32_t row_e, const std::uint32_t col_e,
                    const double v) const
  {
    auto rows = expand(row_e);
    auto cols = expand(col_e);
    for (const auto &[r, wr] : rows)
      for (const auto &[c, wc] : cols)
        if (!cfe_->dirichlet[r] && !cfe_->dirichlet[c])
          triplets.push_back({r, c, wr * wc * v});
  }

  std::vector<std::pair<std::size_t, double>>
  expand(const std::uint32_t e) const
  {
    std::vector<std::pair<std::size_t, double>> out;
    if (CFESpace::is_constrained(e))
      for (const auto &ce : cfe_->constraints[e & ~CFESpace::constraint_bit])
        out.emplace_back(ce.dof, ce.weight);
    else
      out.emplace_back(e, 1.);
    return out;
  }

  void gather(const unsigned int b, const VectorType &src, VA *local,
              const unsigned int npc) const
  {
    const auto &batch = mf_->cell_batch(b);
    for (unsigned int l = 0; l < n_lanes; ++l)
    {
      const std::uint32_t *entries =
        cfe_->cell_entries.data() + std::size_t(batch.cells[l]) * npc;
      for (unsigned int i = 0; i < npc; ++i)
      {
        const std::uint32_t e = entries[i];
        Number v;
        if (CFESpace::is_constrained(e))
        {
          v = Number(0);
          for (const auto &ce :
               cfe_->constraints[e & ~CFESpace::constraint_bit])
            if (!cfe_->dirichlet[ce.dof])
              v += Number(ce.weight) * src[ce.dof];
        }
        else
          v = cfe_->dirichlet[e] ? Number(0) : src[e];
        local[i][l] = v;
      }
    }
  }

  void scatter_add(const unsigned int b, const VA *local, VectorType &dst,
                   const unsigned int npc) const
  {
    const auto &batch = mf_->cell_batch(b);
    for (unsigned int l = 0; l < batch.n_filled; ++l)
    {
      const std::uint32_t *entries =
        cfe_->cell_entries.data() + std::size_t(batch.cells[l]) * npc;
      for (unsigned int i = 0; i < npc; ++i)
      {
        const std::uint32_t e = entries[i];
        if (CFESpace::is_constrained(e))
        {
          for (const auto &ce :
               cfe_->constraints[e & ~CFESpace::constraint_bit])
            if (!cfe_->dirichlet[ce.dof])
              dst[ce.dof] += Number(ce.weight) * local[i][l];
        }
        else if (!cfe_->dirichlet[e])
          dst[e] += local[i][l];
      }
    }
  }

  const MatrixFree<Number> *mf_ = nullptr;
  unsigned int space_ = 0, quad_ = 0;
  const CFESpace *cfe_ = nullptr;
  mutable AlignedVector<VA> col_buffer_;
};

} // namespace dgflow
