#pragma once

// Vector-valued Helmholtz operator of the viscous step (Eq. 4 of the paper):
// (gamma0/dt) M + nu * A_SIP applied componentwise, matrix-free, with
// velocity Dirichlet (mirror ghost) and Neumann (do-nothing) boundaries.
// With mass_factor = 0 this is the pure viscous operator V(U).
//
// Evaluation interface per operators/README.md (contract v2): hooked
// vmult(dst, src, pre, post) for the homogeneous action; inhomogeneous
// boundary data enters via add_boundary_rhs (the operator itself is
// time-independent).

#include "instrumentation/profiler.h"
#include "matrixfree/cell_loop.h"
#include "matrixfree/fe_evaluation.h"
#include "matrixfree/fe_face_evaluation.h"
#include "operators/convective_operator.h"

namespace dgflow
{
template <typename Number>
class HelmholtzOperator
{
public:
  using VA = VectorizedArray<Number>;
  using VectorType = Vector<Number>;

  void reinit(const MatrixFree<Number> &mf, const unsigned int u_space,
              const unsigned int quad, const FlowBoundaryMap &bc,
              const Number viscosity)
  {
    mf_ = &mf;
    space_ = u_space;
    quad_ = quad;
    bc_ = &bc;
    nu_ = viscosity;
  }

  /// Sets the mass shift gamma0/dt (0 = pure viscous operator).
  void set_mass_factor(const Number m) { mass_factor_ = m; }
  Number mass_factor() const { return mass_factor_; }

  std::size_t n_dofs() const { return mf_->n_dofs(space_, 3); }

  template <typename PreFn = NoRangeHook, typename PostFn = NoRangeHook>
  void vmult(VectorType &dst, const VectorType &src, PreFn &&pre = PreFn(),
             PostFn &&post = PostFn()) const
  {
    dst.reinit(n_dofs(), true);
    dst = Number(0);
    DGFLOW_PROF_SCOPE("helmholtz");
    DGFLOW_PROF_COUNT("mf_dofs", src.size() + dst.size());
    DGFLOW_PROF_THROUGHPUT("helmholtz", src.size());

    const auto make_kernels = [&, this](auto &dst_v) {
      auto phi =
        std::make_shared<FEEvaluation<Number, 3>>(*mf_, space_, quad_);
      auto phi_m = std::make_shared<FEFaceEvaluation<Number, 3>>(
        *mf_, space_, quad_, true);
      auto phi_p = std::make_shared<FEFaceEvaluation<Number, 3>>(
        *mf_, space_, quad_, false);

      const auto cell = [phi, &dst_v, &src, this](const unsigned int b) {
        phi->reinit(b);
        phi->read_dof_values(src);
        phi->evaluate(true, true);
        for (unsigned int q = 0; q < phi->n_q_points; ++q)
        {
          if (mass_factor_ != Number(0))
            phi->submit_value(mass_factor_ * phi->get_value(q), q);
          Tensor2<VA> g = phi->get_gradient(q);
          for (unsigned int i = 0; i < dim; ++i)
            for (unsigned int j = 0; j < dim; ++j)
              g[i][j] = nu_ * g[i][j];
          phi->submit_gradient(g, q);
        }
        phi->integrate(mass_factor_ != Number(0), true);
        phi->distribute_local_to_global(dst_v);
      };

      const auto inner = [phi_m, phi_p, &dst_v, &src,
                          this](const unsigned int b) {
        phi_m->reinit(b);
        phi_p->reinit(b);
        phi_m->read_dof_values(src);
        phi_p->read_dof_values(src);
        phi_m->evaluate(true, true);
        phi_p->evaluate(true, true);
        const VA sigma = phi_m->penalty_parameter();
        for (unsigned int q = 0; q < phi_m->n_q_points; ++q)
        {
          const Tensor1<VA> jump = phi_m->get_value(q) - phi_p->get_value(q);
          const Tensor1<VA> avg_dn =
            Number(0.5) * (phi_m->get_normal_derivative(q) -
                           phi_p->get_normal_derivative(q));
          Tensor1<VA> flux, w;
          for (unsigned int c = 0; c < dim; ++c)
          {
            flux[c] = nu_ * (sigma * jump[c] - avg_dn[c]);
            w[c] = nu_ * Number(-0.5) * jump[c];
          }
          phi_m->submit_value(flux, q);
          phi_p->submit_value(-flux, q);
          phi_m->submit_normal_derivative(w, q);
          phi_p->submit_normal_derivative(-w, q);
        }
        phi_m->integrate(true, true);
        phi_p->integrate(true, true);
        phi_m->distribute_local_to_global(dst_v);
        phi_p->distribute_local_to_global(dst_v);
      };

      const auto boundary = [phi_m, &dst_v, &src, this](const unsigned int b) {
        phi_m->reinit(b);
        const FlowBoundary &bdata = bc_->at(phi_m->boundary_id());
        if (bdata.kind != FlowBoundary::Kind::velocity_dirichlet)
          return; // natural (do-nothing) on pressure boundaries
        phi_m->read_dof_values(src);
        phi_m->evaluate(true, true);
        const VA sigma = phi_m->penalty_parameter();
        for (unsigned int q = 0; q < phi_m->n_q_points; ++q)
        {
          const Tensor1<VA> u = phi_m->get_value(q);
          const Tensor1<VA> dn = phi_m->get_normal_derivative(q);
          Tensor1<VA> flux, w;
          for (unsigned int c = 0; c < dim; ++c)
          {
            flux[c] = nu_ * (Number(2) * sigma * u[c] - dn[c]);
            w[c] = -nu_ * u[c];
          }
          phi_m->submit_value(flux, q);
          phi_m->submit_normal_derivative(w, q);
        }
        phi_m->integrate(true, true);
        phi_m->distribute_local_to_global(dst_v);
      };

      return LoopKernels{cell, inner, boundary};
    };

    const unsigned int block = 3 * mf_->dofs_per_cell(space_);
    cell_face_loop(*mf_, dst, src, block, block, make_kernels,
                   std::forward<PreFn>(pre), std::forward<PostFn>(post));
  }

  /// Adds the inhomogeneous boundary contributions to @p rhs: Dirichlet data
  /// g_u and (optional, analytic tests) Neumann data dg/dn at time @p t.
  void add_boundary_rhs(VectorType &rhs, const double t,
                        const VectorFunctionT &neumann_data = {}) const
  {
    FEFaceEvaluation<Number, 3> phi(*mf_, space_, quad_, true);
    for (unsigned int b = mf_->n_inner_face_batches();
         b < mf_->n_face_batches(); ++b)
    {
      phi.reinit(b);
      const FlowBoundary &bdata = bc_->at(phi.boundary_id());
      const bool dirichlet =
        bdata.kind == FlowBoundary::Kind::velocity_dirichlet;
      if (!dirichlet && !neumann_data)
        continue;
      const VA sigma = phi.penalty_parameter();
      for (unsigned int q = 0; q < phi.n_q_points; ++q)
      {
        if (dirichlet)
        {
          // standard SIP data terms: + 2 nu sigma g v - nu g dv/dn
          const Tensor1<VA> g = ConvectiveOperator<Number>::evaluate_vector(
            bdata.velocity, phi, q, t);
          Tensor1<VA> fv, fg;
          for (unsigned int c = 0; c < dim; ++c)
          {
            fv[c] = nu_ * Number(2) * sigma * g[c];
            fg[c] = -nu_ * g[c];
          }
          phi.submit_value(fv, q);
          phi.submit_normal_derivative(fg, q);
        }
        else
        {
          const Tensor1<VA> h = ConvectiveOperator<Number>::evaluate_vector(
            neumann_data, phi, q, t);
          Tensor1<VA> hv;
          for (unsigned int c = 0; c < dim; ++c)
            hv[c] = nu_ * h[c];
          phi.submit_value(hv, q);
          phi.submit_normal_derivative(Tensor1<VA>(), q);
        }
      }
      phi.integrate(true, true);
      phi.distribute_local_to_global(rhs);
    }
  }

  void compute_diagonal(VectorType &diag) const
  {
    diag.reinit(n_dofs());
    const unsigned int npc = mf_->dofs_per_cell(space_);
    const unsigned int n_cell_dofs = 3 * npc;
    AlignedVector<VA> buffer(n_cell_dofs);

    FEEvaluation<Number, 3> phi(*mf_, space_, quad_);
    for (unsigned int b = 0; b < mf_->n_cell_batches(); ++b)
    {
      phi.reinit(b);
      // the three components are decoupled and identical: probe one
      for (unsigned int i = 0; i < npc; ++i)
      {
        for (unsigned int j = 0; j < n_cell_dofs; ++j)
          phi.begin_dof_values()[j] = VA(Number(0));
        phi.begin_dof_values()[i] = VA(Number(1));
        phi.evaluate(true, true);
        for (unsigned int q = 0; q < phi.n_q_points; ++q)
        {
          if (mass_factor_ != Number(0))
            phi.submit_value(mass_factor_ * phi.get_value(q), q);
          Tensor2<VA> g = phi.get_gradient(q);
          for (unsigned int r = 0; r < dim; ++r)
            for (unsigned int s = 0; s < dim; ++s)
              g[r][s] = nu_ * g[r][s];
          phi.submit_gradient(g, q);
        }
        phi.integrate(mass_factor_ != Number(0), true);
        for (unsigned int c = 0; c < dim; ++c)
          buffer[c * npc + i] = phi.begin_dof_values()[i];
      }
      for (unsigned int j = 0; j < n_cell_dofs; ++j)
        phi.begin_dof_values()[j] = buffer[j];
      phi.distribute_local_to_global(diag);
    }

    // face contributions (same-side coupling), scalar probing replicated
    FEFaceEvaluation<Number, 3> fm(*mf_, space_, quad_, true);
    FEFaceEvaluation<Number, 3> fp(*mf_, space_, quad_, false);
    AlignedVector<VA> fbuffer(n_cell_dofs);
    for (unsigned int b = 0; b < mf_->n_face_batches(); ++b)
    {
      const bool interior = b < mf_->n_inner_face_batches();
      if (!interior)
      {
        fm.reinit(b);
        if (bc_->at(fm.boundary_id()).kind !=
            FlowBoundary::Kind::velocity_dirichlet)
          continue;
      }
      for (unsigned int side = 0; side < (interior ? 2u : 1u); ++side)
      {
        auto &eval = side == 0 ? fm : fp;
        eval.reinit(b);
        const VA sigma = eval.penalty_parameter();
        for (unsigned int i = 0; i < npc; ++i)
        {
          for (unsigned int j = 0; j < n_cell_dofs; ++j)
            eval.begin_dof_values()[j] = VA(Number(0));
          eval.begin_dof_values()[i] = VA(Number(1));
          eval.evaluate(true, true);
          for (unsigned int q = 0; q < eval.n_q_points; ++q)
          {
            const Tensor1<VA> u = eval.get_value(q);
            const Tensor1<VA> dn = eval.get_normal_derivative(q);
            Tensor1<VA> flux, w;
            const Number pen_scale = interior ? Number(1) : Number(2);
            const Number half = interior ? Number(0.5) : Number(1);
            for (unsigned int c = 0; c < dim; ++c)
            {
              flux[c] = nu_ * (pen_scale * sigma * u[c] - half * dn[c]);
              w[c] = -nu_ * half * u[c];
            }
            eval.submit_value(flux, q);
            eval.submit_normal_derivative(w, q);
          }
          eval.integrate(true, true);
          for (unsigned int c = 0; c < dim; ++c)
            fbuffer[c * npc + i] = eval.begin_dof_values()[i];
        }
        for (unsigned int j = 0; j < n_cell_dofs; ++j)
          eval.begin_dof_values()[j] = fbuffer[j];
        eval.distribute_local_to_global(diag);
      }
    }
  }

private:
  const MatrixFree<Number> *mf_ = nullptr;
  unsigned int space_ = 0, quad_ = 0;
  const FlowBoundaryMap *bc_ = nullptr;
  Number nu_ = Number(1);
  Number mass_factor_ = Number(0);
};

} // namespace dgflow
