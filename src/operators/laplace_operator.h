#pragma once

// Symmetric interior penalty (SIP) DG Laplacian, evaluated matrix-free
// (Eq. (7) of the paper): cell loop for the grad-grad term and face loops
// for consistency, adjoint-consistency and penalty terms. This operator is
// the left-hand side of the pressure Poisson equation (2) and the workhorse
// of the multigrid smoother benchmarks (Figs. 6-10).
//
// Evaluation interface per operators/README.md (contract v2): hooked
// vmult(dst, src, pre, post) for the homogeneous action, driven by the
// shared cell_face_loop; inhomogeneous data enters via assemble_rhs.

#include "instrumentation/profiler.h"
#include "matrixfree/cell_loop.h"
#include "matrixfree/fe_evaluation.h"
#include "matrixfree/fe_face_evaluation.h"
#include "matrixfree/field_tools.h"
#include "operators/boundary.h"

namespace dgflow
{
template <typename Number>
class LaplaceOperator
{
public:
  using VA = VectorizedArray<Number>;
  using VectorType = Vector<Number>;

  LaplaceOperator() = default;

  void reinit(const MatrixFree<Number> &mf, const unsigned int space,
              const unsigned int quad, BoundaryMap bc)
  {
    mf_ = &mf;
    space_ = space;
    quad_ = quad;
    bc_ = std::move(bc);
  }

  const MatrixFree<Number> &matrix_free() const { return *mf_; }
  unsigned int space() const { return space_; }
  unsigned int quad() const { return quad_; }

  std::size_t n_dofs() const { return mf_->n_dofs(space_, 1); }

  void initialize_vector(VectorType &v) const { v.reinit(n_dofs()); }

  /// Templated on the vector type (vector-space concept): a serial Vector
  /// runs the classic cell/inner-face/boundary-face loops; a
  /// vmpi::DistributedVector runs this rank's batch ranges with the ghost
  /// exchange overlapped behind the owned-cell loop. dst comes back
  /// owned-only (both sides of a cut face evaluate the full flux and keep
  /// their own side, so no compress is needed); src is left ghosted.
  ///
  /// Contract v2 hooks: pre/post are per-cell-batch DoF-range callbacks
  /// executed by cell_face_loop before the batch's src entries are first
  /// read and after its dst entries are last written (loop_hooks.h); the
  /// defaults compile the scheduling away.
  template <typename VectorType2, typename PreFn = NoRangeHook,
            typename PostFn = NoRangeHook>
  void vmult(VectorType2 &dst, const VectorType2 &src, PreFn &&pre = PreFn(),
             PostFn &&post = PostFn()) const
  {
    if constexpr (is_distributed_vector_v<VectorType2>)
      dst.reinit_like(src, true);
    else
      dst.reinit(n_dofs(), true);
    dst = Number(0);
    DGFLOW_PROF_SCOPE("laplace");
    DGFLOW_PROF_COUNT("mf_dofs", src.size() + dst.size());
    DGFLOW_PROF_THROUGHPUT("laplace", n_dofs());
    DGFLOW_PROF_GAUGE("laplace_bytes_per_dof",
                      mf_->estimated_vmult_bytes_per_dof(space_, quad_));

    // kernel factory: one evaluator set (with private scratch) per kernel
    // set the loop driver requests — one for the serial sweep, one per
    // thread chunk for the parallel sweep
    const auto make_kernels = [&, this](auto &dst_v) {
      auto phi =
        std::make_shared<FEEvaluation<Number, 1>>(*mf_, space_, quad_);
      auto phi_m = std::make_shared<FEFaceEvaluation<Number, 1>>(
        *mf_, space_, quad_, true);
      auto phi_p = std::make_shared<FEFaceEvaluation<Number, 1>>(
        *mf_, space_, quad_, false);

      const auto cell = [phi, &dst_v, &src](const unsigned int b) {
        phi->reinit(b);
        phi->read_dof_values(src);
        phi->evaluate(false, true);
        for (unsigned int q = 0; q < phi->n_q_points; ++q)
          phi->submit_gradient(phi->get_gradient(q), q);
        phi->integrate(false, true);
        phi->distribute_local_to_global(dst_v);
      };

      const auto inner = [phi_m, phi_p, &dst_v, &src](const unsigned int b) {
        phi_m->reinit(b);
        phi_p->reinit(b);
        phi_m->read_dof_values(src);
        phi_p->read_dof_values(src);
        phi_m->evaluate(true, true);
        phi_p->evaluate(true, true);
        const VA sigma = phi_m->penalty_parameter();
        for (unsigned int q = 0; q < phi_m->n_q_points; ++q)
        {
          const VA jump = phi_m->get_value(q) - phi_p->get_value(q);
          // normal derivative w.r.t. the minus normal on both sides
          const VA avg_dn = Number(0.5) * (phi_m->get_normal_derivative(q) -
                                           phi_p->get_normal_derivative(q));
          const VA flux = sigma * jump - avg_dn;
          phi_m->submit_value(flux, q);
          phi_p->submit_value(-flux, q);
          // -[u] {grad v . n}: each side tests with its own outward normal
          const VA w = Number(-0.5) * jump;
          phi_m->submit_normal_derivative(w, q);
          phi_p->submit_normal_derivative(-w, q);
        }
        phi_m->integrate(true, true);
        phi_p->integrate(true, true);
        phi_m->distribute_local_to_global(dst_v);
        phi_p->distribute_local_to_global(dst_v);
      };

      const auto boundary = [phi_m, &dst_v, &src, this](const unsigned int b) {
        phi_m->reinit(b);
        const BoundaryType type = bc_.type_of(phi_m->boundary_id());
        if (type == BoundaryType::neumann)
          return; // homogeneous operator: no contribution
        phi_m->read_dof_values(src);
        phi_m->evaluate(true, true);
        const VA sigma = phi_m->penalty_parameter();
        for (unsigned int q = 0; q < phi_m->n_q_points; ++q)
        {
          const VA u = phi_m->get_value(q);
          const VA dn = phi_m->get_normal_derivative(q);
          // mirror ghost: u+ = -u => jump = 2u, {dn} = dn
          phi_m->submit_value(Number(2) * sigma * u - dn, q);
          phi_m->submit_normal_derivative(-u, q);
        }
        phi_m->integrate(true, true);
        phi_m->distribute_local_to_global(dst_v);
      };

      return LoopKernels{cell, inner, boundary};
    };

    const unsigned int block = mf_->dofs_per_cell(space_);
    cell_face_loop(*mf_, dst, src, block, block, make_kernels,
                   std::forward<PreFn>(pre), std::forward<PostFn>(post));
  }

  /// Assembles the right-hand side for -laplace(u) = f with Dirichlet data
  /// g_d and Neumann data g_n (normal derivative).
  void assemble_rhs(VectorType &rhs, const ScalarFunction &f,
                    const ScalarFunction &g_d = {},
                    const ScalarFunction &g_n = {}) const
  {
    rhs.reinit(n_dofs());

    if (f)
    {
      FEEvaluation<Number, 1> phi(*mf_, space_, quad_);
      for (unsigned int b = 0; b < mf_->n_cell_batches(); ++b)
      {
        phi.reinit(b);
        for (unsigned int q = 0; q < phi.n_q_points; ++q)
        {
          const auto xq = phi.quadrature_point(q);
          VA fv;
          for (unsigned int l = 0; l < VA::width; ++l)
            fv[l] = Number(f(Point(xq[0][l], xq[1][l], xq[2][l])));
          phi.submit_value(fv, q);
        }
        phi.integrate(true, false);
        phi.distribute_local_to_global(rhs);
      }
    }

    FEFaceEvaluation<Number, 1> phi_m(*mf_, space_, quad_, true);
    for (unsigned int b = mf_->n_inner_face_batches();
         b < mf_->n_face_batches(); ++b)
    {
      phi_m.reinit(b);
      const BoundaryType type = bc_.type_of(phi_m.boundary_id());
      if (type == BoundaryType::dirichlet && !g_d)
        continue;
      if (type == BoundaryType::neumann && !g_n)
        continue;
      const VA sigma = phi_m.penalty_parameter();
      for (unsigned int q = 0; q < phi_m.n_q_points; ++q)
      {
        const auto xq = phi_m.quadrature_point(q);
        VA g;
        for (unsigned int l = 0; l < VA::width; ++l)
        {
          const Point x(xq[0][l], xq[1][l], xq[2][l]);
          g[l] = Number(type == BoundaryType::dirichlet ? g_d(x) : g_n(x));
        }
        if (type == BoundaryType::dirichlet)
        {
          phi_m.submit_value(Number(2) * sigma * g, q);
          phi_m.submit_normal_derivative(-g, q);
        }
        else
        {
          phi_m.submit_value(g, q);
          phi_m.submit_normal_derivative(VA(Number(0)), q);
        }
      }
      phi_m.integrate(true, true);
      phi_m.distribute_local_to_global(rhs);
    }
  }

  /// Matrix-free computation of the operator diagonal (for the point-Jacobi
  /// preconditioner inside the Chebyshev smoother).
  void compute_diagonal(VectorType &diag) const
  {
    diag.reinit(n_dofs());
    const unsigned int npc = mf_->dofs_per_cell(space_);
    diag_buffer_.resize(npc);

    // cell term
    {
      FEEvaluation<Number, 1> phi(*mf_, space_, quad_);
      for (unsigned int b = 0; b < mf_->n_cell_batches(); ++b)
      {
        phi.reinit(b);
        for (unsigned int i = 0; i < npc; ++i)
        {
          for (unsigned int j = 0; j < npc; ++j)
            phi.begin_dof_values()[j] = VA(Number(i == j ? 1 : 0));
          phi.evaluate(false, true);
          for (unsigned int q = 0; q < phi.n_q_points; ++q)
            phi.submit_gradient(phi.get_gradient(q), q);
          phi.integrate(false, true);
          diag_buffer_[i] = phi.begin_dof_values()[i];
        }
        for (unsigned int j = 0; j < npc; ++j)
          phi.begin_dof_values()[j] = diag_buffer_[j];
        phi.distribute_local_to_global(diag);
      }
    }

    // face terms: same-side coupling only contributes to the diagonal
    FEFaceEvaluation<Number, 1> phi(*mf_, space_, quad_, true);
    FEFaceEvaluation<Number, 1> phi_outer(*mf_, space_, quad_, false);
    for (unsigned int b = 0; b < mf_->n_face_batches(); ++b)
    {
      const bool interior = b < mf_->n_inner_face_batches();
      unsigned int type = 2; // 2 = skip
      if (interior)
        type = 0;
      else
      {
        phi.reinit(b);
        if (bc_.type_of(phi.boundary_id()) == BoundaryType::dirichlet)
          type = 1;
      }
      if (type == 2)
        continue;

      for (unsigned int side = 0; side < (interior ? 2u : 1u); ++side)
      {
        auto &eval = side == 0 ? phi : phi_outer;
        eval.reinit(b);
        const VA sigma = eval.penalty_parameter();
        for (unsigned int i = 0; i < npc; ++i)
        {
          for (unsigned int j = 0; j < npc; ++j)
            eval.begin_dof_values()[j] = VA(Number(i == j ? 1 : 0));
          eval.evaluate(true, true);
          for (unsigned int q = 0; q < eval.n_q_points; ++q)
          {
            const VA u = eval.get_value(q);
            // dn w.r.t. this side's outward normal
            const VA dn = eval.get_normal_derivative(q);
            if (interior)
            {
              // same-side part of the interior kernel: sigma*u*v
              // - 0.5 dn u v - 0.5 u dn v
              eval.submit_value(sigma * u - Number(0.5) * dn, q);
              eval.submit_normal_derivative(Number(-0.5) * u, q);
            }
            else
            {
              eval.submit_value(Number(2) * sigma * u - dn, q);
              eval.submit_normal_derivative(-u, q);
            }
          }
          eval.integrate(true, true);
          diag_buffer_[i] = eval.begin_dof_values()[i];
        }
        for (unsigned int j = 0; j < npc; ++j)
          eval.begin_dof_values()[j] = diag_buffer_[j];
        eval.distribute_local_to_global(diag);
      }
    }
  }

private:
  const MatrixFree<Number> *mf_ = nullptr;
  unsigned int space_ = 0, quad_ = 0;
  BoundaryMap bc_;
  mutable AlignedVector<VA> diag_buffer_;
};

} // namespace dgflow
