#pragma once

// Explicit convective operator C(U) of the dual splitting scheme (Eq. 1 of
// the paper): divergence form nabla.(u (x) u) discretized with the local
// Lax-Friedrichs flux, evaluated with over-integration (k+2 quadrature
// points per direction) to curb aliasing in under-resolved turbulent flows.
//
// The operator is nonlinear and explicit in time, so it only has the
// time-dependent apply entry point of the interface documented in
// operators/README.md (no vmult: there is no linear homogeneous action).

#include <functional>

#include "instrumentation/profiler.h"
#include "matrixfree/fe_evaluation.h"
#include "matrixfree/fe_face_evaluation.h"
#include "operators/boundary.h"

namespace dgflow
{
/// Time-dependent vector-valued boundary function.
using VectorFunctionT =
  std::function<Tensor1<double>(const Point &, double)>;
/// Time-dependent scalar boundary function.
using ScalarFunctionT = std::function<double(const Point &, double)>;

/// Per-boundary-id data of the flow solver: either a velocity Dirichlet
/// boundary (walls, inlets; pressure sees a Neumann condition there) or a
/// pressure boundary (outlets; velocity sees a Neumann condition).
struct FlowBoundary
{
  enum class Kind
  {
    velocity_dirichlet,
    pressure
  };
  Kind kind = Kind::velocity_dirichlet;
  VectorFunctionT velocity;      ///< g_u (velocity_dirichlet)
  VectorFunctionT velocity_dt;   ///< dg_u/dt, for the pressure Neumann BC
  ScalarFunctionT pressure;      ///< g_p (pressure boundaries)
  /// suppress incoming momentum flux at locally reversed flow on pressure
  /// boundaries (energy-stable outflow; disable for analytic test flows
  /// with genuine inflow through the open boundary)
  bool backflow_stabilization = true;
};

using FlowBoundaryMap = std::map<unsigned int, FlowBoundary>;

/// BoundaryMap views of a FlowBoundaryMap for the scalar operators.
inline BoundaryMap velocity_bc_view(const FlowBoundaryMap &bcs)
{
  BoundaryMap bc;
  for (const auto &[id, b] : bcs)
    bc.set(id, b.kind == FlowBoundary::Kind::velocity_dirichlet
                 ? BoundaryType::dirichlet
                 : BoundaryType::neumann);
  return bc;
}

inline BoundaryMap pressure_bc_view(const FlowBoundaryMap &bcs)
{
  BoundaryMap bc;
  for (const auto &[id, b] : bcs)
    bc.set(id, b.kind == FlowBoundary::Kind::pressure
                 ? BoundaryType::dirichlet
                 : BoundaryType::neumann);
  return bc;
}

template <typename Number>
class ConvectiveOperator
{
public:
  using VA = VectorizedArray<Number>;
  using VectorType = Vector<Number>;

  void reinit(const MatrixFree<Number> &mf, const unsigned int u_space,
              const unsigned int quad, const FlowBoundaryMap &bc)
  {
    mf_ = &mf;
    space_ = u_space;
    quad_ = quad;
    bc_ = &bc;
  }

  /// dst = weak form of nabla.(u (x) u) tested with v, at time t (boundary
  /// data evaluated at t).
  void apply(VectorType &dst, const VectorType &src, const double t) const
  {
    DGFLOW_PROF_SCOPE("convective");
    DGFLOW_PROF_COUNT("mf_cell_batches", mf_->n_cell_batches());
    DGFLOW_PROF_COUNT("mf_face_batches", mf_->n_face_batches());
    DGFLOW_PROF_COUNT("mf_dofs", src.size() + dst.size());
    DGFLOW_PROF_THROUGHPUT("convective", src.size());
    dst.reinit(mf_->n_dofs(space_, 3), true);
    dst = Number(0);

    FEEvaluation<Number, 3> phi(*mf_, space_, quad_);
    for (unsigned int b = 0; b < mf_->n_cell_batches(); ++b)
    {
      phi.reinit(b);
      phi.read_dof_values(src);
      phi.evaluate(true, false);
      for (unsigned int q = 0; q < phi.n_q_points; ++q)
      {
        const Tensor1<VA> u = phi.get_value(q);
        Tensor2<VA> flux;
        for (unsigned int i = 0; i < dim; ++i)
          for (unsigned int j = 0; j < dim; ++j)
            flux[i][j] = -u[i] * u[j];
        phi.submit_gradient(flux, q);
      }
      phi.integrate(false, true);
      phi.distribute_local_to_global(dst);
    }

    FEFaceEvaluation<Number, 3> phi_m(*mf_, space_, quad_, true);
    FEFaceEvaluation<Number, 3> phi_p(*mf_, space_, quad_, false);
    for (unsigned int b = 0; b < mf_->n_inner_face_batches(); ++b)
    {
      phi_m.reinit(b);
      phi_p.reinit(b);
      phi_m.read_dof_values(src);
      phi_p.read_dof_values(src);
      phi_m.evaluate(true, false);
      phi_p.evaluate(true, false);
      for (unsigned int q = 0; q < phi_m.n_q_points; ++q)
      {
        const Tensor1<VA> um = phi_m.get_value(q);
        const Tensor1<VA> up = phi_p.get_value(q);
        const Tensor1<VA> n = phi_m.get_normal_vector(q);
        const Tensor1<VA> flux = numerical_flux(um, up, n);
        phi_m.submit_value(flux, q);
        phi_p.submit_value(-flux, q);
      }
      phi_m.integrate(true, false);
      phi_p.integrate(true, false);
      phi_m.distribute_local_to_global(dst);
      phi_p.distribute_local_to_global(dst);
    }

    for (unsigned int b = mf_->n_inner_face_batches();
         b < mf_->n_face_batches(); ++b)
    {
      phi_m.reinit(b);
      const FlowBoundary &bdata = bc_->at(phi_m.boundary_id());
      phi_m.read_dof_values(src);
      phi_m.evaluate(true, false);
      for (unsigned int q = 0; q < phi_m.n_q_points; ++q)
      {
        const Tensor1<VA> um = phi_m.get_value(q);
        const Tensor1<VA> n = phi_m.get_normal_vector(q);
        Tensor1<VA> flux;
        if (bdata.kind == FlowBoundary::Kind::velocity_dirichlet)
        {
          const Tensor1<VA> g = evaluate_vector(bdata.velocity, phi_m, q, t);
          // mirror: u+ = 2g - u-
          flux = numerical_flux(um, Number(2) * g - um, n);
        }
        else
        {
          // pressure (open) boundary: u+ = u- plus backflow stabilization -
          // the plain one-sided flux carries no dissipation and incoming
          // momentum at locally reversed flow drives an energy instability
          // (Gravemeier/Bazilevs; used by ExaDG's outflow boundaries):
          // subtract min(u.n, 0) u so no momentum flux enters the domain.
          const VA un = dot(um, n);
          const VA un_in = bdata.backflow_stabilization
                             ? min(un, VA(Number(0)))
                             : VA(Number(0));
          for (unsigned int c = 0; c < dim; ++c)
            flux[c] = um[c] * (un - un_in);
        }
        phi_m.submit_value(flux, q);
      }
      phi_m.integrate(true, false);
      phi_m.distribute_local_to_global(dst);
    }
  }

  /// Local Lax-Friedrichs flux of the divergence-form convective term.
  static Tensor1<VA> numerical_flux(const Tensor1<VA> &um,
                                    const Tensor1<VA> &up,
                                    const Tensor1<VA> &n)
  {
    const VA un_m = dot(um, n), un_p = dot(up, n);
    const VA lambda = Number(2) * max(abs(un_m), abs(un_p));
    Tensor1<VA> flux;
    for (unsigned int i = 0; i < dim; ++i)
      flux[i] = Number(0.5) * (um[i] * un_m + up[i] * un_p) +
                Number(0.5) * lambda * (um[i] - up[i]);
    return flux;
  }

  template <typename Eval>
  static Tensor1<VA> evaluate_vector(const VectorFunctionT &f,
                                     const Eval &phi, const unsigned int q,
                                     const double t)
  {
    const auto xq = phi.quadrature_point(q);
    Tensor1<VA> g;
    for (unsigned int l = 0; l < VA::width; ++l)
    {
      const auto v = f(Point(xq[0][l], xq[1][l], xq[2][l]), t);
      for (unsigned int c = 0; c < dim; ++c)
        g[c][l] = Number(v[c]);
    }
    return g;
  }

private:
  const MatrixFree<Number> *mf_ = nullptr;
  unsigned int space_ = 0, quad_ = 0;
  const FlowBoundaryMap *bc_ = nullptr;
};

} // namespace dgflow
