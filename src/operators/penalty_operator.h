#pragma once

// Divergence and continuity penalty operator A_pen of the paper (Eq. 5,
// Section 2.3): weakly enforces the pointwise divergence-free constraint and
// normal-velocity continuity after the projection, giving the L2-conforming
// DG space the robustness of H(div)-conforming discretizations. The penalty
// step solves (M + dt * A_pen) u = M u_hat with CG preconditioned by the
// inverse mass operator; the penalty parameters follow Fehn et al. (2018):
// tau_D = zeta * ||u||_e * h_e / (k+1), tau_C = zeta * ||u||_f.
//
// Evaluation interface per operators/README.md (contract v2): hooked
// vmult(dst, src, pre, post) (the operator depends on time only through
// update(), not on boundary data; boundary faces carry no penalty term,
// so the boundary callback of the shared loop is a no-op).

#include "instrumentation/profiler.h"
#include "matrixfree/cell_loop.h"
#include "matrixfree/fe_evaluation.h"
#include "matrixfree/fe_face_evaluation.h"
#include "operators/convective_operator.h"

namespace dgflow
{
template <typename Number>
class PenaltyOperator
{
public:
  using VA = VectorizedArray<Number>;
  using VectorType = Vector<Number>;

  void reinit(const MatrixFree<Number> &mf, const unsigned int u_space,
              const unsigned int quad, const Number zeta = Number(1))
  {
    mf_ = &mf;
    space_ = u_space;
    quad_ = quad;
    zeta_ = zeta;
    tau_div_.resize(mf.n_cell_batches());
    tau_cont_.resize(mf.n_face_batches());
  }

  /// Recomputes the penalty parameters from the current velocity field and
  /// sets the time step scaling. The velocity scale is floored at
  /// floor_factor * h/dt: the penalty must not vanish at startup from rest,
  /// where it is the only mechanism damping the spurious pressure-projection
  /// modes of the L2-conforming splitting (Fehn et al. 2017).
  void update(const VectorType &u, const Number dt,
              const Number floor_factor = Number(0.05))
  {
    dt_ = dt;
    const unsigned int degree = mf_->degree(space_);

    FEEvaluation<Number, 3> phi(*mf_, space_, quad_);
    std::vector<Number> cell_norm(mf_->n_cells());
    for (unsigned int b = 0; b < mf_->n_cell_batches(); ++b)
    {
      phi.reinit(b);
      phi.read_dof_values(u);
      phi.evaluate(true, false);
      VA norm_sq(Number(0)), vol(Number(0));
      for (unsigned int q = 0; q < phi.n_q_points; ++q)
      {
        const Tensor1<VA> v = phi.get_value(q);
        const VA jxw = phi.JxW(q);
        norm_sq += dot(v, v) * jxw;
        vol += jxw;
      }
      const VA h = mf_->cell_width()[b];
      const VA u_norm =
        sqrt(norm_sq / vol) + floor_factor * h / (dt > Number(0) ? dt : Number(1));
      tau_div_[b] = zeta_ * u_norm * h * Number(1. / (degree + 1));
      const auto &batch = mf_->cell_batch(b);
      for (unsigned int l = 0; l < batch.n_filled; ++l)
        cell_norm[batch.cells[l]] = u_norm[l];
    }

    // face parameter: average of the adjacent cells' velocity scales
    for (unsigned int b = 0; b < mf_->n_face_batches(); ++b)
    {
      const auto &fb = mf_->face_batch(b);
      VA tau(Number(0));
      for (unsigned int l = 0; l < MatrixFree<Number>::n_lanes; ++l)
      {
        Number t = cell_norm[fb.cells_m[l]];
        if (fb.interior)
          t = Number(0.5) * (t + cell_norm[fb.cells_p[l]]);
        tau[l] = zeta_ * t;
      }
      tau_cont_[b] = tau;
    }
  }

  std::size_t n_dofs() const { return mf_->n_dofs(space_, 3); }

  /// dst = (M + dt A_pen) src
  template <typename PreFn = NoRangeHook, typename PostFn = NoRangeHook>
  void vmult(VectorType &dst, const VectorType &src, PreFn &&pre = PreFn(),
             PostFn &&post = PostFn()) const
  {
    dst.reinit(n_dofs(), true);
    dst = Number(0);
    DGFLOW_PROF_SCOPE("penalty_op");
    DGFLOW_PROF_COUNT("mf_dofs", src.size() + dst.size());
    DGFLOW_PROF_THROUGHPUT("penalty_op", src.size());

    const auto make_kernels = [&, this](auto &dst_v) {
      auto phi =
        std::make_shared<FEEvaluation<Number, 3>>(*mf_, space_, quad_);
      auto phi_m = std::make_shared<FEFaceEvaluation<Number, 3>>(
        *mf_, space_, quad_, true);
      auto phi_p = std::make_shared<FEFaceEvaluation<Number, 3>>(
        *mf_, space_, quad_, false);

      const auto cell = [phi, &dst_v, &src, this](const unsigned int b) {
        phi->reinit(b);
        phi->read_dof_values(src);
        phi->evaluate(true, true);
        for (unsigned int q = 0; q < phi->n_q_points; ++q)
        {
          phi->submit_value(phi->get_value(q), q);
          phi->submit_divergence(dt_ * tau_div_[b] * phi->get_divergence(q),
                                 q);
        }
        phi->integrate(true, true);
        phi->distribute_local_to_global(dst_v);
      };

      const auto inner = [phi_m, phi_p, &dst_v, &src,
                          this](const unsigned int b) {
        phi_m->reinit(b);
        phi_p->reinit(b);
        phi_m->read_dof_values(src);
        phi_p->read_dof_values(src);
        phi_m->evaluate(true, false);
        phi_p->evaluate(true, false);
        for (unsigned int q = 0; q < phi_m->n_q_points; ++q)
        {
          const Tensor1<VA> n = phi_m->get_normal_vector(q);
          const VA jump_n =
            dot(phi_m->get_value(q) - phi_p->get_value(q), n);
          const VA w = dt_ * tau_cont_[b] * jump_n;
          // each side tests with its own outward normal
          phi_m->submit_value(w * phi_m->get_normal_vector(q), q);
          phi_p->submit_value(w * phi_p->get_normal_vector(q), q);
        }
        phi_m->integrate(true, false);
        phi_p->integrate(true, false);
        phi_m->distribute_local_to_global(dst_v);
        phi_p->distribute_local_to_global(dst_v);
      };

      // no boundary penalty term, but the loop still drives the hook schedule
      const auto boundary = [](const unsigned int) {};

      return LoopKernels{cell, inner, boundary};
    };

    const unsigned int block = 3 * mf_->dofs_per_cell(space_);
    cell_face_loop(*mf_, dst, src, block, block, make_kernels,
                   std::forward<PreFn>(pre), std::forward<PostFn>(post));
  }

private:
  const MatrixFree<Number> *mf_ = nullptr;
  unsigned int space_ = 0, quad_ = 0;
  Number zeta_ = Number(1);
  Number dt_ = Number(0);
  AlignedVector<VA> tau_div_;
  AlignedVector<VA> tau_cont_;
};

} // namespace dgflow
