#pragma once

// Matrix-free operator-evaluation data (paper Section 3.1/3.2): SIMD batches
// of cells and faces, precomputed metric terms (inverse Jacobians, JxW,
// normals) at quadrature points in struct-of-array layout with
// VectorizedArray entries, and the shared 1D shape data. Operators drive
// FEEvaluation/FEFaceEvaluation over these batches; the loops vectorize
// across cells and faces (a "SIMD cell" = VectorizedArray<Number>::width
// physical cells).
//
// Faces are grouped into batches of equal (face numbers, orientation,
// subface) so a whole batch shares one interpolation pipeline; on lung
// meshes many distinct keys exist and the trailing partially-filled batches
// reproduce the paper's partially-filled-SIMD-lane overhead.

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/aligned_vector.h"
#include "common/exceptions.h"
#include "common/tensor.h"
#include "common/vector.h"
#include "concurrency/thread_pool.h"
#include "fem/kernel_backend.h"
#include "fem/shape_info.h"
#include "fem/tensor_kernels.h"
#include "instrumentation/profiler.h"
#include "mapping/geometry.h"
#include "mesh/mesh.h"
#include "simd/vectorized_array.h"

namespace dgflow
{
/// Geometry class of a cell (and by extension a batch or face batch),
/// established during MatrixFree::reinit by evaluating the geometry
/// polynomial's Jacobian on the (geo_degree+1)^3 tensor Gauss lattice. The
/// test is exact for the polynomial mapping: each Jacobian entry is a
/// polynomial of per-direction degree <= geo_degree, so constancy on
/// geo_degree+1 Gauss points per direction pins it down everywhere.
/// Ordered from most to least structure; batches take the weakest class
/// over their lanes.
enum class GeometryType : unsigned char
{
  cartesian = 0, ///< constant diagonal Jacobian (axis-aligned box cell)
  affine = 1,    ///< constant full Jacobian (parallelepiped cell)
  general = 2    ///< curved/deformed cell, per-q metric required
};

template <typename Number>
class MatrixFree
{
public:
  using VA = VectorizedArray<Number>;
  static constexpr unsigned int n_lanes = VA::width;

  struct AdditionalData
  {
    /// polynomial degrees of the function spaces (index = space id)
    std::vector<unsigned int> degrees;
    /// 1D quadrature sizes (index = quadrature id)
    std::vector<unsigned int> n_q_points_1d;
    /// basis per space: Gauss collocation (DG) or Gauss-Lobatto (continuous
    /// FE spaces of the multigrid hierarchy); empty = all Gauss
    std::vector<BasisType> basis_types;
    /// degree of the per-cell polynomial geometry approximation
    unsigned int geometry_degree = 2;
    /// multiplier on the interior-penalty parameter (k+1)^2 A_f/V; values
    /// above 1 keep SIP coercive on strongly sheared cells (the lung
    /// junction templates need ~4)
    double penalty_safety = 2.;
    /// optional per-space multiplier on top of penalty_safety (empty = 1);
    /// the multigrid hierarchy uses it to let coarser polynomial levels
    /// inherit the finest level's penalty scale
    std::vector<double> penalty_scaling;
    /// store one J^{-T} + det per batch instead of per-q tensors on batches
    /// classified Cartesian/affine (off = every batch stores the full per-q
    /// metric, the layout the compression benchmarks compare against)
    bool compress_geometry = true;
    /// rank of each active cell (partition_cells() output; ownership must be
    /// contiguous along the SFC order). Empty = unpartitioned: one rank owns
    /// everything and the per-rank batch ranges cover all batches. When set,
    /// cell batches never mix ranks and face batches never mix rank pairs,
    /// so every rank evaluates a well-defined sub-range of the shared batch
    /// layout (vmpi ranks share the replicated MatrixFree description).
    std::vector<int> rank_of_cell;
    /// number of ranks rank_of_cell refers to
    int n_ranks = 1;
    /// chunks the thread-parallel cell loops split each traversal into
    /// (cell_loop.h); 0 = size from the process pool (DGFLOW_THREADS via
    /// concurrency::ThreadPool). 1 forces the serial loop bodies.
    unsigned int n_threads = 0;
    /// kernel backend the evaluators of this MatrixFree use (see
    /// fem/kernel_backend.h). Unset = resolve from the DGFLOW_BACKEND
    /// environment variable, falling back to the process default (batch).
    std::optional<KernelBackendType> backend;
  };

  struct CellBatch
  {
    std::array<index_t, n_lanes> cells;
    unsigned char n_filled;
  };

  struct FaceBatch
  {
    std::array<index_t, n_lanes> cells_m;
    std::array<index_t, n_lanes> cells_p;
    unsigned char n_filled;
    unsigned char face_no_m, face_no_p;
    unsigned char orientation;
    unsigned char subface0, subface1; ///< 255 when conforming
    unsigned int boundary_id;         ///< boundary batches only
    bool interior;
    /// owning ranks of the minus/plus side cells (equal on rank-interior and
    /// boundary batches; a cut face has rank_m != rank_p). All lanes of a
    /// batch share the same rank pair by construction.
    int rank_m = 0, rank_p = 0;

    bool is_hanging() const { return subface0 != 255; }
    bool is_cut() const { return rank_m != rank_p; }
  };

  /// Metric data at cell quadrature points. Batches classified Cartesian or
  /// affine store one J^{-T} and det(J) per batch instead of per-q tensors
  /// (JxW reconstructs as det * reference weight) - on the octree lung
  /// meshes, where nearly all cells are Cartesian, this removes the
  /// dominant metric stream from the vmult roofline. General batches keep
  /// the per-q layout; data_index maps a batch into whichever storage its
  /// class uses. q_points stay per-q for every batch: they are off the
  /// vmult hot path (rhs assembly, error norms).
  struct CellMetric
  {
    std::vector<GeometryType> type;       ///< per batch (weakest lane)
    std::vector<unsigned int> data_index; ///< slot into the class' arrays
    AlignedVector<Tensor2<VA>> inv_jac_t; ///< general batches: J^{-T} per q
    AlignedVector<VA> JxW;                ///< general batches, per q
    AlignedVector<Tensor2<VA>> batch_inv_jac_t; ///< compressed batches
    AlignedVector<VA> batch_det;                ///< compressed batches
    AlignedVector<Number> q_weight; ///< reference quadrature weights [n_q]
    AlignedVector<Tensor1<VA>> q_points; ///< all batches, per q
    unsigned int n_q = 0; ///< points per cell (n_q_1d^3)

    GeometryType geometry_type(const unsigned int b) const { return type[b]; }

    /// J^{-T} at (batch, q) regardless of storage class.
    Tensor2<VA> inv_jacobian_t(const unsigned int b,
                               const unsigned int q) const
    {
      const std::size_t slot = data_index[b];
      if (type[b] == GeometryType::general)
        return inv_jac_t[slot * n_q + q];
      return batch_inv_jac_t[slot];
    }

    /// JxW at (batch, q) regardless of storage class.
    VA jxw(const unsigned int b, const unsigned int q) const
    {
      const std::size_t slot = data_index[b];
      if (type[b] == GeometryType::general)
        return JxW[slot * n_q + q];
      return batch_det[slot] * q_weight[q];
    }

    /// Bytes of metric data streamed on the vmult hot path (J^{-T} and JxW;
    /// q_points excluded - both layouts store those identically - and the
    /// tiny shared q_weight table excluded, so an uncompressed metric has
    /// ratio exactly 1).
    std::size_t hot_bytes_stored() const
    {
      return inv_jac_t.size() * sizeof(Tensor2<VA>) +
             JxW.size() * sizeof(VA) +
             batch_inv_jac_t.size() * sizeof(Tensor2<VA>) +
             batch_det.size() * sizeof(VA);
    }

    /// Hot-path bytes of the uncompressed per-q layout (the denominator of
    /// the compression ratio).
    std::size_t hot_bytes_full() const
    {
      return std::size_t(type.size()) * n_q *
             (sizeof(Tensor2<VA>) + sizeof(VA));
    }
  };

  /// Metric data at face quadrature points in the minus side's ordering.
  /// Same two-class storage as CellMetric: a face batch is compressed when
  /// every adjacent cell in every lane is Cartesian/affine (then the normal
  /// and the surface Jacobian are constant over the face), general
  /// otherwise.
  struct FaceMetric
  {
    std::vector<GeometryType> type;       ///< per batch (weakest lane)
    std::vector<unsigned int> data_index; ///< slot into the class' arrays
    AlignedVector<Tensor1<VA>> normal; ///< general: minus unit normal per q
    AlignedVector<VA> JxW;             ///< general, per q
    AlignedVector<Tensor2<VA>> inv_jac_t_m; ///< general, per q
    AlignedVector<Tensor2<VA>> inv_jac_t_p; ///< general, per q
    AlignedVector<Tensor1<VA>> batch_normal;      ///< compressed batches
    AlignedVector<VA> batch_jxw_scale; ///< surface Jacobian |cof(J) n_ref|
    AlignedVector<Tensor2<VA>> batch_inv_jac_t_m; ///< compressed batches
    AlignedVector<Tensor2<VA>> batch_inv_jac_t_p; ///< compressed batches
    AlignedVector<Number> q_weight; ///< tensorized 2D weights [n_q]
    AlignedVector<Tensor1<VA>> q_points; ///< all batches, per q
    /// Hillewaert penalty geometry factor max(A_f/V_m, A_f/V_p), per batch.
    AlignedVector<VA> penalty_factor;
    unsigned int n_q = 0; ///< points per face (n_q_1d^2)

    GeometryType geometry_type(const unsigned int b) const { return type[b]; }

    /// Unit outward normal of the minus side at (batch, q).
    Tensor1<VA> normal_at(const unsigned int b, const unsigned int q) const
    {
      const std::size_t slot = data_index[b];
      if (type[b] == GeometryType::general)
        return normal[slot * n_q + q];
      return batch_normal[slot];
    }

    /// Surface JxW at (batch, q) regardless of storage class.
    VA jxw(const unsigned int b, const unsigned int q) const
    {
      const std::size_t slot = data_index[b];
      if (type[b] == GeometryType::general)
        return JxW[slot * n_q + q];
      return batch_jxw_scale[slot] * q_weight[q];
    }

    /// Minus-side J^{-T} at (batch, q) regardless of storage class.
    Tensor2<VA> inv_jacobian_t_m(const unsigned int b,
                                 const unsigned int q) const
    {
      const std::size_t slot = data_index[b];
      if (type[b] == GeometryType::general)
        return inv_jac_t_m[slot * n_q + q];
      return batch_inv_jac_t_m[slot];
    }

    /// Plus-side J^{-T} at (batch, q) regardless of storage class.
    Tensor2<VA> inv_jacobian_t_p(const unsigned int b,
                                 const unsigned int q) const
    {
      const std::size_t slot = data_index[b];
      if (type[b] == GeometryType::general)
        return inv_jac_t_p[slot * n_q + q];
      return batch_inv_jac_t_p[slot];
    }

    std::size_t hot_bytes_stored() const
    {
      return normal.size() * sizeof(Tensor1<VA>) + JxW.size() * sizeof(VA) +
             (inv_jac_t_m.size() + inv_jac_t_p.size()) * sizeof(Tensor2<VA>) +
             batch_normal.size() * sizeof(Tensor1<VA>) +
             batch_jxw_scale.size() * sizeof(VA) +
             (batch_inv_jac_t_m.size() + batch_inv_jac_t_p.size()) *
               sizeof(Tensor2<VA>) +
             penalty_factor.size() * sizeof(VA);
    }

    std::size_t hot_bytes_full() const
    {
      return std::size_t(type.size()) * n_q *
               (sizeof(Tensor1<VA>) + sizeof(VA) + 2 * sizeof(Tensor2<VA>)) +
             penalty_factor.size() * sizeof(VA);
    }
  };

  void reinit(const Mesh &mesh, const Geometry &geometry,
              const AdditionalData &data);

  const Mesh &mesh() const { return *mesh_; }

  index_t n_cells() const { return mesh_->n_active_cells(); }
  unsigned int n_cell_batches() const { return cell_batches_.size(); }
  unsigned int n_inner_face_batches() const { return n_inner_batches_; }
  unsigned int n_face_batches() const { return face_batches_.size(); }

  /// Number of ranks of the cell partition (1 when unpartitioned).
  int n_ranks() const { return n_ranks_; }

  /// Owning rank of an active cell (0 when unpartitioned).
  int rank_of_cell(const index_t cell) const
  {
    return rank_of_cell_.empty() ? 0 : rank_of_cell_[cell];
  }

  /// Half-open range of cell batches whose cells the given rank owns.
  std::pair<unsigned int, unsigned int>
  cell_batch_range(const int rank) const
  {
    return cell_batch_ranges_[rank];
  }

  /// Ascending indices of the face batches a rank evaluates: every batch
  /// with at least one side owned by the rank (rank-interior, cut and
  /// boundary faces; branch on face_batch(b).interior). The ascending order
  /// interleaves interior and boundary batches exactly as the serial loops
  /// traverse them, which keeps accumulation order comparable.
  const std::vector<unsigned int> &face_batches_of_rank(const int rank) const
  {
    return rank_face_batches_[rank];
  }

  /// Hook schedule of the hooked cell-loop driver (cell_loop.h),
  /// precomputed per rank at reinit. Walking a traversal's face list in
  /// order, face entry i "completes" the cell batches listed in
  /// completes_data[completes_ptr[i], completes_ptr[i+1]): no later entry
  /// reads or writes their cells, so the driver may fire the post hook for
  /// their DoF ranges there. The extra slot at face_list.size() holds
  /// batches no face entry touches (cell-only spaces), fired after the
  /// loop. pre_before_exchange flags the owned batches adjacent to a cut
  /// face: their src entries feed the ghost wire, so src-mutating pre hooks
  /// must run for them before the exchange is posted.
  struct LoopSchedule
  {
    std::vector<unsigned int> completes_ptr;
    std::vector<unsigned int> completes_data; ///< global cell-batch indices
    std::vector<unsigned char> pre_before_exchange; ///< per owned batch
  };

  /// Schedule of a rank's distributed traversal (cell_batch_range(rank) +
  /// face_batches_of_rank(rank)); rank -1 = the serial traversal over all
  /// batches.
  const LoopSchedule &loop_schedule(const int rank) const
  {
    return rank < 0 ? serial_schedule_ : loop_schedules_[rank];
  }

  /// One thread's share of a traversal: a contiguous run of cell batches
  /// (equivalently a contiguous owned-cell / DoF range) plus the ascending
  /// face-batch work list touching any of its cells. Faces whose two sides
  /// fall into different chunks appear in both chunks' lists; each side
  /// evaluates the full flux and keeps only the writes into its own cell
  /// range (the both-sides-evaluate masking of the cut-face machinery), so
  /// per-cell accumulation order matches the serial sweep exactly. sched is
  /// the chunk-local hook schedule over face_list for the batches whose post
  /// hook may fire mid-loop; batches adjacent to a chunk boundary are absent
  /// from it and deferred (ThreadPartition::deferred).
  struct ThreadChunk
  {
    unsigned int batch_begin = 0, batch_end = 0;
    index_t cell_begin = 0, cell_end = 0;
    std::vector<unsigned int> face_list;
    LoopSchedule sched;
  };

  /// Static chunking of one traversal (a rank's, or the serial one) for the
  /// thread-parallel loop driver. Empty chunks = run the serial loop body.
  /// deferred lists, in ascending order, the cell batches whose src/dst is
  /// still read by a neighboring chunk's face sweep: their post hooks fire
  /// serially after the parallel phases join.
  struct ThreadPartition
  {
    std::vector<ThreadChunk> chunks;
    std::vector<unsigned int> deferred;
  };

  /// Number of chunks the thread partitions were built for (resolved from
  /// AdditionalData::n_threads or the process pool width at reinit).
  unsigned int n_thread_chunks() const { return n_thread_chunks_; }

  /// Thread partition of a rank's traversal; rank -1 = the serial traversal.
  const ThreadPartition &thread_partition(const int rank) const
  {
    return rank < 0 ? serial_thread_partition_ : thread_partitions_[rank];
  }

  /// Batch containing an active cell.
  unsigned int batch_of_cell(const index_t cell) const
  {
    return batch_of_cell_[cell];
  }

  const CellBatch &cell_batch(const unsigned int b) const
  {
    return cell_batches_[b];
  }
  const FaceBatch &face_batch(const unsigned int b) const
  {
    return face_batches_[b];
  }

  unsigned int n_spaces() const { return degrees_.size(); }
  unsigned int degree(const unsigned int space) const
  {
    return degrees_[space];
  }
  unsigned int n_q_1d(const unsigned int quad) const { return n_q_1d_[quad]; }
  unsigned int n_quads() const { return n_q_1d_.size(); }

  /// Scalar dofs per cell of a space.
  unsigned int dofs_per_cell(const unsigned int space) const
  {
    const unsigned int n = degrees_[space] + 1;
    return n * n * n;
  }

  /// Global size of a field with n_components on the given space.
  std::size_t n_dofs(const unsigned int space,
                     const unsigned int n_components = 1) const
  {
    return std::size_t(n_cells()) * dofs_per_cell(space) * n_components;
  }

  const ShapeInfo<Number> &shape_info(const unsigned int space,
                                      const unsigned int quad) const
  {
    return shape_info_[space * n_q_1d_.size() + quad];
  }

  const CellMetric &cell_metric(const unsigned int quad) const
  {
    return cell_metric_[quad];
  }
  const FaceMetric &face_metric(const unsigned int quad) const
  {
    return face_metric_[quad];
  }

  /// Mutable metric access: ABFT fault injection (flipping a bit in a
  /// compressed geometry batch) and scrub tests. Production code reads the
  /// const accessors above.
  CellMetric &cell_metric_mutable(const unsigned int quad)
  {
    return cell_metric_[quad];
  }
  FaceMetric &face_metric_mutable(const unsigned int quad)
  {
    return face_metric_[quad];
  }

  /// Recomputes every cell/face metric array from the stored geometry
  /// lattice: the ABFT scrub path for a corrupted geometry batch, much
  /// cheaper than a full reinit() (no batch/schedule rebuild). The
  /// computation is deterministic, so the rebuilt arrays are bit-identical
  /// to the ones reinit() produced and the sidecar checksums match again.
  void recompute_metrics()
  {
    DGFLOW_PROF_SCOPE("mf_recompute_metrics");
    for (unsigned int q = 0; q < n_q_1d_.size(); ++q)
    {
      compute_cell_metric(q);
      compute_face_metric(q);
    }
  }

  /// Characteristic (minimal directional) cell width per cell batch.
  const AlignedVector<VA> &cell_width() const { return cell_width_; }
  /// Cell volumes per active cell.
  const std::vector<double> &cell_volumes() const { return cell_volumes_; }

  /// Fraction of face-batch lanes that are filled (diagnostics; < 1 on
  /// unstructured/adaptive meshes, cf. paper Section 5.2).
  double face_lane_fill_fraction() const;

  /// Geometry class of an active cell (see GeometryType). All cells are
  /// general when AdditionalData::compress_geometry was off.
  GeometryType cell_geometry_type(const index_t cell) const
  {
    return cell_geometry_type_[cell];
  }

  /// Metric bytes actually stored on the vmult hot path, summed over all
  /// quadratures (cells + faces).
  std::size_t metric_bytes_stored() const
  {
    std::size_t s = 0;
    for (const auto &m : cell_metric_)
      s += m.hot_bytes_stored();
    for (const auto &m : face_metric_)
      s += m.hot_bytes_stored();
    return s;
  }

  /// Hot-path metric bytes of the uncompressed per-q layout.
  std::size_t metric_bytes_full() const
  {
    std::size_t s = 0;
    for (const auto &m : cell_metric_)
      s += m.hot_bytes_full();
    for (const auto &m : face_metric_)
      s += m.hot_bytes_full();
    return s;
  }

  /// stored / full hot-path metric bytes (1 = no compression).
  double metric_compression_ratio() const
  {
    const std::size_t full = metric_bytes_full();
    return full == 0 ? 1. : double(metric_bytes_stored()) / double(full);
  }

  /// Roofline estimate of main-memory traffic per scalar DoF for one
  /// operator vmult on (space, quad): the solution vectors are streamed a
  /// handful of times (cell loop reads src and writes dst; the face loops
  /// re-read src on both sides and accumulate into dst) and each stored
  /// metric array once.
  double estimated_vmult_bytes_per_dof(const unsigned int space,
                                       const unsigned int quad) const
  {
    const double n = double(n_dofs(space));
    const double vector_bytes = 6. * sizeof(Number) * n;
    const double metric_bytes =
      double(cell_metric_[quad].hot_bytes_stored()) +
      double(face_metric_[quad].hot_bytes_stored());
    return (vector_bytes + metric_bytes) / n;
  }

  /// Kernel backend resolved at reinit (AdditionalData::backend, else
  /// DGFLOW_BACKEND, else the process default). Evaluators constructed on
  /// this MatrixFree stage their sum-factorization sweeps through it.
  KernelBackendType kernel_backend() const { return backend_; }

  double penalty_safety() const { return penalty_safety_; }

  double penalty_scaling(const unsigned int space) const
  {
    return space < penalty_scaling_.size() ? penalty_scaling_[space] : 1.;
  }

private:
  void build_cell_batches();
  void build_face_batches();
  void build_loop_schedules();
  void build_thread_partitions();
  void compute_geometry_lattices(const Geometry &geometry);
  void classify_cell_geometry();
  void compute_cell_metric(const unsigned int quad);
  void compute_face_metric(const unsigned int quad);

  /// Evaluates position and Jacobian of the per-cell geometry polynomial at
  /// a reference point of cell @p cell.
  void evaluate_cell_geometry(const index_t cell, const Point &ref, Point &x,
                              Tensor2<double> &jac) const;

  const Mesh *mesh_ = nullptr;
  std::vector<unsigned int> degrees_;
  std::vector<unsigned int> n_q_1d_;
  unsigned int geo_degree_ = 2;
  double penalty_safety_ = 2.;
  std::vector<double> penalty_scaling_;
  bool compress_geometry_ = true;
  KernelBackendType backend_ = KernelBackendType::batch;
  std::vector<GeometryType> cell_geometry_type_;

  std::vector<CellBatch> cell_batches_;
  std::vector<FaceBatch> face_batches_;
  unsigned int n_inner_batches_ = 0;

  std::vector<int> rank_of_cell_;
  int n_ranks_ = 1;
  std::vector<std::pair<unsigned int, unsigned int>> cell_batch_ranges_;
  std::vector<std::vector<unsigned int>> rank_face_batches_;
  std::vector<unsigned int> batch_of_cell_;
  std::vector<LoopSchedule> loop_schedules_;
  LoopSchedule serial_schedule_;
  unsigned int n_thread_chunks_ = 1;
  std::vector<ThreadPartition> thread_partitions_;
  ThreadPartition serial_thread_partition_;

  std::vector<ShapeInfo<Number>> shape_info_;
  std::vector<CellMetric> cell_metric_;
  std::vector<FaceMetric> face_metric_;

  AlignedVector<VA> cell_width_;
  std::vector<double> cell_volumes_;

  // per-cell geometry control lattice, (geo_degree+1)^3 points each
  std::vector<double> geo_nodes_1d_;
  std::unique_ptr<LagrangeBasis> geo_basis_;
  AlignedVector<Point> geo_lattice_;
};

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

template <typename Number>
void MatrixFree<Number>::reinit(const Mesh &mesh, const Geometry &geometry,
                                const AdditionalData &data)
{
  mesh_ = &mesh;
  degrees_ = data.degrees;
  n_q_1d_ = data.n_q_points_1d;
  geo_degree_ = data.geometry_degree;
  penalty_safety_ = data.penalty_safety;
  penalty_scaling_ = data.penalty_scaling;
  DGFLOW_ASSERT(!degrees_.empty() && !n_q_1d_.empty(),
                "need at least one space and one quadrature");

  shape_info_.clear();
  for (unsigned int s = 0; s < degrees_.size(); ++s)
  {
    const BasisType basis = s < data.basis_types.size()
                              ? data.basis_types[s]
                              : BasisType::lagrange_gauss;
    for (const unsigned int nq : n_q_1d_)
      shape_info_.emplace_back(degrees_[s], nq, basis);
  }

  compress_geometry_ = data.compress_geometry;

  rank_of_cell_ = data.rank_of_cell;
  n_ranks_ = data.n_ranks;
  DGFLOW_ASSERT(n_ranks_ >= 1, "need at least one rank");
  DGFLOW_ASSERT(rank_of_cell_.empty() ||
                  rank_of_cell_.size() == std::size_t(mesh.n_active_cells()),
                "rank_of_cell size mismatch");

  n_thread_chunks_ = data.n_threads > 0
                       ? data.n_threads
                       : concurrency::ThreadPool::instance().n_threads();

  // strongest selector wins: explicit AdditionalData::backend, then a strict
  // DGFLOW_BACKEND parse, then the process default of kernel_backend.h
  backend_ = data.backend ? *data.backend
                          : kernel_backend_from_env(default_kernel_backend());

  build_cell_batches();
  build_face_batches();
  build_loop_schedules();
  build_thread_partitions();
  compute_geometry_lattices(geometry);
  classify_cell_geometry();

  cell_metric_.assign(n_q_1d_.size(), CellMetric());
  face_metric_.assign(n_q_1d_.size(), FaceMetric());
  for (unsigned int q = 0; q < n_q_1d_.size(); ++q)
  {
    compute_cell_metric(q);
    compute_face_metric(q);
  }

  DGFLOW_PROF_COUNT("mf_metric_bytes_stored",
                    static_cast<long long>(metric_bytes_stored()));
  DGFLOW_PROF_COUNT("mf_metric_bytes_full",
                    static_cast<long long>(metric_bytes_full()));
  DGFLOW_PROF_GAUGE("mf_metric_compression", metric_compression_ratio());
  DGFLOW_PROF_GAUGE("mf_face_lane_fill", face_lane_fill_fraction());
  DGFLOW_PROF_GAUGE("mf_backend", double(static_cast<int>(backend_)));
}

template <typename Number>
void MatrixFree<Number>::build_cell_batches()
{
  const index_t n = mesh_->n_active_cells();
  cell_batches_.clear();
  cell_batches_.reserve((n + n_lanes - 1) / n_lanes);
  cell_batch_ranges_.assign(n_ranks_, {0u, 0u});

  // batches never cross a rank boundary, so each rank's cells form a
  // contiguous batch range (rank ownership is contiguous in SFC order)
  index_t rank_begin = 0;
  for (int r = 0; r < n_ranks_; ++r)
  {
    index_t rank_end = rank_begin;
    while (rank_end < n &&
           (rank_of_cell_.empty() ? 0 : rank_of_cell_[rank_end]) == r)
      ++rank_end;
    DGFLOW_ASSERT(rank_end == n || rank_of_cell_.empty() ||
                    rank_of_cell_[rank_end] > r,
                  "cell ownership must be contiguous in SFC order");
    const unsigned int first_batch = cell_batches_.size();
    for (index_t start = rank_begin; start < rank_end; start += n_lanes)
    {
      CellBatch b;
      b.n_filled = static_cast<unsigned char>(
        std::min<index_t>(n_lanes, rank_end - start));
      for (unsigned int l = 0; l < n_lanes; ++l)
        b.cells[l] = start + std::min<index_t>(l, b.n_filled - 1);
      cell_batches_.push_back(b);
    }
    cell_batch_ranges_[r] = {first_batch,
                             static_cast<unsigned int>(cell_batches_.size())};
    rank_begin = rank_end;
  }
  DGFLOW_ASSERT(rank_begin == n, "rank_of_cell does not cover all cells");
}

template <typename Number>
void MatrixFree<Number>::build_face_batches()
{
  const auto faces = mesh_->build_face_list();

  // group by the face-pipeline key so a batch shares one code path; the
  // rank pair comes last so an unpartitioned layout (all ranks 0) groups
  // and orders exactly as before partitioning existed
  struct Key
  {
    bool interior;
    unsigned char face_no_m, face_no_p, orientation, subface0, subface1;
    unsigned int boundary_id;
    int rank_m, rank_p;
    bool operator<(const Key &o) const
    {
      return std::tie(interior, face_no_m, face_no_p, orientation, subface0,
                      subface1, boundary_id, rank_m, rank_p) <
             std::tie(o.interior, o.face_no_m, o.face_no_p, o.orientation,
                      o.subface0, o.subface1, o.boundary_id, o.rank_m,
                      o.rank_p);
    }
  };
  std::map<Key, std::vector<const Mesh::Face *>> groups;
  for (const auto &f : faces)
  {
    const int rm = rank_of_cell(f.cell_m);
    const int rp = f.is_boundary() ? rm : rank_of_cell(f.cell_p);
    Key key{!f.is_boundary(), f.face_no_m,
            f.is_boundary() ? static_cast<unsigned char>(0) : f.face_no_p,
            f.orientation, f.subface0, f.subface1,
            f.is_boundary() ? f.boundary_id : 0u, rm, rp};
    groups[key].push_back(&f);
  }

  face_batches_.clear();
  auto emit = [this](const Key &key,
                     const std::vector<const Mesh::Face *> &list) {
    for (std::size_t start = 0; start < list.size(); start += n_lanes)
    {
      FaceBatch b;
      b.n_filled = static_cast<unsigned char>(
        std::min<std::size_t>(n_lanes, list.size() - start));
      for (unsigned int l = 0; l < n_lanes; ++l)
      {
        const auto *f = list[start + std::min<std::size_t>(l, b.n_filled - 1)];
        b.cells_m[l] = f->cell_m;
        b.cells_p[l] = f->cell_p;
      }
      b.face_no_m = key.face_no_m;
      b.face_no_p = key.face_no_p;
      b.orientation = key.orientation;
      b.subface0 = key.subface0;
      b.subface1 = key.subface1;
      b.boundary_id = key.boundary_id;
      b.interior = key.interior;
      b.rank_m = key.rank_m;
      b.rank_p = key.rank_p;
      face_batches_.push_back(b);
    }
  };

  // interior batches first
  for (const auto &[key, list] : groups)
    if (key.interior)
      emit(key, list);
  n_inner_batches_ = face_batches_.size();
  for (const auto &[key, list] : groups)
    if (!key.interior)
      emit(key, list);

  // per-rank face work lists: every batch with at least one owned side
  rank_face_batches_.assign(n_ranks_, {});
  for (unsigned int b = 0; b < face_batches_.size(); ++b)
  {
    const FaceBatch &fb = face_batches_[b];
    rank_face_batches_[fb.rank_m].push_back(b);
    if (fb.rank_p != fb.rank_m)
      rank_face_batches_[fb.rank_p].push_back(b);
  }
}

template <typename Number>
void MatrixFree<Number>::build_loop_schedules()
{
  batch_of_cell_.assign(n_cells(), 0u);
  for (unsigned int b = 0; b < cell_batches_.size(); ++b)
    for (unsigned int l = 0; l < cell_batches_[b].n_filled; ++l)
      batch_of_cell_[cell_batches_[b].cells[l]] = b;

  // one schedule per traversal: a batch completes at the last face entry
  // that touches any of its cells on the traversal's side of ownership
  const auto build = [this](const int rank, LoopSchedule &sched,
                            const std::vector<unsigned int> &face_list) {
    const unsigned int batch_begin =
      rank < 0 ? 0u : cell_batch_ranges_[rank].first;
    const unsigned int batch_end =
      rank < 0 ? n_cell_batches() : cell_batch_ranges_[rank].second;
    const unsigned int n_local = batch_end - batch_begin;
    constexpr unsigned int none = ~0u;
    std::vector<unsigned int> last_face(n_local, none);
    sched.pre_before_exchange.assign(n_local, 0);
    const auto touch = [&](const index_t cell, const unsigned int entry,
                           const bool cut) {
      if (rank >= 0 && rank_of_cell(cell) != rank)
        return;
      const unsigned int local = batch_of_cell_[cell] - batch_begin;
      last_face[local] = entry;
      if (cut)
        sched.pre_before_exchange[local] = 1;
    };
    for (unsigned int i = 0; i < face_list.size(); ++i)
    {
      const FaceBatch &fb = face_batches_[face_list[i]];
      for (unsigned int l = 0; l < fb.n_filled; ++l)
      {
        touch(fb.cells_m[l], i, fb.is_cut());
        if (fb.interior)
          touch(fb.cells_p[l], i, fb.is_cut());
      }
    }
    const auto slot_of = [&](const unsigned int b) {
      return last_face[b] == none ? static_cast<unsigned int>(face_list.size())
                                  : last_face[b];
    };
    sched.completes_ptr.assign(face_list.size() + 2, 0u);
    for (unsigned int b = 0; b < n_local; ++b)
      ++sched.completes_ptr[slot_of(b) + 1];
    for (std::size_t i = 1; i < sched.completes_ptr.size(); ++i)
      sched.completes_ptr[i] += sched.completes_ptr[i - 1];
    sched.completes_data.resize(n_local);
    std::vector<unsigned int> cursor(sched.completes_ptr.begin(),
                                     sched.completes_ptr.end() - 1);
    for (unsigned int b = 0; b < n_local; ++b)
      sched.completes_data[cursor[slot_of(b)]++] = batch_begin + b;
  };

  loop_schedules_.assign(n_ranks_, LoopSchedule());
  for (int r = 0; r < n_ranks_; ++r)
    build(r, loop_schedules_[r], rank_face_batches_[r]);
  std::vector<unsigned int> all_faces(face_batches_.size());
  for (unsigned int i = 0; i < all_faces.size(); ++i)
    all_faces[i] = i;
  build(-1, serial_schedule_, all_faces);
}

template <typename Number>
void MatrixFree<Number>::build_thread_partitions()
{
  const auto build = [this](const int rank, ThreadPartition &part,
                            const std::vector<unsigned int> &face_list) {
    part.chunks.clear();
    part.deferred.clear();
    const unsigned int batch_begin =
      rank < 0 ? 0u : cell_batch_ranges_[rank].first;
    const unsigned int batch_end =
      rank < 0 ? n_cell_batches() : cell_batch_ranges_[rank].second;
    const unsigned int n_local = batch_end - batch_begin;
    const unsigned int n_chunks = std::min(n_thread_chunks_, n_local);
    if (n_chunks <= 1)
      return; // empty partition: the driver keeps the serial loop body

    part.chunks.resize(n_chunks);
    std::vector<unsigned int> chunk_of(n_local);
    for (unsigned int c = 0; c < n_chunks; ++c)
    {
      ThreadChunk &ch = part.chunks[c];
      ch.batch_begin =
        batch_begin + (std::uint64_t(n_local) * c) / n_chunks;
      ch.batch_end =
        batch_begin + (std::uint64_t(n_local) * (c + 1)) / n_chunks;
      ch.cell_begin = cell_batches_[ch.batch_begin].cells[0];
      const CellBatch &last = cell_batches_[ch.batch_end - 1];
      ch.cell_end = last.cells[0] + last.n_filled;
      for (unsigned int b = ch.batch_begin; b < ch.batch_end; ++b)
        chunk_of[b - batch_begin] = c;
    }

    // hand every face batch to each chunk owning one of its cells; a face
    // with cells in more than one chunk is evaluated by all of them (each
    // masks its writes to its own cell range) and pins the touched batches'
    // post hooks past the parallel phases: another chunk's face sweep still
    // reads their src (and a fused post may mutate it)
    std::vector<unsigned char> shared(n_local, 0);
    std::vector<unsigned int> touched;
    for (const unsigned int fb_id : face_list)
    {
      const FaceBatch &fb = face_batches_[fb_id];
      touched.clear();
      const auto note = [&](const index_t cell) {
        if (rank >= 0 && rank_of_cell(cell) != rank)
          return;
        const unsigned int c = chunk_of[batch_of_cell_[cell] - batch_begin];
        for (const unsigned int t : touched)
          if (t == c)
            return;
        touched.push_back(c);
      };
      for (unsigned int l = 0; l < fb.n_filled; ++l)
      {
        note(fb.cells_m[l]);
        if (fb.interior)
          note(fb.cells_p[l]);
      }
      for (const unsigned int c : touched)
        part.chunks[c].face_list.push_back(fb_id);
      if (touched.size() > 1)
        for (unsigned int l = 0; l < fb.n_filled; ++l)
        {
          const auto mark = [&](const index_t cell) {
            if (rank >= 0 && rank_of_cell(cell) != rank)
              return;
            shared[batch_of_cell_[cell] - batch_begin] = 1;
          };
          mark(fb.cells_m[l]);
          if (fb.interior)
            mark(fb.cells_p[l]);
        }
    }
    for (unsigned int b = 0; b < n_local; ++b)
      if (shared[b])
        part.deferred.push_back(batch_begin + b);

    // chunk-local hook schedules over the private (non-shared) batches,
    // same CSR layout as the rank-level LoopSchedule
    constexpr unsigned int none = ~0u;
    for (ThreadChunk &ch : part.chunks)
    {
      const unsigned int nb = ch.batch_end - ch.batch_begin;
      std::vector<unsigned int> last_face(nb, none);
      for (unsigned int i = 0; i < ch.face_list.size(); ++i)
      {
        const FaceBatch &fb = face_batches_[ch.face_list[i]];
        const auto touch = [&](const index_t cell) {
          if (rank >= 0 && rank_of_cell(cell) != rank)
            return;
          const unsigned int gb = batch_of_cell_[cell];
          if (gb < ch.batch_begin || gb >= ch.batch_end)
            return;
          last_face[gb - ch.batch_begin] = i;
        };
        for (unsigned int l = 0; l < fb.n_filled; ++l)
        {
          touch(fb.cells_m[l]);
          if (fb.interior)
            touch(fb.cells_p[l]);
        }
      }
      const auto slot_of = [&](const unsigned int b) {
        return last_face[b] == none
                 ? static_cast<unsigned int>(ch.face_list.size())
                 : last_face[b];
      };
      const auto is_private = [&](const unsigned int b) {
        return shared[ch.batch_begin - batch_begin + b] == 0;
      };
      ch.sched.completes_ptr.assign(ch.face_list.size() + 2, 0u);
      unsigned int n_private = 0;
      for (unsigned int b = 0; b < nb; ++b)
        if (is_private(b))
        {
          ++ch.sched.completes_ptr[slot_of(b) + 1];
          ++n_private;
        }
      for (std::size_t i = 1; i < ch.sched.completes_ptr.size(); ++i)
        ch.sched.completes_ptr[i] += ch.sched.completes_ptr[i - 1];
      ch.sched.completes_data.resize(n_private);
      std::vector<unsigned int> cursor(ch.sched.completes_ptr.begin(),
                                       ch.sched.completes_ptr.end() - 1);
      for (unsigned int b = 0; b < nb; ++b)
        if (is_private(b))
          ch.sched.completes_data[cursor[slot_of(b)]++] = ch.batch_begin + b;
    }
  };

  thread_partitions_.assign(n_ranks_, ThreadPartition());
  for (int r = 0; r < n_ranks_; ++r)
    build(r, thread_partitions_[r], rank_face_batches_[r]);
  std::vector<unsigned int> all_faces(face_batches_.size());
  for (unsigned int i = 0; i < all_faces.size(); ++i)
    all_faces[i] = i;
  build(-1, serial_thread_partition_, all_faces);
}

template <typename Number>
void MatrixFree<Number>::compute_geometry_lattices(const Geometry &geometry)
{
  const unsigned int n = geo_degree_ + 1;
  geo_nodes_1d_ = geo_degree_ == 0
                    ? std::vector<double>{0.5}
                    : gauss_lobatto_quadrature(n).points;
  geo_basis_ = std::make_unique<LagrangeBasis>(geo_nodes_1d_);
  const std::size_t per_cell = std::size_t(n) * n * n;
  geo_lattice_.resize_without_init(per_cell * mesh_->n_active_cells());

  for (index_t c = 0; c < mesh_->n_active_cells(); ++c)
  {
    const TreeCoord &tc = mesh_->cell(c);
    const double h = 1. / (1u << tc.level);
    const Point lower = mesh_->cell_lower_corner(c);
    for (unsigned int k = 0; k < n; ++k)
      for (unsigned int j = 0; j < n; ++j)
        for (unsigned int i = 0; i < n; ++i)
        {
          const Point tree_ref(lower[0] + h * geo_nodes_1d_[i],
                               lower[1] + h * geo_nodes_1d_[j],
                               lower[2] + h * geo_nodes_1d_[k]);
          geo_lattice_[c * per_cell + (k * n + j) * n + i] =
            geometry.map(tc.tree, tree_ref);
        }
  }
}

template <typename Number>
void MatrixFree<Number>::evaluate_cell_geometry(const index_t cell,
                                                const Point &ref, Point &x,
                                                Tensor2<double> &jac) const
{
  const unsigned int n = geo_degree_ + 1;
  const LagrangeBasis &basis = *geo_basis_;
  double v[3][16], g[3][16];
  for (unsigned int d = 0; d < dim; ++d)
    for (unsigned int i = 0; i < n; ++i)
    {
      v[d][i] = basis.value(i, ref[d]);
      g[d][i] = basis.derivative(i, ref[d]);
    }
  x = Point();
  jac = Tensor2<double>();
  const std::size_t per_cell = std::size_t(n) * n * n;
  const Point *cp = geo_lattice_.data() + cell * per_cell;
  for (unsigned int k = 0; k < n; ++k)
    for (unsigned int j = 0; j < n; ++j)
      for (unsigned int i = 0; i < n; ++i)
      {
        const Point &p = cp[(k * n + j) * n + i];
        const double w = v[0][i] * v[1][j] * v[2][k];
        const double wx = g[0][i] * v[1][j] * v[2][k];
        const double wy = v[0][i] * g[1][j] * v[2][k];
        const double wz = v[0][i] * v[1][j] * g[2][k];
        for (unsigned int c = 0; c < dim; ++c)
        {
          x[c] += w * p[c];
          jac[c][0] += wx * p[c];
          jac[c][1] += wy * p[c];
          jac[c][2] += wz * p[c];
        }
      }
}

template <typename Number>
void MatrixFree<Number>::classify_cell_geometry()
{
  cell_geometry_type_.assign(n_cells(), GeometryType::general);
  if (!compress_geometry_)
    return;

  // sample the Jacobian on the (geo_degree+1)^3 tensor Gauss lattice; each
  // entry of J is a polynomial of per-direction degree <= geo_degree, so
  // constancy on the lattice implies constancy everywhere
  const unsigned int n = geo_degree_ + 1;
  const Quadrature1D qg = gauss_quadrature(n);

  for (index_t c = 0; c < n_cells(); ++c)
  {
    Point x;
    Tensor2<double> J0;
    evaluate_cell_geometry(c, Point(qg.points[0], qg.points[0], qg.points[0]),
                           x, J0);
    double scale = 0.;
    for (unsigned int r = 0; r < dim; ++r)
      for (unsigned int s = 0; s < dim; ++s)
        scale = std::max(scale, std::abs(J0[r][s]));
    const double tol = 1e-12 * scale;

    bool constant = true;
    for (unsigned int k = 0; k < n && constant; ++k)
      for (unsigned int j = 0; j < n && constant; ++j)
        for (unsigned int i = 0; i < n && constant; ++i)
        {
          if (i == 0 && j == 0 && k == 0)
            continue;
          Tensor2<double> J;
          evaluate_cell_geometry(
            c, Point(qg.points[i], qg.points[j], qg.points[k]), x, J);
          for (unsigned int r = 0; r < dim && constant; ++r)
            for (unsigned int s = 0; s < dim; ++s)
              if (std::abs(J[r][s] - J0[r][s]) > tol)
              {
                constant = false;
                break;
              }
        }
    if (!constant)
      continue;

    bool diagonal = true;
    for (unsigned int r = 0; r < dim && diagonal; ++r)
      for (unsigned int s = 0; s < dim; ++s)
        if (r != s && std::abs(J0[r][s]) > tol)
        {
          diagonal = false;
          break;
        }
    cell_geometry_type_[c] =
      diagonal ? GeometryType::cartesian : GeometryType::affine;
  }
}

template <typename Number>
void MatrixFree<Number>::compute_cell_metric(const unsigned int quad)
{
  const unsigned int nq1 = n_q_1d_[quad];
  const unsigned int nq = nq1 * nq1 * nq1;
  const Quadrature1D q1 = gauss_quadrature(nq1);

  CellMetric &metric = cell_metric_[quad];
  metric.n_q = nq;
  metric.q_points.resize_without_init(std::size_t(n_cell_batches()) * nq);
  metric.q_weight.resize_without_init(nq);
  for (unsigned int k = 0; k < nq1; ++k)
    for (unsigned int j = 0; j < nq1; ++j)
      for (unsigned int i = 0; i < nq1; ++i)
        metric.q_weight[(k * nq1 + j) * nq1 + i] =
          Number(q1.weights[i] * q1.weights[j] * q1.weights[k]);

  // classify batches (weakest lane wins) and assign storage slots
  metric.type.assign(n_cell_batches(), GeometryType::general);
  metric.data_index.assign(n_cell_batches(), 0u);
  unsigned int n_general = 0, n_compressed = 0;
  for (unsigned int b = 0; b < n_cell_batches(); ++b)
  {
    GeometryType t = GeometryType::cartesian;
    for (unsigned int l = 0; l < n_lanes; ++l)
      t = std::max(t, cell_geometry_type_[cell_batches_[b].cells[l]]);
    metric.type[b] = t;
    metric.data_index[b] =
      t == GeometryType::general ? n_general++ : n_compressed++;
  }
  metric.inv_jac_t.resize_without_init(std::size_t(n_general) * nq);
  metric.JxW.resize_without_init(std::size_t(n_general) * nq);
  metric.batch_inv_jac_t.resize_without_init(n_compressed);
  metric.batch_det.resize_without_init(n_compressed);

  const bool first_quad = (quad == 0);
  if (first_quad)
  {
    cell_width_.assign(n_cell_batches(), VA(1e300));
    cell_volumes_.assign(n_cells(), 0.);
  }

  for (unsigned int b = 0; b < n_cell_batches(); ++b)
  {
    const CellBatch &batch = cell_batches_[b];
    const bool general = metric.type[b] == GeometryType::general;
    const std::size_t slot = metric.data_index[b];
    for (unsigned int l = 0; l < n_lanes; ++l)
    {
      const index_t cell = batch.cells[l];
      double h_min = 1e300, volume = 0;
      for (unsigned int k = 0; k < nq1; ++k)
        for (unsigned int j = 0; j < nq1; ++j)
          for (unsigned int i = 0; i < nq1; ++i)
          {
            const unsigned int q = (k * nq1 + j) * nq1 + i;
            Point x;
            Tensor2<double> J;
            evaluate_cell_geometry(
              cell, Point(q1.points[i], q1.points[j], q1.points[k]), x, J);
            const double det = determinant(J);
            DGFLOW_ASSERT(det > 0, "negative Jacobian in cell " << cell);
            const double jxw =
              det * q1.weights[i] * q1.weights[j] * q1.weights[k];
            for (unsigned int r = 0; r < dim; ++r)
              metric.q_points[std::size_t(b) * nq + q][r][l] = x[r];
            if (general)
            {
              const Tensor2<double> inv_t = transpose(invert(J));
              const std::size_t idx = slot * nq + q;
              for (unsigned int r = 0; r < dim; ++r)
                for (unsigned int s = 0; s < dim; ++s)
                  metric.inv_jac_t[idx][r][s][l] = Number(inv_t[r][s]);
              metric.JxW[idx][l] = Number(jxw);
            }
            volume += jxw;
            for (unsigned int d = 0; d < dim; ++d)
            {
              const double len = std::sqrt(J[0][d] * J[0][d] +
                                           J[1][d] * J[1][d] +
                                           J[2][d] * J[2][d]);
              h_min = std::min(h_min, len);
            }
          }
      if (!general)
      {
        // constant Jacobian: one evaluation (cell center) covers the batch
        Point x;
        Tensor2<double> J;
        evaluate_cell_geometry(cell, Point(0.5, 0.5, 0.5), x, J);
        const double det = determinant(J);
        DGFLOW_ASSERT(det > 0, "negative Jacobian in cell " << cell);
        const Tensor2<double> inv_t = transpose(invert(J));
        for (unsigned int r = 0; r < dim; ++r)
          for (unsigned int s = 0; s < dim; ++s)
            metric.batch_inv_jac_t[slot][r][s][l] = Number(inv_t[r][s]);
        metric.batch_det[slot][l] = Number(det);
      }
      if (first_quad)
      {
        cell_width_[b][l] = Number(h_min);
        if (l < batch.n_filled)
          cell_volumes_[cell] = volume;
      }
    }
  }
}

template <typename Number>
void MatrixFree<Number>::compute_face_metric(const unsigned int quad)
{
  const unsigned int nq1 = n_q_1d_[quad];
  const unsigned int nq = nq1 * nq1;
  const Quadrature1D q1 = gauss_quadrature(nq1);

  FaceMetric &metric = face_metric_[quad];
  metric.n_q = nq;
  metric.q_points.resize_without_init(std::size_t(face_batches_.size()) * nq);
  metric.q_weight.resize_without_init(nq);
  for (unsigned int q1i = 0; q1i < nq1; ++q1i)
    for (unsigned int q0i = 0; q0i < nq1; ++q0i)
      metric.q_weight[q1i * nq1 + q0i] =
        Number(q1.weights[q0i] * q1.weights[q1i]);

  // classify batches: compressed only when every adjacent cell of every
  // lane has a constant Jacobian (then normal and surface JxW are constant
  // too, including on hanging subfaces of affine cells)
  metric.type.assign(face_batches_.size(), GeometryType::general);
  metric.data_index.assign(face_batches_.size(), 0u);
  unsigned int n_general = 0, n_compressed = 0;
  for (unsigned int b = 0; b < face_batches_.size(); ++b)
  {
    const FaceBatch &batch = face_batches_[b];
    GeometryType t = GeometryType::cartesian;
    for (unsigned int l = 0; l < n_lanes; ++l)
    {
      t = std::max(t, cell_geometry_type_[batch.cells_m[l]]);
      if (batch.interior)
        t = std::max(t, cell_geometry_type_[batch.cells_p[l]]);
    }
    metric.type[b] = t;
    metric.data_index[b] =
      t == GeometryType::general ? n_general++ : n_compressed++;
  }
  const std::size_t total = std::size_t(n_general) * nq;
  metric.normal.resize_without_init(total);
  metric.JxW.resize_without_init(total);
  metric.inv_jac_t_m.resize_without_init(total);
  metric.inv_jac_t_p.resize_without_init(total);
  metric.batch_normal.resize_without_init(n_compressed);
  metric.batch_jxw_scale.resize_without_init(n_compressed);
  metric.batch_inv_jac_t_m.resize_without_init(n_compressed);
  metric.batch_inv_jac_t_p.resize_without_init(n_compressed);
  metric.penalty_factor.assign(face_batches_.size(), VA(0.));

  for (unsigned int b = 0; b < face_batches_.size(); ++b)
  {
    const FaceBatch &batch = face_batches_[b];
    const bool general = metric.type[b] == GeometryType::general;
    const std::size_t slot = metric.data_index[b];
    const unsigned int dm = batch.face_no_m / 2, sm = batch.face_no_m % 2;
    const auto tm = face_tangential_dims(dm);

    for (unsigned int l = 0; l < n_lanes; ++l)
    {
      const index_t cm = batch.cells_m[l];
      double area = 0;

      // minus side
      for (unsigned int q1i = 0; q1i < nq1; ++q1i)
        for (unsigned int q0i = 0; q0i < nq1; ++q0i)
        {
          Point ref;
          ref[dm] = double(sm);
          ref[tm[0]] = q1.points[q0i];
          ref[tm[1]] = q1.points[q1i];
          Point x;
          Tensor2<double> J;
          evaluate_cell_geometry(cm, ref, x, J);
          const double det = determinant(J);
          const Tensor2<double> inv_t = transpose(invert(J));
          Tensor1<double> nrm;
          for (unsigned int r = 0; r < dim; ++r)
            nrm[r] = (sm == 1 ? 1. : -1.) * inv_t[r][dm];
          const double mag = std::sqrt(dot(nrm, nrm));
          const double sjxw = mag * det * q1.weights[q0i] * q1.weights[q1i];
          const std::size_t idx_q = std::size_t(b) * nq + q1i * nq1 + q0i;
          for (unsigned int r = 0; r < dim; ++r)
            metric.q_points[idx_q][r][l] = x[r];
          if (general)
          {
            const std::size_t idx = slot * nq + q1i * nq1 + q0i;
            for (unsigned int r = 0; r < dim; ++r)
            {
              metric.normal[idx][r][l] = Number(nrm[r] / mag);
              for (unsigned int s = 0; s < dim; ++s)
                metric.inv_jac_t_m[idx][r][s][l] = Number(inv_t[r][s]);
            }
            metric.JxW[idx][l] = Number(sjxw);
          }
          else if (q0i == 0 && q1i == 0)
          {
            // constant surface metric: the first point covers the face
            for (unsigned int r = 0; r < dim; ++r)
            {
              metric.batch_normal[slot][r][l] = Number(nrm[r] / mag);
              for (unsigned int s = 0; s < dim; ++s)
                metric.batch_inv_jac_t_m[slot][r][s][l] = Number(inv_t[r][s]);
            }
            metric.batch_jxw_scale[slot][l] = Number(mag * det);
          }
          area += sjxw;
        }

      // plus side
      if (batch.interior)
      {
        const index_t cp = batch.cells_p[l];
        const unsigned int dp = batch.face_no_p / 2, sp = batch.face_no_p % 2;
        const auto tp = face_tangential_dims(dp);
        const unsigned int o = batch.orientation;
        const bool swap = (o & 1) != 0;
        const bool flip0 = (o & 2) != 0, flip1 = (o & 4) != 0;

        for (unsigned int r1i = 0; r1i < nq1; ++r1i)
          for (unsigned int r0i = 0; r0i < nq1; ++r0i)
          {
            // (r0,r1) index the plus face axes (tp[0], tp[1]); the matching
            // minus indices are (q0,q1) = swap ? (r1,r0) : (r0,r1)
            const unsigned int q0i = swap ? r1i : r0i;
            const unsigned int q1i = swap ? r0i : r1i;
            // plus face coordinates from the minus coordinates
            const double x0 = q1.points[q0i], x1 = q1.points[q1i];
            double u0 = swap ? x1 : x0;
            double u1 = swap ? x0 : x1;
            if (flip0)
              u0 = 1. - u0;
            if (flip1)
              u1 = 1. - u1;
            if (batch.is_hanging())
            {
              u0 = 0.5 * (u0 + batch.subface0);
              u1 = 0.5 * (u1 + batch.subface1);
            }
            Point ref;
            ref[dp] = double(sp);
            ref[tp[0]] = u0;
            ref[tp[1]] = u1;
            Point x;
            Tensor2<double> J;
            evaluate_cell_geometry(cp, ref, x, J);
            const Tensor2<double> inv_t = transpose(invert(J));
            const std::size_t idx_q = std::size_t(b) * nq + q1i * nq1 + q0i;
            if (l < batch.n_filled)
            {
              // consistency: the two sides must see the same physical point
              Point xm;
              for (unsigned int r = 0; r < dim; ++r)
                xm[r] = metric.q_points[idx_q][r][l];
              const double tol =
                1e3 * std::numeric_limits<Number>::epsilon();
              DGFLOW_ASSERT(norm(xm - x) < tol * (1. + norm(x)),
                            "face orientation mismatch at batch "
                              << b << " lane " << l << ": |dx|="
                              << norm(xm - x));
            }
            if (general)
            {
              const std::size_t idx = slot * nq + q1i * nq1 + q0i;
              for (unsigned int r = 0; r < dim; ++r)
                for (unsigned int s = 0; s < dim; ++s)
                  metric.inv_jac_t_p[idx][r][s][l] = Number(inv_t[r][s]);
            }
            else if (r0i == 0 && r1i == 0)
              for (unsigned int r = 0; r < dim; ++r)
                for (unsigned int s = 0; s < dim; ++s)
                  metric.batch_inv_jac_t_p[slot][r][s][l] =
                    Number(inv_t[r][s]);
          }
      }

      // penalty geometry factor
      double pen = area / cell_volumes_[cm];
      if (batch.interior)
        pen = std::max(pen, area / cell_volumes_[batch.cells_p[l]]);
      metric.penalty_factor[b][l] = Number(pen);
    }
  }
}

template <typename Number>
double MatrixFree<Number>::face_lane_fill_fraction() const
{
  std::size_t filled = 0;
  for (const auto &b : face_batches_)
    filled += b.n_filled;
  return face_batches_.empty()
           ? 1.
           : double(filled) / (face_batches_.size() * n_lanes);
}

} // namespace dgflow
