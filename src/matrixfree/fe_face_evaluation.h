#pragma once

// Face-wise evaluator for DG numerical fluxes: interpolates the adjacent
// cells' dof values onto the face quadrature points (values and full
// gradients), including the orientation permutation for unstructured
// cross-tree faces and the subface interpolation on hanging faces (the
// coarse side of a 2:1 interface is evaluated on the fine side's quadrature
// points). The fine cell is always the "interior" (minus) side; its ordering
// defines the quadrature layout shared by both sides and the stored metric.
//
// Mirrors the two fast paths of FEEvaluation: the face sum-factorization
// sweeps are delegated to the KernelBackend resolved at construction
// (fem/kernel_backend.h - the batch backend applies the fixed-size face
// tables, the SoA backend stages lane-major scalar planes), and per-batch
// constant metric data (normal, surface Jacobian, J^{-T}) cached by reinit
// for Cartesian/affine face batches. The collocation plane shortcut and the
// orientation permutation are layout-independent and stay here.

#include "fem/kernel_backend.h"
#include "matrixfree/matrix_free.h"

namespace dgflow
{
template <typename Number, int n_components_ = 1>
class FEFaceEvaluation
{
public:
  using VA = VectorizedArray<Number>;
  static constexpr unsigned int n_lanes = VA::width;
  static constexpr int n_components = n_components_;
  static_assert(n_components == 1 || n_components == 3);

  using value_type = std::conditional_t<n_components == 1, VA, Tensor1<VA>>;
  using gradient_type =
    std::conditional_t<n_components == 1, Tensor1<VA>, Tensor2<VA>>;

  FEFaceEvaluation(const MatrixFree<Number> &mf, const unsigned int space,
                   const unsigned int quad, const bool interior)
    : mf_(mf), space_(space), quad_(quad), interior_(interior),
      shape_(mf.shape_info(space, quad)), n_(shape_.n_dofs_1d),
      nq_(shape_.n_q_1d),
      backend_(make_kernel_backend<Number>(mf.kernel_backend(), shape_)),
      q_weight_(mf.face_metric(quad).q_weight.data())
  {
    n_q_points = nq_ * nq_;
    dofs_per_component = n_ * n_ * n_;
    values_dofs_.resize(n_components * dofs_per_component);
    values_quad_.resize(n_components * n_q_points);
    gradients_quad_.resize(n_components * dim * n_q_points);
    const unsigned int plane = std::max(n_, nq_) * std::max(n_, nq_);
    plane_v_.resize(n_components * plane);
    plane_dn_.resize(n_components * plane);
    tmp2_.resize(plane);
    perm_.resize(n_q_points);
  }

  void reinit(const unsigned int face_batch)
  {
    batch_index_ = face_batch;
    const auto &b = mf_.face_batch(face_batch);
    DGFLOW_DEBUG_ASSERT(interior_ || b.interior,
                        "exterior evaluator on a boundary face");
    metric_offset_ = std::size_t(face_batch) * n_q_points;

    const auto &metric = mf_.face_metric(quad_);
    geom_type_ = metric.type[face_batch];
    const std::size_t slot = metric.data_index[face_batch];
    if (geom_type_ == GeometryType::general)
    {
      normal_q_ = metric.normal.data() + slot * n_q_points;
      jxw_q_ = metric.JxW.data() + slot * n_q_points;
      jac_q_ = (interior_ ? metric.inv_jac_t_m : metric.inv_jac_t_p).data() +
               slot * n_q_points;
    }
    else
    {
      normal_const_ = metric.batch_normal[slot];
      jxw_scale_const_ = metric.batch_jxw_scale[slot];
      jit_const_ = interior_ ? metric.batch_inv_jac_t_m[slot]
                             : metric.batch_inv_jac_t_p[slot];
      normal_q_ = nullptr;
      jxw_q_ = nullptr;
      jac_q_ = nullptr;
    }

    face_no_ = interior_ ? b.face_no_m : b.face_no_p;
    normal_dir_ = face_no_ / 2;
    side_ = face_no_ % 2;
    const auto t = face_tangential_dims(normal_dir_);
    tangential_[0] = t[0];
    tangential_[1] = t[1];

    hanging_ = !interior_ && b.is_hanging();
    subface_[0] = b.subface0;
    subface_[1] = b.subface1;

    // permutation from the minus q-point ordering to this side's own plane
    // ordering (identity for the interior side)
    use_perm_ = !interior_ && b.orientation != 0;
    if (use_perm_)
      for (unsigned int q1 = 0; q1 < nq_; ++q1)
        for (unsigned int q0 = 0; q0 < nq_; ++q0)
        {
          const auto [j0, j1] =
            orient_face_coords(b.orientation, q0, q1, nq_);
          perm_[q1 * nq_ + q0] = j1 * nq_ + j0;
        }
  }

  unsigned int n_filled_lanes() const
  {
    return mf_.face_batch(batch_index_).n_filled;
  }

  void read_dof_values(const Vector<Number> &src)
  {
    const auto &b = mf_.face_batch(batch_index_);
    const auto &cells = interior_ ? b.cells_m : b.cells_p;
    const unsigned int n_cell_dofs = n_components * dofs_per_component;
    std::size_t offsets[n_lanes];
    for (unsigned int l = 0; l < n_lanes; ++l)
      offsets[l] = std::size_t(cells[l]) * n_cell_dofs;
    vectorized_load_and_transpose(n_cell_dofs, src.data(), offsets,
                                  values_dofs_.data());
  }

  void distribute_local_to_global(Vector<Number> &dst) const
  {
    const auto &b = mf_.face_batch(batch_index_);
    const auto &cells = interior_ ? b.cells_m : b.cells_p;
    const unsigned int n_cell_dofs = n_components * dofs_per_component;
    for (unsigned int l = 0; l < b.n_filled; ++l)
    {
      Number *DGFLOW_RESTRICT out =
        dst.data() + std::size_t(cells[l]) * n_cell_dofs;
      for (unsigned int i = 0; i < n_cell_dofs; ++i)
        out[i] += values_dofs_[i][l];
    }
  }

  /// Distributed gather: this side's cell blocks resolve through
  /// local_dof_offset(), so reading the off-rank side of a cut face pulls
  /// from the ghost section (debug-asserts an up-to-date ghost state).
  template <typename VectorLike>
  void read_dof_values(const VectorLike &src)
  {
    const auto &b = mf_.face_batch(batch_index_);
    const auto &cells = interior_ ? b.cells_m : b.cells_p;
    const unsigned int n_cell_dofs = n_components * dofs_per_component;
    std::size_t offsets[n_lanes];
    for (unsigned int l = 0; l < n_lanes; ++l)
      offsets[l] = src.local_dof_offset(cells[l], n_cell_dofs);
    vectorized_load_and_transpose(n_cell_dofs, src.data(), offsets,
                                  values_dofs_.data());
  }

  /// Distributed accumulate: writes only lanes whose cell the vector owns.
  /// On a cut face each rank evaluates the full flux but keeps its own
  /// side's contribution (both-sides-evaluate — dst needs no compress()).
  template <typename VectorLike>
  void distribute_local_to_global(VectorLike &dst) const
  {
    const auto &b = mf_.face_batch(batch_index_);
    const auto &cells = interior_ ? b.cells_m : b.cells_p;
    const unsigned int n_cell_dofs = n_components * dofs_per_component;
    for (unsigned int l = 0; l < b.n_filled; ++l)
    {
      if (!dst.is_owned_element(cells[l]))
        continue;
      Number *DGFLOW_RESTRICT out =
        dst.data() + dst.local_dof_offset(cells[l], n_cell_dofs);
      for (unsigned int i = 0; i < n_cell_dofs; ++i)
        out[i] += values_dofs_[i][l];
    }
  }

  void evaluate(const bool values, const bool gradients)
  {
    (void)values;
    for (int c = 0; c < n_components; ++c)
    {
      const VA *dofs = values_dofs_.data() + c * dofs_per_component;
      VA *pv = plane_v_.data() + c * plane_stride();
      VA *pdn = plane_dn_.data() + c * plane_stride();
      backend_->contract_to_face(shape_.face_value[side_].data(), dofs, pv,
                                 normal_dir_);
      if (gradients)
        backend_->contract_to_face(shape_.face_grad[side_].data(), dofs, pdn,
                                   normal_dir_);

      // 2D interpolation to quadrature points in this side's own ordering
      VA *vq = values_quad_.data() + c * n_q_points;
      interp_plane(pv, vq, value_matrix(0), value_matrix(1));
      if (gradients)
      {
        VA *g = gradients_quad_.data() + c * dim * n_q_points;
        // tangential derivatives of the trace
        interp_plane(pv, g + tang_slot(0) * n_q_points, grad_matrix(0),
                     value_matrix(1));
        interp_plane(pv, g + tang_slot(1) * n_q_points, value_matrix(0),
                     grad_matrix(1));
        // normal derivative plane
        interp_plane(pdn, g + normal_dir_ * n_q_points, value_matrix(0),
                     value_matrix(1));
      }
    }
    if (use_perm_)
    {
      for (int c = 0; c < n_components; ++c)
        permute_to_minus(values_quad_.data() + c * n_q_points);
      if (gradients)
        for (int c = 0; c < n_components; ++c)
          for (unsigned int d = 0; d < dim; ++d)
            permute_to_minus(gradients_quad_.data() +
                             (c * dim + d) * n_q_points);
    }
  }

  void integrate(const bool values, const bool gradients)
  {
    if (use_perm_)
    {
      if (values)
        for (int c = 0; c < n_components; ++c)
          permute_from_minus(values_quad_.data() + c * n_q_points);
      if (gradients)
        for (int c = 0; c < n_components; ++c)
          for (unsigned int d = 0; d < dim; ++d)
            permute_from_minus(gradients_quad_.data() +
                               (c * dim + d) * n_q_points);
    }
    for (int c = 0; c < n_components; ++c)
    {
      VA *dofs = values_dofs_.data() + c * dofs_per_component;
      for (unsigned int i = 0; i < dofs_per_component; ++i)
        dofs[i] = VA(Number(0));
      VA *pv = plane_v_.data() + c * plane_stride();
      VA *pdn = plane_dn_.data() + c * plane_stride();

      bool have_pv = false;
      if (values)
      {
        interp_plane_transpose<false>(values_quad_.data() + c * n_q_points, pv,
                                      value_matrix(0), value_matrix(1));
        have_pv = true;
      }
      if (gradients)
      {
        VA *g = gradients_quad_.data() + c * dim * n_q_points;
        if (have_pv)
          interp_plane_transpose<true>(g + tang_slot(0) * n_q_points, pv,
                                       grad_matrix(0), value_matrix(1));
        else
          interp_plane_transpose<false>(g + tang_slot(0) * n_q_points, pv,
                                        grad_matrix(0), value_matrix(1));
        interp_plane_transpose<true>(g + tang_slot(1) * n_q_points, pv,
                                     value_matrix(0), grad_matrix(1));
        interp_plane_transpose<false>(g + normal_dir_ * n_q_points, pdn,
                                      value_matrix(0), value_matrix(1));
        have_pv = true;
      }
      if (have_pv)
        backend_->expand_from_face_add(shape_.face_value[side_].data(), pv,
                                       dofs, normal_dir_);
      if (gradients)
        backend_->expand_from_face_add(shape_.face_grad[side_].data(), pdn,
                                       dofs, normal_dir_);
    }
  }

  // ---- quadrature point access (in the minus ordering) ----

  value_type get_value(const unsigned int q) const
  {
    if constexpr (n_components == 1)
      return values_quad_[q];
    else
    {
      Tensor1<VA> v;
      for (int c = 0; c < n_components; ++c)
        v[c] = values_quad_[c * n_q_points + q];
      return v;
    }
  }

  gradient_type get_gradient(const unsigned int q) const
  {
    const Tensor2<VA> &jit =
      geom_type_ == GeometryType::general ? jac_q_[q] : jit_const_;
    if constexpr (n_components == 1)
    {
      Tensor1<VA> g;
      for (unsigned int d = 0; d < dim; ++d)
        g[d] = gradients_quad_[d * n_q_points + q];
      return apply(jit, g);
    }
    else
    {
      Tensor2<VA> g;
      for (int c = 0; c < n_components; ++c)
      {
        Tensor1<VA> gr;
        for (unsigned int d = 0; d < dim; ++d)
          gr[d] = gradients_quad_[(c * dim + d) * n_q_points + q];
        const Tensor1<VA> gp = apply(jit, gr);
        for (unsigned int d = 0; d < dim; ++d)
          g[c][d] = gp[d];
      }
      return g;
    }
  }

  /// Unit normal, outward with respect to this evaluator's cell.
  Tensor1<VA> get_normal_vector(const unsigned int q) const
  {
    Tensor1<VA> n =
      geom_type_ == GeometryType::general ? normal_q_[q] : normal_const_;
    if (!interior_)
      n = -n;
    return n;
  }

  /// Derivative of the solution in the direction of this side's outward
  /// normal.
  value_type get_normal_derivative(const unsigned int q) const
  {
    const Tensor1<VA> n = get_normal_vector(q);
    const gradient_type g = get_gradient(q);
    if constexpr (n_components == 1)
      return dot(g, n);
    else
    {
      Tensor1<VA> r;
      for (int c = 0; c < n_components; ++c)
        r[c] = g[c][0] * n[0] + g[c][1] * n[1] + g[c][2] * n[2];
      return r;
    }
  }

  void submit_value(const value_type &v, const unsigned int q)
  {
    const VA jxw = JxW(q);
    if constexpr (n_components == 1)
      values_quad_[q] = v * jxw;
    else
      for (int c = 0; c < n_components; ++c)
        values_quad_[c * n_q_points + q] = v[c] * jxw;
  }

  void submit_gradient(const gradient_type &g, const unsigned int q)
  {
    const Tensor2<VA> &jit =
      geom_type_ == GeometryType::general ? jac_q_[q] : jit_const_;
    const VA jxw = JxW(q);
    if constexpr (n_components == 1)
    {
      const Tensor1<VA> t = apply_transpose(jit, g);
      for (unsigned int d = 0; d < dim; ++d)
        gradients_quad_[d * n_q_points + q] = t[d] * jxw;
    }
    else
      for (int c = 0; c < n_components; ++c)
      {
        Tensor1<VA> gc;
        for (unsigned int d = 0; d < dim; ++d)
          gc[d] = g[c][d];
        const Tensor1<VA> t = apply_transpose(jit, gc);
        for (unsigned int d = 0; d < dim; ++d)
          gradients_quad_[(c * dim + d) * n_q_points + q] = t[d] * jxw;
      }
  }

  /// Submits v * n_side as a gradient test contribution, i.e. the test
  /// function sees v * dphi/dn of this side's outward normal.
  void submit_normal_derivative(const value_type &v, const unsigned int q)
  {
    const Tensor1<VA> n = get_normal_vector(q);
    if constexpr (n_components == 1)
    {
      Tensor1<VA> g;
      for (unsigned int d = 0; d < dim; ++d)
        g[d] = v * n[d];
      submit_gradient(g, q);
    }
    else
    {
      Tensor2<VA> g;
      for (int c = 0; c < n_components; ++c)
        for (unsigned int d = 0; d < dim; ++d)
          g[c][d] = v[c] * n[d];
      submit_gradient(g, q);
    }
  }

  VA *begin_dof_values() { return values_dofs_.data(); }
  const VA *begin_dof_values() const { return values_dofs_.data(); }

  Tensor1<VA> quadrature_point(const unsigned int q) const
  {
    return mf_.face_metric(quad_).q_points[metric_offset_ + q];
  }

  VA JxW(const unsigned int q) const
  {
    if (geom_type_ == GeometryType::general)
      return jxw_q_[q];
    return jxw_scale_const_ * q_weight_[q];
  }

  GeometryType geometry_type() const { return geom_type_; }

  /// Interior-penalty coefficient sigma = c * (k+1)^2 * max(A_f/V) of this
  /// batch. The safety factor c (MatrixFree::AdditionalData::penalty_safety)
  /// keeps the SIP bilinear form coercive on strongly sheared cells, where
  /// the trace inequality constant exceeds the unit-cube value.
  VA penalty_parameter() const
  {
    const Number kp1 = Number(shape_.degree + 1);
    return mf_.face_metric(quad_).penalty_factor[batch_index_] *
           Number(mf_.penalty_safety() * mf_.penalty_scaling(space_)) * kp1 *
           kp1;
  }

  unsigned int boundary_id() const
  {
    return mf_.face_batch(batch_index_).boundary_id;
  }

  unsigned int n_q_points;
  unsigned int dofs_per_component;

private:
  unsigned int plane_stride() const
  {
    return std::max(n_, nq_) * std::max(n_, nq_);
  }

  /// 0-based slot of the first/second tangential direction in the reference
  /// gradient storage.
  unsigned int tang_slot(const unsigned int j) const { return tangential_[j]; }

  /// The 1D interpolation matrix for face-plane axis j (value part).
  const Number *value_matrix(const unsigned int j) const
  {
    if (hanging_)
      return shape_.subface_values[subface_[j]].data();
    return shape_.values.data();
  }

  const Number *grad_matrix(const unsigned int j) const
  {
    if (hanging_)
      return shape_.subface_gradients[subface_[j]].data();
    return shape_.gradients.data();
  }

  /// Applies M0 along axis 0 and M1 along axis 1 of the n x n plane,
  /// producing the nq x nq output.
  void interp_plane(const VA *in, VA *out, const Number *M0, const Number *M1)
  {
    if (shape_.collocation && !hanging_ && M0 == shape_.values.data() &&
        M1 == shape_.values.data())
    {
      for (unsigned int i = 0; i < n_q_points; ++i)
        out[i] = in[i];
      return;
    }
    backend_->interp_plane(M0, M1, in, out);
  }

  /// Transpose of interp_plane; accumulates into out when add is set.
  template <bool add>
  void interp_plane_transpose(const VA *in, VA *out, const Number *M0,
                              const Number *M1)
  {
    if (shape_.collocation && !hanging_ && M0 == shape_.values.data() &&
        M1 == shape_.values.data())
    {
      if constexpr (add)
        for (unsigned int i = 0; i < n_q_points; ++i)
          out[i] += in[i];
      else
        for (unsigned int i = 0; i < n_q_points; ++i)
          out[i] = in[i];
      return;
    }
    backend_->interp_plane_transpose(M0, M1, in, out, add);
  }

  void permute_to_minus(VA *data)
  {
    for (unsigned int q = 0; q < n_q_points; ++q)
      tmp2_[q] = data[perm_[q]];
    for (unsigned int q = 0; q < n_q_points; ++q)
      data[q] = tmp2_[q];
  }

  void permute_from_minus(VA *data)
  {
    for (unsigned int q = 0; q < n_q_points; ++q)
      tmp2_[perm_[q]] = data[q];
    for (unsigned int q = 0; q < n_q_points; ++q)
      data[q] = tmp2_[q];
  }

  const MatrixFree<Number> &mf_;
  unsigned int space_, quad_;
  bool interior_;
  const ShapeInfo<Number> &shape_;
  unsigned int n_, nq_;
  /// Sum-factorization backend (owns layout, dispatch tables, and scratch).
  std::unique_ptr<KernelBackend<Number>> backend_;
  /// Tensorized 2D reference weights (for compressed-metric JxW).
  const Number *q_weight_ = nullptr;

  unsigned int batch_index_ = 0;
  std::size_t metric_offset_ = 0;

  // Per-batch metric state cached by reinit().
  GeometryType geom_type_ = GeometryType::general;
  const Tensor1<VA> *normal_q_ = nullptr; ///< per-q normal (general)
  const VA *jxw_q_ = nullptr;             ///< per-q JxW (general)
  const Tensor2<VA> *jac_q_ = nullptr;    ///< per-q J^{-T}, this side (general)
  Tensor1<VA> normal_const_;              ///< batch normal (compressed)
  VA jxw_scale_const_;                    ///< batch surface Jacobian
  Tensor2<VA> jit_const_;                 ///< batch J^{-T}, this side
  unsigned int face_no_ = 0, normal_dir_ = 0, side_ = 0;
  std::array<unsigned int, 2> tangential_{{1, 2}};
  bool hanging_ = false;
  std::array<unsigned char, 2> subface_{{255, 255}};
  bool use_perm_ = false;

  AlignedVector<VA> values_dofs_, values_quad_, gradients_quad_;
  AlignedVector<VA> plane_v_, plane_dn_, tmp2_;
  std::vector<unsigned int> perm_;
};

} // namespace dgflow
