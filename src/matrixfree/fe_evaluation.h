#pragma once

// Cell-wise evaluator: gathers the SIMD batch of cell dof values, evaluates
// values/gradients at quadrature points by sum factorization, exposes the
// quadrature-point loop (get_*/submit_*), and integrates back (the
// G_e^T I_e^T D_e I_e G_e chain of Eq. (7) in the paper).
//
// The evaluation uses the change-of-basis optimization: values are first
// interpolated to the (Gauss) quadrature points, then all derivatives are
// taken with the collocation derivative matrix - 6 instead of 9 1D kernel
// sweeps for value+gradient evaluation. With the collocated Gauss basis
// (n_q_1d == degree+1) the interpolation step disappears entirely.
//
// Two fast paths resolve at construction/reinit:
//  * kernel backend: the sum-factorization sweeps are delegated to the
//    KernelBackend the MatrixFree resolved at reinit (fem/kernel_backend.h).
//    The batch backend applies the fixed-size AoSoA dispatch tables when an
//    instantiation for (degree, n_q_1d) exists and the verified
//    runtime-extent sweeps otherwise (bit-identical results by
//    construction); the SoA backend stages into lane-major scalar tensors.
//    The collocation shortcut (n_q_1d == degree+1 skips interpolation) is
//    layout-independent and stays here, in front of the backend;
//  * metric compression: get_gradient/submit_gradient/JxW branch on the
//    batch's GeometryType - Cartesian batches multiply by the constant
//    diagonal of J^{-T}, affine batches by the constant full tensor, and
//    only general batches stream per-q metric data.

#include <type_traits>

#include "fem/kernel_backend.h"
#include "matrixfree/matrix_free.h"

namespace dgflow
{
template <typename Number, int n_components_ = 1>
class FEEvaluation
{
public:
  using VA = VectorizedArray<Number>;
  static constexpr unsigned int n_lanes = VA::width;
  static constexpr int n_components = n_components_;
  static_assert(n_components == 1 || n_components == 3);

  using value_type = std::conditional_t<n_components == 1, VA, Tensor1<VA>>;
  using gradient_type =
    std::conditional_t<n_components == 1, Tensor1<VA>, Tensor2<VA>>;

  /// @p use_even_odd selects the flop-reduced even-odd kernels (ablation
  /// studies may disable them; disabling also bypasses the specialized
  /// fixed-size kernels, which build on the even-odd decomposition).
  FEEvaluation(const MatrixFree<Number> &mf, const unsigned int space,
               const unsigned int quad, const bool use_even_odd = true)
    : mf_(mf), space_(space), quad_(quad), shape_(mf.shape_info(space, quad)),
      n_(shape_.n_dofs_1d), nq_(shape_.n_q_1d),
      backend_(
        make_kernel_backend<Number>(mf.kernel_backend(), shape_, use_even_odd)),
      q_weight_(mf.cell_metric(quad).q_weight.data())
  {
    n_q_points = nq_ * nq_ * nq_;
    dofs_per_component = n_ * n_ * n_;
    values_dofs_.resize(n_components * dofs_per_component);
    values_quad_.resize(n_components * n_q_points);
    gradients_quad_.resize(n_components * dim * n_q_points);
  }

  void reinit(const unsigned int cell_batch)
  {
    batch_ = cell_batch;
    metric_offset_ = std::size_t(cell_batch) * n_q_points;
    const auto &metric = mf_.cell_metric(quad_);
    geom_type_ = metric.type[cell_batch];
    const std::size_t slot = metric.data_index[cell_batch];
    if (geom_type_ == GeometryType::general)
    {
      jac_q_ = metric.inv_jac_t.data() + slot * n_q_points;
      jxw_q_ = metric.JxW.data() + slot * n_q_points;
    }
    else
    {
      jit_const_ = metric.batch_inv_jac_t[slot];
      det_const_ = metric.batch_det[slot];
      jac_q_ = nullptr;
      jxw_q_ = nullptr;
    }
  }

  unsigned int n_filled_lanes() const
  {
    return mf_.cell_batch(batch_).n_filled;
  }

  /// Gathers the dof values of all lanes (AoS -> SoA transpose).
  void read_dof_values(const Vector<Number> &src)
  {
    const auto &batch = mf_.cell_batch(batch_);
    const unsigned int n_cell_dofs = n_components * dofs_per_component;
    std::size_t offsets[n_lanes];
    for (unsigned int l = 0; l < n_lanes; ++l)
      offsets[l] = std::size_t(batch.cells[l]) * n_cell_dofs;
    vectorized_load_and_transpose(n_cell_dofs, src.data(), offsets,
                                  values_dofs_.data());
  }

  /// Adds the local integration results into the global vector, skipping
  /// duplicated padding lanes.
  void distribute_local_to_global(Vector<Number> &dst) const
  {
    write_results<true>(dst);
  }

  /// Overwrites the global values (projections, inverse mass application).
  void set_dof_values(Vector<Number> &dst) const { write_results<false>(dst); }

  /// Gathers dof values from any vector exposing the distributed layout
  /// hooks (vmpi::DistributedVector): cell blocks resolve through
  /// local_dof_offset(), so owned and ghost cells read alike. Ghost reads
  /// debug-assert an up-to-date ghost section.
  template <typename VectorLike>
  void read_dof_values(const VectorLike &src)
  {
    const auto &batch = mf_.cell_batch(batch_);
    const unsigned int n_cell_dofs = n_components * dofs_per_component;
    std::size_t offsets[n_lanes];
    for (unsigned int l = 0; l < n_lanes; ++l)
      offsets[l] = src.local_dof_offset(batch.cells[l], n_cell_dofs);
    vectorized_load_and_transpose(n_cell_dofs, src.data(), offsets,
                                  values_dofs_.data());
  }

  /// Distributed accumulate: writes only lanes whose cell the vector owns
  /// (both-sides-evaluate scheme — no compress() needed afterwards, dst
  /// stays owned-only).
  template <typename VectorLike>
  void distribute_local_to_global(VectorLike &dst) const
  {
    const auto &batch = mf_.cell_batch(batch_);
    const unsigned int n_cell_dofs = n_components * dofs_per_component;
    for (unsigned int l = 0; l < batch.n_filled; ++l)
    {
      if (!dst.is_owned_element(batch.cells[l]))
        continue;
      Number *DGFLOW_RESTRICT out =
        dst.data() + dst.local_dof_offset(batch.cells[l], n_cell_dofs);
      for (unsigned int i = 0; i < n_cell_dofs; ++i)
        out[i] += values_dofs_[i][l];
    }
  }

  void evaluate(const bool values, const bool gradients)
  {
    for (int c = 0; c < n_components; ++c)
    {
      const VA *dofs = values_dofs_.data() + c * dofs_per_component;
      VA *vq = values_quad_.data() + c * n_q_points;
      interpolate_to_quad(dofs, vq);
      if (gradients)
        backend_->collocation_gradients(
          vq, gradients_quad_.data() + c * dim * n_q_points);
    }
    (void)values; // values are always produced as part of the chain
  }

  void integrate(const bool values, const bool gradients)
  {
    for (int c = 0; c < n_components; ++c)
    {
      VA *vq = values_quad_.data() + c * n_q_points;
      if (gradients)
        backend_->collocation_gradients_transpose(
          gradients_quad_.data() + c * dim * n_q_points, vq, !values);
      integrate_from_quad(vq, values_dofs_.data() + c * dofs_per_component);
    }
  }

  // ---- quadrature point access ----

  value_type get_value(const unsigned int q) const
  {
    if constexpr (n_components == 1)
      return values_quad_[q];
    else
    {
      Tensor1<VA> v;
      for (int c = 0; c < n_components; ++c)
        v[c] = values_quad_[c * n_q_points + q];
      return v;
    }
  }

  gradient_type get_gradient(const unsigned int q) const
  {
    if constexpr (n_components == 1)
    {
      Tensor1<VA> g;
      for (unsigned int d = 0; d < dim; ++d)
        g[d] = gradients_quad_[d * n_q_points + q];
      return transform_gradient(g, q);
    }
    else
    {
      Tensor2<VA> g;
      for (int c = 0; c < n_components; ++c)
      {
        Tensor1<VA> gr;
        for (unsigned int d = 0; d < dim; ++d)
          gr[d] = gradients_quad_[(c * dim + d) * n_q_points + q];
        const Tensor1<VA> gp = transform_gradient(gr, q);
        for (unsigned int d = 0; d < dim; ++d)
          g[c][d] = gp[d];
      }
      return g;
    }
  }

  VA get_divergence(const unsigned int q) const
  {
    static_assert(n_components == 3);
    const gradient_type g = get_gradient(q);
    return g[0][0] + g[1][1] + g[2][2];
  }

  void submit_value(const value_type &v, const unsigned int q)
  {
    const VA jxw = JxW(q);
    if constexpr (n_components == 1)
      values_quad_[q] = v * jxw;
    else
      for (int c = 0; c < n_components; ++c)
        values_quad_[c * n_q_points + q] = v[c] * jxw;
  }

  void submit_gradient(const gradient_type &g, const unsigned int q)
  {
    const VA jxw = JxW(q);
    if constexpr (n_components == 1)
    {
      const Tensor1<VA> t = transform_gradient_transpose(g, q);
      for (unsigned int d = 0; d < dim; ++d)
        gradients_quad_[d * n_q_points + q] = t[d] * jxw;
    }
    else
      for (int c = 0; c < n_components; ++c)
      {
        Tensor1<VA> gc;
        for (unsigned int d = 0; d < dim; ++d)
          gc[d] = g[c][d];
        const Tensor1<VA> t = transform_gradient_transpose(gc, q);
        for (unsigned int d = 0; d < dim; ++d)
          gradients_quad_[(c * dim + d) * n_q_points + q] = t[d] * jxw;
      }
  }

  /// Submits lambda * I as gradient test contribution (divergence penalty).
  void submit_divergence(const VA &lambda, const unsigned int q)
  {
    static_assert(n_components == 3);
    Tensor2<VA> g;
    for (unsigned int d = 0; d < dim; ++d)
      g[d][d] = lambda;
    submit_gradient(g, q);
  }

  Tensor1<VA> quadrature_point(const unsigned int q) const
  {
    return mf_.cell_metric(quad_).q_points[metric_offset_ + q];
  }

  VA JxW(const unsigned int q) const
  {
    if (geom_type_ == GeometryType::general)
      return jxw_q_[q];
    return det_const_ * q_weight_[q];
  }

  GeometryType geometry_type() const { return geom_type_; }

  VA *begin_dof_values() { return values_dofs_.data(); }
  const VA *begin_dof_values() const { return values_dofs_.data(); }

  unsigned int n_q_points;
  unsigned int dofs_per_component;

private:
  /// Pulls a reference-space gradient to real space (J^{-T} g), picking the
  /// cheapest form the batch's GeometryType allows.
  Tensor1<VA> transform_gradient(const Tensor1<VA> &g, const unsigned int q) const
  {
    switch (geom_type_)
    {
      case GeometryType::cartesian:
      {
        Tensor1<VA> t;
        for (unsigned int d = 0; d < dim; ++d)
          t[d] = jit_const_[d][d] * g[d];
        return t;
      }
      case GeometryType::affine:
        return apply(jit_const_, g);
      default:
        return apply(jac_q_[q], g);
    }
  }

  /// Pushes a real-space test gradient back to reference space (J^{-1} g).
  Tensor1<VA> transform_gradient_transpose(const Tensor1<VA> &g,
                                           const unsigned int q) const
  {
    switch (geom_type_)
    {
      case GeometryType::cartesian:
      {
        Tensor1<VA> t;
        for (unsigned int d = 0; d < dim; ++d)
          t[d] = jit_const_[d][d] * g[d];
        return t;
      }
      case GeometryType::affine:
        return apply_transpose(jit_const_, g);
      default:
        return apply_transpose(jac_q_[q], g);
    }
  }

  void interpolate_to_quad(const VA *dofs, VA *vq)
  {
    if (shape_.collocation)
    {
      for (unsigned int i = 0; i < n_q_points; ++i)
        vq[i] = dofs[i];
      return;
    }
    backend_->interpolate_to_quad(dofs, vq);
  }

  void integrate_from_quad(const VA *vq, VA *dofs)
  {
    if (shape_.collocation)
    {
      for (unsigned int i = 0; i < n_q_points; ++i)
        dofs[i] = vq[i];
      return;
    }
    backend_->integrate_from_quad(vq, dofs);
  }

  template <bool add>
  void write_results(Vector<Number> &dst) const
  {
    const auto &batch = mf_.cell_batch(batch_);
    const unsigned int n_cell_dofs = n_components * dofs_per_component;
    for (unsigned int l = 0; l < batch.n_filled; ++l)
    {
      Number *DGFLOW_RESTRICT out =
        dst.data() + std::size_t(batch.cells[l]) * n_cell_dofs;
      if constexpr (add)
        for (unsigned int i = 0; i < n_cell_dofs; ++i)
          out[i] += values_dofs_[i][l];
      else
        for (unsigned int i = 0; i < n_cell_dofs; ++i)
          out[i] = values_dofs_[i][l];
    }
  }

  const MatrixFree<Number> &mf_;
  unsigned int space_, quad_;
  const ShapeInfo<Number> &shape_;
  unsigned int n_, nq_;
  /// Sum-factorization backend (owns layout, dispatch tables, and scratch).
  std::unique_ptr<KernelBackend<Number>> backend_;
  /// Tensorized reference quadrature weights (for compressed-metric JxW).
  const Number *q_weight_ = nullptr;
  unsigned int batch_ = 0;
  std::size_t metric_offset_ = 0;

  // Per-batch metric state cached by reinit().
  GeometryType geom_type_ = GeometryType::general;
  const Tensor2<VA> *jac_q_ = nullptr; ///< per-q J^{-T} (general batches)
  const VA *jxw_q_ = nullptr;          ///< per-q JxW (general batches)
  Tensor2<VA> jit_const_;              ///< batch J^{-T} (compressed batches)
  VA det_const_;                       ///< batch |det J| (compressed batches)

  AlignedVector<VA> values_dofs_, values_quad_, gradients_quad_;
};

} // namespace dgflow
