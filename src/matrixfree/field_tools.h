#pragma once

// Helpers to set and measure fields on DG spaces: nodal interpolation on the
// collocated Gauss lattice, L2 errors/norms against analytic functions, and
// integrals. Used by tests, examples and benchmark drivers.

#include <functional>

#include "matrixfree/fe_evaluation.h"

namespace dgflow
{
/// f(x) -> scalar, evaluated at physical points.
using ScalarFunction = std::function<double(const Point &)>;
/// f(x) -> 3-vector.
using VectorFunction = std::function<Tensor1<double>(const Point &)>;

/// Nodal interpolation of @p f onto the (collocated) space: requires the
/// quadrature to coincide with the basis nodes.
template <typename Number>
void interpolate(const MatrixFree<Number> &mf, const unsigned int space,
                 const unsigned int quad, const ScalarFunction &f,
                 Vector<Number> &vec)
{
  DGFLOW_ASSERT(mf.shape_info(space, quad).collocation,
                "interpolation requires the collocated quadrature");
  vec.reinit(mf.n_dofs(space, 1), true);
  FEEvaluation<Number, 1> phi(mf, space, quad);
  for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
  {
    phi.reinit(b);
    for (unsigned int q = 0; q < phi.n_q_points; ++q)
    {
      const auto xq = phi.quadrature_point(q);
      for (unsigned int l = 0; l < MatrixFree<Number>::n_lanes; ++l)
        phi.begin_dof_values()[q][l] =
          Number(f(Point(xq[0][l], xq[1][l], xq[2][l])));
    }
    phi.set_dof_values(vec);
  }
}

template <typename Number>
void interpolate_vector(const MatrixFree<Number> &mf, const unsigned int space,
                        const unsigned int quad, const VectorFunction &f,
                        Vector<Number> &vec)
{
  DGFLOW_ASSERT(mf.shape_info(space, quad).collocation,
                "interpolation requires the collocated quadrature");
  vec.reinit(mf.n_dofs(space, 3), true);
  FEEvaluation<Number, 3> phi(mf, space, quad);
  const unsigned int npc = phi.dofs_per_component;
  for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
  {
    phi.reinit(b);
    for (unsigned int q = 0; q < phi.n_q_points; ++q)
    {
      const auto xq = phi.quadrature_point(q);
      for (unsigned int l = 0; l < MatrixFree<Number>::n_lanes; ++l)
      {
        const auto v = f(Point(xq[0][l], xq[1][l], xq[2][l]));
        for (unsigned int c = 0; c < dim; ++c)
          phi.begin_dof_values()[c * npc + q][l] = Number(v[c]);
      }
    }
    phi.set_dof_values(vec);
  }
}

/// L2 norm of (u_h - f) over the domain.
template <typename Number>
double l2_error(const MatrixFree<Number> &mf, const unsigned int space,
                const unsigned int quad, const Vector<Number> &vec,
                const ScalarFunction &f)
{
  FEEvaluation<Number, 1> phi(mf, space, quad);
  double err = 0;
  for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
  {
    phi.reinit(b);
    phi.read_dof_values(vec);
    phi.evaluate(true, false);
    for (unsigned int q = 0; q < phi.n_q_points; ++q)
    {
      const auto xq = phi.quadrature_point(q);
      const auto uh = phi.get_value(q);
      const auto jxw = phi.JxW(q);
      for (unsigned int l = 0; l < phi.n_filled_lanes(); ++l)
      {
        const double d =
          double(uh[l]) - f(Point(xq[0][l], xq[1][l], xq[2][l]));
        err += d * d * double(jxw[l]);
      }
    }
  }
  return std::sqrt(err);
}

template <typename Number>
double l2_error_vector(const MatrixFree<Number> &mf, const unsigned int space,
                       const unsigned int quad, const Vector<Number> &vec,
                       const VectorFunction &f)
{
  FEEvaluation<Number, 3> phi(mf, space, quad);
  double err = 0;
  for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
  {
    phi.reinit(b);
    phi.read_dof_values(vec);
    phi.evaluate(true, false);
    for (unsigned int q = 0; q < phi.n_q_points; ++q)
    {
      const auto xq = phi.quadrature_point(q);
      const auto uh = phi.get_value(q);
      const auto jxw = phi.JxW(q);
      for (unsigned int l = 0; l < phi.n_filled_lanes(); ++l)
      {
        const auto fv = f(Point(xq[0][l], xq[1][l], xq[2][l]));
        for (unsigned int c = 0; c < dim; ++c)
        {
          const double d = double(uh[c][l]) - fv[c];
          err += d * d * double(jxw[l]);
        }
      }
    }
  }
  return std::sqrt(err);
}

/// Kinetic energy 0.5 * integral |u|^2 of a 3-component field.
template <typename Number>
double kinetic_energy(const MatrixFree<Number> &mf, const unsigned int space,
                      const unsigned int quad, const Vector<Number> &u)
{
  FEEvaluation<Number, 3> phi(mf, space, quad);
  double energy = 0;
  for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
  {
    phi.reinit(b);
    phi.read_dof_values(u);
    phi.evaluate(true, false);
    for (unsigned int q = 0; q < phi.n_q_points; ++q)
    {
      const auto v = phi.get_value(q);
      const auto e = dot(v, v) * phi.JxW(q);
      for (unsigned int l = 0; l < phi.n_filled_lanes(); ++l)
        energy += 0.5 * double(e[l]);
    }
  }
  return energy;
}

/// Total measure of the computational domain (sum of JxW).
template <typename Number>
double domain_volume(const MatrixFree<Number> &mf, const unsigned int quad = 0)
{
  double vol = 0;
  const auto &metric = mf.cell_metric(quad);
  for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
  {
    const auto &batch = mf.cell_batch(b);
    for (unsigned int q = 0; q < metric.n_q; ++q)
      for (unsigned int l = 0; l < batch.n_filled; ++l)
        vol += double(metric.jxw(b, q)[l]);
  }
  return vol;
}

} // namespace dgflow
