#pragma once

// Shared cell/face loop driver of the operator contract v2
// (operators/README.md): every matrix-free operator evaluates its kernels
// through cell_face_loop (or cell_only_loop for cell-local operators), which
// owns the traversal order, the distributed ghost-exchange overlap, the
// shared-memory thread parallelization and the solver hook scheduling.
//
// Operators hand the driver a KERNEL FACTORY instead of ready-made kernels:
// a generic callable make_kernels(dst_view) that constructs its evaluators
// and returns LoopKernels{cell, inner, boundary} writing through dst_view.
// The driver decides how many kernel sets exist: one over the real dst for
// the serial sweep, one per thread chunk (each with private evaluator
// scratch, writing through a ChunkDst mask) for the parallel sweep. The
// threaded traversal (MatrixFree::thread_partition) runs in three phases:
//
//   0  each chunk: pre hooks + cell integrals of its own batches
//   1  each chunk: its face list (cross-chunk faces are evaluated by every
//      touching chunk, writes masked to the chunk's cell range) + post hooks
//      of batches no other chunk still reads
//   2  caller: deferred post hooks of chunk-boundary batches, ascending
//
// Every dst entry accumulates cell integral first, then its faces in
// ascending face-batch order with the minus side before the plus side —
// exactly the serial order, for any chunk count — so vmult results are
// BITWISE IDENTICAL to the serial sweep at any thread count (the determinism
// argument is spelled out in docs/DEVELOPING.md, "Shared-memory parallel
// loops").
//
// The solver hooks fold BLAS-1 vector updates into the operator sweep:
//
//   pre(begin, end)   fires immediately before the loop first reads
//                     src[begin, end) — for a DG space, right before the
//                     batch's cell integral; batches feeding the ghost wire
//                     fire before the exchange is posted.
//   post(begin, end)  fires as soon as the traversal will neither read the
//                     batch's src entries nor write its dst entries again —
//                     per-thread for chunk-private batches, after the join
//                     for chunk-boundary batches.
//
// Ranges are half-open local scalar indices (distributed: into the owned
// range), tile the vector exactly once per vmult, and are contiguous because
// cell batches pack consecutive cells. Hooks must be elementwise in their
// range (all solver hooks are): they run concurrently on disjoint ranges.
// Passing NoRangeHook for both slots compiles the scheduling away.

#include <chrono>
#include <vector>

#include "common/loop_hooks.h"
#include "common/vector.h"
#include "concurrency/thread_pool.h"
#include "instrumentation/profiler.h"
#include "matrixfree/matrix_free.h"

namespace dgflow
{
namespace internal
{
/// DoF range of a cell batch in a vector with @p block scalars per cell;
/// @p base is the vector's first_local_index() (0 for a serial Vector).
template <typename Number>
inline std::pair<std::size_t, std::size_t>
batch_dof_range(const MatrixFree<Number> &mf, const unsigned int b,
                const unsigned int block, const std::size_t base)
{
  const auto &cb = mf.cell_batch(b);
  const std::size_t begin = std::size_t(cb.cells[0]) * block - base;
  return {begin, begin + std::size_t(cb.n_filled) * block};
}

/// Destination mask of one thread chunk: behaves like the wrapped vector but
/// owns only the cells in [cell_begin, cell_end). The evaluators' generic
/// distribute_local_to_global overloads consult is_owned_element per lane,
/// which is exactly the cut-face masking the distributed path uses — a face
/// evaluated by two chunks writes each cell from its owning chunk only.
template <typename VectorType>
struct ChunkDst
{
  using value_type = typename VectorType::value_type;

  VectorType &vec;
  index_t cell_begin, cell_end;

  value_type *data() { return vec.data(); }
  const value_type *data() const { return vec.data(); }
  std::size_t size() const { return vec.size(); }

  bool is_owned_element(const std::size_t cell) const
  {
    if (cell < cell_begin || cell >= cell_end)
      return false;
    if constexpr (is_distributed_vector_v<VectorType>)
      return vec.is_owned_element(cell);
    else
      return true;
  }

  std::size_t local_dof_offset(const std::size_t cell,
                               const unsigned int n_dofs) const
  {
    if constexpr (is_distributed_vector_v<VectorType>)
      return vec.local_dof_offset(cell, n_dofs);
    else
      return cell * n_dofs;
  }

  value_type &operator[](const std::size_t i) { return vec[i]; }
  value_type operator[](const std::size_t i) const { return vec[i]; }
};

inline double seconds_since(const std::chrono::steady_clock::time_point t0)
{
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
    .count();
}

/// Publishes the load-balance gauges of one threaded sweep: parallel
/// efficiency mean/max (1 = perfectly balanced) and imbalance max/mean.
inline void publish_thread_balance(const std::vector<double> &chunk_seconds)
{
  double sum = 0., peak = 0.;
  for (const double s : chunk_seconds)
  {
    sum += s;
    peak = std::max(peak, s);
  }
  if (peak <= 0.)
    return;
  const double mean = sum / double(chunk_seconds.size());
  DGFLOW_PROF_GAUGE("mf_thread_imbalance", peak / mean);
  DGFLOW_PROF_GAUGE("mf_thread_efficiency", mean / peak);
}
} // namespace internal

/// Kernel set one cell_face_loop kernel factory returns: batch-index
/// callables for the cell integrals, interior faces and boundary faces, all
/// writing through the dst view the factory received.
template <typename CellFn, typename InnerFn, typename BoundaryFn>
struct LoopKernels
{
  CellFn cell;
  InnerFn inner;
  BoundaryFn boundary;
};

template <typename CellFn, typename InnerFn, typename BoundaryFn>
LoopKernels(CellFn, InnerFn, BoundaryFn)
  -> LoopKernels<CellFn, InnerFn, BoundaryFn>;

namespace internal
{
/// Three-phase thread-parallel traversal (see the file comment). Factored
/// out of cell_face_loop; part.chunks.size() >= 2.
template <typename Number, typename VectorType, typename KernelFactory,
          typename PreFn, typename PostFn>
void threaded_cell_face_loop(const MatrixFree<Number> &mf, VectorType &dst,
                             const VectorType &src,
                             const unsigned int dst_block,
                             const unsigned int src_block,
                             KernelFactory &&make_kernels, PreFn &&pre,
                             PostFn &&post, const int rank,
                             const typename MatrixFree<Number>::ThreadPartition
                               &part)
{
  constexpr bool distributed = is_distributed_vector_v<VectorType>;
  constexpr bool has_pre = !is_no_hook_v<PreFn>;
  constexpr bool has_post = !is_no_hook_v<PostFn>;

  const std::size_t src_base = src.first_local_index();
  const std::size_t dst_base = dst.first_local_index();
  const auto fire_pre = [&](const unsigned int b) {
    const auto [r0, r1] = batch_dof_range(mf, b, src_block, src_base);
    pre(r0, r1);
  };
  const auto fire_post = [&](const unsigned int b) {
    const auto [r0, r1] = batch_dof_range(mf, b, dst_block, dst_base);
    post(r0, r1);
  };

  const unsigned int n_chunks = part.chunks.size();
  using View = ChunkDst<VectorType>;
  std::vector<View> views;
  views.reserve(n_chunks);
  for (const auto &ch : part.chunks)
    views.push_back(View{dst, ch.cell_begin, ch.cell_end});
  using KernelsT = decltype(make_kernels(views.front()));
  std::vector<KernelsT> kernels;
  kernels.reserve(n_chunks);
  for (auto &v : views)
    kernels.push_back(make_kernels(v));

  [[maybe_unused]] const auto &rank_sched = mf.loop_schedule(rank);
  [[maybe_unused]] const unsigned int rank_batch_begin =
    rank < 0 ? 0u : mf.cell_batch_range(rank).first;

  const bool measure = prof::Profiler::instance().enabled();
  std::vector<double> chunk_seconds(n_chunks, 0.);
  auto &pool = concurrency::ThreadPool::instance();

  if constexpr (distributed)
  {
    // src-mutating pre hooks must finalize the entries the ghost pack reads
    // (cells on cut faces) before the sends are posted
    if constexpr (has_pre)
    {
      const auto [cb, ce] = mf.cell_batch_range(rank);
      for (unsigned int b = cb; b < ce; ++b)
        if (rank_sched.pre_before_exchange[b - cb])
          fire_pre(b);
    }
    src.update_ghost_values_start();
  }

  // phase 0: per-chunk pre hooks + cell integrals
  pool.run_chunks(n_chunks, [&](const unsigned int c) {
    const auto t0 = std::chrono::steady_clock::now();
    DGFLOW_PROF_SCOPE("mf_threaded_cells");
    const auto &ch = part.chunks[c];
    for (unsigned int b = ch.batch_begin; b < ch.batch_end; ++b)
    {
      if constexpr (has_pre)
      {
        bool fired_before_exchange = false;
        if constexpr (distributed)
          fired_before_exchange =
            rank_sched.pre_before_exchange[b - rank_batch_begin] != 0;
        if (!fired_before_exchange)
          fire_pre(b);
      }
      kernels[c].cell(b);
    }
    if (measure)
      chunk_seconds[c] += seconds_since(t0);
  });

  if constexpr (distributed)
    src.update_ghost_values_finish();

  // phase 1: per-chunk face lists + post hooks of chunk-private batches
  pool.run_chunks(n_chunks, [&](const unsigned int c) {
    const auto t0 = std::chrono::steady_clock::now();
    DGFLOW_PROF_SCOPE("mf_threaded_faces");
    const auto &ch = part.chunks[c];
    const auto fire_completed = [&](const unsigned int slot) {
      for (unsigned int k = ch.sched.completes_ptr[slot];
           k < ch.sched.completes_ptr[slot + 1]; ++k)
        fire_post(ch.sched.completes_data[k]);
    };
    for (unsigned int i = 0; i < ch.face_list.size(); ++i)
    {
      const unsigned int b = ch.face_list[i];
      if (mf.face_batch(b).interior)
        kernels[c].inner(b);
      else
        kernels[c].boundary(b);
      if constexpr (has_post)
        fire_completed(i);
    }
    if constexpr (has_post)
      fire_completed(static_cast<unsigned int>(ch.face_list.size()));
    if (measure)
      chunk_seconds[c] += seconds_since(t0);
  });

  // phase 2: deferred posts of chunk-boundary batches, ascending
  if constexpr (has_post)
    for (const unsigned int b : part.deferred)
      fire_post(b);

  if (measure)
    publish_thread_balance(chunk_seconds);
  unsigned long long n_face_evals = 0;
  for (const auto &ch : part.chunks)
    n_face_evals += ch.face_list.size();
  DGFLOW_PROF_COUNT("mf_cell_batches",
                    part.chunks.back().batch_end -
                      part.chunks.front().batch_begin);
  DGFLOW_PROF_COUNT("mf_face_batches",
                    static_cast<long long>(n_face_evals));
}
} // namespace internal

/// Runs the full cell + face traversal of one operator application.
/// make_kernels(dst_view) must return LoopKernels writing through dst_view;
/// the batch callables read src / accumulate into the view themselves. dst
/// must already be zeroed. src_block / dst_block are the scalars per cell of
/// the respective space (they differ for mixed-space operators like
/// divergence/gradient).
template <typename Number, typename VectorType, typename KernelFactory,
          typename PreFn, typename PostFn>
void cell_face_loop(const MatrixFree<Number> &mf, VectorType &dst,
                    const VectorType &src, const unsigned int dst_block,
                    const unsigned int src_block, KernelFactory &&make_kernels,
                    PreFn &&pre, PostFn &&post)
{
  constexpr bool distributed = is_distributed_vector_v<VectorType>;
  constexpr bool has_pre = !internal::is_no_hook_v<PreFn>;
  constexpr bool has_post = !internal::is_no_hook_v<PostFn>;

  int rank = -1;
  if constexpr (distributed)
    rank = src.rank();
  // which backend's kernels this traversal drives (evaluators constructed by
  // make_kernels resolve it from the same MatrixFree)
  DGFLOW_PROF_GAUGE("mf_backend", double(static_cast<int>(mf.kernel_backend())));
  const auto &part = mf.thread_partition(rank);
  if (part.chunks.size() > 1)
  {
    internal::threaded_cell_face_loop(mf, dst, src, dst_block, src_block,
                                      make_kernels, pre, post, rank, part);
    return;
  }

  auto kernels = make_kernels(dst);
  const std::size_t src_base = src.first_local_index();
  const std::size_t dst_base = dst.first_local_index();
  const auto fire_pre = [&](const unsigned int b) {
    const auto [r0, r1] = internal::batch_dof_range(mf, b, src_block, src_base);
    pre(r0, r1);
  };
  const auto fire_completed = [&](const typename MatrixFree<Number>::LoopSchedule
                                    &sched,
                                  const unsigned int slot) {
    for (unsigned int k = sched.completes_ptr[slot];
         k < sched.completes_ptr[slot + 1]; ++k)
    {
      const auto [r0, r1] = internal::batch_dof_range(
        mf, sched.completes_data[k], dst_block, dst_base);
      post(r0, r1);
    }
  };

  if constexpr (distributed)
  {
    const auto &sched = mf.loop_schedule(rank);
    const auto [cell_begin, cell_end] = mf.cell_batch_range(rank);
    // src-mutating pre hooks must finalize the entries the ghost pack reads
    // (cells on cut faces) before the sends are posted; the remaining
    // batches stay fused with their cell integral below
    if constexpr (has_pre)
      for (unsigned int b = cell_begin; b < cell_end; ++b)
        if (sched.pre_before_exchange[b - cell_begin])
          fire_pre(b);
    src.update_ghost_values_start();
    for (unsigned int b = cell_begin; b < cell_end; ++b)
    {
      if constexpr (has_pre)
        if (!sched.pre_before_exchange[b - cell_begin])
          fire_pre(b);
      kernels.cell(b);
    }
    src.update_ghost_values_finish();
    const auto &face_list = mf.face_batches_of_rank(rank);
    for (unsigned int i = 0; i < face_list.size(); ++i)
    {
      const unsigned int b = face_list[i];
      if (mf.face_batch(b).interior)
        kernels.inner(b);
      else
        kernels.boundary(b);
      if constexpr (has_post)
        fire_completed(sched, i);
    }
    if constexpr (has_post)
      fire_completed(sched, static_cast<unsigned int>(face_list.size()));
    DGFLOW_PROF_COUNT("mf_cell_batches", cell_end - cell_begin);
    DGFLOW_PROF_COUNT("mf_face_batches", face_list.size());
  }
  else
  {
    const auto &sched = mf.loop_schedule(-1);
    for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
    {
      if constexpr (has_pre)
        fire_pre(b);
      kernels.cell(b);
    }
    const unsigned int n_faces = mf.n_face_batches();
    for (unsigned int b = 0; b < n_faces; ++b)
    {
      if (b < mf.n_inner_face_batches())
        kernels.inner(b);
      else
        kernels.boundary(b);
      if constexpr (has_post)
        fire_completed(sched, b);
    }
    if constexpr (has_post)
      fire_completed(sched, n_faces);
    DGFLOW_PROF_COUNT("mf_cell_batches", mf.n_cell_batches());
    DGFLOW_PROF_COUNT("mf_face_batches", n_faces);
  }
}

/// Cell-only variant (no face terms, serial vectors): the post hook fires
/// directly after each batch's cell work since nothing revisits the batch.
/// make_cell(dst_view) returns the single cell-batch callable; cell-local
/// writes are disjoint per chunk, so the threaded sweep hands every chunk
/// the real dst and needs no masking or deferral.
template <typename Number, typename VectorType, typename KernelFactory,
          typename PreFn, typename PostFn>
void cell_only_loop(const MatrixFree<Number> &mf, VectorType &dst,
                    const VectorType &src, const unsigned int dst_block,
                    const unsigned int src_block, KernelFactory &&make_cell,
                    PreFn &&pre, PostFn &&post)
{
  constexpr bool has_pre = !internal::is_no_hook_v<PreFn>;
  constexpr bool has_post = !internal::is_no_hook_v<PostFn>;
  DGFLOW_PROF_GAUGE("mf_backend", double(static_cast<int>(mf.kernel_backend())));
  const std::size_t src_base = src.first_local_index();
  const std::size_t dst_base = dst.first_local_index();
  const auto run_batch = [&](auto &cell_kernel, const unsigned int b) {
    if constexpr (has_pre)
    {
      const auto [r0, r1] =
        internal::batch_dof_range(mf, b, src_block, src_base);
      pre(r0, r1);
    }
    cell_kernel(b);
    if constexpr (has_post)
    {
      const auto [r0, r1] =
        internal::batch_dof_range(mf, b, dst_block, dst_base);
      post(r0, r1);
    }
  };

  const auto &part = mf.thread_partition(-1);
  if (part.chunks.size() > 1)
  {
    using KernelT = decltype(make_cell(dst));
    std::vector<KernelT> kernels;
    kernels.reserve(part.chunks.size());
    for (std::size_t c = 0; c < part.chunks.size(); ++c)
      kernels.push_back(make_cell(dst));
    concurrency::ThreadPool::instance().run_chunks(
      part.chunks.size(), [&](const unsigned int c) {
        const auto &ch = part.chunks[c];
        for (unsigned int b = ch.batch_begin; b < ch.batch_end; ++b)
          run_batch(kernels[c], b);
      });
  }
  else
  {
    auto cell_kernel = make_cell(dst);
    for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
      run_batch(cell_kernel, b);
  }
  DGFLOW_PROF_COUNT("mf_cell_batches", mf.n_cell_batches());
}

} // namespace dgflow
