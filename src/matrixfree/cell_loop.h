#pragma once

// Shared cell/face loop driver of the operator contract v2
// (operators/README.md): every matrix-free operator evaluates its kernels
// through cell_face_loop (or cell_only_loop for cell-local operators), which
// owns the traversal order, the distributed ghost-exchange overlap and the
// solver hook scheduling. The hooks let a solver fold its BLAS-1 vector
// updates into the operator sweep (merged solver kernels):
//
//   pre(begin, end)   fires immediately before the loop first reads
//                     src[begin, end) — for a DG space, right before the
//                     batch's cell integral; batches feeding the ghost wire
//                     fire before the exchange is posted.
//   post(begin, end)  fires as soon as the traversal will neither read the
//                     batch's src entries nor write its dst entries again —
//                     scheduled from MatrixFree::loop_schedule, which knows
//                     the last face entry adjacent to each cell batch.
//
// Ranges are half-open local scalar indices (distributed: into the owned
// range), tile the vector exactly once per vmult, and are contiguous because
// cell batches pack consecutive cells. Passing NoRangeHook for both slots
// compiles the scheduling away and reproduces the pre-v2 loops bitwise.

#include "common/loop_hooks.h"
#include "common/vector.h"
#include "instrumentation/profiler.h"
#include "matrixfree/matrix_free.h"

namespace dgflow
{
namespace internal
{
/// DoF range of a cell batch in a vector with @p block scalars per cell;
/// @p base is the vector's first_local_index() (0 for a serial Vector).
template <typename Number>
inline std::pair<std::size_t, std::size_t>
batch_dof_range(const MatrixFree<Number> &mf, const unsigned int b,
                const unsigned int block, const std::size_t base)
{
  const auto &cb = mf.cell_batch(b);
  const std::size_t begin = std::size_t(cb.cells[0]) * block - base;
  return {begin, begin + std::size_t(cb.n_filled) * block};
}
} // namespace internal

/// Runs the full cell + face traversal of one operator application. The
/// process callbacks receive a (cell or face) batch index and read src /
/// accumulate into dst themselves; dst must already be zeroed. src_block /
/// dst_block are the scalars per cell of the respective space (they differ
/// for mixed-space operators like divergence/gradient).
template <typename Number, typename VectorType, typename CellFn,
          typename InnerFn, typename BoundaryFn, typename PreFn,
          typename PostFn>
void cell_face_loop(const MatrixFree<Number> &mf, VectorType &dst,
                    const VectorType &src, const unsigned int dst_block,
                    const unsigned int src_block, CellFn &&process_cell,
                    InnerFn &&process_inner, BoundaryFn &&process_boundary,
                    PreFn &&pre, PostFn &&post)
{
  constexpr bool distributed = is_distributed_vector_v<VectorType>;
  constexpr bool has_pre = !internal::is_no_hook_v<PreFn>;
  constexpr bool has_post = !internal::is_no_hook_v<PostFn>;

  const std::size_t src_base = src.first_local_index();
  const std::size_t dst_base = dst.first_local_index();
  const auto fire_pre = [&](const unsigned int b) {
    const auto [r0, r1] = internal::batch_dof_range(mf, b, src_block, src_base);
    pre(r0, r1);
  };
  const auto fire_completed = [&](const typename MatrixFree<Number>::LoopSchedule
                                    &sched,
                                  const unsigned int slot) {
    for (unsigned int k = sched.completes_ptr[slot];
         k < sched.completes_ptr[slot + 1]; ++k)
    {
      const auto [r0, r1] = internal::batch_dof_range(
        mf, sched.completes_data[k], dst_block, dst_base);
      post(r0, r1);
    }
  };

  if constexpr (distributed)
  {
    const int rank = src.rank();
    const auto &sched = mf.loop_schedule(rank);
    const auto [cell_begin, cell_end] = mf.cell_batch_range(rank);
    // src-mutating pre hooks must finalize the entries the ghost pack reads
    // (cells on cut faces) before the sends are posted; the remaining
    // batches stay fused with their cell integral below
    if constexpr (has_pre)
      for (unsigned int b = cell_begin; b < cell_end; ++b)
        if (sched.pre_before_exchange[b - cell_begin])
          fire_pre(b);
    src.update_ghost_values_start();
    for (unsigned int b = cell_begin; b < cell_end; ++b)
    {
      if constexpr (has_pre)
        if (!sched.pre_before_exchange[b - cell_begin])
          fire_pre(b);
      process_cell(b);
    }
    src.update_ghost_values_finish();
    const auto &face_list = mf.face_batches_of_rank(rank);
    for (unsigned int i = 0; i < face_list.size(); ++i)
    {
      const unsigned int b = face_list[i];
      if (mf.face_batch(b).interior)
        process_inner(b);
      else
        process_boundary(b);
      if constexpr (has_post)
        fire_completed(sched, i);
    }
    if constexpr (has_post)
      fire_completed(sched, static_cast<unsigned int>(face_list.size()));
    DGFLOW_PROF_COUNT("mf_cell_batches", cell_end - cell_begin);
    DGFLOW_PROF_COUNT("mf_face_batches", face_list.size());
  }
  else
  {
    const auto &sched = mf.loop_schedule(-1);
    for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
    {
      if constexpr (has_pre)
        fire_pre(b);
      process_cell(b);
    }
    const unsigned int n_faces = mf.n_face_batches();
    for (unsigned int b = 0; b < n_faces; ++b)
    {
      if (b < mf.n_inner_face_batches())
        process_inner(b);
      else
        process_boundary(b);
      if constexpr (has_post)
        fire_completed(sched, b);
    }
    if constexpr (has_post)
      fire_completed(sched, n_faces);
    DGFLOW_PROF_COUNT("mf_cell_batches", mf.n_cell_batches());
    DGFLOW_PROF_COUNT("mf_face_batches", n_faces);
  }
}

/// Cell-only variant (no face terms, serial vectors): the post hook fires
/// directly after each batch's cell work since nothing revisits the batch.
template <typename Number, typename VectorType, typename CellFn,
          typename PreFn, typename PostFn>
void cell_only_loop(const MatrixFree<Number> &mf, VectorType &dst,
                    const VectorType &src, const unsigned int dst_block,
                    const unsigned int src_block, CellFn &&process_cell,
                    PreFn &&pre, PostFn &&post)
{
  constexpr bool has_pre = !internal::is_no_hook_v<PreFn>;
  constexpr bool has_post = !internal::is_no_hook_v<PostFn>;
  const std::size_t src_base = src.first_local_index();
  const std::size_t dst_base = dst.first_local_index();
  for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
  {
    if constexpr (has_pre)
    {
      const auto [r0, r1] =
        internal::batch_dof_range(mf, b, src_block, src_base);
      pre(r0, r1);
    }
    process_cell(b);
    if constexpr (has_post)
    {
      const auto [r0, r1] =
        internal::batch_dof_range(mf, b, dst_block, dst_base);
      post(r0, r1);
    }
  }
  DGFLOW_PROF_COUNT("mf_cell_batches", mf.n_cell_batches());
}

} // namespace dgflow
