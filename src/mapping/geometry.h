#pragma once

// Geometry description: a smooth map from each coarse cell's (tree's) unit
// cube to physical space. Following Heltai et al. (paper Section 3.3), the
// analytic geometry is sampled once per active cell on a Gauss-Lobatto
// lattice during setup; all metric terms are computed from that per-cell
// polynomial and the analytic map is never consulted again.

#include <functional>
#include <vector>

#include "common/exceptions.h"
#include "common/tensor.h"
#include "mesh/coarse_mesh.h"

namespace dgflow
{
class Geometry
{
public:
  virtual ~Geometry() = default;

  /// Maps reference coordinates within coarse cell @p tree to physical space.
  virtual Point map(index_t tree, const Point &ref) const = 0;
};

/// Standard isoparametric geometry from the coarse-mesh vertices.
class TrilinearGeometry : public Geometry
{
public:
  explicit TrilinearGeometry(const CoarseMesh &mesh) : mesh_(mesh) {}

  Point map(const index_t tree, const Point &ref) const override
  {
    Point p;
    for (unsigned int v = 0; v < 8; ++v)
    {
      double w = 1.;
      for (unsigned int d = 0; d < dim; ++d)
        w *= ((v >> d) & 1) ? ref[d] : (1. - ref[d]);
      p += w * mesh_.vertex_of_cell(tree, v);
    }
    return p;
  }

private:
  const CoarseMesh &mesh_;
};

/// Geometry given by an arbitrary callable (deformations, manufactured
/// geometry tests).
class AnalyticGeometry : public Geometry
{
public:
  using MapFn = std::function<Point(index_t, const Point &)>;

  explicit AnalyticGeometry(MapFn fn) : fn_(std::move(fn)) {}

  Point map(const index_t tree, const Point &ref) const override
  {
    return fn_(tree, ref);
  }

private:
  MapFn fn_;
};

/// Geometry defined by per-tree control-point lattices of (m+1)^3 points on
/// Gauss-Lobatto nodes (used by the lung mesh generator, which computes the
/// square-to-disc and patient-deformation maps once per tree).
class LatticeGeometry : public Geometry
{
public:
  LatticeGeometry(const unsigned int degree_1d,
                  const std::vector<double> &nodes_1d)
    : m_(degree_1d), nodes_(nodes_1d), basis_(nodes_1d)
  {
    DGFLOW_ASSERT(nodes_1d.size() == degree_1d + 1, "node count mismatch");
  }

  /// Control points of tree t, lexicographic over the (m+1)^3 lattice.
  std::vector<Point> &control_points(const index_t t)
  {
    if (points_.size() <= t)
      points_.resize(t + 1);
    return points_[t];
  }

  Point map(const index_t tree, const Point &ref) const override
  {
    const unsigned int n = m_ + 1;
    const auto &cp = points_[tree];
    DGFLOW_DEBUG_ASSERT(cp.size() == std::size_t(n) * n * n,
                        "control lattice not initialized");
    // tensor-product Lagrange evaluation at a single point
    double vx[16], vy[16], vz[16];
    for (unsigned int i = 0; i < n; ++i)
    {
      vx[i] = basis_.value(i, ref[0]);
      vy[i] = basis_.value(i, ref[1]);
      vz[i] = basis_.value(i, ref[2]);
    }
    Point p;
    for (unsigned int k = 0; k < n; ++k)
      for (unsigned int j = 0; j < n; ++j)
      {
        const double wyz = vy[j] * vz[k];
        for (unsigned int i = 0; i < n; ++i)
          p += (vx[i] * wyz) * cp[(k * n + j) * n + i];
      }
    return p;
  }

private:
  unsigned int m_;
  std::vector<double> nodes_;
  LagrangeBasis basis_;
  std::vector<std::vector<Point>> points_;
};

} // namespace dgflow
