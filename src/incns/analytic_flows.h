#pragma once

// Analytic solutions of the incompressible Navier-Stokes equations used for
// solver validation: the three-dimensional unsteady Ethier-Steinman (Beltrami)
// flow and plane Poiseuille channel flow. Poiseuille also validates the
// laminar-resistance model underlying the lung outlet boundary conditions.

#include <cmath>

#include "common/tensor.h"

namespace dgflow
{
/// Exact unsteady NS solution (Ethier & Steinman 1994) with parameters a, d;
/// decays like exp(-nu d^2 t).
struct EthierSteinman
{
  double a = M_PI / 4.;
  double d = M_PI / 2.;
  double nu = 1.;

  Tensor1<double> velocity(const Point &p, const double t) const
  {
    const double e = std::exp(-nu * d * d * t);
    const double x = p[0], y = p[1], z = p[2];
    return Tensor1<double>(
      -a * (std::exp(a * x) * std::sin(a * y + d * z) +
            std::exp(a * z) * std::cos(a * x + d * y)) * e,
      -a * (std::exp(a * y) * std::sin(a * z + d * x) +
            std::exp(a * x) * std::cos(a * y + d * z)) * e,
      -a * (std::exp(a * z) * std::sin(a * x + d * y) +
            std::exp(a * y) * std::cos(a * z + d * x)) * e);
  }

  Tensor1<double> velocity_dt(const Point &p, const double t) const
  {
    return (-nu * d * d) * velocity(p, t);
  }

  double pressure(const Point &p, const double t) const
  {
    const double e2 = std::exp(-2. * nu * d * d * t);
    const double x = p[0], y = p[1], z = p[2];
    return -0.5 * a * a *
           (std::exp(2 * a * x) + std::exp(2 * a * y) + std::exp(2 * a * z) +
            2. * std::sin(a * x + d * y) * std::cos(a * z + d * x) *
              std::exp(a * (y + z)) +
            2. * std::sin(a * y + d * z) * std::cos(a * x + d * y) *
              std::exp(a * (z + x)) +
            2. * std::sin(a * z + d * x) * std::cos(a * y + d * z) *
              std::exp(a * (x + y))) *
           e2;
  }

  /// Velocity gradient du_i/dx_j (for Neumann data on open boundaries).
  Tensor2<double> velocity_gradient(const Point &p, const double t) const
  {
    // finite differences are sufficient for boundary data of tests
    Tensor2<double> g;
    const double h = 1e-6;
    for (unsigned int j = 0; j < dim; ++j)
    {
      Point pp = p, pm = p;
      pp[j] += h;
      pm[j] -= h;
      const auto up = velocity(pp, t), um = velocity(pm, t);
      for (unsigned int i = 0; i < dim; ++i)
        g[i][j] = (up[i] - um[i]) / (2 * h);
    }
    return g;
  }
};

/// Plane Poiseuille flow between y = 0 and y = 1 driven by a pressure drop
/// G over unit length: u_x = G/(2 nu) y (1-y).
struct PoiseuilleChannel
{
  double G = 1.;  ///< pressure gradient (p_in - p_out over unit length)
  double nu = 1.;

  Tensor1<double> velocity(const Point &p) const
  {
    return Tensor1<double>(0.5 * G / nu * p[1] * (1. - p[1]), 0., 0.);
  }

  double pressure(const Point &p) const { return G * (1. - p[0]); }

  /// Volume flux through a unit-width cross section.
  double flux() const { return G / (12. * nu); }
};

} // namespace dgflow
