#pragma once

// Legacy-VTK output of DG solution fields for visualization: every cell is
// subdivided into k^3 linear sub-hexes on its collocation lattice (the
// standard way to render high-order DG fields), with point data carried
// discontinuously per cell. Works for any scalar/vector fields living on
// the collocated spaces of a MatrixFree object.

#include <fstream>
#include <string>

#include "matrixfree/fe_evaluation.h"

namespace dgflow
{
template <typename Number>
class VTKWriter
{
public:
  /// @p space/@p quad must be a collocated pair (the lattice points come
  /// from the quadrature points).
  VTKWriter(const MatrixFree<Number> &mf, const unsigned int space,
            const unsigned int quad)
    : mf_(mf), space_(space), quad_(quad)
  {
    DGFLOW_ASSERT(mf.shape_info(space, quad).collocation,
                  "VTK output uses the collocation lattice");
  }

  /// Attaches a scalar field living on (space_s, quad_s); the values are
  /// evaluated at this writer's lattice points.
  void add_scalar(const std::string &name, const Vector<Number> &field,
                  const unsigned int space_s, const unsigned int quad_s)
  {
    scalars_.push_back({name, &field, space_s, quad_s});
  }

  /// Attaches a 3-component field on this writer's own space.
  void add_vector(const std::string &name, const Vector<Number> &field)
  {
    vectors_.push_back({name, &field});
  }

  void write(const std::string &filename) const
  {
    std::ofstream out(filename);
    DGFLOW_ASSERT(out.good(), "cannot open " << filename);

    const unsigned int n1 = mf_.degree(space_) + 1;
    const unsigned int points_per_cell = n1 * n1 * n1;
    const unsigned int subcells_per_cell = (n1 - 1) * (n1 - 1) * (n1 - 1);
    const std::size_t n_cells = mf_.n_cells();
    const std::size_t n_points = n_cells * points_per_cell;
    const std::size_t n_sub = n_cells * subcells_per_cell;

    out << "# vtk DataFile Version 3.0\ndgflow output\nASCII\n";
    out << "DATASET UNSTRUCTURED_GRID\n";
    out << "POINTS " << n_points << " double\n";

    FEEvaluation<Number, 1> phi(mf_, space_, quad_);
    for (unsigned int b = 0; b < mf_.n_cell_batches(); ++b)
    {
      phi.reinit(b);
      const auto &batch = mf_.cell_batch(b);
      for (unsigned int l = 0; l < batch.n_filled; ++l)
        for (unsigned int q = 0; q < points_per_cell; ++q)
        {
          const auto x = phi.quadrature_point(q);
          out << x[0][l] << ' ' << x[1][l] << ' ' << x[2][l] << '\n';
        }
    }

    out << "CELLS " << n_sub << ' ' << 9 * n_sub << '\n';
    for (std::size_t c = 0; c < n_cells; ++c)
    {
      const std::size_t base = c * points_per_cell;
      for (unsigned int k = 0; k + 1 < n1; ++k)
        for (unsigned int j = 0; j + 1 < n1; ++j)
          for (unsigned int i = 0; i + 1 < n1; ++i)
          {
            auto id = [&](unsigned int di, unsigned int dj, unsigned int dk) {
              return base + ((k + dk) * n1 + (j + dj)) * n1 + (i + di);
            };
            // VTK_HEXAHEDRON ordering
            out << "8 " << id(0, 0, 0) << ' ' << id(1, 0, 0) << ' '
                << id(1, 1, 0) << ' ' << id(0, 1, 0) << ' ' << id(0, 0, 1)
                << ' ' << id(1, 0, 1) << ' ' << id(1, 1, 1) << ' '
                << id(0, 1, 1) << '\n';
          }
    }
    out << "CELL_TYPES " << n_sub << '\n';
    for (std::size_t c = 0; c < n_sub; ++c)
      out << "12\n";

    out << "POINT_DATA " << n_points << '\n';
    for (const auto &v : vectors_)
    {
      out << "VECTORS " << v.name << " double\n";
      FEEvaluation<Number, 3> eval(mf_, space_, quad_);
      for (unsigned int b = 0; b < mf_.n_cell_batches(); ++b)
      {
        eval.reinit(b);
        eval.read_dof_values(*v.field);
        const auto &batch = mf_.cell_batch(b);
        const unsigned int npc = eval.dofs_per_component;
        for (unsigned int l = 0; l < batch.n_filled; ++l)
          for (unsigned int q = 0; q < points_per_cell; ++q)
            out << eval.begin_dof_values()[0 * npc + q][l] << ' '
                << eval.begin_dof_values()[1 * npc + q][l] << ' '
                << eval.begin_dof_values()[2 * npc + q][l] << '\n';
      }
    }
    for (const auto &s : scalars_)
    {
      out << "SCALARS " << s.name << " double 1\nLOOKUP_TABLE default\n";
      FEEvaluation<Number, 1> eval(mf_, s.space, s.quad);
      for (unsigned int b = 0; b < mf_.n_cell_batches(); ++b)
      {
        eval.reinit(b);
        eval.read_dof_values(*s.field);
        eval.evaluate(true, false);
        const auto &batch = mf_.cell_batch(b);
        for (unsigned int l = 0; l < batch.n_filled; ++l)
          for (unsigned int q = 0; q < eval.n_q_points; ++q)
            out << eval.get_value(q)[l] << '\n';
      }
    }
  }

private:
  struct ScalarField
  {
    std::string name;
    const Vector<Number> *field;
    unsigned int space, quad;
  };
  struct VectorField
  {
    std::string name;
    const Vector<Number> *field;
  };

  const MatrixFree<Number> &mf_;
  unsigned int space_, quad_;
  std::vector<ScalarField> scalars_;
  std::vector<VectorField> vectors_;
};

} // namespace dgflow
