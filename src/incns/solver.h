#pragma once

// The incompressible Navier-Stokes solver: high-order dual splitting scheme
// (paper Eqs. 1-5) with mixed-order DG spaces (velocity degree k, pressure
// degree k-1), adaptive CFL time stepping (Eq. 6), hybrid-multigrid
// preconditioned CG for the pressure Poisson equation and inverse-mass /
// Jacobi preconditioned CG for the projection, viscous and penalty steps.
// Initial guesses of all solves are extrapolated from previous time steps,
// enabling the relaxed solver tolerances used for the application runs
// (Section 5.3).
//
// Resilience: the pressure solve runs on a RecoveringSolver fallback ladder
// (hybrid-multigrid CG, then Jacobi CG with relaxed control); a failed or
// non-finite substep rejects the whole time step — the BDF state is rolled
// back, dt halved and the step retried a bounded number of times. The full
// time-integration state can be checkpointed to a versioned, checksummed
// binary file and restored for an exact (bit-for-bit) resume.

#include <limits>

#include "common/timer.h"
#include "instrumentation/profiler.h"
#include "instrumentation/solve_stats.h"
#include "matrixfree/field_tools.h"
#include "multigrid/hybrid_multigrid.h"
#include "operators/convective_operator.h"
#include "operators/divergence_gradient.h"
#include "operators/helmholtz_operator.h"
#include "operators/laplace_operator.h"
#include "operators/mass_operator.h"
#include "operators/penalty_operator.h"
#include "resilience/checkpoint.h"
#include "resilience/ckpt_scheduler.h"
#include "resilience/ckpt_store.h"
#include "resilience/recovering_solver.h"
#include "timeint/bdf.h"

namespace dgflow
{
template <typename Number = double>
class INSSolver
{
public:
  using VA = VectorizedArray<Number>;
  using VectorType = Vector<Number>;

  struct Parameters
  {
    unsigned int degree = 3;        ///< velocity degree k (pressure k-1)
    double viscosity = 1.7e-5;      ///< kinematic viscosity
    double cfl = 0.4;
    double fixed_dt = 0.;           ///< > 0 disables the CFL controller
    double max_dt = 1e30;
    double rel_tol_pressure = 1e-6;
    double rel_tol_viscous = 1e-6;
    double rel_tol_projection = 1e-6; ///< penalty step tolerance
    double penalty_zeta = 1.;
    /// SIP penalty safety factor of all operators (see MatrixFree)
    double penalty_safety = 4.;
    /// velocity-scale floor of the penalty parameters in units of h/dt
    /// (damps the spurious projection modes at startup/low flow)
    double penalty_floor = 0.05;
    /// include the extrapolated rotational term -nu curl(omega).n in the
    /// consistent pressure Neumann condition. Required for full temporal
    /// accuracy in viscosity-dominated flows; for convection-dominated
    /// application runs on coarse meshes the second-derivative feedback can
    /// destabilize the explicit extrapolation (cf. Fehn et al. 2017) and
    /// the term may be dropped at O(dt) boundary-local cost.
    bool rotational_pressure_bc = true;
    unsigned int geometry_degree = 2;
    typename HybridMultigrid<float>::Options multigrid;
    /// optional analytic velocity Neumann data on pressure boundaries
    VectorFunctionT velocity_neumann_data;
    /// bounded time-step rejection: a failed or non-finite substep rolls
    /// the BDF state back, halves dt and retries at most this many times
    unsigned int max_step_rejections = 5;
    /// deterministic fault hook (testing): when set and returning true for
    /// (step, attempt), a NaN is injected into the intermediate velocity
    /// after the convective step, exercising rejection/rollback end-to-end
    std::function<bool(unsigned long step, unsigned int attempt)>
      inject_substep_fault;
    /// distributed failure detection: when set, advance() opens every time
    /// step with an agreement boundary (resilience/distributed_recovery.h),
    /// so a rank lost during the previous step unwinds all survivors at the
    /// same step instead of hanging them in the next exchange; nullptr (the
    /// default) keeps serial time stepping unchanged
    RecoveryHooks *recovery = nullptr;
  };

  /// Per-step record: one SolveStats per implicit substep (produced by the
  /// instrumented solve_cg), plus the step's time, dt and wall time.
  struct StepInfo
  {
    double time = 0;     ///< time after the step
    double dt = 0;       ///< dt actually taken (halved on rejections)
    double wall_time = 0;
    SolveStats pressure; ///< pressure Poisson solve
    SolveStats viscous;  ///< viscous Helmholtz solve
    SolveStats penalty;  ///< divergence/continuity penalty solve
    /// number of rejected attempts before this step succeeded
    unsigned int rejections = 0;
    bool success = true;
    /// which substep failed on the last rejected attempt (diagnostics)
    std::string failed_stage;
  };

  void setup(const Mesh &mesh, const Geometry &geometry, FlowBoundaryMap bc,
             const Parameters &prm)
  {
    prm_ = prm;
    bc_ = std::move(bc);
    DGFLOW_ASSERT(prm.degree >= 2, "velocity degree must be at least 2");
    const unsigned int k = prm.degree;

    bool has_pressure_boundary = false;
    for (const auto &[id, b] : bc_)
      has_pressure_boundary |= (b.kind == FlowBoundary::Kind::pressure);
    DGFLOW_ASSERT(has_pressure_boundary,
                  "need at least one pressure (outflow) boundary; the pure "
                  "Dirichlet case with a pressure nullspace is not supported");

    typename MatrixFree<Number>::AdditionalData data;
    data.degrees = {k, k - 1};
    data.basis_types = {BasisType::lagrange_gauss, BasisType::lagrange_gauss};
    data.n_q_points_1d = {k + 1, k, k + 2};
    data.geometry_degree = prm.geometry_degree;
    data.penalty_safety = prm.penalty_safety;
    mf_.reinit(mesh, geometry, data);

    convective_.reinit(mf_, u_space, quad_over, bc_);
    divergence_.reinit(mf_, u_space, p_space, quad_u, bc_);
    gradient_.reinit(mf_, u_space, p_space, quad_u, bc_);
    helmholtz_.reinit(mf_, u_space, quad_u, bc_, Number(prm.viscosity));
    penalty_.reinit(mf_, u_space, quad_u, Number(prm.penalty_zeta));
    mass_u_.reinit(mf_, u_space, quad_u);
    laplace_.reinit(mf_, p_space, quad_p, pressure_bc_view(bc_));

    auto mg_opts = prm.multigrid;
    mg_opts.geometry_degree = prm.geometry_degree;
    mg_opts.penalty_safety = prm.penalty_safety;
    pressure_mg_.setup(mesh, geometry, k - 1, pressure_bc_view(bc_), mg_opts);
    {
      // Jacobi fallback for meshes whose worst cells defeat the smoother
      VectorType diag_p;
      laplace_.compute_diagonal(diag_p);
      pressure_jacobi_.reinit(diag_p);
    }

    // pressure fallback ladder: the fast hybrid-multigrid CG is demoted
    // permanently if it fails (a diverging V-cycle on a pathological mesh
    // stays broken); the robust Jacobi CG with relaxed control backs it up
    pressure_solver_.clear();
    pressure_solver_.add_rung(
      "mg_cg",
      [this](VectorType &x, const VectorType &b) {
        SolverControl control;
        control.max_iterations = 1000;
        control.rel_tol = prm_.rel_tol_pressure;
        return solve_cg(laplace_, x, b, pressure_mg_, control);
      },
      /*demote_on_failure=*/true);
    pressure_solver_.add_rung(
      "jacobi_cg", [this](VectorType &x, const VectorType &b) {
        SolverControl control;
        control.max_iterations = 100000;
        control.rel_tol = prm_.rel_tol_pressure;
        // Jacobi CG converges slowly and its residual is not monotone;
        // give the plateau detector a generous window
        control.stagnation_window = 5000;
        return solve_cg(laplace_, x, b, pressure_jacobi_, control);
      });

    // viscous diagonal is affine in the mass factor: precompute both parts
    helmholtz_.set_mass_factor(Number(0));
    helmholtz_.compute_diagonal(diag_viscous_);
    diag_mass_.reinit(mf_.n_dofs(u_space, 3));
    {
      VectorType ones(mf_.n_dofs(u_space, 3));
      ones = Number(1);
      mass_u_.vmult(diag_mass_, ones);
    }

    u_.reinit(mf_.n_dofs(u_space, 3));
    u_old_.reinit(u_.size());
    p_.reinit(mf_.n_dofs(p_space, 1));
    p_old_.reinit(p_.size());
    conv_.reinit(u_.size());
    conv_old_.reinit(u_.size());
    time_ = 0;
    dt_prev_ = 0;
    step_count_ = 0;
  }

  /// Sets initial velocity (and optional pressure) by nodal interpolation.
  void set_initial_condition(const VectorFunction &u0,
                             const ScalarFunction &p0 = {})
  {
    interpolate_vector(mf_, u_space, quad_u, u0, u_);
    if (p0)
      interpolate(mf_, p_space, quad_p, p0, p_);
    u_old_ = u_;
    p_old_ = p_;
  }

  double time() const { return time_; }
  const VectorType &velocity() const { return u_; }
  const VectorType &pressure() const { return p_; }
  const MatrixFree<Number> &matrix_free() const { return mf_; }

  static constexpr unsigned int u_space = 0, p_space = 1;
  static constexpr unsigned int quad_u = 0, quad_p = 1, quad_over = 2;

  /// CFL-admissible time step from the current velocity field (Eq. 6).
  double compute_time_step() const
  {
    if (prm_.fixed_dt > 0)
      return prm_.fixed_dt;
    double min_h_over_u = 1e300;
    FEEvaluation<Number, 3> phi(mf_, u_space, quad_u);
    for (unsigned int b = 0; b < mf_.n_cell_batches(); ++b)
    {
      phi.reinit(b);
      phi.read_dof_values(u_);
      // collocated: dof values are the point values
      VA max_u(Number(0));
      for (unsigned int q = 0; q < phi.n_q_points; ++q)
      {
        Tensor1<VA> v;
        for (unsigned int c = 0; c < dim; ++c)
          v[c] = phi.begin_dof_values()[c * phi.dofs_per_component + q];
        max_u = max(max_u, sqrt(dot(v, v)));
      }
      const VA h = mf_.cell_width()[b];
      for (unsigned int l = 0; l < phi.n_filled_lanes(); ++l)
      {
        const double hu =
          double(h[l]) / std::max(1e-12, double(max_u[l]));
        min_h_over_u = std::min(min_h_over_u, hu);
      }
    }
    const TimeStepControl control(prm_.cfl, prm_.degree);
    return std::min(prm_.max_dt, control.next(min_h_over_u, dt_prev_));
  }

  /// Advances one time step of the dual splitting scheme. A failed substep
  /// (diverged solve, exhausted pressure ladder or non-finite state) rejects
  /// the attempt: the BDF state is rolled back, dt is halved and the step is
  /// retried, at most Parameters::max_step_rejections times before the
  /// (recoverable) exception of the final rejection propagates.
  StepInfo advance()
  {
    DGFLOW_PROF_SCOPE("ins_step");
    DGFLOW_PROF_COUNT("ins_steps", 1);
    if (prm_.recovery)
      prm_.recovery->at_iteration_boundary(true);
    Timer total;
    double dt = compute_time_step();
    DGFLOW_ASSERT(dt > 0, "vanishing time step");

    const StateSnapshot snapshot = save_state();
    StepInfo info;
    for (unsigned int attempt = 0;; ++attempt)
    {
      info = try_step(dt, attempt);
      info.rejections = attempt;
      if (info.success)
        break;
      DGFLOW_PROF_COUNT("ins_step_rejections", 1);
      DGFLOW_ASSERT(attempt < prm_.max_step_rejections,
                    "time step at t = "
                      << snapshot.time << " rejected " << (attempt + 1)
                      << " times (last failure: " << info.failed_stage
                      << "); giving up at dt = " << dt);
      restore_state(snapshot);
      dt *= 0.5;
    }
    info.wall_time = total.seconds();
    maybe_checkpoint();
    return info;
  }

private:
  /// One attempt at a step of size dt. Returns info.success == false (with
  /// failed_stage set) instead of throwing/aborting on solver failure, so
  /// advance() can roll back and retry with a smaller dt.
  StepInfo try_step(const double dt, const unsigned int attempt)
  {
    StepInfo info;
    const double t_new = time_ + dt;
    const BDFCoefficients bdf =
      step_count_ == 0 ? BDFCoefficients::bdf1()
                       : BDFCoefficients::bdf2(dt / dt_prev_);

    // (1) explicit convective step
    {
      DGFLOW_PROF_SCOPE("convective_step");
      convective_.apply(conv_, u_, time_);
      // w = M^{-1} (-beta0 C(u^n) - beta1 C(u^{n-1}))
      rhs_u_.reinit(u_.size(), true);
      rhs_u_.equ(Number(-bdf.beta[0]), conv_);
      if (step_count_ > 0)
        rhs_u_.add(Number(-bdf.beta[1]), conv_old_);
      mass_u_.apply_inverse(work_u_, rhs_u_);
      // u_hat = (alpha0 u^n + alpha1 u^{n-1} + dt w) / gamma0
      u_hat_.reinit(u_.size(), true);
      u_hat_.equ(Number(bdf.alpha[0] / bdf.gamma0), u_);
      if (step_count_ > 0)
        u_hat_.add(Number(bdf.alpha[1] / bdf.gamma0), u_old_);
      u_hat_.add(Number(dt / bdf.gamma0), work_u_);
    }

    if (prm_.inject_substep_fault &&
        prm_.inject_substep_fault(step_count_, attempt))
      u_hat_[0] = std::numeric_limits<Number>::quiet_NaN();

    // (2) pressure Poisson equation
    {
      DGFLOW_PROF_SCOPE("pressure");
      if (prm_.rotational_pressure_bc)
        compute_vorticity(vort_, u_);
      divergence_.apply(rhs_p_, u_hat_, t_new);
      rhs_p_.scale(Number(-bdf.gamma0 / dt));
      add_pressure_boundary_rhs(rhs_p_, t_new, bdf);

      // extrapolated initial guess
      work_p_.reinit(p_.size(), true);
      work_p_.equ(Number(bdf.beta[0]), p_);
      if (step_count_ > 0)
        work_p_.add(Number(bdf.beta[1]), p_old_);
      p_old_ = p_;
      p_.swap(work_p_);

      // a non-finite right-hand side is the convective step's fault, not the
      // pressure solvers': reject the step before it can demote the
      // multigrid rung of the fallback ladder
      if (!std::isfinite(double(rhs_p_.l2_norm())))
      {
        info.success = false;
        info.failed_stage = "pressure_rhs_non_finite";
        return info;
      }

      const SolveStats result = pressure_solver_.solve(p_, rhs_p_);
      info.pressure = result;
      DGFLOW_PROF_COUNT("ins_pressure_iterations", result.iterations);
      if (!result.converged)
      {
        info.success = false;
        info.failed_stage =
          std::string("pressure (") + to_string(result.failure) +
          ", ladder rung: " + pressure_solver_.last_rung() + ")";
        return info;
      }
    }

    // (3) projection
    {
      DGFLOW_PROF_SCOPE("projection");
      gradient_.apply(rhs_u_, p_, t_new);
      mass_u_.apply_inverse(work_u_, rhs_u_);
      u_hat_.add(Number(-dt / bdf.gamma0), work_u_);
    }

    // (4) viscous step
    {
      DGFLOW_PROF_SCOPE("viscous");
      const Number mass_factor = Number(bdf.gamma0 / dt);
      helmholtz_.set_mass_factor(mass_factor);
      mass_u_.vmult(rhs_u_, u_hat_);
      rhs_u_.scale(mass_factor);
      helmholtz_.add_boundary_rhs(rhs_u_, t_new, prm_.velocity_neumann_data);

      viscous_jacobi_.reinit(combined_viscous_diagonal(mass_factor));
      work_u_ = u_hat_; // initial guess
      SolverControl control;
      control.max_iterations = 1000;
      control.rel_tol = prm_.rel_tol_viscous;
      const auto result =
        solve_cg(helmholtz_, work_u_, rhs_u_, viscous_jacobi_, control);
      info.viscous = result;
      DGFLOW_PROF_COUNT("ins_viscous_iterations", result.iterations);
      if (!result.converged)
      {
        info.success = false;
        info.failed_stage =
          std::string("viscous (") + to_string(result.failure) + ")";
        return info;
      }
    }

    // (5) divergence/continuity penalty step
    {
      DGFLOW_PROF_SCOPE("penalty");
      penalty_.update(work_u_, Number(dt), Number(prm_.penalty_floor));
      mass_u_.vmult(rhs_u_, work_u_);
      u_old_.swap(u_);
      u_ = work_u_; // initial guess; also becomes u^{n+1}
      SolverControl control;
      control.max_iterations = 1000;
      control.rel_tol = prm_.rel_tol_projection;
      InverseMassPreconditioner precond{&mass_u_};
      const auto result = solve_cg(penalty_, u_, rhs_u_, precond, control);
      info.penalty = result;
      DGFLOW_PROF_COUNT("ins_penalty_iterations", result.iterations);
      if (!result.converged)
      {
        info.success = false;
        info.failed_stage =
          std::string("penalty (") + to_string(result.failure) + ")";
        return info;
      }
    }

    if (!std::isfinite(double(u_.l2_norm())) ||
        !std::isfinite(double(p_.l2_norm())))
    {
      info.success = false;
      info.failed_stage = "non_finite_state";
      return info;
    }

    conv_old_.swap(conv_);
    vort_old_.swap(vort_);
    dt_prev_ = dt;
    time_ = t_new;
    ++step_count_;
    info.time = time_;
    info.dt = dt;
    return info;
  }

public:
  /// Writes the complete time-integration state (bit-for-bit) into an open
  /// checkpoint writer. setup() and set_initial_condition() configuration is
  /// not stored: a restart re-runs the deterministic setup, then deserializes.
  void serialize(resilience::CheckpointWriter &writer) const
  {
    writer.write_u64(step_count_);
    writer.write_double(time_);
    writer.write_double(dt_prev_);
    writer.write_vector(u_);
    writer.write_vector(u_old_);
    writer.write_vector(p_);
    writer.write_vector(p_old_);
    writer.write_vector(conv_);
    writer.write_vector(conv_old_);
    writer.write_vector(vort_);
    writer.write_vector(vort_old_);
  }

  /// Restores the state written by serialize(). Must be called on a solver
  /// that has been setup() with the same mesh/parameters; vector sizes are
  /// validated against the discretization.
  void deserialize(resilience::CheckpointReader &reader)
  {
    step_count_ = reader.read_u64();
    time_ = reader.read_double();
    dt_prev_ = reader.read_double();
    reader.read_vector(u_);
    reader.read_vector(u_old_);
    reader.read_vector(p_);
    reader.read_vector(p_old_);
    reader.read_vector(conv_);
    reader.read_vector(conv_old_);
    reader.read_vector(vort_);
    reader.read_vector(vort_old_);
    DGFLOW_ASSERT(u_.size() == mf_.n_dofs(u_space, 3),
                  "checkpoint velocity size "
                    << u_.size() << " does not match the discretization ("
                    << mf_.n_dofs(u_space, 3)
                    << " dofs): mesh or degree changed between runs");
    DGFLOW_ASSERT(p_.size() == mf_.n_dofs(p_space, 1),
                  "checkpoint pressure size "
                    << p_.size() << " does not match the discretization ("
                    << mf_.n_dofs(p_space, 1) << " dofs)");
  }

  /// Convenience wrapper: atomically writes a standalone checkpoint file.
  void save_checkpoint(const std::string &path) const
  {
    resilience::CheckpointWriter writer(path);
    serialize(writer);
    writer.close();
  }

  /// Convenience wrapper: validates and restores a standalone checkpoint.
  void load_checkpoint(const std::string &path)
  {
    resilience::CheckpointReader reader(path);
    deserialize(reader);
  }

  /// Attaches asynchronous multi-generation checkpointing: advance() then
  /// snapshots the solver state whenever @p scheduler says a checkpoint is
  /// due (every successful step when @p scheduler is null — the cadence
  /// tests use) and hands the encoded image to @p checkpointer 's
  /// background writer, so the solve never blocks on disk. Both pointers
  /// are borrowed and must outlive the solver's stepping; pass nullptr to
  /// detach.
  void set_checkpointing(resilience::AsyncCheckpointer *checkpointer,
                         resilience::CheckpointScheduler *scheduler = nullptr)
  {
    checkpointer_ = checkpointer;
    ckpt_scheduler_ = scheduler;
    ckpt_clock_.restart();
  }

  /// Takes a checkpoint if one is attached and due. A failed checkpoint
  /// *write* must never kill a healthy solve: failures surface only in
  /// last_checkpoint_error() / the ckpt_write_failures counter, and the
  /// previous committed generation remains the restart point.
  void maybe_checkpoint()
  {
    if (checkpointer_ == nullptr)
      return;
    const double now = ckpt_clock_.seconds();
    if (ckpt_scheduler_ != nullptr && !ckpt_scheduler_->should_checkpoint(now))
    {
      ckpt_scheduler_->observe(now);
      return;
    }
    checkpoint_now();
  }

  /// Unconditionally snapshots and submits one checkpoint generation. The
  /// measured cost is the solver-visible stall only — serialize + encode +
  /// any back-pressure wait — which is exactly the δ the scheduler's Daly
  /// formula wants; the disk write happens on the background thread.
  void checkpoint_now()
  {
    DGFLOW_ASSERT(checkpointer_ != nullptr, "no AsyncCheckpointer attached");
    Timer stall;
    try
    {
      resilience::CheckpointWriter writer("state.ckpt"); // encode-only: no disk
      serialize(writer);
      std::vector<resilience::AsyncCheckpointer::NamedImage> images;
      images.push_back({"state.ckpt", writer.encode()});
      checkpointer_->submit(std::move(images));
      DGFLOW_PROF_COUNT("ckpt_writes", 1);
    }
    catch (const resilience::CheckpointError &e)
    {
      last_checkpoint_error_ = e.what();
      DGFLOW_PROF_COUNT("ckpt_write_failures", 1);
    }
    // background write failures land in the checkpointer's status; mirror
    // the most recent one so diagnostics need only ask the solver
    const auto status = checkpointer_->status();
    if (status.failed > 0)
      last_checkpoint_error_ = status.last_error;
    const double cost = stall.seconds();
    DGFLOW_PROF_GAUGE("ckpt_stall_seconds", cost);
    if (ckpt_scheduler_ != nullptr)
    {
      ckpt_scheduler_->record_checkpoint_cost(cost);
      ckpt_scheduler_->checkpoint_taken(ckpt_clock_.seconds());
    }
  }

  /// Restores solver state from the newest checkpoint generation whose
  /// files all verify, falling back generation by generation (the recovery
  /// scan); false when no generation survives verification. Drains the
  /// background writer first so a write in flight cannot race the scan.
  bool restore_latest()
  {
    DGFLOW_ASSERT(checkpointer_ != nullptr, "no AsyncCheckpointer attached");
    checkpointer_->drain();
    const auto generation =
      checkpointer_->store().newest_valid_generation();
    if (!generation)
      return false;
    resilience::CheckpointReader reader(
      checkpointer_->store().generation_directory(*generation) +
      "/state.ckpt");
    deserialize(reader);
    return true;
  }

  /// what() of the most recent failed checkpoint write ("" if none failed).
  const std::string &last_checkpoint_error() const
  {
    return last_checkpoint_error_;
  }

  /// The pressure fallback ladder (recovery counters for diagnostics/tests).
  const resilience::RecoveringSolver<Number> &pressure_solver() const
  {
    return pressure_solver_;
  }

  /// Volume flux through all boundary faces with the given id (outward
  /// positive).
  double boundary_flux(const unsigned int boundary_id) const
  {
    FEFaceEvaluation<Number, 3> phi(mf_, u_space, quad_u, true);
    double flux = 0;
    for (unsigned int b = mf_.n_inner_face_batches(); b < mf_.n_face_batches();
         ++b)
    {
      phi.reinit(b);
      if (phi.boundary_id() != boundary_id)
        continue;
      phi.read_dof_values(u_);
      phi.evaluate(true, false);
      for (unsigned int q = 0; q < phi.n_q_points; ++q)
      {
        const VA un = dot(phi.get_value(q), phi.get_normal_vector(q));
        const VA jxw = phi.JxW(q);
        for (unsigned int l = 0; l < phi.n_filled_lanes(); ++l)
          flux += double(un[l]) * double(jxw[l]);
      }
    }
    return flux;
  }

  /// L2 norm of the velocity divergence (diagnostic for the penalty step).
  double divergence_l2() const
  {
    FEEvaluation<Number, 3> phi(mf_, u_space, quad_u);
    double err = 0;
    for (unsigned int b = 0; b < mf_.n_cell_batches(); ++b)
    {
      phi.reinit(b);
      phi.read_dof_values(u_);
      phi.evaluate(false, true);
      for (unsigned int q = 0; q < phi.n_q_points; ++q)
      {
        const VA d = phi.get_divergence(q);
        const VA jxw = phi.JxW(q);
        for (unsigned int l = 0; l < phi.n_filled_lanes(); ++l)
          err += double(d[l]) * double(d[l]) * double(jxw[l]);
      }
    }
    return std::sqrt(err);
  }

private:
  /// Everything try_step may mutate before committing the step, so a
  /// rejected attempt can be rolled back exactly.
  struct StateSnapshot
  {
    VectorType u, u_old, p, p_old, conv, conv_old, vort, vort_old;
    double time, dt_prev;
    unsigned long step_count;
  };

  StateSnapshot save_state() const
  {
    return StateSnapshot{u_,    u_old_,    p_,    p_old_,   conv_, conv_old_,
                         vort_, vort_old_, time_, dt_prev_, step_count_};
  }

  void restore_state(const StateSnapshot &s)
  {
    u_ = s.u;
    u_old_ = s.u_old;
    p_ = s.p;
    p_old_ = s.p_old;
    conv_ = s.conv;
    conv_old_ = s.conv_old;
    vort_ = s.vort;
    vort_old_ = s.vort_old;
    time_ = s.time;
    dt_prev_ = s.dt_prev;
    step_count_ = s.step_count;
  }

  struct InverseMassPreconditioner
  {
    const MassOperator<Number, 3> *mass;
    void vmult(VectorType &dst, const VectorType &src) const
    {
      mass->apply_inverse(dst, src);
    }
  };

  Vector<Number> combined_viscous_diagonal(const Number mass_factor) const
  {
    Vector<Number> diag(diag_viscous_.size());
    for (std::size_t i = 0; i < diag.size(); ++i)
      diag[i] = mass_factor * diag_mass_[i] + diag_viscous_[i];
    return diag;
  }

  /// Projects the vorticity curl(u) onto the velocity space (collocated
  /// nodal evaluation), used by the consistent pressure Neumann condition.
  void compute_vorticity(VectorType &w, const VectorType &u) const
  {
    w.reinit(mf_.n_dofs(u_space, 3), true);
    FEEvaluation<Number, 3> phi(mf_, u_space, quad_u);
    const unsigned int npc = phi.dofs_per_component;
    for (unsigned int b = 0; b < mf_.n_cell_batches(); ++b)
    {
      phi.reinit(b);
      phi.read_dof_values(u);
      phi.evaluate(false, true);
      for (unsigned int q = 0; q < phi.n_q_points; ++q)
      {
        const Tensor2<VA> g = phi.get_gradient(q);
        phi.begin_dof_values()[0 * npc + q] = g[2][1] - g[1][2];
        phi.begin_dof_values()[1 * npc + q] = g[0][2] - g[2][0];
        phi.begin_dof_values()[2 * npc + q] = g[1][0] - g[0][1];
      }
      phi.set_dof_values(w);
    }
  }

  /// Pressure boundary contributions of Eq. (2): inhomogeneous Dirichlet
  /// data g_p on pressure boundaries and the consistent Neumann data
  /// h = -(dg_u/dt + extrapolated [(u.grad)u + nu curl(curl u)]).n on
  /// velocity boundaries (Karniadakis et al. 1991 / Fehn et al. 2017).
  void add_pressure_boundary_rhs(VectorType &rhs, const double t_new,
                                 const BDFCoefficients &bdf)
  {
    FEFaceEvaluation<Number, 1> q_test(mf_, p_space, quad_p, true);
    FEFaceEvaluation<Number, 3> w_now(mf_, u_space, quad_p, true);
    FEFaceEvaluation<Number, 3> w_prev(mf_, u_space, quad_p, true);

    for (unsigned int b = mf_.n_inner_face_batches(); b < mf_.n_face_batches();
         ++b)
    {
      q_test.reinit(b);
      const FlowBoundary &bdata = bc_.at(q_test.boundary_id());

      if (bdata.kind == FlowBoundary::Kind::pressure)
      {
        // SIP Dirichlet data terms for g_p(t_new)
        const VA sigma = q_test.penalty_parameter();
        for (unsigned int q = 0; q < q_test.n_q_points; ++q)
        {
          const auto xq = q_test.quadrature_point(q);
          VA g;
          for (unsigned int l = 0; l < VA::width; ++l)
            g[l] = Number(
              bdata.pressure(Point(xq[0][l], xq[1][l], xq[2][l]), t_new));
          q_test.submit_value(Number(2) * sigma * g, q);
          q_test.submit_normal_derivative(-g, q);
        }
        q_test.integrate(true, true);
        q_test.distribute_local_to_global(rhs);
      }
      else
      {
        // consistent pressure Neumann data (du_g/dt + extrapolated
        // convective term; the viscous curl-curl contribution is omitted,
        // see DESIGN.md)
        const bool use_rot = prm_.rotational_pressure_bc;
        const bool have_old =
          use_rot && step_count_ > 0 && bdf.beta[1] != 0.;
        if (use_rot)
        {
          w_now.reinit(b);
          w_now.read_dof_values(vort_);
          w_now.evaluate(false, true);
        }
        if (have_old)
        {
          w_prev.reinit(b);
          w_prev.read_dof_values(vort_old_);
          w_prev.evaluate(false, true);
        }
        const Number nu = Number(prm_.viscosity);
        // The consistent Neumann condition dp/dn = -(du_g/dt + (u.grad)u +
        // nu curl(omega)).n interacts with the divergence term D(u_hat)
        // whose wall trace is replaced by g(t^{n+1}): the BDF combination
        // (alpha_i g - gamma0 g(t^{n+1}))/dt reproduces -du_g/dt.n to the
        // scheme's order, and the convective flux cancels against the
        // convective part of u_hat. What remains to be supplied explicitly
        // is only the extrapolated rotational term -nu curl(omega).n.
        auto viscous_curl = [nu](const FEFaceEvaluation<Number, 3> &w,
                                 const unsigned int q) {
          const Tensor2<VA> wg = w.get_gradient(q);
          return Tensor1<VA>(nu * (wg[2][1] - wg[1][2]),
                             nu * (wg[0][2] - wg[2][0]),
                             nu * (wg[1][0] - wg[0][1]));
        };
        for (unsigned int q = 0; q < q_test.n_q_points; ++q)
        {
          const Tensor1<VA> n = q_test.get_normal_vector(q);
          Tensor1<VA> h;
          if (use_rot)
            h = Number(bdf.beta[0]) * viscous_curl(w_now, q);
          if (have_old)
            h += Number(bdf.beta[1]) * viscous_curl(w_prev, q);
          q_test.submit_value(-dot(h, n), q);
          q_test.submit_normal_derivative(VA(Number(0)), q);
        }
        q_test.integrate(true, true);
        q_test.distribute_local_to_global(rhs);
      }
    }
  }

  Parameters prm_;
  FlowBoundaryMap bc_;
  MatrixFree<Number> mf_;

  ConvectiveOperator<Number> convective_;
  DivergenceOperator<Number> divergence_;
  GradientOperator<Number> gradient_;
  HelmholtzOperator<Number> helmholtz_;
  PenaltyOperator<Number> penalty_;
  MassOperator<Number, 3> mass_u_;
  LaplaceOperator<Number> laplace_;
  HybridMultigrid<float> pressure_mg_;
  PreconditionJacobi<Number> pressure_jacobi_;
  PreconditionJacobi<Number> viscous_jacobi_;

  VectorType u_, u_old_, p_, p_old_;
  VectorType conv_, conv_old_;
  VectorType vort_, vort_old_;
  VectorType u_hat_, rhs_u_, rhs_p_, work_u_, work_p_;
  VectorType diag_viscous_, diag_mass_;

  resilience::RecoveringSolver<Number> pressure_solver_;

  double time_ = 0, dt_prev_ = 0;
  unsigned long step_count_ = 0;

  // asynchronous checkpointing (set_checkpointing; both borrowed)
  resilience::AsyncCheckpointer *checkpointer_ = nullptr;
  resilience::CheckpointScheduler *ckpt_scheduler_ = nullptr;
  Timer ckpt_clock_; ///< the scheduler's notion of elapsed run time
  std::string last_checkpoint_error_;
};

} // namespace dgflow
