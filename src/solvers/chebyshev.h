#pragma once

// Chebyshev smoother with point-Jacobi inner preconditioning (paper Section
// 3.4): polynomial degree three, i.e. three operator applications per
// pre-/post-smoothing sweep, built on fast matrix-free mat-vecs. The largest
// eigenvalue of D^{-1} A is estimated by power iteration at setup; the
// smoothing range targets the upper part of the spectrum as usual for
// multigrid smoothers.
//
// Templated on the vector type (vector-space concept): the same smoother
// runs on the serial Vector and on vmpi::DistributedVector, where the
// operator vmult performs the ghost exchange and every dot is an allreduce.
// The eigenvalue-estimation seed vector is filled from a hash of the global
// element index, so serial and distributed runs of the same operator
// estimate identical spectra regardless of the partition.
//
// Failure handling: eigenvalue-estimation breakdown or non-finite input no
// longer aborts. reinit() records a failed SolveStats (setup_stats()) and
// falls back to conservative eigenvalue bounds so the V-cycle stays usable;
// smooth_checked() additionally detects a non-finite smoothing result, which
// the outer CG then surfaces as a non_finite solve failure.

#include <cmath>
#include <cstdint>

#include "common/vector.h"
#include "solvers/cg.h"

namespace dgflow
{
/// Smoother configuration (shared across operator types).
struct ChebyshevData
{
  unsigned int degree = 3;
  double smoothing_range = 20.; ///< lambda_max / lambda_min of the smoothed band
  double max_eigenvalue_safety = 1.2;
  unsigned int power_iterations = 20;
  /// fold the residual/direction/solution updates into the operator's
  /// hooked cell loop (contract v2); ignored for operators without hooks.
  /// The fused sweep is bitwise identical to the classic one.
  bool fuse_loops = true;
  /// distributed failure detection: when set, every smoothing sweep opens
  /// with an agreement boundary so a dead peer is detected before the
  /// sweep's ghost exchanges turn into timeouts on the survivors; nullptr
  /// (the default) keeps serial smoothing unchanged
  RecoveryHooks *recovery = nullptr;
  /// ABFT sweep guard: scan every sweep's result for non-finite entries and
  /// against an energy bound (see abft_energy_factor); a violating sweep is
  /// discarded — x restored to its input (zeroed for the zero-guess sweep)
  /// — so corruption in smoother scratch surfaces as one weaker smoothing
  /// application plus the abft_smoother_repairs counter instead of NaN
  /// propagating through the V-cycle. The scan is local (no collective) and
  /// off by default.
  bool abft_check = false;
  /// energy bound of the sweep result: |x|_inf must not exceed
  /// abft_energy_factor * (|x_in|_inf + |D^{-1} b|_inf / lambda_min); the
  /// default is loose enough for any healthy Chebyshev polynomial and tight
  /// enough to catch exponent-range bit flips
  double abft_energy_factor = 1e3;
};

namespace internal
{
/// Deterministic pseudo-random value in [-1, 1) from a global index
/// (splitmix64 finalizer). Used to seed the Lanczos eigenvalue estimation
/// identically on every rank layout.
inline double hash_to_unit_interval(std::uint64_t x)
{
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x = x ^ (x >> 31);
  return 2. * (double(x >> 11) * 0x1.0p-53) - 1.;
}
} // namespace internal

template <typename Operator, typename VectorType>
class ChebyshevSmoother
{
public:
  using Number = typename VectorType::value_type;
  using AdditionalData = ChebyshevData;

  void reinit(const Operator &op, const VectorType &diagonal,
              const AdditionalData &data = AdditionalData())
  {
    initialize(op, diagonal, data);
    if (setup_stats_.failure == SolveFailure::none)
      estimate_eigenvalues();
    else
      use_fallback_eigenvalues();
  }

  /// reinit() with externally supplied eigenvalue bounds instead of the
  /// Lanczos estimation: lambda_max must already include any safety factor
  /// (it is used verbatim; lambda_min = lambda_max / smoothing_range).
  /// Distributed multigrid levels use this to adopt the bounds estimated by
  /// the replicated serial setup, which makes the distributed V-cycle
  /// iterate identically to the serial one.
  void reinit_with_bounds(const Operator &op, const VectorType &diagonal,
                          const double lambda_max,
                          const AdditionalData &data = AdditionalData())
  {
    initialize(op, diagonal, data);
    DGFLOW_ASSERT(std::isfinite(lambda_max) && lambda_max > 0,
                  "invalid eigenvalue bound " << lambda_max);
    lambda_max_ = lambda_max;
    lambda_min_ = lambda_max_ / data_.smoothing_range;
    setup_stats_.converged = true;
  }

  double max_eigenvalue() const { return lambda_max_; }

  /// Statistics of the setup-time eigenvalue estimation: converged = true
  /// when the Lanczos process produced a usable bound, else the failure
  /// reason and the conservative fallback bounds in use.
  const SolveStats &setup_stats() const { return setup_stats_; }

  /// One smoothing sweep: improves x for A x = b, starting from the given x
  /// (pass x = 0 for the pre-smoother on the residual equation).
  ///
  /// With a contract-v2 hooked operator and fuse_loops on, every
  /// residual/direction/solution update rides the operator's post hooks:
  /// each cell batch's slice of r = D^{-1}(b - Ax), d and x is updated the
  /// moment the traversal is done with it, while it is still in cache —
  /// the whole sweep makes no separate BLAS-1 passes. The per-element
  /// expressions are the classic ones, so the result is bitwise identical.
  void smooth(VectorType &x, const VectorType &b,
              const bool zero_initial_guess) const
  {
    if (data_.recovery)
      data_.recovery->at_iteration_boundary(true);
    DGFLOW_PROF_COUNT("chebyshev_sweeps", 1);
    DGFLOW_PROF_COUNT("chebyshev_iterations", data_.degree);
    const double theta = 0.5 * (lambda_max_ + lambda_min_);
    const double delta = 0.5 * (lambda_max_ - lambda_min_);

    r_.reinit_like(x, true);
    d_.reinit_like(x, true);

    if (data_.abft_check && !zero_initial_guess)
    {
      abft_in_.reinit_like(x, true);
      abft_in_.equ(Number(1), x);
    }

    if constexpr (HookedOperatorFor<Operator, VectorType>)
      if (data_.fuse_loops)
      {
        smooth_fused(x, b, zero_initial_guess, theta, delta);
        if (data_.abft_check)
          abft_check_result(x, b, zero_initial_guess);
        return;
      }

    // r = D^{-1} (b - A x)
    if (zero_initial_guess)
    {
      r_ = b;
      x = Number(0);
    }
    else
    {
      op_->vmult(r_, x);
      r_.sadd(Number(-1), Number(1), b);
    }
    r_.scale_pointwise(inv_diag_);

    // first step: d = r / theta
    d_.equ(Number(1. / theta), r_);
    x.add(Number(1), d_);

    const double sigma1 = theta / delta;
    double rho_old = 1. / sigma1;
    for (unsigned int k = 1; k < data_.degree; ++k)
    {
      op_->vmult(r_, x);
      r_.sadd(Number(-1), Number(1), b);
      r_.scale_pointwise(inv_diag_);
      const double rho = 1. / (2. * sigma1 - rho_old);
      // d = rho*rho_old * d + 2*rho/delta * r
      d_.sadd(Number(rho * rho_old), Number(2. * rho / delta), r_);
      x.add(Number(1), d_);
      rho_old = rho;
    }
    if (data_.abft_check)
      abft_check_result(x, b, zero_initial_guess);
  }

  /// Sweeps discarded by the ABFT guard since reinit (abft_check on).
  unsigned long long abft_repairs() const { return abft_repairs_; }

  /// smooth() plus a finiteness check of the result, reported as a
  /// SolveStats (failure = non_finite when the sweep produced NaN/Inf).
  /// Off the V-cycle hot path; used by diagnostics and recovery logic.
  SolveStats smooth_checked(VectorType &x, const VectorType &b,
                            const bool zero_initial_guess) const
  {
    SolveStats stats;
    stats.iterations = data_.degree;
    smooth(x, b, zero_initial_guess);
    const double norm = double(x.l2_norm());
    stats.final_residual = norm;
    if (!std::isfinite(norm))
    {
      stats.failure = SolveFailure::non_finite;
      DGFLOW_PROF_COUNT("chebyshev_failures", 1);
    }
    else
      stats.converged = true;
    return stats;
  }

  /// Preconditioner interface (zero initial guess).
  void vmult(VectorType &dst, const VectorType &src) const
  {
    dst.reinit_like(src, true);
    smooth(dst, src, true);
  }

private:
  /// The fused sweep: called only for hooked operators. Each vmult's post
  /// hook performs the full update chain on the completed DoF range; the
  /// chain mutates both the vmult's dst (r_) and src (x), which the
  /// contract permits once a range's last face is processed. The Chebyshev
  /// coefficients never depend on a reduction, so every scalar is known
  /// before its vmult — the sweep has no separate vector passes at all.
  void smooth_fused(VectorType &x, const VectorType &b,
                    const bool zero_initial_guess, const double theta,
                    const double delta) const
  {
    constexpr bool distributed = is_distributed_vector_v<VectorType>;
    const Number theta_inv = Number(1. / theta);

    const auto fused_step = [&](const Number coef_d, const Number coef_r,
                                const bool first) {
      op_->vmult(r_, x, NoRangeHook(),
                 [&, coef_d, coef_r, first](const std::size_t r0,
                                            const std::size_t r1) {
                   Number *DGFLOW_RESTRICT rd = r_.data();
                   Number *DGFLOW_RESTRICT dd = d_.data();
                   Number *DGFLOW_RESTRICT xd = x.data();
                   const Number *DGFLOW_RESTRICT bd = b.data();
                   const Number *DGFLOW_RESTRICT invd = inv_diag_.data();
                   for (std::size_t i = r0; i < r1; ++i)
                   {
                     rd[i] = Number(-1) * rd[i] + Number(1) * bd[i];
                     rd[i] *= invd[i];
                     dd[i] = first ? coef_r * rd[i]
                                   : coef_d * dd[i] + coef_r * rd[i];
                     xd[i] += Number(1) * dd[i];
                   }
                 });
      // the post hooks mutated x (the vmult's src) after the ghost
      // exchange, so the neighbors' copies are stale now
      if constexpr (distributed)
        x.invalidate_ghosts();
    };

    if (zero_initial_guess)
    {
      // no matvec needed: r = D^{-1} b, d = r/theta, x = d in one sweep
      Number *DGFLOW_RESTRICT rd = r_.data();
      Number *DGFLOW_RESTRICT dd = d_.data();
      Number *DGFLOW_RESTRICT xd = x.data();
      const Number *DGFLOW_RESTRICT bd = b.data();
      const Number *DGFLOW_RESTRICT invd = inv_diag_.data();
      concurrency::ThreadPool::instance().parallel_for(
        x.size(), [&](const std::size_t i0, const std::size_t i1) {
          for (std::size_t i = i0; i < i1; ++i)
          {
            rd[i] = bd[i];
            rd[i] *= invd[i];
            dd[i] = theta_inv * rd[i];
            xd[i] = Number(0) + Number(1) * dd[i];
          }
        });
      if constexpr (distributed)
        x.invalidate_ghosts();
    }
    else
      fused_step(Number(0), theta_inv, /*first=*/true);

    const double sigma1 = theta / delta;
    double rho_old = 1. / sigma1;
    for (unsigned int k = 1; k < data_.degree; ++k)
    {
      const double rho = 1. / (2. * sigma1 - rho_old);
      fused_step(Number(rho * rho_old), Number(2. * rho / delta),
                 /*first=*/false);
      rho_old = rho;
    }
  }

  /// The ABFT sweep guard: purely local scan of the sweep result against
  /// non-finite entries and the energy bound; a violation discards the
  /// sweep (x back to its input) and counts a repair. Restoring locally is
  /// safe in distributed sweeps — it changes values, not the communication
  /// pattern — and the outer CG replay catches any residual inconsistency.
  void abft_check_result(VectorType &x, const VectorType &b,
                         const bool zero_initial_guess) const
  {
    const std::size_t n = x.size();
    const Number *DGFLOW_RESTRICT bd = b.data();
    const Number *DGFLOW_RESTRICT invd = inv_diag_.data();
    double r0_linf = 0., in_linf = 0.;
    for (std::size_t i = 0; i < n; ++i)
      r0_linf = std::max(r0_linf, std::fabs(double(invd[i] * bd[i])));
    if (!zero_initial_guess)
    {
      const Number *DGFLOW_RESTRICT ind = abft_in_.data();
      for (std::size_t i = 0; i < n; ++i)
        in_linf = std::max(in_linf, std::fabs(double(ind[i])));
    }
    const double bound =
      data_.abft_energy_factor *
      (in_linf + r0_linf / std::max(lambda_min_, 1e-300));
    bool ok = std::isfinite(bound);
    const Number *DGFLOW_RESTRICT xd = x.data();
    for (std::size_t i = 0; ok && i < n; ++i)
      ok = std::fabs(double(xd[i])) <= bound; // NaN fails the comparison
    if (ok)
      return;
    ++abft_repairs_;
    DGFLOW_PROF_COUNT("abft_sdc_detected", 1);
    DGFLOW_PROF_COUNT("abft_smoother_repairs", 1);
    if (zero_initial_guess)
      x = Number(0);
    else
      x.equ(Number(1), abft_in_);
    if constexpr (is_distributed_vector_v<VectorType>)
      x.invalidate_ghosts();
  }

  void initialize(const Operator &op, const VectorType &diagonal,
                  const AdditionalData &data)
  {
    op_ = &op;
    data_ = data;
    abft_repairs_ = 0;
    setup_stats_ = SolveStats();
    inv_diag_.reinit_like(diagonal, true);
    for (std::size_t i = 0; i < diagonal.size(); ++i)
    {
      const bool usable =
        std::isfinite(double(diagonal[i])) && diagonal[i] != Number(0);
      if (!usable)
        setup_stats_.failure = SolveFailure::non_finite;
      inv_diag_[i] = usable ? Number(1) / diagonal[i] : Number(1);
    }
  }

  /// Estimates the largest eigenvalue of D^{-1} A by the Lanczos process
  /// embedded in a Jacobi-preconditioned CG run (the deal.II approach): the
  /// CG coefficients alpha_k, beta_k form a tridiagonal matrix whose Ritz
  /// values converge quickly to the extreme eigenvalues; a Gershgorin bound
  /// of the tridiagonal plus the safety factor guards against
  /// underestimation, which would make the Chebyshev smoother amplify the
  /// top of the spectrum (observed on strongly deformed meshes with the
  /// plain power iteration).
  void estimate_eigenvalues()
  {
    const std::size_t n = inv_diag_.size();
    VectorType r, z, p, Ap;
    r.reinit_like(inv_diag_);
    z.reinit_like(inv_diag_);
    p.reinit_like(inv_diag_);
    Ap.reinit_like(inv_diag_);
    const std::size_t offset = inv_diag_.first_local_index();
    for (std::size_t i = 0; i < n; ++i)
      r[i] = Number(internal::hash_to_unit_interval(offset + i));

    z = r;
    z.scale_pointwise(inv_diag_);
    p = z;
    double rz = double(r.dot(z));

    std::vector<double> alphas, betas;
    for (unsigned int it = 0; it < data_.power_iterations && rz > 0; ++it)
    {
      op_->vmult(Ap, p);
      const double pAp = double(p.dot(Ap));
      if (!(pAp > 0))
        break;
      const double alpha = rz / pAp;
      alphas.push_back(alpha);
      r.add(Number(-alpha), Ap);
      z = r;
      z.scale_pointwise(inv_diag_);
      const double rz_new = double(r.dot(z));
      const double beta = rz_new / rz;
      betas.push_back(beta);
      rz = rz_new;
      p.sadd(Number(beta), Number(1), z);
    }
    if (alphas.empty())
    {
      // the very first step broke down (zero/indefinite operator or NaN):
      // report it and keep the smoother usable with conservative bounds
      setup_stats_.failure = std::isfinite(rz) ? SolveFailure::breakdown
                                               : SolveFailure::non_finite;
      use_fallback_eigenvalues();
      return;
    }

    // Gershgorin bound of the Lanczos tridiagonal
    double lambda = 0;
    for (std::size_t k = 0; k < alphas.size(); ++k)
    {
      const double diag =
        1. / alphas[k] + (k > 0 ? betas[k - 1] / alphas[k - 1] : 0.);
      const double off_right =
        k + 1 < alphas.size() ? std::sqrt(betas[k]) / alphas[k] : 0.;
      const double off_left =
        k > 0 ? std::sqrt(betas[k - 1]) / alphas[k - 1] : 0.;
      lambda = std::max(lambda, diag + off_right + off_left);
    }
    if (!std::isfinite(lambda) || lambda <= 0)
    {
      setup_stats_.failure = SolveFailure::non_finite;
      use_fallback_eigenvalues();
      return;
    }
    setup_stats_.converged = true;
    setup_stats_.iterations = static_cast<unsigned int>(alphas.size());
    setup_stats_.final_residual = std::sqrt(std::max(0., rz));
    lambda_max_ = data_.max_eigenvalue_safety * lambda;
    lambda_min_ = lambda_max_ / data_.smoothing_range;
  }

  /// Conservative bounds for a failed estimation: a unit top eigenvalue of
  /// D^{-1} A (exact for the Jacobi-scaled diagonal part) keeps the sweep
  /// finite and contractive on the upper spectrum.
  void use_fallback_eigenvalues()
  {
    DGFLOW_PROF_COUNT("chebyshev_eigen_fallbacks", 1);
    lambda_max_ = data_.max_eigenvalue_safety;
    lambda_min_ = lambda_max_ / data_.smoothing_range;
  }

  const Operator *op_ = nullptr;
  AdditionalData data_;
  VectorType inv_diag_;
  double lambda_max_ = 1., lambda_min_ = 0.05;
  SolveStats setup_stats_;
  mutable VectorType r_, d_;
  mutable VectorType abft_in_; ///< sweep input saved by the ABFT guard
  mutable unsigned long long abft_repairs_ = 0;
};

} // namespace dgflow
