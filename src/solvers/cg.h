#pragma once

// Preconditioned conjugate gradient solver. The termination criterion
// follows the paper: the norm of the unpreconditioned residual relative to
// the norm of the right-hand side. The preconditioner may run in a lower
// precision internally (mixed-precision multigrid V-cycle, Section 3.4).
//
// Failure handling: the solver never aborts. Non-finite residuals or inner
// products, residual stagnation and Krylov breakdown all terminate the
// iteration with a failed SolveStats carrying the SolveFailure reason, so
// callers can fall back (RecoveringSolver) or reject the time step.
//
// Fused loops: when the operator implements the contract-v2 hooked vmult
// (HookedOperatorFor) and SolverControl::fuse_loops is on, the
// search-direction update p = beta*p + z rides the next vmult's pre hooks
// (each cell batch's slice updated right before the operator reads it) and
// the x/r updates merge into one sweep — the merged solver kernels of
// Muething et al., saving two full passes of vector traffic per iteration.
// The arithmetic is element-for-element the classic expressions, so fused
// and unfused iterates agree bitwise.

#include <cmath>

#include "common/exceptions.h"
#include "common/recovery_hooks.h"
#include "common/timer.h"
#include "common/vector.h"
#include "instrumentation/profiler.h"
#include "instrumentation/solve_stats.h"
#include "solvers/concepts.h"

namespace dgflow
{
struct SolverControl
{
  unsigned int max_iterations = 1000;
  double rel_tol = 1e-10;
  double abs_tol = 0.;
  /// declare stagnation after this many consecutive iterations without any
  /// residual improvement (0 disables the check)
  unsigned int stagnation_window = 100;
  /// fold the solver's BLAS-1 updates into the operator's hooked cell loop
  /// (no effect on operators without contract-v2 hooks)
  bool fuse_loops = true;
  /// distributed failure detection: when set, solve_cg calls the hook at
  /// iteration boundaries (honoring its stride) so all ranks agree on
  /// live-or-dead before the next collective; nullptr (the default) costs
  /// nothing and keeps serial solves unchanged
  RecoveryHooks *recovery = nullptr;
};

/// Identity preconditioner.
struct PreconditionIdentity
{
  template <typename VectorType>
  void vmult(VectorType &dst, const VectorType &src) const
  {
    dst = src;
  }

  template <typename VectorType>
  void vmult(VectorType &dst, const VectorType &src)
  {
    dst = src;
  }
};

/// Point-Jacobi preconditioner from a stored inverse diagonal.
template <typename Number>
class PreconditionJacobi
{
public:
  /// Accepts any vector over the local range (serial Vector or the owned
  /// range of a DistributedVector); the inverse diagonal is stored locally.
  template <typename VectorType>
  void reinit(const VectorType &diagonal)
  {
    inv_diag_.reinit(diagonal.size(), true);
    for (std::size_t i = 0; i < diagonal.size(); ++i)
    {
      DGFLOW_ASSERT(std::isfinite(double(diagonal[i])),
                    "non-finite diagonal entry " << double(diagonal[i])
                      << " at index " << i << " of " << diagonal.size()
                      << ": the operator produced NaN/Inf during diagonal "
                         "assembly; refusing to build a Jacobi "
                         "preconditioner that would propagate it silently");
      DGFLOW_ASSERT(diagonal[i] != Number(0), "zero diagonal entry");
      inv_diag_[i] = Number(1) / diagonal[i];
    }
  }

  template <typename VectorType>
  void vmult(VectorType &dst, const VectorType &src) const
  {
    DGFLOW_DEBUG_ASSERT(src.size() == inv_diag_.size(), "size mismatch");
    dst.reinit_like(src, true);
    for (std::size_t i = 0; i < src.size(); ++i)
      dst[i] = inv_diag_[i] * src[i];
  }

  const Vector<Number> &inverse_diagonal() const { return inv_diag_; }

private:
  Vector<Number> inv_diag_;
};

/// Solves A x = b with initial guess x; returns the solve statistics.
///
/// Templated on the vector type: works unchanged for the serial Vector and
/// for vmpi::DistributedVector, where every dot/norm is one allreduce and
/// the operator vmult performs the ghost exchange. For distributed solves
/// the per-solve vmpi traffic (messages/bytes/allreduces) is published as
/// cg_vmpi_* gauges.
template <typename Operator, typename Preconditioner, typename VectorType>
  requires PreconditionerFor<Preconditioner, VectorType> &&
           OperatorFor<Operator, VectorType>
SolveStats solve_cg(const Operator &A, VectorType &x, const VectorType &b,
                    Preconditioner &P, const SolverControl &control)
{
  using Number = typename VectorType::value_type;
  constexpr bool distributed = is_distributed_vector_v<VectorType>;
  constexpr bool hooked = HookedOperatorFor<Operator, VectorType>;
  DGFLOW_PROF_SCOPE("cg");
  Timer solve_timer;
  SolveStats result;
  VectorType r, z, p, Ap;
  r.reinit_like(b);
  z.reinit_like(b);
  p.reinit_like(b);
  Ap.reinit_like(b);

  unsigned long long messages0 = 0, bytes0 = 0, allreduces0 = 0;
  if constexpr (distributed)
  {
    const auto &t = b.communicator().traffic();
    messages0 = t.messages;
    bytes0 = t.bytes;
    allreduces0 = t.allreduces;
  }

  const auto finish = [&](SolveStats &stats) -> SolveStats & {
    stats.seconds = solve_timer.seconds();
    DGFLOW_PROF_COUNT("cg_solves", 1);
    DGFLOW_PROF_COUNT("cg_iterations", stats.iterations);
    if (stats.failed())
      DGFLOW_PROF_COUNT("cg_failures", 1);
    if constexpr (distributed)
    {
      const auto &t = b.communicator().traffic();
      DGFLOW_PROF_GAUGE("cg_vmpi_messages", double(t.messages - messages0));
      DGFLOW_PROF_GAUGE("cg_vmpi_bytes", double(t.bytes - bytes0));
      DGFLOW_PROF_GAUGE("cg_vmpi_allreduces",
                        double(t.allreduces - allreduces0));
    }
    return stats;
  };

  A.vmult(Ap, x);
  r.equ(Number(1), b, Number(-1), Ap);

  const double b_norm = double(b.l2_norm());
  const double tol =
    std::max(control.abs_tol, control.rel_tol * (b_norm > 0 ? b_norm : 1.));

  double res_norm = double(r.l2_norm());
  result.initial_residual = res_norm;
  result.final_residual = res_norm;
  if (!std::isfinite(res_norm))
  {
    result.failure = SolveFailure::non_finite;
    return finish(result);
  }
  if (res_norm <= tol)
  {
    result.converged = true;
    return finish(result);
  }

  P.vmult(z, r);
  p = z;
  Number rz = r.dot(z);

  double best_res = res_norm;
  unsigned int last_improvement = 0;

  // fused mode defers p = beta*p + z into the next vmult's pre hooks
  Number beta = Number(0);
  bool pending_beta = false;

  for (unsigned int it = 1; it <= control.max_iterations; ++it)
  {
    // agreement boundary: every rank must reach the verdict *before* the
    // next collective (the dot products below), or a dead peer turns those
    // into timeouts on the survivors
    if (control.recovery &&
        (it == 1 || int(it) % std::max(1, control.recovery->stride()) == 0))
      control.recovery->at_iteration_boundary(std::isfinite(res_norm) &&
                                              std::isfinite(double(rz)));
    if constexpr (hooked)
    {
      if (pending_beta)
      {
        // the operator fires this per cell batch right before reading the
        // batch's p entries (cut-face batches before the ghost exchange),
        // so Ap = A * (beta*p + z) without a separate sweep over p
        const Number beta_c = beta;
        Number *DGFLOW_RESTRICT pd = p.data();
        const Number *DGFLOW_RESTRICT zd = z.data();
        A.vmult(Ap, p, [=](const std::size_t r0, const std::size_t r1) {
          for (std::size_t i = r0; i < r1; ++i)
            pd[i] = beta_c * pd[i] + zd[i];
        });
        pending_beta = false;
      }
      else
        A.vmult(Ap, p);
    }
    else
      A.vmult(Ap, p);
    const Number pAp = p.dot(Ap);
    if (!std::isfinite(double(pAp)) || !std::isfinite(double(rz)))
    {
      result.failure = SolveFailure::non_finite;
      break;
    }
    if (!(pAp > Number(0)))
    {
      // direction numerically exhausted: for the SPD operators used here
      // this means the residual has stagnated at roundoff level relative to
      // the preconditioned system; accept the current iterate if the
      // stagnation happened below a loosened tolerance, else report the
      // breakdown to the caller for recovery (never abort the process)
      result.breakdown = true;
      result.converged = res_norm <= 100. * tol;
      if (!result.converged)
        result.failure = SolveFailure::breakdown;
      break;
    }
    const Number alpha = rz / pAp;
    if constexpr (hooked)
    {
      if (control.fuse_loops)
      {
        // one merged sweep instead of two (bitwise equal: the element
        // updates are independent and use the classic expressions)
        Number *DGFLOW_RESTRICT xd = x.data();
        Number *DGFLOW_RESTRICT rd = r.data();
        const Number *DGFLOW_RESTRICT pd = p.data();
        const Number *DGFLOW_RESTRICT apd = Ap.data();
        const std::size_t n = x.size();
        for (std::size_t i = 0; i < n; ++i)
        {
          xd[i] += alpha * pd[i];
          rd[i] += (-alpha) * apd[i];
        }
        if constexpr (distributed)
        {
          x.invalidate_ghosts();
          r.invalidate_ghosts();
        }
      }
      else
      {
        x.add(alpha, p);
        r.add(-alpha, Ap);
      }
    }
    else
    {
      x.add(alpha, p);
      r.add(-alpha, Ap);
    }

    res_norm = double(r.l2_norm());
    result.iterations = it;
    result.final_residual = res_norm;
    if (!std::isfinite(res_norm))
    {
      result.failure = SolveFailure::non_finite;
      break;
    }
    if (res_norm <= tol)
    {
      result.converged = true;
      break;
    }
    if (res_norm < best_res)
    {
      best_res = res_norm;
      last_improvement = it;
    }
    else if (control.stagnation_window > 0 &&
             it - last_improvement >= control.stagnation_window)
    {
      result.failure = SolveFailure::stagnation;
      break;
    }

    P.vmult(z, r);
    const Number rz_new = r.dot(z);
    beta = rz_new / rz;
    rz = rz_new;
    if constexpr (hooked)
    {
      if (control.fuse_loops)
        pending_beta = true; // p = beta*p + z rides the next vmult
      else
        p.sadd(beta, Number(1), z);
    }
    else
      p.sadd(beta, Number(1), z);
  }
  if (!result.converged && result.failure == SolveFailure::none)
    result.failure = SolveFailure::max_iterations;
  result.final_residual = res_norm;
  return finish(result);
}

} // namespace dgflow
