#pragma once

// Preconditioned conjugate gradient solver. The termination criterion
// follows the paper: the norm of the unpreconditioned residual relative to
// the norm of the right-hand side. The preconditioner may run in a lower
// precision internally (mixed-precision multigrid V-cycle, Section 3.4).
//
// Failure handling: the solver never aborts. Non-finite residuals or inner
// products, residual stagnation and Krylov breakdown all terminate the
// iteration with a failed SolveStats carrying the SolveFailure reason, so
// callers can fall back (RecoveringSolver) or reject the time step.
//
// Fused loops: when the operator implements the contract-v2 hooked vmult
// (HookedOperatorFor) and SolverControl::fuse_loops is on, the
// search-direction update p = beta*p + z rides the next vmult's pre hooks
// (each cell batch's slice updated right before the operator reads it) and
// the x/r updates merge into one sweep — the merged solver kernels of
// Muething et al., saving two full passes of vector traffic per iteration.
// The arithmetic is element-for-element the classic expressions, so fused
// and unfused iterates agree bitwise.
//
// ABFT guard: with SolverControl::abft_replay_interval > 0 the solver
// periodically replays the true residual and the CG orthogonality relation
// to catch silent data corruption in its Krylov vectors, rolling back to the
// last validated snapshot on drift (see the SolverControl fields and
// docs/DEVELOPING.md, "Silent data corruption & ABFT"). Off by default: a
// fault-free solve with the guard off is bit-for-bit the pre-guard solver.

#include <cmath>
#include <type_traits>

#include "common/abft_hooks.h"
#include "common/exceptions.h"
#include "common/recovery_hooks.h"
#include "common/timer.h"
#include "common/vector.h"
#include "instrumentation/profiler.h"
#include "instrumentation/solve_stats.h"
#include "solvers/concepts.h"

namespace dgflow
{
struct SolverControl
{
  unsigned int max_iterations = 1000;
  double rel_tol = 1e-10;
  double abs_tol = 0.;
  /// declare stagnation after this many consecutive iterations without any
  /// residual improvement (0 disables the check)
  unsigned int stagnation_window = 100;
  /// fold the solver's BLAS-1 updates into the operator's hooked cell loop
  /// (no effect on operators without contract-v2 hooks)
  bool fuse_loops = true;
  /// distributed failure detection: when set, solve_cg calls the hook at
  /// iteration boundaries (honoring its stride) so all ranks agree on
  /// live-or-dead before the next collective; nullptr (the default) costs
  /// nothing and keeps serial solves unchanged
  RecoveryHooks *recovery = nullptr;

  // --- ABFT silent-data-corruption guard (0 = off, the default) ---
  //
  // Every abft_replay_interval iterations the solver replays the true
  // residual ||b - A x|| and checks two invariants against the recurrence
  // state: the recurrence residual norm must match the replay (a flipped
  // bit in x or r breaks the identity r = b - A x the recurrence otherwise
  // preserves exactly), and the search direction must satisfy the CG
  // orthogonality relation r.p == r.z (a flipped bit in p preserves the
  // residual identity but breaks conjugacy). A passing boundary saves a
  // validated snapshot (x, r, p, r.z); a failing one — or a boundary at
  // which the attached scrubber had to rebuild a checksummed artifact —
  // rolls the iteration back to the last snapshot, so one flip costs at
  // most abft_replay_interval redone iterations instead of a restart. The
  // rollback decision is made from allreduced quantities, so in distributed
  // solves every rank takes it at the same boundary.
  unsigned int abft_replay_interval = 0;
  /// relative drift threshold of both replay invariants; the default sits
  /// orders of magnitude above the floating-point drift of a healthy
  /// recurrence and below any corruption that could survive into a
  /// converged solution at practical tolerances
  double abft_drift_tol = 1e-8;
  /// consecutive failed replays tolerated before the solve gives up with
  /// SolveFailure::sdc_detected (persistent corruption the rollback cannot
  /// clear, e.g. a corrupt operator with no scrubber attached)
  unsigned int abft_max_rollbacks = 3;
  /// checksummed-artifact scrubber (resilience::ArtifactGuard) run at every
  /// replay boundary; a nonzero rebuild count triggers the same rollback as
  /// replay drift so the repaired operator resumes from a validated state
  AbftScrubber *abft_scrub = nullptr;
  /// deterministic compute-side fault injection (resilience::FaultPlan),
  /// fired at every iteration boundary with this rank's Krylov payloads;
  /// testing only — nullptr costs nothing
  AbftInjector *abft_inject = nullptr;
};

/// Identity preconditioner.
struct PreconditionIdentity
{
  template <typename VectorType>
  void vmult(VectorType &dst, const VectorType &src) const
  {
    dst = src;
  }

  template <typename VectorType>
  void vmult(VectorType &dst, const VectorType &src)
  {
    dst = src;
  }
};

/// Point-Jacobi preconditioner from a stored inverse diagonal.
template <typename Number>
class PreconditionJacobi
{
public:
  /// Accepts any vector over the local range (serial Vector or the owned
  /// range of a DistributedVector); the inverse diagonal is stored locally.
  template <typename VectorType>
  void reinit(const VectorType &diagonal)
  {
    inv_diag_.reinit(diagonal.size(), true);
    for (std::size_t i = 0; i < diagonal.size(); ++i)
    {
      DGFLOW_ASSERT(std::isfinite(double(diagonal[i])),
                    "non-finite diagonal entry " << double(diagonal[i])
                      << " at index " << i << " of " << diagonal.size()
                      << ": the operator produced NaN/Inf during diagonal "
                         "assembly; refusing to build a Jacobi "
                         "preconditioner that would propagate it silently");
      DGFLOW_ASSERT(diagonal[i] != Number(0), "zero diagonal entry");
      inv_diag_[i] = Number(1) / diagonal[i];
    }
  }

  template <typename VectorType>
  void vmult(VectorType &dst, const VectorType &src) const
  {
    DGFLOW_DEBUG_ASSERT(src.size() == inv_diag_.size(), "size mismatch");
    dst.reinit_like(src, true);
    Number *DGFLOW_RESTRICT d = dst.data();
    const Number *DGFLOW_RESTRICT s = src.data();
    const Number *DGFLOW_RESTRICT inv = inv_diag_.data();
    concurrency::ThreadPool::instance().parallel_for(
      src.size(), [&](const std::size_t i0, const std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          d[i] = inv[i] * s[i];
      });
  }

  const Vector<Number> &inverse_diagonal() const { return inv_diag_; }

private:
  Vector<Number> inv_diag_;
};

/// Solves A x = b with initial guess x; returns the solve statistics.
///
/// Templated on the vector type: works unchanged for the serial Vector and
/// for vmpi::DistributedVector, where every dot/norm is one allreduce and
/// the operator vmult performs the ghost exchange. For distributed solves
/// the per-solve vmpi traffic (messages/bytes/allreduces) is published as
/// cg_vmpi_* gauges.
template <typename Operator, typename Preconditioner, typename VectorType>
  requires PreconditionerFor<Preconditioner, VectorType> &&
           OperatorFor<Operator, VectorType>
SolveStats solve_cg(const Operator &A, VectorType &x, const VectorType &b,
                    Preconditioner &P, const SolverControl &control)
{
  using Number = typename VectorType::value_type;
  constexpr bool distributed = is_distributed_vector_v<VectorType>;
  constexpr bool hooked = HookedOperatorFor<Operator, VectorType>;
  DGFLOW_PROF_SCOPE("cg");
  Timer solve_timer;
  SolveStats result;
  VectorType r, z, p, Ap;
  r.reinit_like(b);
  z.reinit_like(b);
  p.reinit_like(b);
  Ap.reinit_like(b);

  unsigned long long messages0 = 0, bytes0 = 0, allreduces0 = 0;
  if constexpr (distributed)
  {
    const auto &t = b.communicator().traffic();
    messages0 = t.messages;
    bytes0 = t.bytes;
    allreduces0 = t.allreduces;
  }

  const auto finish = [&](SolveStats &stats) -> SolveStats & {
    stats.seconds = solve_timer.seconds();
    DGFLOW_PROF_COUNT("cg_solves", 1);
    DGFLOW_PROF_COUNT("cg_iterations", stats.iterations);
    if (stats.failed())
      DGFLOW_PROF_COUNT("cg_failures", 1);
    if (stats.residual_replays > 0)
      DGFLOW_PROF_COUNT("abft_residual_replays", stats.residual_replays);
    if (stats.sdc_detected > 0)
      DGFLOW_PROF_COUNT("abft_sdc_detected", stats.sdc_detected);
    if (stats.sdc_rollbacks > 0)
      DGFLOW_PROF_COUNT("abft_rollbacks", stats.sdc_rollbacks);
    if (stats.scrub_rebuilds > 0)
      DGFLOW_PROF_COUNT("abft_scrub_rebuilds", stats.scrub_rebuilds);
    if constexpr (distributed)
    {
      const auto &t = b.communicator().traffic();
      DGFLOW_PROF_GAUGE("cg_vmpi_messages", double(t.messages - messages0));
      DGFLOW_PROF_GAUGE("cg_vmpi_bytes", double(t.bytes - bytes0));
      DGFLOW_PROF_GAUGE("cg_vmpi_allreduces",
                        double(t.allreduces - allreduces0));
    }
    return stats;
  };

  A.vmult(Ap, x);
  r.equ(Number(1), b, Number(-1), Ap);

  const double b_norm = double(b.l2_norm());
  const double tol =
    std::max(control.abs_tol, control.rel_tol * (b_norm > 0 ? b_norm : 1.));

  double res_norm = double(r.l2_norm());
  result.initial_residual = res_norm;
  result.final_residual = res_norm;
  if (!std::isfinite(res_norm))
  {
    result.failure = SolveFailure::non_finite;
    return finish(result);
  }
  if (res_norm <= tol)
  {
    result.converged = true;
    return finish(result);
  }

  P.vmult(z, r);
  p = z;
  Number rz = r.dot(z);

  double best_res = res_norm;
  unsigned int last_improvement = 0;

  // fused mode defers p = beta*p + z into the next vmult's pre hooks
  Number beta = Number(0);
  bool pending_beta = false;

  // ABFT rolling snapshot: the initial state is validated by construction
  // (r was just computed as b - A x directly), so a drift detected at the
  // very first replay boundary can already roll back
  const unsigned int abft_m = control.abft_replay_interval;
  VectorType snap_x, snap_r, snap_p;
  Number snap_rz = rz;
  double snap_res = res_norm;
  unsigned int rollbacks_left = control.abft_max_rollbacks;
  if (abft_m > 0)
  {
    snap_x.reinit_like(x, true);
    snap_r.reinit_like(r, true);
    snap_p.reinit_like(p, true);
    snap_x.equ(Number(1), x);
    snap_r.equ(Number(1), r);
    snap_p.equ(Number(1), p);
  }
  // Restores the last validated snapshot; returns false when the guard is
  // off or the rollback budget is spent (the caller then fails the solve).
  const auto abft_rollback = [&]() -> bool {
    if (abft_m == 0 || rollbacks_left == 0)
      return false;
    --rollbacks_left;
    ++result.sdc_rollbacks;
    x.equ(Number(1), snap_x);
    r.equ(Number(1), snap_r);
    p.equ(Number(1), snap_p);
    rz = snap_rz;
    res_norm = snap_res;
    result.final_residual = res_norm;
    pending_beta = false;
    if constexpr (distributed)
    {
      x.invalidate_ghosts();
      r.invalidate_ghosts();
      p.invalidate_ghosts();
    }
    return true;
  };

  for (unsigned int it = 1; it <= control.max_iterations; ++it)
  {
    // agreement boundary: every rank must reach the verdict *before* the
    // next collective (the dot products below), or a dead peer turns those
    // into timeouts on the survivors
    if (control.recovery &&
        (it == 1 || int(it) % std::max(1, control.recovery->stride()) == 0))
      control.recovery->at_iteration_boundary(std::isfinite(res_norm) &&
                                              std::isfinite(double(rz)));
    if (control.abft_inject)
    {
      // deterministic compute-side bit flips into this rank's Krylov state
      // (testing the guard); the flipped owned entries reach the neighbors'
      // ghost copies at the next exchange like a real in-memory flip would
      int inject_rank = 0;
      if constexpr (distributed)
        inject_rank = x.communicator().rank();
      control.abft_inject->inject("krylov_x", it, inject_rank, x.data(),
                                  x.size() * sizeof(Number));
      control.abft_inject->inject("krylov_r", it, inject_rank, r.data(),
                                  r.size() * sizeof(Number));
      control.abft_inject->inject("krylov_p", it, inject_rank, p.data(),
                                  p.size() * sizeof(Number));
      if constexpr (distributed)
      {
        x.invalidate_ghosts();
        r.invalidate_ghosts();
      }
    }
    if (abft_m > 0 && it > 1 && (it - 1) % abft_m == 0)
    {
      // materialize the deferred search-direction update first so the
      // invariant checks and the snapshot see the true p (the element
      // expression is the one the hook would apply: bitwise identical)
      if (pending_beta)
      {
        p.sadd(beta, Number(1), z);
        pending_beta = false;
      }
      ++result.residual_replays;
      unsigned int rebuilt = 0;
      if (control.abft_scrub)
        rebuilt = control.abft_scrub->scrub();
      result.scrub_rebuilds += rebuilt;
      if constexpr (distributed)
      {
        // the rollback decision below must be collective: a rebuild on one
        // rank only would roll that rank back while its peers proceed,
        // deadlocking the next allreduce
        auto &comm = x.communicator();
        using Op = typename std::remove_reference_t<decltype(comm)>::Op;
        rebuilt = static_cast<unsigned int>(
          comm.allreduce(double(rebuilt), Op::sum));
      }
      // true-residual replay into z (dead here: consumed by the last p
      // update, rewritten by the next P.vmult) and the two invariants; all
      // quantities are allreduced, so every rank takes the same branch
      A.vmult(Ap, x);
      z.equ(Number(1), b, Number(-1), Ap);
      const double true_res = double(z.l2_norm());
      const double res_drift = std::abs(true_res - res_norm);
      const double rp = double(r.dot(p));
      const double orth_drift = std::abs(rp - double(rz));
      const double p_norm = double(p.l2_norm());
      const bool sound =
        std::isfinite(true_res) && std::isfinite(rp) &&
        std::isfinite(p_norm) &&
        res_drift <=
          control.abft_drift_tol * std::max(b_norm > 0 ? b_norm : 1.,
                                            res_norm) &&
        orth_drift <= control.abft_drift_tol *
                        std::max(res_norm * p_norm, std::abs(double(rz)));
      if (sound && rebuilt == 0)
      {
        // validated: refresh the rolling snapshot
        snap_x.equ(Number(1), x);
        snap_r.equ(Number(1), r);
        snap_p.equ(Number(1), p);
        snap_rz = rz;
        snap_res = res_norm;
        rollbacks_left = control.abft_max_rollbacks;
      }
      else
      {
        if (!sound)
          ++result.sdc_detected;
        result.sdc_detected += rebuilt;
        if (!abft_rollback())
        {
          result.failure = SolveFailure::sdc_detected;
          break;
        }
        continue; // redo the window from the validated state
      }
    }
    if constexpr (hooked)
    {
      if (pending_beta)
      {
        // the operator fires this per cell batch right before reading the
        // batch's p entries (cut-face batches before the ghost exchange),
        // so Ap = A * (beta*p + z) without a separate sweep over p
        const Number beta_c = beta;
        Number *DGFLOW_RESTRICT pd = p.data();
        const Number *DGFLOW_RESTRICT zd = z.data();
        A.vmult(Ap, p, [=](const std::size_t r0, const std::size_t r1) {
          for (std::size_t i = r0; i < r1; ++i)
            pd[i] = beta_c * pd[i] + zd[i];
        });
        pending_beta = false;
      }
      else
        A.vmult(Ap, p);
    }
    else
      A.vmult(Ap, p);
    const Number pAp = p.dot(Ap);
    if (!std::isfinite(double(pAp)) || !std::isfinite(double(rz)))
    {
      // with the ABFT guard on, a NaN/Inf inner product is treated as
      // suspected corruption and rolled back like a failed replay
      if (abft_m > 0)
      {
        ++result.sdc_detected;
        if (abft_rollback())
          continue;
      }
      result.failure = SolveFailure::non_finite;
      break;
    }
    if (!(pAp > Number(0)))
    {
      // direction numerically exhausted: for the SPD operators used here
      // this means the residual has stagnated at roundoff level relative to
      // the preconditioned system; accept the current iterate if the
      // stagnation happened below a loosened tolerance, else report the
      // breakdown to the caller for recovery (never abort the process)
      result.breakdown = true;
      result.converged = res_norm <= 100. * tol;
      if (!result.converged)
        result.failure = SolveFailure::breakdown;
      break;
    }
    const Number alpha = rz / pAp;
    if constexpr (hooked)
    {
      if (control.fuse_loops)
      {
        // one merged sweep instead of two (bitwise equal: the element
        // updates are independent and use the classic expressions)
        Number *DGFLOW_RESTRICT xd = x.data();
        Number *DGFLOW_RESTRICT rd = r.data();
        const Number *DGFLOW_RESTRICT pd = p.data();
        const Number *DGFLOW_RESTRICT apd = Ap.data();
        concurrency::ThreadPool::instance().parallel_for(
          x.size(), [&](const std::size_t i0, const std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i)
            {
              xd[i] += alpha * pd[i];
              rd[i] += (-alpha) * apd[i];
            }
          });
        if constexpr (distributed)
        {
          x.invalidate_ghosts();
          r.invalidate_ghosts();
        }
      }
      else
      {
        x.add(alpha, p);
        r.add(-alpha, Ap);
      }
    }
    else
    {
      x.add(alpha, p);
      r.add(-alpha, Ap);
    }

    res_norm = double(r.l2_norm());
    result.iterations = it;
    result.final_residual = res_norm;
    if (!std::isfinite(res_norm))
    {
      if (abft_m > 0)
      {
        ++result.sdc_detected;
        if (abft_rollback())
          continue;
      }
      result.failure = SolveFailure::non_finite;
      break;
    }
    if (res_norm <= tol)
    {
      if (abft_m > 0)
      {
        // never declare convergence off the recurrence alone: a flip in x
        // leaves the recurrence residual pristine while the returned iterate
        // is garbage, and the next periodic replay may lie past the
        // convergence point (z is dead here, as at the periodic replay)
        ++result.residual_replays;
        A.vmult(Ap, x);
        z.equ(Number(1), b, Number(-1), Ap);
        const double true_res = double(z.l2_norm());
        if (!(std::isfinite(true_res) &&
              std::abs(true_res - res_norm) <=
                control.abft_drift_tol *
                  std::max(b_norm > 0 ? b_norm : 1., res_norm)))
        {
          ++result.sdc_detected;
          if (abft_rollback())
            continue;
          result.failure = SolveFailure::sdc_detected;
          break;
        }
      }
      result.converged = true;
      break;
    }
    if (res_norm < best_res)
    {
      best_res = res_norm;
      last_improvement = it;
    }
    else if (control.stagnation_window > 0 &&
             it - last_improvement >= control.stagnation_window)
    {
      result.failure = SolveFailure::stagnation;
      break;
    }

    P.vmult(z, r);
    const Number rz_new = r.dot(z);
    beta = rz_new / rz;
    rz = rz_new;
    if constexpr (hooked)
    {
      if (control.fuse_loops)
        pending_beta = true; // p = beta*p + z rides the next vmult
      else
        p.sadd(beta, Number(1), z);
    }
    else
      p.sadd(beta, Number(1), z);
  }
  if (!result.converged && result.failure == SolveFailure::none)
    result.failure = SolveFailure::max_iterations;
  result.final_residual = res_norm;
  return finish(result);
}

} // namespace dgflow
