#pragma once

// Preconditioned conjugate gradient solver. The termination criterion
// follows the paper: the norm of the unpreconditioned residual relative to
// the norm of the right-hand side. The preconditioner may run in a lower
// precision internally (mixed-precision multigrid V-cycle, Section 3.4).

#include <cmath>

#include "common/exceptions.h"
#include "common/timer.h"
#include "common/vector.h"
#include "instrumentation/profiler.h"
#include "instrumentation/solve_stats.h"

namespace dgflow
{
struct SolverControl
{
  unsigned int max_iterations = 1000;
  double rel_tol = 1e-10;
  double abs_tol = 0.;
};

/// Identity preconditioner.
struct PreconditionIdentity
{
  template <typename VectorType>
  void vmult(VectorType &dst, const VectorType &src) const
  {
    dst = src;
  }

  template <typename VectorType>
  void vmult(VectorType &dst, const VectorType &src)
  {
    dst = src;
  }
};

/// Point-Jacobi preconditioner from a stored inverse diagonal.
template <typename Number>
class PreconditionJacobi
{
public:
  void reinit(const Vector<Number> &diagonal)
  {
    inv_diag_.reinit(diagonal.size(), true);
    for (std::size_t i = 0; i < diagonal.size(); ++i)
    {
      DGFLOW_ASSERT(diagonal[i] != Number(0), "zero diagonal entry");
      inv_diag_[i] = Number(1) / diagonal[i];
    }
  }

  void vmult(Vector<Number> &dst, const Vector<Number> &src) const
  {
    dst.reinit(src.size(), true);
    for (std::size_t i = 0; i < src.size(); ++i)
      dst[i] = inv_diag_[i] * src[i];
  }

  const Vector<Number> &inverse_diagonal() const { return inv_diag_; }

private:
  Vector<Number> inv_diag_;
};

/// Solves A x = b with initial guess x; returns the solve statistics.
template <typename Operator, typename Preconditioner, typename Number>
SolveStats solve_cg(const Operator &A, Vector<Number> &x,
                    const Vector<Number> &b, Preconditioner &P,
                    const SolverControl &control)
{
  DGFLOW_PROF_SCOPE("cg");
  Timer solve_timer;
  SolveStats result;
  const std::size_t n = b.size();
  Vector<Number> r(n), z(n), p(n), Ap(n);

  A.vmult(Ap, x);
  r.equ(Number(1), b, Number(-1), Ap);

  const double b_norm = double(b.l2_norm());
  const double tol =
    std::max(control.abs_tol, control.rel_tol * (b_norm > 0 ? b_norm : 1.));

  double res_norm = double(r.l2_norm());
  result.initial_residual = res_norm;
  if (res_norm <= tol)
  {
    result.converged = true;
    result.final_residual = res_norm;
    result.seconds = solve_timer.seconds();
    DGFLOW_PROF_COUNT("cg_solves", 1);
    return result;
  }

  P.vmult(z, r);
  p = z;
  Number rz = r.dot(z);

  for (unsigned int it = 1; it <= control.max_iterations; ++it)
  {
    A.vmult(Ap, p);
    const Number pAp = p.dot(Ap);
    if (!(pAp > Number(0)))
    {
      // direction numerically exhausted: for the SPD operators used here
      // this means the residual has stagnated at roundoff level relative to
      // the preconditioned system; accept the current iterate if the
      // stagnation happened below a loosened tolerance, else report failure
      result.breakdown = true;
      result.converged = res_norm <= 100. * tol;
      DGFLOW_ASSERT(result.converged,
                    "CG breakdown above tolerance (p.Ap = "
                      << pAp << ", n = " << n << ", it = " << it
                      << ", res = " << res_norm << ", tol = " << tol << ")");
      break;
    }
    const Number alpha = rz / pAp;
    x.add(alpha, p);
    r.add(-alpha, Ap);

    res_norm = double(r.l2_norm());
    result.iterations = it;
    if (res_norm <= tol)
    {
      result.converged = true;
      break;
    }

    P.vmult(z, r);
    const Number rz_new = r.dot(z);
    const Number beta = rz_new / rz;
    rz = rz_new;
    p.sadd(beta, Number(1), z);
  }
  result.final_residual = res_norm;
  result.seconds = solve_timer.seconds();
  DGFLOW_PROF_COUNT("cg_solves", 1);
  DGFLOW_PROF_COUNT("cg_iterations", result.iterations);
  return result;
}

} // namespace dgflow
