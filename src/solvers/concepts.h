#pragma once

// Compile-time contracts of the solver layer. The Krylov solvers and the
// multigrid stack used to duck-type their collaborators (any type with a
// vmult compiled, and a mismatch surfaced as a template error three layers
// deep); these concepts state the requirements at the signature so misuse
// fails at the call site.

#include <concepts>
#include <cstddef>

#include "common/loop_hooks.h"

namespace dgflow
{
/// A preconditioner applicable to VectorType: z = P * r through
/// vmult(dst, src). Nothing is said about the preconditioner's *internal*
/// vector or scalar types — a float multigrid V-cycle preconditioning a
/// double CG satisfies PreconditionerFor<., Vector<double>> as long as it
/// converts at its boundary.
template <typename P, typename VectorType>
concept PreconditionerFor =
  requires(P &p, VectorType &dst, const VectorType &src) {
    p.vmult(dst, src);
  };

/// An operator whose vmult implements the contract-v2 hooked cell loop
/// (operators/README.md): vmult(dst, src, pre, post) with per-DoF-range
/// callbacks. Solvers use this to decide at compile time whether their
/// BLAS-1 updates can ride the operator's cell loop; operators without
/// hooks fall back to the classic separate-sweep iteration.
template <typename Op, typename VectorType>
concept HookedOperatorFor =
  requires(const Op &op, VectorType &dst, const VectorType &src) {
    op.vmult(dst, src, NoRangeHook(), NoRangeHook());
  };

/// The plain homogeneous action every solver needs.
template <typename Op, typename VectorType>
concept OperatorFor = requires(const Op &op, VectorType &dst,
                               const VectorType &src) { op.vmult(dst, src); };

} // namespace dgflow
