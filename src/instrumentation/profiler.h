#pragma once

// Process-wide, low-overhead profiling registry (the measurement layer the
// paper's evaluation protocol implies: per-kernel timings, iteration counts
// and communication volumes reported as first-class output, cf. Sections
// 4-5). Three ingredients:
//
//  * RAII scoped timers (Scope / DGFLOW_PROF_SCOPE) forming a hierarchy
//    ("ins_step/pressure/cg/mg_vcycle/level3/smoother"), with call counts
//    and total/min/max wall time per node. Each thread owns its tree (no
//    locks on the hot path); report() merges all threads by path.
//  * named monotonic counters (counter() / DGFLOW_PROF_COUNT): CG and
//    Chebyshev iterations, matrix-free cell/face batches, DoFs touched.
//  * vmpi traffic metrics fed by vmpi::run at join (messages, bytes,
//    barriers, allreduces summed over ranks).
//
// Cost model: compile-time DGFLOW_PROFILE guard (macros vanish entirely when
// undefined) plus a runtime enable flag - a disabled build/run costs at most
// one relaxed atomic load per instrumented scope, so benchmark numbers
// (fig06/fig07) are unaffected. Enable via Profiler::instance().enable(true)
// or, for binaries that install an EnvSession, DGFLOW_PROFILE=1 in the
// environment (DGFLOW_PROFILE_JSON=<path> additionally archives the report).

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "instrumentation/report.h"

namespace dgflow::prof
{
/// Monotonic named counter. Additions are dropped while profiling is
/// disabled, so instrumented hot loops stay free when not measuring.
class Counter
{
public:
  void add(const long long v);
  long long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<long long> value_{0};
};

/// Last-value-wins named metric for derived quantities that are not
/// monotonic (throughput in DoF/s, bytes per DoF, compression ratios).
/// Updates are dropped while profiling is disabled, like Counter.
class Gauge
{
public:
  void set(const double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0., std::memory_order_relaxed); }

private:
  std::atomic<double> value_{0.};
};

class Profiler
{
public:
  static Profiler &instance()
  {
    static Profiler p;
    return p;
  }

  void enable(const bool on)
  {
    enabled_.store(on, std::memory_order_relaxed);
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Returns the counter registered under @p name (created on first use).
  /// The reference stays valid for the process lifetime; cache it in hot
  /// paths (DGFLOW_PROF_COUNT does).
  Counter &counter(const std::string &name)
  {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_[name];
  }

  /// Returns the gauge registered under @p name (created on first use).
  /// Same lifetime/caching contract as counter().
  Gauge &gauge(const std::string &name)
  {
    std::lock_guard<std::mutex> lock(mutex_);
    return gauges_[name];
  }

  /// Adds one completed vmpi::run's rank-aggregated traffic.
  void add_vmpi_run(const int n_ranks, const unsigned long long messages,
                    const unsigned long long bytes,
                    const unsigned long long barriers,
                    const unsigned long long allreduces)
  {
    std::lock_guard<std::mutex> lock(mutex_);
    vmpi_.runs += 1;
    vmpi_.ranks += static_cast<unsigned long long>(n_ranks);
    vmpi_.messages += messages;
    vmpi_.bytes += bytes;
    vmpi_.barriers += barriers;
    vmpi_.allreduces += allreduces;
  }

  /// Snapshot of all timers (merged across threads), counters and vmpi
  /// metrics. Call from a quiescent point (no scopes active on other
  /// threads).
  ProfileReport report()
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ProfileReport r;
    for (const auto &tree : trees_)
      merge_children(tree->root, r.timers);
    for (const auto &[name, c] : counters_)
      r.counters[name] = c.value();
    for (const auto &[name, g] : gauges_)
      r.gauges[name] = g.value();
    r.vmpi = vmpi_;
    return r;
  }

  /// Clears all timers, counters and vmpi metrics (keeps counter handles
  /// valid). Call from a quiescent point only.
  void reset()
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &tree : trees_)
    {
      DGFLOW_ASSERT(tree->current == &tree->root,
                    "Profiler::reset() inside an active scope");
      tree->root.children.clear();
    }
    for (auto &[name, c] : counters_)
      c.reset();
    for (auto &[name, g] : gauges_)
      g.reset();
    vmpi_ = VmpiStats();
  }

  // -- internals shared with Scope -----------------------------------------

  struct Node
  {
    unsigned long count = 0;
    double total = 0.;
    double min = std::numeric_limits<double>::max();
    double max = 0.;
    // std::map: stable addresses under insertion (Scope holds Node*)
    std::map<std::string, Node, std::less<>> children;
  };

  struct ThreadTree
  {
    Node root;
    Node *current = &root;
  };

  /// The calling thread's tree (registered with the process registry on
  /// first use; kept alive after thread exit for the final report).
  ThreadTree &thread_tree()
  {
    thread_local std::shared_ptr<ThreadTree> tree = [this]() {
      auto t = std::make_shared<ThreadTree>();
      std::lock_guard<std::mutex> lock(mutex_);
      trees_.push_back(t);
      return t;
    }();
    return *tree;
  }

private:
  Profiler() = default;

  static void merge_children(const Node &node, std::vector<TimerEntry> &out)
  {
    for (const auto &[name, child] : node.children)
    {
      TimerEntry *entry = nullptr;
      for (auto &e : out)
        if (e.name == name)
        {
          entry = &e;
          break;
        }
      if (!entry)
      {
        out.emplace_back();
        entry = &out.back();
        entry->name = name;
      }
      entry->count += child.count;
      entry->total += child.total;
      entry->min = std::min(entry->min, child.min);
      entry->max = std::max(entry->max, child.max);
      merge_children(child, entry->children);
    }
  }

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadTree>> trees_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  VmpiStats vmpi_;
};

inline void Counter::add(const long long v)
{
  if (Profiler::instance().enabled())
    value_.fetch_add(v, std::memory_order_relaxed);
}

inline void Gauge::set(const double v)
{
  if (Profiler::instance().enabled())
    value_.store(v, std::memory_order_relaxed);
}

/// Convenience accessor: prof::counter("cg_iterations").add(n).
inline Counter &counter(const std::string &name)
{
  return Profiler::instance().counter(name);
}

/// Convenience accessor: prof::gauge("laplace_dofs_per_s").set(v).
inline Gauge &gauge(const std::string &name)
{
  return Profiler::instance().gauge(name);
}

/// RAII throughput probe: measures the wall time of the enclosing scope and
/// publishes items/second to the gauge "<name>_per_s" on destruction. The
/// two clock reads happen only while profiling is enabled.
class ThroughputScope
{
public:
  ThroughputScope(Gauge &gauge, const std::size_t n_items)
    : gauge_(gauge), n_items_(n_items),
      active_(Profiler::instance().enabled())
  {
    if (active_)
      start_ = clock::now();
  }

  ~ThroughputScope()
  {
    if (!active_)
      return;
    const double s =
      std::chrono::duration<double>(clock::now() - start_).count();
    if (s > 0.)
      gauge_.set(static_cast<double>(n_items_) / s);
  }

  ThroughputScope(const ThroughputScope &) = delete;
  ThroughputScope &operator=(const ThroughputScope &) = delete;

private:
  using clock = std::chrono::steady_clock;
  Gauge &gauge_;
  std::size_t n_items_;
  bool active_ = false;
  clock::time_point start_;
};

/// RAII scoped timer; nests under the innermost live Scope of this thread.
class Scope
{
public:
  template <typename NameType> // const char* or std::string
  explicit Scope(const NameType &name)
  {
    Profiler &p = Profiler::instance();
    if (!p.enabled())
      return;
    tree_ = &p.thread_tree();
    parent_ = tree_->current;
    node_ = &parent_->children[name];
    tree_->current = node_;
    active_ = true;
    start_ = clock::now();
  }

  ~Scope()
  {
    if (!active_)
      return;
    const double s =
      std::chrono::duration<double>(clock::now() - start_).count();
    node_->count += 1;
    node_->total += s;
    node_->min = std::min(node_->min, s);
    node_->max = std::max(node_->max, s);
    tree_->current = parent_;
  }

  Scope(const Scope &) = delete;
  Scope &operator=(const Scope &) = delete;

private:
  using clock = std::chrono::steady_clock;
  Profiler::ThreadTree *tree_ = nullptr;
  Profiler::Node *parent_ = nullptr;
  Profiler::Node *node_ = nullptr;
  bool active_ = false;
  clock::time_point start_;
};

/// Installs env-driven profiling for a main(): enables the profiler when
/// DGFLOW_PROFILE is set to a truthy value and, at scope exit, prints the
/// hierarchical report and archives it as JSON to DGFLOW_PROFILE_JSON.
class EnvSession
{
public:
  EnvSession()
  {
    Profiler &p = Profiler::instance();
    const char *v = std::getenv("DGFLOW_PROFILE");
    if (v && v[0] != '\0' && std::string(v) != "0" && std::string(v) != "off")
      p.enable(true);
  }

  ~EnvSession()
  {
    Profiler &p = Profiler::instance();
    if (!p.enabled())
      return;
    const ProfileReport report = p.report();
    report.print(std::cout);
    if (const char *path = std::getenv("DGFLOW_PROFILE_JSON"))
    {
      std::ofstream out(path);
      report.write_json(out);
    }
  }

  EnvSession(const EnvSession &) = delete;
  EnvSession &operator=(const EnvSession &) = delete;
};

} // namespace dgflow::prof

// ---------------------------------------------------------------------------
// instrumentation macros: compiled out entirely without DGFLOW_PROFILE
// ---------------------------------------------------------------------------

#ifdef DGFLOW_PROFILE

#define DGFLOW_PROF_CONCAT_INNER(a, b) a##b
#define DGFLOW_PROF_CONCAT(a, b) DGFLOW_PROF_CONCAT_INNER(a, b)

/// Times the enclosing scope under the given (literal or std::string) name.
#define DGFLOW_PROF_SCOPE(name)                                              \
  ::dgflow::prof::Scope DGFLOW_PROF_CONCAT(dgflow_prof_scope_,               \
                                           __LINE__)(name)

/// Adds @p amount to the named counter (counter handle cached per site).
#define DGFLOW_PROF_COUNT(name, amount)                                      \
  do                                                                         \
  {                                                                          \
    static ::dgflow::prof::Counter &DGFLOW_PROF_CONCAT(dgflow_prof_c_,       \
                                                       __LINE__) =           \
      ::dgflow::prof::counter(name);                                         \
    DGFLOW_PROF_CONCAT(dgflow_prof_c_, __LINE__).add(amount);                \
  } while (0)

/// Sets the named gauge to @p value (gauge handle cached per site).
#define DGFLOW_PROF_GAUGE(name, value)                                       \
  do                                                                         \
  {                                                                          \
    static ::dgflow::prof::Gauge &DGFLOW_PROF_CONCAT(dgflow_prof_g_,         \
                                                     __LINE__) =             \
      ::dgflow::prof::gauge(name);                                           \
    DGFLOW_PROF_CONCAT(dgflow_prof_g_, __LINE__).set(value);                 \
  } while (0)

/// Publishes items/second of the enclosing scope to the gauge
/// "<name>_dofs_per_s" when the scope exits.
#define DGFLOW_PROF_THROUGHPUT(name, n_items)                                \
  static ::dgflow::prof::Gauge &DGFLOW_PROF_CONCAT(dgflow_prof_tg_,          \
                                                   __LINE__) =               \
    ::dgflow::prof::gauge(std::string(name) + "_dofs_per_s");                \
  ::dgflow::prof::ThroughputScope DGFLOW_PROF_CONCAT(                        \
    dgflow_prof_tp_, __LINE__)(DGFLOW_PROF_CONCAT(dgflow_prof_tg_,           \
                                                  __LINE__),                 \
                               n_items)

#else

#define DGFLOW_PROF_SCOPE(name)                                              \
  do                                                                         \
  {                                                                          \
  } while (0)
#define DGFLOW_PROF_COUNT(name, amount)                                      \
  do                                                                         \
  {                                                                          \
  } while (0)
#define DGFLOW_PROF_GAUGE(name, value)                                       \
  do                                                                         \
  {                                                                          \
  } while (0)
#define DGFLOW_PROF_THROUGHPUT(name, n_items)                                \
  do                                                                         \
  {                                                                          \
  } while (0)

#endif
