#pragma once

// The one coherent per-solve statistics object produced by the instrumented
// Krylov solvers (iterations, residuals, convergence flags, wall time).
// INSSolver::StepInfo exposes one SolveStats per implicit substep so
// examples/tests read a single struct instead of loose counters.

namespace dgflow
{
struct SolveStats
{
  unsigned int iterations = 0;
  double initial_residual = 0.;
  double final_residual = 0.;
  bool converged = false;
  /// Krylov space exhausted (search direction numerically zero); the
  /// returned iterate is the best available and is treated as converged
  /// when the residual has stagnated at roundoff level.
  bool breakdown = false;
  double seconds = 0.; ///< wall time of the solve
};

} // namespace dgflow
