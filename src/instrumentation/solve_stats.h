#pragma once

// The one coherent per-solve statistics object produced by the instrumented
// Krylov solvers (iterations, residuals, convergence flags, wall time).
// INSSolver::StepInfo exposes one SolveStats per implicit substep so
// examples/tests read a single struct instead of loose counters.
//
// Failure taxonomy: a failed solve never aborts the process. It returns
// converged = false plus a SolveFailure classifying *why*, so callers
// (RecoveringSolver, the INS time-step rejection loop) can pick the right
// recovery: retry with a more robust preconditioner, or roll the time step
// back and halve dt.

namespace dgflow
{
/// Why a solve failed (SolveFailure::none on success).
enum class SolveFailure
{
  none,           ///< converged (or still healthy)
  breakdown,      ///< Krylov direction exhausted (p.Ap <= 0) above tolerance
  stagnation,     ///< residual stopped improving for a full window
  non_finite,     ///< NaN/Inf in a residual or inner product
  max_iterations, ///< iteration budget exhausted above tolerance
  sdc_detected    ///< silent data corruption caught by an ABFT guard
                  ///< (residual replay drift) and not repairable locally
};

inline const char *to_string(const SolveFailure f)
{
  switch (f)
  {
    case SolveFailure::none:
      return "none";
    case SolveFailure::breakdown:
      return "breakdown";
    case SolveFailure::stagnation:
      return "stagnation";
    case SolveFailure::non_finite:
      return "non_finite";
    case SolveFailure::max_iterations:
      return "max_iterations";
    case SolveFailure::sdc_detected:
      return "sdc_detected";
  }
  return "unknown";
}

struct SolveStats
{
  unsigned int iterations = 0;
  double initial_residual = 0.;
  double final_residual = 0.;
  bool converged = false;
  /// Krylov space exhausted (search direction numerically zero); the
  /// returned iterate is the best available and is treated as converged
  /// when the residual has stagnated at roundoff level.
  bool breakdown = false;
  /// failure classification when converged == false
  SolveFailure failure = SolveFailure::none;
  double seconds = 0.; ///< wall time of the solve

  // ABFT guard activity during the solve (all zero when the guard is off or
  // the run was fault-free); sdc_detected > 0 with converged = true means
  // corruption was caught and repaired locally by a snapshot rollback
  unsigned int residual_replays = 0; ///< true-residual replay checks run
  unsigned int sdc_detected = 0;     ///< replay drifts / scrub rebuilds seen
  unsigned int sdc_rollbacks = 0;    ///< rollbacks to a validated snapshot
  unsigned int scrub_rebuilds = 0;   ///< artifacts rebuilt by the scrubber

  bool failed() const { return !converged; }
};

} // namespace dgflow
