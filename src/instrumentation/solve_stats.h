#pragma once

// The one coherent per-solve statistics object produced by the instrumented
// Krylov solvers (iterations, residuals, convergence flags, wall time).
// INSSolver::StepInfo exposes one SolveStats per implicit substep so
// examples/tests read a single struct instead of loose counters.
//
// Failure taxonomy: a failed solve never aborts the process. It returns
// converged = false plus a SolveFailure classifying *why*, so callers
// (RecoveringSolver, the INS time-step rejection loop) can pick the right
// recovery: retry with a more robust preconditioner, or roll the time step
// back and halve dt.

namespace dgflow
{
/// Why a solve failed (SolveFailure::none on success).
enum class SolveFailure
{
  none,           ///< converged (or still healthy)
  breakdown,      ///< Krylov direction exhausted (p.Ap <= 0) above tolerance
  stagnation,     ///< residual stopped improving for a full window
  non_finite,     ///< NaN/Inf in a residual or inner product
  max_iterations  ///< iteration budget exhausted above tolerance
};

inline const char *to_string(const SolveFailure f)
{
  switch (f)
  {
    case SolveFailure::none:
      return "none";
    case SolveFailure::breakdown:
      return "breakdown";
    case SolveFailure::stagnation:
      return "stagnation";
    case SolveFailure::non_finite:
      return "non_finite";
    case SolveFailure::max_iterations:
      return "max_iterations";
  }
  return "unknown";
}

struct SolveStats
{
  unsigned int iterations = 0;
  double initial_residual = 0.;
  double final_residual = 0.;
  bool converged = false;
  /// Krylov space exhausted (search direction numerically zero); the
  /// returned iterate is the best available and is treated as converged
  /// when the residual has stagnated at roundoff level.
  bool breakdown = false;
  /// failure classification when converged == false
  SolveFailure failure = SolveFailure::none;
  double seconds = 0.; ///< wall time of the solve

  bool failed() const { return !converged; }
};

} // namespace dgflow
