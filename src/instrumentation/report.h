#pragma once

// Structured profiling output (paper Sections 4-5 report per-kernel timings,
// iteration counts and communication volumes as first-class results): a
// snapshot of the profiler state that can render itself as a hierarchical
// console table or as machine-readable JSON, plus a parser for the same JSON
// schema so benchmark tooling can diff archived runs across PRs.

#include <cctype>
#include <cstdint>
#include <iomanip>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/exceptions.h"

namespace dgflow::prof
{
/// One node of the scoped-timer hierarchy (aggregated over all threads).
struct TimerEntry
{
  std::string name;
  unsigned long count = 0;
  double total = 0.;                        ///< accumulated seconds
  double min = std::numeric_limits<double>::max();
  double max = 0.;
  std::vector<TimerEntry> children;

  /// Seconds not attributed to any child scope.
  double self() const
  {
    double s = total;
    for (const auto &c : children)
      s -= c.total;
    return s;
  }

  /// Depth of the subtree rooted here (a leaf has depth 1).
  unsigned int depth() const
  {
    unsigned int d = 0;
    for (const auto &c : children)
      d = std::max(d, c.depth());
    return d + 1;
  }
};

/// Aggregated vmpi communication volume (summed over ranks at join).
struct VmpiStats
{
  unsigned long long runs = 0;    ///< completed vmpi::run invocations
  unsigned long long ranks = 0;   ///< total ranks across those runs
  unsigned long long messages = 0;
  unsigned long long bytes = 0;
  unsigned long long barriers = 0;
  unsigned long long allreduces = 0;
};

struct ProfileReport
{
  std::vector<TimerEntry> timers;
  std::map<std::string, long long> counters;
  std::map<std::string, double> gauges;
  VmpiStats vmpi;

  /// Maximum nesting depth of the timer hierarchy.
  unsigned int depth() const
  {
    unsigned int d = 0;
    for (const auto &t : timers)
      d = std::max(d, t.depth());
    return d;
  }

  const TimerEntry *find(const std::string &path) const
  {
    const std::vector<TimerEntry> *level = &timers;
    const TimerEntry *found = nullptr;
    std::size_t pos = 0;
    while (pos <= path.size())
    {
      const std::size_t sep = path.find('/', pos);
      const std::string part =
        path.substr(pos, sep == std::string::npos ? sep : sep - pos);
      found = nullptr;
      for (const auto &e : *level)
        if (e.name == part)
        {
          found = &e;
          break;
        }
      if (!found || sep == std::string::npos)
        return found;
      level = &found->children;
      pos = sep + 1;
    }
    return found;
  }

  void print(std::ostream &out) const
  {
    out << "\nprofile: scoped timers\n";
    out << "  " << std::left << std::setw(44) << "section" << std::right
        << std::setw(9) << "calls" << std::setw(12) << "total [s]"
        << std::setw(12) << "self [s]" << std::setw(12) << "min [s]"
        << std::setw(12) << "max [s]" << '\n';
    out << "  " << std::string(99, '-') << '\n';
    for (const auto &t : timers)
      print_node(out, t, 0);

    if (!counters.empty())
    {
      out << "\nprofile: counters\n";
      for (const auto &[name, value] : counters)
        out << "  " << std::left << std::setw(44) << name << std::right
            << std::setw(16) << value << '\n';
    }

    if (!gauges.empty())
    {
      out << "\nprofile: gauges\n";
      for (const auto &[name, value] : gauges)
        out << "  " << std::left << std::setw(44) << name << std::right
            << std::setw(16) << Table_fmt(value) << '\n';
    }

    if (vmpi.runs > 0)
    {
      out << "\nprofile: vmpi traffic (aggregated over "
          << vmpi.ranks << " ranks in " << vmpi.runs << " runs)\n";
      out << "  messages    " << vmpi.messages << '\n';
      out << "  bytes       " << vmpi.bytes << '\n';
      out << "  barriers    " << vmpi.barriers << '\n';
      out << "  allreduces  " << vmpi.allreduces << '\n';
    }
    out.flush();
  }

  void write_json(std::ostream &out) const
  {
    out << "{\n  \"timers\": [";
    for (std::size_t i = 0; i < timers.size(); ++i)
      write_node(out, timers[i], 2, i + 1 < timers.size());
    out << (timers.empty() ? "" : "\n  ") << "],\n  \"counters\": {";
    std::size_t k = 0;
    for (const auto &[name, value] : counters)
      out << (k++ ? "," : "") << "\n    \"" << name << "\": " << value;
    out << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    std::size_t g = 0;
    for (const auto &[name, value] : gauges)
      out << (g++ ? "," : "") << "\n    \"" << name
          << "\": " << json_num(value);
    out << (gauges.empty() ? "" : "\n  ") << "},\n  \"vmpi\": {"
        << "\"runs\": " << vmpi.runs << ", \"ranks\": " << vmpi.ranks
        << ", \"messages\": " << vmpi.messages << ", \"bytes\": " << vmpi.bytes
        << ", \"barriers\": " << vmpi.barriers
        << ", \"allreduces\": " << vmpi.allreduces << "}\n}\n";
  }

  std::string json() const
  {
    std::ostringstream ss;
    write_json(ss);
    return ss.str();
  }

  /// Parses JSON produced by write_json (subset of JSON: objects, arrays,
  /// strings without escapes, numbers, booleans).
  static ProfileReport parse_json(const std::string &text);

private:
  static void print_node(std::ostream &out, const TimerEntry &t,
                         const unsigned int indent)
  {
    std::string label(2 * indent, ' ');
    label += t.name;
    if (label.size() > 43)
      label = label.substr(0, 40) + "...";
    out << "  " << std::left << std::setw(44) << label << std::right
        << std::setw(9) << t.count << std::setw(12) << Table_fmt(t.total)
        << std::setw(12) << Table_fmt(t.self()) << std::setw(12)
        << Table_fmt(t.count ? t.min : 0.) << std::setw(12)
        << Table_fmt(t.max) << '\n';
    for (const auto &c : t.children)
      print_node(out, c, indent + 1);
  }

  static std::string Table_fmt(const double v)
  {
    std::ostringstream ss;
    ss << std::scientific << std::setprecision(3) << v;
    return ss.str();
  }

  static void write_node(std::ostream &out, const TimerEntry &t,
                         const unsigned int indent, const bool more)
  {
    const std::string pad(2 * indent, ' ');
    out << '\n' << pad << "{\"name\": \"" << t.name << "\", \"count\": "
        << t.count << ", \"total\": " << json_num(t.total)
        << ", \"min\": " << json_num(t.count ? t.min : 0.)
        << ", \"max\": " << json_num(t.max) << ", \"children\": [";
    for (std::size_t i = 0; i < t.children.size(); ++i)
      write_node(out, t.children[i], indent + 1, i + 1 < t.children.size());
    if (!t.children.empty())
      out << '\n' << pad;
    out << "]}" << (more ? "," : "");
  }

  static std::string json_num(const double v)
  {
    std::ostringstream ss;
    ss << std::setprecision(17) << v;
    return ss.str();
  }
};

// ---------------------------------------------------------------------------
// minimal JSON parser (schema-directed, just enough for the profiler output)
// ---------------------------------------------------------------------------

namespace internal
{
class JsonParser
{
public:
  explicit JsonParser(const std::string &text) : s_(text) {}

  void skip_ws()
  {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek()
  {
    skip_ws();
    DGFLOW_ASSERT(pos_ < s_.size(), "unexpected end of JSON");
    return s_[pos_];
  }

  void expect(const char c)
  {
    DGFLOW_ASSERT(peek() == c, "expected '" << c << "' at position " << pos_
                                            << ", got '" << s_[pos_] << "'");
    ++pos_;
  }

  bool consume_if(const char c)
  {
    if (peek() == c)
    {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string()
  {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"')
      out += s_[pos_++];
    expect('"');
    return out;
  }

  double parse_number()
  {
    skip_ws();
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E'))
      ++end;
    DGFLOW_ASSERT(end > pos_, "expected number at position " << pos_);
    const double v = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

private:
  const std::string &s_;
  std::size_t pos_ = 0;
};
} // namespace internal

inline ProfileReport ProfileReport::parse_json(const std::string &text)
{
  using internal::JsonParser;
  JsonParser p(text);

  // recursive timer-node parser
  struct NodeParser
  {
    static TimerEntry parse(JsonParser &p)
    {
      TimerEntry t;
      p.expect('{');
      if (!p.consume_if('}'))
      {
        do
        {
          const std::string key = p.parse_string();
          p.expect(':');
          if (key == "name")
            t.name = p.parse_string();
          else if (key == "count")
            t.count = static_cast<unsigned long>(p.parse_number());
          else if (key == "total")
            t.total = p.parse_number();
          else if (key == "min")
            t.min = p.parse_number();
          else if (key == "max")
            t.max = p.parse_number();
          else if (key == "children")
          {
            p.expect('[');
            if (!p.consume_if(']'))
            {
              do
                t.children.push_back(parse(p));
              while (p.consume_if(','));
              p.expect(']');
            }
          }
          else
            DGFLOW_ASSERT(false, "unknown timer key '" << key << "'");
        } while (p.consume_if(','));
        p.expect('}');
      }
      return t;
    }
  };

  ProfileReport r;
  p.expect('{');
  do
  {
    const std::string key = p.parse_string();
    p.expect(':');
    if (key == "timers")
    {
      p.expect('[');
      if (!p.consume_if(']'))
      {
        do
          r.timers.push_back(NodeParser::parse(p));
        while (p.consume_if(','));
        p.expect(']');
      }
    }
    else if (key == "counters")
    {
      p.expect('{');
      if (!p.consume_if('}'))
      {
        do
        {
          const std::string name = p.parse_string();
          p.expect(':');
          r.counters[name] = static_cast<long long>(p.parse_number());
        } while (p.consume_if(','));
        p.expect('}');
      }
    }
    else if (key == "gauges")
    {
      p.expect('{');
      if (!p.consume_if('}'))
      {
        do
        {
          const std::string name = p.parse_string();
          p.expect(':');
          r.gauges[name] = p.parse_number();
        } while (p.consume_if(','));
        p.expect('}');
      }
    }
    else if (key == "vmpi")
    {
      p.expect('{');
      if (!p.consume_if('}'))
      {
        do
        {
          const std::string name = p.parse_string();
          p.expect(':');
          const auto v = static_cast<unsigned long long>(p.parse_number());
          if (name == "runs")
            r.vmpi.runs = v;
          else if (name == "ranks")
            r.vmpi.ranks = v;
          else if (name == "messages")
            r.vmpi.messages = v;
          else if (name == "bytes")
            r.vmpi.bytes = v;
          else if (name == "barriers")
            r.vmpi.barriers = v;
          else if (name == "allreduces")
            r.vmpi.allreduces = v;
          else
            DGFLOW_ASSERT(false, "unknown vmpi key '" << name << "'");
        } while (p.consume_if(','));
        p.expect('}');
      }
    }
    else
      DGFLOW_ASSERT(false, "unknown report key '" << key << "'");
  } while (p.consume_if(','));
  p.expect('}');
  return r;
}

} // namespace dgflow::prof
