#pragma once

// Continuous Q1 ("CFE") degree-of-freedom handler on the active forest mesh:
// the auxiliary conforming space of the hybrid multigrid scheme (paper
// Section 3.4, Figure 5). Vertices are identified globally via integer
// lattice keys (full-resolution coordinates within each tree, unified across
// coarse faces through the orientation maps); vertices hanging on a 2:1
// interface carry interpolation constraints onto the coarse face/edge dofs.

#include <unordered_map>
#include <vector>

#include "mesh/mesh.h"

namespace dgflow
{
class CFEDofHandler
{
public:
  /// One weighted master entry of a hanging-vertex constraint.
  struct ConstraintEntry
  {
    std::uint32_t dof;
    double weight;
  };

  void reinit(const Mesh &mesh);

  std::size_t n_dofs() const { return n_dofs_; }
  const Mesh &mesh() const { return *mesh_; }

  /// Cell-local dof table: 8 entries per cell (lexicographic corners).
  /// Entries with the constraint bit set refer to constraints() instead of
  /// a global dof.
  static constexpr std::uint32_t constraint_bit = 0x80000000u;

  std::uint32_t cell_entry(const index_t cell, const unsigned int corner) const
  {
    return cell_entries_[8 * std::size_t(cell) + corner];
  }

  static bool is_constrained(const std::uint32_t entry)
  {
    return (entry & constraint_bit) != 0;
  }

  const std::vector<ConstraintEntry> &
  constraint(const std::uint32_t entry) const
  {
    return constraints_[entry & ~constraint_bit];
  }

  std::size_t n_constraints() const { return constraints_.size(); }

  /// Marks all dofs lying on boundary faces whose id satisfies the
  /// predicate; returns one flag per dof.
  template <typename Predicate>
  std::vector<char> boundary_dof_flags(const Predicate &pred) const
  {
    std::vector<char> flags(n_dofs_, 0);
    for (const auto &[dof, id] : boundary_dof_ids_)
      if (pred(id))
        flags[dof] = 1;
    return flags;
  }

private:
  const Mesh *mesh_ = nullptr;
  std::size_t n_dofs_ = 0;
  std::vector<std::uint32_t> cell_entries_;
  std::vector<std::vector<ConstraintEntry>> constraints_;
  /// (dof, boundary id) pairs of dofs on the domain boundary.
  std::vector<std::pair<std::uint32_t, unsigned int>> boundary_dof_ids_;
};

} // namespace dgflow
