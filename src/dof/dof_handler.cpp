#include "dof/dof_handler.h"

#include "common/exceptions.h"

namespace dgflow
{
namespace
{
constexpr unsigned int L = Mesh::max_level;
constexpr std::uint64_t M = 1ull << L; ///< lattice resolution (inclusive)

std::uint64_t pack_key(const index_t tree, const std::uint64_t x,
                       const std::uint64_t y, const std::uint64_t z)
{
  return (std::uint64_t(tree) << 42) | (x << 28) | (y << 14) | z;
}

struct UnionFind
{
  std::vector<std::uint32_t> parent;

  std::uint32_t add()
  {
    parent.push_back(parent.size());
    return parent.size() - 1;
  }

  std::uint32_t find(std::uint32_t i)
  {
    while (parent[i] != i)
    {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  }

  void unite(const std::uint32_t a, const std::uint32_t b)
  {
    const std::uint32_t ra = find(a), rb = find(b);
    if (ra != rb)
      parent[std::max(ra, rb)] = std::min(ra, rb);
  }
};
} // namespace

void CFEDofHandler::reinit(const Mesh &mesh)
{
  mesh_ = &mesh;
  const CoarseMesh &coarse = mesh.coarse();
  const index_t n_cells = mesh.n_active_cells();

  UnionFind uf;
  std::unordered_map<std::uint64_t, std::uint32_t> node_of_key;
  node_of_key.reserve(8 * n_cells);
  auto get_node = [&](const std::uint64_t key) {
    const auto [it, inserted] = node_of_key.emplace(key, 0);
    if (inserted)
      it->second = uf.add();
    return it->second;
  };

  // full-resolution lattice coordinates of a cell corner
  auto corner_coords = [&](const index_t c, const unsigned int corner,
                           index_t &tree, std::array<std::uint64_t, 3> &X) {
    const TreeCoord &tc = mesh.cell(c);
    tree = tc.tree;
    const unsigned int shift = L - tc.level;
    X[0] = (std::uint64_t(tc.x) + (corner & 1)) << shift;
    X[1] = (std::uint64_t(tc.y) + ((corner >> 1) & 1)) << shift;
    X[2] = (std::uint64_t(tc.z) + ((corner >> 2) & 1)) << shift;
  };

  // register all cell corners
  std::vector<std::uint32_t> cell_nodes(8 * std::size_t(n_cells));
  for (index_t c = 0; c < n_cells; ++c)
    for (unsigned int v = 0; v < 8; ++v)
    {
      index_t tree;
      std::array<std::uint64_t, 3> X;
      corner_coords(c, v, tree, X);
      cell_nodes[8 * std::size_t(c) + v] =
        get_node(pack_key(tree, X[0], X[1], X[2]));
    }

  // unify across coarse faces: every corner lying on a tree face is also
  // registered under the neighbor tree's coordinates; union-find closure
  // then identifies vertices shared only across tree edges/corners through
  // the ring of face-connected trees
  for (index_t c = 0; c < n_cells; ++c)
    for (unsigned int v = 0; v < 8; ++v)
    {
      index_t tree;
      std::array<std::uint64_t, 3> X;
      corner_coords(c, v, tree, X);
      const std::uint32_t node = cell_nodes[8 * std::size_t(c) + v];
      for (unsigned int d = 0; d < dim; ++d)
      {
        if (X[d] != 0 && X[d] != M)
          continue;
        const unsigned int s = (X[d] == M) ? 1 : 0;
        const auto &nb = coarse.neighbors[tree][2 * d + s];
        if (nb.cell == invalid_index)
          continue;
        const auto t = face_tangential_dims(d);
        std::uint64_t t0 = X[t[0]], t1 = X[t[1]];
        const unsigned int o = nb.orientation;
        if (o & 1)
          std::swap(t0, t1);
        if (o & 2)
          t0 = M - t0;
        if (o & 4)
          t1 = M - t1;
        const unsigned int db = nb.face_no / 2, sb = nb.face_no % 2;
        const auto tb = face_tangential_dims(db);
        std::array<std::uint64_t, 3> Y;
        Y[db] = sb == 0 ? 0 : M;
        Y[tb[0]] = t0;
        Y[tb[1]] = t1;
        uf.unite(node, get_node(pack_key(nb.cell, Y[0], Y[1], Y[2])));
      }
    }

  // hanging-vertex constraints from the hanging faces
  const auto faces = mesh.build_face_list();
  std::unordered_map<std::uint32_t,
                     std::vector<std::pair<std::uint32_t, double>>>
    hanging;
  for (const auto &f : faces)
  {
    if (!f.is_hanging())
      continue;
    const auto fv_m = face_vertices(f.face_no_m);
    const auto fv_p = face_vertices(f.face_no_p);
    std::array<std::uint32_t, 4> plus_nodes;
    for (unsigned int i = 0; i < 4; ++i)
      plus_nodes[i] = cell_nodes[8 * std::size_t(f.cell_p) + fv_p[i]];

    for (unsigned int c1 = 0; c1 < 2; ++c1)
      for (unsigned int c0 = 0; c0 < 2; ++c0)
      {
        const auto [cp0, cp1] = orient_face_coords(f.orientation, c0, c1, 2);
        const unsigned int rel0 = f.subface0 + cp0; // in {0,1,2}, halves
        const unsigned int rel1 = f.subface1 + cp1;
        if (rel0 % 2 == 0 && rel1 % 2 == 0)
          continue; // coincides with a coarse vertex
        const std::uint32_t node =
          cell_nodes[8 * std::size_t(f.cell_m) + fv_m[c1 * 2 + c0]];
        const std::uint32_t root = uf.find(node);
        if (hanging.count(root))
          continue; // already constrained consistently via another face
        std::vector<std::pair<std::uint32_t, double>> masters;
        for (unsigned int a1 = 0; a1 < 2; ++a1)
          for (unsigned int a0 = 0; a0 < 2; ++a0)
          {
            const double w = (a0 ? rel0 / 2. : 1. - rel0 / 2.) *
                             (a1 ? rel1 / 2. : 1. - rel1 / 2.);
            if (w > 0)
              masters.emplace_back(plus_nodes[a1 * 2 + a0], w);
          }
        hanging[root] = std::move(masters);
      }
  }

  // assign dofs to unconstrained roots in traversal order
  std::unordered_map<std::uint32_t, std::uint32_t> dof_of_root;
  n_dofs_ = 0;
  for (index_t c = 0; c < n_cells; ++c)
    for (unsigned int v = 0; v < 8; ++v)
    {
      const std::uint32_t root = uf.find(cell_nodes[8 * std::size_t(c) + v]);
      if (hanging.count(root) || dof_of_root.count(root))
        continue;
      dof_of_root[root] = n_dofs_++;
    }

  // resolve constraint chains (a master may itself hang on a yet coarser
  // entity; 2:1 balance keeps the chains short)
  auto resolve = [&](const std::uint32_t root) {
    std::vector<std::pair<std::uint32_t, double>> work = hanging.at(root);
    for (unsigned int round = 0; round < 8; ++round)
    {
      bool changed = false;
      std::vector<std::pair<std::uint32_t, double>> next;
      for (const auto &[node, w] : work)
      {
        const std::uint32_t r = uf.find(node);
        const auto it = hanging.find(r);
        if (it == hanging.end())
          next.emplace_back(r, w);
        else
        {
          changed = true;
          for (const auto &[mnode, mw] : it->second)
            next.emplace_back(uf.find(mnode), w * mw);
        }
      }
      work = std::move(next);
      if (!changed)
        break;
      DGFLOW_ASSERT(round < 7, "constraint chain did not resolve");
    }
    std::vector<ConstraintEntry> out;
    for (const auto &[r, w] : work)
    {
      DGFLOW_ASSERT(dof_of_root.count(r) > 0, "master vertex has no dof");
      const std::uint32_t dof = dof_of_root[r];
      bool found = false;
      for (auto &e : out)
        if (e.dof == dof)
        {
          e.weight += w;
          found = true;
        }
      if (!found)
        out.push_back({dof, w});
    }
    return out;
  };

  constraints_.clear();
  std::unordered_map<std::uint32_t, std::uint32_t> constraint_of_root;
  cell_entries_.assign(8 * std::size_t(n_cells), 0);
  for (index_t c = 0; c < n_cells; ++c)
    for (unsigned int v = 0; v < 8; ++v)
    {
      const std::uint32_t root = uf.find(cell_nodes[8 * std::size_t(c) + v]);
      if (hanging.count(root))
      {
        const auto [it, inserted] =
          constraint_of_root.emplace(root, constraints_.size());
        if (inserted)
          constraints_.push_back(resolve(root));
        cell_entries_[8 * std::size_t(c) + v] = it->second | constraint_bit;
      }
      else
        cell_entries_[8 * std::size_t(c) + v] = dof_of_root.at(root);
    }

  // boundary dofs
  boundary_dof_ids_.clear();
  for (const auto &f : faces)
  {
    if (!f.is_boundary())
      continue;
    const auto fv = face_vertices(f.face_no_m);
    for (unsigned int i = 0; i < 4; ++i)
    {
      const std::uint32_t entry =
        cell_entries_[8 * std::size_t(f.cell_m) + fv[i]];
      if (!is_constrained(entry))
        boundary_dof_ids_.emplace_back(entry, f.boundary_id);
    }
  }
}

} // namespace dgflow
