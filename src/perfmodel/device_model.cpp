#include "perfmodel/device_model.h"

namespace dgflow
{
DeviceModel DeviceModel::mi300a()
{
  DeviceModel d;
  d.name = "AMD Instinct MI300A (unified HBM3 APU)";
  d.hbm_bandwidth = 3.7e12; // ~70% of the 5.3 TB/s peak sustains in stream
  d.dp_peak_flops = 6.13e13;
  d.sp_peak_flops = 1.226e14;
  d.host_link_bandwidth = 0.; // unified memory: no host staging
  return d;
}

} // namespace dgflow
