#include "perfmodel/machine.h"

#include <cmath>

namespace dgflow
{
MachineModel MachineModel::local_calibrated(const double measured_bandwidth,
                                            const double clock)
{
  MachineModel m;
  m.name = "local (single core, AVX-512)";
  m.cores_per_node = 1;
  m.clock_hz = clock;
  m.dp_flops_per_cycle_per_core = 32;
  m.memory_bandwidth = measured_bandwidth;
  m.cache_per_core = 2.375e6;
  m.network_latency = 1.8e-6;
  m.network_bandwidth = 1.25e10;
  m.mpi_ranks_per_node = 1;
  return m;
}

} // namespace dgflow
