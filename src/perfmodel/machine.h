#pragma once

// Machine descriptions for the roofline model and the distributed scaling
// simulator. SuperMUC-NG constants follow the paper (2x24-core Xeon 8174 at
// 2.3 GHz, AVX-512) and public system data; the local machine is calibrated
// at benchmark time from measured kernel rates.

#include <algorithm>
#include <cmath>
#include <string>

namespace dgflow
{
struct MachineModel
{
  std::string name;
  int cores_per_node = 1;
  double clock_hz = 2.3e9;
  double dp_flops_per_cycle_per_core = 32; ///< 2 AVX-512 FMA units
  double memory_bandwidth = 2.0e11;        ///< B/s per node (stream-like)
  double cache_per_core = 2.375e6;         ///< L2+L3 bytes per core
  double cache_bandwidth_factor = 4.;      ///< cache vs memory bandwidth
  double network_latency = 1.8e-6;         ///< s per point-to-point message
  double network_bandwidth = 1.25e10;      ///< B/s per node link
  double mpi_ranks_per_node = 48;
  /// fraction of the node's stream bandwidth one core can draw by itself;
  /// the shared memory controllers saturate at ~1/fraction active cores.
  /// 1 (the default) models a node whose single core already saturates the
  /// memory system — every existing single-core calibration is unchanged.
  double single_core_bandwidth_fraction = 1.;

  double peak_dp_flops() const
  {
    return cores_per_node * clock_hz * dp_flops_per_cycle_per_core;
  }

  /// Node bandwidth reachable with @p n_active_cores streaming concurrently:
  /// linear core scaling until the shared controllers saturate at the full
  /// stream rate (the classic shared-bandwidth roofline closure).
  double effective_bandwidth(const double n_active_cores) const
  {
    return memory_bandwidth *
           std::min(1., single_core_bandwidth_fraction *
                          std::max(1., n_active_cores));
  }

  double cache_bytes() const { return cores_per_node * cache_per_core; }

  /// Latency of a tree-based reduction/broadcast across n nodes.
  double allreduce_latency(const double n_nodes) const
  {
    return 2. * network_latency *
           std::max(1., std::log2(std::max(2., n_nodes)));
  }

  static MachineModel supermuc_ng()
  {
    MachineModel m;
    m.name = "SuperMUC-NG (Intel Xeon 8174, 2x24 cores)";
    m.cores_per_node = 48;
    m.clock_hz = 2.3e9;
    m.dp_flops_per_cycle_per_core = 32;
    m.memory_bandwidth = 2.05e11;
    m.cache_per_core = 2.375e6; // 1 MB L2 + 1.375 MB L3 slice
    m.network_latency = 1.8e-6; // OmniPath
    m.network_bandwidth = 1.25e10;
    m.mpi_ranks_per_node = 48;
    // ~13 GB/s single-core triad of the 205 GB/s node: ~16 streaming cores
    // saturate the six memory channels per socket
    m.single_core_bandwidth_fraction = 1. / 16.;
    return m;
  }

  /// Single-core model of the local benchmark machine, calibrated by the
  /// measured saturated matrix-free throughput (DoF/s at degree 3).
  static MachineModel local_calibrated(const double measured_bandwidth,
                                       const double clock_hz);
};

} // namespace dgflow
