#pragma once

// Distributed-execution performance model for the strong/weak scaling
// studies (paper Figs. 8-10). The model composes, per operation:
//   - node-level time: work / min(bandwidth-limited, flop-limited) rate,
//     with a cache-regime boost when the per-node working set fits into the
//     aggregated L2+L3 (the "double bump" of Fig. 8);
//   - nearest-neighbor communication: message latency (overlappable down to
//     a floor) plus surface data volume;
//   - multigrid "vertical" latency: per-level smoother sweeps with shrinking
//     work, level-transfer messages, and the coarse AMG solve modeled as a
//     fixed per-call latency on its own rank subset (the 3.5 ms per call the
//     paper reports, scaled by machine constants).
// The model is calibrated against node-level measurements and the published
// SuperMUC-NG network parameters; EXPERIMENTS.md records both inputs.

#include <vector>

#include "perfmodel/kernel_model.h"
#include "perfmodel/machine.h"

namespace dgflow
{
struct ScalingModel
{
  MachineModel machine = MachineModel::supermuc_ng();
  /// fraction of peak memory bandwidth the kernel reaches in the saturated
  /// regime; the 25% measured-transfer overhead is modeled separately, so
  /// the streaming itself runs at full bandwidth (calibrated so that the
  /// saturated k=3 rate reproduces the paper's 1.4e9 DoF/s per node)
  double bandwidth_efficiency = 1.0;
  /// efficiency penalty of unstructured/adaptive meshes (partially filled
  /// SIMD lanes, differing face orientations; Fig. 8 lung vs bifurcation)
  double mesh_efficiency = 1.0;
  /// messages each rank exchanges per operator evaluation; for a concrete
  /// mesh partition this is neighbors_per_rank (one message per neighbor
  /// per ghost exchange, validated against vmpi traffic counters — see
  /// predict_exchange_traffic in mesh/partition.h), the default models the
  /// paper's large-node-count runs
  double neighbor_messages = 20.;
  /// fraction of communication latency hidden behind computation
  double overlap_fraction = 0.4;
  /// pool threads per rank (shared-memory cell loops): the product with
  /// mpi_ranks_per_node gives the streaming cores per node, which sets the
  /// reachable bandwidth through MachineModel::effective_bandwidth. The
  /// default 1 with a fully populated node reproduces the previous model
  /// exactly (48 ranks already saturate the node's memory system).
  double threads_per_rank = 1.;

  /// Time of one matrix-free operator evaluation (mat-vec) [s].
  double matvec_time(const double n_dofs, const unsigned int degree,
                     const double n_nodes,
                     const unsigned int scalar_bytes = 8) const
  {
    KernelModel kernel{degree, scalar_bytes};
    const double dofs_per_node = n_dofs / n_nodes;

    // node-level rate: bandwidth- or flop-limited
    const double bytes = dofs_per_node * kernel.ideal_bytes_per_dof() * 1.25;
    const double flops = dofs_per_node * kernel.flops_per_dof();

    // cache boost: working set = vectors + metric
    const double working_set =
      dofs_per_node * kernel.ideal_bytes_per_dof();
    const double active_cores =
      std::min(double(machine.cores_per_node),
               machine.mpi_ranks_per_node * threads_per_rank);
    double bw = machine.effective_bandwidth(active_cores) *
                bandwidth_efficiency;
    if (working_set < machine.cache_bytes())
      bw *= machine.cache_bandwidth_factor;
    else if (working_set < 4. * machine.cache_bytes())
      bw *= 1. + (machine.cache_bandwidth_factor - 1.) *
                   (4. - working_set / machine.cache_bytes()) / 3.;

    const double t_mem = bytes / bw;
    const double t_flop = flops / (machine.peak_dp_flops() *
                                   (scalar_bytes == 4 ? 2. : 1.) * 0.6);
    const double t_compute =
      std::max(t_mem, t_flop) / mesh_efficiency;

    // surface communication: latency partially overlapped + volume
    const double n1 = degree + 1.;
    const double surface_dofs =
      6. * std::pow(dofs_per_node, 2. / 3.) * std::cbrt(n1 * n1 * n1) / n1;
    const double t_msg =
      neighbor_messages * machine.network_latency * (1. - overlap_fraction);
    const double t_vol = surface_dofs * scalar_bytes /
                         machine.network_bandwidth;
    return t_compute + t_msg + t_vol;
  }

  double matvec_throughput(const double n_dofs, const unsigned int degree,
                           const double n_nodes) const
  {
    return n_dofs / matvec_time(n_dofs, degree, n_nodes);
  }

  struct MultigridConfig
  {
    unsigned int degree = 3;
    unsigned int smoother_degree = 3; ///< Chebyshev mat-vecs per sweep
    unsigned int n_h_levels = 4;
    unsigned int cg_iterations = 9;
    double amg_latency = 3.5e-3; ///< coarse solve per call (paper Sec. 5.2)
    double min_dofs_per_rank = 200.;
  };

  /// Time of one multigrid-preconditioned CG solve of the pressure Poisson
  /// problem [s].
  double poisson_solve_time(const double n_dofs, const double n_nodes,
                            const MultigridConfig &config) const
  {
    // per V-cycle: pre+post smoothing (2 * smoother_degree mat-vecs) plus
    // one residual mat-vec per level, in single precision; level sizes
    // shrink by ~8 per h-level after the p/c sub-hierarchy (~2.4x, ~1.7x)
    double t_vcycle = 0;
    double level_dofs = n_dofs;
    const double level_factors[3] = {2.37, 1.7, 8.};
    unsigned int level = 0;
    for (unsigned int l = 0; l < 2 + config.n_h_levels; ++l)
    {
      // ranks participating shrink so that at least min_dofs_per_rank remain
      double nodes_active = std::min(
        n_nodes, level_dofs / (config.min_dofs_per_rank *
                               machine.mpi_ranks_per_node));
      nodes_active = std::max(1., nodes_active);
      const unsigned int deg = l == 0 ? config.degree : (l == 1 ? config.degree : 1);
      const double sweeps = 2. * config.smoother_degree + 1.;
      t_vcycle +=
        sweeps * matvec_time(level_dofs, deg, nodes_active, 4);
      // transfer: one message round per level
      t_vcycle += machine.allreduce_latency(nodes_active) +
                  2. * machine.network_latency;
      level_dofs /= level_factors[std::min(l, 2u)];
      ++level;
    }
    t_vcycle += config.amg_latency;

    // CG: V-cycle + one DP mat-vec + dot products (allreduce latency)
    const double t_cg_overhead =
      matvec_time(n_dofs, config.degree, n_nodes, 8) +
      3. * machine.allreduce_latency(n_nodes);
    return config.cg_iterations * (t_vcycle + t_cg_overhead);
  }
};

} // namespace dgflow
