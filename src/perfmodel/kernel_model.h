#pragma once

// Arithmetic and memory-transfer model of the matrix-free DG Laplacian
// evaluation (paper Figure 7): flop counts follow the sum-factorization
// algorithm actually implemented (collocated basis: values in place, three
// collocation-derivative sweeps forward and backward, face interpolation
// from cell data), and the transfer model assumes each solution vector entry
// is read/written once from RAM plus the metric terms at the quadrature
// points - the same assumptions as the paper's "ideal memory transfer"
// roofline; a measured-overhead factor reproduces the 20-30% gap.

namespace dgflow
{
struct KernelModel
{
  unsigned int degree = 3;
  unsigned int scalar_bytes = 8; ///< 8 = double, 4 = float

  unsigned int n1() const { return degree + 1; }

  /// Flops per *cell* for the SIP Laplacian mat-vec (cell + its share of
  /// face work; each interior face is shared by two cells).
  double flops_per_cell() const
  {
    const double n = n1();
    const double n3 = n * n * n, n2 = n * n;
    // cell term: 3 derivative sweeps in, 3 out: each 2*n flops per point;
    // quadrature ops: apply J^{-T} twice (2*15) + JxW ~ 35 flops/point
    const double cell = (12. * n + 35.) * n3;
    // face term per face: interpolate value+normal-derivative planes
    // (2 contractions of 2n flops per plane point) on both sides, flux ~40
    // flops/point, integration mirror; 6 faces, half owned
    const double per_face = 2. * (2. * (2. * n) * n2) * 2. + 40. * n2;
    return cell + 3. * per_face;
  }

  double flops_per_dof() const
  {
    const double n = n1();
    return flops_per_cell() / (n * n * n);
  }

  /// Ideal bytes per dof: src + dst once, cell metric (J^{-T} + JxW per
  /// point), face metric share, index metadata.
  double ideal_bytes_per_dof() const
  {
    const double n = n1();
    const double n3 = n * n * n, n2 = n * n;
    const double vectors = 2. * scalar_bytes; // read src + write dst
    const double cell_metric = 10. * scalar_bytes;
    const double face_metric =
      3. * n2 * (9. * 2. + 3. + 1.) * scalar_bytes / n3;
    const double metadata = 8. / n3 * 4.;
    return vectors + cell_metric + face_metric + metadata;
  }

  /// Measured transfer exceeds the ideal model by 20-30% (paper Fig. 7).
  double measured_bytes_per_dof(const double overhead = 0.25) const
  {
    return ideal_bytes_per_dof() * (1. + overhead);
  }

  double arithmetic_intensity_ideal() const
  {
    return flops_per_dof() / ideal_bytes_per_dof();
  }

  double arithmetic_intensity_measured(const double overhead = 0.25) const
  {
    return flops_per_dof() / measured_bytes_per_dof(overhead);
  }
};

} // namespace dgflow
