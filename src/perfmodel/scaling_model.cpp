#include "perfmodel/scaling_model.h"

// ScalingModel is header-only; this translation unit anchors the library.
