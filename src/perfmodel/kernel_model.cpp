#include "perfmodel/kernel_model.h"

// KernelModel is header-only; this translation unit anchors the library.
