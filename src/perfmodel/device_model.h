#pragma once

// Device (APU/GPU) description for the roofline model: projects what the
// SoA-backend kernels would sustain on an accelerator with HBM-class
// bandwidth. Constants follow the GALAEXI port of a high-order DG solver to
// AMD MI300A APUs (arXiv 2606.18927) and public hardware data. Like the
// sum-factorization operators on CPUs, the DG mat-vec stays strongly
// bandwidth-bound on devices, so the HBM stream roof - not the enormous
// vector peak - governs the projected throughput.

#include <algorithm>
#include <string>

namespace dgflow
{
struct DeviceModel
{
  std::string name;
  double hbm_bandwidth = 3.0e12;   ///< B/s sustained HBM stream
  double dp_peak_flops = 5.0e13;   ///< FP64 vector peak, flop/s
  double sp_peak_flops = 1.0e14;   ///< FP32 vector peak, flop/s
  double host_link_bandwidth = 1e11; ///< B/s host<->device (0 = unified)

  /// Attainable flop/s at arithmetic intensity @p flops_per_byte (classic
  /// roofline closure against the HBM stream roof).
  double roof(const double flops_per_byte) const
  {
    return std::min(dp_peak_flops, hbm_bandwidth * flops_per_byte);
  }

  /// DoF/s of a kernel streaming @p bytes_per_dof and executing
  /// @p flops_per_dof, whichever roof binds.
  double projected_dofs_per_s(const double bytes_per_dof,
                              const double flops_per_dof) const
  {
    const double by_bandwidth = hbm_bandwidth / bytes_per_dof;
    const double by_compute = dp_peak_flops / flops_per_dof;
    return std::min(by_bandwidth, by_compute);
  }

  /// Projected speedup over a host machine sustaining
  /// @p host_bandwidth B/s, for a bandwidth-bound kernel (the regime every
  /// sum-factorization operator of this code sits in, cf. Figure 7).
  double projected_speedup_vs_host(const double host_bandwidth) const
  {
    return host_bandwidth > 0. ? hbm_bandwidth / host_bandwidth : 0.;
  }

  /// AMD Instinct MI300A APU (the GALAEXI target): 128 GB unified HBM3 at
  /// 5.3 TB/s peak - ~3.7 TB/s sustained stream - 61.3 TFLOP/s FP64 vector
  /// peak, no host link (unified memory).
  static DeviceModel mi300a();
};

} // namespace dgflow
