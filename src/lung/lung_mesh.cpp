#include "lung/lung_mesh.h"

#include <cmath>

#include "common/exceptions.h"

namespace dgflow
{
namespace
{
Point rotate(const Point &v, const Point &axis, const double angle)
{
  const double c = std::cos(angle), s = std::sin(angle);
  return c * v + s * cross(axis, v) + (1. - c) * dot(axis, v) * axis;
}

/// Per-airway sweeping data.
struct TubeGeom
{
  Point c0, c1;   ///< meshing centerline (c0 may sit on the parent wall)
  Point dir;      ///< normalized axis
  Point e1_in;    ///< inlet cross-section frame (perpendicular to dir)
  double twist;   ///< rotation towards the tree's outlet frame
  double radius;
  unsigned int n_ax;
  /// axial parameter of section 1; side branches push their first disc
  /// section clear of the curved parent wall patch
  double first_section_w = 0.;

  double section_w(const unsigned int s) const
  {
    if (s == 0)
      return 0.;
    if (first_section_w <= 0.)
      return double(s) / n_ax;
    return first_section_w +
           (1. - first_section_w) * double(s - 1) / (n_ax - 1);
  }
};

/// Elliptical square-to-disc map: [-1,1]^2 -> unit disc.
void square_to_disc(const double u, const double v, double &x, double &y)
{
  x = u * std::sqrt(1. - 0.5 * v * v);
  y = v * std::sqrt(1. - 0.5 * u * u);
}

Point section_point(const TubeGeom &t, const unsigned int s,
                    const unsigned int i, const unsigned int j)
{
  const double w = t.section_w(s);
  const Point center = t.c0 + w * (t.c1 - t.c0);
  const Point e1 = rotate(t.e1_in, t.dir, t.twist * w);
  const Point e2 = cross(t.dir, e1);
  const double u = 2. * i / 3. - 1., v = 2. * j / 3. - 1.;
  double x, y;
  square_to_disc(u, v, x, y);
  return center + t.radius * (x * e1 + y * e2);
}

double signed_angle(const Point &from, const Point &to, const Point &axis)
{
  return std::atan2(dot(cross(from, to), axis), dot(from, to));
}

/// The square 3x3 cross-section lattice is invariant under quarter turns:
/// reduce the tube twist to [-45 deg, 45 deg].
double reduce_twist(const double twist)
{
  double t = twist;
  while (t > M_PI / 4.)
    t -= M_PI / 2.;
  while (t < -M_PI / 4.)
    t += M_PI / 2.;
  return t;
}

Point project_perp(const Point &v, const Point &dir)
{
  Point p = v - dot(v, dir) * dir;
  const double n = norm(p);
  DGFLOW_ASSERT(n > 1e-10, "degenerate frame projection");
  return (1. / n) * p;
}
} // namespace

LungMesh build_lung_mesh(const AirwayTree &tree, const LungMeshParameters &prm)
{
  const auto &airways = tree.airways();
  LungMesh mesh;

  std::vector<TubeGeom> tubes(airways.size());
  // vertex grids: grid[a][(s * 4 + j) * 4 + i]
  std::vector<std::vector<index_t>> grids(airways.size());

  auto axial_cells = [&](const Airway &a) {
    const unsigned int min_n = a.terminal()
                                 ? prm.min_axial_cells_terminal
                                 : prm.min_axial_cells_branching;
    const double target = a.length() /
                          (prm.axial_spacing_factor * a.diameter);
    return std::max(min_n, static_cast<unsigned int>(std::lround(target)));
  };

  auto add_vertex = [&](const Point &p) {
    mesh.coarse.vertices.push_back(p);
    return static_cast<index_t>(mesh.coarse.vertices.size() - 1);
  };

  // process in tree order: parents precede children
  for (unsigned int a = 0; a < airways.size(); ++a)
  {
    const Airway &aw = airways[a];
    TubeGeom &t = tubes[a];
    t.radius = aw.diameter / 2.;
    t.n_ax = axial_cells(aw);
    grids[a].assign(std::size_t(t.n_ax + 1) * 16, invalid_index);

    const bool is_minor =
      aw.parent >= 0 && airways[aw.parent].child_minor == int(a);

    if (aw.parent < 0)
    {
      // trachea
      t.c0 = aw.start;
      t.c1 = aw.end;
      t.dir = normalize(t.c1 - t.c0);
      t.e1_in = project_perp(aw.e1, t.dir);
      t.twist = 0.;
      for (unsigned int s = 0; s <= t.n_ax; ++s)
        for (unsigned int j = 0; j < 4; ++j)
          for (unsigned int i = 0; i < 4; ++i)
            grids[a][(s * 4 + j) * 4 + i] = add_vertex(section_point(t, s, i, j));
    }
    else if (!is_minor)
    {
      // major child: inherits the parent's outlet section
      const TubeGeom &pt = tubes[aw.parent];
      t.c0 = pt.c1;
      t.c1 = aw.end;
      t.dir = normalize(t.c1 - t.c0);
      // parallel-transport the parent's outlet frame, then twist to the
      // tree's designated outlet frame along the tube
      const Point parent_e1_out = rotate(pt.e1_in, pt.dir, pt.twist);
      t.e1_in = project_perp(parent_e1_out, t.dir);
      t.twist = reduce_twist(
        signed_angle(t.e1_in, project_perp(aw.e1, t.dir), t.dir));

      for (unsigned int j = 0; j < 4; ++j)
        for (unsigned int i = 0; i < 4; ++i)
          grids[a][(0 * 4 + j) * 4 + i] =
            grids[aw.parent][(pt.n_ax * 4 + j) * 4 + i];
      for (unsigned int s = 1; s <= t.n_ax; ++s)
        for (unsigned int j = 0; j < 4; ++j)
          for (unsigned int i = 0; i < 4; ++i)
            grids[a][(s * 4 + j) * 4 + i] = add_vertex(section_point(t, s, i, j));
    }
    else
    {
      // minor child: the inlet lattice is a 4x4 wall patch of the parent
      // tube over axial cells [s0, s0+3]. The wall side (+-e1, +-e2 of the
      // parent frame) is chosen to align best with the branch direction;
      // the child-to-patch index map of each side is right-handed.
      const TubeGeom &pt = tubes[aw.parent];
      DGFLOW_ASSERT(pt.n_ax >= 4, "parent tube too short for a side branch");
      const unsigned int s0 = pt.n_ax - 4;

      const Point parent_e1_out = rotate(pt.e1_in, pt.dir, pt.twist);
      const Point parent_e2_out = cross(pt.dir, parent_e1_out);
      const Point branch_dir = normalize(aw.end - aw.start);
      const double a1 = dot(branch_dir, parent_e1_out);
      const double a2 = dot(branch_dir, parent_e2_out);
      // side 0: +e1 (i=3), 1: -e1 (i=0), 2: +e2 (j=3), 3: -e2 (j=0)
      const unsigned int side =
        std::abs(a1) >= std::abs(a2) ? (a1 >= 0 ? 0 : 1) : (a2 >= 0 ? 2 : 3);

      // parent lattice index of patch point (ic, jc), right-handed per side
      auto patch_index = [&](const unsigned int ic, const unsigned int jc) {
        switch (side)
        {
          case 0: // i = 3: (i_c -> +e2, j_c -> axis)
            return ((s0 + jc) * 4 + ic) * 4 + 3;
          case 1: // i = 0: (i_c -> -e2, j_c -> axis)
            return ((s0 + jc) * 4 + (3 - ic)) * 4 + 0;
          case 2: // j = 3: (i_c -> axis, j_c -> +e1)
            return ((s0 + ic) * 4 + 3) * 4 + jc;
          default: // j = 0: (i_c -> +e1, j_c -> axis)
            return ((s0 + jc) * 4 + 0) * 4 + ic;
        }
      };
      // direction of the child's i_c axis in the parent frame
      const Point ic_dir = side == 0   ? parent_e2_out
                           : side == 1 ? -parent_e2_out
                           : side == 2 ? pt.dir
                                       : parent_e1_out;

      Point patch_center;
      for (unsigned int jc = 0; jc < 4; ++jc)
        for (unsigned int ic = 0; ic < 4; ++ic)
        {
          const index_t vid = grids[aw.parent][patch_index(ic, jc)];
          DGFLOW_ASSERT(vid != invalid_index, "patch vertex missing");
          patch_center += 0.0625 * mesh.coarse.vertices[vid];
        }
      t.c0 = patch_center;
      t.c1 = aw.end;
      t.dir = normalize(t.c1 - t.c0);
      t.e1_in = project_perp(ic_dir, t.dir);
      t.twist = reduce_twist(
        signed_angle(t.e1_in, project_perp(aw.e1, t.dir), t.dir));

      for (unsigned int jc = 0; jc < 4; ++jc)
        for (unsigned int ic = 0; ic < 4; ++ic)
          grids[a][(0 * 4 + jc) * 4 + ic] =
            grids[aw.parent][patch_index(ic, jc)];

      // choose the first disc section's axial offset adaptively: branches
      // leave the parent wall at a shallow angle, so the first section must
      // move far enough that every junction-layer cell stays right-handed
      const double L = norm(t.c1 - t.c0);
      const double base = 1.2 * t.radius / L;
      t.first_section_w = std::min(0.45, base);
      for (int attempt = 0; attempt < 6; ++attempt)
      {
        bool positive = true;
        for (unsigned int j = 0; j < 3 && positive; ++j)
          for (unsigned int i = 0; i < 3 && positive; ++i)
          {
            Point corners[8];
            for (unsigned int v = 0; v < 8; ++v)
            {
              const unsigned int di = v & 1, dj = (v >> 1) & 1,
                                 ds = (v >> 2) & 1;
              corners[v] =
                ds == 0
                  ? mesh.coarse.vertices[grids[a][((j + dj) * 4 + (i + di))]]
                  : section_point(t, 1, i + di, j + dj);
            }
            // corner Jacobians of the trilinear cell (the extremal values)
            const double scale = t.radius / 1.5;
            for (unsigned int v = 0; v < 8 && positive; ++v)
            {
              Tensor2<double> J;
              for (unsigned int d = 0; d < 3; ++d)
              {
                const unsigned int step = 1u << d;
                const Point e =
                  corners[v | step] - corners[v & ~step];
                for (unsigned int r = 0; r < 3; ++r)
                  J[r][d] = e[r];
              }
              if (determinant(J) < 0.01 * scale * scale * scale)
                positive = false;
            }
          }
        if (positive)
          break;
        t.first_section_w = std::min(0.75, t.first_section_w * 1.35 + 0.03);
      }

      for (unsigned int s = 1; s <= t.n_ax; ++s)
        for (unsigned int j = 0; j < 4; ++j)
          for (unsigned int i = 0; i < 4; ++i)
            grids[a][(s * 4 + j) * 4 + i] = add_vertex(section_point(t, s, i, j));
    }
  }

  // cells and boundary ids
  const auto terminals = tree.terminal_airways();
  mesh.outlet_ids.resize(terminals.size());
  std::vector<unsigned int> outlet_of_airway(airways.size(), 0);
  for (unsigned int ti = 0; ti < terminals.size(); ++ti)
  {
    mesh.outlet_ids[ti] = LungMesh::first_outlet_id + ti;
    outlet_of_airway[terminals[ti]] = mesh.outlet_ids[ti];
  }

  for (unsigned int a = 0; a < airways.size(); ++a)
  {
    const Airway &aw = airways[a];
    const TubeGeom &t = tubes[a];
    for (unsigned int s = 0; s < t.n_ax; ++s)
      for (unsigned int j = 0; j < 3; ++j)
        for (unsigned int i = 0; i < 3; ++i)
        {
          CoarseMesh::Cell cell;
          for (unsigned int v = 0; v < 8; ++v)
          {
            const unsigned int di = v & 1, dj = (v >> 1) & 1, ds = (v >> 2) & 1;
            cell.vertices[v] = grids[a][((s + ds) * 4 + (j + dj)) * 4 + (i + di)];
            DGFLOW_ASSERT(cell.vertices[v] != invalid_index,
                          "unassigned lung mesh vertex");
          }
          mesh.coarse.cells.push_back(cell);
          std::array<unsigned int, 6> bids{};
          bids.fill(LungMesh::wall_id);
          if (a == 0 && s == 0)
            bids[4] = LungMesh::inlet_id;
          if (aw.terminal() && s == t.n_ax - 1)
            bids[5] = outlet_of_airway[a];
          mesh.coarse.boundary_ids.push_back(bids);
          mesh.cell_airway.push_back(a);
          mesh.cell_generation.push_back(aw.generation);
        }
  }

  mesh.coarse.compute_connectivity();
  return mesh;
}

} // namespace dgflow
