#pragma once

// The full lung airflow application (paper Section 5.3): generates the
// morphometric airway tree and hex mesh, wires the incompressible flow
// solver's pressure boundaries to the ventilator (tracheal inlet) and the
// terminal RC compartments (outlets), and advances the explicit 0D/3D
// coupling time step by time step. The Navier-Stokes solver works with
// kinematic pressure p/rho; the driver converts the ventilation model's
// Pa values accordingly.

#include "incns/solver.h"
#include "lung/lung_mesh.h"
#include "lung/ventilation.h"

namespace dgflow
{
struct LungApplicationParameters
{
  unsigned int generations = 3;
  unsigned int degree = 3;
  /// CFL constant; the paper runs CFL = 0.4 with ExaDG's element-size
  /// convention, which corresponds to a smaller constant with the minimal
  /// directional width used here on the sheared junction cells
  double cfl = 0.2;
  double rel_tol = 1e-3; ///< paper's application-run tolerance
  /// upper bound on the CFL step; also the startup step from rest, before
  /// the pressure impulse has created a velocity scale
  double max_dt = 2e-4;
  /// divergence/continuity penalty strength (zeta of Fehn et al. 2018)
  double penalty_zeta = 1.;
  /// penalty velocity floor in units of h/dt (see INSSolver::Parameters)
  double penalty_floor = 0.05;
  /// extra uniform refinements (paper's level l)
  unsigned int global_refinements = 0;
  /// refine airway generations <= this value once (255 = off)
  unsigned int refine_upto_generation = 255;
  LungModelParameters lung;
  VentilatorSettings ventilator;
  AirwayTreeParameters tree;
  LungMeshParameters meshing;
};

class LungApplication
{
public:
  using Solver = INSSolver<double>;

  explicit LungApplication(const LungApplicationParameters &prm) : prm_(prm)
  {
    prm_.tree.n_generations = prm.generations;
    tree_ = AirwayTree::generate(prm_.tree);
    lung_mesh_ = build_lung_mesh(tree_, prm_.meshing);
    mesh_ = std::make_unique<Mesh>(lung_mesh_.coarse);
    if (prm_.refine_upto_generation != 255)
      mesh_->refine(
        lung_mesh_.refine_flags_upto_generation(prm_.refine_upto_generation));
    if (prm_.global_refinements > 0)
      mesh_->refine_uniform(prm_.global_refinements);
    geometry_ = std::make_unique<TrilinearGeometry>(mesh_->coarse());
    ventilation_ =
      std::make_unique<VentilationModel>(tree_, prm_.lung, prm_.ventilator);

    const double rho = prm_.lung.air_density;
    FlowBoundaryMap bc;
    {
      FlowBoundary wall;
      wall.kind = FlowBoundary::Kind::velocity_dirichlet;
      wall.velocity = [](const Point &, double) { return Tensor1<double>(); };
      bc[LungMesh::wall_id] = wall;

      FlowBoundary inlet;
      inlet.kind = FlowBoundary::Kind::pressure;
      inlet.pressure = [this, rho](const Point &, double t) {
        return ventilation_->inlet_pressure(t) / rho;
      };
      bc[LungMesh::inlet_id] = inlet;

      for (unsigned int o = 0; o < ventilation_->n_outlets(); ++o)
      {
        FlowBoundary outlet;
        outlet.kind = FlowBoundary::Kind::pressure;
        outlet.pressure = [this, rho, o](const Point &, double) {
          return ventilation_->outlet_pressure(o) / rho;
        };
        bc[lung_mesh_.outlet_ids[o]] = outlet;
      }
    }

    Solver::Parameters sp;
    sp.degree = prm_.degree;
    sp.viscosity = prm_.lung.kinematic_viscosity;
    sp.cfl = prm_.cfl;
    sp.max_dt = prm_.max_dt;
    sp.rel_tol_pressure = prm_.rel_tol;
    sp.rel_tol_viscous = prm_.rel_tol;
    sp.rel_tol_projection = prm_.rel_tol;
    sp.penalty_zeta = prm_.penalty_zeta;
    sp.penalty_floor = prm_.penalty_floor;
    sp.rotational_pressure_bc = false; // see Parameters doc
    sp.geometry_degree = 1; // lung geometry is vertex-based
    solver_.setup(*mesh_, *geometry_, bc, sp);
    solver_.set_initial_condition(
      [](const Point &) { return Tensor1<double>(); });
    outlet_fluxes_.assign(ventilation_->n_outlets(), 0.);
  }

  /// One coupled 0D/3D time step; returns the flow solver's step record.
  Solver::StepInfo advance()
  {
    const auto info = solver_.advance();
    for (unsigned int o = 0; o < ventilation_->n_outlets(); ++o)
      outlet_fluxes_[o] = solver_.boundary_flux(lung_mesh_.outlet_ids[o]);
    const double inflow = -solver_.boundary_flux(LungMesh::inlet_id);
    ventilation_->update(info.time, info.dt, inflow, outlet_fluxes_);
    maybe_checkpoint();
    return info;
  }

  /// Estimated steps per breathing cycle from the current CFL step.
  double estimated_steps_per_cycle() const
  {
    return prm_.ventilator.period / solver_.compute_time_step();
  }

  /// Atomically writes the coupled 0D/3D state (flow solver, ventilation
  /// model and the outlet-flux coupling buffer) to one checkpoint file.
  void save_checkpoint(const std::string &path) const
  {
    resilience::CheckpointWriter writer(path);
    solver_.serialize(writer);
    ventilation_->save_state(writer);
    writer.write_u64(outlet_fluxes_.size());
    for (const double q : outlet_fluxes_)
      writer.write_double(q);
    writer.close();
  }

  /// Restores a save_checkpoint() file into an application constructed with
  /// the same parameters; the resumed run continues bit-for-bit.
  void load_checkpoint(const std::string &path)
  {
    resilience::CheckpointReader reader(path);
    solver_.deserialize(reader);
    ventilation_->load_state(reader);
    const std::uint64_t n = reader.read_u64();
    DGFLOW_ASSERT(n == outlet_fluxes_.size(),
                  "checkpoint has " << n << " outlet fluxes, application has "
                                    << outlet_fluxes_.size());
    for (double &q : outlet_fluxes_)
      q = reader.read_double();
    DGFLOW_ASSERT(reader.exhausted(),
                  "trailing bytes after the application checkpoint records");
  }

  /// Enables asynchronous multi-generation checkpointing of the *coupled*
  /// state (flow solver + ventilation model + flux coupling buffer) into a
  /// generation ring rooted at @p root. advance() then snapshots whenever
  /// the failure-rate-driven scheduler says a checkpoint is due — the
  /// Young/Daly optimum from measured checkpoint cost and observed MTBF —
  /// and the encoded image is written by the background thread, so the
  /// coupled step never blocks on disk.
  void enable_checkpointing(
    const std::string &root,
    const resilience::AsyncCheckpointer::Options &options = {},
    const resilience::CheckpointScheduler::Options &schedule = {})
  {
    checkpointer_ =
      std::make_unique<resilience::AsyncCheckpointer>(root, options);
    ckpt_scheduler_ =
      std::make_unique<resilience::CheckpointScheduler>(schedule);
    ckpt_clock_.restart();
  }

  /// Takes a checkpoint if checkpointing is enabled and one is due. Write
  /// failures never propagate into the solve (see AsyncCheckpointer).
  void maybe_checkpoint()
  {
    if (checkpointer_ == nullptr)
      return;
    const double now = ckpt_clock_.seconds();
    if (!ckpt_scheduler_->should_checkpoint(now))
    {
      ckpt_scheduler_->observe(now);
      return;
    }
    Timer stall;
    resilience::CheckpointWriter writer("app.ckpt"); // encode-only: no disk
    solver_.serialize(writer);
    ventilation_->save_state(writer);
    writer.write_u64(outlet_fluxes_.size());
    for (const double q : outlet_fluxes_)
      writer.write_double(q);
    std::vector<resilience::AsyncCheckpointer::NamedImage> images;
    images.push_back({"app.ckpt", writer.encode()});
    checkpointer_->submit(std::move(images));
    DGFLOW_PROF_COUNT("ckpt_writes", 1);
    const double cost = stall.seconds();
    DGFLOW_PROF_GAUGE("ckpt_stall_seconds", cost);
    ckpt_scheduler_->record_checkpoint_cost(cost);
    ckpt_scheduler_->checkpoint_taken(ckpt_clock_.seconds());
  }

  /// Restores the coupled state from the newest generation whose files all
  /// verify (falling back generation by generation); false when none does.
  bool restore_latest()
  {
    DGFLOW_ASSERT(checkpointer_ != nullptr, "checkpointing is not enabled");
    checkpointer_->drain();
    const auto generation =
      checkpointer_->store().newest_valid_generation();
    if (!generation)
      return false;
    load_checkpoint(
      checkpointer_->store().generation_directory(*generation) +
      "/app.ckpt");
    return true;
  }

  resilience::AsyncCheckpointer *checkpointer() { return checkpointer_.get(); }
  resilience::CheckpointScheduler *checkpoint_scheduler()
  {
    return ckpt_scheduler_.get();
  }

  Solver &solver() { return solver_; }
  const Mesh &mesh() const { return *mesh_; }
  const AirwayTree &tree() const { return tree_; }
  const LungMesh &lung_mesh() const { return lung_mesh_; }
  VentilationModel &ventilation() { return *ventilation_; }

private:
  LungApplicationParameters prm_;
  AirwayTree tree_;
  LungMesh lung_mesh_;
  std::unique_ptr<Mesh> mesh_;
  std::unique_ptr<TrilinearGeometry> geometry_;
  std::unique_ptr<VentilationModel> ventilation_;
  Solver solver_;
  std::vector<double> outlet_fluxes_;

  // asynchronous checkpointing (enable_checkpointing; owned)
  std::unique_ptr<resilience::AsyncCheckpointer> checkpointer_;
  std::unique_ptr<resilience::CheckpointScheduler> ckpt_scheduler_;
  Timer ckpt_clock_;
};

} // namespace dgflow
