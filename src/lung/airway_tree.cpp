#include "lung/airway_tree.h"

#include <cmath>
#include <random>

#include "common/exceptions.h"

namespace dgflow
{
namespace
{
/// Rotates v around unit axis by angle (Rodrigues).
Point rotate(const Point &v, const Point &axis, const double angle)
{
  const double c = std::cos(angle), s = std::sin(angle);
  return c * v + s * cross(axis, v) + (1. - c) * dot(axis, v) * axis;
}
} // namespace

AirwayTree AirwayTree::generate(const AirwayTreeParameters &prm)
{
  DGFLOW_ASSERT(prm.n_generations >= 1, "need at least one generation");
  AirwayTree tree;
  tree.prm_ = prm;
  std::mt19937 rng(prm.seed);
  std::uniform_real_distribution<double> jit(-prm.jitter, prm.jitter);

  // trachea along -z, frame aligned with x/y
  Airway trachea;
  trachea.start = Point(0, 0, 0);
  trachea.end = Point(0, 0, -prm.trachea_length);
  trachea.diameter = prm.trachea_diameter;
  trachea.generation = 0;
  trachea.e1 = Point(1, 0, 0);
  trachea.e2 = Point(0, 1, 0);
  tree.airways_.push_back(trachea);

  // breadth-first recursive growth
  for (std::size_t i = 0; i < tree.airways_.size(); ++i)
  {
    // airways_ may reallocate below; copy the parent data first
    const Airway parent = tree.airways_[i];
    if (parent.generation >= prm.n_generations)
      continue;

    const Point dir = parent.direction();
    // branching plane spanned by dir and e1 (the mesher glues the minor
    // child on the +e1 side of the parent tube)
    const Point axis = normalize(cross(dir, parent.e1));

    const double child_d = parent.diameter * prm.diameter_ratio;

    auto make_child = [&](const double angle, const bool minor) {
      Airway child;
      child.parent = static_cast<int>(i);
      child.generation = parent.generation + 1;
      child.diameter = child_d;
      const double child_l =
        prm.length_to_diameter * child_d * (1. + jit(rng));
      const Point cdir =
        normalize(rotate(dir, axis, minor ? angle : -angle));
      child.start = parent.end;
      child.end = parent.end + child_l * cdir;
      // outlet frame: parallel-transport e1 onto the new direction, then
      // spin the branching plane for the next generation
      Point e1 = parent.e1 - dot(parent.e1, cdir) * cdir;
      if (norm(e1) < 1e-8)
        e1 = parent.e2;
      e1 = normalize(e1);
      const double spin = prm.plane_rotation * (1. + jit(rng));
      e1 = rotate(e1, cdir, spin);
      child.e1 = e1;
      child.e2 = normalize(cross(cdir, e1));
      return child;
    };

    const double a_jit = 1. + jit(rng);
    const Airway major = make_child(prm.branch_angle_major * a_jit, false);
    const Airway minor = make_child(prm.branch_angle_minor * a_jit, true);

    tree.airways_[i].child_major = static_cast<int>(tree.airways_.size());
    tree.airways_.push_back(major);
    tree.airways_[i].child_minor = static_cast<int>(tree.airways_.size());
    tree.airways_.push_back(minor);
  }
  return tree;
}

unsigned int AirwayTree::n_terminal() const
{
  unsigned int n = 0;
  for (const auto &a : airways_)
    n += a.terminal() ? 1 : 0;
  return n;
}

std::vector<unsigned int> AirwayTree::terminal_airways() const
{
  std::vector<unsigned int> t;
  for (unsigned int i = 0; i < airways_.size(); ++i)
    if (airways_[i].terminal())
      t.push_back(i);
  return t;
}

double AirwayTree::airway_resistance(const double mu, const double length,
                                     const double diameter)
{
  const double r = diameter / 2.;
  return 8. * mu * length / (M_PI * r * r * r * r);
}

double AirwayTree::subtree_resistance(const double mu,
                                      const unsigned int generation,
                                      const unsigned int last_generation) const
{
  // symmetric morphometric continuation: each deeper generation doubles the
  // number of parallel branches and scales dimensions homothetically
  double R = 0;
  double d = prm_.trachea_diameter *
             std::pow(prm_.diameter_ratio, double(generation));
  double parallel = 1.;
  for (unsigned int g = generation; g <= last_generation; ++g)
  {
    const double l =
      g == 0 ? prm_.trachea_length : prm_.length_to_diameter * d;
    R += airway_resistance(mu, l, d) / parallel;
    d *= prm_.diameter_ratio;
    parallel *= 2.;
  }
  return R;
}

double AirwayTree::total_resistance(const double mu,
                                    const unsigned int last_generation) const
{
  return subtree_resistance(mu, 0, last_generation);
}

} // namespace dgflow
