#pragma once

// Hex-only lung mesh generator (paper Section 3.3, Figure 4): each airway is
// a swept square-section tube of 3x3 cells per cross section (square-to-disc
// mapped) with axial subdivisions keeping the cell aspect ratio near one.
// Bifurcations use a conforming side-branch template: the major child
// continues the parent tube (sharing the outlet section), the minor child
// glues its 4x4 inlet lattice onto a 3x3-face patch of the parent wall. The
// resulting mesh is watertight and hex-only for arbitrary binary trees; the
// junction cells are deformed, reproducing the iteration-count growth the
// paper reports for the lung geometry. See DESIGN.md for the substitution
// rationale versus the paper's merged-cylinder mesher.

#include "lung/airway_tree.h"
#include "mesh/mesh.h"

namespace dgflow
{
struct LungMesh
{
  static constexpr unsigned int wall_id = 0;
  static constexpr unsigned int inlet_id = 1;
  static constexpr unsigned int first_outlet_id = 2;

  CoarseMesh coarse;
  /// boundary id of each terminal airway's outlet (aligned with
  /// AirwayTree::terminal_airways()).
  std::vector<unsigned int> outlet_ids;
  /// airway index and generation of every coarse cell
  std::vector<unsigned int> cell_airway;
  std::vector<unsigned int> cell_generation;

  /// Refinement flags marking all cells of generations <= g (for the local
  /// refinement of the upper airways).
  std::vector<bool> refine_flags_upto_generation(const unsigned int g) const
  {
    std::vector<bool> flags(cell_generation.size());
    for (std::size_t i = 0; i < flags.size(); ++i)
      flags[i] = cell_generation[i] <= g;
    return flags;
  }
};

struct LungMeshParameters
{
  /// target axial cell length in units of the local diameter
  double axial_spacing_factor = 1. / 3.;
  /// axial cells of non-terminal airways are at least this many (the
  /// side-branch patch occupies three of them plus clearance)
  unsigned int min_axial_cells_branching = 5;
  unsigned int min_axial_cells_terminal = 3;
};

LungMesh build_lung_mesh(const AirwayTree &tree,
                         const LungMeshParameters &prm = LungMeshParameters());

} // namespace dgflow
