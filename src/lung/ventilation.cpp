#include "lung/ventilation.h"

#include <cmath>

#include "common/exceptions.h"

namespace dgflow
{
VentilationModel::VentilationModel(const AirwayTree &tree,
                                   const LungModelParameters &lung,
                                   const VentilatorSettings &vent)
  : vent_(vent)
{
  const auto terminals = tree.terminal_airways();
  const double mu = lung.air_density * lung.kinematic_viscosity;
  const unsigned int n = terminals.size();
  DGFLOW_ASSERT(n > 0, "tree has no terminal airways");

  // per-outlet tissue resistance: the parallel combination over all outlets
  // reproduces the prescribed tissue share of the total resistance
  const double tissue_per_outlet =
    lung.tissue_fraction * lung.total_resistance * n;

  outlets_.resize(n);
  for (unsigned int o = 0; o < n; ++o)
  {
    const auto &aw = tree.airways()[terminals[o]];
    outlets_[o].R =
      tree.subtree_resistance(mu, aw.generation + 1) + tissue_per_outlet;
    outlets_[o].C = lung.total_compliance / n;
  }
}

double VentilationModel::ventilator_pressure(const double t) const
{
  const double phase = std::fmod(t, vent_.period);
  const double t_in = vent_.inhale_fraction * vent_.period;
  const double tau = vent_.rise_time;
  auto ramp = [tau](const double x) {
    if (x <= 0)
      return 0.;
    if (x >= tau)
      return 1.;
    return 0.5 * (1. - std::cos(M_PI * x / tau));
  };
  // rise at inhale onset, fall at exhale onset
  const double level = ramp(phase) * (1. - ramp(phase - t_in));
  return vent_.dp * level;
}

double VentilationModel::inlet_pressure(const double t) const
{
  const double q = last_inlet_flux_;
  const double drop = vent_.tubus_k1 * q + vent_.tubus_k2 * q * std::abs(q);
  return ventilator_pressure(t) - drop;
}

void VentilationModel::update(const double t, const double dt,
                              const double inlet_flux,
                              const std::vector<double> &outlet_fluxes)
{
  DGFLOW_ASSERT(outlet_fluxes.size() == outlets_.size(),
                "outlet flux count mismatch");
  const double w = std::exp(-dt / vent_.tubus_flux_timescale);
  last_inlet_flux_ = w * last_inlet_flux_ + (1. - w) * inlet_flux;
  for (unsigned int o = 0; o < outlets_.size(); ++o)
  {
    Outlet &out = outlets_[o];
    out.Q = outlet_fluxes[o];
    out.V += dt * out.Q;
    out.p = out.R * out.Q + out.V / out.C;
  }
  if (inlet_flux > 0)
    inhaled_ += dt * inlet_flux;

  // cycle boundary: run the tidal volume controller
  if (t - cycle_start_ >= vent_.period)
  {
    tidal_volume_last_ = inhaled_;
    const double error = vent_.target_tidal_volume - inhaled_;
    // a volume error of dV requires roughly dV / C_total more pressure
    double c_total = 0;
    for (const auto &o : outlets_)
      c_total += o.C;
    vent_.dp += vent_.controller_relaxation * error / c_total;
    vent_.dp = std::max(0., vent_.dp);
    inhaled_ = 0;
    cycle_start_ += vent_.period;
  }
}

void VentilationModel::save_state(resilience::CheckpointWriter &writer) const
{
  writer.write_u64(outlets_.size());
  writer.write_double(vent_.dp);
  writer.write_double(last_inlet_flux_);
  writer.write_double(inhaled_);
  writer.write_double(tidal_volume_last_);
  writer.write_double(cycle_start_);
  for (const Outlet &out : outlets_)
  {
    writer.write_double(out.V);
    writer.write_double(out.Q);
    writer.write_double(out.p);
  }
}

void VentilationModel::load_state(resilience::CheckpointReader &reader)
{
  const std::uint64_t n = reader.read_u64();
  DGFLOW_ASSERT(n == outlets_.size(),
                "checkpoint has " << n << " outlets, model has "
                                  << outlets_.size()
                                  << ": airway tree changed between runs");
  vent_.dp = reader.read_double();
  last_inlet_flux_ = reader.read_double();
  inhaled_ = reader.read_double();
  tidal_volume_last_ = reader.read_double();
  cycle_start_ = reader.read_double();
  for (Outlet &out : outlets_)
  {
    out.V = reader.read_double();
    out.Q = reader.read_double();
    out.p = reader.read_double();
  }
}

double VentilationModel::predicted_steady_flow(
  const double dp_applied, const double resolved_tree_resistance) const
{
  // outlets in parallel
  double inv = 0;
  for (const auto &o : outlets_)
    inv += 1. / o.R;
  return dp_applied / (resolved_tree_resistance + 1. / inv);
}

} // namespace dgflow
