#pragma once

// Morphology-based airway tree generation (paper Section 3.3): a recursive
// bifurcating tree with adult morphometric dimensions following the
// Weibel/Tawhai rules the paper cites - diameters scale with the classical
// homothety ratio 2^{-1/3} per generation, lengths are about three
// diameters, and the branching plane rotates between generations. The
// patient-specific CT segmentation of the top generations is replaced by
// the same morphometric model (see DESIGN.md substitution table).
//
// Each bifurcation is binary: a "major" child continuing the parent tube
// and a "minor" child branching sideways - matching the side-branch
// junction template of the hex mesher.

#include <vector>

#include "common/tensor.h"

namespace dgflow
{
struct Airway
{
  Point start, end;       ///< centerline endpoints
  Point e1, e2;            ///< cross-section frame at the outlet
  double diameter = 0;
  unsigned int generation = 0; ///< 0 = trachea
  int parent = -1;
  int child_major = -1;    ///< continues this tube (same lattice axis)
  int child_minor = -1;    ///< side branch
  bool terminal() const { return child_major < 0; }

  Point direction() const { return normalize(end - start); }
  double length() const { return norm(end - start); }
};

struct AirwayTreeParameters
{
  unsigned int n_generations = 5;   ///< deepest generation index g
  double trachea_diameter = 0.018;  ///< [m], adult
  double trachea_length = 0.12;     ///< [m]
  double diameter_ratio = 0.7937;   ///< 2^{-1/3} homothety
  double length_to_diameter = 3.0;
  double branch_angle_major = 20. * M_PI / 180.;
  double branch_angle_minor = 40. * M_PI / 180.;
  double plane_rotation = 77. * M_PI / 180.; ///< between generations
  unsigned int seed = 0;            ///< deterministic jitter seed
  double jitter = 0.08;             ///< relative length/angle variation
};

class AirwayTree
{
public:
  static AirwayTree generate(const AirwayTreeParameters &prm);

  const std::vector<Airway> &airways() const { return airways_; }
  const AirwayTreeParameters &parameters() const { return prm_; }

  unsigned int n_terminal() const;
  unsigned int n_generations() const { return prm_.n_generations; }

  /// Indices of the terminal airways in tree order.
  std::vector<unsigned int> terminal_airways() const;

  /// Analytic Poiseuille resistance 8 mu l / (pi r^4) of one airway [Pa s/m^3].
  static double airway_resistance(const double mu, const double length,
                                  const double diameter);

  /// Resistance of the full subtree hanging below an airway of generation g
  /// (exclusive), continuing the morphometric scaling to generation
  /// @p last_generation with symmetric halving at each split.
  double subtree_resistance(const double mu, const unsigned int generation,
                            const unsigned int last_generation = 25) const;

  /// Total tree resistance from the trachea inlet through generation
  /// @p last_generation (for validation against the measured total).
  double total_resistance(const double mu,
                          const unsigned int last_generation = 25) const;

private:
  std::vector<Airway> airways_;
  AirwayTreeParameters prm_;
};

} // namespace dgflow
