#pragma once

// Mechanical ventilation boundary models (paper Section 5.3):
//  - pressure-controlled ventilator: PEEP + dp during inhalation, PEEP
//    during exhalation (period T, inhalation:exhalation = 1:2), with the
//    tracheal tubus pressure drop of Guttmann et al. subtracted, and a
//    discrete per-cycle controller adjusting dp towards the target tidal
//    volume;
//  - terminal-airway single-compartment RC models: the analytic Poiseuille
//    resistance of the unresolved subtree (generations g+1..25) plus a
//    tissue share, and the total compliance distributed uniformly over the
//    outlets.
// All pressures are gauge values in Pa relative to the PEEP equilibrium.

#include <vector>

#include "lung/airway_tree.h"
#include "resilience/checkpoint.h"

namespace dgflow
{
constexpr double cmH2O = 98.0665;   ///< Pa
constexpr double liter = 1e-3;      ///< m^3

struct VentilatorSettings
{
  double peep = 8 * cmH2O;          ///< positive end-expiratory pressure
  double dp = 8 * cmH2O;            ///< initial driving pressure
  double period = 3.0;              ///< breathing period T [s]
  double inhale_fraction = 1. / 3.; ///< I:E = 1:2
  /// pressure rise/fall time of the ventilator [s] (cosine ramp; real
  /// devices have 50-150 ms rise times, and the smooth ramp keeps the
  /// explicit convective step stable at the phase transitions)
  double rise_time = 0.06;
  double target_tidal_volume = 500e-6; ///< [m^3]
  double controller_relaxation = 0.8;
  /// tubus pressure drop dP = K1 Q + K2 Q|Q| (Q in m^3/s)
  double tubus_k1 = 2 * cmH2O / (1. * liter);        // per (l/s)
  double tubus_k2 = 8 * cmH2O / (1. * liter * liter); // per (l/s)^2
  /// low-pass timescale [s] of the flux entering the explicit tubus
  /// coupling (keeps the pressure-flow feedback loop stable)
  double tubus_flux_timescale = 0.02;
};

struct LungModelParameters
{
  double total_resistance = 0.15e3 / liter; ///< 0.15 kPa s/l in Pa s/m^3
  double tissue_fraction = 0.2;
  double total_compliance = 100e-6 / cmH2O; ///< 100 ml/cmH2O in m^3/Pa
  double air_density = 1.2;                 ///< kg/m^3
  double kinematic_viscosity = 1.7e-5;      ///< m^2/s
};

class VentilationModel
{
public:
  VentilationModel(const AirwayTree &tree, const LungModelParameters &lung,
                   const VentilatorSettings &vent);

  unsigned int n_outlets() const { return outlets_.size(); }

  /// Ventilator pressure at the machine side (square wave above PEEP,
  /// relative to the PEEP baseline).
  double ventilator_pressure(const double t) const;

  /// Pressure applied at the tracheal inlet: ventilator pressure minus the
  /// tubus drop computed from the most recent inlet flow rate.
  double inlet_pressure(const double t) const;

  /// Pressure applied at terminal outlet @p o (gauge, relative to PEEP).
  double outlet_pressure(const unsigned int o) const
  {
    return outlets_[o].p;
  }

  /// Advances the compartment states with the fluxes of the completed time
  /// step (outlet fluxes positive out of the 3D domain, inlet flux positive
  /// into the domain); runs the tidal-volume controller at cycle ends.
  void update(const double t, const double dt, const double inlet_flux,
              const std::vector<double> &outlet_fluxes);

  double current_dp() const { return vent_.dp; }
  double tidal_volume_last_cycle() const { return tidal_volume_last_; }
  double inhaled_volume_current_cycle() const { return inhaled_; }

  /// Resistance of one outlet's RC model (diagnostics / tests).
  double outlet_resistance(const unsigned int o) const
  {
    return outlets_[o].R;
  }
  double outlet_compliance(const unsigned int o) const
  {
    return outlets_[o].C;
  }

  /// Analytic steady-state flow for a constant driving pressure (laminar,
  /// resistances only): dp / (R_tree + R_outlets_parallel). Used to validate
  /// the resolved 3D resistance against the Poiseuille prediction.
  double predicted_steady_flow(const double dp_applied,
                               const double resolved_tree_resistance) const;

  /// Writes the evolving 0D state (compartment volumes/flows/pressures,
  /// controller-adjusted dp, cycle bookkeeping) bit-for-bit. R and C are
  /// rebuilt deterministically from the tree on restart and not stored.
  void save_state(resilience::CheckpointWriter &writer) const;

  /// Restores the state written by save_state(); the model must have been
  /// constructed from the same tree (outlet count is validated).
  void load_state(resilience::CheckpointReader &reader);

private:
  struct Outlet
  {
    double R = 0, C = 0;
    double V = 0; ///< volume above PEEP equilibrium
    double Q = 0;
    double p = 0;
  };

  VentilatorSettings vent_;
  std::vector<Outlet> outlets_;
  double last_inlet_flux_ = 0;
  double inhaled_ = 0;
  double tidal_volume_last_ = 0;
  double cycle_start_ = 0;
};

} // namespace dgflow
