#pragma once

// Backend implementations behind fem/kernel_backend.h. Included only by the
// kernel dispatch translation units (kernel_dispatch_double.cpp /
// kernel_dispatch_float.cpp), which explicitly instantiate
// make_kernel_backend<double/float> - consumers see only the abstract
// KernelBackend interface.
//
//  * GenericBackend reproduces the pre-backend evaluator fallback sweeps
//    verbatim (runtime extents, even-odd or plain per the ablation flag) on
//    the AoSoA VectorizedArray layout.
//  * BatchBackend adds the fixed-size dispatch tables on top and falls back
//    to the GenericBackend sweeps for uncovered sizes or a disabled fast
//    path - the exact decision ladder FEEvaluation / FEFaceEvaluation used
//    before the refactor, so batch results are bitwise-identical.
//  * SoABackend stages each batch into lane-major scalar tensors
//    (entry (lane, i) at lane * stride + i), sweeps them with the scalar
//    stride-templated kernels of kernel_dispatch_impl.h, and stages back.
//    The pack/compute/unpack boundary is the host-side marshalling a future
//    APU/GPU offload needs; the quadrature-point storage handed back to the
//    evaluators stays AoSoA.

#include "common/aligned_vector.h"
#include "common/types.h"
#include "fem/kernel_backend.h"
#include "fem/kernel_dispatch.h"
#include "fem/tensor_kernels.h"

namespace dgflow
{
namespace internal
{
/// Runtime-extent sweeps on the AoSoA layout: the verified fallback path.
template <typename Number>
class GenericBackend : public KernelBackend<Number>
{
public:
  using VA = VectorizedArray<Number>;
  using Base = KernelBackend<Number>;
  using Base::n_;
  using Base::nq_;
  using Base::shape_;

  GenericBackend(const ShapeInfo<Number> &shape, const bool use_even_odd)
    : Base(shape), even_odd_(use_even_odd)
  {
  }

  KernelBackendType type() const override
  {
    return KernelBackendType::generic;
  }

  void interpolate_to_quad(const VA *dofs, VA *vq) override
  {
    ensure_cell_scratch();
    if (even_odd_)
    {
      apply_matrix_1d_evenodd<false, false>(
        shape_.values_eo_e.data(), shape_.values_eo_o.data(), nq_, n_, 1,
        dofs, tmp1_.data(), 0, {{n_, n_, n_}});
      apply_matrix_1d_evenodd<false, false>(
        shape_.values_eo_e.data(), shape_.values_eo_o.data(), nq_, n_, 1,
        tmp1_.data(), tmp2_.data(), 1, {{nq_, n_, n_}});
      apply_matrix_1d_evenodd<false, false>(
        shape_.values_eo_e.data(), shape_.values_eo_o.data(), nq_, n_, 1,
        tmp2_.data(), vq, 2, {{nq_, nq_, n_}});
      return;
    }
    apply_matrix_1d<false, false>(shape_.values.data(), nq_, n_, dofs,
                                  tmp1_.data(), 0, {{n_, n_, n_}});
    apply_matrix_1d<false, false>(shape_.values.data(), nq_, n_, tmp1_.data(),
                                  tmp2_.data(), 1, {{nq_, n_, n_}});
    apply_matrix_1d<false, false>(shape_.values.data(), nq_, n_, tmp2_.data(),
                                  vq, 2, {{nq_, nq_, n_}});
  }

  void integrate_from_quad(const VA *vq, VA *dofs) override
  {
    ensure_cell_scratch();
    if (even_odd_)
    {
      apply_matrix_1d_evenodd<true, false>(
        shape_.values_eo_e.data(), shape_.values_eo_o.data(), nq_, n_, 1, vq,
        tmp1_.data(), 2, {{nq_, nq_, nq_}});
      apply_matrix_1d_evenodd<true, false>(
        shape_.values_eo_e.data(), shape_.values_eo_o.data(), nq_, n_, 1,
        tmp1_.data(), tmp2_.data(), 1, {{nq_, nq_, n_}});
      apply_matrix_1d_evenodd<true, false>(
        shape_.values_eo_e.data(), shape_.values_eo_o.data(), nq_, n_, 1,
        tmp2_.data(), dofs, 0, {{nq_, n_, n_}});
      return;
    }
    apply_matrix_1d<true, false>(shape_.values.data(), nq_, n_, vq,
                                 tmp1_.data(), 2, {{nq_, nq_, nq_}});
    apply_matrix_1d<true, false>(shape_.values.data(), nq_, n_, tmp1_.data(),
                                 tmp2_.data(), 1, {{nq_, nq_, n_}});
    apply_matrix_1d<true, false>(shape_.values.data(), nq_, n_, tmp2_.data(),
                                 dofs, 0, {{nq_, n_, n_}});
  }

  void collocation_gradients(const VA *vq, VA *gq) override
  {
    const unsigned int nqp = nq_ * nq_ * nq_;
    for (unsigned int d = 0; d < 3; ++d)
    {
      if (even_odd_)
        apply_matrix_1d_evenodd<false, false>(
          shape_.grad_colloc_eo_e.data(), shape_.grad_colloc_eo_o.data(), nq_,
          nq_, -1, vq, gq + d * nqp, d, {{nq_, nq_, nq_}});
      else
        apply_matrix_1d<false, false>(shape_.grad_colloc.data(), nq_, nq_, vq,
                                      gq + d * nqp, d, {{nq_, nq_, nq_}});
    }
  }

  void collocation_gradients_transpose(const VA *gq, VA *vq,
                                       const bool overwrite) override
  {
    const unsigned int nqp = nq_ * nq_ * nq_;
    for (unsigned int d = 0; d < 3; ++d)
    {
      // D^T accumulates into the value array; with overwrite, the first
      // sweep overwrites instead (no value contributions were submitted)
      const VA *g = gq + d * nqp;
      if (even_odd_)
      {
        if (overwrite && d == 0)
          apply_matrix_1d_evenodd<true, false>(
            shape_.grad_colloc_eo_e.data(), shape_.grad_colloc_eo_o.data(),
            nq_, nq_, -1, g, vq, d, {{nq_, nq_, nq_}});
        else
          apply_matrix_1d_evenodd<true, true>(
            shape_.grad_colloc_eo_e.data(), shape_.grad_colloc_eo_o.data(),
            nq_, nq_, -1, g, vq, d, {{nq_, nq_, nq_}});
      }
      else
      {
        if (overwrite && d == 0)
          apply_matrix_1d<true, false>(shape_.grad_colloc.data(), nq_, nq_, g,
                                       vq, d, {{nq_, nq_, nq_}});
        else
          apply_matrix_1d<true, true>(shape_.grad_colloc.data(), nq_, nq_, g,
                                      vq, d, {{nq_, nq_, nq_}});
      }
    }
  }

  void contract_to_face(const Number *v, const VA *dofs, VA *plane,
                        const unsigned int direction) override
  {
    dgflow::contract_to_face<false>(v, n_, dofs, plane, direction,
                                    {{n_, n_, n_}});
  }

  void expand_from_face_add(const Number *v, const VA *plane, VA *dofs,
                            const unsigned int direction) override
  {
    dgflow::expand_from_face<true>(v, n_, plane, dofs, direction,
                                   {{n_, n_, n_}});
  }

  void interp_plane(const Number *M0, const Number *M1, const VA *in,
                    VA *out) override
  {
    ensure_face_scratch();
    apply_matrix_2d<false, false>(M0, nq_, n_, in, ftmp_.data(), 0,
                                  {{n_, n_}});
    apply_matrix_2d<false, false>(M1, nq_, n_, ftmp_.data(), out, 1,
                                  {{nq_, n_}});
  }

  void interp_plane_transpose(const Number *M0, const Number *M1, const VA *in,
                              VA *out, const bool add) override
  {
    ensure_face_scratch();
    apply_matrix_2d<true, false>(M1, nq_, n_, in, ftmp_.data(), 1,
                                 {{nq_, nq_}});
    if (add)
      apply_matrix_2d<true, true>(M0, nq_, n_, ftmp_.data(), out, 0,
                                  {{nq_, n_}});
    else
      apply_matrix_2d<true, false>(M0, nq_, n_, ftmp_.data(), out, 0,
                                   {{nq_, n_}});
  }

protected:
  // scratch sized on first use: a backend serving only the face chain never
  // allocates the (larger) cell sweep buffers and vice versa
  void ensure_cell_scratch()
  {
    if (tmp1_.empty())
    {
      const unsigned int m = std::max(n_, nq_);
      tmp1_.resize(m * m * m);
      tmp2_.resize(m * m * m);
    }
  }

  void ensure_face_scratch()
  {
    if (ftmp_.empty())
    {
      const unsigned int m = std::max(n_, nq_);
      ftmp_.resize(m * m);
    }
  }

  bool even_odd_;
  AlignedVector<VA> tmp1_, tmp2_, ftmp_;
};

/// The AoSoA batch path: fixed-size even-odd dispatch tables where an
/// instantiation exists, GenericBackend sweeps otherwise - the pre-refactor
/// evaluator decision ladder, hence bitwise-identical results.
template <typename Number>
class BatchBackend : public GenericBackend<Number>
{
public:
  using VA = VectorizedArray<Number>;
  using Base = GenericBackend<Number>;
  using Base::ensure_cell_scratch;
  using Base::ensure_face_scratch;
  using Base::ftmp_;
  using Base::shape_;
  using Base::tmp1_;
  using Base::tmp2_;

  BatchBackend(const ShapeInfo<Number> &shape, const bool use_even_odd)
    : Base(shape, use_even_odd),
      // the fixed-size tables build on the even-odd decomposition; the
      // ablation flag therefore bypasses them like the evaluators used to
      cell_(use_even_odd
              ? lookup_cell_kernels<Number>(shape.degree, shape.n_q_1d)
              : nullptr),
      face_(lookup_face_kernels<Number>(shape.degree, shape.n_q_1d))
  {
  }

  KernelBackendType type() const override { return KernelBackendType::batch; }

  void interpolate_to_quad(const VA *dofs, VA *vq) override
  {
    if (cell_)
    {
      ensure_cell_scratch();
      cell_->interpolate_to_quad(shape_, dofs, vq, tmp1_.data(),
                                 tmp2_.data());
      return;
    }
    Base::interpolate_to_quad(dofs, vq);
  }

  void integrate_from_quad(const VA *vq, VA *dofs) override
  {
    if (cell_)
    {
      ensure_cell_scratch();
      cell_->integrate_from_quad(shape_, vq, dofs, tmp1_.data(),
                                 tmp2_.data());
      return;
    }
    Base::integrate_from_quad(vq, dofs);
  }

  void collocation_gradients(const VA *vq, VA *gq) override
  {
    if (cell_)
    {
      cell_->collocation_gradients(shape_, vq, gq);
      return;
    }
    Base::collocation_gradients(vq, gq);
  }

  void collocation_gradients_transpose(const VA *gq, VA *vq,
                                       const bool overwrite) override
  {
    if (cell_)
    {
      cell_->collocation_gradients_transpose(shape_, gq, vq, overwrite);
      return;
    }
    Base::collocation_gradients_transpose(gq, vq, overwrite);
  }

  void contract_to_face(const Number *v, const VA *dofs, VA *plane,
                        const unsigned int direction) override
  {
    if (face_)
    {
      face_->contract_to_face[direction](v, dofs, plane);
      return;
    }
    Base::contract_to_face(v, dofs, plane, direction);
  }

  void expand_from_face_add(const Number *v, const VA *plane, VA *dofs,
                            const unsigned int direction) override
  {
    if (face_)
    {
      face_->expand_from_face_add[direction](v, plane, dofs);
      return;
    }
    Base::expand_from_face_add(v, plane, dofs, direction);
  }

  void interp_plane(const Number *M0, const Number *M1, const VA *in,
                    VA *out) override
  {
    if (face_)
    {
      ensure_face_scratch();
      face_->interp_plane(M0, M1, in, out, ftmp_.data());
      return;
    }
    Base::interp_plane(M0, M1, in, out);
  }

  void interp_plane_transpose(const Number *M0, const Number *M1, const VA *in,
                              VA *out, const bool add) override
  {
    if (face_)
    {
      ensure_face_scratch();
      if (add)
        face_->interp_plane_transpose_add(M0, M1, in, out, ftmp_.data());
      else
        face_->interp_plane_transpose(M0, M1, in, out, ftmp_.data());
      return;
    }
    Base::interp_plane_transpose(M0, M1, in, out, add);
  }

private:
  const CellKernels<Number> *cell_;
  const FaceKernels<Number> *face_;
};

/// Structure-of-arrays device layout: each sum-factorization entry point
/// transposes the AoSoA batch into lane-major scalar tensors, sweeps every
/// lane with the scalar stride-templated kernels (plain matrices), and
/// transposes back. The staging is the host-side marshalling a device
/// offload performs; keeping it inside the backend preserves the AoSoA
/// quadrature-point contract of the evaluators.
template <typename Number>
class SoABackend : public KernelBackend<Number>
{
public:
  using VA = VectorizedArray<Number>;
  using Base = KernelBackend<Number>;
  using Base::n_;
  using Base::nq_;
  using Base::shape_;
  static constexpr unsigned int width = VA::width;

  explicit SoABackend(const ShapeInfo<Number> &shape)
    : Base(shape),
      cell_(lookup_soa_cell_kernels<Number>(shape.degree, shape.n_q_1d)),
      face_(lookup_soa_face_kernels<Number>(shape.degree, shape.n_q_1d))
  {
    const unsigned int m = std::max(n_, nq_);
    cap3_ = m * m * m;
    cap2_ = m * m;
    a_.resize(width * cap3_);
    b_.resize(width * 3 * cap3_);
    t1_.resize(cap3_);
    t2_.resize(cap3_);
  }

  KernelBackendType type() const override { return KernelBackendType::soa; }

  void interpolate_to_quad(const VA *dofs, VA *vq) override
  {
    const unsigned int n3 = n_ * n_ * n_, nq3 = nq_ * nq_ * nq_;
    pack(dofs, n3, cap3_, a_.data());
    for (unsigned int l = 0; l < width; ++l)
    {
      const Number *in = a_.data() + l * cap3_;
      Number *out = b_.data() + l * cap3_;
      if (cell_)
        cell_->interpolate_to_quad(shape_, in, out, t1_.data(), t2_.data());
      else
      {
        apply_matrix_1d<false, false>(shape_.values.data(), nq_, n_, in,
                                      t1_.data(), 0, {{n_, n_, n_}});
        apply_matrix_1d<false, false>(shape_.values.data(), nq_, n_,
                                      t1_.data(), t2_.data(), 1,
                                      {{nq_, n_, n_}});
        apply_matrix_1d<false, false>(shape_.values.data(), nq_, n_,
                                      t2_.data(), out, 2, {{nq_, nq_, n_}});
      }
    }
    unpack(b_.data(), nq3, cap3_, vq);
  }

  void integrate_from_quad(const VA *vq, VA *dofs) override
  {
    const unsigned int n3 = n_ * n_ * n_, nq3 = nq_ * nq_ * nq_;
    pack(vq, nq3, cap3_, a_.data());
    for (unsigned int l = 0; l < width; ++l)
    {
      const Number *in = a_.data() + l * cap3_;
      Number *out = b_.data() + l * cap3_;
      if (cell_)
        cell_->integrate_from_quad(shape_, in, out, t1_.data(), t2_.data());
      else
      {
        apply_matrix_1d<true, false>(shape_.values.data(), nq_, n_, in,
                                     t1_.data(), 2, {{nq_, nq_, nq_}});
        apply_matrix_1d<true, false>(shape_.values.data(), nq_, n_,
                                     t1_.data(), t2_.data(), 1,
                                     {{nq_, nq_, n_}});
        apply_matrix_1d<true, false>(shape_.values.data(), nq_, n_,
                                     t2_.data(), out, 0, {{nq_, n_, n_}});
      }
    }
    unpack(b_.data(), n3, cap3_, dofs);
  }

  void collocation_gradients(const VA *vq, VA *gq) override
  {
    const unsigned int nq3 = nq_ * nq_ * nq_;
    pack(vq, nq3, cap3_, a_.data());
    for (unsigned int l = 0; l < width; ++l)
    {
      const Number *in = a_.data() + l * cap3_;
      Number *out = b_.data() + l * 3 * nq3;
      if (cell_)
        cell_->collocation_gradients(shape_, in, out);
      else
        for (unsigned int d = 0; d < 3; ++d)
          apply_matrix_1d<false, false>(shape_.grad_colloc.data(), nq_, nq_,
                                        in, out + d * nq3, d,
                                        {{nq_, nq_, nq_}});
    }
    for (unsigned int d = 0; d < 3; ++d)
      unpack(b_.data() + d * nq3, nq3, 3 * nq3, gq + d * nq3);
  }

  void collocation_gradients_transpose(const VA *gq, VA *vq,
                                       const bool overwrite) override
  {
    const unsigned int nq3 = nq_ * nq_ * nq_;
    for (unsigned int d = 0; d < 3; ++d)
      pack(gq + d * nq3, nq3, 3 * nq3, b_.data() + d * nq3);
    if (!overwrite)
      pack(vq, nq3, cap3_, a_.data());
    for (unsigned int l = 0; l < width; ++l)
    {
      const Number *in = b_.data() + l * 3 * nq3;
      Number *out = a_.data() + l * cap3_;
      if (cell_)
        cell_->collocation_gradients_transpose(shape_, in, out, overwrite);
      else
        for (unsigned int d = 0; d < 3; ++d)
        {
          if (overwrite && d == 0)
            apply_matrix_1d<true, false>(shape_.grad_colloc.data(), nq_, nq_,
                                         in + d * nq3, out, d,
                                         {{nq_, nq_, nq_}});
          else
            apply_matrix_1d<true, true>(shape_.grad_colloc.data(), nq_, nq_,
                                        in + d * nq3, out, d,
                                        {{nq_, nq_, nq_}});
        }
    }
    unpack(a_.data(), nq3, cap3_, vq);
  }

  void contract_to_face(const Number *v, const VA *dofs, VA *plane,
                        const unsigned int direction) override
  {
    const unsigned int n3 = n_ * n_ * n_, n2 = n_ * n_;
    pack(dofs, n3, cap3_, a_.data());
    for (unsigned int l = 0; l < width; ++l)
    {
      const Number *in = a_.data() + l * cap3_;
      Number *out = b_.data() + l * cap2_;
      if (face_)
        face_->contract_to_face[direction](v, in, out);
      else
        dgflow::contract_to_face<false>(v, n_, in, out, direction,
                                        {{n_, n_, n_}});
    }
    unpack(b_.data(), n2, cap2_, plane);
  }

  void expand_from_face_add(const Number *v, const VA *plane, VA *dofs,
                            const unsigned int direction) override
  {
    const unsigned int n3 = n_ * n_ * n_, n2 = n_ * n_;
    pack(plane, n2, cap2_, b_.data());
    pack(dofs, n3, cap3_, a_.data());
    for (unsigned int l = 0; l < width; ++l)
    {
      const Number *in = b_.data() + l * cap2_;
      Number *out = a_.data() + l * cap3_;
      if (face_)
        face_->expand_from_face_add[direction](v, in, out);
      else
        dgflow::expand_from_face<true>(v, n_, in, out, direction,
                                       {{n_, n_, n_}});
    }
    unpack(a_.data(), n3, cap3_, dofs);
  }

  void interp_plane(const Number *M0, const Number *M1, const VA *in,
                    VA *out) override
  {
    const unsigned int n2 = n_ * n_, nq2 = nq_ * nq_;
    pack(in, n2, cap2_, a_.data());
    for (unsigned int l = 0; l < width; ++l)
    {
      const Number *pin = a_.data() + l * cap2_;
      Number *pout = b_.data() + l * cap2_;
      if (face_)
        face_->interp_plane(M0, M1, pin, pout, t1_.data());
      else
      {
        apply_matrix_2d<false, false>(M0, nq_, n_, pin, t1_.data(), 0,
                                      {{n_, n_}});
        apply_matrix_2d<false, false>(M1, nq_, n_, t1_.data(), pout, 1,
                                      {{nq_, n_}});
      }
    }
    unpack(b_.data(), nq2, cap2_, out);
  }

  void interp_plane_transpose(const Number *M0, const Number *M1, const VA *in,
                              VA *out, const bool add) override
  {
    const unsigned int n2 = n_ * n_, nq2 = nq_ * nq_;
    pack(in, nq2, cap2_, a_.data());
    if (add)
      pack(out, n2, cap2_, b_.data());
    for (unsigned int l = 0; l < width; ++l)
    {
      const Number *pin = a_.data() + l * cap2_;
      Number *pout = b_.data() + l * cap2_;
      if (face_)
      {
        if (add)
          face_->interp_plane_transpose_add(M0, M1, pin, pout, t1_.data());
        else
          face_->interp_plane_transpose(M0, M1, pin, pout, t1_.data());
      }
      else
      {
        apply_matrix_2d<true, false>(M1, nq_, n_, pin, t1_.data(), 1,
                                     {{nq_, nq_}});
        if (add)
          apply_matrix_2d<true, true>(M0, nq_, n_, t1_.data(), pout, 0,
                                      {{nq_, n_}});
        else
          apply_matrix_2d<true, false>(M0, nq_, n_, t1_.data(), pout, 0,
                                       {{nq_, n_}});
      }
    }
    unpack(b_.data(), n2, cap2_, out);
  }

private:
  /// AoSoA -> lane-major: dst[l * lane_stride + i] = src[i][l].
  void pack(const VA *src, const unsigned int count,
            const unsigned int lane_stride, Number *dst) const
  {
    for (unsigned int l = 0; l < width; ++l)
    {
      Number *DGFLOW_RESTRICT out = dst + l * lane_stride;
      for (unsigned int i = 0; i < count; ++i)
        out[i] = src[i][l];
    }
  }

  /// lane-major -> AoSoA: dst[i][l] = src[l * lane_stride + i].
  void unpack(const Number *src, const unsigned int count,
              const unsigned int lane_stride, VA *dst) const
  {
    for (unsigned int l = 0; l < width; ++l)
    {
      const Number *DGFLOW_RESTRICT in = src + l * lane_stride;
      for (unsigned int i = 0; i < count; ++i)
        dst[i][l] = in[i];
    }
  }

  const SoACellKernels<Number> *cell_;
  const SoAFaceKernels<Number> *face_;
  unsigned int cap3_, cap2_; ///< per-lane strides of the staging buffers
  AlignedVector<Number> a_, b_, t1_, t2_;
};

} // namespace internal

template <typename Number>
std::unique_ptr<KernelBackend<Number>>
make_kernel_backend(const KernelBackendType type,
                    const ShapeInfo<Number> &shape, const bool use_even_odd)
{
  switch (type)
  {
    case KernelBackendType::batch:
      return std::make_unique<internal::BatchBackend<Number>>(shape,
                                                              use_even_odd);
    case KernelBackendType::soa:
      return std::make_unique<internal::SoABackend<Number>>(shape);
    default:
      return std::make_unique<internal::GenericBackend<Number>>(shape,
                                                                use_even_odd);
  }
}

} // namespace dgflow
