#pragma once

// 1D quadrature rules on the reference interval [0,1]: Gauss (used for all
// cell/face integrals) and Gauss-Lobatto (used for geometry support points).
// 3D rules are tensor products formed on the fly by the kernels.

#include <cmath>
#include <vector>

#include "common/exceptions.h"

namespace dgflow
{
struct Quadrature1D
{
  std::vector<double> points;  ///< in [0,1]
  std::vector<double> weights; ///< sum to 1

  unsigned int size() const { return points.size(); }
};

namespace internal
{
/// Evaluates the Legendre polynomial P_n and its derivative at x in [-1,1].
inline void legendre(const unsigned int n, const double x, double &p,
                     double &dp)
{
  double p0 = 1., p1 = x;
  if (n == 0)
  {
    p = 1.;
    dp = 0.;
    return;
  }
  for (unsigned int j = 2; j <= n; ++j)
  {
    const double p2 = ((2. * j - 1.) * x * p1 - (j - 1.) * p0) / j;
    p0 = p1;
    p1 = p2;
  }
  p = p1;
  dp = n * (x * p1 - p0) / (x * x - 1.);
}
} // namespace internal

/// Gauss-Legendre rule with @p n points, exact for polynomials of degree
/// 2n-1.
inline Quadrature1D gauss_quadrature(const unsigned int n)
{
  DGFLOW_ASSERT(n >= 1, "need at least one point");
  Quadrature1D q;
  q.points.resize(n);
  q.weights.resize(n);
  for (unsigned int i = 0; i < (n + 1) / 2; ++i)
  {
    // Chebyshev initial guess, Newton iteration on P_n.
    double x = std::cos(M_PI * (i + 0.75) / (n + 0.5));
    double p, dp;
    for (unsigned int it = 0; it < 100; ++it)
    {
      internal::legendre(n, x, p, dp);
      const double dx = -p / dp;
      x += dx;
      if (std::abs(dx) < 1e-16)
        break;
    }
    internal::legendre(n, x, p, dp);
    const double w = 2. / ((1. - x * x) * dp * dp);
    // map [-1,1] -> [0,1]; cos ordering gives descending x, store ascending
    q.points[n - 1 - i] = 0.5 * (x + 1.);
    q.weights[n - 1 - i] = 0.5 * w;
    q.points[i] = 0.5 * (1. - x);
    q.weights[i] = 0.5 * w;
  }
  return q;
}

/// Gauss-Lobatto rule with @p n >= 2 points including both endpoints, exact
/// for polynomials of degree 2n-3.
inline Quadrature1D gauss_lobatto_quadrature(const unsigned int n)
{
  DGFLOW_ASSERT(n >= 2, "Gauss-Lobatto needs at least two points");
  Quadrature1D q;
  q.points.resize(n);
  q.weights.resize(n);
  q.points[0] = 0.;
  q.points[n - 1] = 1.;
  q.weights[0] = q.weights[n - 1] = 1. / (n * (n - 1.));
  // Interior points: roots of P'_{n-1}; Newton with derivative via the
  // relation for d/dx P'_{n-1}.
  for (unsigned int i = 1; i + 1 < n; ++i)
  {
    double x = std::cos(M_PI * (n - 1. - i) / (n - 1.)); // good initial guess
    for (unsigned int it = 0; it < 100; ++it)
    {
      double p, dp;
      internal::legendre(n - 1, x, p, dp);
      // f = dp = P'_{n-1}(x); f' from Legendre ODE:
      // (1-x^2) P'' - 2 x P' + n(n-1) P = 0 with n-1 -> degree
      const double ddp =
        (2. * x * dp - (n - 1.) * n * p) / (1. - x * x);
      const double dx = -dp / ddp;
      x += dx;
      if (std::abs(dx) < 1e-15)
        break;
    }
    double p, dp;
    internal::legendre(n - 1, x, p, dp);
    q.points[i] = 0.5 * (x + 1.);
    q.weights[i] = 1. / (n * (n - 1.) * p * p) * 2. * 0.5;
  }
  // normalize weights on [0,1] (reference weights sum to 2 on [-1,1])
  double sum = 0;
  for (const double w : q.weights)
    sum += w;
  // endpoints were set on [0,1] scale already via 1/(n(n-1)) of total 2 ->
  // rescale everything so the weights sum to 1 exactly.
  for (double &w : q.weights)
    w /= sum;
  return q;
}

/// Equidistant points (including endpoints) used for geometry lattices.
inline std::vector<double> equidistant_points(const unsigned int n)
{
  std::vector<double> p(n);
  if (n == 1)
  {
    p[0] = 0.5;
    return p;
  }
  for (unsigned int i = 0; i < n; ++i)
    p[i] = double(i) / (n - 1);
  return p;
}

} // namespace dgflow
