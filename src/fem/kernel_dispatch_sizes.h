#pragma once

// The (degree, n_q_1d) pairs with dedicated fixed-size kernel
// instantiations: for each k = 1..9 the collocated rule n_q = k+1 and the
// 3/2-overintegrated rule n_q = ceil(3(k+1)/2) used for the nonlinear
// convective term. To add a pair, append F(degree, n_q_1d) here and rebuild;
// the dispatch tables in kernel_dispatch_double.cpp / kernel_dispatch_float.cpp
// pick it up automatically. Keep both extents <= 16 (even-odd kernel stack
// buffer limit in fem/tensor_kernels.h).

#define DGFLOW_KERNEL_DISPATCH_SIZES(F)                                       \
  F(1, 2)                                                                     \
  F(1, 3)                                                                     \
  F(2, 3)                                                                     \
  F(2, 5)                                                                     \
  F(3, 4)                                                                     \
  F(3, 6)                                                                     \
  F(4, 5)                                                                     \
  F(4, 8)                                                                     \
  F(5, 6)                                                                     \
  F(5, 9)                                                                     \
  F(6, 7)                                                                     \
  F(6, 11)                                                                    \
  F(7, 8)                                                                     \
  F(7, 12)                                                                    \
  F(8, 9)                                                                     \
  F(8, 14)                                                                    \
  F(9, 10)                                                                    \
  F(9, 15)
