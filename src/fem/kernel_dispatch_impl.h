#pragma once

// Implementation backing fem/kernel_dispatch.h: the fixed-size kernel bodies
// as thin forwarders into the fixed-extent templates of
// fem/tensor_kernels.h, plus the lookup tables. Included only by the
// per-number-type instantiation translation units
// (kernel_dispatch_double.cpp, kernel_dispatch_float.cpp) - everything here
// is template code that the explicit instantiations at the bottom of those
// files turn into object code once, keeping the unrolled kernels out of
// every including TU.
//
// The sweep structure mirrors FEEvaluation / FEFaceEvaluation exactly (same
// kernels, same order, same even-odd decomposition); only the extents are
// compile-time constants. The fast path is therefore bit-identical to the
// generic path by construction - the equivalence tests in
// tests/test_tensor_kernels.cpp pin that down.

#include "fem/kernel_dispatch.h"
#include "fem/kernel_dispatch_sizes.h"
#include "fem/tensor_kernels.h"

namespace dgflow
{
namespace internal
{
template <typename Number, int deg, int nq>
struct FixedCellKernels
{
  using VA = VectorizedArray<Number>;
  static constexpr int n = deg + 1;
  static constexpr int nqp = nq * nq * nq;

  static void interpolate_to_quad(const ShapeInfo<Number> &s, const VA *dofs,
                                  VA *vq, VA *t1, VA *t2)
  {
    apply_matrix_1d_evenodd_fixed<false, false, nq, n, 1, 0, n, n, n>(
      s.values_eo_e.data(), s.values_eo_o.data(), dofs, t1);
    apply_matrix_1d_evenodd_fixed<false, false, nq, n, 1, 1, nq, n, n>(
      s.values_eo_e.data(), s.values_eo_o.data(), t1, t2);
    apply_matrix_1d_evenodd_fixed<false, false, nq, n, 1, 2, nq, nq, n>(
      s.values_eo_e.data(), s.values_eo_o.data(), t2, vq);
  }

  static void integrate_from_quad(const ShapeInfo<Number> &s, const VA *vq,
                                  VA *dofs, VA *t1, VA *t2)
  {
    apply_matrix_1d_evenodd_fixed<true, false, nq, n, 1, 2, nq, nq, nq>(
      s.values_eo_e.data(), s.values_eo_o.data(), vq, t1);
    apply_matrix_1d_evenodd_fixed<true, false, nq, n, 1, 1, nq, nq, n>(
      s.values_eo_e.data(), s.values_eo_o.data(), t1, t2);
    apply_matrix_1d_evenodd_fixed<true, false, nq, n, 1, 0, nq, n, n>(
      s.values_eo_e.data(), s.values_eo_o.data(), t2, dofs);
  }

  static void collocation_gradients(const ShapeInfo<Number> &s, const VA *vq,
                                    VA *gq)
  {
    apply_matrix_1d_evenodd_fixed<false, false, nq, nq, -1, 0, nq, nq, nq>(
      s.grad_colloc_eo_e.data(), s.grad_colloc_eo_o.data(), vq, gq);
    apply_matrix_1d_evenodd_fixed<false, false, nq, nq, -1, 1, nq, nq, nq>(
      s.grad_colloc_eo_e.data(), s.grad_colloc_eo_o.data(), vq, gq + nqp);
    apply_matrix_1d_evenodd_fixed<false, false, nq, nq, -1, 2, nq, nq, nq>(
      s.grad_colloc_eo_e.data(), s.grad_colloc_eo_o.data(), vq,
      gq + 2 * nqp);
  }

  static void collocation_gradients_transpose(const ShapeInfo<Number> &s,
                                              const VA *gq, VA *vq,
                                              const bool overwrite)
  {
    if (overwrite)
      apply_matrix_1d_evenodd_fixed<true, false, nq, nq, -1, 0, nq, nq, nq>(
        s.grad_colloc_eo_e.data(), s.grad_colloc_eo_o.data(), gq, vq);
    else
      apply_matrix_1d_evenodd_fixed<true, true, nq, nq, -1, 0, nq, nq, nq>(
        s.grad_colloc_eo_e.data(), s.grad_colloc_eo_o.data(), gq, vq);
    apply_matrix_1d_evenodd_fixed<true, true, nq, nq, -1, 1, nq, nq, nq>(
      s.grad_colloc_eo_e.data(), s.grad_colloc_eo_o.data(), gq + nqp, vq);
    apply_matrix_1d_evenodd_fixed<true, true, nq, nq, -1, 2, nq, nq, nq>(
      s.grad_colloc_eo_e.data(), s.grad_colloc_eo_o.data(), gq + 2 * nqp,
      vq);
  }
};

template <typename Number, int deg, int nq>
struct FixedFaceKernels
{
  using VA = VectorizedArray<Number>;
  static constexpr int n = deg + 1;

  template <int direction>
  static void contract(const Number *v, const VA *dofs, VA *plane)
  {
    contract_to_face_fixed<false, n, direction, n, n, n>(v, dofs, plane);
  }

  template <int direction>
  static void expand_add(const Number *v, const VA *plane, VA *dofs)
  {
    expand_from_face_fixed<true, n, direction, n, n, n>(v, plane, dofs);
  }

  static void interp_plane(const Number *M0, const Number *M1, const VA *in,
                           VA *out, VA *tmp)
  {
    apply_matrix_1d_fixed<false, false, nq, n, 0, n, n, 1>(M0, in, tmp);
    apply_matrix_1d_fixed<false, false, nq, n, 1, nq, n, 1>(M1, tmp, out);
  }

  template <bool add>
  static void interp_plane_transpose(const Number *M0, const Number *M1,
                                     const VA *in, VA *out, VA *tmp)
  {
    apply_matrix_1d_fixed<true, false, nq, n, 1, nq, nq, 1>(M1, in, tmp);
    apply_matrix_1d_fixed<true, add, nq, n, 0, nq, n, 1>(M0, tmp, out);
  }
};

// ---------------------------------------------------------------------------
// SoA backend kernels: the same fixed-extent sweeps instantiated for scalar
// data (T = Number instead of VectorizedArray<Number>), applied to ONE
// lane's contiguous tensor in the lane-major staging area of SoABackend.
// The template extents double as compile-time strides - exactly the
// information a device kernel generator needs, which is why the SoA path
// deliberately uses the plain full matrices instead of the even-odd
// decomposition: a straight triple-loop FMA chain maps onto GPU/APU thread
// blocks without the cross-lane shuffles even-odd folding requires. The
// different summation order is why soa-vs-batch equivalence is <= 1e-13,
// not bitwise.
// ---------------------------------------------------------------------------

template <typename Number, int deg, int nq>
struct FixedSoACellKernels
{
  static constexpr int n = deg + 1;
  static constexpr int nqp = nq * nq * nq;

  static void interpolate_to_quad(const ShapeInfo<Number> &s,
                                  const Number *dofs, Number *vq, Number *t1,
                                  Number *t2)
  {
    apply_matrix_1d_fixed<false, false, nq, n, 0, n, n, n>(s.values.data(),
                                                           dofs, t1);
    apply_matrix_1d_fixed<false, false, nq, n, 1, nq, n, n>(s.values.data(),
                                                            t1, t2);
    apply_matrix_1d_fixed<false, false, nq, n, 2, nq, nq, n>(s.values.data(),
                                                             t2, vq);
  }

  static void integrate_from_quad(const ShapeInfo<Number> &s, const Number *vq,
                                  Number *dofs, Number *t1, Number *t2)
  {
    apply_matrix_1d_fixed<true, false, nq, n, 2, nq, nq, nq>(s.values.data(),
                                                             vq, t1);
    apply_matrix_1d_fixed<true, false, nq, n, 1, nq, nq, n>(s.values.data(),
                                                            t1, t2);
    apply_matrix_1d_fixed<true, false, nq, n, 0, nq, n, n>(s.values.data(),
                                                           t2, dofs);
  }

  static void collocation_gradients(const ShapeInfo<Number> &s,
                                    const Number *vq, Number *gq)
  {
    apply_matrix_1d_fixed<false, false, nq, nq, 0, nq, nq, nq>(
      s.grad_colloc.data(), vq, gq);
    apply_matrix_1d_fixed<false, false, nq, nq, 1, nq, nq, nq>(
      s.grad_colloc.data(), vq, gq + nqp);
    apply_matrix_1d_fixed<false, false, nq, nq, 2, nq, nq, nq>(
      s.grad_colloc.data(), vq, gq + 2 * nqp);
  }

  static void collocation_gradients_transpose(const ShapeInfo<Number> &s,
                                              const Number *gq, Number *vq,
                                              const bool overwrite)
  {
    if (overwrite)
      apply_matrix_1d_fixed<true, false, nq, nq, 0, nq, nq, nq>(
        s.grad_colloc.data(), gq, vq);
    else
      apply_matrix_1d_fixed<true, true, nq, nq, 0, nq, nq, nq>(
        s.grad_colloc.data(), gq, vq);
    apply_matrix_1d_fixed<true, true, nq, nq, 1, nq, nq, nq>(
      s.grad_colloc.data(), gq + nqp, vq);
    apply_matrix_1d_fixed<true, true, nq, nq, 2, nq, nq, nq>(
      s.grad_colloc.data(), gq + 2 * nqp, vq);
  }
};

template <typename Number, int deg, int nq>
struct FixedSoAFaceKernels
{
  static constexpr int n = deg + 1;

  template <int direction>
  static void contract(const Number *v, const Number *dofs, Number *plane)
  {
    contract_to_face_fixed<false, n, direction, n, n, n>(v, dofs, plane);
  }

  template <int direction>
  static void expand_add(const Number *v, const Number *plane, Number *dofs)
  {
    expand_from_face_fixed<true, n, direction, n, n, n>(v, plane, dofs);
  }

  static void interp_plane(const Number *M0, const Number *M1,
                           const Number *in, Number *out, Number *tmp)
  {
    apply_matrix_1d_fixed<false, false, nq, n, 0, n, n, 1>(M0, in, tmp);
    apply_matrix_1d_fixed<false, false, nq, n, 1, nq, n, 1>(M1, tmp, out);
  }

  template <bool add>
  static void interp_plane_transpose(const Number *M0, const Number *M1,
                                     const Number *in, Number *out,
                                     Number *tmp)
  {
    apply_matrix_1d_fixed<true, false, nq, n, 1, nq, nq, 1>(M1, in, tmp);
    apply_matrix_1d_fixed<true, add, nq, n, 0, nq, n, 1>(M0, tmp, out);
  }
};

template <typename Number, int deg, int nq>
CellKernels<Number> make_cell_kernels()
{
  using K = FixedCellKernels<Number, deg, nq>;
  return {&K::interpolate_to_quad, &K::integrate_from_quad,
          &K::collocation_gradients, &K::collocation_gradients_transpose};
}

template <typename Number, int deg, int nq>
FaceKernels<Number> make_face_kernels()
{
  using K = FixedFaceKernels<Number, deg, nq>;
  return {{&K::template contract<0>, &K::template contract<1>,
           &K::template contract<2>},
          {&K::template expand_add<0>, &K::template expand_add<1>,
           &K::template expand_add<2>},
          &K::interp_plane, &K::template interp_plane_transpose<false>,
          &K::template interp_plane_transpose<true>};
}

template <typename Number, int deg, int nq>
SoACellKernels<Number> make_soa_cell_kernels()
{
  using K = FixedSoACellKernels<Number, deg, nq>;
  return {&K::interpolate_to_quad, &K::integrate_from_quad,
          &K::collocation_gradients, &K::collocation_gradients_transpose};
}

template <typename Number, int deg, int nq>
SoAFaceKernels<Number> make_soa_face_kernels()
{
  using K = FixedSoAFaceKernels<Number, deg, nq>;
  return {{&K::template contract<0>, &K::template contract<1>,
           &K::template contract<2>},
          {&K::template expand_add<0>, &K::template expand_add<1>,
           &K::template expand_add<2>},
          &K::interp_plane, &K::template interp_plane_transpose<false>,
          &K::template interp_plane_transpose<true>};
}
} // namespace internal

template <typename Number>
const CellKernels<Number> *lookup_cell_kernels(const unsigned int degree,
                                               const unsigned int n_q_1d)
{
  if (!specialized_kernels_enabled())
    return nullptr;
  switch (degree * 100 + n_q_1d)
  {
#define DGFLOW_KERNEL_CASE(d, q)                                              \
  case d * 100 + q:                                                           \
  {                                                                           \
    static const CellKernels<Number> table =                                  \
      internal::make_cell_kernels<Number, d, q>();                            \
    return &table;                                                            \
  }
    DGFLOW_KERNEL_DISPATCH_SIZES(DGFLOW_KERNEL_CASE)
#undef DGFLOW_KERNEL_CASE
    default:
      return nullptr;
  }
}

template <typename Number>
const FaceKernels<Number> *lookup_face_kernels(const unsigned int degree,
                                               const unsigned int n_q_1d)
{
  if (!specialized_kernels_enabled())
    return nullptr;
  switch (degree * 100 + n_q_1d)
  {
#define DGFLOW_KERNEL_CASE(d, q)                                              \
  case d * 100 + q:                                                           \
  {                                                                           \
    static const FaceKernels<Number> table =                                  \
      internal::make_face_kernels<Number, d, q>();                            \
    return &table;                                                            \
  }
    DGFLOW_KERNEL_DISPATCH_SIZES(DGFLOW_KERNEL_CASE)
#undef DGFLOW_KERNEL_CASE
    default:
      return nullptr;
  }
}

template <typename Number>
const SoACellKernels<Number> *
lookup_soa_cell_kernels(const unsigned int degree, const unsigned int n_q_1d)
{
  if (!specialized_kernels_enabled())
    return nullptr;
  switch (degree * 100 + n_q_1d)
  {
#define DGFLOW_KERNEL_CASE(d, q)                                              \
  case d * 100 + q:                                                           \
  {                                                                           \
    static const SoACellKernels<Number> table =                               \
      internal::make_soa_cell_kernels<Number, d, q>();                        \
    return &table;                                                            \
  }
    DGFLOW_KERNEL_DISPATCH_SIZES(DGFLOW_KERNEL_CASE)
#undef DGFLOW_KERNEL_CASE
    default:
      return nullptr;
  }
}

template <typename Number>
const SoAFaceKernels<Number> *
lookup_soa_face_kernels(const unsigned int degree, const unsigned int n_q_1d)
{
  if (!specialized_kernels_enabled())
    return nullptr;
  switch (degree * 100 + n_q_1d)
  {
#define DGFLOW_KERNEL_CASE(d, q)                                              \
  case d * 100 + q:                                                           \
  {                                                                           \
    static const SoAFaceKernels<Number> table =                               \
      internal::make_soa_face_kernels<Number, d, q>();                        \
    return &table;                                                            \
  }
    DGFLOW_KERNEL_DISPATCH_SIZES(DGFLOW_KERNEL_CASE)
#undef DGFLOW_KERNEL_CASE
    default:
      return nullptr;
  }
}

} // namespace dgflow
