#pragma once

// Compile-time kernel dispatch (paper Section 3.1: fully-unrolled fixed-size
// sum-factorization kernels are a prerequisite for operating near the
// memory-bandwidth roofline). For the (degree, n_q_1d) combinations the
// paper exercises - k = 1..9 with n_q = k+1 (collocated) and
// ceil(3(k+1)/2) (overintegrated) - dedicated translation units instantiate
// the fixed-extent kernels of fem/tensor_kernels.h and publish them through
// small function-pointer tables. FEEvaluation / FEFaceEvaluation look the
// table up once (construction/reinit) and fall back to the runtime-extent
// kernels whenever no instantiation exists, so uncovered sizes keep working
// through the verified generic path.
//
// Adding a new (degree, n_q_1d) instantiation is a one-line change to
// DGFLOW_KERNEL_DISPATCH_SIZES in fem/kernel_dispatch_sizes.h; see
// docs/DEVELOPING.md ("Specialized kernel fast path").

#include "fem/shape_info.h"
#include "simd/vectorized_array.h"

namespace dgflow
{
/// Fixed-size kernels for the cell-local evaluation chain of FEEvaluation
/// (one scalar component per call). All pointers are non-null in a published
/// table. Scratch buffers must hold max(n, n_q_1d)^3 entries.
template <typename Number>
struct CellKernels
{
  using VA = VectorizedArray<Number>;
  /// Basis-change sweeps dofs -> quad values (tmp1/tmp2 are scratch).
  void (*interpolate_to_quad)(const ShapeInfo<Number> &shape, const VA *dofs,
                              VA *values_quad, VA *tmp1, VA *tmp2);
  /// Transpose of interpolate_to_quad: quad values -> dofs.
  void (*integrate_from_quad)(const ShapeInfo<Number> &shape,
                              const VA *values_quad, VA *dofs, VA *tmp1,
                              VA *tmp2);
  /// Collocation derivatives: values at quad points -> the three gradient
  /// slabs at gradients_quad + d * n_q_1d^3, d = 0,1,2.
  void (*collocation_gradients)(const ShapeInfo<Number> &shape,
                                const VA *values_quad, VA *gradients_quad);
  /// Transpose of collocation_gradients, accumulating into values_quad;
  /// with overwrite set, the first sweep overwrites instead (used when no
  /// value contributions were submitted).
  void (*collocation_gradients_transpose)(const ShapeInfo<Number> &shape,
                                          const VA *gradients_quad,
                                          VA *values_quad,
                                          const bool overwrite);
};

/// Fixed-size kernels for the face evaluation chain of FEFaceEvaluation.
/// The 1D matrices stay runtime arguments so the same instantiation serves
/// the regular, hanging-subface, and gradient matrices.
template <typename Number>
struct FaceKernels
{
  using VA = VectorizedArray<Number>;
  /// Contracts the (degree+1)^3 dof tensor with the length-(degree+1)
  /// vector v along direction d (array index), producing a face plane.
  void (*contract_to_face[3])(const Number *v, const VA *dofs, VA *plane);
  /// Transpose of contract_to_face; always accumulates into the dof tensor.
  void (*expand_from_face_add[3])(const Number *v, const VA *plane, VA *dofs);
  /// Applies the n_q_1d x (degree+1) matrix M0 along axis 0 and M1 along
  /// axis 1 of the (degree+1)^2 plane, producing the n_q_1d^2 output (tmp is
  /// scratch of max(n, n_q_1d)^2 entries).
  void (*interp_plane)(const Number *M0, const Number *M1, const VA *in,
                       VA *out, VA *tmp);
  /// Transpose of interp_plane (overwrites out).
  void (*interp_plane_transpose)(const Number *M0, const Number *M1,
                                 const VA *in, VA *out, VA *tmp);
  /// Transpose of interp_plane, accumulating into out.
  void (*interp_plane_transpose_add)(const Number *M0, const Number *M1,
                                     const VA *in, VA *out, VA *tmp);
};

/// Scalar (single-lane) cell kernels of the SoA backend: identical role to
/// CellKernels, but each call sweeps ONE lane's contiguous scalar tensor in
/// the lane-major structure-of-arrays staging area, using the plain (full,
/// non-even-odd) shape matrices. The fixed-extent template parameters double
/// as compile-time strides, which is the form a device kernel generator
/// consumes (fem/kernel_backend.h).
template <typename Number>
struct SoACellKernels
{
  void (*interpolate_to_quad)(const ShapeInfo<Number> &shape,
                              const Number *dofs, Number *values_quad,
                              Number *tmp1, Number *tmp2);
  void (*integrate_from_quad)(const ShapeInfo<Number> &shape,
                              const Number *values_quad, Number *dofs,
                              Number *tmp1, Number *tmp2);
  void (*collocation_gradients)(const ShapeInfo<Number> &shape,
                                const Number *values_quad,
                                Number *gradients_quad);
  void (*collocation_gradients_transpose)(const ShapeInfo<Number> &shape,
                                          const Number *gradients_quad,
                                          Number *values_quad,
                                          const bool overwrite);
};

/// Scalar (single-lane) face kernels of the SoA backend; the 1D matrices
/// stay runtime arguments exactly as in FaceKernels.
template <typename Number>
struct SoAFaceKernels
{
  void (*contract_to_face[3])(const Number *v, const Number *dofs,
                              Number *plane);
  void (*expand_from_face_add[3])(const Number *v, const Number *plane,
                                  Number *dofs);
  void (*interp_plane)(const Number *M0, const Number *M1, const Number *in,
                       Number *out, Number *tmp);
  void (*interp_plane_transpose)(const Number *M0, const Number *M1,
                                 const Number *in, Number *out, Number *tmp);
  void (*interp_plane_transpose_add)(const Number *M0, const Number *M1,
                                     const Number *in, Number *out,
                                     Number *tmp);
};

/// Returns the specialized cell-kernel table for (degree, n_q_1d), or
/// nullptr when no instantiation exists or the fast path is disabled.
/// The returned pointer is valid for the process lifetime.
template <typename Number>
const CellKernels<Number> *lookup_cell_kernels(const unsigned int degree,
                                               const unsigned int n_q_1d);

/// Face-kernel analog of lookup_cell_kernels.
template <typename Number>
const FaceKernels<Number> *lookup_face_kernels(const unsigned int degree,
                                               const unsigned int n_q_1d);

/// SoA-backend analogs of lookup_cell_kernels / lookup_face_kernels; same
/// size coverage (DGFLOW_KERNEL_DISPATCH_SIZES), same gating on the fast
/// path (the ABFT table guard routes around corrupted tables by disabling
/// all fixed-size dispatch, whichever backend owns it).
template <typename Number>
const SoACellKernels<Number> *
lookup_soa_cell_kernels(const unsigned int degree, const unsigned int n_q_1d);

template <typename Number>
const SoAFaceKernels<Number> *
lookup_soa_face_kernels(const unsigned int degree, const unsigned int n_q_1d);

/// DEPRECATED shim over the backend-selection API of fem/kernel_backend.h:
/// set_specialized_kernels_enabled(false) is set_default_kernel_backend
/// (generic) - lookup_* then return nullptr and every evaluator constructed
/// afterwards uses the runtime-extent fallback - and (true) restores the
/// batch default. specialized_kernels_enabled() reports whether fixed-size
/// dispatch is available (default backend != generic). New code should call
/// the kernel_backend.h functions directly.
void set_specialized_kernels_enabled(const bool enabled);
bool specialized_kernels_enabled();

} // namespace dgflow
