#pragma once

// Lagrange polynomial bases on arbitrary node sets. The solver uses nodal
// bases collocated at Gauss points (making the DG mass matrix diagonal even
// on deformed cells, the key to the cheap inverse-mass application M^{-1} in
// the splitting scheme) and Gauss-Lobatto nodes for geometry interpolation.

#include <vector>

#include "common/exceptions.h"

namespace dgflow
{
class LagrangeBasis
{
public:
  explicit LagrangeBasis(std::vector<double> nodes) : nodes_(std::move(nodes))
  {
    DGFLOW_ASSERT(!nodes_.empty(), "empty node set");
    // barycentric weights
    const unsigned int n = nodes_.size();
    bary_.assign(n, 1.);
    for (unsigned int i = 0; i < n; ++i)
      for (unsigned int j = 0; j < n; ++j)
        if (i != j)
          bary_[i] /= (nodes_[i] - nodes_[j]);
  }

  unsigned int size() const { return nodes_.size(); }
  unsigned int degree() const { return nodes_.size() - 1; }
  const std::vector<double> &nodes() const { return nodes_; }

  /// phi_i(x); stable direct product formula (degrees used here are <= 9).
  double value(const unsigned int i, const double x) const
  {
    double v = bary_[i];
    for (unsigned int j = 0; j < nodes_.size(); ++j)
      if (j != i)
        v *= (x - nodes_[j]);
    return v;
  }

  /// phi_i'(x) via the product-rule sum.
  double derivative(const unsigned int i, const double x) const
  {
    double d = 0;
    for (unsigned int m = 0; m < nodes_.size(); ++m)
    {
      if (m == i)
        continue;
      double term = bary_[i];
      for (unsigned int j = 0; j < nodes_.size(); ++j)
        if (j != i && j != m)
          term *= (x - nodes_[j]);
      d += term;
    }
    return d;
  }

private:
  std::vector<double> nodes_;
  std::vector<double> bary_;
};

} // namespace dgflow
