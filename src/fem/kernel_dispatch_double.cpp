// Explicit instantiation of the fixed-size kernel dispatch tables and the
// kernel backends for Number = double (the operator-evaluation precision).
// Kept in its own translation unit: the ~18 (degree, n_q_1d) instantiations
// expand every unrolled sweep exactly once here instead of in each consumer.

#include "fem/kernel_backend_impl.h"
#include "fem/kernel_dispatch_impl.h"

namespace dgflow
{
template const CellKernels<double> *
lookup_cell_kernels<double>(const unsigned int, const unsigned int);
template const FaceKernels<double> *
lookup_face_kernels<double>(const unsigned int, const unsigned int);
template const SoACellKernels<double> *
lookup_soa_cell_kernels<double>(const unsigned int, const unsigned int);
template const SoAFaceKernels<double> *
lookup_soa_face_kernels<double>(const unsigned int, const unsigned int);
template std::unique_ptr<KernelBackend<double>>
make_kernel_backend<double>(const KernelBackendType, const ShapeInfo<double> &,
                            const bool);
} // namespace dgflow
