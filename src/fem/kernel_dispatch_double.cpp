// Explicit instantiation of the fixed-size kernel dispatch tables for
// Number = double (the operator-evaluation precision). Kept in its own
// translation unit: the ~18 (degree, n_q_1d) instantiations expand every
// unrolled sweep exactly once here instead of in each consumer.

#include "fem/kernel_dispatch_impl.h"

namespace dgflow
{
template const CellKernels<double> *
lookup_cell_kernels<double>(const unsigned int, const unsigned int);
template const FaceKernels<double> *
lookup_face_kernels<double>(const unsigned int, const unsigned int);
} // namespace dgflow
