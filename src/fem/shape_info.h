#pragma once

// Precomputed 1D shape-function data for the sum-factorization kernels: the
// basis evaluated at quadrature points, at the two face endpoints, and on
// subfaces (for hanging-node faces). One ShapeInfo instance per (polynomial
// degree, quadrature size) pair is shared by all cells - this is what keeps
// the interpolation matrices I_e, I_f of Eq. (7) in cache.

#include <vector>

#include "common/exceptions.h"
#include "fem/polynomial.h"
#include "fem/quadrature.h"
#include "fem/tensor_kernels.h"

namespace dgflow
{
enum class BasisType
{
  lagrange_gauss,         ///< nodes at Gauss points (collocation; diagonal mass)
  lagrange_gauss_lobatto, ///< nodes at Gauss-Lobatto points (geometry)
};

template <typename Number>
struct ShapeInfo
{
  unsigned int degree;
  unsigned int n_dofs_1d; ///< degree + 1
  unsigned int n_q_1d;
  bool collocation; ///< basis nodes coincide with quadrature points

  /// values[q * n_dofs_1d + i] = phi_i(x_q)
  std::vector<Number> values;
  /// gradients[q * n_dofs_1d + i] = phi_i'(x_q)
  std::vector<Number> gradients;
  /// collocation derivative: deriv of the Lagrange basis *at the quadrature
  /// points* evaluated at the quadrature points, grad_colloc[q2 * n_q + q1]
  std::vector<Number> grad_colloc;

  /// face_value[s][i] = phi_i(s), s in {0,1}
  std::vector<Number> face_value[2];
  /// face_grad[s][i] = phi_i'(s)
  std::vector<Number> face_grad[2];

  /// subface_values[s][q * n + i] = phi_i((x_q + s) / 2): the trace of the
  /// coarse side of a hanging face evaluated at the quadrature points of
  /// subface s (per direction). subface_gradients holds phi_i'((x_q+s)/2)
  /// (derivative w.r.t. the *coarse* cell coordinate).
  std::vector<Number> subface_values[2];
  std::vector<Number> subface_gradients[2];

  std::vector<Number> q_weights; ///< 1D quadrature weights
  std::vector<double> q_points;  ///< 1D quadrature points
  std::vector<double> nodes;     ///< basis nodes

  /// Even-odd compressed matrices (paper Sec. 3.1): symmetric point sets
  /// make values symmetric (sign +1) and derivatives anti-symmetric (-1).
  std::vector<Number> values_eo_e, values_eo_o;
  std::vector<Number> gradients_eo_e, gradients_eo_o;
  std::vector<Number> grad_colloc_eo_e, grad_colloc_eo_o;

  ShapeInfo() = default;

  ShapeInfo(const unsigned int degree_, const unsigned int n_q_1d_,
            const BasisType basis_type = BasisType::lagrange_gauss)
    : degree(degree_), n_dofs_1d(degree_ + 1), n_q_1d(n_q_1d_)
  {
    DGFLOW_ASSERT(n_q_1d >= 1, "need quadrature points");
    const Quadrature1D quad = gauss_quadrature(n_q_1d);
    q_points = quad.points;
    q_weights.assign(quad.weights.begin(), quad.weights.end());

    switch (basis_type)
    {
      case BasisType::lagrange_gauss:
        nodes = gauss_quadrature(n_dofs_1d).points;
        break;
      case BasisType::lagrange_gauss_lobatto:
        nodes = n_dofs_1d == 1 ? std::vector<double>{0.5}
                               : gauss_lobatto_quadrature(n_dofs_1d).points;
        break;
    }
    const LagrangeBasis basis(nodes);

    collocation =
      basis_type == BasisType::lagrange_gauss && n_q_1d == n_dofs_1d;

    const unsigned int n = n_dofs_1d;
    values.resize(n_q_1d * n);
    gradients.resize(n_q_1d * n);
    for (unsigned int q = 0; q < n_q_1d; ++q)
      for (unsigned int i = 0; i < n; ++i)
      {
        values[q * n + i] = Number(basis.value(i, q_points[q]));
        gradients[q * n + i] = Number(basis.derivative(i, q_points[q]));
      }
    if (collocation)
      // snap to exact identity (roundoff in the Newton-computed points)
      for (unsigned int q = 0; q < n_q_1d; ++q)
        for (unsigned int i = 0; i < n; ++i)
          values[q * n + i] = (q == i) ? Number(1) : Number(0);

    // derivative matrix of the Lagrange basis at the quadrature points
    const LagrangeBasis qbasis(q_points);
    grad_colloc.resize(n_q_1d * n_q_1d);
    for (unsigned int q2 = 0; q2 < n_q_1d; ++q2)
      for (unsigned int q1 = 0; q1 < n_q_1d; ++q1)
        grad_colloc[q2 * n_q_1d + q1] =
          Number(qbasis.derivative(q1, q_points[q2]));

    // even-odd compressions
    const unsigned int mh = (n_q_1d + 1) / 2, nh = (n + 1) / 2;
    values_eo_e.resize(mh * nh);
    values_eo_o.resize(mh * nh);
    build_even_odd_matrices(values.data(), n_q_1d, n, values_eo_e.data(),
                            values_eo_o.data());
    gradients_eo_e.resize(mh * nh);
    gradients_eo_o.resize(mh * nh);
    build_even_odd_matrices(gradients.data(), n_q_1d, n,
                            gradients_eo_e.data(), gradients_eo_o.data());
    grad_colloc_eo_e.resize(mh * mh);
    grad_colloc_eo_o.resize(mh * mh);
    build_even_odd_matrices(grad_colloc.data(), n_q_1d, n_q_1d,
                            grad_colloc_eo_e.data(), grad_colloc_eo_o.data());

    for (unsigned int s = 0; s < 2; ++s)
    {
      face_value[s].resize(n);
      face_grad[s].resize(n);
      for (unsigned int i = 0; i < n; ++i)
      {
        face_value[s][i] = Number(basis.value(i, double(s)));
        face_grad[s][i] = Number(basis.derivative(i, double(s)));
      }
      subface_values[s].resize(n_q_1d * n);
      subface_gradients[s].resize(n_q_1d * n);
      for (unsigned int q = 0; q < n_q_1d; ++q)
        for (unsigned int i = 0; i < n; ++i)
        {
          const double x = 0.5 * (q_points[q] + s);
          subface_values[s][q * n + i] = Number(basis.value(i, x));
          subface_gradients[s][q * n + i] = Number(basis.derivative(i, x));
        }
    }
  }
};

} // namespace dgflow
