// Process-wide enable switch for the specialized kernel fast path.

#include "fem/kernel_dispatch.h"

#include <atomic>

namespace dgflow
{
namespace
{
std::atomic<bool> specialized_enabled{true};
} // namespace

void set_specialized_kernels_enabled(const bool enabled)
{
  specialized_enabled.store(enabled, std::memory_order_relaxed);
}

bool specialized_kernels_enabled()
{
  return specialized_enabled.load(std::memory_order_relaxed);
}

} // namespace dgflow
