// Process-wide backend selection state and the strict DGFLOW_BACKEND parse.
// The template backends themselves live in fem/kernel_backend_impl.h and are
// instantiated by the kernel dispatch translation units.

#include "fem/kernel_backend.h"

#include <atomic>

#include "common/env.h"

namespace dgflow
{
namespace
{
std::atomic<KernelBackendType> default_backend{KernelBackendType::batch};

constexpr const char *backend_names[3] = {"batch", "soa", "generic"};
} // namespace

const char *kernel_backend_name(const KernelBackendType type)
{
  return backend_names[static_cast<unsigned int>(type)];
}

KernelBackendType kernel_backend_from_env(const KernelBackendType fallback)
{
  const unsigned int parsed =
    env_choice("DGFLOW_BACKEND", static_cast<unsigned int>(fallback),
               backend_names, 3);
  return static_cast<KernelBackendType>(parsed);
}

void set_default_kernel_backend(const KernelBackendType type)
{
  default_backend.store(type, std::memory_order_relaxed);
}

KernelBackendType default_kernel_backend()
{
  return default_backend.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Deprecated shim (declared in fem/kernel_dispatch.h): the pre-backend bool
// toggle folded into the backend default. Off = route everything through
// GenericBackend arithmetic; the gating inside lookup_* / lookup_soa_* means
// already-selected batch/soa backends degrade to the runtime-extent sweeps
// as well, which is exactly the pre-backend behavior of the switch.
// ---------------------------------------------------------------------------

void set_specialized_kernels_enabled(const bool enabled)
{
  set_default_kernel_backend(enabled ? KernelBackendType::batch
                                     : KernelBackendType::generic);
}

bool specialized_kernels_enabled()
{
  return default_kernel_backend() != KernelBackendType::generic;
}

} // namespace dgflow
