// Explicit instantiation of the fixed-size kernel dispatch tables and the
// kernel backends for Number = float (the multigrid smoother precision).

#include "fem/kernel_backend_impl.h"
#include "fem/kernel_dispatch_impl.h"

namespace dgflow
{
template const CellKernels<float> *
lookup_cell_kernels<float>(const unsigned int, const unsigned int);
template const FaceKernels<float> *
lookup_face_kernels<float>(const unsigned int, const unsigned int);
template const SoACellKernels<float> *
lookup_soa_cell_kernels<float>(const unsigned int, const unsigned int);
template const SoAFaceKernels<float> *
lookup_soa_face_kernels<float>(const unsigned int, const unsigned int);
template std::unique_ptr<KernelBackend<float>>
make_kernel_backend<float>(const KernelBackendType, const ShapeInfo<float> &,
                           const bool);
} // namespace dgflow
