// Explicit instantiation of the fixed-size kernel dispatch tables for
// Number = float (the multigrid smoother precision).

#include "fem/kernel_dispatch_impl.h"

namespace dgflow
{
template const CellKernels<float> *
lookup_cell_kernels<float>(const unsigned int, const unsigned int);
template const FaceKernels<float> *
lookup_face_kernels<float>(const unsigned int, const unsigned int);
} // namespace dgflow
