#pragma once

// Kernel backend abstraction (ROADMAP: "kernel backend abstraction
// (GPU/APU-ready)"): the sum-factorization layer behind FEEvaluation /
// FEFaceEvaluation is selected at runtime from a small set of backends, each
// owning its dof/quad-point storage layout, its fixed-size dispatch tables
// and its cell/face evaluate-integrate entry points:
//
//   batch (0, default)  the AVX-512 AoSoA path: every tensor entry is a
//                       VectorizedArray whose lanes are the cells of the
//                       batch; even-odd fixed-size tables from
//                       fem/kernel_dispatch.h. Bitwise-identical to the
//                       pre-backend kernel layer by construction.
//   soa (1)             structure-of-arrays lane-major layout: the batch is
//                       staged into per-lane scalar tensors, swept by
//                       stride-templated scalar kernels (plain matrices, no
//                       even-odd), and staged back. This is the layout a
//                       future APU/GPU offload consumes (GALÆXI, arXiv
//                       2606.18927; Müthing et al., arXiv 1711.10885) - the
//                       pack/compute/unpack boundary models host-side
//                       marshalling. Equivalent to batch to <= 1e-13.
//   generic (2)         runtime-extent sweeps on the AoSoA layout - the
//                       verified fallback every other backend is tested
//                       against, and the ABFT repair target when a dispatch
//                       table fails its checksum.
//
// Selection: MatrixFree::AdditionalData::backend (strongest), else the
// DGFLOW_BACKEND environment variable (strict batch|soa|generic parse via
// common/env.h), else the process default (set_default_kernel_backend; the
// deprecated set_specialized_kernels_enabled shim maps onto it). Evaluators
// query MatrixFree::kernel_backend() at construction, so each evaluator -
// and therefore each thread chunk of the parallel cell loops - owns a
// private backend instance with private scratch.
//
// The quadrature-point contract is backend-independent: values_quad_ /
// gradients_quad_ stay in the AoSoA VectorizedArray layout, so operator
// get_*/submit_* loops never see the backend's internal layout.

#include <memory>

#include "fem/shape_info.h"
#include "simd/vectorized_array.h"

namespace dgflow
{
/// Runtime-selectable sum-factorization backend. Numeric values are part of
/// the external interface (profiler gauge mf_backend, bench configs).
enum class KernelBackendType : unsigned char
{
  batch = 0,  ///< AoSoA VectorizedArray path with even-odd dispatch tables
  soa = 1,    ///< lane-major scalar staging, device-layout kernels
  generic = 2 ///< runtime-extent AoSoA sweeps (verified fallback)
};

/// The names used by DGFLOW_BACKEND and the bench/JSON configs.
const char *kernel_backend_name(KernelBackendType type);

/// Strict parse of DGFLOW_BACKEND (batch|soa|generic): unset returns
/// @p fallback, anything else throws EnvVarError naming the variable.
KernelBackendType kernel_backend_from_env(KernelBackendType fallback);

/// Process-wide default backend used when neither AdditionalData::backend
/// nor DGFLOW_BACKEND selects one. Also the lever the ABFT table guard
/// pulls: routing the default to generic disables every fixed-size dispatch
/// table (lookup_* return nullptr), so evaluators constructed afterwards -
/// including batch/soa ones on live MatrixFree objects - run the verified
/// runtime-extent arithmetic.
void set_default_kernel_backend(KernelBackendType type);
KernelBackendType default_kernel_backend();

/// Stateful per-evaluator backend: owns the scratch buffers and dispatch
/// tables of one evaluation chain. The VA pointers at the interface are the
/// evaluators' AoSoA storage; backends with a different internal layout
/// (SoABackend) stage across this boundary. Instances are not thread-safe -
/// the loop drivers construct one evaluator (hence one backend) per thread
/// chunk, which is what keeps the threaded sweeps race-free.
template <typename Number>
class KernelBackend
{
public:
  using VA = VectorizedArray<Number>;

  explicit KernelBackend(const ShapeInfo<Number> &shape)
    : shape_(shape), n_(shape.n_dofs_1d), nq_(shape.n_q_1d)
  {
  }
  virtual ~KernelBackend() = default;

  virtual KernelBackendType type() const = 0;

  // ---- cell chain (one scalar component per call) ----

  /// Basis change dofs (n^3) -> quadrature values (nq^3).
  virtual void interpolate_to_quad(const VA *dofs, VA *values_quad) = 0;
  /// Transpose of interpolate_to_quad.
  virtual void integrate_from_quad(const VA *values_quad, VA *dofs) = 0;
  /// Collocation derivatives: values -> three gradient slabs at
  /// gradients_quad + d * nq^3.
  virtual void collocation_gradients(const VA *values_quad,
                                     VA *gradients_quad) = 0;
  /// Transpose of collocation_gradients, accumulating into values_quad
  /// (overwriting on the first sweep when @p overwrite is set).
  virtual void collocation_gradients_transpose(const VA *gradients_quad,
                                               VA *values_quad,
                                               const bool overwrite) = 0;

  // ---- face chain ----

  /// Contracts the n^3 dof tensor with v[n] along @p direction -> plane.
  virtual void contract_to_face(const Number *v, const VA *dofs, VA *plane,
                                const unsigned int direction) = 0;
  /// Transpose of contract_to_face, accumulating into the dof tensor.
  virtual void expand_from_face_add(const Number *v, const VA *plane,
                                    VA *dofs, const unsigned int direction) = 0;
  /// Applies the nq x n matrices M0 along axis 0 and M1 along axis 1 of the
  /// n^2 plane, producing the nq^2 output.
  virtual void interp_plane(const Number *M0, const Number *M1, const VA *in,
                            VA *out) = 0;
  /// Transpose of interp_plane; accumulates into out when @p add is set.
  virtual void interp_plane_transpose(const Number *M0, const Number *M1,
                                      const VA *in, VA *out,
                                      const bool add) = 0;

protected:
  const ShapeInfo<Number> &shape_;
  unsigned int n_, nq_;
};

/// Constructs the backend instance for @p type. @p use_even_odd mirrors the
/// FEEvaluation ablation knob: with it off, the batch/generic backends run
/// the plain (non-even-odd) runtime sweeps and skip the dispatch tables,
/// exactly like the pre-backend evaluators. Instantiated for double/float in
/// the kernel dispatch translation units.
template <typename Number>
std::unique_ptr<KernelBackend<Number>>
make_kernel_backend(const KernelBackendType type,
                    const ShapeInfo<Number> &shape,
                    const bool use_even_odd = true);

} // namespace dgflow
