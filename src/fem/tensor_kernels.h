#pragma once

// Sum-factorization kernels (paper Section 3.1, Figure 2): application of 1D
// interpolation/differentiation matrices along one direction of a 3D tensor
// of coefficients, plus face-normal contractions. The data type T is
// typically VectorizedArray<Number>, so each call processes a whole SIMD
// batch of cells; the matrix entries are scalars broadcast into registers
// (the matrix is the same for every cell, which is why it stays in cache).

#include <array>

#include "common/exceptions.h"
#include "common/types.h"

namespace dgflow
{
/// Applies the m x n row-major matrix M along direction @p direction of the
/// tensor @p in with extents @p e (where e[direction] == n). The output has
/// extent m in that direction. With contract_over_rows, applies M^T instead
/// (extent e[direction] == m on input, n on output) - used for integration.
/// in and out must not alias.
template <bool contract_over_rows, bool add, typename MT, typename T>
inline void apply_matrix_1d(const MT *DGFLOW_RESTRICT M, const unsigned int m,
                            const unsigned int n, const T *DGFLOW_RESTRICT in,
                            T *DGFLOW_RESTRICT out,
                            const unsigned int direction,
                            const std::array<unsigned int, 3> &e)
{
  const unsigned int n_in = contract_over_rows ? m : n;
  const unsigned int n_out = contract_over_rows ? n : m;
  DGFLOW_DEBUG_ASSERT(e[direction] == n_in, "extent mismatch");

  // stride of the contraction direction and loop bounds over the other dims
  unsigned int stride = 1;
  for (unsigned int d = 0; d < direction; ++d)
    stride *= e[d];
  unsigned int n_blocks = 1;
  for (unsigned int d = direction + 1; d < 3; ++d)
    n_blocks *= e[d];

  const unsigned int in_block = stride * n_in;
  const unsigned int out_block = stride * n_out;

  for (unsigned int b = 0; b < n_blocks; ++b)
  {
    const T *in_b = in + b * in_block;
    T *out_b = out + b * out_block;
    for (unsigned int s = 0; s < stride; ++s)
      for (unsigned int r = 0; r < n_out; ++r)
      {
        T sum = contract_over_rows ? M[r] * in_b[s] : M[r * n] * in_b[s];
        for (unsigned int c = 1; c < n_in; ++c)
        {
          const MT coeff = contract_over_rows ? M[c * n + r] : M[r * n + c];
          sum += coeff * in_b[c * stride + s];
        }
        if (add)
          out_b[r * stride + s] += sum;
        else
          out_b[r * stride + s] = sum;
      }
  }
}

/// Contracts the tensor with a vector v[n] along @p direction, producing the
/// 2D plane of the remaining dims: out[plane] = sum_i v[i] in(..,i,..).
/// Used to interpolate cell values onto a face (v = basis values at x=0/1).
template <bool add, typename MT, typename T>
inline void contract_to_face(const MT *DGFLOW_RESTRICT v, const unsigned int n,
                             const T *DGFLOW_RESTRICT in,
                             T *DGFLOW_RESTRICT out,
                             const unsigned int direction,
                             const std::array<unsigned int, 3> &e)
{
  DGFLOW_DEBUG_ASSERT(e[direction] == n, "extent mismatch");
  unsigned int stride = 1;
  for (unsigned int d = 0; d < direction; ++d)
    stride *= e[d];
  unsigned int n_blocks = 1;
  for (unsigned int d = direction + 1; d < 3; ++d)
    n_blocks *= e[d];

  for (unsigned int b = 0; b < n_blocks; ++b)
  {
    const T *in_b = in + b * stride * n;
    T *out_b = out + b * stride;
    for (unsigned int s = 0; s < stride; ++s)
    {
      T sum = v[0] * in_b[s];
      for (unsigned int i = 1; i < n; ++i)
        sum += v[i] * in_b[i * stride + s];
      if (add)
        out_b[s] += sum;
      else
        out_b[s] = sum;
    }
  }
}

/// Transpose of contract_to_face: expands a face plane into the cell tensor,
/// out(..,i,..) (+)= v[i] * in[plane].
template <bool add, typename MT, typename T>
inline void expand_from_face(const MT *DGFLOW_RESTRICT v, const unsigned int n,
                             const T *DGFLOW_RESTRICT in,
                             T *DGFLOW_RESTRICT out,
                             const unsigned int direction,
                             const std::array<unsigned int, 3> &e)
{
  DGFLOW_DEBUG_ASSERT(e[direction] == n, "extent mismatch");
  unsigned int stride = 1;
  for (unsigned int d = 0; d < direction; ++d)
    stride *= e[d];
  unsigned int n_blocks = 1;
  for (unsigned int d = direction + 1; d < 3; ++d)
    n_blocks *= e[d];

  for (unsigned int b = 0; b < n_blocks; ++b)
  {
    const T *in_b = in + b * stride;
    T *out_b = out + b * stride * n;
    for (unsigned int s = 0; s < stride; ++s)
      for (unsigned int i = 0; i < n; ++i)
      {
        if (add)
          out_b[i * stride + s] += v[i] * in_b[s];
        else
          out_b[i * stride + s] = v[i] * in_b[s];
      }
  }
}

// ---------------------------------------------------------------------------
// Even-odd decomposition (paper Section 3.1, following Kronbichler & Kormann
// 2019): shape matrices on symmetric point sets satisfy
// M[r][c] = s * M[m-1-r][n-1-c] with s = +1 (values) or -1 (derivatives).
// Splitting the input into even/odd halves lets two half-size matrices do
// the work of one full-size product, cutting the multiply count in half.
// The compressed matrices Me/Mo have ceil(m/2) rows and ceil(n/2) columns:
//   Me[r][i] = (M[r][i] + M[r][n-1-i]) / 2   (middle column: M[r][mid])
//   Mo[r][i] = (M[r][i] - M[r][n-1-i]) / 2
// ---------------------------------------------------------------------------

/// Builds the compressed even/odd matrices from a full m x n matrix.
template <typename MT>
inline void build_even_odd_matrices(const MT *M, const unsigned int m,
                                    const unsigned int n, MT *Me, MT *Mo)
{
  const unsigned int mh = (m + 1) / 2, nh = (n + 1) / 2;
  for (unsigned int r = 0; r < mh; ++r)
    for (unsigned int i = 0; i < nh; ++i)
    {
      if (2 * i + 1 == n) // middle column
      {
        Me[r * nh + i] = M[r * n + i];
        Mo[r * nh + i] = MT(0);
      }
      else
      {
        Me[r * nh + i] = MT(0.5) * (M[r * n + i] + M[r * n + (n - 1 - i)]);
        Mo[r * nh + i] = MT(0.5) * (M[r * n + i] - M[r * n + (n - 1 - i)]);
      }
    }
}

/// Even-odd application of the compressed matrix along @p direction.
/// @p sign is the matrix symmetry (+1 values, -1 derivatives). Semantics
/// identical to apply_matrix_1d on the full matrix.
template <bool contract_over_rows, bool add, typename MT, typename T>
inline void apply_matrix_1d_evenodd(const MT *DGFLOW_RESTRICT Me,
                                    const MT *DGFLOW_RESTRICT Mo,
                                    const unsigned int m, const unsigned int n,
                                    const int sign,
                                    const T *DGFLOW_RESTRICT in,
                                    T *DGFLOW_RESTRICT out,
                                    const unsigned int direction,
                                    const std::array<unsigned int, 3> &e)
{
  // the transpose of a (anti)symmetric matrix has the same structure; for
  // sign = -1 the even/odd compressed parts swap roles
  const unsigned int n_in = contract_over_rows ? m : n;
  const unsigned int n_out = contract_over_rows ? n : m;
  DGFLOW_DEBUG_ASSERT(e[direction] == n_in, "extent mismatch");
  DGFLOW_DEBUG_ASSERT(n_in <= 16 && n_out <= 16, "kernel size limit");

  const unsigned int rows = contract_over_rows ? n : m; // of effective matrix
  const unsigned int cols = contract_over_rows ? m : n;
  const unsigned int rh = (rows + 1) / 2, ch = (cols + 1) / 2;
  const unsigned int mh = (m + 1) / 2, nh = (n + 1) / 2;

  unsigned int stride = 1;
  for (unsigned int d = 0; d < direction; ++d)
    stride *= e[d];
  unsigned int n_blocks = 1;
  for (unsigned int d = direction + 1; d < 3; ++d)
    n_blocks *= e[d];

  const unsigned int in_block = stride * n_in;
  const unsigned int out_block = stride * n_out;

  // effective compressed matrices (entry [r][i] of the applied matrix)
  const auto me = [&](const unsigned int r, const unsigned int i) {
    if (!contract_over_rows)
      return Me[r * nh + i];
    return sign > 0 ? Me[i * nh + r] : Mo[i * nh + r];
  };
  const auto mo = [&](const unsigned int r, const unsigned int i) {
    if (!contract_over_rows)
      return Mo[r * nh + i];
    return sign > 0 ? Mo[i * nh + r] : Me[i * nh + r];
  };
  (void)mh;

  for (unsigned int b = 0; b < n_blocks; ++b)
  {
    const T *in_b = in + b * in_block;
    T *out_b = out + b * out_block;
    for (unsigned int s = 0; s < stride; ++s)
    {
      T xe[16], xo[16];
      for (unsigned int i = 0; i < n_in / 2; ++i)
      {
        const T a = in_b[i * stride + s];
        const T c = in_b[(n_in - 1 - i) * stride + s];
        xe[i] = a + c;
        xo[i] = a - c;
      }
      if (n_in % 2 == 1)
        xe[n_in / 2] = in_b[(n_in / 2) * stride + s];

      for (unsigned int r = 0; r < n_out / 2; ++r)
      {
        T ye = me(r, 0) * xe[0];
        for (unsigned int i = 1; i < ch; ++i)
          ye += me(r, i) * xe[i];
        T yo = mo(r, 0) * xo[0];
        for (unsigned int i = 1; i < cols / 2; ++i)
          yo += mo(r, i) * xo[i];

        const T v0 = ye + yo;
        const T v1 = sign > 0 ? ye - yo : yo - ye;
        if (add)
        {
          out_b[r * stride + s] += v0;
          out_b[(n_out - 1 - r) * stride + s] += v1;
        }
        else
        {
          out_b[r * stride + s] = v0;
          out_b[(n_out - 1 - r) * stride + s] = v1;
        }
      }
      if (n_out % 2 == 1)
      {
        const unsigned int r = n_out / 2;
        T y;
        if (sign > 0)
        {
          y = me(r, 0) * xe[0];
          for (unsigned int i = 1; i < ch; ++i)
            y += me(r, i) * xe[i];
        }
        else
        {
          y = mo(r, 0) * xo[0];
          for (unsigned int i = 1; i < cols / 2; ++i)
            y += mo(r, i) * xo[i];
        }
        if (add)
          out_b[r * stride + s] += y;
        else
          out_b[r * stride + s] = y;
      }
    }
  }
  (void)rh;
}

// ---------------------------------------------------------------------------
// Fixed-extent variants: all sizes, the sweep direction, and the tensor
// extents are template parameters, so after (forced) inlining the runtime
// kernels above see only compile-time constants - strides fold, the inner
// loops fully unroll, and the FMA chains schedule without loop overhead.
// These are the building blocks of the specialized fast path dispatched via
// fem/kernel_dispatch.h; the runtime-extent kernels remain the verified
// fallback for sizes without an instantiation.
// ---------------------------------------------------------------------------

/// apply_matrix_1d with compile-time m, n, direction and extents.
template <bool contract_over_rows, bool add, int m, int n, int direction,
          int e0, int e1, int e2, typename MT, typename T>
DGFLOW_ALWAYS_INLINE void apply_matrix_1d_fixed(const MT *DGFLOW_RESTRICT M,
                                                const T *DGFLOW_RESTRICT in,
                                                T *DGFLOW_RESTRICT out)
{
  apply_matrix_1d<contract_over_rows, add>(M, m, n, in, out, direction,
                                           {{e0, e1, e2}});
}

/// apply_matrix_1d_evenodd with compile-time m, n, direction and extents.
template <bool contract_over_rows, bool add, int m, int n, int sign,
          int direction, int e0, int e1, int e2, typename MT, typename T>
DGFLOW_ALWAYS_INLINE void
apply_matrix_1d_evenodd_fixed(const MT *DGFLOW_RESTRICT Me,
                              const MT *DGFLOW_RESTRICT Mo,
                              const T *DGFLOW_RESTRICT in,
                              T *DGFLOW_RESTRICT out)
{
  apply_matrix_1d_evenodd<contract_over_rows, add>(Me, Mo, m, n, sign, in,
                                                   out, direction,
                                                   {{e0, e1, e2}});
}

/// contract_to_face with compile-time n, direction and extents.
template <bool add, int n, int direction, int e0, int e1, int e2, typename MT,
          typename T>
DGFLOW_ALWAYS_INLINE void contract_to_face_fixed(const MT *DGFLOW_RESTRICT v,
                                                 const T *DGFLOW_RESTRICT in,
                                                 T *DGFLOW_RESTRICT out)
{
  contract_to_face<add>(v, n, in, out, direction, {{e0, e1, e2}});
}

/// expand_from_face with compile-time n, direction and extents.
template <bool add, int n, int direction, int e0, int e1, int e2, typename MT,
          typename T>
DGFLOW_ALWAYS_INLINE void expand_from_face_fixed(const MT *DGFLOW_RESTRICT v,
                                                 const T *DGFLOW_RESTRICT in,
                                                 T *DGFLOW_RESTRICT out)
{
  expand_from_face<add>(v, n, in, out, direction, {{e0, e1, e2}});
}

/// 2D variant of apply_matrix_1d for operations on face planes, direction in
/// {0,1}, extents e2 of the plane.
template <bool contract_over_rows, bool add, typename MT, typename T>
inline void apply_matrix_2d(const MT *DGFLOW_RESTRICT M, const unsigned int m,
                            const unsigned int n, const T *DGFLOW_RESTRICT in,
                            T *DGFLOW_RESTRICT out,
                            const unsigned int direction,
                            const std::array<unsigned int, 2> &e)
{
  const std::array<unsigned int, 3> e3{{e[0], e[1], 1}};
  apply_matrix_1d<contract_over_rows, add>(M, m, n, in, out, direction, e3);
}

} // namespace dgflow
