#pragma once

// Basic coarse-mesh generators. The lung airway and bifurcation geometries
// live in src/lung (they combine these building blocks with the airway-tree
// morphology).

#include "mesh/coarse_mesh.h"

namespace dgflow
{
/// Axis-aligned box [lo, hi] subdivided into nx x ny x nz hex cells.
/// Boundary ids are "colorized" as 2*d+s (x-: 0, x+: 1, y-: 2, ...).
CoarseMesh subdivided_box(const Point &lo, const Point &hi,
                          const std::array<unsigned int, 3> &subdivisions);

/// Unit cube of a single coarse cell.
CoarseMesh unit_cube();

/// Builds a coarse mesh from explicit vertex/cell lists (vertex numbering
/// lexicographic per cell); boundary ids default to 0.
CoarseMesh from_lists(std::vector<Point> vertices,
                      std::vector<std::array<index_t, 8>> cells);

} // namespace dgflow
