#include "mesh/generators.h"

#include "common/exceptions.h"

namespace dgflow
{
CoarseMesh subdivided_box(const Point &lo, const Point &hi,
                          const std::array<unsigned int, 3> &n)
{
  DGFLOW_ASSERT(n[0] > 0 && n[1] > 0 && n[2] > 0, "need subdivisions");
  CoarseMesh mesh;
  const unsigned int nvx = n[0] + 1, nvy = n[1] + 1, nvz = n[2] + 1;
  mesh.vertices.reserve(std::size_t(nvx) * nvy * nvz);
  for (unsigned int k = 0; k < nvz; ++k)
    for (unsigned int j = 0; j < nvy; ++j)
      for (unsigned int i = 0; i < nvx; ++i)
        mesh.vertices.push_back(
          Point(lo[0] + (hi[0] - lo[0]) * i / n[0],
                lo[1] + (hi[1] - lo[1]) * j / n[1],
                lo[2] + (hi[2] - lo[2]) * k / n[2]));

  auto vid = [&](unsigned int i, unsigned int j, unsigned int k) {
    return index_t((k * nvy + j) * nvx + i);
  };

  for (unsigned int k = 0; k < n[2]; ++k)
    for (unsigned int j = 0; j < n[1]; ++j)
      for (unsigned int i = 0; i < n[0]; ++i)
      {
        CoarseMesh::Cell cell;
        for (unsigned int v = 0; v < 8; ++v)
          cell.vertices[v] =
            vid(i + (v & 1), j + ((v >> 1) & 1), k + ((v >> 2) & 1));
        mesh.cells.push_back(cell);
        std::array<unsigned int, 6> bids;
        bids[0] = (i == 0) ? 0 : default_boundary_id;
        bids[1] = (i == n[0] - 1) ? 1 : default_boundary_id;
        bids[2] = (j == 0) ? 2 : default_boundary_id;
        bids[3] = (j == n[1] - 1) ? 3 : default_boundary_id;
        bids[4] = (k == 0) ? 4 : default_boundary_id;
        bids[5] = (k == n[2] - 1) ? 5 : default_boundary_id;
        mesh.boundary_ids.push_back(bids);
      }
  return mesh;
}

CoarseMesh unit_cube()
{
  return subdivided_box(Point(0, 0, 0), Point(1, 1, 1), {{1, 1, 1}});
}

CoarseMesh from_lists(std::vector<Point> vertices,
                      std::vector<std::array<index_t, 8>> cells)
{
  CoarseMesh mesh;
  mesh.vertices = std::move(vertices);
  mesh.cells.reserve(cells.size());
  for (const auto &c : cells)
    mesh.cells.push_back(CoarseMesh::Cell{c});
  return mesh;
}

} // namespace dgflow
