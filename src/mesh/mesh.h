#pragma once

// Forest-of-octrees mesh (p4est-style, paper Section 3.3): each coarse cell
// is the root of an octree whose leaves are the active cells. Supports
// uniform and local refinement with 2:1 face/edge balance; local refinement
// produces hanging faces, reported through build_face_list() with the
// subface information the DG face integrals and CFE constraints need.
//
// Cell anchors are integer lattice coordinates in [0, 2^level)^3 within the
// tree's unit cube; active cells are stored in space-filling-curve order
// (tree major, Morton within the tree), which is also the partition order.

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mesh/coarse_mesh.h"

namespace dgflow
{
/// Location of a cell within the forest.
struct TreeCoord
{
  index_t tree;
  std::uint8_t level;
  std::uint32_t x, y, z;

  std::uint32_t coord(const unsigned int d) const
  {
    return d == 0 ? x : d == 1 ? y : z;
  }
  void set_coord(const unsigned int d, const std::uint32_t v)
  {
    (d == 0 ? x : d == 1 ? y : z) = v;
  }
};

class Mesh
{
public:
  static constexpr unsigned int max_level = 11;

  explicit Mesh(CoarseMesh coarse);

  const CoarseMesh &coarse() const { return coarse_; }

  index_t n_active_cells() const
  {
    return static_cast<index_t>(cells_.size());
  }

  const TreeCoord &cell(const index_t i) const { return cells_[i]; }

  /// Refines every active cell @p n times.
  void refine_uniform(const unsigned int n = 1);

  /// Refines all flagged cells, then adds refinements until the mesh is 2:1
  /// balanced across faces and edges.
  void refine(const std::vector<bool> &flags);

  /// Global coarsening (paper Section 3.4): returns the mesh in which every
  /// group of eight active siblings is replaced by its parent. Cells at
  /// level 0 or with missing siblings are kept. Returns an empty optional-
  /// like flag via n_active_cells comparison when nothing can be coarsened.
  Mesh coarsened() const;

  /// Exposes the active-cell lookup: index of the active cell at the given
  /// location, or invalid_index.
  index_t find_cell(const index_t tree, const unsigned int level,
                    const std::array<std::uint32_t, 3> &coords) const
  {
    return find_active(tree, level, coords);
  }

  /// Lower corner of the cell in the tree's unit-cube coordinates.
  Point cell_lower_corner(const index_t i) const
  {
    const auto &c = cells_[i];
    const double h = 1. / (1u << c.level);
    return Point(c.x * h, c.y * h, c.z * h);
  }

  /// Edge length of the cell in tree coordinates.
  double cell_reference_size(const index_t i) const
  {
    return 1. / (1u << cells_[i].level);
  }

  struct NeighborInfo
  {
    enum class Kind
    {
      boundary,
      same_level,
      coarser,
      finer
    };
    Kind kind = Kind::boundary;
    index_t cell = invalid_index; ///< neighbor (same_level / coarser)
    std::array<index_t, 4> children{
      {invalid_index, invalid_index, invalid_index,
       invalid_index}}; ///< finer: the four face-adjacent children
    unsigned char face_no = 0;     ///< the neighbor's local face number
    unsigned char orientation = 0; ///< my face coords -> neighbor face coords
    /// For coarser neighbors: which half of the neighbor's face I occupy,
    /// per neighbor-face direction (in the *neighbor's* coordinates).
    std::array<unsigned char, 2> subface{{0, 0}};
    unsigned int boundary_id = default_boundary_id;
  };

  NeighborInfo neighbor(const index_t cell_index,
                        const unsigned int face) const;

  /// One entry per unique mesh face. For hanging faces the fine cell is the
  /// minus side and one entry exists per subface; subface0/1 give the
  /// position within the coarse (plus) face in the plus side's face
  /// directions, or 255 when the face is conforming.
  struct Face
  {
    index_t cell_m = invalid_index;
    index_t cell_p = invalid_index; ///< invalid for boundary faces
    unsigned char face_no_m = 0;
    unsigned char face_no_p = 0;
    unsigned char orientation = 0; ///< minus face coords -> plus face coords
    unsigned char subface0 = 255, subface1 = 255;
    unsigned int boundary_id = default_boundary_id;

    bool is_boundary() const { return cell_p == invalid_index; }
    bool is_hanging() const { return subface0 != 255; }
  };

  std::vector<Face> build_face_list() const;

  /// Number of active cells per refinement level (diagnostics).
  std::array<index_t, max_level + 1> level_histogram() const;

private:
  static std::uint64_t pack(const index_t tree, const unsigned int level,
                            const std::uint32_t x, const std::uint32_t y,
                            const std::uint32_t z)
  {
    return (std::uint64_t(tree) << 40) | (std::uint64_t(level) << 36) |
           (std::uint64_t(x) << 24) | (std::uint64_t(y) << 12) |
           std::uint64_t(z);
  }
  static std::uint64_t pack(const TreeCoord &c)
  {
    return pack(c.tree, c.level, c.x, c.y, c.z);
  }

  /// Transforms integer coordinates at resolution 2^level that exceed the
  /// tree bounds in exactly direction @p d (by any positive penetration)
  /// across coarse face 2*d+s into the neighbor tree's frame. Returns false
  /// at domain boundaries.
  bool transform_across_coarse_face(const index_t tree, const unsigned int d,
                                    const unsigned int s,
                                    const unsigned int level,
                                    std::array<std::int64_t, 3> &coords,
                                    index_t &neighbor_tree) const;

  /// Resolves possibly out-of-range coordinates into (tree, in-range coords),
  /// walking across up to three coarse faces (face, edge, corner neighbors).
  /// Returns false if a domain boundary is hit.
  bool canonicalize(index_t tree, const unsigned int level,
                    std::array<std::int64_t, 3> coords, index_t &out_tree,
                    std::array<std::uint32_t, 3> &out_coords) const;

  void rebuild_index();

  index_t find_active(const index_t tree, const unsigned int level,
                      const std::array<std::uint32_t, 3> &c) const;

  bool is_ancestor(const index_t tree, const unsigned int level,
                   const std::array<std::uint32_t, 3> &c) const;

  CoarseMesh coarse_;
  std::vector<TreeCoord> cells_;
  std::unordered_map<std::uint64_t, index_t> active_index_;
  std::unordered_set<std::uint64_t> ancestors_;
};

/// Morton (z-order) key of a cell scaled to the finest level; cells_ are
/// kept sorted by (tree, morton_key).
std::uint64_t morton_key(const TreeCoord &c);

} // namespace dgflow
