#include "mesh/mesh.h"

#include <algorithm>

#include "common/exceptions.h"

namespace dgflow
{
std::uint64_t morton_key(const TreeCoord &c)
{
  const unsigned int shift = Mesh::max_level - c.level;
  const std::uint64_t xyz[3] = {std::uint64_t(c.x) << shift,
                                std::uint64_t(c.y) << shift,
                                std::uint64_t(c.z) << shift};
  std::uint64_t key = 0;
  for (unsigned int b = 0; b < 12; ++b)
    for (unsigned int d = 0; d < 3; ++d)
      key |= ((xyz[d] >> b) & 1u) << (3 * b + d);
  return key;
}

Mesh::Mesh(CoarseMesh coarse) : coarse_(std::move(coarse))
{
  if (!coarse_.has_connectivity())
    coarse_.compute_connectivity();
  cells_.reserve(coarse_.n_cells());
  for (index_t t = 0; t < coarse_.n_cells(); ++t)
    cells_.push_back(TreeCoord{t, 0, 0, 0, 0});
  rebuild_index();
}

void Mesh::rebuild_index()
{
  std::sort(cells_.begin(), cells_.end(),
            [](const TreeCoord &a, const TreeCoord &b) {
              if (a.tree != b.tree)
                return a.tree < b.tree;
              return morton_key(a) < morton_key(b);
            });
  active_index_.clear();
  active_index_.reserve(2 * cells_.size());
  ancestors_.clear();
  for (index_t i = 0; i < n_active_cells(); ++i)
  {
    const TreeCoord &c = cells_[i];
    const auto [it, inserted] = active_index_.emplace(pack(c), i);
    DGFLOW_ASSERT(inserted, "duplicate active cell");
    // record all ancestors up to the tree root
    TreeCoord a = c;
    while (a.level > 0)
    {
      a.level--;
      a.x >>= 1;
      a.y >>= 1;
      a.z >>= 1;
      if (!ancestors_.insert(pack(a)).second)
        break; // remaining ancestors already recorded
    }
  }
}

index_t Mesh::find_active(const index_t tree, const unsigned int level,
                          const std::array<std::uint32_t, 3> &c) const
{
  const auto it = active_index_.find(pack(tree, level, c[0], c[1], c[2]));
  return it == active_index_.end() ? invalid_index : it->second;
}

bool Mesh::is_ancestor(const index_t tree, const unsigned int level,
                       const std::array<std::uint32_t, 3> &c) const
{
  return ancestors_.count(pack(tree, level, c[0], c[1], c[2])) > 0;
}

bool Mesh::transform_across_coarse_face(const index_t tree,
                                        const unsigned int d,
                                        const unsigned int s,
                                        const unsigned int level,
                                        std::array<std::int64_t, 3> &coords,
                                        index_t &neighbor_tree) const
{
  const auto &nb = coarse_.neighbors[tree][2 * d + s];
  if (nb.cell == invalid_index)
    return false;
  const std::int64_t n = std::int64_t(1) << level;

  // penetration depth into the neighbor
  const std::int64_t p = (s == 1) ? coords[d] - n : -1 - coords[d];
  DGFLOW_DEBUG_ASSERT(p >= 0, "coordinate not out of range in direction d");

  // my face-tangential coordinates (may themselves be out of range when
  // composing edge/corner walks; flips keep the offset consistent)
  const auto t = face_tangential_dims(d);
  std::int64_t t0 = coords[t[0]], t1 = coords[t[1]];
  const unsigned int o = nb.orientation;
  if (o & 1)
    std::swap(t0, t1);
  if (o & 2)
    t0 = n - 1 - t0;
  if (o & 4)
    t1 = n - 1 - t1;

  const unsigned int db = nb.face_no / 2, sb = nb.face_no % 2;
  const auto tb = face_tangential_dims(db);
  std::array<std::int64_t, 3> out;
  out[db] = (sb == 0) ? p : n - 1 - p;
  out[tb[0]] = t0;
  out[tb[1]] = t1;
  coords = out;
  neighbor_tree = nb.cell;
  return true;
}

bool Mesh::canonicalize(index_t tree, const unsigned int level,
                        std::array<std::int64_t, 3> coords, index_t &out_tree,
                        std::array<std::uint32_t, 3> &out_coords) const
{
  const std::int64_t n = std::int64_t(1) << level;
  // iteratively fix out-of-range directions, backtracking over the order in
  // which faces are crossed (relevant near domain boundaries)
  struct State
  {
    index_t tree;
    std::array<std::int64_t, 3> coords;
    unsigned int depth;
  };
  std::array<State, 16> stack;
  unsigned int stack_size = 0;
  stack[stack_size++] = {tree, coords, 0};

  while (stack_size > 0)
  {
    const State st = stack[--stack_size];
    bool in_range = true;
    for (unsigned int d = 0; d < 3; ++d)
      if (st.coords[d] < 0 || st.coords[d] >= n)
        in_range = false;
    if (in_range)
    {
      out_tree = st.tree;
      for (unsigned int d = 0; d < 3; ++d)
        out_coords[d] = static_cast<std::uint32_t>(st.coords[d]);
      return true;
    }
    if (st.depth >= 3)
      continue;
    for (unsigned int d = 0; d < 3; ++d)
    {
      if (st.coords[d] >= 0 && st.coords[d] < n)
        continue;
      const unsigned int s = st.coords[d] < 0 ? 0 : 1;
      std::array<std::int64_t, 3> c = st.coords;
      index_t ntree;
      if (transform_across_coarse_face(st.tree, d, s, level, c, ntree))
      {
        DGFLOW_ASSERT(stack_size < stack.size(), "canonicalize overflow");
        stack[stack_size++] = {ntree, c, st.depth + 1};
      }
    }
  }
  return false;
}

Mesh::NeighborInfo Mesh::neighbor(const index_t cell_index,
                                  const unsigned int face) const
{
  const TreeCoord &c = cells_[cell_index];
  const unsigned int d = face / 2, s = face % 2;
  const std::int64_t n = std::int64_t(1) << c.level;

  std::array<std::int64_t, 3> coords = {std::int64_t(c.x), std::int64_t(c.y),
                                        std::int64_t(c.z)};
  coords[d] += (s == 1) ? 1 : -1;

  NeighborInfo info;

  const bool crosses_tree = coords[d] < 0 || coords[d] >= n;
  index_t ntree = c.tree;
  std::array<std::uint32_t, 3> cc;
  if (crosses_tree)
  {
    if (!canonicalize(c.tree, c.level, coords, ntree, cc))
    {
      info.kind = NeighborInfo::Kind::boundary;
      info.boundary_id = coarse_.boundary_ids[c.tree][face];
      return info;
    }
    const auto &nb = coarse_.neighbors[c.tree][face];
    info.face_no = nb.face_no;
    info.orientation = nb.orientation;
  }
  else
  {
    for (unsigned int i = 0; i < 3; ++i)
      cc[i] = static_cast<std::uint32_t>(coords[i]);
    info.face_no = static_cast<unsigned char>(2 * d + (1 - s));
    info.orientation = 0;
  }

  // same-level neighbor?
  const index_t same = find_active(ntree, c.level, cc);
  if (same != invalid_index)
  {
    info.kind = NeighborInfo::Kind::same_level;
    info.cell = same;
    return info;
  }

  // coarser neighbor?
  if (c.level > 0)
  {
    const std::array<std::uint32_t, 3> cp = {cc[0] >> 1, cc[1] >> 1,
                                             cc[2] >> 1};
    const index_t coarser = find_active(ntree, c.level - 1, cp);
    if (coarser != invalid_index)
    {
      info.kind = NeighborInfo::Kind::coarser;
      info.cell = coarser;
      const auto tb = face_tangential_dims(info.face_no / 2);
      info.subface = {static_cast<unsigned char>(cc[tb[0]] & 1),
                      static_cast<unsigned char>(cc[tb[1]] & 1)};
      return info;
    }
  }

  // finer neighbors: the four children adjacent to the shared face
  const unsigned int dn = info.face_no / 2, sn = info.face_no % 2;
  const auto tb = face_tangential_dims(dn);
  info.kind = NeighborInfo::Kind::finer;
  for (unsigned int sub = 0; sub < 4; ++sub)
  {
    std::array<std::uint32_t, 3> ch;
    ch[dn] = 2 * cc[dn] + sn;
    ch[tb[0]] = 2 * cc[tb[0]] + (sub & 1);
    ch[tb[1]] = 2 * cc[tb[1]] + (sub >> 1);
    info.children[sub] = find_active(ntree, c.level + 1, ch);
    DGFLOW_ASSERT(info.children[sub] != invalid_index,
                  "mesh is not 2:1 balanced at cell " << cell_index << " face "
                                                      << face);
  }
  return info;
}

void Mesh::refine_uniform(const unsigned int n)
{
  for (unsigned int r = 0; r < n; ++r)
  {
    std::vector<TreeCoord> next;
    next.reserve(8 * cells_.size());
    for (const TreeCoord &c : cells_)
    {
      DGFLOW_ASSERT(c.level < max_level, "max refinement level exceeded");
      for (unsigned int child = 0; child < 8; ++child)
        next.push_back(TreeCoord{
          c.tree, static_cast<std::uint8_t>(c.level + 1),
          2 * c.x + (child & 1), 2 * c.y + ((child >> 1) & 1),
          2 * c.z + ((child >> 2) & 1)});
    }
    cells_ = std::move(next);
    rebuild_index();
  }
}

void Mesh::refine(const std::vector<bool> &flags)
{
  DGFLOW_ASSERT(flags.size() == cells_.size(), "flag vector size mismatch");

  auto apply_flags = [this](const std::vector<bool> &f) {
    std::vector<TreeCoord> next;
    next.reserve(cells_.size() + 8 * cells_.size() / 4);
    for (index_t i = 0; i < n_active_cells(); ++i)
    {
      const TreeCoord &c = cells_[i];
      if (f[i])
      {
        DGFLOW_ASSERT(c.level < max_level, "max refinement level exceeded");
        for (unsigned int child = 0; child < 8; ++child)
          next.push_back(TreeCoord{
            c.tree, static_cast<std::uint8_t>(c.level + 1),
            2 * c.x + (child & 1), 2 * c.y + ((child >> 1) & 1),
            2 * c.z + ((child >> 2) & 1)});
      }
      else
        next.push_back(c);
    }
    cells_ = std::move(next);
    rebuild_index();
  };

  apply_flags(flags);

  // 2:1 balance over faces and edges: a cell at level l is refined whenever
  // an active cell of level >= l+2 touches one of its faces or edges, which
  // is detected through the ancestor set at level l+1.
  for (unsigned int iteration = 0;; ++iteration)
  {
    DGFLOW_ASSERT(iteration < 4 * max_level, "balance did not terminate");
    std::vector<bool> balance_flags(cells_.size(), false);
    bool any = false;

    for (index_t i = 0; i < n_active_cells(); ++i)
    {
      const TreeCoord &c = cells_[i];
      // Work at resolution level+1: a position there that is an *ancestor*
      // of active cells means an active cell of level >= c.level+2 touches
      // my boundary - a 2:1 violation.
      const std::array<std::int64_t, 3> lo = {2 * std::int64_t(c.x),
                                              2 * std::int64_t(c.y),
                                              2 * std::int64_t(c.z)};

      auto violated_at = [&](const std::array<std::int64_t, 3> &pos) -> bool {
        index_t ntree;
        std::array<std::uint32_t, 3> cc;
        if (!canonicalize(c.tree, c.level + 1, pos, ntree, cc))
          return false;
        return is_ancestor(ntree, c.level + 1, cc);
      };

      bool flag = false;
      // faces: the 4 level+1 positions touching each of my 6 faces
      for (unsigned int f = 0; f < 6 && !flag; ++f)
      {
        const unsigned int d = f / 2, s = f % 2;
        const auto t = face_tangential_dims(d);
        for (unsigned int sub = 0; sub < 4 && !flag; ++sub)
        {
          std::array<std::int64_t, 3> pos;
          pos[d] = (s == 1) ? lo[d] + 2 : lo[d] - 1;
          pos[t[0]] = lo[t[0]] + (sub & 1);
          pos[t[1]] = lo[t[1]] + (sub >> 1);
          flag = violated_at(pos);
        }
      }
      // edges: the 2 level+1 positions touching each of my 12 edges
      for (unsigned int d1 = 0; d1 < 3 && !flag; ++d1)
        for (unsigned int d2 = d1 + 1; d2 < 3 && !flag; ++d2)
        {
          const unsigned int d_free = 3 - d1 - d2;
          for (unsigned int ss = 0; ss < 4 && !flag; ++ss)
            for (unsigned int q = 0; q < 2 && !flag; ++q)
            {
              std::array<std::int64_t, 3> pos;
              pos[d1] = (ss & 1) ? lo[d1] + 2 : lo[d1] - 1;
              pos[d2] = (ss & 2) ? lo[d2] + 2 : lo[d2] - 1;
              pos[d_free] = lo[d_free] + q;
              flag = violated_at(pos);
            }
        }

      if (flag)
      {
        balance_flags[i] = true;
        any = true;
      }
    }

    if (!any)
      break;
    apply_flags(balance_flags);
  }
}

Mesh Mesh::coarsened() const
{
  Mesh result(coarse_);
  result.cells_.clear();
  std::unordered_map<std::uint64_t, unsigned int> sibling_count;
  for (const TreeCoord &c : cells_)
    if (c.level > 0)
    {
      TreeCoord p{c.tree, static_cast<std::uint8_t>(c.level - 1), c.x >> 1,
                  c.y >> 1, c.z >> 1};
      ++sibling_count[pack(p)];
    }
  std::unordered_set<std::uint64_t> emitted;
  for (const TreeCoord &c : cells_)
  {
    if (c.level == 0)
    {
      result.cells_.push_back(c);
      continue;
    }
    TreeCoord p{c.tree, static_cast<std::uint8_t>(c.level - 1), c.x >> 1,
                c.y >> 1, c.z >> 1};
    const std::uint64_t key = pack(p);
    if (sibling_count[key] == 8)
    {
      if (emitted.insert(key).second)
        result.cells_.push_back(p);
    }
    else
      result.cells_.push_back(c);
  }
  result.rebuild_index();
  return result;
}

std::vector<Mesh::Face> Mesh::build_face_list() const
{
  std::vector<Face> faces;
  faces.reserve(3 * cells_.size());
  for (index_t i = 0; i < n_active_cells(); ++i)
    for (unsigned int f = 0; f < 6; ++f)
    {
      const NeighborInfo nb = neighbor(i, f);
      switch (nb.kind)
      {
        case NeighborInfo::Kind::boundary:
        {
          Face face;
          face.cell_m = i;
          face.face_no_m = static_cast<unsigned char>(f);
          face.boundary_id = nb.boundary_id;
          faces.push_back(face);
          break;
        }
        case NeighborInfo::Kind::same_level:
          if (i < nb.cell)
          {
            Face face;
            face.cell_m = i;
            face.cell_p = nb.cell;
            face.face_no_m = static_cast<unsigned char>(f);
            face.face_no_p = nb.face_no;
            face.orientation = nb.orientation;
            faces.push_back(face);
          }
          break;
        case NeighborInfo::Kind::coarser:
        {
          // hanging face: the fine cell is always the minus side
          Face face;
          face.cell_m = i;
          face.cell_p = nb.cell;
          face.face_no_m = static_cast<unsigned char>(f);
          face.face_no_p = nb.face_no;
          face.orientation = nb.orientation;
          face.subface0 = nb.subface[0];
          face.subface1 = nb.subface[1];
          faces.push_back(face);
          break;
        }
        case NeighborInfo::Kind::finer:
          break; // the finer cells create the subface entries
      }
    }
  return faces;
}

std::array<index_t, Mesh::max_level + 1> Mesh::level_histogram() const
{
  std::array<index_t, max_level + 1> h{};
  for (const TreeCoord &c : cells_)
    ++h[c.level];
  return h;
}

} // namespace dgflow
