#pragma once

// Unstructured coarse hex mesh ("forest of trees", p4est-style). Each coarse
// cell is the root of an octree refined by the Mesh class. The coarse mesh
// stores vertices, cells with lexicographic vertex numbering, face
// connectivity with the 8 quad orientations, and boundary ids.
//
// Vertex numbering within a hex (lexicographic): vertex i sits at reference
// coordinates ((i >> 0) & 1, (i >> 1) & 1, (i >> 2) & 1).
// Face numbering: face 2*d + s is the face with normal direction d and
// reference coordinate x_d = s. Face-local (tangential) coordinates are the
// remaining reference directions in ascending order.

#include <array>
#include <vector>

#include "common/tensor.h"
#include "common/types.h"

namespace dgflow
{
/// The two tangential directions of face-normal direction d, ascending.
constexpr std::array<unsigned int, 2> face_tangential_dims(const unsigned int d)
{
  return d == 0 ? std::array<unsigned int, 2>{{1, 2}}
         : d == 1 ? std::array<unsigned int, 2>{{0, 2}}
                  : std::array<unsigned int, 2>{{0, 1}};
}

/// Local vertex index (0..7) of the hex vertex with reference coords (x,y,z)
/// in {0,1}.
constexpr unsigned int hex_vertex_index(const unsigned int x,
                                        const unsigned int y,
                                        const unsigned int z)
{
  return x + 2 * y + 4 * z;
}

/// The 4 local vertex indices of face f in face-lexicographic order
/// (first tangential dim fastest).
std::array<unsigned int, 4> face_vertices(const unsigned int f);

// ---------------------------------------------------------------------------
// Quad orientations: the dihedral group D4 encoded in 3 bits.
// A face shared by two cells is parametrized by each cell in its own
// face-local coordinates; the orientation o maps the minus side's (u,v) to
// the plus side's (u',v'):
//   if (o & 1) swap u and v, then
//   if (o & 2) u' = 1 - u', and if (o & 4) v' = 1 - v'.
// ---------------------------------------------------------------------------

/// Applies orientation o to binary/lattice coordinates (i0,i1) on an n x n
/// lattice (flip means i -> n-1-i).
inline std::array<unsigned int, 2>
orient_face_coords(const unsigned int o, unsigned int i0, unsigned int i1,
                   const unsigned int n)
{
  if (o & 1)
    std::swap(i0, i1);
  if (o & 2)
    i0 = n - 1 - i0;
  if (o & 4)
    i1 = n - 1 - i1;
  return {{i0, i1}};
}

/// The inverse orientation: orient_face_coords(inverse_orientation(o), ...)
/// undoes orient_face_coords(o, ...).
unsigned int inverse_orientation(const unsigned int o);

/// Determines the orientation o such that vb[lex index of o(u,v)] ==
/// va[lex index of (u,v)] for all four corners; returns 8 if no match.
unsigned int quad_orientation(const std::array<index_t, 4> &va,
                              const std::array<index_t, 4> &vb);

/// Default boundary id for faces without an explicit assignment.
constexpr unsigned int default_boundary_id = 0;
/// Marker distinguishing interior faces in the boundary-id table.
constexpr unsigned int interior_face_id = static_cast<unsigned int>(-1);

class CoarseMesh
{
public:
  struct Cell
  {
    std::array<index_t, 8> vertices;
  };

  /// Connectivity record of one cell face.
  struct FaceNeighbor
  {
    index_t cell = invalid_index;  ///< neighbor coarse cell (invalid: boundary)
    unsigned char face_no = 0;     ///< the neighbor's local face number
    unsigned char orientation = 0; ///< maps this cell's face coords to the
                                   ///< neighbor's (see above)
  };

  std::vector<Point> vertices;
  std::vector<Cell> cells;
  /// boundary id per (cell, face); interior_face_id once connectivity is
  /// computed. Generators may pre-assign ids to boundary faces.
  std::vector<std::array<unsigned int, 6>> boundary_ids;

  /// Face connectivity, computed by compute_connectivity().
  std::vector<std::array<FaceNeighbor, 6>> neighbors;

  index_t n_cells() const { return static_cast<index_t>(cells.size()); }

  Point vertex_of_cell(const index_t c, const unsigned int v) const
  {
    return vertices[cells[c].vertices[v]];
  }

  /// Matches faces by vertex sets, fills neighbors and orientations, marks
  /// unmatched faces as boundary. Throws on non-manifold input (a face
  /// shared by more than two cells) and on left-handed cells.
  void compute_connectivity();

  /// True if connectivity has been computed.
  bool has_connectivity() const { return !neighbors.empty(); }
};

} // namespace dgflow
