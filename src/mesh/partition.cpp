#include "mesh/partition.h"

#include <set>

#include "common/exceptions.h"

namespace dgflow
{
std::vector<int> partition_cells(const Mesh &mesh, const int n_ranks)
{
  DGFLOW_ASSERT(n_ranks >= 1, "need at least one rank");
  const std::size_t n = mesh.n_active_cells();
  std::vector<int> rank(n);
  // cells are already stored in SFC order: contiguous chunks
  for (std::size_t i = 0; i < n; ++i)
    rank[i] = static_cast<int>((i * std::size_t(n_ranks)) / n);
  return rank;
}

int morton_buddy_rank(const int rank, const int n_ranks)
{
  DGFLOW_ASSERT(n_ranks >= 1 && rank >= 0 && rank < n_ranks,
                "invalid rank " << rank << " of " << n_ranks);
  return (rank + 1) % n_ranks;
}

PartitionStats compute_partition_stats(const Mesh &mesh,
                                       const std::vector<int> &rank_of_cell,
                                       const int n_ranks)
{
  PartitionStats stats;
  stats.cells_per_rank.assign(n_ranks, 0);
  stats.cut_faces_per_rank.assign(n_ranks, 0);
  stats.neighbors_per_rank.assign(n_ranks, 0);

  for (index_t i = 0; i < mesh.n_active_cells(); ++i)
    ++stats.cells_per_rank[rank_of_cell[i]];

  stats.send_cells_per_rank.assign(n_ranks, 0);
  stats.ghost_cells_per_rank.assign(n_ranks, 0);

  std::vector<std::set<int>> neighbor_sets(n_ranks);
  // (neighbor, cell) pairs: one cell going to two neighbors is two entries
  std::vector<std::set<std::pair<int, index_t>>> send_pairs(n_ranks),
    ghost_pairs(n_ranks);
  for (const Mesh::Face &f : mesh.build_face_list())
  {
    if (f.is_boundary())
      continue;
    const int rm = rank_of_cell[f.cell_m], rp = rank_of_cell[f.cell_p];
    if (rm != rp)
    {
      ++stats.cut_faces_per_rank[rm];
      ++stats.cut_faces_per_rank[rp];
      neighbor_sets[rm].insert(rp);
      neighbor_sets[rp].insert(rm);
      send_pairs[rm].insert({rp, f.cell_m});
      send_pairs[rp].insert({rm, f.cell_p});
      ghost_pairs[rm].insert({rp, f.cell_p});
      ghost_pairs[rp].insert({rm, f.cell_m});
    }
  }
  for (int r = 0; r < n_ranks; ++r)
  {
    stats.neighbors_per_rank[r] = neighbor_sets[r].size();
    stats.send_cells_per_rank[r] = send_pairs[r].size();
    stats.ghost_cells_per_rank[r] = ghost_pairs[r].size();
    stats.max_cells = std::max(stats.max_cells, stats.cells_per_rank[r]);
    stats.max_cut_faces =
      std::max(stats.max_cut_faces, stats.cut_faces_per_rank[r]);
    stats.max_neighbors =
      std::max(stats.max_neighbors, stats.neighbors_per_rank[r]);
  }
  return stats;
}

ExchangeTraffic predict_exchange_traffic(const PartitionStats &stats,
                                         const std::size_t dofs_per_cell,
                                         const std::size_t bytes_per_scalar)
{
  ExchangeTraffic traffic;
  const std::size_t n_ranks = stats.cells_per_rank.size();
  traffic.messages_per_rank.resize(n_ranks);
  traffic.bytes_per_rank.resize(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r)
  {
    traffic.messages_per_rank[r] = stats.neighbors_per_rank[r];
    traffic.bytes_per_rank[r] =
      stats.send_cells_per_rank[r] * dofs_per_cell * bytes_per_scalar;
    traffic.total_messages += traffic.messages_per_rank[r];
    traffic.total_bytes += traffic.bytes_per_rank[r];
  }
  return traffic;
}

} // namespace dgflow
