#include "mesh/partition.h"

#include <set>

#include "common/exceptions.h"

namespace dgflow
{
std::vector<int> partition_cells(const Mesh &mesh, const int n_ranks)
{
  DGFLOW_ASSERT(n_ranks >= 1, "need at least one rank");
  const std::size_t n = mesh.n_active_cells();
  std::vector<int> rank(n);
  // cells are already stored in SFC order: contiguous chunks
  for (std::size_t i = 0; i < n; ++i)
    rank[i] = static_cast<int>((i * std::size_t(n_ranks)) / n);
  return rank;
}

PartitionStats compute_partition_stats(const Mesh &mesh,
                                       const std::vector<int> &rank_of_cell,
                                       const int n_ranks)
{
  PartitionStats stats;
  stats.cells_per_rank.assign(n_ranks, 0);
  stats.cut_faces_per_rank.assign(n_ranks, 0);
  stats.neighbors_per_rank.assign(n_ranks, 0);

  for (index_t i = 0; i < mesh.n_active_cells(); ++i)
    ++stats.cells_per_rank[rank_of_cell[i]];

  std::vector<std::set<int>> neighbor_sets(n_ranks);
  for (const Mesh::Face &f : mesh.build_face_list())
  {
    if (f.is_boundary())
      continue;
    const int rm = rank_of_cell[f.cell_m], rp = rank_of_cell[f.cell_p];
    if (rm != rp)
    {
      ++stats.cut_faces_per_rank[rm];
      ++stats.cut_faces_per_rank[rp];
      neighbor_sets[rm].insert(rp);
      neighbor_sets[rp].insert(rm);
    }
  }
  for (int r = 0; r < n_ranks; ++r)
  {
    stats.neighbors_per_rank[r] = neighbor_sets[r].size();
    stats.max_cells = std::max(stats.max_cells, stats.cells_per_rank[r]);
    stats.max_cut_faces =
      std::max(stats.max_cut_faces, stats.cut_faces_per_rank[r]);
    stats.max_neighbors =
      std::max(stats.max_neighbors, stats.neighbors_per_rank[r]);
  }
  return stats;
}

} // namespace dgflow
