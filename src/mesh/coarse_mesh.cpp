#include "mesh/coarse_mesh.h"

#include <algorithm>
#include <map>

#include "common/exceptions.h"

namespace dgflow
{
std::array<unsigned int, 4> face_vertices(const unsigned int f)
{
  const unsigned int d = f / 2, s = f % 2;
  const auto t = face_tangential_dims(d);
  std::array<unsigned int, 4> v{};
  for (unsigned int i1 = 0; i1 < 2; ++i1)
    for (unsigned int i0 = 0; i0 < 2; ++i0)
    {
      unsigned int coords[3];
      coords[d] = s;
      coords[t[0]] = i0;
      coords[t[1]] = i1;
      v[i1 * 2 + i0] = hex_vertex_index(coords[0], coords[1], coords[2]);
    }
  return v;
}

unsigned int inverse_orientation(const unsigned int o)
{
  if ((o & 1) == 0)
    return o; // pure flips are involutions
  const unsigned int f0 = (o >> 1) & 1, f1 = (o >> 2) & 1;
  return 1u | (f1 << 1) | (f0 << 2);
}

unsigned int quad_orientation(const std::array<index_t, 4> &va,
                              const std::array<index_t, 4> &vb)
{
  for (unsigned int o = 0; o < 8; ++o)
  {
    bool match = true;
    for (unsigned int v = 0; v < 4 && match; ++v)
    {
      const unsigned int u = v & 1, w = v >> 1;
      const auto [up, wp] = orient_face_coords(o, u, w, 2);
      match = (vb[wp * 2 + up] == va[v]);
    }
    if (match)
      return o;
  }
  return 8;
}

namespace
{
/// Approximate Jacobian determinant of the trilinear map at the cell center.
double center_jacobian_det(const CoarseMesh &mesh, const index_t c)
{
  const auto &cv = mesh.cells[c].vertices;
  Tensor2<double> J;
  for (unsigned int d = 0; d < dim; ++d)
  {
    const unsigned int step = 1u << d;
    Point avg;
    // average the four edges in direction d
    for (unsigned int v = 0; v < 8; ++v)
      if (((v >> d) & 1) == 0)
      {
        const Point e = mesh.vertices[cv[v + step]] - mesh.vertices[cv[v]];
        avg += 0.25 * e;
      }
    for (unsigned int i = 0; i < dim; ++i)
      J[i][d] = avg[i];
  }
  return determinant(J);
}
} // namespace

void CoarseMesh::compute_connectivity()
{
  DGFLOW_ASSERT(!cells.empty(), "empty coarse mesh");
  if (boundary_ids.size() != cells.size())
    boundary_ids.assign(cells.size(),
                        {default_boundary_id, default_boundary_id,
                         default_boundary_id, default_boundary_id,
                         default_boundary_id, default_boundary_id});
  neighbors.assign(cells.size(), {});

  for (index_t c = 0; c < n_cells(); ++c)
    DGFLOW_ASSERT(center_jacobian_det(*this, c) > 0,
                  "coarse cell " << c << " is left-handed or degenerate");

  // collect faces keyed by their sorted vertex quadruple
  std::map<std::array<index_t, 4>,
           std::vector<std::pair<index_t, unsigned int>>>
    face_map;
  for (index_t c = 0; c < n_cells(); ++c)
    for (unsigned int f = 0; f < 6; ++f)
    {
      const auto fv = face_vertices(f);
      std::array<index_t, 4> key;
      for (unsigned int i = 0; i < 4; ++i)
        key[i] = cells[c].vertices[fv[i]];
      std::sort(key.begin(), key.end());
      face_map[key].emplace_back(c, f);
    }

  for (const auto &[key, owners] : face_map)
  {
    DGFLOW_ASSERT(owners.size() <= 2, "non-manifold mesh: face shared by "
                                        << owners.size() << " cells");
    if (owners.size() == 1)
      continue; // boundary face keeps its id

    const auto [ca, fa] = owners[0];
    const auto [cb, fb] = owners[1];
    std::array<index_t, 4> va, vb;
    const auto fva = face_vertices(fa), fvb = face_vertices(fb);
    for (unsigned int i = 0; i < 4; ++i)
    {
      va[i] = cells[ca].vertices[fva[i]];
      vb[i] = cells[cb].vertices[fvb[i]];
    }
    const unsigned int o_ab = quad_orientation(va, vb);
    DGFLOW_ASSERT(o_ab < 8, "no valid quad orientation between cells "
                              << ca << " and " << cb);

    neighbors[ca][fa] = {cb, static_cast<unsigned char>(fb),
                         static_cast<unsigned char>(o_ab)};
    neighbors[cb][fb] = {ca, static_cast<unsigned char>(fa),
                         static_cast<unsigned char>(inverse_orientation(o_ab))};
    boundary_ids[ca][fa] = interior_face_id;
    boundary_ids[cb][fb] = interior_face_id;
  }
}

} // namespace dgflow
