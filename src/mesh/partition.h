#pragma once

// Domain partitioning along the space-filling-curve cell order (paper
// Section 3.3: Morton curve via p4est). Used by the virtual-MPI runs and by
// the scaling performance model to count per-rank work and cut faces.

#include <vector>

#include "mesh/mesh.h"

namespace dgflow
{
/// Assigns each active cell to one of n_ranks contiguous SFC chunks of
/// near-equal size. Returns the rank of each cell.
std::vector<int> partition_cells(const Mesh &mesh, const int n_ranks);

/// Buddy rank for checkpoint-shard replication: the Morton neighbour, i.e.
/// the rank owning the next contiguous chunk of the space-filling curve
/// (cyclic). Adjacent SFC chunks are spatially close, so on a real machine
/// the buddy copy travels over links the ghost exchange already uses —
/// while still living on different hardware than the primary shard.
int morton_buddy_rank(const int rank, const int n_ranks);

/// Communication statistics of a partition, the inputs to the scaling model.
struct PartitionStats
{
  std::vector<std::size_t> cells_per_rank;
  std::vector<std::size_t> cut_faces_per_rank; ///< faces with off-rank neighbor
  std::vector<std::size_t> neighbors_per_rank; ///< distinct ranks to talk to
  /// unique (cell, neighbor) pairs this rank sends in one ghost exchange (a
  /// cell adjacent to two neighbor ranks counts twice: two messages carry it)
  std::vector<std::size_t> send_cells_per_rank;
  /// unique (cell, neighbor) pairs this rank receives (its ghost cells,
  /// counted per owning neighbor)
  std::vector<std::size_t> ghost_cells_per_rank;
  std::size_t max_cells = 0;
  std::size_t max_cut_faces = 0;
  std::size_t max_neighbors = 0;
};

PartitionStats compute_partition_stats(const Mesh &mesh,
                                       const std::vector<int> &rank_of_cell,
                                       const int n_ranks);

/// Predicted vmpi traffic of one ghost exchange (one DistributedVector
/// update_ghost_values), counted on the send side like
/// Communicator::Traffic: one message per neighbor, whose payload is the
/// cell dof blocks that neighbor needs.
struct ExchangeTraffic
{
  std::vector<std::size_t> messages_per_rank;
  std::vector<std::size_t> bytes_per_rank;
  std::size_t total_messages = 0;
  std::size_t total_bytes = 0;
};

ExchangeTraffic predict_exchange_traffic(const PartitionStats &stats,
                                         const std::size_t dofs_per_cell,
                                         const std::size_t bytes_per_scalar);

} // namespace dgflow
