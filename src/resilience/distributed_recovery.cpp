#include "resilience/distributed_recovery.h"

#include <algorithm>
#include <sstream>

#include "common/timer.h"
#include "instrumentation/profiler.h"
#include "resilience/ckpt_scheduler.h"

namespace dgflow::resilience
{
namespace
{
std::string rank_list(const std::vector<int> &ranks)
{
  std::ostringstream ss;
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ss << (i ? ", " : "") << ranks[i];
  return ss.str();
}
} // namespace

RecoveryContext::RecoveryContext(vmpi::Communicator &comm)
  : RecoveryContext(comm, Options())
{}

RecoveryContext::RecoveryContext(vmpi::Communicator &comm,
                                 const Options &options)
  : comm_(comm), options_(options)
{}

void RecoveryContext::at_iteration_boundary(const bool local_ok)
{
  ++agreements_;
  const vmpi::AgreeResult verdict =
    comm_.agree(local_ok, options_.agree_timeout);
  if (verdict.all_ok)
    return;

  const std::vector<int> dead = verdict.absent();
  if (!dead.empty())
    throw vmpi::RankFailure("agreed rank failure at an iteration boundary: "
                            "rank(s) " +
                              rank_list(dead) +
                              " did not reach the agreement round (observed "
                              "on rank " +
                              std::to_string(comm_.rank()) + ")",
                            comm_.rank(), dead, comm_.epoch());
  // everyone is alive, but someone's local state is unsound: abandon the
  // solve collectively (every rank throws here, at the same boundary)
  throw SolveAbandoned("distributed solve abandoned by agreement: rank(s) " +
                         rank_list(verdict.failed()) +
                         " reported unsound local state",
                       verdict.failed());
}

void RecoveryContext::resolve_failure()
{
  ++agreements_;
  // this rank is alive (it is executing this code); the dead are whoever
  // fails to arrive before the round's deadline
  const vmpi::AgreeResult verdict =
    comm_.agree(true, options_.agree_timeout);

  // drain everything queued for the abandoned exchange and enter the next
  // epoch: any message of the old epoch still in flight (a peer's send that
  // raced the failure) can then never match a retry's recv
  comm_.cancel_pending();
  comm_.advance_epoch(comm_.epoch() + 1);

  const std::vector<int> dead = verdict.absent();
  if (!dead.empty())
    throw vmpi::RankFailure(
      "agreed rank failure while resolving a communication error: rank(s) " +
        rank_list(dead) + " did not reach the agreement round (observed on "
                          "rank " +
        std::to_string(comm_.rank()) + ")",
      comm_.rank(), dead, comm_.epoch());
  // all peers alive: the caught error was transient/local — return so the
  // caller rethrows it and the driver retries without shrinking
}

DistributedRunReport run_resilient(
  const int n_ranks, const DistributedRecoveryOptions &options,
  const std::function<void(vmpi::Communicator &, RecoveryContext &,
                           const RecoveryAttempt &)> &body)
{
  DGFLOW_ASSERT(n_ranks >= 1, "need at least one rank");
  DistributedRunReport report;
  report.final_n_ranks = n_ranks;

  RecoveryAttempt attempt;
  attempt.n_ranks = n_ranks;
  attempt.initial_n_ranks = n_ranks;

  // failure-rate feed for the Daly checkpoint interval: every rung taken is
  // one observed failure at the elapsed time it occurred
  Timer run_clock;
  const auto record_failure = [&] {
    if (options.checkpoint_scheduler != nullptr)
      options.checkpoint_scheduler->record_failure(run_clock.seconds());
  };

  int retries_at_width = 0;
  while (true)
  {
    ++report.attempts;
    try
    {
      vmpi::run(attempt.n_ranks, [&](vmpi::Communicator &comm) {
        comm.advance_epoch(attempt.epoch);
        RecoveryContext ctx(comm, options.context);
        body(comm, ctx, attempt);
      });
      report.succeeded = true;
      report.final_n_ranks = attempt.n_ranks;
      if (options.checkpoint_scheduler != nullptr)
        options.checkpoint_scheduler->observe(run_clock.seconds());
      return report;
    }
    catch (const vmpi::RankFailure &failure)
    {
      record_failure();
      // agreed death: shrink immediately (retrying at the same width would
      // meet the same dead rank again) and restore from the shard
      // checkpoint over the surviving count
      std::vector<int> dead = failure.failed_ranks;
      std::sort(dead.begin(), dead.end());
      dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
      report.failure_history.push_back(dead);
      const int survivors =
        attempt.n_ranks - static_cast<int>(dead.size());
      if (survivors < options.min_ranks ||
          report.attempts >= options.max_attempts)
        throw;
      ++report.shrinks;
      ++report.restores;
      DGFLOW_PROF_COUNT("recovery_shrinks", 1);
      DGFLOW_PROF_COUNT("recovery_restores", 1);
      attempt.failed_ranks = dead;
      attempt.n_ranks = survivors;
      attempt.restore = true;
      attempt.scrub = false;
      retries_at_width = 0;
    }
    catch (const SdcDetected &)
    {
      record_failure();
      // cheapest rung: an ABFT guard caught silent data corruption the
      // in-solve rollback could not absorb — rerun at the same width with a
      // scrub pass (the body verifies and rebuilds its protected setup
      // artifacts) and no checkpoint restore. Does not count toward the
      // per-width retry budget: a scrubbed rerun starts from clean state.
      ++report.sdc_repairs;
      if (report.sdc_repairs > options.max_sdc_repairs ||
          report.attempts >= options.max_attempts)
        throw;
      DGFLOW_PROF_COUNT("recovery_sdc_repairs", 1);
      attempt.failed_ranks.clear();
      attempt.restore = false;
      attempt.scrub = true;
    }
    catch (const std::exception &)
    {
      record_failure();
      // transient failure (timeout, corruption, abandoned solve): climb the
      // retry -> restore rungs at the current width
      ++retries_at_width;
      if (retries_at_width > options.max_retries_per_width ||
          report.attempts >= options.max_attempts)
        throw;
      attempt.failed_ranks.clear();
      attempt.restore = retries_at_width >= 2;
      attempt.scrub = false;
      if (attempt.restore)
      {
        ++report.restores;
        DGFLOW_PROF_COUNT("recovery_restores", 1);
      }
      else
        ++report.retries;
    }
    ++attempt.attempt;
    ++attempt.epoch;
  }
}

} // namespace dgflow::resilience
