#pragma once

// Multi-generation checkpoint store with asynchronous publication.
//
// A single checkpoint file is a single point of failure: a torn write during
// publish (CkptIo's lying-disk model — or a real power cut) leaves NO valid
// restart point. The GenerationStore instead keeps a ring of the last N
// checkpoint *generations*, each a directory of ordinary checkpoint files:
//
//   <root>/gen000007/           committed generation 7 (state.ckpt, or
//                               rank<k>.ckpt + manifest.ckpt for shards)
//   <root>/gen000008.tmp/       generation being staged (invisible to scans)
//   <root>/HEAD.ckpt            checksummed u64: newest committed id (a hint;
//                               recovery never trusts it blindly)
//
// Commit protocol: write every file of the generation durably into the .tmp
// staging directory, rename the directory over its final name, fsync the
// root, then publish HEAD. Each step is atomic, so a crash at any point
// leaves either a fully committed generation or droppings a startup
// garbage_collect() prunes. Recovery (scan / newest_valid_generation) walks
// generations newest-first and returns the first whose every checkpoint file
// verifies — HEAD accelerates the common case but a corrupted or stale HEAD
// only costs a longer walk, never a wrong answer.
//
// The AsyncCheckpointer on top takes already-encoded in-memory images
// (CheckpointWriter::encode() runs on the solver thread — the only part
// that needs solver state) and performs all disk I/O on the ThreadPool's
// background service thread, so INSSolver::advance never blocks on disk.
// Back-pressure: submit() blocks only while max_in_flight generations are
// still being written (disk slower than the checkpoint cadence), and
// drain() awaits outstanding writes on shutdown and before any restore.
// Write failures are recorded in Status — a failed checkpoint must never
// kill a healthy solve; the previous committed generation remains valid.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "resilience/ckpt_io.h"

namespace dgflow::resilience
{
class GenerationStore
{
public:
  struct Options
  {
    /// committed generations kept in the ring (older ones are pruned)
    std::uint64_t keep_generations = 3;
    /// fsync files and directories on publish (off only for benchmarks)
    bool durable = true;
  };

  /// Opens (creating if needed) the store rooted at @p root and prunes
  /// leftovers of crashed runs (see garbage_collect).
  explicit GenerationStore(std::string root);
  GenerationStore(std::string root, const Options &options);

  const std::string &root() const { return root_; }
  const Options &options() const { return options_; }

  /// Reserves the next generation id. No filesystem work, never throws —
  /// safe to call under back-pressure accounting before the background
  /// task that does the real I/O is even scheduled.
  std::uint64_t allocate_generation();

  /// Creates the staging directory for generation @p id and returns its
  /// path. Files are written into it (via CkptIo::write_file_atomic) and
  /// the generation is then committed or aborted.
  std::string create_staging(std::uint64_t id);

  /// Atomically publishes generation @p id: renames the staging directory
  /// over the committed name, fsyncs the root, records @p id in HEAD, and
  /// prunes generations beyond the ring size.
  void commit_generation(std::uint64_t id);

  /// Removes the staging directory of a generation whose write failed.
  void abort_generation(std::uint64_t id);

  /// Committed directory of generation @p id ("<root>/gen000007").
  std::string generation_directory(std::uint64_t id) const;

  /// All committed generation ids, ascending (no verification).
  std::vector<std::uint64_t> generations() const;

  /// Newest generation whose every checkpoint file verifies, walking the
  /// ring newest-first (HEAD is consulted as a starting hint only);
  /// std::nullopt when no generation survives verification.
  std::optional<std::uint64_t> newest_valid_generation() const;

  /// True when every *.ckpt in @p directory parses and checksums, and —
  /// when a manifest.ckpt is present — the shard set reassembles against
  /// it. A generation failing this is skipped by recovery, never loaded.
  static bool verify_generation(const std::string &directory);

  struct GcReport
  {
    std::uint64_t pruned_tmp = 0;         ///< stale .tmp files/directories
    std::uint64_t pruned_generations = 0; ///< generations beyond the ring
  };

  /// Removes crash leftovers: every "*.tmp" entry (a half-written
  /// generation or file that never committed) and committed generations
  /// beyond keep_generations. Runs automatically from the constructor.
  GcReport garbage_collect();

private:
  void write_head(std::uint64_t id);
  std::optional<std::uint64_t> read_head() const;

  std::string root_;
  Options options_;
  std::atomic<std::uint64_t> next_id_{0};
};

class AsyncCheckpointer
{
public:
  struct Options
  {
    std::uint64_t keep_generations = 3;
    bool durable = true;
    /// generations allowed in flight before submit() back-pressures
    std::uint64_t max_in_flight = 1;
    /// false: write synchronously on the calling thread (the baseline mode
    /// the recovery microbench compares against)
    bool async = true;
  };

  explicit AsyncCheckpointer(const std::string &root);
  AsyncCheckpointer(const std::string &root, const Options &options);

  /// Drains outstanding writes (a destructor must not let a background
  /// task outlive the store it writes into).
  ~AsyncCheckpointer();

  AsyncCheckpointer(const AsyncCheckpointer &) = delete;
  AsyncCheckpointer &operator=(const AsyncCheckpointer &) = delete;

  /// One file of a generation: "<staging>/<name>" gets @p image 's bytes.
  struct NamedImage
  {
    std::string name;
    std::vector<char> image;
  };

  /// Submits one checkpoint generation for background publication and
  /// returns its id. The images were encoded on the calling thread
  /// (CheckpointWriter::encode()), so this call touches no solver state;
  /// it blocks only under back-pressure (max_in_flight generations still
  /// being written — time spent there is the solver-visible stall).
  /// Disk failures do NOT propagate: they surface in status() and as the
  /// ckpt_write_failures profiler counter.
  std::uint64_t submit(std::vector<NamedImage> images);

  /// Blocks until no generation is in flight. Call before restoring (a
  /// write racing a scan could commit mid-verification) and on shutdown.
  void drain();

  struct Status
  {
    std::uint64_t submitted = 0;
    std::uint64_t published = 0;
    std::uint64_t failed = 0;
    std::string last_error; ///< what() of the most recent write failure
  };

  Status status() const;

  GenerationStore &store() { return store_; }
  const GenerationStore &store() const { return store_; }

private:
  /// The background (or, when async=false, inline) body: stage, write
  /// every image durably, commit; on any failure abort and record.
  void write_generation(std::uint64_t id, std::vector<NamedImage> images);

  GenerationStore store_;
  Options options_;

  mutable std::mutex mutex_; ///< guards in_flight_ and status_
  std::condition_variable cv_;
  std::uint64_t in_flight_ = 0;
  Status status_;
};

} // namespace dgflow::resilience
