#pragma once

// Versioned, checksummed binary checkpoint files for exact-resume restarts.
//
// File layout (little-endian, host byte order — checkpoints restart the run
// on the machine class that wrote them):
//
//   8 bytes   magic "DGFLOWCK"
//   u32       format version (currently 1)
//   u32       reserved (0)
//   u64       payload size in bytes
//   u64       FNV-1a 64 checksum of the payload
//   payload   sequence of tagged records
//
// Records are type-tagged so layout drift between writer and reader is a
// structured CheckpointError, not silent misinterpretation:
//
//   'u' + u64                      unsigned scalar
//   'd' + f64                      double scalar
//   'v' + u8 elem_size + u64 count + raw data    numeric vector
//
// Values are written bit-for-bit (no text round-trip), which is what gives
// a restarted simulation the exact trajectory of the uninterrupted one.
// The writer stages the payload in memory and publishes the file durably and
// atomically through the resilience/ckpt_io.h shim (write "<path>.tmp",
// fsync, rename, fsync the parent directory), so neither a crash
// mid-checkpoint nor a power loss right after publish can leave a torn file
// where a restart would look for a good one. Routing through the shim also
// makes every checkpoint byte reachable by the DGFLOW_FAULT_IO_* fault
// injection.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/exceptions.h"
#include "common/vector.h"

namespace dgflow::resilience
{
/// A checkpoint file is missing, truncated, corrupted (checksum mismatch),
/// from an incompatible format version, or read in the wrong record order.
class CheckpointError : public std::runtime_error
{
public:
  explicit CheckpointError(const std::string &what)
    : std::runtime_error("checkpoint error: " + what)
  {}
};

namespace internal
{
inline std::uint64_t fnv1a64(const char *data, const std::size_t n)
{
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i)
  {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr char magic[8] = {'D', 'G', 'F', 'L', 'O', 'W', 'C', 'K'};
constexpr std::uint32_t format_version = 1;
} // namespace internal

class CheckpointWriter
{
public:
  explicit CheckpointWriter(std::string path) : path_(std::move(path)) {}

  ~CheckpointWriter()
  {
    // close() is the committing operation; an abandoned writer (exception
    // unwound past it) must not publish a partial checkpoint
  }

  void write_u64(const std::uint64_t v)
  {
    append_tag('u');
    append_raw(&v, sizeof(v));
  }

  void write_double(const double v)
  {
    append_tag('d');
    append_raw(&v, sizeof(v));
  }

  template <typename Number>
  void write_vector(const Vector<Number> &v)
  {
    append_tag('v');
    const std::uint8_t elem_size = sizeof(Number);
    const std::uint64_t count = v.size();
    append_raw(&elem_size, sizeof(elem_size));
    append_raw(&count, sizeof(count));
    append_raw(v.data(), v.size() * sizeof(Number));
  }

  /// Checksums the payload and durably + atomically publishes the file via
  /// the CkptIo shim. Returns the payload checksum (shard manifests record
  /// it for integrity checks).
  std::uint64_t close();

  /// Disables the fsyncs on publish (benchmark baselines measuring the raw
  /// write path; production checkpoints stay durable).
  void set_durable(const bool durable) { durable_ = durable; }

  /// Serializes the complete file image (header + checksum + payload) into
  /// memory without touching disk — the form a shard takes when replicated
  /// to its buddy rank over vmpi. Does not mark the writer closed.
  std::vector<char> encode() const;

private:
  void append_tag(const char tag) { payload_.push_back(tag); }

  void append_raw(const void *data, const std::size_t bytes)
  {
    const char *c = static_cast<const char *>(data);
    payload_.insert(payload_.end(), c, c + bytes);
  }

  std::string path_;
  std::vector<char> payload_;
  bool closed_ = false;
  bool durable_ = true;
};

class CheckpointReader
{
public:
  /// Loads the file and validates magic, version, size and checksum; throws
  /// CheckpointError on any mismatch (a corrupted checkpoint must be
  /// rejected before a single value of it reaches solver state).
  explicit CheckpointReader(const std::string &path);

  /// Parses an in-memory file image (as produced by CheckpointWriter::
  /// encode(), e.g. a buddy-replicated shard received over vmpi) with the
  /// same validation as the file constructor. @p label names the source in
  /// error messages.
  CheckpointReader(const std::vector<char> &image, const std::string &label);

  /// FNV-1a checksum of the validated payload (matches what close() returned
  /// when the checkpoint was written; shard manifests compare against it).
  std::uint64_t checksum() const { return checksum_; }

  std::uint64_t read_u64()
  {
    expect_tag('u');
    std::uint64_t v;
    extract_raw(&v, sizeof(v));
    return v;
  }

  double read_double()
  {
    expect_tag('d');
    double v;
    extract_raw(&v, sizeof(v));
    return v;
  }

  template <typename Number>
  void read_vector(Vector<Number> &v)
  {
    expect_tag('v');
    std::uint8_t elem_size;
    std::uint64_t count;
    extract_raw(&elem_size, sizeof(elem_size));
    extract_raw(&count, sizeof(count));
    if (elem_size != sizeof(Number))
      throw CheckpointError("vector element size mismatch: file has " +
                            std::to_string(int(elem_size)) +
                            "-byte elements, reader expects " +
                            std::to_string(sizeof(Number)));
    v.reinit(count, true);
    extract_raw(v.data(), count * sizeof(Number));
  }

  /// True once every record has been consumed.
  bool exhausted() const { return pos_ == payload_.size(); }

private:
  void expect_tag(const char tag)
  {
    char t;
    extract_raw(&t, 1);
    if (t != tag)
      throw CheckpointError(std::string("record type mismatch: expected '") +
                            tag + "', found '" + t +
                            "' at payload offset " + std::to_string(pos_ - 1));
  }

  void extract_raw(void *data, const std::size_t bytes)
  {
    if (pos_ + bytes > payload_.size())
      throw CheckpointError("truncated payload: need " +
                            std::to_string(bytes) + " bytes at offset " +
                            std::to_string(pos_) + ", payload has " +
                            std::to_string(payload_.size()));
    std::memcpy(data, payload_.data() + pos_, bytes);
    pos_ += bytes;
  }

  /// Shared validation path for the file and in-memory constructors.
  void parse(const char *image, std::size_t bytes, const std::string &label);

  std::vector<char> payload_;
  std::size_t pos_ = 0;
  std::uint64_t checksum_ = 0;
};

} // namespace dgflow::resilience
