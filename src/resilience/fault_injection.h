#pragma once

// Deterministic, seeded fault-injection plan for the vmpi layer. A FaultPlan
// implements vmpi::FaultHandler: installed on every rank's Communicator it
// decides, per message, whether to drop, delay, reorder or corrupt the
// payload, and whether a rank stalls before entering a collective. All
// decisions are pure hashes of (seed, source, dest, tag, sequence number),
// so a faulty run is bit-for-bit reproducible regardless of thread
// interleaving — the property that makes "did the recovery path fire?"
// assertions in tests meaningful.
//
// Env knobs (read by FaultPlan::config_from_env, all optional):
//   DGFLOW_FAULT_SEED       hash seed (default 1)
//   DGFLOW_FAULT_DROP       per-message drop probability in [0,1]
//   DGFLOW_FAULT_DELAY      per-message delay probability in [0,1]
//   DGFLOW_FAULT_DELAY_MS   injected in-flight latency (default 1 ms)
//   DGFLOW_FAULT_REORDER    per-message reorder probability in [0,1]
//   DGFLOW_FAULT_CORRUPT    per-message payload-corruption probability
//   DGFLOW_FAULT_STALL_RANK rank stalled before collectives (-1 = none)
//   DGFLOW_FAULT_STALL_MS   stall duration (default 50 ms)
//   DGFLOW_FAULT_KILL_RANK  rank killed mid-solve (-1 = none): the victim
//                           throws RankFailure and stops servicing its
//                           mailbox; survivors recover via agree()
//   DGFLOW_FAULT_KILL_STEP  collective count at which the victim dies
//                           (default 0: its very first collective)
//   DGFLOW_FAULT_CORRUPT_COLL  per-collective payload-corruption probability
//                           (bit-flips a rank's allreduce contribution in
//                           flight; the reduction detects the checksum
//                           mismatch instead of folding garbage in)
//
// Compute-side silent-data-corruption injection (the ABFT test hammer; see
// resilience/abft.h). Unlike the message faults above these flip a bit in
// *memory* — a Krylov vector, a geometry batch, an AMG level — emulating a
// DRAM/register upset that no wire checksum can see:
//   DGFLOW_FAULT_BITFLIP_TARGET  artifact tag to hit ("krylov_x", "krylov_r",
//                           "krylov_p", "vector", ... — whatever tag the
//                           instrumented call site passes; empty = no flips)
//   DGFLOW_FAULT_BITFLIP_STEP    step/iteration number at which the flip
//                           lands (default 0)
//   DGFLOW_FAULT_BITFLIP_RANK    rank whose payload is flipped (default 0)
//   DGFLOW_FAULT_BITFLIP_BIT     bit index into the payload (-1, the
//                           default: a seeded deterministic draw)
// The flip fires exactly once per plan, so a rollback-and-redo repair path
// is not re-injured by its own retry.
//
// Checkpoint I/O fault injection (consumed by the resilience/ckpt_io.h shim
// when the plan is installed via CkptIo::install_fault_handler; decisions
// are pure hashes of (seed, path, per-path operation sequence)):
//   DGFLOW_FAULT_IO_SHORT_WRITE  per-write short-write probability: only a
//                           prefix persists and the write FAILS (structured
//                           error, truncated .tmp left for GC)
//   DGFLOW_FAULT_IO_TORN_WRITE   per-write torn-write probability: only a
//                           prefix persists but the write reports SUCCESS
//                           (lying-disk/power-cut model — only checksum
//                           verification on read can find the tear)
//   DGFLOW_FAULT_IO_ENOSPC       per-write disk-full probability
//   DGFLOW_FAULT_IO_READ_EIO     per-read I/O-error probability
//   DGFLOW_FAULT_IO_STALL        per-operation slow-disk probability
//   DGFLOW_FAULT_IO_STALL_MS     injected disk latency (default 20 ms)
//   DGFLOW_FAULT_IO_PATH         substring filter: only operations whose
//                           path contains it are candidates (e.g.
//                           "gen000002" tears exactly one generation)
//
// All values are parsed strictly (common/env.h): a set-but-malformed or
// out-of-range value throws EnvVarError naming the variable instead of
// silently becoming 0 and vacuously passing the test that relied on it.
// Together with DGFLOW_VMPI_TIMEOUT this turns any binary that installs a
// FaultPlan (Communicator::install_fault_handler) into a fault-injection
// harness whose behavior is steered entirely from the environment.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <string>

#include "common/abft_hooks.h"
#include "common/env.h"
#include "resilience/ckpt_io.h"
#include "vmpi/communicator.h"

namespace dgflow::resilience
{
class FaultPlan : public vmpi::FaultHandler,
                  public AbftInjector,
                  public IoFaultHandler
{
public:
  struct Config
  {
    std::uint64_t seed = 1;
    double drop_rate = 0.;
    double delay_rate = 0.;
    double delay_seconds = 1e-3;
    double reorder_rate = 0.;
    double corrupt_rate = 0.;
    std::size_t corrupt_bytes = 1;
    int stall_rank = -1;        ///< rank stalled before collectives (-1: none)
    double stall_seconds = 0.05;
    int only_tag = -1;          ///< restrict message faults to one tag (-1: all)
    int kill_rank = -1;         ///< rank killed mid-solve (-1: none)
    /// collective sequence number at which the victim dies; each rank's
    /// collective count is driven by its own thread, so the death point is
    /// deterministic regardless of interleaving
    unsigned long long kill_step = 0;
    double corrupt_collective_rate = 0.; ///< per-collective corruption prob.

    // compute-side bit-flip injection (AbftInjector; fires at most once)
    std::string bitflip_target;          ///< artifact tag to flip ("": none)
    unsigned long long bitflip_step = 0; ///< step/iteration of the flip
    int bitflip_rank = 0;                ///< rank whose payload is flipped
    long long bitflip_bit = -1;          ///< bit index (-1: seeded draw)

    // checkpoint I/O faults (IoFaultHandler; consumed by the CkptIo shim)
    double io_short_write_rate = 0.; ///< prefix persists, write fails
    double io_torn_write_rate = 0.;  ///< prefix persists, write "succeeds"
    double io_enospc_rate = 0.;      ///< write fails before any byte lands
    double io_read_error_rate = 0.;  ///< read fails with EIO
    double io_stall_rate = 0.;       ///< slow-disk probability per operation
    double io_stall_seconds = 0.02;  ///< injected disk latency
    /// substring filter: only paths containing it are fault candidates
    /// ("" = all checkpoint I/O)
    std::string io_path_filter;
  };

  /// Injection counts, summed over all ranks sharing the plan.
  struct Counts
  {
    unsigned long long dropped = 0;
    unsigned long long delayed = 0;
    unsigned long long reordered = 0;
    unsigned long long corrupted = 0;
    unsigned long long stalls = 0;
    unsigned long long kills = 0;
    unsigned long long corrupted_collectives = 0;
    unsigned long long bitflips = 0;
    unsigned long long io_short_writes = 0;
    unsigned long long io_torn_writes = 0;
    unsigned long long io_enospc_failures = 0;
    unsigned long long io_read_errors = 0;
    unsigned long long io_stalls = 0;
  };

  explicit FaultPlan(const Config &config) : config_(config) {}

  /// Reads every DGFLOW_FAULT_* knob. Parsing is strict: a set-but-malformed
  /// or out-of-range value throws EnvVarError naming the variable —
  /// probabilities must lie in [0, 1], durations be non-negative, ranks be
  /// -1 (disabled) or a plausible rank id — instead of atof's silent 0.
  static Config config_from_env()
  {
    constexpr long long max_rank = 1 << 20;
    constexpr long long max_step = 1ll << 62;
    Config c;
    c.seed = env_uint64("DGFLOW_FAULT_SEED", c.seed);
    c.drop_rate = env_real("DGFLOW_FAULT_DROP", 0., 0., 1.);
    c.delay_rate = env_real("DGFLOW_FAULT_DELAY", 0., 0., 1.);
    c.delay_seconds = env_real("DGFLOW_FAULT_DELAY_MS", 1., 0., 1e9) * 1e-3;
    c.reorder_rate = env_real("DGFLOW_FAULT_REORDER", 0., 0., 1.);
    c.corrupt_rate = env_real("DGFLOW_FAULT_CORRUPT", 0., 0., 1.);
    c.stall_rank = static_cast<int>(
      env_integer("DGFLOW_FAULT_STALL_RANK", -1, -1, max_rank));
    c.stall_seconds = env_real("DGFLOW_FAULT_STALL_MS", 50., 0., 1e9) * 1e-3;
    c.kill_rank = static_cast<int>(
      env_integer("DGFLOW_FAULT_KILL_RANK", -1, -1, max_rank));
    c.kill_step = static_cast<unsigned long long>(
      env_integer("DGFLOW_FAULT_KILL_STEP", 0, 0, max_step));
    c.corrupt_collective_rate =
      env_real("DGFLOW_FAULT_CORRUPT_COLL", 0., 0., 1.);
    if (const char *v = std::getenv("DGFLOW_FAULT_BITFLIP_TARGET"))
      c.bitflip_target = v;
    c.bitflip_step = static_cast<unsigned long long>(
      env_integer("DGFLOW_FAULT_BITFLIP_STEP", 0, 0, max_step));
    c.bitflip_rank = static_cast<int>(
      env_integer("DGFLOW_FAULT_BITFLIP_RANK", 0, 0, max_rank));
    c.bitflip_bit = env_integer("DGFLOW_FAULT_BITFLIP_BIT", -1, -1, max_step);
    c.io_short_write_rate =
      env_real("DGFLOW_FAULT_IO_SHORT_WRITE", 0., 0., 1.);
    c.io_torn_write_rate = env_real("DGFLOW_FAULT_IO_TORN_WRITE", 0., 0., 1.);
    c.io_enospc_rate = env_real("DGFLOW_FAULT_IO_ENOSPC", 0., 0., 1.);
    c.io_read_error_rate = env_real("DGFLOW_FAULT_IO_READ_EIO", 0., 0., 1.);
    c.io_stall_rate = env_real("DGFLOW_FAULT_IO_STALL", 0., 0., 1.);
    c.io_stall_seconds =
      env_real("DGFLOW_FAULT_IO_STALL_MS", 20., 0., 1e9) * 1e-3;
    if (const char *v = std::getenv("DGFLOW_FAULT_IO_PATH"))
      c.io_path_filter = v;
    return c;
  }

  const Config &config() const { return config_; }

  Counts counts() const
  {
    Counts c;
    c.dropped = dropped_.load(std::memory_order_relaxed);
    c.delayed = delayed_.load(std::memory_order_relaxed);
    c.reordered = reordered_.load(std::memory_order_relaxed);
    c.corrupted = corrupted_.load(std::memory_order_relaxed);
    c.stalls = stalls_.load(std::memory_order_relaxed);
    c.kills = kills_.load(std::memory_order_relaxed);
    c.corrupted_collectives =
      corrupted_collectives_.load(std::memory_order_relaxed);
    c.bitflips = bitflips_.load(std::memory_order_relaxed);
    c.io_short_writes = io_short_writes_.load(std::memory_order_relaxed);
    c.io_torn_writes = io_torn_writes_.load(std::memory_order_relaxed);
    c.io_enospc_failures =
      io_enospc_failures_.load(std::memory_order_relaxed);
    c.io_read_errors = io_read_errors_.load(std::memory_order_relaxed);
    c.io_stalls = io_stalls_.load(std::memory_order_relaxed);
    return c;
  }

  vmpi::FaultAction on_message(const int source, const int dest,
                               const int tag, const unsigned long long seq,
                               const std::size_t bytes) override
  {
    vmpi::FaultAction action;
    if (config_.only_tag >= 0 && tag != config_.only_tag)
      return action;
    // independent deterministic draws per fault type (distinct salts)
    if (draw(1, source, dest, tag, seq) < config_.drop_rate)
    {
      action.drop = true;
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return action;
    }
    if (draw(2, source, dest, tag, seq) < config_.delay_rate)
    {
      action.delay_seconds = config_.delay_seconds;
      delayed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (draw(3, source, dest, tag, seq) < config_.reorder_rate)
    {
      action.reorder = true;
      reordered_.fetch_add(1, std::memory_order_relaxed);
    }
    if (draw(4, source, dest, tag, seq) < config_.corrupt_rate && bytes > 0)
    {
      action.corrupt_bytes = config_.corrupt_bytes;
      corrupted_.fetch_add(1, std::memory_order_relaxed);
    }
    return action;
  }

  double stall_before_collective(const int rank,
                                 const unsigned long long /*seq*/) override
  {
    if (rank != config_.stall_rank || config_.stall_seconds <= 0.)
      return 0.;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    return config_.stall_seconds;
  }

  bool kill_before_collective(const int rank,
                              const unsigned long long seq) override
  {
    if (rank != config_.kill_rank || seq < config_.kill_step)
      return false;
    kills_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::size_t corrupt_collective(const int rank,
                                 const unsigned long long seq) override
  {
    if (draw(5, rank, rank, -1, seq) >= config_.corrupt_collective_rate)
      return 0;
    corrupted_collectives_.fetch_add(1, std::memory_order_relaxed);
    return config_.corrupt_bytes;
  }

  /// AbftInjector: flips one bit of @p data when (artifact, step, rank)
  /// matches the configured target. The flip fires at most once per plan —
  /// the instrumented solver calls inject() every iteration, and a repair
  /// that rolls back and redoes work must not be re-injured by its retry.
  void inject(const char *artifact, const unsigned long long step,
              const int rank, void *data, const std::size_t bytes) override
  {
    if (bytes == 0 || config_.bitflip_target.empty() ||
        config_.bitflip_target != artifact || rank != config_.bitflip_rank ||
        step != config_.bitflip_step)
      return;
    if (bitflip_fired_.exchange(true, std::memory_order_relaxed))
      return;
    const std::uint64_t n_bits = std::uint64_t(bytes) * 8u;
    std::uint64_t bit;
    if (config_.bitflip_bit >= 0)
      bit = std::uint64_t(config_.bitflip_bit) % n_bits;
    else
    {
      // seeded draw: hash the artifact tag into the key so different targets
      // hit different offsets under the same seed
      std::uint64_t tag_hash = 0xcbf29ce484222325ull;
      for (const char *c = artifact; *c != '\0'; ++c)
        tag_hash = (tag_hash ^ std::uint64_t((unsigned char)*c)) *
                   0x100000001b3ull;
      bit = mix64({6, tag_hash, step, std::uint64_t(rank)}) % n_bits;
    }
    static_cast<unsigned char *>(data)[bit / 8] ^=
      (unsigned char)(1u << (bit % 8));
    bitflips_.fetch_add(1, std::memory_order_relaxed);
  }

  /// IoFaultHandler: per-write fault decision for the CkptIo shim. Draws
  /// are pure hashes of (seed, path hash, per-path sequence), so a faulty
  /// run replays identically whether the write happens on the solver thread
  /// or the background checkpoint writer. At most one fault class fires per
  /// operation (distinct salts, checked in severity order); truncation
  /// offsets are themselves seeded draws over [0, bytes).
  IoWriteFault on_ckpt_write(const std::string &path,
                             const std::size_t bytes,
                             const unsigned long long seq) override
  {
    IoWriteFault fault;
    if (!io_path_matches(path))
      return fault;
    const std::uint64_t h = path_hash(path);
    if (iodraw(10, h, seq) < config_.io_enospc_rate)
    {
      io_enospc_failures_.fetch_add(1, std::memory_order_relaxed);
      fault.enospc = true;
      return fault;
    }
    if (bytes > 0 && iodraw(11, h, seq) < config_.io_torn_write_rate)
    {
      fault.torn_write_at =
        static_cast<long long>(mix64({12, h, seq}) % std::uint64_t(bytes));
      io_torn_writes_.fetch_add(1, std::memory_order_relaxed);
      return fault;
    }
    if (bytes > 0 && iodraw(13, h, seq) < config_.io_short_write_rate)
    {
      fault.short_write_at =
        static_cast<long long>(mix64({14, h, seq}) % std::uint64_t(bytes));
      io_short_writes_.fetch_add(1, std::memory_order_relaxed);
      return fault;
    }
    if (iodraw(15, h, seq) < config_.io_stall_rate)
    {
      fault.stall_seconds = config_.io_stall_seconds;
      io_stalls_.fetch_add(1, std::memory_order_relaxed);
    }
    return fault;
  }

  IoReadFault on_ckpt_read(const std::string &path,
                           const unsigned long long seq) override
  {
    IoReadFault fault;
    if (!io_path_matches(path))
      return fault;
    const std::uint64_t h = path_hash(path);
    if (iodraw(16, h, seq) < config_.io_read_error_rate)
    {
      io_read_errors_.fetch_add(1, std::memory_order_relaxed);
      fault.eio = true;
      return fault;
    }
    if (iodraw(17, h, seq) < config_.io_stall_rate)
    {
      fault.stall_seconds = config_.io_stall_seconds;
      io_stalls_.fetch_add(1, std::memory_order_relaxed);
    }
    return fault;
  }

private:
  bool io_path_matches(const std::string &path) const
  {
    return config_.io_path_filter.empty() ||
           path.find(config_.io_path_filter) != std::string::npos;
  }

  static std::uint64_t path_hash(const std::string &path)
  {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : path)
      h = (h ^ std::uint64_t((unsigned char)c)) * 0x100000001b3ull;
    return h;
  }

  /// Uniform draw in [0,1) keyed on (salt, path hash, operation sequence).
  double iodraw(const std::uint64_t salt, const std::uint64_t path_hash,
                const unsigned long long seq) const
  {
    return double(mix64({salt, path_hash, seq}) >> 11) * 0x1.0p-53;
  }

  /// splitmix64 finalizer folded over the keys, seeded by config_.seed.
  std::uint64_t mix64(std::initializer_list<std::uint64_t> keys) const
  {
    std::uint64_t x = config_.seed;
    for (const std::uint64_t k : keys)
    {
      x += 0x9e3779b97f4a7c15ull + k;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      x = x ^ (x >> 31);
    }
    return x;
  }

  /// Uniform draw in [0,1), a pure function of the identifiers.
  double draw(const std::uint64_t salt, const int source, const int dest,
              const int tag, const unsigned long long seq) const
  {
    const std::uint64_t x =
      mix64({salt, std::uint64_t(source), std::uint64_t(dest),
             std::uint64_t(tag), std::uint64_t(seq)});
    return double(x >> 11) * 0x1.0p-53;
  }

  Config config_;
  std::atomic<unsigned long long> dropped_{0}, delayed_{0}, reordered_{0},
    corrupted_{0}, stalls_{0}, kills_{0}, corrupted_collectives_{0};
  std::atomic<unsigned long long> bitflips_{0};
  std::atomic<bool> bitflip_fired_{false};
  std::atomic<unsigned long long> io_short_writes_{0}, io_torn_writes_{0},
    io_enospc_failures_{0}, io_read_errors_{0}, io_stalls_{0};
};

} // namespace dgflow::resilience
