#pragma once

// Deterministic, seeded fault-injection plan for the vmpi layer. A FaultPlan
// implements vmpi::FaultHandler: installed on every rank's Communicator it
// decides, per message, whether to drop, delay, reorder or corrupt the
// payload, and whether a rank stalls before entering a collective. All
// decisions are pure hashes of (seed, source, dest, tag, sequence number),
// so a faulty run is bit-for-bit reproducible regardless of thread
// interleaving — the property that makes "did the recovery path fire?"
// assertions in tests meaningful.
//
// Env knobs (read by FaultPlan::config_from_env, all optional):
//   DGFLOW_FAULT_SEED       hash seed (default 1)
//   DGFLOW_FAULT_DROP       per-message drop probability in [0,1]
//   DGFLOW_FAULT_DELAY      per-message delay probability in [0,1]
//   DGFLOW_FAULT_DELAY_MS   injected in-flight latency (default 1 ms)
//   DGFLOW_FAULT_REORDER    per-message reorder probability in [0,1]
//   DGFLOW_FAULT_CORRUPT    per-message payload-corruption probability
//   DGFLOW_FAULT_STALL_RANK rank stalled before collectives (-1 = none)
//   DGFLOW_FAULT_STALL_MS   stall duration (default 50 ms)
//   DGFLOW_FAULT_KILL_RANK  rank killed mid-solve (-1 = none): the victim
//                           throws RankFailure and stops servicing its
//                           mailbox; survivors recover via agree()
//   DGFLOW_FAULT_KILL_STEP  collective count at which the victim dies
//                           (default 0: its very first collective)
//   DGFLOW_FAULT_CORRUPT_COLL  per-collective payload-corruption probability
//                           (bit-flips a rank's allreduce contribution in
//                           flight; the reduction detects the checksum
//                           mismatch instead of folding garbage in)
//
// Compute-side silent-data-corruption injection (the ABFT test hammer; see
// resilience/abft.h). Unlike the message faults above these flip a bit in
// *memory* — a Krylov vector, a geometry batch, an AMG level — emulating a
// DRAM/register upset that no wire checksum can see:
//   DGFLOW_FAULT_BITFLIP_TARGET  artifact tag to hit ("krylov_x", "krylov_r",
//                           "krylov_p", "vector", ... — whatever tag the
//                           instrumented call site passes; empty = no flips)
//   DGFLOW_FAULT_BITFLIP_STEP    step/iteration number at which the flip
//                           lands (default 0)
//   DGFLOW_FAULT_BITFLIP_RANK    rank whose payload is flipped (default 0)
//   DGFLOW_FAULT_BITFLIP_BIT     bit index into the payload (-1, the
//                           default: a seeded deterministic draw)
// The flip fires exactly once per plan, so a rollback-and-redo repair path
// is not re-injured by its own retry.
//
// All values are parsed strictly (common/env.h): a set-but-malformed or
// out-of-range value throws EnvVarError naming the variable instead of
// silently becoming 0 and vacuously passing the test that relied on it.
// Together with DGFLOW_VMPI_TIMEOUT this turns any binary that installs a
// FaultPlan (Communicator::install_fault_handler) into a fault-injection
// harness whose behavior is steered entirely from the environment.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <string>

#include "common/abft_hooks.h"
#include "common/env.h"
#include "vmpi/communicator.h"

namespace dgflow::resilience
{
class FaultPlan : public vmpi::FaultHandler, public AbftInjector
{
public:
  struct Config
  {
    std::uint64_t seed = 1;
    double drop_rate = 0.;
    double delay_rate = 0.;
    double delay_seconds = 1e-3;
    double reorder_rate = 0.;
    double corrupt_rate = 0.;
    std::size_t corrupt_bytes = 1;
    int stall_rank = -1;        ///< rank stalled before collectives (-1: none)
    double stall_seconds = 0.05;
    int only_tag = -1;          ///< restrict message faults to one tag (-1: all)
    int kill_rank = -1;         ///< rank killed mid-solve (-1: none)
    /// collective sequence number at which the victim dies; each rank's
    /// collective count is driven by its own thread, so the death point is
    /// deterministic regardless of interleaving
    unsigned long long kill_step = 0;
    double corrupt_collective_rate = 0.; ///< per-collective corruption prob.

    // compute-side bit-flip injection (AbftInjector; fires at most once)
    std::string bitflip_target;          ///< artifact tag to flip ("": none)
    unsigned long long bitflip_step = 0; ///< step/iteration of the flip
    int bitflip_rank = 0;                ///< rank whose payload is flipped
    long long bitflip_bit = -1;          ///< bit index (-1: seeded draw)
  };

  /// Injection counts, summed over all ranks sharing the plan.
  struct Counts
  {
    unsigned long long dropped = 0;
    unsigned long long delayed = 0;
    unsigned long long reordered = 0;
    unsigned long long corrupted = 0;
    unsigned long long stalls = 0;
    unsigned long long kills = 0;
    unsigned long long corrupted_collectives = 0;
    unsigned long long bitflips = 0;
  };

  explicit FaultPlan(const Config &config) : config_(config) {}

  /// Reads every DGFLOW_FAULT_* knob. Parsing is strict: a set-but-malformed
  /// or out-of-range value throws EnvVarError naming the variable —
  /// probabilities must lie in [0, 1], durations be non-negative, ranks be
  /// -1 (disabled) or a plausible rank id — instead of atof's silent 0.
  static Config config_from_env()
  {
    constexpr long long max_rank = 1 << 20;
    constexpr long long max_step = 1ll << 62;
    Config c;
    c.seed = env_uint64("DGFLOW_FAULT_SEED", c.seed);
    c.drop_rate = env_real("DGFLOW_FAULT_DROP", 0., 0., 1.);
    c.delay_rate = env_real("DGFLOW_FAULT_DELAY", 0., 0., 1.);
    c.delay_seconds = env_real("DGFLOW_FAULT_DELAY_MS", 1., 0., 1e9) * 1e-3;
    c.reorder_rate = env_real("DGFLOW_FAULT_REORDER", 0., 0., 1.);
    c.corrupt_rate = env_real("DGFLOW_FAULT_CORRUPT", 0., 0., 1.);
    c.stall_rank = static_cast<int>(
      env_integer("DGFLOW_FAULT_STALL_RANK", -1, -1, max_rank));
    c.stall_seconds = env_real("DGFLOW_FAULT_STALL_MS", 50., 0., 1e9) * 1e-3;
    c.kill_rank = static_cast<int>(
      env_integer("DGFLOW_FAULT_KILL_RANK", -1, -1, max_rank));
    c.kill_step = static_cast<unsigned long long>(
      env_integer("DGFLOW_FAULT_KILL_STEP", 0, 0, max_step));
    c.corrupt_collective_rate =
      env_real("DGFLOW_FAULT_CORRUPT_COLL", 0., 0., 1.);
    if (const char *v = std::getenv("DGFLOW_FAULT_BITFLIP_TARGET"))
      c.bitflip_target = v;
    c.bitflip_step = static_cast<unsigned long long>(
      env_integer("DGFLOW_FAULT_BITFLIP_STEP", 0, 0, max_step));
    c.bitflip_rank = static_cast<int>(
      env_integer("DGFLOW_FAULT_BITFLIP_RANK", 0, 0, max_rank));
    c.bitflip_bit = env_integer("DGFLOW_FAULT_BITFLIP_BIT", -1, -1, max_step);
    return c;
  }

  const Config &config() const { return config_; }

  Counts counts() const
  {
    Counts c;
    c.dropped = dropped_.load(std::memory_order_relaxed);
    c.delayed = delayed_.load(std::memory_order_relaxed);
    c.reordered = reordered_.load(std::memory_order_relaxed);
    c.corrupted = corrupted_.load(std::memory_order_relaxed);
    c.stalls = stalls_.load(std::memory_order_relaxed);
    c.kills = kills_.load(std::memory_order_relaxed);
    c.corrupted_collectives =
      corrupted_collectives_.load(std::memory_order_relaxed);
    c.bitflips = bitflips_.load(std::memory_order_relaxed);
    return c;
  }

  vmpi::FaultAction on_message(const int source, const int dest,
                               const int tag, const unsigned long long seq,
                               const std::size_t bytes) override
  {
    vmpi::FaultAction action;
    if (config_.only_tag >= 0 && tag != config_.only_tag)
      return action;
    // independent deterministic draws per fault type (distinct salts)
    if (draw(1, source, dest, tag, seq) < config_.drop_rate)
    {
      action.drop = true;
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return action;
    }
    if (draw(2, source, dest, tag, seq) < config_.delay_rate)
    {
      action.delay_seconds = config_.delay_seconds;
      delayed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (draw(3, source, dest, tag, seq) < config_.reorder_rate)
    {
      action.reorder = true;
      reordered_.fetch_add(1, std::memory_order_relaxed);
    }
    if (draw(4, source, dest, tag, seq) < config_.corrupt_rate && bytes > 0)
    {
      action.corrupt_bytes = config_.corrupt_bytes;
      corrupted_.fetch_add(1, std::memory_order_relaxed);
    }
    return action;
  }

  double stall_before_collective(const int rank,
                                 const unsigned long long /*seq*/) override
  {
    if (rank != config_.stall_rank || config_.stall_seconds <= 0.)
      return 0.;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    return config_.stall_seconds;
  }

  bool kill_before_collective(const int rank,
                              const unsigned long long seq) override
  {
    if (rank != config_.kill_rank || seq < config_.kill_step)
      return false;
    kills_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::size_t corrupt_collective(const int rank,
                                 const unsigned long long seq) override
  {
    if (draw(5, rank, rank, -1, seq) >= config_.corrupt_collective_rate)
      return 0;
    corrupted_collectives_.fetch_add(1, std::memory_order_relaxed);
    return config_.corrupt_bytes;
  }

  /// AbftInjector: flips one bit of @p data when (artifact, step, rank)
  /// matches the configured target. The flip fires at most once per plan —
  /// the instrumented solver calls inject() every iteration, and a repair
  /// that rolls back and redoes work must not be re-injured by its retry.
  void inject(const char *artifact, const unsigned long long step,
              const int rank, void *data, const std::size_t bytes) override
  {
    if (bytes == 0 || config_.bitflip_target.empty() ||
        config_.bitflip_target != artifact || rank != config_.bitflip_rank ||
        step != config_.bitflip_step)
      return;
    if (bitflip_fired_.exchange(true, std::memory_order_relaxed))
      return;
    const std::uint64_t n_bits = std::uint64_t(bytes) * 8u;
    std::uint64_t bit;
    if (config_.bitflip_bit >= 0)
      bit = std::uint64_t(config_.bitflip_bit) % n_bits;
    else
    {
      // seeded draw: hash the artifact tag into the key so different targets
      // hit different offsets under the same seed
      std::uint64_t tag_hash = 0xcbf29ce484222325ull;
      for (const char *c = artifact; *c != '\0'; ++c)
        tag_hash = (tag_hash ^ std::uint64_t((unsigned char)*c)) *
                   0x100000001b3ull;
      bit = mix64({6, tag_hash, step, std::uint64_t(rank)}) % n_bits;
    }
    static_cast<unsigned char *>(data)[bit / 8] ^=
      (unsigned char)(1u << (bit % 8));
    bitflips_.fetch_add(1, std::memory_order_relaxed);
  }

private:
  /// splitmix64 finalizer folded over the keys, seeded by config_.seed.
  std::uint64_t mix64(std::initializer_list<std::uint64_t> keys) const
  {
    std::uint64_t x = config_.seed;
    for (const std::uint64_t k : keys)
    {
      x += 0x9e3779b97f4a7c15ull + k;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      x = x ^ (x >> 31);
    }
    return x;
  }

  /// Uniform draw in [0,1), a pure function of the identifiers.
  double draw(const std::uint64_t salt, const int source, const int dest,
              const int tag, const unsigned long long seq) const
  {
    const std::uint64_t x =
      mix64({salt, std::uint64_t(source), std::uint64_t(dest),
             std::uint64_t(tag), std::uint64_t(seq)});
    return double(x >> 11) * 0x1.0p-53;
  }

  Config config_;
  std::atomic<unsigned long long> dropped_{0}, delayed_{0}, reordered_{0},
    corrupted_{0}, stalls_{0}, kills_{0}, corrupted_collectives_{0};
  std::atomic<unsigned long long> bitflips_{0};
  std::atomic<bool> bitflip_fired_{false};
};

} // namespace dgflow::resilience
