#pragma once

// Deterministic, seeded fault-injection plan for the vmpi layer. A FaultPlan
// implements vmpi::FaultHandler: installed on every rank's Communicator it
// decides, per message, whether to drop, delay, reorder or corrupt the
// payload, and whether a rank stalls before entering a collective. All
// decisions are pure hashes of (seed, source, dest, tag, sequence number),
// so a faulty run is bit-for-bit reproducible regardless of thread
// interleaving — the property that makes "did the recovery path fire?"
// assertions in tests meaningful.
//
// Env knobs (read by FaultPlan::config_from_env, all optional):
//   DGFLOW_FAULT_SEED       hash seed (default 1)
//   DGFLOW_FAULT_DROP       per-message drop probability in [0,1]
//   DGFLOW_FAULT_DELAY      per-message delay probability in [0,1]
//   DGFLOW_FAULT_DELAY_MS   injected in-flight latency (default 1 ms)
//   DGFLOW_FAULT_REORDER    per-message reorder probability in [0,1]
//   DGFLOW_FAULT_CORRUPT    per-message payload-corruption probability
//   DGFLOW_FAULT_STALL_RANK rank stalled before collectives (-1 = none)
//   DGFLOW_FAULT_STALL_MS   stall duration (default 50 ms)
//   DGFLOW_FAULT_KILL_RANK  rank killed mid-solve (-1 = none): the victim
//                           throws RankFailure and stops servicing its
//                           mailbox; survivors recover via agree()
//   DGFLOW_FAULT_KILL_STEP  collective count at which the victim dies
//                           (default 0: its very first collective)
//   DGFLOW_FAULT_CORRUPT_COLL  per-collective payload-corruption probability
//                           (bit-flips a rank's allreduce contribution in
//                           flight; the reduction detects the checksum
//                           mismatch instead of folding garbage in)
// Together with DGFLOW_VMPI_TIMEOUT this turns any binary that installs a
// FaultPlan (Communicator::install_fault_handler) into a fault-injection
// harness whose behavior is steered entirely from the environment.

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "vmpi/communicator.h"

namespace dgflow::resilience
{
class FaultPlan : public vmpi::FaultHandler
{
public:
  struct Config
  {
    std::uint64_t seed = 1;
    double drop_rate = 0.;
    double delay_rate = 0.;
    double delay_seconds = 1e-3;
    double reorder_rate = 0.;
    double corrupt_rate = 0.;
    std::size_t corrupt_bytes = 1;
    int stall_rank = -1;        ///< rank stalled before collectives (-1: none)
    double stall_seconds = 0.05;
    int only_tag = -1;          ///< restrict message faults to one tag (-1: all)
    int kill_rank = -1;         ///< rank killed mid-solve (-1: none)
    /// collective sequence number at which the victim dies; each rank's
    /// collective count is driven by its own thread, so the death point is
    /// deterministic regardless of interleaving
    unsigned long long kill_step = 0;
    double corrupt_collective_rate = 0.; ///< per-collective corruption prob.
  };

  /// Injection counts, summed over all ranks sharing the plan.
  struct Counts
  {
    unsigned long long dropped = 0;
    unsigned long long delayed = 0;
    unsigned long long reordered = 0;
    unsigned long long corrupted = 0;
    unsigned long long stalls = 0;
    unsigned long long kills = 0;
    unsigned long long corrupted_collectives = 0;
  };

  explicit FaultPlan(const Config &config) : config_(config) {}

  static Config config_from_env()
  {
    Config c;
    const auto real = [](const char *name, const double fallback) {
      const char *v = std::getenv(name);
      return v ? std::atof(v) : fallback;
    };
    if (const char *v = std::getenv("DGFLOW_FAULT_SEED"))
      c.seed = std::strtoull(v, nullptr, 10);
    c.drop_rate = real("DGFLOW_FAULT_DROP", 0.);
    c.delay_rate = real("DGFLOW_FAULT_DELAY", 0.);
    c.delay_seconds = real("DGFLOW_FAULT_DELAY_MS", 1.) * 1e-3;
    c.reorder_rate = real("DGFLOW_FAULT_REORDER", 0.);
    c.corrupt_rate = real("DGFLOW_FAULT_CORRUPT", 0.);
    c.stall_rank = static_cast<int>(real("DGFLOW_FAULT_STALL_RANK", -1.));
    c.stall_seconds = real("DGFLOW_FAULT_STALL_MS", 50.) * 1e-3;
    c.kill_rank = static_cast<int>(real("DGFLOW_FAULT_KILL_RANK", -1.));
    c.kill_step = static_cast<unsigned long long>(
      real("DGFLOW_FAULT_KILL_STEP", 0.));
    c.corrupt_collective_rate = real("DGFLOW_FAULT_CORRUPT_COLL", 0.);
    return c;
  }

  const Config &config() const { return config_; }

  Counts counts() const
  {
    Counts c;
    c.dropped = dropped_.load(std::memory_order_relaxed);
    c.delayed = delayed_.load(std::memory_order_relaxed);
    c.reordered = reordered_.load(std::memory_order_relaxed);
    c.corrupted = corrupted_.load(std::memory_order_relaxed);
    c.stalls = stalls_.load(std::memory_order_relaxed);
    c.kills = kills_.load(std::memory_order_relaxed);
    c.corrupted_collectives =
      corrupted_collectives_.load(std::memory_order_relaxed);
    return c;
  }

  vmpi::FaultAction on_message(const int source, const int dest,
                               const int tag, const unsigned long long seq,
                               const std::size_t bytes) override
  {
    vmpi::FaultAction action;
    if (config_.only_tag >= 0 && tag != config_.only_tag)
      return action;
    // independent deterministic draws per fault type (distinct salts)
    if (draw(1, source, dest, tag, seq) < config_.drop_rate)
    {
      action.drop = true;
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return action;
    }
    if (draw(2, source, dest, tag, seq) < config_.delay_rate)
    {
      action.delay_seconds = config_.delay_seconds;
      delayed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (draw(3, source, dest, tag, seq) < config_.reorder_rate)
    {
      action.reorder = true;
      reordered_.fetch_add(1, std::memory_order_relaxed);
    }
    if (draw(4, source, dest, tag, seq) < config_.corrupt_rate && bytes > 0)
    {
      action.corrupt_bytes = config_.corrupt_bytes;
      corrupted_.fetch_add(1, std::memory_order_relaxed);
    }
    return action;
  }

  double stall_before_collective(const int rank,
                                 const unsigned long long /*seq*/) override
  {
    if (rank != config_.stall_rank || config_.stall_seconds <= 0.)
      return 0.;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    return config_.stall_seconds;
  }

  bool kill_before_collective(const int rank,
                              const unsigned long long seq) override
  {
    if (rank != config_.kill_rank || seq < config_.kill_step)
      return false;
    kills_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::size_t corrupt_collective(const int rank,
                                 const unsigned long long seq) override
  {
    if (draw(5, rank, rank, -1, seq) >= config_.corrupt_collective_rate)
      return 0;
    corrupted_collectives_.fetch_add(1, std::memory_order_relaxed);
    return config_.corrupt_bytes;
  }

private:
  /// Uniform draw in [0,1), a pure function of the identifiers (splitmix64
  /// finalizer over the combined key).
  double draw(const std::uint64_t salt, const int source, const int dest,
              const int tag, const unsigned long long seq) const
  {
    std::uint64_t x = config_.seed;
    for (const std::uint64_t k :
         {salt, std::uint64_t(source), std::uint64_t(dest), std::uint64_t(tag),
          std::uint64_t(seq)})
    {
      x += 0x9e3779b97f4a7c15ull + k;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      x = x ^ (x >> 31);
    }
    return double(x >> 11) * 0x1.0p-53;
  }

  Config config_;
  std::atomic<unsigned long long> dropped_{0}, delayed_{0}, reordered_{0},
    corrupted_{0}, stalls_{0}, kills_{0}, corrupted_collectives_{0};
};

} // namespace dgflow::resilience
