#include "resilience/ckpt_io.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "instrumentation/profiler.h"

namespace dgflow::resilience
{
namespace
{
std::string parent_directory(const std::string &path)
{
  const std::string parent =
    std::filesystem::path(path).parent_path().string();
  return parent.empty() ? std::string(".") : parent;
}

/// RAII fd: the error paths below throw, and a leaked descriptor per failed
/// checkpoint would exhaust the table over a long faulty run.
class Fd
{
public:
  explicit Fd(const int fd) : fd_(fd) {}
  ~Fd()
  {
    if (fd_ >= 0)
      ::close(fd_);
  }
  Fd(const Fd &) = delete;
  Fd &operator=(const Fd &) = delete;
  int get() const { return fd_; }
  /// Closes eagerly (before rename) and reports failure.
  bool close_now()
  {
    const int r = ::close(fd_);
    fd_ = -1;
    return r == 0;
  }

private:
  int fd_;
};

void sleep_seconds(const double s)
{
  if (s > 0.)
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
}
} // namespace

CkptIo &CkptIo::instance()
{
  static CkptIo io;
  return io;
}

CkptIo::Stats CkptIo::stats() const
{
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void CkptIo::reset_stats()
{
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = Stats();
}

unsigned long long CkptIo::next_seq(const std::string &path)
{
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_[path]++;
}

void CkptIo::write_file_atomic(const std::string &path, const char *data,
                               const std::size_t bytes, const bool durable)
{
  IoWriteFault fault;
  if (IoFaultHandler *handler = fault_handler())
    fault = handler->on_ckpt_write(path, bytes, next_seq(path));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.writes;
    if (fault.enospc || fault.short_write_at >= 0 ||
        fault.torn_write_at >= 0 || fault.stall_seconds > 0.)
      ++stats_.injected_faults;
  }
  sleep_seconds(fault.stall_seconds);
  if (fault.enospc)
    throw CkptIoError("cannot write '" + path +
                      "': no space left on device (ENOSPC)");

  // how much actually reaches the platter: everything, or an injected prefix
  std::size_t persist = bytes;
  bool lying_disk = false;
  if (fault.torn_write_at >= 0)
  {
    persist = std::min<std::size_t>(bytes, std::size_t(fault.torn_write_at));
    lying_disk = true; // prefix persisted, success reported: the torn write
  }
  else if (fault.short_write_at >= 0)
    persist = std::min<std::size_t>(bytes, std::size_t(fault.short_write_at));

  const std::string tmp = path + ".tmp";
  Fd fd(::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644));
  if (fd.get() < 0)
    throw CkptIoError("cannot open '" + tmp +
                      "' for writing: " + std::strerror(errno));
  std::size_t written = 0;
  while (written < persist)
  {
    const ::ssize_t n =
      ::write(fd.get(), data + written, persist - written);
    if (n < 0)
    {
      if (errno == EINTR)
        continue;
      throw CkptIoError("write to '" + tmp +
                        "' failed: " + std::strerror(errno));
    }
    written += std::size_t(n);
  }
  if (!lying_disk && persist < bytes)
    // the injected (or real) short write: report it; the truncated tmp file
    // stays behind under its .tmp name — startup GC prunes it, and the
    // published name was never touched
    throw CkptIoError("short write to '" + tmp + "': " +
                      std::to_string(persist) + " of " +
                      std::to_string(bytes) + " bytes persisted");
  if (durable)
  {
    if (::fsync(fd.get()) != 0)
      throw CkptIoError("fsync of '" + tmp +
                        "' failed: " + std::strerror(errno));
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.file_fsyncs;
  }
  if (!fd.close_now())
    throw CkptIoError("close of '" + tmp +
                      "' failed: " + std::strerror(errno));
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    throw CkptIoError("cannot publish '" + tmp + "' as '" + path +
                      "': " + std::strerror(errno));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.renames;
  }
  if (durable)
    // the rename is only durable once the parent directory's entry list is:
    // without this fsync a power loss can roll the directory back to a state
    // where neither the tmp nor the published name exists
    fsync_directory(parent_directory(path));
  DGFLOW_PROF_COUNT("ckpt_io_bytes_written", static_cast<long long>(written));
}

std::vector<char> CkptIo::read_file(const std::string &path)
{
  IoReadFault fault;
  if (IoFaultHandler *handler = fault_handler())
    fault = handler->on_ckpt_read(path, next_seq(path));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.reads;
    if (fault.eio || fault.stall_seconds > 0.)
      ++stats_.injected_faults;
  }
  sleep_seconds(fault.stall_seconds);
  if (fault.eio)
    throw CkptIoError("cannot read '" + path + "': I/O error (EIO)");

  Fd fd(::open(path.c_str(), O_RDONLY));
  if (fd.get() < 0)
    throw CkptIoError("cannot open '" + path + "'");
  std::vector<char> bytes;
  char buffer[1 << 16];
  while (true)
  {
    const ::ssize_t n = ::read(fd.get(), buffer, sizeof(buffer));
    if (n < 0)
    {
      if (errno == EINTR)
        continue;
      throw CkptIoError("read of '" + path +
                        "' failed: " + std::strerror(errno));
    }
    if (n == 0)
      break;
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  DGFLOW_PROF_COUNT("ckpt_io_bytes_read",
                    static_cast<long long>(bytes.size()));
  return bytes;
}

void CkptIo::rename(const std::string &from, const std::string &to,
                    const bool durable)
{
  if (::rename(from.c_str(), to.c_str()) != 0)
    throw CkptIoError("cannot rename '" + from + "' to '" + to +
                      "': " + std::strerror(errno));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.renames;
  }
  if (durable)
    fsync_directory(parent_directory(to));
}

void CkptIo::create_directories(const std::string &dir)
{
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    throw CkptIoError("cannot create directory '" + dir +
                      "': " + ec.message());
}

void CkptIo::fsync_directory(const std::string &dir)
{
  Fd fd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY));
  if (fd.get() < 0)
    throw CkptIoError("cannot open directory '" + dir +
                      "' for fsync: " + std::strerror(errno));
  if (::fsync(fd.get()) != 0)
    throw CkptIoError("fsync of directory '" + dir +
                      "' failed: " + std::strerror(errno));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.dir_fsyncs;
}

bool CkptIo::exists(const std::string &path) const
{
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

std::uint64_t CkptIo::remove_all(const std::string &path)
{
  std::error_code ec;
  const auto n = std::filesystem::remove_all(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

std::vector<std::string>
CkptIo::list_directory(const std::string &dir) const
{
  std::vector<std::string> names;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec), end;
  if (ec)
    return names;
  for (; it != end; it.increment(ec))
  {
    if (ec)
      break;
    names.push_back(it->path().filename().string());
  }
  return names;
}

} // namespace dgflow::resilience
