#include "resilience/shard_checkpoint.h"

#include "resilience/ckpt_io.h"

namespace dgflow::resilience
{
ShardCheckpointWriter::ShardCheckpointWriter(const std::string &directory,
                                             const int rank,
                                             const int n_ranks)
  : writer_(directory + "/" + shard_file_name(rank))
{
  DGFLOW_ASSERT(rank >= 0 && rank < n_ranks,
                "invalid shard rank " << rank << " of " << n_ranks);
  // through the shim: idempotent, and a CkptIoError (subclass of
  // CheckpointError) on real failure
  CkptIo::instance().create_directories(directory);
}

ShardCheckpointWriter::Shard ShardCheckpointWriter::close()
{
  Shard shard;
  shard.image = writer_.encode();
  shard.checksum = writer_.close();
  return shard;
}

void write_shard_manifest(const std::string &directory,
                          const std::vector<std::uint64_t> &shard_checksums)
{
  CheckpointWriter manifest(directory + "/manifest.ckpt");
  manifest.write_u64(shard_checksums.size());
  for (const std::uint64_t c : shard_checksums)
    manifest.write_u64(c);
  manifest.close();
}

std::vector<std::uint64_t> read_shard_manifest(const std::string &directory)
{
  CheckpointReader manifest(directory + "/manifest.ckpt");
  const std::uint64_t n = manifest.read_u64();
  std::vector<std::uint64_t> checksums(n);
  for (std::uint64_t k = 0; k < n; ++k)
    checksums[k] = manifest.read_u64();
  if (!manifest.exhausted())
    throw CheckpointError("manifest in '" + directory +
                          "' has trailing records");
  return checksums;
}

ShardCheckpointReader::ShardCheckpointReader(
  const std::string &directory,
  const std::map<int, std::vector<char>> &image_overrides)
{
  const std::vector<std::uint64_t> checksums = read_shard_manifest(directory);
  shards_.reserve(checksums.size());
  for (std::size_t k = 0; k < checksums.size(); ++k)
  {
    const std::string name = shard_file_name(static_cast<int>(k));
    const auto override_it = image_overrides.find(static_cast<int>(k));
    if (override_it != image_overrides.end())
      shards_.emplace_back(override_it->second,
                           name + " (buddy-replicated image)");
    else
      shards_.emplace_back(directory + "/" + name);
    if (shards_.back().checksum() != checksums[k])
      throw CheckpointError(
        name + " does not match its manifest entry (shard checksum " +
        std::to_string(shards_.back().checksum()) + ", manifest records " +
        std::to_string(checksums[k]) +
        "): the shard is stale or corrupted; refusing to restart from it");
  }
}

std::uint64_t ShardCheckpointReader::read_u64()
{
  DGFLOW_ASSERT(!shards_.empty(), "checkpoint has no shards");
  const std::uint64_t v = shards_[0].read_u64();
  for (int k = 1; k < n_shards(); ++k)
    if (shards_[k].read_u64() != v)
      throw CheckpointError(shard_file_name(k) +
                            " disagrees with " + shard_file_name(0) +
                            " on a replicated scalar: the shards are not "
                            "from the same checkpoint");
  return v;
}

double ShardCheckpointReader::read_double()
{
  DGFLOW_ASSERT(!shards_.empty(), "checkpoint has no shards");
  const double v = shards_[0].read_double();
  for (int k = 1; k < n_shards(); ++k)
    if (shards_[k].read_double() != v)
      throw CheckpointError(shard_file_name(k) +
                            " disagrees with " + shard_file_name(0) +
                            " on a replicated scalar: the shards are not "
                            "from the same checkpoint");
  return v;
}

} // namespace dgflow::resilience
