#pragma once

// Rank-failure tolerance for distributed solves (the distributed analogue of
// resilience/recovering_solver.h). Three cooperating pieces:
//
//  * RecoveryContext — the RecoveryHooks implementation that solvers call at
//    iteration boundaries (solve_cg, ChebyshevSmoother sweeps, the
//    distributed V-cycle of HybridMultigrid). Each boundary is one
//    Communicator::agree round: all ranks reach the identical verdict within
//    one bounded exchange. Ranks that never arrived are presumed dead and
//    every survivor throws vmpi::RankFailure naming the same failed set at
//    the same boundary; ranks that arrived but voted unsound (non-finite
//    local state) make every rank throw SolveAbandoned instead — alive
//    ranks are a retry/restore case, not a shrink case.
//
//  * resolve_failure() — the bridge from a *locally* caught communication
//    error (TimeoutError mid-exchange) to a *collective* verdict: the
//    catcher agrees with whoever is still alive, drains its mailbox and
//    advances its communication epoch (so stale in-flight messages of the
//    abandoned exchange can never match a later retry), then either throws
//    RankFailure (peers agreed dead) or returns so the caller rethrows the
//    original, transient error.
//
//  * run_resilient() — the shrinking-recovery driver. It invokes vmpi::run
//    and climbs a four-rung ladder on failure, cheapest first:
//      rung 0 (SdcDetected): local repair — the ABFT guards caught silent
//              data corruption the in-solve rollback could not absorb;
//              rerun at the same rank count with attempt.scrub set so the
//              body scrubs its artifact checksums before reuse. No restore:
//              the state is recomputed, not reloaded.
//      rung 1: retry in a fresh epoch (same rank count, state recomputed)
//      rung 2: retry restoring from the shard checkpoint (same rank count)
//      rung 3 (taken immediately on an agreed rank death): shrink — rerun
//              with the dead ranks removed, repartitioning via the
//              Morton-SFC partitioner over the surviving count, and restore
//              from the shard checkpoint (the N→M restart that
//              ShardCheckpointReader's global reassembly enables).
//    The body receives a RecoveryAttempt describing the rung so it can
//    rebuild rank_of_cell / MatrixFree / Partitioner / multigrid for the
//    attempt's rank count and decide whether to restore.
//
// The restart model mirrors ULFM-style shrinking recovery: survivors do not
// patch up a wounded communicator in place — they agree on the failed set,
// tear down, and rebuild the whole distributed state over the smaller rank
// count, which is both simpler and deterministic.

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/recovery_hooks.h"
#include "vmpi/communicator.h"
#include "vmpi/distributed_vector.h"

namespace dgflow::resilience
{
class CheckpointScheduler;

/// Silent data corruption detected by an ABFT guard (residual-replay drift,
/// checksum mismatch) that in-solve rollback could not absorb — e.g. the
/// rollback budget was exhausted or the corruption predates the oldest
/// validated snapshot. Thrown by solve bodies to take the cheapest recovery
/// rung: a same-width rerun with a scrub pass, no checkpoint restore.
class SdcDetected : public std::runtime_error
{
public:
  using std::runtime_error::runtime_error;
};

/// An agreement round found live ranks with unsound local state (non-finite
/// residual, failed smoother): the distributed solve is abandoned
/// collectively so every rank unwinds at the same boundary, but nobody is
/// dead — the recovery driver retries or restores at the same rank count.
class SolveAbandoned : public std::runtime_error
{
public:
  SolveAbandoned(const std::string &what, std::vector<int> unsound_ranks_)
    : std::runtime_error(what), unsound_ranks(std::move(unsound_ranks_))
  {}

  std::vector<int> unsound_ranks; ///< alive ranks that voted not-ok
};

class RecoveryContext : public RecoveryHooks
{
public:
  struct Options
  {
    /// solver iterations between agreement rounds (agreement is a
    /// collective; probing every iteration of a cheap smoother would
    /// dominate its cost)
    int agree_stride = 4;
    /// per-round agreement deadline in seconds (<= 0: the communicator's
    /// default timeout)
    double agree_timeout = 0.;
  };

  explicit RecoveryContext(vmpi::Communicator &comm);
  RecoveryContext(vmpi::Communicator &comm, const Options &options);

  vmpi::Communicator &communicator() { return comm_; }

  int stride() const override { return options_.agree_stride; }

  /// One agreement round (see file comment): returns normally iff every
  /// rank arrived and voted ok; throws vmpi::RankFailure (absent ranks) or
  /// SolveAbandoned (unsound-but-alive ranks) identically on every
  /// surviving rank otherwise.
  void at_iteration_boundary(bool local_ok) override;

  /// Call from a catch block around a distributed solve after a local
  /// communication error. Agrees with the surviving peers, then drains this
  /// rank's mailbox and advances its epoch so the abandoned exchange cannot
  /// leak into a retry. Throws RankFailure when the verdict names dead
  /// ranks; returns when all peers are alive (the caller rethrows the
  /// original error, which the driver treats as transient).
  void resolve_failure();

  /// Number of agreement rounds this context has run.
  unsigned long long agreements() const { return agreements_; }

private:
  vmpi::Communicator &comm_;
  Options options_;
  unsigned long long agreements_ = 0;
};

/// What the body of run_resilient is asked to do on one attempt.
struct RecoveryAttempt
{
  int attempt = 0;         ///< global attempt index (0 = first try)
  int n_ranks = 0;         ///< rank count of this attempt
  int initial_n_ranks = 0; ///< rank count of the first attempt
  long epoch = 0;          ///< communication epoch (== attempt)
  /// true on the restore and shrink rungs: the body must load its state
  /// from the shard checkpoint instead of starting fresh
  bool restore = false;
  /// true on the SDC-repair rung: the previous attempt detected silent data
  /// corruption, so the body should scrub its ArtifactGuard (verify and
  /// rebuild its protected setup artifacts) before reusing cached state
  bool scrub = false;
  /// ranks agreed dead in the previous attempt, in that attempt's numbering
  std::vector<int> failed_ranks;
};

struct DistributedRecoveryOptions
{
  int min_ranks = 1;    ///< give up shrinking below this
  int max_attempts = 8; ///< total vmpi::run invocations before giving up
  /// non-death failures tolerated at one rank count: the first takes the
  /// plain-retry rung, the second the restore rung, the next rethrows
  int max_retries_per_width = 2;
  /// SDC-repair rungs tolerated over the whole run (they do not count
  /// toward max_retries_per_width: a scrubbed rerun starts clean)
  int max_sdc_repairs = 2;
  RecoveryContext::Options context;
  /// when set (borrowed), every recovery rung taken reports one observed
  /// failure to the scheduler — the MTBF feed of the Young/Daly checkpoint
  /// interval (resilience/ckpt_scheduler.h), closing the loop between "how
  /// often does this run actually fail" and "how often should it checkpoint"
  CheckpointScheduler *checkpoint_scheduler = nullptr;
};

struct DistributedRunReport
{
  bool succeeded = false;
  int attempts = 0;
  int retries = 0;     ///< plain-retry rungs taken
  int restores = 0;    ///< restore rungs taken (including those of shrinks)
  int shrinks = 0;     ///< shrink rungs taken
  int sdc_repairs = 0; ///< SDC-repair rungs taken (scrubbed same-width rerun)
  int final_n_ranks = 0;
  /// failed set of every attempt that ended in an agreed rank death
  std::vector<std::vector<int>> failure_history;
};

/// Runs @p body on @p n_ranks logical ranks with shrinking recovery (see
/// file comment for the rung ladder). The body is invoked as
/// body(comm, ctx, attempt); it should attach &ctx to its solvers
/// (SolverControl::recovery, HybridMultigrid::set_recovery), wrap solves in
/// try/catch that routes vmpi::TimeoutError through ctx.resolve_failure(),
/// and honor attempt.restore / attempt.n_ranks when (re)building its
/// distributed state. Throws the last error when the ladder is exhausted.
DistributedRunReport run_resilient(
  const int n_ranks, const DistributedRecoveryOptions &options,
  const std::function<void(vmpi::Communicator &, RecoveryContext &,
                           const RecoveryAttempt &)> &body);

/// Runs @p f, routing locally caught communication-layer errors —
/// vmpi::TimeoutError and vmpi::GhostCorruptionError alike — through
/// ctx.resolve_failure() before rethrowing. A corrupted ghost payload is
/// indistinguishable, locally, from a flaky link or a dying peer; the
/// agreement round inside resolve_failure() is what disambiguates: dead
/// peers surface as RankFailure (shrink rung), while an all-alive verdict
/// rethrows the original error for the retry rung, with the mailbox drained
/// and the epoch advanced so the poisoned exchange cannot leak into it.
template <typename F>
auto with_failure_resolution(RecoveryContext &ctx, F &&f)
{
  try
  {
    return std::forward<F>(f)();
  }
  catch (const vmpi::TimeoutError &)
  {
    ctx.resolve_failure();
    throw;
  }
  catch (const vmpi::GhostCorruptionError &)
  {
    ctx.resolve_failure();
    throw;
  }
}

} // namespace dgflow::resilience
