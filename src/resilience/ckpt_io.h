#pragma once

// Injectable filesystem shim for the checkpoint stack. Every checkpoint and
// shard-checkpoint byte that touches disk routes through CkptIo::instance(),
// which gives the resilience layer two things the raw <fstream>/<filesystem>
// calls could not:
//
//  * durability — write_file_atomic() publishes a file the way a database
//    would: write "<path>.tmp", fsync the file, rename() over the final
//    name, then fsync the parent directory. A crash or power loss at any
//    point leaves either the complete old file or the complete new file,
//    never a torn "published" one (rename alone does NOT give this: without
//    the fsyncs the rename can hit the journal before the data blocks do).
//
//  * deterministic I/O fault injection — an installed IoFaultHandler (the
//    FaultPlan of resilience/fault_injection.h implements it, steered by the
//    DGFLOW_FAULT_IO_* envs) decides per operation whether a write runs out
//    of space (ENOSPC), is cut short (short write: a structured error with a
//    truncated tmp file left behind), is torn (the lying-disk model: only a
//    prefix reaches the platter but the write *reports success*, so the
//    corruption is only discoverable by checksum verification on read), a
//    read fails (EIO), or the disk stalls. Decisions are pure hashes of
//    (seed, path, per-path operation sequence), so a faulty run is
//    reproducible.
//
// All failures surface as CkptIoError, a CheckpointError subclass, so every
// existing catch site in the recovery ladder handles injected disk faults
// exactly like corrupted checkpoints: skip the generation, fall back, never
// crash and never load garbage.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "resilience/checkpoint.h"

namespace dgflow::resilience
{
/// A checkpoint I/O operation failed (really or by injection): disk full,
/// short write, unreadable file, missing file. Subclass of CheckpointError
/// so the recovery ladder's existing catch sites treat a disk fault like any
/// other unusable checkpoint.
class CkptIoError : public CheckpointError
{
public:
  using CheckpointError::CheckpointError;
};

/// Fault decision for one checkpoint write (returned by an IoFaultHandler).
struct IoWriteFault
{
  /// fail before a single byte reaches the file (disk full)
  bool enospc = false;
  /// >= 0: persist only this many bytes, then fail with a structured short
  /// write error (the tmp file is left truncated for the GC to prune)
  long long short_write_at = -1;
  /// >= 0: persist only this many bytes but *report success* — the
  /// power-cut/lying-disk model. The file publishes; only checksum
  /// verification on read can discover the tear.
  long long torn_write_at = -1;
  /// injected disk latency before the operation (slow-disk model)
  double stall_seconds = 0.;
};

/// Fault decision for one checkpoint read.
struct IoReadFault
{
  bool eio = false;          ///< fail the read with an I/O error
  double stall_seconds = 0.; ///< injected disk latency before the read
};

/// Per-operation fault oracle consulted by CkptIo. Implemented by
/// resilience::FaultPlan (seeded deterministic draws over the
/// DGFLOW_FAULT_IO_* knobs); @p seq is the per-path operation sequence
/// number maintained by the shim, so decisions are reproducible regardless
/// of which thread (solver or background writer) performs the operation.
class IoFaultHandler
{
public:
  virtual ~IoFaultHandler() = default;
  virtual IoWriteFault on_ckpt_write(const std::string &path,
                                     std::size_t bytes,
                                     unsigned long long seq) = 0;
  virtual IoReadFault on_ckpt_read(const std::string &path,
                                   unsigned long long seq) = 0;
};

class CkptIo
{
public:
  /// The process-wide shim all checkpoint file I/O routes through.
  static CkptIo &instance();

  /// Installs @p handler as the fault oracle for every subsequent operation
  /// (nullptr uninstalls). The handler must outlive its installation; tests
  /// uninstall in their teardown.
  void install_fault_handler(IoFaultHandler *handler)
  {
    handler_.store(handler, std::memory_order_release);
  }

  IoFaultHandler *fault_handler() const
  {
    return handler_.load(std::memory_order_acquire);
  }

  /// Operation counts since the last reset — the regression-test probe that
  /// the durability protocol really runs (file fsync + dir fsync + rename
  /// per publish).
  struct Stats
  {
    unsigned long long writes = 0;      ///< write_file_atomic calls
    unsigned long long reads = 0;       ///< read_file calls
    unsigned long long file_fsyncs = 0; ///< fsync(fd) on data files
    unsigned long long dir_fsyncs = 0;  ///< fsync on parent directories
    unsigned long long renames = 0;     ///< atomic publishes
    unsigned long long injected_faults = 0;
  };

  Stats stats() const;
  void reset_stats();

  /// Durable atomic publish of @p bytes at @p path: write "<path>.tmp",
  /// fsync the file, rename over @p path, fsync the parent directory. With
  /// @p durable false both fsyncs are skipped (benchmark baselines only —
  /// production checkpoints must survive power loss). Throws CkptIoError on
  /// any real or injected failure; a short write leaves the truncated tmp
  /// file behind (never the published name) for startup GC to prune.
  void write_file_atomic(const std::string &path, const char *data,
                         std::size_t bytes, bool durable = true);

  /// Reads the whole file; throws CkptIoError when the file is missing or
  /// unreadable (really or by injection).
  std::vector<char> read_file(const std::string &path);

  /// Atomic rename (the directory-level commit of a checkpoint generation);
  /// fsyncs the parent directory afterwards when @p durable.
  void rename(const std::string &from, const std::string &to,
              bool durable = true);

  /// mkdir -p; idempotent. Throws CkptIoError on failure.
  void create_directories(const std::string &dir);

  /// fsync on a directory fd (making directory entries durable).
  void fsync_directory(const std::string &dir);

  bool exists(const std::string &path) const;

  /// Removes a file or directory tree; best effort, returns the number of
  /// entries removed (0 when absent).
  std::uint64_t remove_all(const std::string &path);

  /// Names (not paths) of the entries of @p dir, unsorted; empty when the
  /// directory does not exist.
  std::vector<std::string> list_directory(const std::string &dir) const;

private:
  CkptIo() = default;

  /// Per-path monotonic operation sequence, the reproducibility key handed
  /// to the fault handler.
  unsigned long long next_seq(const std::string &path);

  std::atomic<IoFaultHandler *> handler_{nullptr};
  mutable std::mutex mutex_; ///< guards seq_ and stats_
  std::unordered_map<std::string, unsigned long long> seq_;
  Stats stats_;
};

} // namespace dgflow::resilience
