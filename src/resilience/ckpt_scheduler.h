#pragma once

// Failure-rate-driven checkpoint interval selection. Fixed-interval
// checkpointing is wrong in both directions: too frequent and the solver
// pays checkpoint overhead it never needs, too rare and every failure
// replays a long tail of lost work. The classical optimum (Young 1974,
// refined by Daly 2006) balances the two from exactly the quantities this
// codebase already measures — the per-checkpoint cost δ (encode + submit
// stall, fed from the instrumentation gauges by AsyncCheckpointer's caller)
// and the mean time between failures M (observed by the run_resilient
// recovery ladder, which reports every rung it takes).
//
// Daly's higher-order solution for the optimal interval τ between
// checkpoint *starts*, valid for δ < 2M:
//
//   τ = sqrt(2 δ M) · [1 + (1/3)·sqrt(δ/(2M)) + (1/9)·(δ/(2M))] − δ
//
// and τ = M when δ ≥ 2M (checkpointing costs as much as failing — do it
// once per expected failure). With no failures observed yet, M falls back
// to a configurable prior so a healthy run checkpoints rarely instead of
// never.
//
// The scheduler is deterministic: it holds no clock of its own — every
// method takes the caller's notion of "now" (a Timer the caller owns), so
// tests drive it with synthetic times and get exact interval assertions.

#include <algorithm>
#include <cmath>

namespace dgflow::resilience
{
class CheckpointScheduler
{
public:
  struct Options
  {
    /// interval used until the first checkpoint cost is measured
    double default_interval_seconds = 60.;
    /// clamp on the computed interval: never checkpoint more often than
    /// this (a pathological δ/M estimate must not turn the run into a
    /// checkpoint storm) ...
    double min_interval_seconds = 1e-3;
    /// ... nor less often than this (bounds lost work even when the
    /// failure estimate says the machine is immortal)
    double max_interval_seconds = 3600.;
    /// assumed MTBF before any failure is observed
    double prior_mtbf_seconds = 3600.;
  };

  CheckpointScheduler() = default;

  explicit CheckpointScheduler(const Options &options) : options_(options) {}

  /// Feeds one measured checkpoint cost δ (encode + submit stall in
  /// seconds). Smoothed with an EWMA so one slow disk burp does not whipsaw
  /// the interval.
  void record_checkpoint_cost(const double seconds)
  {
    if (seconds < 0.)
      return;
    if (n_cost_samples_ == 0)
      cost_ewma_ = seconds;
    else
      cost_ewma_ = (1. - cost_alpha_) * cost_ewma_ + cost_alpha_ * seconds;
    ++n_cost_samples_;
  }

  /// Records a failure observed at elapsed time @p now (the recovery
  /// ladder calls this from every rung it takes).
  void record_failure(const double now)
  {
    ++n_failures_;
    observe(now);
  }

  /// Advances the scheduler's knowledge of elapsed run time (MTBF is
  /// elapsed/failures, so it needs to know how long the run has been
  /// healthy, not only when it failed).
  void observe(const double now) { elapsed_ = std::max(elapsed_, now); }

  /// Observed mean time between failures; the configured prior until the
  /// first failure (or while elapsed time is still ~0).
  double mtbf() const
  {
    if (n_failures_ == 0 || elapsed_ <= 0.)
      return options_.prior_mtbf_seconds;
    return elapsed_ / double(n_failures_);
  }

  double checkpoint_cost() const { return cost_ewma_; }
  unsigned long long failures() const { return n_failures_; }

  /// The Daly-optimal interval between checkpoint starts, clamped to the
  /// configured bounds; the default interval until a cost is measured.
  double interval() const
  {
    double tau = options_.default_interval_seconds;
    if (n_cost_samples_ > 0)
    {
      const double delta = std::max(cost_ewma_, 0.);
      const double m = mtbf();
      if (delta >= 2. * m)
        tau = m;
      else
      {
        const double r = std::sqrt(delta / (2. * m));
        tau = std::sqrt(2. * delta * m) * (1. + r / 3. + r * r / 9.) - delta;
      }
    }
    return std::clamp(tau, options_.min_interval_seconds,
                      options_.max_interval_seconds);
  }

  /// True when the elapsed time since the last checkpoint exceeds the
  /// current interval. The caller checkpoints and then reports it via
  /// checkpoint_taken().
  bool should_checkpoint(const double now) const
  {
    return now - last_checkpoint_ >= interval();
  }

  void checkpoint_taken(const double now)
  {
    last_checkpoint_ = std::max(last_checkpoint_, now);
    observe(now);
  }

  const Options &options() const { return options_; }

private:
  Options options_;
  double cost_ewma_ = 0.;
  double cost_alpha_ = 0.25;
  unsigned long long n_cost_samples_ = 0;
  unsigned long long n_failures_ = 0;
  double elapsed_ = 0.;
  double last_checkpoint_ = 0.;
};

} // namespace dgflow::resilience
