#include "resilience/ckpt_store.h"

#include <algorithm>
#include <cstdio>

#include "common/timer.h"
#include "concurrency/thread_pool.h"
#include "instrumentation/profiler.h"
#include "resilience/shard_checkpoint.h"

namespace dgflow::resilience
{
namespace
{
constexpr char head_name[] = "HEAD.ckpt";

std::string generation_name(const std::uint64_t id)
{
  // zero-padded so lexicographic directory order equals numeric order and a
  // fault plan's path filter ("gen000002") targets exactly one generation
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "gen%06llu",
                static_cast<unsigned long long>(id));
  return buffer;
}

/// Parses "gen<id>" (committed, no suffix); nullopt for anything else.
std::optional<std::uint64_t> parse_generation_name(const std::string &name)
{
  if (name.size() < 4 || name.compare(0, 3, "gen") != 0)
    return std::nullopt;
  std::uint64_t id = 0;
  for (std::size_t i = 3; i < name.size(); ++i)
  {
    if (name[i] < '0' || name[i] > '9')
      return std::nullopt;
    id = id * 10 + std::uint64_t(name[i] - '0');
  }
  return id;
}

bool has_tmp_suffix(const std::string &name)
{
  constexpr char suffix[] = ".tmp";
  return name.size() >= 4 && name.compare(name.size() - 4, 4, suffix) == 0;
}
} // namespace

GenerationStore::GenerationStore(std::string root)
  : GenerationStore(std::move(root), Options())
{}

GenerationStore::GenerationStore(std::string root, const Options &options)
  : root_(std::move(root)), options_(options)
{
  DGFLOW_ASSERT(options_.keep_generations >= 1,
                "GenerationStore must keep at least one generation");
  CkptIo::instance().create_directories(root_);
  garbage_collect();
  // resume numbering after the newest survivor so ids stay monotonic across
  // restarts (HEAD and the ring ordering both rely on it)
  const std::vector<std::uint64_t> existing = generations();
  next_id_.store(existing.empty() ? 0 : existing.back() + 1,
                 std::memory_order_relaxed);
}

std::uint64_t GenerationStore::allocate_generation()
{
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

std::string GenerationStore::generation_directory(const std::uint64_t id) const
{
  return root_ + "/" + generation_name(id);
}

std::string GenerationStore::create_staging(const std::uint64_t id)
{
  const std::string staging = generation_directory(id) + ".tmp";
  CkptIo::instance().create_directories(staging);
  return staging;
}

void GenerationStore::commit_generation(const std::uint64_t id)
{
  CkptIo &io = CkptIo::instance();
  const std::string committed = generation_directory(id);
  // the directory rename is the commit point; the files inside were already
  // individually fsynced by write_file_atomic
  io.rename(committed + ".tmp", committed, options_.durable);
  write_head(id);
  // prune the ring: committed generations beyond keep_generations, oldest
  // first (never the one just published)
  const std::vector<std::uint64_t> all = generations();
  if (all.size() > options_.keep_generations)
    for (std::size_t i = 0; i + options_.keep_generations < all.size(); ++i)
      io.remove_all(generation_directory(all[i]));
}

void GenerationStore::abort_generation(const std::uint64_t id)
{
  CkptIo::instance().remove_all(generation_directory(id) + ".tmp");
}

std::vector<std::uint64_t> GenerationStore::generations() const
{
  std::vector<std::uint64_t> ids;
  for (const std::string &name : CkptIo::instance().list_directory(root_))
    if (!has_tmp_suffix(name))
      if (const auto id = parse_generation_name(name))
        ids.push_back(*id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void GenerationStore::write_head(const std::uint64_t id)
{
  // an ordinary checksummed checkpoint file, so a torn HEAD is *detected*
  // (and ignored — the scan falls back to walking the ring) rather than
  // silently pointing recovery at garbage
  CheckpointWriter head(root_ + "/" + head_name);
  head.write_u64(id);
  const std::vector<char> image = head.encode();
  CkptIo::instance().write_file_atomic(root_ + "/" + head_name, image.data(),
                                       image.size(), options_.durable);
}

std::optional<std::uint64_t> GenerationStore::read_head() const
{
  try
  {
    CheckpointReader head(root_ + "/" + head_name);
    return head.read_u64();
  }
  catch (const CheckpointError &)
  {
    return std::nullopt; // missing or corrupt HEAD: scan without the hint
  }
}

bool GenerationStore::verify_generation(const std::string &directory)
{
  std::vector<std::string> files = CkptIo::instance().list_directory(directory);
  std::sort(files.begin(), files.end());
  bool any = false, has_manifest = false;
  try
  {
    for (const std::string &name : files)
    {
      if (has_tmp_suffix(name))
        return false; // interrupted write inside a "committed" generation
      if (name.size() < 5 ||
          name.compare(name.size() - 5, 5, ".ckpt") != 0)
        continue;
      any = true;
      if (name == "manifest.ckpt")
        has_manifest = true;
      else
        CheckpointReader probe(directory + "/" + name); // parses + checksums
    }
    if (has_manifest)
      // sharded generation: additionally verify every shard against the
      // manifest checksums and the shard count (ShardCheckpointReader's
      // constructor does exactly that)
      ShardCheckpointReader shards(directory);
  }
  catch (const CheckpointError &)
  {
    return false;
  }
  return any;
}

std::optional<std::uint64_t> GenerationStore::newest_valid_generation() const
{
  std::vector<std::uint64_t> ids = generations();
  // HEAD is a hint: try it first if it names an existing generation, but a
  // stale/corrupt/lying HEAD only changes the order of verification
  if (const auto head = read_head())
    if (std::find(ids.begin(), ids.end(), *head) != ids.end() &&
        verify_generation(generation_directory(*head)) &&
        *head == ids.back())
      return head;
  for (auto it = ids.rbegin(); it != ids.rend(); ++it)
    if (verify_generation(generation_directory(*it)))
      return *it;
  return std::nullopt;
}

GenerationStore::GcReport GenerationStore::garbage_collect()
{
  CkptIo &io = CkptIo::instance();
  GcReport report;
  std::vector<std::uint64_t> committed;
  for (const std::string &name : io.list_directory(root_))
  {
    if (has_tmp_suffix(name))
    {
      // a crashed half-written generation (or torn file publish): it never
      // committed, so nothing can reference it
      io.remove_all(root_ + "/" + name);
      ++report.pruned_tmp;
    }
    else if (const auto id = parse_generation_name(name))
      committed.push_back(*id);
  }
  std::sort(committed.begin(), committed.end());
  if (committed.size() > options_.keep_generations)
    for (std::size_t i = 0; i + options_.keep_generations < committed.size();
         ++i)
    {
      io.remove_all(generation_directory(committed[i]));
      ++report.pruned_generations;
    }
  return report;
}

AsyncCheckpointer::AsyncCheckpointer(const std::string &root)
  : AsyncCheckpointer(root, Options())
{}

AsyncCheckpointer::AsyncCheckpointer(const std::string &root,
                                     const Options &options)
  : store_(root, GenerationStore::Options{options.keep_generations,
                                          options.durable}),
    options_(options)
{
  DGFLOW_ASSERT(options_.max_in_flight >= 1,
                "AsyncCheckpointer needs max_in_flight >= 1");
}

AsyncCheckpointer::~AsyncCheckpointer() { drain(); }

std::uint64_t AsyncCheckpointer::submit(std::vector<NamedImage> images)
{
  {
    // back-pressure: the solver may run ahead of the disk by at most
    // max_in_flight generations; time spent here is the only checkpoint
    // stall the solver thread ever sees in async mode
    std::unique_lock<std::mutex> lock(mutex_);
    if (in_flight_ >= options_.max_in_flight)
    {
      Timer wait;
      cv_.wait(lock, [&] { return in_flight_ < options_.max_in_flight; });
      DGFLOW_PROF_GAUGE("ckpt_backpressure_seconds", wait.seconds());
    }
    ++in_flight_;
    ++status_.submitted;
  }
  const std::uint64_t id = store_.allocate_generation();
  if (options_.async)
    concurrency::ThreadPool::instance().async(
      [this, id, images = std::move(images)]() mutable {
        write_generation(id, std::move(images));
      });
  else
    write_generation(id, std::move(images));
  return id;
}

void AsyncCheckpointer::write_generation(const std::uint64_t id,
                                         std::vector<NamedImage> images)
{
  DGFLOW_PROF_SCOPE("ckpt_write_generation");
  try
  {
    const std::string staging = store_.create_staging(id);
    for (const NamedImage &file : images)
      CkptIo::instance().write_file_atomic(staging + "/" + file.name,
                                           file.image.data(),
                                           file.image.size(),
                                           store_.options().durable);
    store_.commit_generation(id);
    std::lock_guard<std::mutex> lock(mutex_);
    ++status_.published;
    DGFLOW_PROF_COUNT("ckpt_generations_published", 1);
  }
  catch (const std::exception &e)
  {
    // a failed checkpoint write must never take down the solve: record it,
    // clean the staging droppings, keep the previous generation as the
    // restart point
    store_.abort_generation(id);
    std::lock_guard<std::mutex> lock(mutex_);
    ++status_.failed;
    status_.last_error = e.what();
    DGFLOW_PROF_COUNT("ckpt_write_failures", 1);
  }
  {
    // notify under the lock: the destructor drains and then destroys the
    // condvar the instant a waiter sees in_flight_ == 0, so the broadcast
    // must complete before this thread releases the mutex
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
    cv_.notify_all();
  }
}

void AsyncCheckpointer::drain()
{
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return in_flight_ == 0; });
}

AsyncCheckpointer::Status AsyncCheckpointer::status() const
{
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

} // namespace dgflow::resilience
