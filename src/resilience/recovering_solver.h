#pragma once

// Fallback-ladder wrapper around linear solves: each rung is a named solve
// strategy (e.g. hybrid-multigrid CG, then Jacobi CG with relaxed control);
// on a failed or throwing rung the initial guess is restored and the next
// rung tried. Rungs marked demote_on_failure are disabled after their first
// failure (a diverging multigrid V-cycle on a pathological mesh stays
// broken — retrying it every time step only burns wall time). Recoveries
// are counted per wrapper and as profiler counters, so production runs
// report how often the ladder fired.

#include <functional>
#include <string>
#include <vector>

#include "common/exceptions.h"
#include "common/vector.h"
#include "instrumentation/profiler.h"
#include "instrumentation/solve_stats.h"

namespace dgflow::resilience
{
template <typename Number>
class RecoveringSolver
{
public:
  using VectorType = Vector<Number>;
  using SolveFn = std::function<SolveStats(VectorType &x, const VectorType &b)>;

  void clear()
  {
    rungs_.clear();
    recoveries_ = 0;
    last_rung_.clear();
  }

  /// Appends a fallback rung. Rungs are tried in registration order.
  void add_rung(std::string name, SolveFn solve,
                const bool demote_on_failure = false)
  {
    rungs_.push_back(
      Rung{std::move(name), std::move(solve), demote_on_failure, 0, false});
  }

  std::size_t n_rungs() const { return rungs_.size(); }

  /// Total number of solves that needed at least one fallback.
  unsigned long long recoveries() const { return recoveries_; }

  /// Name of the rung that produced the last returned result.
  const std::string &last_rung() const { return last_rung_; }

  bool rung_disabled(const std::size_t i) const { return rungs_[i].disabled; }
  unsigned long long rung_failures(const std::size_t i) const
  {
    return rungs_[i].failures;
  }

  /// Tries the ladder top to bottom. Each rung starts from the caller's
  /// initial guess (restored after a failed rung, so a diverged attempt
  /// cannot poison the next). Returns the first converged SolveStats, or
  /// the last rung's failed stats when the whole ladder is exhausted.
  /// Never throws on solver failure; never aborts.
  SolveStats solve(VectorType &x, const VectorType &b)
  {
    DGFLOW_ASSERT(!rungs_.empty(), "RecoveringSolver has no rungs");
    const VectorType x0 = x;
    SolveStats stats;
    unsigned int attempts = 0;
    for (Rung &rung : rungs_)
    {
      if (rung.disabled)
        continue;
      if (attempts > 0)
        x = x0;
      ++attempts;
      try
      {
        stats = rung.solve(x, b);
      }
      catch (const std::exception &)
      {
        // a diverging V-cycle can overflow inside the preconditioner;
        // classify as non-finite and fall through to the next rung
        stats = SolveStats();
        stats.failure = SolveFailure::non_finite;
      }
      if (stats.converged)
      {
        last_rung_ = rung.name;
        if (attempts > 1)
        {
          recoveries_ += 1;
          DGFLOW_PROF_COUNT("solver_recoveries", 1);
        }
        return stats;
      }
      rung.failures += 1;
      DGFLOW_PROF_COUNT("solver_rung_failures", 1);
      if (rung.demote_on_failure)
        rung.disabled = true;
    }
    last_rung_ = "exhausted";
    return stats; // converged == false: the caller decides (e.g. reject dt)
  }

private:
  struct Rung
  {
    std::string name;
    SolveFn solve;
    bool demote_on_failure = false;
    unsigned long long failures = 0;
    bool disabled = false;
  };

  std::vector<Rung> rungs_;
  unsigned long long recoveries_ = 0;
  std::string last_rung_;
};

} // namespace dgflow::resilience
