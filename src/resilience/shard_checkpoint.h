#pragma once

// Sharded checkpoints for distributed solves: every rank writes its own
// slice of the global state, so checkpoint cost scales with the owned
// partition, not the global problem — and a restart may use a *different*
// rank count than the run that wrote the checkpoint (the N→M restart that
// shrinking recovery performs after an agreed rank death).
//
// Directory layout (one directory per checkpoint):
//
//   <dir>/rank<k>.ckpt   shard of rank k — an ordinary versioned+checksummed
//                        CheckpointWriter file (resilience/checkpoint.h)
//   <dir>/manifest.ckpt  shard count + per-shard payload checksums
//
// Shard record convention: replicated scalars (step index, time, dt, ...)
// are written identically by every shard; a distributed field is written as
//   u64 global_size, u64 owned_begin, vector<owned values>
// per shard. The reader loads *all* shards, verifies each against the
// manifest checksum (a mismatch is a CheckpointError naming the shard), and
// reassembles the global field — the restoring run then re-slices it for
// its own partition, whatever its rank count.
//
// Buddy replication: close() returns the shard's in-memory file image so
// the caller can send it to its Morton-neighbour rank
// (mesh/partition.h: morton_buddy_rank) over vmpi. A shard lost with its
// rank is then recoverable from the buddy's copy: ShardCheckpointReader
// accepts in-memory images that override (or substitute for) shard files.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "resilience/checkpoint.h"

namespace dgflow::resilience
{
/// File name of rank @p rank 's shard inside a checkpoint directory.
inline std::string shard_file_name(const int rank)
{
  return "rank" + std::to_string(rank) + ".ckpt";
}

class ShardCheckpointWriter
{
public:
  /// Prepares rank @p rank 's shard of an @p n_ranks -rank checkpoint in
  /// @p directory (created if absent; creation is idempotent, so concurrent
  /// ranks may race through it safely).
  ShardCheckpointWriter(const std::string &directory, const int rank,
                        const int n_ranks);

  /// Replicated scalar: every shard must write the same value at the same
  /// position in its record stream (the reader cross-checks).
  void write_u64(const std::uint64_t v) { writer_.write_u64(v); }
  void write_double(const double v) { writer_.write_double(v); }

  /// One distributed field: this rank's contiguous owned slice
  /// [@p owned_begin, @p owned_begin + owned.size()) of a global vector of
  /// @p global_size entries. The slices of all shards must tile the global
  /// index range exactly.
  template <typename Number>
  void write_owned_slice(const std::uint64_t global_size,
                         const std::uint64_t owned_begin,
                         const Vector<Number> &owned)
  {
    writer_.write_u64(global_size);
    writer_.write_u64(owned_begin);
    writer_.write_vector(owned);
  }

  struct Shard
  {
    std::uint64_t checksum;  ///< payload checksum (goes into the manifest)
    std::vector<char> image; ///< full file image for buddy replication
  };

  /// Publishes <dir>/rank<k>.ckpt atomically and returns its checksum plus
  /// the in-memory image to replicate to the buddy rank.
  Shard close();

private:
  CheckpointWriter writer_;
};

/// Writes <dir>/manifest.ckpt recording the shard count and every shard's
/// payload checksum. Called once per checkpoint after all shards closed
/// (by the driver, or by rank 0 after gathering the checksums).
void write_shard_manifest(const std::string &directory,
                          const std::vector<std::uint64_t> &shard_checksums);

/// Reads <dir>/manifest.ckpt; returns the per-shard checksums.
std::vector<std::uint64_t> read_shard_manifest(const std::string &directory);

class ShardCheckpointReader
{
public:
  /// Loads the manifest and every shard of the checkpoint in @p directory,
  /// verifying each shard's payload checksum against the manifest entry; a
  /// mismatch (or an unreadable shard) raises CheckpointError naming the
  /// shard file. @p image_overrides maps shard rank -> in-memory file image
  /// (a buddy-replicated copy), consulted *instead of* the shard file — the
  /// path by which a shard that died with its rank is still restorable.
  explicit ShardCheckpointReader(
    const std::string &directory,
    const std::map<int, std::vector<char>> &image_overrides = {});

  int n_shards() const { return static_cast<int>(shards_.size()); }

  /// Replicated scalar: reads it from every shard and verifies agreement.
  std::uint64_t read_u64();
  double read_double();

  /// Reassembles one distributed field into the full global vector from the
  /// owned slices of all shards (verifying they tile the global range), so
  /// the caller can re-slice it for its own — possibly different — rank
  /// count.
  template <typename Number>
  void read_global(Vector<Number> &global)
  {
    std::uint64_t global_size = 0;
    std::uint64_t assembled = 0;
    for (int k = 0; k < n_shards(); ++k)
    {
      const std::uint64_t size_k = shards_[k].read_u64();
      const std::uint64_t begin_k = shards_[k].read_u64();
      if (k == 0)
      {
        global_size = size_k;
        global.reinit(global_size, true);
      }
      else if (size_k != global_size)
        throw CheckpointError(
          shard_file_name(k) + " disagrees on the global field size (" +
          std::to_string(size_k) + " vs " + std::to_string(global_size) +
          " in " + shard_file_name(0) + ")");
      Vector<Number> owned;
      shards_[k].read_vector(owned);
      if (begin_k + owned.size() > global_size)
        throw CheckpointError(shard_file_name(k) + " slice [" +
                              std::to_string(begin_k) + ", " +
                              std::to_string(begin_k + owned.size()) +
                              ") exceeds the global size " +
                              std::to_string(global_size));
      for (std::size_t i = 0; i < owned.size(); ++i)
        global[begin_k + i] = owned[i];
      assembled += owned.size();
    }
    if (assembled != global_size)
      throw CheckpointError(
        "shard slices do not tile the global field: " +
        std::to_string(assembled) + " of " + std::to_string(global_size) +
        " entries assembled");
  }

private:
  std::vector<CheckpointReader> shards_;
};

} // namespace dgflow::resilience
